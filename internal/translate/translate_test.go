package translate

import (
	"sort"
	"strings"
	"testing"

	"lera/internal/catalog"
	"lera/internal/engine"
	"lera/internal/esql"
	"lera/internal/lera"
	"lera/internal/testdb"
	"lera/internal/value"
)

// figure2Catalog builds the catalog by *parsing and translating* the
// Figure 2 DDL, exercising the whole declaration pipeline.
func figure2Catalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	stmts, err := esql.Parse(esql.Figure2DDL)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stmts {
		switch d := s.(type) {
		case *esql.TypeDecl:
			if err := DeclareType(cat, d); err != nil {
				t.Fatal(err)
			}
		case *esql.TableDecl:
			if err := DeclareTable(cat, d); err != nil {
				t.Fatal(err)
			}
		}
	}
	return cat
}

func TestFigure2Declarations(t *testing.T) {
	cat := figure2Catalog(t)
	if !cat.Types.ISAName("Actor", "Person") {
		t.Error("Actor ISA Person")
	}
	film, ok := cat.Relation("FILM")
	if !ok || len(film.Columns) != 3 {
		t.Fatalf("FILM = %+v", film)
	}
	if film.Columns[2].Type.Name != "SetCategory" {
		t.Errorf("Categories type = %s", film.Columns[2].Type)
	}
	dom, _ := cat.Relation("DOMINATE")
	if !dom.Columns[1].Type.IsObject {
		t.Error("Refactor1 must be an object type")
	}
	// Duplicate declarations fail.
	stmts, _ := esql.Parse("TABLE FILM (a : INT);")
	if err := DeclareTable(cat, stmts[0].(*esql.TableDecl)); err == nil {
		t.Error("duplicate table must fail")
	}
	// Unknown types fail.
	stmts2, _ := esql.Parse("TABLE X (a : NoSuchType);")
	if err := DeclareTable(cat, stmts2[0].(*esql.TableDecl)); err == nil {
		t.Error("unknown column type must fail")
	}
	stmts3, _ := esql.Parse("TYPE X SUBTYPE OF Nope OBJECT TUPLE (a : INT);")
	if err := DeclareType(cat, stmts3[0].(*esql.TypeDecl)); err == nil {
		t.Error("unknown supertype must fail")
	}
}

// TestFigure3 reproduces the paper's §3.1 translation byte for byte
// (conjunct order and '=' operand order are canonical; the FROM order of
// the paper's translation, (APPEARS_IN, FILM), is used in the query).
func TestFigure3(t *testing.T) {
	cat := figure2Catalog(t)
	q, err := Query(cat, `
SELECT Title, Categories, Salary(Refactor)
FROM APPEARS_IN, FILM
WHERE FILM.Numf = APPEARS_IN.Numf
  AND Name(Refactor) = 'Quinn'
  AND MEMBER('Adventure', Categories)`)
	if err != nil {
		t.Fatal(err)
	}
	got := lera.Format(q)
	want := "search((APPEARS_IN, FILM), [1.1=2.1 ∧ name(1.2)='Quinn' ∧ member('Adventure', 2.3)], (2.2, 2.3, salary(1.2)))"
	if got != want {
		t.Errorf("Figure 3 translation:\n got %s\nwant %s", got, want)
	}
	if err := lera.Validate(q); err != nil {
		t.Errorf("validate: %v", err)
	}
	if _, err := lera.Infer(q, cat, nil); err != nil {
		t.Errorf("infer: %v", err)
	}
}

// TestFigure4 translates the nested view and its ALL query, then runs the
// query end to end on the sample instance.
func TestFigure4(t *testing.T) {
	cat := figure2Catalog(t)
	stmts, err := esql.Parse(esql.Figure4View)
	if err != nil {
		t.Fatal(err)
	}
	view, err := DeclareView(cat, stmts[0].(*esql.ViewDecl))
	if err != nil {
		t.Fatal(err)
	}
	if view.Recursive {
		t.Error("FilmActors is not recursive")
	}
	if !lera.IsOp(view.Def, lera.OpNest) {
		t.Fatalf("view def = %s", lera.Format(view.Def))
	}
	if view.Columns[2].Name != "Actors" {
		t.Errorf("view columns = %v", view.Columns)
	}
	q, err := Query(cat, `
SELECT Title
FROM FilmActors
WHERE MEMBER('Adventure', Categories) AND ALL(Salary(Actors) > 10000)`)
	if err != nil {
		t.Fatal(err)
	}
	// Execute on the sample instance.
	db := loadedDB(t, cat)
	r, err := db.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	titles := column(r, 1)
	if len(titles) != 2 || titles[0] != "'Casablanca'" || titles[1] != "'Lawrence of Arabia'" {
		t.Errorf("titles = %v", titles)
	}
}

// TestFixpointFigure5 checks the recursive view's translation against the
// §3.2 fix expression and executes the Figure 5 query.
func TestFixpointFigure5(t *testing.T) {
	cat := figure2Catalog(t)
	stmts, err := esql.Parse(esql.Figure5View)
	if err != nil {
		t.Fatal(err)
	}
	view, err := DeclareView(cat, stmts[0].(*esql.ViewDecl))
	if err != nil {
		t.Fatal(err)
	}
	if !view.Recursive {
		t.Fatal("BETTER_THAN must be recursive")
	}
	got := lera.Format(view.Def)
	want := "fix(BETTER_THAN, union({search((DOMINATE), [true], (1.2, 1.3)), search((BETTER_THAN, BETTER_THAN), [1.2=2.1], (1.1, 2.2))}))"
	if got != want {
		t.Errorf("fix translation:\n got %s\nwant %s", got, want)
	}
	q, err := Query(cat, `
SELECT Name(Refactor1)
FROM BETTER_THAN
WHERE Name(Refactor2) = 'Quinn'`)
	if err != nil {
		t.Fatal(err)
	}
	db := loadedDB(t, cat)
	r, err := db.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	got2 := column(r, 1)
	var want2 []string
	for _, n := range testdb.DominatorsOfQuinn() {
		want2 = append(want2, "'"+n+"'")
	}
	if strings.Join(got2, ",") != strings.Join(want2, ",") {
		t.Errorf("dominators = %v, want %v", got2, want2)
	}
}

func TestViewExpansionInQueries(t *testing.T) {
	cat := figure2Catalog(t)
	mustDeclare(t, cat, "CREATE VIEW AdventureFilms (Numf, Title) AS SELECT Numf, Title FROM FILM WHERE MEMBER('Adventure', Categories);")
	q, err := Query(cat, "SELECT Title FROM AdventureFilms WHERE Numf = 1")
	if err != nil {
		t.Fatal(err)
	}
	// The view body appears inline: a search over a search.
	if lera.SearchCount(q) != 2 {
		t.Errorf("expected nested searches, got %s", lera.Format(q))
	}
	db := loadedDB(t, cat)
	r, err := db.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0].S != "Lawrence of Arabia" {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestInsertTranslation(t *testing.T) {
	cat := figure2Catalog(t)
	stmts, err := esql.Parse(`
INSERT INTO FILM VALUES
  (5, 'Stagecoach', SET('Western')),
  (6, 'Sunset', SET('Comedy', 'Western'));`)
	if err != nil {
		t.Fatal(err)
	}
	name, rows, err := Insert(cat, stmts[0].(*esql.InsertStmt))
	if err != nil {
		t.Fatal(err)
	}
	if name != "FILM" || len(rows) != 2 {
		t.Fatalf("insert = %s %v", name, rows)
	}
	if rows[1][2].K != value.KSet || rows[1][2].Len() != 2 {
		t.Errorf("set literal = %v", rows[1][2])
	}
	// Arithmetic and tuple literals fold.
	stmts2, _ := esql.Parse("INSERT INTO X VALUES (1 + 2, TUPLE(Pros: 1, Cons: 2), LIST(TUPLE(Pros: 1, Cons: 0)));")
	_, rows2, err := Insert(cat, stmts2[0].(*esql.InsertStmt))
	if err != nil {
		t.Fatal(err)
	}
	if rows2[0][0].I != 3 || rows2[0][1].K != value.KTuple {
		t.Errorf("folded = %v", rows2[0])
	}
	// Non-literals fail.
	stmts3, _ := esql.Parse("INSERT INTO X VALUES (Title);")
	if _, _, err := Insert(cat, stmts3[0].(*esql.InsertStmt)); err == nil {
		t.Error("column reference in VALUES must fail")
	}
}

func TestTranslationErrors(t *testing.T) {
	cat := figure2Catalog(t)
	bad := []string{
		"SELECT x FROM NOSUCH",
		"SELECT NoCol FROM FILM",
		"SELECT Numf FROM FILM, APPEARS_IN",                                         // ambiguous
		"SELECT F.Numf FROM FILM",                                                   // unknown alias
		"SELECT FILM.NoCol FROM FILM",                                               // unknown column
		"SELECT Title, MakeSet(Numf) FROM FILM",                                     // MakeSet without GROUP BY
		"SELECT Title FROM FILM GROUP BY Title",                                     // GROUP BY without MakeSet
		"SELECT MakeSet(Numf), Title FROM FILM GROUP BY Title",                      // MakeSet before grouped col
		"SELECT Numf, MakeSet(Title) FROM FILM GROUP BY Title",                      // ungrouped projection
		"SELECT MakeSet(Numf, Title) FROM FILM GROUP BY Title",                      // arity
		"SELECT Title, MakeSet(Numf), MakeSet(Categories) FROM FILM GROUP BY Title", // two MakeSets
	}
	for _, src := range bad {
		if _, err := Query(cat, src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
	// Recursive view without column list.
	stmts, _ := esql.Parse("CREATE VIEW V AS SELECT Refactor1, Refactor2 FROM DOMINATE UNION SELECT V.Refactor1, V.Refactor2 FROM V V;")
	if _, err := DeclareView(cat, stmts[0].(*esql.ViewDecl)); err == nil {
		t.Error("recursive view without columns must fail")
	}
	// View column arity mismatch.
	stmts2, _ := esql.Parse("CREATE VIEW W (a, b) AS SELECT Numf FROM FILM;")
	if _, err := DeclareView(cat, stmts2[0].(*esql.ViewDecl)); err == nil {
		t.Error("view arity mismatch must fail")
	}
}

func TestAliasesAndQualifiers(t *testing.T) {
	cat := figure2Catalog(t)
	q, err := Query(cat, `
SELECT D1.Numf FROM DOMINATE D1, DOMINATE D2
WHERE D1.Refactor2 = D2.Refactor1`)
	if err != nil {
		t.Fatal(err)
	}
	got := lera.Format(q)
	if got != "search((DOMINATE, DOMINATE), [1.3=2.2], (1.1))" {
		t.Errorf("aliased = %s", got)
	}
}

func TestOrTranslation(t *testing.T) {
	cat := figure2Catalog(t)
	q, err := Query(cat, "SELECT Title FROM FILM WHERE Numf = 1 OR Numf = 2")
	if err != nil {
		t.Fatal(err)
	}
	db := loadedDB(t, cat)
	r, err := db.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Errorf("rows = %v", r.Rows)
	}
}

// --- helpers ---

func mustDeclare(t *testing.T, cat *catalog.Catalog, src string) {
	t.Helper()
	stmts, err := esql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stmts {
		switch d := s.(type) {
		case *esql.ViewDecl:
			if _, err := DeclareView(cat, d); err != nil {
				t.Fatal(err)
			}
		case *esql.TableDecl:
			if err := DeclareTable(cat, d); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func loadedDB(t *testing.T, cat *catalog.Catalog) *engine.DB {
	t.Helper()
	inst, err := testdb.Data()
	if err != nil {
		t.Fatal(err)
	}
	db := engine.New(cat)
	for name, rows := range inst.Rows {
		if err := db.Load(name, rows); err != nil {
			t.Fatal(err)
		}
	}
	for oid, obj := range inst.Objects {
		db.SetObject(oid, obj)
	}
	return db
}

func column(r *engine.Relation, j int) []string {
	var out []string
	for _, row := range r.Rows {
		out = append(out, row[j-1].String())
	}
	sort.Strings(out)
	return out
}
