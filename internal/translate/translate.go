// Package translate turns ESQL ASTs into catalog declarations and LERA
// terms — the "straightforward translation of an ESQL query into a LERA
// functional expression" that precedes rule-based rewriting (Section 5).
//
// Views are expanded at their use sites; recursive views become the
// fixpoint operator of §3.2; GROUP BY with MakeSet becomes NEST (§3.4).
// Function applications are emitted in raw CALL form; the type-checking
// rule block later "infers types and adds the necessary conversion
// functions" (§3.3).
package translate

import (
	"fmt"
	"strings"

	"lera/internal/catalog"
	"lera/internal/esql"
	"lera/internal/lera"
	"lera/internal/term"
	"lera/internal/types"
	"lera/internal/value"
)

// DeclareType registers a TYPE declaration in the catalog.
func DeclareType(cat *catalog.Catalog, d *esql.TypeDecl) error {
	switch d.Kind {
	case esql.TypeEnum:
		_, err := cat.Types.DeclareEnum(d.Name, d.EnumVals)
		return err
	case esql.TypeTuple:
		var super *types.Type
		if d.Super != "" {
			s, ok := cat.Types.Lookup(d.Super)
			if !ok {
				return fmt.Errorf("translate: unknown supertype %q", d.Super)
			}
			super = s
		}
		fields := make([]types.Field, len(d.Fields))
		for i, f := range d.Fields {
			ft, err := resolveTypeRef(cat, f.Type)
			if err != nil {
				return err
			}
			fields[i] = types.Field{Name: f.Name, Type: ft}
		}
		_, err := cat.Types.DeclareTuple(d.Name, fields, d.Object, super)
		return err
	case esql.TypeColl:
		elem, err := resolveTypeRef(cat, d.Elem)
		if err != nil {
			return err
		}
		_, err = cat.Types.DeclareCollection(d.Name, d.CollKind, elem)
		return err
	}
	return fmt.Errorf("translate: unknown TYPE declaration kind")
}

func resolveTypeRef(cat *catalog.Catalog, r *esql.TypeRef) (*types.Type, error) {
	if r == nil {
		return cat.Types.AnyT, nil
	}
	if r.Name != "" {
		t, ok := cat.Types.Lookup(r.Name)
		if !ok {
			return nil, fmt.Errorf("translate: unknown type %q", r.Name)
		}
		return t, nil
	}
	if len(r.Fields) > 0 {
		fields := make([]types.Field, len(r.Fields))
		for i, f := range r.Fields {
			ft, err := resolveTypeRef(cat, f.Type)
			if err != nil {
				return nil, err
			}
			fields[i] = types.Field{Name: f.Name, Type: ft}
		}
		return &types.Type{Name: "_tuple", Kind: types.Tuple, Fields: fields}, nil
	}
	elem, err := resolveTypeRef(cat, r.Elem)
	if err != nil {
		return nil, err
	}
	return cat.Types.Collection(r.CollKind, elem), nil
}

// DeclareTable registers a TABLE declaration.
func DeclareTable(cat *catalog.Catalog, d *esql.TableDecl) error {
	cols := make([]catalog.Column, len(d.Cols))
	for i, c := range d.Cols {
		ct, err := resolveTypeRef(cat, c.Type)
		if err != nil {
			return err
		}
		cols[i] = catalog.Column{Name: c.Name, Type: ct}
	}
	_, err := cat.DeclareRelation(d.Name, cols)
	return err
}

// DeclareView translates and registers a view. Recursive views become FIX
// terms (§3.2); their column list is required. Non-recursive views infer
// their schema from the translated body, renamed to declared columns when
// given.
func DeclareView(cat *catalog.Catalog, v *esql.ViewDecl) (*catalog.View, error) {
	recursive := v.Recursive()
	if recursive && len(v.Cols) == 0 {
		return nil, fmt.Errorf("translate: recursive view %s requires a column list", v.Name)
	}
	tr := &translator{cat: cat}
	if recursive {
		// References to the view inside its own body resolve to a
		// fix-bound relation whose schema is the declared column list.
		provisional := make([]catalog.Column, len(v.Cols))
		for i, c := range v.Cols {
			provisional[i] = catalog.Column{Name: c, Type: cat.Types.AnyT}
		}
		tr.selfName = v.Name
		tr.selfCols = provisional
	}
	var arms []*term.Term
	for _, s := range v.Selects {
		t, err := tr.translateSelect(s, v.Cols)
		if err != nil {
			return nil, fmt.Errorf("translate: view %s: %w", v.Name, err)
		}
		arms = append(arms, t)
	}
	var def *term.Term
	if len(arms) == 1 {
		def = arms[0]
	} else {
		def = lera.Union(arms...)
	}
	if recursive {
		def = lera.Fix(v.Name, def, v.Cols)
	}
	schema, err := lera.Infer(def, cat, nil)
	if err != nil {
		return nil, fmt.Errorf("translate: view %s: %w", v.Name, err)
	}
	cols := schema.Cols
	if len(v.Cols) > 0 {
		if len(v.Cols) != len(cols) {
			return nil, fmt.Errorf("translate: view %s declares %d columns, body has %d", v.Name, len(v.Cols), len(cols))
		}
		named := make([]catalog.Column, len(cols))
		for i := range cols {
			named[i] = catalog.Column{Name: v.Cols[i], Type: cols[i].Type}
		}
		cols = named
	}
	view := &catalog.View{Name: v.Name, Columns: cols, Def: def, Recursive: recursive}
	if err := cat.DeclareView(view); err != nil {
		return nil, err
	}
	return view, nil
}

// Select translates a SELECT statement into a LERA term.
func Select(cat *catalog.Catalog, s *esql.Select) (*term.Term, error) {
	tr := &translator{cat: cat}
	return tr.translateSelect(s, nil)
}

// Query parses and translates a single SELECT.
func Query(cat *catalog.Catalog, src string) (*term.Term, error) {
	s, err := esql.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return Select(cat, s)
}

// Insert evaluates an INSERT statement's literal rows.
func Insert(cat *catalog.Catalog, ins *esql.InsertStmt) (string, [][]value.Value, error) {
	rows := make([][]value.Value, len(ins.Rows))
	for i, r := range ins.Rows {
		row := make([]value.Value, len(r))
		for j, e := range r {
			v, err := evalLiteral(cat, e)
			if err != nil {
				return "", nil, fmt.Errorf("translate: INSERT row %d: %w", i+1, err)
			}
			row[j] = v
		}
		rows[i] = row
	}
	return ins.Table, rows, nil
}

// Literal evaluates a constant expression (literals, collection and
// tuple literals, constant ADT calls and arithmetic) to a value. The
// EXECUTE path uses it to type-check prepared-statement arguments.
func Literal(cat *catalog.Catalog, e esql.Expr) (value.Value, error) {
	return evalLiteral(cat, e)
}

func evalLiteral(cat *catalog.Catalog, e esql.Expr) (value.Value, error) {
	switch x := e.(type) {
	case *esql.Lit:
		return x.Val, nil
	case *esql.CollLit:
		elems := make([]value.Value, len(x.Elems))
		for i, el := range x.Elems {
			v, err := evalLiteral(cat, el)
			if err != nil {
				return value.Null, err
			}
			elems[i] = v
		}
		switch x.Kind {
		case value.KSet:
			return value.NewSet(elems...), nil
		case value.KBag:
			return value.NewBag(elems...), nil
		case value.KList:
			return value.NewList(elems...), nil
		default:
			return value.NewArray(elems...), nil
		}
	case *esql.TupleLit:
		elems := make([]value.Value, len(x.Elems))
		for i, el := range x.Elems {
			v, err := evalLiteral(cat, el)
			if err != nil {
				return value.Null, err
			}
			elems[i] = v
		}
		return value.NewTuple(x.Names, elems), nil
	case *esql.App:
		// Pure constant folding through the ADT registry (e.g. a
		// MakeSet('a') literal or an OID constructor extension).
		args := make([]value.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := evalLiteral(cat, a)
			if err != nil {
				return value.Null, err
			}
			args[i] = v
		}
		return cat.ADTs.Call(x.Fn, args)
	case *esql.Bin:
		l, err := evalLiteral(cat, x.L)
		if err != nil {
			return value.Null, err
		}
		r, err := evalLiteral(cat, x.R)
		if err != nil {
			return value.Null, err
		}
		return cat.ADTs.Call(x.Op, []value.Value{l, r})
	}
	return value.Null, fmt.Errorf("non-literal expression in VALUES")
}

// --- SELECT translation ---

type fromItem struct {
	name  string // table/view name
	alias string
	cols  []catalog.Column
	rel   *term.Term // the LERA term for this FROM position
}

type translator struct {
	cat      *catalog.Catalog
	selfName string // recursive view being defined, "" otherwise
	selfCols []catalog.Column
	items    []fromItem
}

func (tr *translator) translateSelect(s *esql.Select, declaredCols []string) (*term.Term, error) {
	if len(s.From) == 0 {
		return nil, fmt.Errorf("empty FROM clause")
	}
	prev := tr.items
	defer func() { tr.items = prev }()
	tr.items = nil
	for _, f := range s.From {
		item, err := tr.resolveFrom(f)
		if err != nil {
			return nil, err
		}
		tr.items = append(tr.items, item)
	}

	var conjuncts []*term.Term
	if s.Where != nil {
		cs, err := tr.translateQual(s.Where)
		if err != nil {
			return nil, err
		}
		conjuncts = cs
	}

	// Partition projections into plain expressions and MakeSet/MakeBag/
	// MakeList nesting calls (GROUP BY handling, Figure 4).
	type projInfo struct {
		expr   *term.Term
		nest   bool
		source esql.Expr
	}
	var projs []projInfo
	for _, pe := range s.Proj {
		if app, ok := pe.(*esql.App); ok && isMakeColl(app.Fn) {
			if len(app.Args) != 1 {
				return nil, fmt.Errorf("%s expects one argument", app.Fn)
			}
			inner, err := tr.translateExpr(app.Args[0])
			if err != nil {
				return nil, err
			}
			projs = append(projs, projInfo{expr: inner, nest: true, source: pe})
			continue
		}
		te, err := tr.translateExpr(pe)
		if err != nil {
			return nil, err
		}
		projs = append(projs, projInfo{expr: te, source: pe})
	}

	if len(s.GroupBy) > 0 {
		// Validate: plain projections must appear in GROUP BY and precede
		// the nesting projections (the paper's Figure 4 shape).
		gb := map[string]bool{}
		for _, ge := range s.GroupBy {
			te, err := tr.translateExpr(ge)
			if err != nil {
				return nil, err
			}
			gb[te.String()] = true
		}
		seenNest := false
		nestCount := 0
		for _, p := range projs {
			if p.nest {
				seenNest = true
				nestCount++
				continue
			}
			if seenNest {
				return nil, fmt.Errorf("grouped projections must precede MakeSet projections")
			}
			if !gb[p.expr.String()] {
				return nil, fmt.Errorf("projection %s is neither grouped nor aggregated", lera.Format(p.expr))
			}
		}
		if nestCount == 0 {
			return nil, fmt.Errorf("GROUP BY without a MakeSet projection is not supported")
		}
	} else {
		for _, p := range projs {
			if p.nest {
				return nil, fmt.Errorf("MakeSet projection requires GROUP BY")
			}
		}
	}

	rels := make([]*term.Term, len(tr.items))
	for i, it := range tr.items {
		rels[i] = it.rel
	}
	var flat []*term.Term
	for _, p := range projs {
		flat = append(flat, p.expr)
	}
	search := lera.Search(rels, lera.Ands(conjuncts...), flat)

	if len(s.GroupBy) == 0 {
		return search, nil
	}
	// Wrap in NEST: the nested column is the trailing MakeSet position
	// (exactly Figure 4's shape; one MakeSet per SELECT).
	plainCount := 0
	for _, p := range projs {
		if !p.nest {
			plainCount++
		}
	}
	if len(projs)-plainCount > 1 {
		return nil, fmt.Errorf("at most one MakeSet projection per SELECT is supported")
	}
	k := len(projs)
	name := fmt.Sprintf("col%d", k)
	if declaredCols != nil && k <= len(declaredCols) {
		name = declaredCols[k-1]
	}
	return lera.Nest(search, []int{plainCount + 1}, name), nil
}

func isMakeColl(fn string) bool {
	switch strings.ToUpper(fn) {
	case "MAKESET", "MAKEBAG", "MAKELIST", "MAKEARRAY":
		return true
	}
	return false
}

func (tr *translator) resolveFrom(f esql.TableRef) (fromItem, error) {
	item := fromItem{name: f.Table, alias: f.Alias}
	if tr.selfName != "" && strings.EqualFold(f.Table, tr.selfName) {
		item.cols = tr.selfCols
		item.rel = lera.Rel(tr.selfName)
		return item, nil
	}
	if r, ok := tr.cat.Relation(f.Table); ok {
		item.cols = r.Columns
		item.rel = lera.Rel(r.Name)
		return item, nil
	}
	if v, ok := tr.cat.View(f.Table); ok {
		item.cols = v.Columns
		item.rel = v.Def // view expansion (query modification)
		return item, nil
	}
	return item, fmt.Errorf("unknown relation or view %q", f.Table)
}

// resolveRef resolves a column reference to ATTR(i, j).
func (tr *translator) resolveRef(r *esql.Ref) (*term.Term, error) {
	if r.Qualifier != "" {
		for i, it := range tr.items {
			if strings.EqualFold(it.alias, r.Qualifier) ||
				(it.alias == "" && strings.EqualFold(it.name, r.Qualifier)) {
				for j, c := range it.cols {
					if strings.EqualFold(c.Name, r.Name) {
						return lera.Attr(i+1, j+1), nil
					}
				}
				return nil, fmt.Errorf("relation %s has no column %q", r.Qualifier, r.Name)
			}
		}
		return nil, fmt.Errorf("unknown relation or alias %q", r.Qualifier)
	}
	var found *term.Term
	for i, it := range tr.items {
		for j, c := range it.cols {
			if strings.EqualFold(c.Name, r.Name) {
				if found != nil {
					return nil, fmt.Errorf("ambiguous column %q", r.Name)
				}
				found = lera.Attr(i+1, j+1)
			}
		}
	}
	if found == nil {
		return nil, fmt.Errorf("unknown column %q", r.Name)
	}
	return found, nil
}

// translateQual flattens a WHERE tree into conjuncts.
func (tr *translator) translateQual(e esql.Expr) ([]*term.Term, error) {
	if b, ok := e.(*esql.Bin); ok && strings.EqualFold(b.Op, "AND") {
		l, err := tr.translateQual(b.L)
		if err != nil {
			return nil, err
		}
		r, err := tr.translateQual(b.R)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	}
	t, err := tr.translateExpr(e)
	if err != nil {
		return nil, err
	}
	return []*term.Term{t}, nil
}

func (tr *translator) translateExpr(e esql.Expr) (*term.Term, error) {
	switch x := e.(type) {
	case *esql.Lit:
		return term.C(x.Val), nil
	case *esql.Param:
		return nil, fmt.Errorf("translate: unbound parameter $%d — bind it with EXECUTE", x.Index)
	case *esql.Ref:
		return tr.resolveRef(x)
	case *esql.App:
		args := make([]*term.Term, len(x.Args))
		for i, a := range x.Args {
			t, err := tr.translateExpr(a)
			if err != nil {
				return nil, err
			}
			args[i] = t
		}
		return lera.Call(x.Fn, args...), nil
	case *esql.Bin:
		l, err := tr.translateExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := tr.translateExpr(x.R)
		if err != nil {
			return nil, err
		}
		op := strings.ToUpper(x.Op)
		if op == "AND" {
			return lera.Ands(l, r), nil
		}
		if op == "OR" {
			return lera.Ors(l, r), nil
		}
		if op == "=" {
			l, r = canonicalEqOrder(l, r)
		}
		return term.F(op, l, r), nil
	case *esql.Not:
		a, err := tr.translateExpr(x.Arg)
		if err != nil {
			return nil, err
		}
		return lera.Not(a), nil
	case *esql.Quant:
		a, err := tr.translateExpr(x.Arg)
		if err != nil {
			return nil, err
		}
		if x.All {
			return term.F("ALL", a), nil
		}
		return term.F("EXIST", a), nil
	case *esql.CollLit:
		elems := make([]*term.Term, len(x.Elems))
		for i, el := range x.Elems {
			t, err := tr.translateExpr(el)
			if err != nil {
				return nil, err
			}
			elems[i] = t
		}
		switch x.Kind {
		case value.KSet:
			return term.Set(elems...), nil
		case value.KBag:
			return term.Bag(elems...), nil
		case value.KList:
			return term.List(elems...), nil
		default:
			return term.Array(elems...), nil
		}
	case *esql.TupleLit:
		elems := make([]*term.Term, len(x.Elems))
		allConst := true
		for i, el := range x.Elems {
			t, err := tr.translateExpr(el)
			if err != nil {
				return nil, err
			}
			elems[i] = t
			if t.Kind != term.Const {
				allConst = false
			}
		}
		if allConst {
			// Preserve field names: a literal tuple becomes a constant
			// value, so EVALUATE folding and field access see lo/hi.
			vals := make([]value.Value, len(elems))
			for i, e := range elems {
				vals[i] = e.Val
			}
			return term.C(value.NewTuple(x.Names, vals)), nil
		}
		return term.TupleT(elems...), nil
	}
	return nil, fmt.Errorf("unsupported expression %T", e)
}

// canonicalEqOrder orders the operands of the symmetric '=' so that
// equivalent qualifications print identically: applications before
// variables before constants, ties broken by the term order. This yields
// the paper's 1.1=2.1 regardless of which side the query wrote first.
func canonicalEqOrder(l, r *term.Term) (*term.Term, *term.Term) {
	rank := func(t *term.Term) int {
		switch t.Kind {
		case term.Fun:
			return 0
		case term.Var, term.SeqVar:
			return 1
		default:
			return 2
		}
	}
	if rank(l) > rank(r) || (rank(l) == rank(r) && term.Compare(l, r) > 0) {
		return r, l
	}
	return l, r
}
