// Package rules implements the paper's rule language (Figure 6): term
// rewriting rules of the form
//
//	rule <name>: <lhs> / <constraints> --> <rhs> / <methods> ;
//
// extended with the meta-rule language of Section 4.2:
//
//	block(<name>, {<rule>, ...}, <limit>);
//	seq({<block>, ...}, <limit>);
//
// where <limit> is a non-negative integer or "inf" (application up to
// saturation). Terms use the conventions of Figure 6: single-letter
// identifiers (optionally followed by one digit or letter, e.g. x, f2,
// gs) are variables; a variable immediately followed by '*' is a
// collection variable; a single-letter identifier applied to arguments is
// a function variable; longer identifiers are function symbols. Infix
// comparison (= <> < > <= >=), arithmetic (+ - * /) and the connectives
// AND, OR, NOT are accepted and parsed into their prefix functional form.
package rules

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tVar    // variable (single-letter rule per package comment)
	tSeqVar // x*
	tNumber // integer or real
	tString // 'quoted'
	tPunct  // ( ) { } , ; : /
	tOp     // = <> < > <= >= + - * / -->
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

type lexer struct {
	src    []rune
	pos    int
	line   int
	col    int
	toks   []token
	errPos string
}

func lex(src string) ([]token, error) {
	l := &lexer{src: []rune(src), line: 1, col: 1}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) peekRune() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekRuneAt(off int) rune {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		r := l.peekRune()
		if unicode.IsSpace(r) {
			l.advance()
			continue
		}
		// SQL-style comment to end of line.
		if r == '-' && l.peekRuneAt(1) == '-' && l.peekRuneAt(2) != '>' {
			for l.pos < len(l.src) && l.peekRune() != '\n' {
				l.advance()
			}
			continue
		}
		break
	}
}

func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tEOF, line: line, col: col}, nil
	}
	r := l.peekRune()

	switch {
	case unicode.IsLetter(r) || r == '_':
		var sb strings.Builder
		for l.pos < len(l.src) {
			c := l.peekRune()
			if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '-' {
				// A '-' inside an identifier is allowed only when
				// followed by a letter/digit (e.g. set-union), so that
				// "x --> y" lexes as an arrow, and "x - y" as minus.
				if c == '-' {
					n1, n2 := l.peekRuneAt(1), l.peekRuneAt(2)
					if !(unicode.IsLetter(n1) || unicode.IsDigit(n1)) || (n1 == '-' && n2 == '>') {
						break
					}
					if n1 == '-' {
						break
					}
				}
				sb.WriteRune(c)
				l.advance()
				continue
			}
			break
		}
		text := sb.String()
		// Collection variable: variable immediately followed by '*'.
		if isVarName(text) && l.peekRune() == '*' {
			l.advance()
			return token{kind: tSeqVar, text: text, line: line, col: col}, nil
		}
		if isVarName(text) {
			return token{kind: tVar, text: text, line: line, col: col}, nil
		}
		return token{kind: tIdent, text: text, line: line, col: col}, nil

	case unicode.IsDigit(r):
		var sb strings.Builder
		seenDot := false
		for l.pos < len(l.src) {
			c := l.peekRune()
			if unicode.IsDigit(c) {
				sb.WriteRune(c)
				l.advance()
				continue
			}
			if c == '.' && !seenDot && unicode.IsDigit(l.peekRuneAt(1)) {
				seenDot = true
				sb.WriteRune(c)
				l.advance()
				continue
			}
			break
		}
		return token{kind: tNumber, text: sb.String(), line: line, col: col}, nil

	case r == '\'':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, fmt.Errorf("rules: %d:%d: unterminated string literal", line, col)
			}
			c := l.advance()
			if c == '\'' {
				if l.peekRune() == '\'' { // escaped quote
					sb.WriteRune('\'')
					l.advance()
					continue
				}
				break
			}
			sb.WriteRune(c)
		}
		return token{kind: tString, text: sb.String(), line: line, col: col}, nil
	}

	// Operators and punctuation.
	two := string(r) + string(l.peekRuneAt(1))
	switch two {
	case "--":
		if l.peekRuneAt(2) == '>' {
			l.advance()
			l.advance()
			l.advance()
			return token{kind: tOp, text: "-->", line: line, col: col}, nil
		}
	case "<>", "<=", ">=":
		l.advance()
		l.advance()
		return token{kind: tOp, text: two, line: line, col: col}, nil
	}
	switch r {
	case '(', ')', '{', '}', ',', ';', ':':
		l.advance()
		return token{kind: tPunct, text: string(r), line: line, col: col}, nil
	case '/', '=', '<', '>', '+', '-', '*':
		l.advance()
		return token{kind: tOp, text: string(r), line: line, col: col}, nil
	}
	return token{}, fmt.Errorf("rules: %d:%d: unexpected character %q", line, col, string(r))
}

// isVarName reports whether an identifier denotes a variable under the
// Figure 6 convention generalised in the package comment: a lowercase
// letter optionally followed by a single letter or digit.
func isVarName(s string) bool {
	if len(s) == 0 || len(s) > 2 {
		return false
	}
	if s[0] < 'a' || s[0] > 'z' {
		return false
	}
	if len(s) == 2 {
		c := s[1]
		ok := (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// isFunVarName reports whether an applied identifier is a function
// variable (single letter, as F, G, ... in Figure 6; lowercase p(x) of
// Figure 11 included).
func isFunVarName(s string) bool {
	return len(s) == 1 && unicode.IsLetter(rune(s[0]))
}
