package rules

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// Fingerprint returns a stable hex digest of the rule base: every rule in
// declaration order rendered in the concrete syntax, every block with its
// rule list and limit, and the sequence meta-rule. Two rule sets with
// equal fingerprints drive the rewriter identically, so benchmark output
// tagged with a fingerprint is attributable to an exact rule base.
func (rs *RuleSet) Fingerprint() string {
	var sb strings.Builder
	for _, n := range rs.RuleOrder {
		sb.WriteString(rs.Rules[n].String())
		sb.WriteByte('\n')
	}
	for _, bn := range rs.BlockOrder {
		b := rs.Blocks[bn]
		fmt.Fprintf(&sb, "block %s {%s} %d\n", b.Name, strings.Join(b.Rules, ","), b.Limit)
	}
	if rs.Sequence != nil {
		fmt.Fprintf(&sb, "seq {%s} %d\n", strings.Join(rs.Sequence.Blocks, ","), rs.Sequence.Limit)
	}
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:])
}
