package rules

import (
	"fmt"
	"strconv"
	"strings"

	"lera/internal/term"
	"lera/internal/value"
)

// Rule is a compiled rewrite rule: "if the left term appears in the query
// under the given set of constraints, it is rewritten as the given right
// term after the application of the given set of methods" (Section 4.1).
type Rule struct {
	Name        string
	LHS         *term.Term
	Constraints []*term.Term
	RHS         *term.Term
	Methods     []*term.Term
	// Line and Col locate the "rule" keyword in the source the rule was
	// parsed from (1-based; zero for rules built programmatically), so
	// diagnostics can point at the offending declaration.
	Line, Col int
}

// Decreasing reports whether the rule's right-hand side has strictly fewer
// nodes than its left-hand side — the paper's §4.2 criterion for rules
// that are guaranteed to terminate when applied alone.
func (r *Rule) Decreasing() bool { return r.RHS.Size() < r.LHS.Size() }

// String renders the rule in the concrete syntax.
func (r *Rule) String() string {
	var sb strings.Builder
	sb.WriteString(r.Name)
	sb.WriteString(": ")
	sb.WriteString(r.LHS.String())
	sb.WriteString(" / ")
	sb.WriteString(joinTerms(r.Constraints))
	sb.WriteString(" --> ")
	sb.WriteString(r.RHS.String())
	sb.WriteString(" / ")
	sb.WriteString(joinTerms(r.Methods))
	return sb.String()
}

func joinTerms(ts []*term.Term) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, ", ")
}

// Infinite is the block limit meaning "apply up to saturation".
const Infinite = -1

// Block groups rules with an application limit (§4.2): each time a rule
// condition is checked the remaining limit decreases by one.
type Block struct {
	Name  string
	Rules []string
	Limit int // Infinite or a non-negative budget
	// Line and Col locate the "block" keyword in the source (1-based;
	// zero for blocks built programmatically).
	Line, Col int
}

// Seq is the meta-rule forcing blocks to run in order, at most Limit times
// around the whole list (§4.2).
type Seq struct {
	Blocks []string
	Limit  int
	// Line and Col locate the "seq" keyword in the source (1-based; zero
	// when built programmatically).
	Line, Col int
}

// RuleSet is the result of parsing a rule program: rules, blocks and the
// (at most one) sequence meta-rule.
type RuleSet struct {
	Rules      map[string]*Rule
	RuleOrder  []string
	Blocks     map[string]*Block
	BlockOrder []string
	Sequence   *Seq
}

// NewRuleSet returns an empty rule set.
func NewRuleSet() *RuleSet {
	return &RuleSet{Rules: map[string]*Rule{}, Blocks: map[string]*Block{}}
}

// Merge adds all definitions of other into rs, overriding same-named rules
// and blocks and replacing the sequence if other declares one — the
// database implementor's extension mechanism.
func (rs *RuleSet) Merge(other *RuleSet) {
	for _, n := range other.RuleOrder {
		if _, dup := rs.Rules[n]; !dup {
			rs.RuleOrder = append(rs.RuleOrder, n)
		}
		rs.Rules[n] = other.Rules[n]
	}
	for _, n := range other.BlockOrder {
		if _, dup := rs.Blocks[n]; !dup {
			rs.BlockOrder = append(rs.BlockOrder, n)
		}
		rs.Blocks[n] = other.Blocks[n]
	}
	if other.Sequence != nil {
		rs.Sequence = other.Sequence
	}
}

// ValidateBlocks checks that every block references declared rules.
func (rs *RuleSet) ValidateBlocks() error {
	for _, bn := range rs.BlockOrder {
		b := rs.Blocks[bn]
		for _, rn := range b.Rules {
			if _, ok := rs.Rules[rn]; !ok {
				return fmt.Errorf("rules: block %q references unknown rule %q", b.Name, rn)
			}
		}
	}
	return nil
}

// Validate checks block-to-rule references and that the sequence (if any)
// references declared blocks. Parse only checks blocks, so that a rule
// source can carry a sequence over blocks defined elsewhere and be merged
// before full validation.
func (rs *RuleSet) Validate() error {
	if err := rs.ValidateBlocks(); err != nil {
		return err
	}
	if rs.Sequence != nil {
		for _, bn := range rs.Sequence.Blocks {
			if _, ok := rs.Blocks[bn]; !ok {
				return fmt.Errorf("rules: seq references unknown block %q", bn)
			}
		}
	}
	return nil
}

// Parse parses a rule program.
func Parse(src string) (*RuleSet, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	rs := NewRuleSet()
	for !p.atEOF() {
		switch {
		case p.peekIdent("rule"):
			r, err := p.parseRule()
			if err != nil {
				return nil, err
			}
			if _, dup := rs.Rules[r.Name]; dup {
				return nil, fmt.Errorf("rules: duplicate rule %q", r.Name)
			}
			rs.Rules[r.Name] = r
			rs.RuleOrder = append(rs.RuleOrder, r.Name)
		case p.peekIdent("block"):
			b, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			if _, dup := rs.Blocks[b.Name]; dup {
				return nil, fmt.Errorf("rules: duplicate block %q", b.Name)
			}
			rs.Blocks[b.Name] = b
			rs.BlockOrder = append(rs.BlockOrder, b.Name)
		case p.peekIdent("seq"):
			s, err := p.parseSeq()
			if err != nil {
				return nil, err
			}
			rs.Sequence = s
		default:
			t := p.peek()
			return nil, fmt.Errorf("rules: %d:%d: expected 'rule', 'block' or 'seq', got %q", t.line, t.col, t.text)
		}
	}
	return rs, rs.ValidateBlocks()
}

// ParseSequence parses a standalone "seq({...}, n);" declaration without
// validating block references — callers merge it into a rule set that
// defines the blocks.
func ParseSequence(src string) (*Seq, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	if !p.peekIdent("seq") {
		t := p.peek()
		return nil, fmt.Errorf("rules: %d:%d: expected 'seq', got %q", t.line, t.col, t.text)
	}
	s, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		t := p.peek()
		return nil, fmt.Errorf("rules: %d:%d: unexpected %q after sequence", t.line, t.col, t.text)
	}
	return s, nil
}

// MustParse parses or panics; for embedded built-in rule programs.
func MustParse(src string) *RuleSet {
	rs, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return rs
}

type parser struct {
	toks []token
	pos  int
	// depth tracks parenthesis nesting: at depth 0 a '/' is always the
	// rule-section delimiter, never division; inside parentheses it is
	// division.
	depth int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.peek().kind == tEOF }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) peekIdent(text string) bool {
	t := p.peek()
	return (t.kind == tIdent || t.kind == tVar) && strings.EqualFold(t.text, text)
}

func (p *parser) expectPunct(s string) error {
	t := p.peek()
	if t.kind == tPunct && t.text == s {
		p.advance()
		return nil
	}
	return fmt.Errorf("rules: %d:%d: expected %q, got %q", t.line, t.col, s, t.text)
}

func (p *parser) expectOp(s string) error {
	t := p.peek()
	if t.kind == tOp && t.text == s {
		p.advance()
		return nil
	}
	return fmt.Errorf("rules: %d:%d: expected %q, got %q", t.line, t.col, s, t.text)
}

func (p *parser) atPunct(s string) bool {
	t := p.peek()
	return t.kind == tPunct && t.text == s
}

func (p *parser) atOp(s string) bool {
	t := p.peek()
	return t.kind == tOp && t.text == s
}

func (p *parser) parseName(what string) (string, error) {
	t := p.peek()
	if t.kind != tIdent && t.kind != tVar && t.kind != tString {
		return "", fmt.Errorf("rules: %d:%d: expected %s name, got %q", t.line, t.col, what, t.text)
	}
	p.advance()
	return t.text, nil
}

// parseRule parses: rule <name>: <lhs> [/ constraints] --> <rhs> [/ methods] ;
func (p *parser) parseRule() (*Rule, error) {
	kw := p.advance() // 'rule'
	name, err := p.parseName("rule")
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	var constraints []*term.Term
	if p.atOp("/") {
		p.advance()
		constraints, err = p.parseTermList(func() bool { return p.atOp("-->") })
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectOp("-->"); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	var methods []*term.Term
	if p.atOp("/") {
		p.advance()
		methods, err = p.parseTermList(func() bool { return p.atPunct(";") })
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	r := &Rule{Name: name, LHS: lhs, Constraints: constraints, RHS: rhs, Methods: methods,
		Line: kw.line, Col: kw.col}
	if r.LHS.Kind != term.Fun {
		return nil, fmt.Errorf("rules: %d:%d: rule %q: left-hand side must be a functional expression", kw.line, kw.col, name)
	}
	return r, nil
}

// parseTermList parses comma-separated terms until stop() or the list is
// empty (a bare delimiter means an empty list, as in "lhs / --> rhs /").
func (p *parser) parseTermList(stop func() bool) ([]*term.Term, error) {
	var out []*term.Term
	if stop() || p.atPunct(";") {
		return out, nil
	}
	for {
		t, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if p.atPunct(",") {
			p.advance()
			continue
		}
		return out, nil
	}
}

// parseBlock parses: block(<name>, {<rule>, ...}, <limit>);
func (p *parser) parseBlock() (*Block, error) {
	kw := p.advance() // 'block'
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	name, err := p.parseName("block")
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	names, err := p.parseNameSet("rule")
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	limit, err := p.parseLimit()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &Block{Name: name, Rules: names, Limit: limit, Line: kw.line, Col: kw.col}, nil
}

// parseSeq parses: seq({<block>, ...}, <limit>);
func (p *parser) parseSeq() (*Seq, error) {
	kw := p.advance() // 'seq'
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	names, err := p.parseNameSet("block")
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	limit, err := p.parseLimit()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &Seq{Blocks: names, Limit: limit, Line: kw.line, Col: kw.col}, nil
}

func (p *parser) parseNameSet(what string) ([]string, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var names []string
	for !p.atPunct("}") {
		n, err := p.parseName(what)
		if err != nil {
			return nil, err
		}
		names = append(names, n)
		if p.atPunct(",") {
			p.advance()
		}
	}
	p.advance() // '}'
	return names, nil
}

func (p *parser) parseLimit() (int, error) {
	t := p.peek()
	if (t.kind == tIdent || t.kind == tVar) && strings.EqualFold(t.text, "inf") {
		p.advance()
		return Infinite, nil
	}
	if t.kind == tNumber {
		p.advance()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("rules: %d:%d: invalid limit %q", t.line, t.col, t.text)
		}
		return n, nil
	}
	return 0, fmt.Errorf("rules: %d:%d: expected limit (number or inf), got %q", t.line, t.col, t.text)
}

// --- term expressions with infix operators ---
//
// Precedence (loosest to tightest):
//   OR < AND < NOT < comparison (= <> < > <= >=) < + - < * / < unary - < primary

func (p *parser) parseExpr() (*term.Term, error) { return p.parseOr() }

func (p *parser) parseOr() (*term.Term, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peekIdent("OR") {
		p.advance()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = term.F("OR", left, right)
	}
	return left, nil
}

func (p *parser) parseAnd() (*term.Term, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peekIdent("AND") {
		p.advance()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = term.F("AND", left, right)
	}
	return left, nil
}

func (p *parser) parseNot() (*term.Term, error) {
	if p.peekIdent("NOT") {
		p.advance()
		arg, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return term.F("NOT", arg), nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (*term.Term, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "<>", "<=", ">=", "<", ">"} {
		if p.atOp(op) {
			p.advance()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return term.F(op, left, right), nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (*term.Term, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.atOp("+") || p.atOp("-") {
		op := p.advance().text
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = term.F(op, left, right)
	}
	return left, nil
}

func (p *parser) parseMultiplicative() (*term.Term, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.atOp("*") || p.atOp("/") {
		// A '/' also delimits rule sections; it is division only inside
		// parentheses.
		if p.atOp("/") && p.depth == 0 {
			break
		}
		op := p.advance().text
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = term.F(op, left, right)
	}
	return left, nil
}

func (p *parser) parseUnary() (*term.Term, error) {
	if p.atOp("-") {
		p.advance()
		arg, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if arg.Kind == term.Const {
			if arg.Val.K == value.KInt {
				return term.Num(-arg.Val.I), nil
			}
			if arg.Val.K == value.KReal {
				return term.Flt(-arg.Val.F), nil
			}
		}
		return term.F("NEG", arg), nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (*term.Term, error) {
	t := p.peek()
	switch t.kind {
	case tNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("rules: %d:%d: bad number %q", t.line, t.col, t.text)
			}
			return term.Flt(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("rules: %d:%d: bad number %q", t.line, t.col, t.text)
		}
		return term.Num(n), nil

	case tString:
		p.advance()
		return term.Str(t.text), nil

	case tSeqVar:
		p.advance()
		return term.SV(t.text), nil

	case tVar:
		p.advance()
		// Application with a single-letter head is a function variable
		// (Figure 6: F, G, ..., and p(x) in Figure 11).
		if p.atPunct("(") {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			if isFunVarName(t.text) {
				return term.FV(t.text, args...), nil
			}
			return term.F(t.text, args...), nil
		}
		return term.V(t.text), nil

	case tIdent:
		p.advance()
		switch strings.ToUpper(t.text) {
		case "TRUE":
			return term.TrueT(), nil
		case "FALSE":
			return term.FalseT(), nil
		}
		if p.atPunct("(") {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			if isFunVarName(t.text) {
				return term.FV(t.text, args...), nil
			}
			return term.F(t.text, args...), nil
		}
		// A bare multi-letter identifier is a symbolic constant
		// (e.g. a type name in ISA(x, Point)).
		return term.Str(t.text), nil

	case tPunct:
		if t.text == "(" {
			p.advance()
			p.depth++
			e, err := p.parseExpr()
			p.depth--
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("rules: %d:%d: unexpected token %q", t.line, t.col, t.text)
}

func (p *parser) parseArgs() ([]*term.Term, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	p.depth++
	defer func() { p.depth-- }()
	var args []*term.Term
	for !p.atPunct(")") {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.atPunct(",") {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return args, nil
}

// TerminationWarnings implements the §4.2 analysis: "subsets of rewriting
// rules can be isolated that either increase or decrease the number of
// terms in a query". A rule whose right-hand side is not smaller than its
// left-hand side, placed in a block with an infinite limit, cannot be
// guaranteed to terminate by budgets alone; the engine's no-change
// detection and MaxChecks guard still apply, but the database implementor
// should see the warning. Right-hand sides calling optimizer builtins are
// sized syntactically (an approximation, noted in the message).
func (rs *RuleSet) TerminationWarnings() []string {
	var out []string
	for _, bn := range rs.BlockOrder {
		b := rs.Blocks[bn]
		if b.Limit != Infinite {
			continue
		}
		for _, rn := range b.Rules {
			r, ok := rs.Rules[rn]
			if !ok || r.Decreasing() {
				continue
			}
			out = append(out, fmt.Sprintf(
				"rule %q in saturating block %q does not decrease term count (lhs %d, rhs %d nodes); termination relies on no-change detection",
				rn, bn, r.LHS.Size(), r.RHS.Size()))
		}
	}
	return out
}
