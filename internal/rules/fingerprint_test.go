package rules

import "testing"

const fpSrc = `
rule one: FILTER(r, q) / ISTRUEQ(q) --> r / ;
rule two: UNIONN(SET(x)) / --> x / ;
block(b1, {one, two}, 10);
seq({b1}, 2);
`

func TestFingerprintDeterministic(t *testing.T) {
	a := MustParse(fpSrc).Fingerprint()
	b := MustParse(fpSrc).Fingerprint()
	if a != b {
		t.Fatalf("same source, different fingerprints: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("fingerprint is not a sha-256 hex digest: %q", a)
	}
}

func TestFingerprintSensitive(t *testing.T) {
	base := MustParse(fpSrc)
	variants := []string{
		// changed RHS
		"rule one: FILTER(r, q) / ISTRUEQ(q) --> FILTER(r, q) / ;\nrule two: UNIONN(SET(x)) / --> x / ;\nblock(b1, {one, two}, 10);\nseq({b1}, 2);",
		// changed block limit
		"rule one: FILTER(r, q) / ISTRUEQ(q) --> r / ;\nrule two: UNIONN(SET(x)) / --> x / ;\nblock(b1, {one, two}, 11);\nseq({b1}, 2);",
		// changed sequence rounds
		"rule one: FILTER(r, q) / ISTRUEQ(q) --> r / ;\nrule two: UNIONN(SET(x)) / --> x / ;\nblock(b1, {one, two}, 10);\nseq({b1}, 3);",
	}
	for i, src := range variants {
		if MustParse(src).Fingerprint() == base.Fingerprint() {
			t.Errorf("variant %d has the same fingerprint as the base rule set", i)
		}
	}
}

func TestParsePositions(t *testing.T) {
	rs := MustParse(fpSrc)
	one := rs.Rules["one"]
	if one.Line != 2 || one.Col != 1 {
		t.Errorf("rule one position = %d:%d, want 2:1", one.Line, one.Col)
	}
	two := rs.Rules["two"]
	if two.Line != 3 {
		t.Errorf("rule two line = %d, want 3", two.Line)
	}
	b := rs.Blocks["b1"]
	if b.Line != 4 || b.Col != 1 {
		t.Errorf("block b1 position = %d:%d, want 4:1", b.Line, b.Col)
	}
	if rs.Sequence.Line != 5 {
		t.Errorf("seq line = %d, want 5", rs.Sequence.Line)
	}
}
