package rules

import (
	"math/rand"
	"strings"
	"testing"

	"lera/internal/term"
)

func parseOne(t *testing.T, src string) *Rule {
	t.Helper()
	rs, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	if len(rs.RuleOrder) != 1 {
		t.Fatalf("expected 1 rule, got %d", len(rs.RuleOrder))
	}
	return rs.Rules[rs.RuleOrder[0]]
}

func TestParseSimpleRule(t *testing.T) {
	r := parseOne(t, "rule r1: F(x) / --> G(x) / ;")
	if r.Name != "r1" {
		t.Errorf("name = %q", r.Name)
	}
	if !r.LHS.VarHead || r.LHS.Functor != "F" {
		t.Errorf("lhs = %s", r.LHS)
	}
	if len(r.Constraints) != 0 || len(r.Methods) != 0 {
		t.Errorf("empty sections expected: %v %v", r.Constraints, r.Methods)
	}
}

func TestParseOmittedSections(t *testing.T) {
	// Both '/' sections may be omitted entirely.
	r := parseOne(t, "rule r: FOO(x) --> BAR(x);")
	if r.LHS.Functor != "FOO" || r.RHS.Functor != "BAR" {
		t.Errorf("rule = %s", r)
	}
}

// The paper's running example (Section 4.1):
//
//	F(SET(x*, G(y, f))) / MEMBER(y, x*), f = TRUE --> F(x*) /
func TestParsePaperRunningExample(t *testing.T) {
	r := parseOne(t, "rule ex: F(SET(x*, G(y, f))) / MEMBER(y, x*), f = TRUE --> F(x*) / ;")
	if len(r.Constraints) != 2 {
		t.Fatalf("constraints = %v", r.Constraints)
	}
	if r.Constraints[0].String() != "MEMBER(y, x*)" {
		t.Errorf("c0 = %s", r.Constraints[0])
	}
	if r.Constraints[1].String() != "=(f, TRUE)" {
		t.Errorf("c1 = %s", r.Constraints[1])
	}
	inner := r.LHS.Args[0]
	if inner.Functor != term.FSet {
		t.Fatalf("lhs arg = %s", inner)
	}
	// G(y, f) is a function-variable application.
	if !inner.Args[0].VarHead {
		t.Errorf("G should be a function variable: %s", inner.Args[0])
	}
	if !r.Decreasing() {
		t.Error("the paper notes this rule decreases the number of terms")
	}
}

// Figure 7 search merging rule, in our concrete syntax with explicit
// context arguments to SUBSTITUTE/SHIFT.
func TestParseFigure7SearchMerging(t *testing.T) {
	src := `
rule search_merge:
  SEARCH(LIST(x*, SEARCH(z, g, b), v*), f, a)
  / -->
  SEARCH(APPENDL(x*, v*, z), ANDMERGE(f2, g2), a2)
  / SUBSTITUTE(f, x*, v*, z, b, f2), SHIFT(g, x*, v*, z, g2), SUBSTITUTE(a, x*, v*, z, b, a2) ;
`
	r := parseOne(t, src)
	if len(r.Methods) != 3 {
		t.Fatalf("methods = %v", r.Methods)
	}
	if r.Methods[1].Functor != "SHIFT" {
		t.Errorf("m1 = %s", r.Methods[1])
	}
	// LHS shape: seq vars in an ordered LIST context.
	lst := r.LHS.Args[0]
	if lst.Functor != term.FList || lst.Args[0].Kind != term.SeqVar {
		t.Errorf("lhs list = %s", lst)
	}
}

// Figure 7 union merging rule:
//
//	UNION(SET(x*, UNION(z))) / --> UNION(SET-UNION(x*, z)) /
func TestParseFigure7UnionMerging(t *testing.T) {
	r := parseOne(t, "rule union_merge: UNION(SET(x*, UNION(z))) / --> UNION(SET-UNION(x*, z)) / ;")
	if r.RHS.Args[0].Functor != "SET-UNION" {
		t.Errorf("rhs = %s", r.RHS)
	}
}

// Figure 10 integrity constraints.
func TestParseFigure10Constraints(t *testing.T) {
	src := `
rule ic_point_abs: F(x) / ISA(x, Point) --> F(x) AND ABS(x) > 0 / ;
rule ic_point_ord: F(x) / ISA(x, Point) --> F(x) AND ORD(x) > 0 / ;
rule ic_category:  F(x) / ISA(x, Category) --> F(x) AND MEMBER(x, SET('Comedy', 'Adventure', 'Science Fiction', 'Western')) / ;
`
	rs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.RuleOrder) != 3 {
		t.Fatalf("rules = %v", rs.RuleOrder)
	}
	r := rs.Rules["ic_point_abs"]
	// RHS: AND(F(x), >(ABS(x), 0)).
	if r.RHS.Functor != "AND" {
		t.Fatalf("rhs = %s", r.RHS)
	}
	if r.RHS.Args[1].String() != ">(ABS(x), 0)" {
		t.Errorf("rhs conjunct = %s", r.RHS.Args[1])
	}
	if r.Constraints[0].String() != "ISA(x, 'Point')" {
		t.Errorf("constraint = %s", r.Constraints[0])
	}
}

// Figure 11 implicit semantic knowledge.
func TestParseFigure11Implicit(t *testing.T) {
	src := `
rule transitivity_eq: x = y AND y = z --> x = y AND y = z AND x = z ;
rule include_trans:
  INCLUDE(x, y) AND INCLUDE(y, z) / ISA(x, Set), ISA(y, Set), ISA(z, Set)
  --> INCLUDE(x, y) AND INCLUDE(y, z) AND INCLUDE(x, z) / ;
rule eq_subst: x = y AND p(x) --> x = y AND p(x) AND p(y) ;
rule subclass_subst: p(y) / ISA(x, y) --> p(y) AND p(x) / ;
`
	rs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	eq := rs.Rules["transitivity_eq"]
	// Left-assoc AND: AND(AND(=(x,y), =(y,z))...).
	if eq.LHS.Functor != "AND" || eq.LHS.Args[0].Functor != "=" {
		t.Errorf("lhs = %s", eq.LHS)
	}
	subst := rs.Rules["eq_subst"]
	// p(x) is a function variable application.
	found := false
	term.Walk(subst.LHS, func(s *term.Term, _ term.Path) bool {
		if s.Kind == term.Fun && s.VarHead && s.Functor == "p" {
			found = true
		}
		return true
	})
	if !found {
		t.Errorf("p(x) must parse as a function variable: %s", subst.LHS)
	}
}

// Figure 12 predicate simplification rules.
func TestParseFigure12Simplification(t *testing.T) {
	src := `
rule gt_le_incons: x > y AND x <= y --> FALSE ;
rule and_false: f AND FALSE --> FALSE ;
rule sub_zero: x - y = 0 / ISA(x, constant), ISA(y, constant) --> x = y / ;
rule const_fold: F(x, y) / ISA(x, constant), ISA(y, constant) --> a / EVALUATE(F(x, y), a) ;
`
	rs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sz := rs.Rules["sub_zero"]
	if sz.LHS.String() != "=(-(x, y), 0)" {
		t.Errorf("sub_zero lhs = %s", sz.LHS)
	}
	cf := rs.Rules["const_fold"]
	if len(cf.Methods) != 1 || cf.Methods[0].Functor != "EVALUATE" {
		t.Errorf("const_fold methods = %v", cf.Methods)
	}
	if cf.RHS.Kind != term.Var || cf.RHS.Name != "a" {
		t.Errorf("const_fold rhs = %s", cf.RHS)
	}
	af := rs.Rules["and_false"]
	if af.LHS.String() != "AND(f, FALSE)" {
		t.Errorf("and_false lhs = %s", af.LHS)
	}
}

// Figure 9 Alexander invocation rule.
func TestParseFigure9Alexander(t *testing.T) {
	src := `
rule alexander:
  SEARCH(LIST(x*, FIX(z, e, p), y*), q, a)
  / BINDSFIX(q, x*, z)
  --> SEARCH(APPENDL(x*, LIST(u), y*), q, a)
  / ADORNMENT(q, x*, z, s), ALEXANDER(z, e, p, s, u) ;
`
	r := parseOne(t, src)
	if len(r.Constraints) != 1 || len(r.Methods) != 2 {
		t.Fatalf("rule = %s", r)
	}
	if r.Methods[1].Functor != "ALEXANDER" {
		t.Errorf("m1 = %s", r.Methods[1])
	}
}

func TestParseBlocksAndSeq(t *testing.T) {
	src := `
rule a: F(x) --> G(x);
rule b: G(x) --> H(x);
block(merge, {a, b}, inf);
block(push, {a}, 100);
seq({merge, push, merge}, 2);
`
	rs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.BlockOrder) != 2 {
		t.Fatalf("blocks = %v", rs.BlockOrder)
	}
	if rs.Blocks["merge"].Limit != Infinite {
		t.Errorf("merge limit = %d", rs.Blocks["merge"].Limit)
	}
	if rs.Blocks["push"].Limit != 100 {
		t.Errorf("push limit = %d", rs.Blocks["push"].Limit)
	}
	if rs.Sequence == nil || len(rs.Sequence.Blocks) != 3 || rs.Sequence.Limit != 2 {
		t.Errorf("seq = %+v", rs.Sequence)
	}
	// The same block may appear several times in the sequence (§4.2).
	if rs.Sequence.Blocks[0] != "merge" || rs.Sequence.Blocks[2] != "merge" {
		t.Errorf("seq order = %v", rs.Sequence.Blocks)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"rule",
		"rule r",
		"rule r: ;",
		"rule r: F(x) --> ",
		"rule r: F(x) --> G(x)", // missing ;
		"rule r: x --> G(x);",   // lhs must be functional
		"rule r: F(x --> G(x);", // unbalanced
		"block(b, {r}, inf);",   // unknown rule
		"rule r: F(x) --> G(x); rule r: F(x) --> G(x);",          // dup rule
		"rule r: F(x) --> G(x); block(b,{r},1); block(b,{r},1);", // dup block
		"rule r: F(x) --> G(x); block(b,{r},-2);",
		"rule r: F(x) --> G(x); block(b,{r},x);",
		"frobnicate;",
		"rule r: F('unterminated --> G(x);",
		"rule r: F(?) --> G(x);",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := `
-- the merging block
rule a: F(x) --> G(x); -- trailing comment
`
	rs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.RuleOrder) != 1 {
		t.Errorf("rules = %v", rs.RuleOrder)
	}
}

func TestParseNumbersAndStrings(t *testing.T) {
	r := parseOne(t, "rule r: F(x) / x > 10.5, x <> -3 --> G('it''s', 10000) ;")
	if r.Constraints[0].String() != ">(x, 10.5)" {
		t.Errorf("real literal: %s", r.Constraints[0])
	}
	if r.Constraints[1].String() != "<>(x, -3)" {
		t.Errorf("negative int: %s", r.Constraints[1])
	}
	if r.RHS.Args[0].String() != "'it''s'" {
		t.Errorf("escaped string: %s", r.RHS.Args[0])
	}
}

func TestParseDivisionInsideParens(t *testing.T) {
	r := parseOne(t, "rule r: F(x) / (x / 2) > 1 --> G(x) ;")
	if r.Constraints[0].String() != ">(/(x, 2), 1)" {
		t.Errorf("division = %s", r.Constraints[0])
	}
}

func TestParseOrNotPrecedence(t *testing.T) {
	r := parseOne(t, "rule r: F(x) / NOT x = 1 OR x = 2 AND x = 3 --> G(x) ;")
	// OR(NOT(=(x,1)), AND(=(x,2), =(x,3)))
	want := "OR(NOT(=(x, 1)), AND(=(x, 2), =(x, 3)))"
	if got := r.Constraints[0].String(); got != want {
		t.Errorf("precedence: %s, want %s", got, want)
	}
}

func TestRuleString(t *testing.T) {
	r := parseOne(t, "rule r: F(x) / ISA(x, Point) --> G(x) / M(x, y) ;")
	s := r.String()
	for _, want := range []string{"r:", "F(x)", "ISA(x, 'Point')", "-->", "G(x)", "M(x, y)"} {
		if !strings.Contains(s, want) {
			t.Errorf("Rule.String() = %q missing %q", s, want)
		}
	}
}

func TestMergeAndValidate(t *testing.T) {
	a := MustParse("rule r1: F(x) --> G(x); block(b1, {r1}, inf); seq({b1}, 1);")
	b := MustParse("rule r1: F(x) --> H(x); rule r2: G(x) --> H(x); block(b2, {r2}, 1); seq({b2}, 1);")
	a.Merge(b)
	if a.Rules["r1"].RHS.Functor != "H" {
		t.Error("merge must override same-named rules")
	}
	if len(a.RuleOrder) != 2 {
		t.Errorf("rule order = %v", a.RuleOrder)
	}
	if a.Sequence.Blocks[0] != "b2" {
		t.Error("merge must replace sequence")
	}
	if err := a.Validate(); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse must panic on error")
		}
	}()
	MustParse("nonsense")
}

func TestSeqVarVsMultiplication(t *testing.T) {
	// 'x*' (no space) is a collection variable; 'x * y' is multiplication.
	r := parseOne(t, "rule r: F(LIST(x*), x * y) --> G(x*) ;")
	if r.LHS.Args[0].Args[0].Kind != term.SeqVar {
		t.Errorf("x* should be a seq var: %s", r.LHS)
	}
	if r.LHS.Args[1].String() != "*(x, y)" {
		t.Errorf("x * y should be multiplication: %s", r.LHS.Args[1])
	}
}

func TestTerminationWarnings(t *testing.T) {
	rs := MustParse(`
rule shrink: BIG(x, y) --> SMALL(x);
rule grow: SMALL(x) --> BIG(x, WRAP(x));
rule same: MID(x) --> MID2(x);
block(saturate, {shrink, grow, same}, inf);
block(bounded, {grow}, 10);
`)
	warns := rs.TerminationWarnings()
	if len(warns) != 2 {
		t.Fatalf("warnings = %v", warns)
	}
	joined := strings.Join(warns, "\n")
	if !strings.Contains(joined, `"grow"`) || !strings.Contains(joined, `"same"`) {
		t.Errorf("warnings should name grow and same: %v", warns)
	}
	if strings.Contains(joined, `"shrink"`) || strings.Contains(joined, `"bounded"`) {
		t.Errorf("decreasing rules and bounded blocks must not warn: %v", warns)
	}
}

// Arbitrary input must produce an error or a rule set — never a panic.
func TestParserRobustness(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tokens := []string{
		"rule", "block", "seq", "r:", "F(x)", "-->", "/", ";", ",", "(", ")",
		"{", "}", "SET(", "x*", "=", "<=", "AND", "OR", "NOT", "'str'", "42",
		"3.5", "inf", "ISA", "-", "+", "*",
	}
	for trial := 0; trial < 300; trial++ {
		var sb strings.Builder
		n := r.Intn(20)
		for i := 0; i < n; i++ {
			sb.WriteString(tokens[r.Intn(len(tokens))])
			sb.WriteString(" ")
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on %q: %v", sb.String(), p)
				}
			}()
			_, _ = Parse(sb.String())
		}()
	}
}
