package server

// Server behavior under normal load: bit-identity with the embedded
// session, both protocols on one listener, typed shedding, per-tenant
// budgets, typed parse errors, and a clean /metrics scrape.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"lera/internal/core"
	"lera/internal/guard"
	"lera/internal/obs"
)

const filmQuery = "SELECT Title FROM FILM WHERE Numf > 0"

// startServer boots a server on a loopback port and returns it plus its
// base URL. The server drains on test cleanup.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	cfg.LoadFilms = true
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("Serve did not return after Drain")
		}
	})
	return srv, "http://" + ln.Addr().String()
}

// TestServerBitIdenticalToEmbedded: the served rows and engine counters
// for an admitted query match an embedded session over the same snapshot
// exactly.
func TestServerBitIdenticalToEmbedded(t *testing.T) {
	_, base := startServer(t, Config{})

	embedded := core.NewSession()
	embedded.Obs = obs.NewObserver()
	if err := loadFilms(embedded); err != nil {
		t.Fatal(err)
	}
	want, err := embedded.Query(filmQuery)
	if err != nil {
		t.Fatal(err)
	}

	c := NewClient(base)
	out := c.Query(context.Background(), filmQuery)
	if out.Code != guard.CodeOK {
		t.Fatalf("code = %s (%v)", out.Code, out.Err)
	}
	resp := out.Resp
	if resp.RowsN != len(want.Rows) {
		t.Fatalf("rows = %d, want %d", resp.RowsN, len(want.Rows))
	}
	if strings.Join(resp.Columns, ",") != strings.Join(want.Columns, ",") {
		t.Fatalf("columns = %v, want %v", resp.Columns, want.Columns)
	}
	for i, row := range resp.Rows {
		for j, v := range row {
			if v != want.Rows[i][j].String() {
				t.Fatalf("row %d col %d = %q, want %q", i, j, v, want.Rows[i][j].String())
			}
		}
	}
	if resp.Counters == nil {
		t.Fatal("response carries no engine counters")
	}
	if *resp.Counters != want.Report.ExecCounters {
		t.Errorf("served counters %+v differ from embedded %+v", *resp.Counters, want.Report.ExecCounters)
	}
}

// TestServerLineProtocol: the lowercase line protocol shares the listener
// with HTTP and answers the same JSON Response per query.
func TestServerLineProtocol(t *testing.T) {
	srv, base := startServer(t, Config{
		Tenants: Tenants{"free": {MaxRows: 1000}},
	})
	_ = srv

	conn, err := net.Dial("tcp", strings.TrimPrefix(base, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	send := func(line string) string {
		t.Helper()
		if _, err := fmt.Fprintln(conn, line); err != nil {
			t.Fatal(err)
		}
		resp, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(resp)
	}

	if got := send("ping"); got != "pong" {
		t.Fatalf("ping = %q", got)
	}
	if got := send("tenant free"); got != "ok free" {
		t.Fatalf("tenant = %q", got)
	}
	var resp Response
	if err := json.Unmarshal([]byte(send("query "+filmQuery)), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Code != string(guard.CodeOK) || resp.RowsN == 0 {
		t.Fatalf("line query: %+v", resp)
	}
	if resp.Tenant != "free" {
		t.Fatalf("tenant echoed %q, want free", resp.Tenant)
	}
	if err := json.Unmarshal([]byte(send("q nonsense !!")), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Code != string(guard.CodeParse) {
		t.Fatalf("bad query code = %s", resp.Code)
	}
	if got := send("quit"); got != "bye" {
		t.Fatalf("quit = %q", got)
	}
}

// TestServerShedsWhenOverloaded: with one execution slot and no queue, a
// stalled in-flight query makes concurrent arrivals shed with OVERLOADED
// (HTTP 429) — typed, immediate, no hang.
func TestServerShedsWhenOverloaded(t *testing.T) {
	srv, base := startServer(t, Config{MaxInFlight: 1, MaxQueue: -1})
	// Every COUNT ADT call stalls; the query below hits it once per film
	// row, so the request holds its execution slot for ~1.2s.
	srv.Injector().Set("COUNT", guard.Fault{Mode: guard.FaultStall, Stall: 300 * time.Millisecond})

	slow := make(chan Outcome, 1)
	go func() {
		c := NewClient(base)
		c.Retry.MaxAttempts = 1
		slow <- c.Query(context.Background(), "SELECT Title FROM FILM WHERE COUNT(Categories) > 0")
	}()

	// Wait until the slow query holds the slot.
	deadline := time.Now().Add(5 * time.Second)
	for srv.gate.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow query never entered execution")
		}
		time.Sleep(time.Millisecond)
	}

	c := NewClient(base)
	c.Retry.MaxAttempts = 1 // observe the shed itself
	out := c.Query(context.Background(), filmQuery)
	if out.Code != guard.CodeOverloaded {
		t.Fatalf("code = %s, want OVERLOADED (%+v)", out.Code, out.Resp)
	}
	if s := <-slow; s.Code != guard.CodeOK {
		t.Fatalf("slow query code = %s", s.Code)
	}
	if n := srv.Metrics().Counter("lera_server_shed_total", "").Value(); n == 0 {
		t.Error("shed counter never incremented")
	}

	// With retries enabled the same overload resolves once the slot
	// frees: the client's backoff absorbs it.
	srv.Injector().Reset()
	srv.Injector().Clear("COUNT")
	c2 := NewClient(base)
	out = c2.Query(context.Background(), filmQuery)
	if out.Code != guard.CodeOK {
		t.Fatalf("post-overload query code = %s", out.Code)
	}
}

// TestServerTenantBudgets: a tenant's guard budget applies per request
// and surfaces as the typed code with its HTTP status; unknown tenants
// fall back to default limits and say so.
func TestServerTenantBudgets(t *testing.T) {
	_, base := startServer(t, Config{
		Tenants: Tenants{
			"default": {},
			"tiny":    {MaxRows: 1},
		},
	})

	c := NewClient(base)
	c.Tenant = "tiny"
	out := c.Query(context.Background(), filmQuery)
	if out.Code != guard.CodeRowBudget {
		t.Fatalf("tiny tenant code = %s, want ROW_BUDGET (%+v)", out.Code, out.Resp)
	}

	// Same query, unknown tenant: served under default (unlimited).
	c.Tenant = "nobody"
	out = c.Query(context.Background(), filmQuery)
	if out.Code != guard.CodeOK {
		t.Fatalf("unknown tenant code = %s", out.Code)
	}
	if out.Resp.Tenant != DefaultTenant {
		t.Fatalf("unknown tenant resolved to %q, want %q", out.Resp.Tenant, DefaultTenant)
	}
}

// TestServerMemBudget: a tenant memory grant with no spill directory
// fails typed (MEM_BUDGET, 422); the same grant with a spill directory
// is answered correctly out of core, rows identical to an ungoverned
// request, spill activity visible on /metrics, and no spill files left
// behind once the queries are done.
func TestServerMemBudget(t *testing.T) {
	spill := t.TempDir()
	_, base := startServer(t, Config{
		SpillDir: spill,
		Tenants: Tenants{
			"default": {},
			"mem":     {MaxMemBytes: 1},
		},
	})

	c := NewClient(base)
	want := c.Query(context.Background(), filmQuery)
	if want.Code != guard.CodeOK {
		t.Fatalf("ungoverned query code = %s", want.Code)
	}

	c.Tenant = "mem"
	out := c.Query(context.Background(), filmQuery)
	if out.Code != guard.CodeOK {
		t.Fatalf("governed query code = %s (%v)", out.Code, out.Err)
	}
	if fmt.Sprint(out.Resp.Rows) != fmt.Sprint(want.Resp.Rows) {
		t.Errorf("spilled rows differ from ungoverned rows:\n%v\n%v", out.Resp.Rows, want.Resp.Rows)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "lera_engine_spill_partitions_total") {
		t.Error("/metrics missing lera_engine_spill_partitions_total after a spilled query")
	}

	// Per-query spill subdirectories are removed when the query finishes.
	ents, err := os.ReadDir(spill)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("spill dir not empty after queries: %v", ents)
	}

	// The same grant with spilling disabled fails typed.
	_, base2 := startServer(t, Config{
		Tenants: Tenants{"mem": {MaxMemBytes: 1}},
	})
	c2 := NewClient(base2)
	c2.Tenant = "mem"
	out = c2.Query(context.Background(), filmQuery)
	if out.Code != guard.CodeMemBudget {
		t.Fatalf("no-spill governed query code = %s, want MEM_BUDGET (%+v)", out.Code, out.Resp)
	}
	body2, _ := json.Marshal(map[string]string{"tenant": "mem", "query": filmQuery})
	hresp, err := http.Post(base2+"/query", "application/json", strings.NewReader(string(body2)))
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("MEM_BUDGET status = %d, want 422", hresp.StatusCode)
	}
}

// TestServerHTTPStatuses: the code→status mapping on the wire.
func TestServerHTTPStatuses(t *testing.T) {
	_, base := startServer(t, Config{Tenants: Tenants{"tiny": {MaxRows: 1}}})

	post := func(tenant, query string) (int, Response) {
		t.Helper()
		body, _ := json.Marshal(map[string]string{"tenant": tenant, "query": query})
		resp, err := http.Post(base+"/query", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var r Response
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, r
	}

	if st, r := post("", filmQuery); st != http.StatusOK || r.Code != "OK" {
		t.Errorf("ok query: %d %s", st, r.Code)
	}
	if st, r := post("", "garbage"); st != http.StatusBadRequest || r.Code != "PARSE" {
		t.Errorf("parse error: %d %s", st, r.Code)
	}
	if st, r := post("tiny", filmQuery); st != http.StatusUnprocessableEntity || r.Code != "ROW_BUDGET" {
		t.Errorf("row budget: %d %s", st, r.Code)
	}
}

// TestServerMetricsScrape: /metrics yields a parseable Prometheus text
// exposition containing the lera_server_* family with consistent
// accounting (requests = admitted + shed + rejected + pre-admission
// failures).
func TestServerMetricsScrape(t *testing.T) {
	_, base := startServer(t, Config{})
	c := NewClient(base)
	for i := 0; i < 5; i++ {
		if out := c.Query(context.Background(), filmQuery); out.Code != guard.CodeOK {
			t.Fatalf("query %d: %s", i, out.Code)
		}
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		`lera_server_requests_total{tenant="default",code="OK"} 5`,
		"lera_server_admitted_total 5",
		"lera_server_queries_ok_total 5",
		"lera_server_code_ok_total 5",
		`lera_server_request_seconds_count{tenant="default"} 5`,
		"lera_server_sessions",
		"lera_queries_total", // session metrics share the scrape
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("unparseable exposition line: %q", line)
		}
	}
}

// TestServerHealthz flips to 503 draining.
func TestServerHealthz(t *testing.T) {
	srv, base := startServer(t, Config{})
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
