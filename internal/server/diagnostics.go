package server

// Production diagnostics (docs/OBSERVABILITY.md): the structured
// query-log emission and the always-on slow-query ring, both fed from
// handleQuery's deferred epilogue so every request — shed, parse-failed,
// panicked — leaves exactly one event, and any request that was slow,
// degraded or budget-tripped leaves its full QueryReport in the ring.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"lera/internal/core"
	"lera/internal/obs"
)

// recordDiagnostics runs once per finished request: it offers the wide
// event to the query log and decides slow-ring capture. res is nil for
// requests that never executed (shed, parse failure, panic); the event
// then carries only the outcome code and elapsed time, keeping the 1:1
// events-to-requests invariant.
func (s *Server) recordDiagnostics(t0 time.Time, elapsed time.Duration, tenant, query string, resp Response, res *core.Result) {
	if s.qlog == nil && s.slow == nil {
		return
	}
	var (
		rep      *core.QueryReport
		hash     string
		cacheOut string
	)
	if res != nil {
		rep = res.Report
		if oc := res.Cache; oc != nil {
			hash = fmt.Sprintf("%016x", oc.TemplateHash)
			if oc.Hit {
				cacheOut = "hit"
			} else {
				cacheOut = "miss"
			}
		}
	}

	if s.qlog != nil {
		ev := obs.QueryEvent{
			Time:         t0,
			Tenant:       tenant,
			Query:        query,
			Code:         resp.Code,
			Error:        resp.Error,
			TemplateHash: hash,
			Cache:        cacheOut,
			ElapsedNs:    elapsed.Nanoseconds(),
			Rows:         int64(resp.RowsN),
			Degraded:     resp.Degraded,
			Reason:       resp.DegradedReason,
		}
		if res != nil {
			ev.RowsUsed = res.Budget.RowsUsed
			ev.RowsLimit = res.Budget.RowsLimit
			ev.StepsUsed = res.Budget.StepsUsed
			ev.StepsLimit = res.Budget.StepsLimit
			ev.MemPeakBytes = res.Budget.MemPeakBytes
			ev.MemLimit = res.Budget.MemLimit
			st := res.RewriteStats()
			ev.MatchAttempts = int64(st.MatchAttempts)
			ev.Applications = int64(st.Applications)
		}
		if rep != nil {
			ev.ParseNs = rep.Phases.Parse.Nanoseconds()
			ev.TranslateNs = rep.Phases.Translate.Nanoseconds()
			ev.RewriteNs = rep.Phases.Rewrite.Nanoseconds()
			ev.ExecNs = rep.Phases.Execute.Nanoseconds()
			c := rep.ExecCounters
			ev.Scanned = int64(c.Scanned)
			ev.JoinPairs = int64(c.JoinPairs)
			ev.Emitted = int64(c.Emitted)
			ev.PredEvals = int64(c.PredEvals)
			ev.FixIterations = int64(c.FixIterations)
			ev.SpillPartitions = rep.Spill.Partitions
			ev.SpillBytes = rep.Spill.Bytes
			ev.SpillReads = rep.Spill.Reads
		}
		s.qlog.Record(ev)
	}

	if s.slow.ShouldCapture(elapsed, resp.Degraded, resp.Code) {
		e := core.SlowEntry{
			Time:         t0,
			Tenant:       tenant,
			Query:        query,
			Code:         resp.Code,
			Elapsed:      elapsed,
			Rows:         int64(resp.RowsN),
			Degraded:     resp.Degraded,
			Reason:       resp.DegradedReason,
			Error:        resp.Error,
			TemplateHash: hash,
			Report:       rep,
		}
		if res != nil {
			e.Budget = res.Budget
		}
		s.slow.Add(e)
	}
}

// metricsHandler wraps the registry's exposition handler with a
// scrape-time refresh of the pull-model diagnostics gauges: query-log
// accounting and slow-ring occupancy are copied into the registry just
// before rendering, so a scrape is always self-consistent.
func (s *Server) metricsHandler(reg *obs.Registry) http.Handler {
	inner := reg.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.syncDiagnosticsMetrics(reg)
		inner.ServeHTTP(w, r)
	})
}

// syncDiagnosticsMetrics copies the query-log and slow-ring accounting
// into the registry (also called before the final drain snapshot).
func (s *Server) syncDiagnosticsMetrics(reg *obs.Registry) {
	s.qlog.SyncMetrics(reg)
	if s.slow != nil {
		reg.Gauge("lera_server_slowlog_captured_total", "queries captured into the slow-query ring").Set(s.slow.Captured())
		reg.Gauge("lera_server_slowlog_evicted_total", "slow-query ring entries overwritten by newer captures").Set(s.slow.Evicted())
		reg.Gauge("lera_server_slowlog_size", "slow-query ring capacity").Set(int64(s.slow.Size()))
	}
}

// slowEntryJSON is the /debug/slowlog wire shape: the entry's scalar
// fields plus the rendered EXPLAIN ANALYZE report (the structured
// report tree is an internal type; the rendering is what edsql and
// EXPLAIN ANALYZE print, so operators read one format everywhere).
type slowEntryJSON struct {
	core.SlowEntry
	Report string `json:"report,omitempty"`
}

// handleSlowlog serves the slow-query ring, newest first.
func (s *Server) handleSlowlog(w http.ResponseWriter, _ *http.Request) {
	if s.slow == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "slow-query ring disabled"})
		return
	}
	entries := s.slow.Snapshot()
	out := struct {
		ThresholdNs int64           `json:"threshold_ns"`
		Size        int             `json:"size"`
		Captured    int64           `json:"captured"`
		Evicted     int64           `json:"evicted"`
		Entries     []slowEntryJSON `json:"entries"`
	}{
		ThresholdNs: s.slow.Threshold.Nanoseconds(),
		Size:        s.slow.Size(),
		Captured:    s.slow.Captured(),
		Evicted:     s.slow.Evicted(),
		Entries:     make([]slowEntryJSON, 0, len(entries)),
	}
	for _, e := range entries {
		out.Entries = append(out.Entries, slowEntryJSON{SlowEntry: e, Report: core.FormatSlowEntry(e)})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

// SlowLog exposes the ring for tests and embedding callers.
func (s *Server) SlowLog() *core.SlowLog { return s.slow }
