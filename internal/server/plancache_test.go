package server

// Plan cache behind the server (docs/PLANCACHE.md): a repeated-shape
// workload against a cache-armed pool must answer bit-identically to an
// uncached server, keep the hit/miss ledger exact — every admitted query
// that survives translation is exactly one hit or one miss — and hold a
// high hit rate, with or without engine-level chaos in the way.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"lera/internal/guard"
)

// repeatedShapes is the loadgen-style workload: a few query shapes,
// many constants.
func repeatedShapes(i int) string {
	switch i % 3 {
	case 0:
		return fmt.Sprintf("SELECT Title FROM FILM WHERE Numf = %d", i%5)
	case 1:
		return fmt.Sprintf("SELECT Numf FROM FILM WHERE Numf = %d OR Numf = %d", i%4, (i+1)%4)
	default:
		return fmt.Sprintf("SELECT Title FROM FilmActors WHERE MEMBER('Adventure', Categories) AND ALL(Salary(Actors) > %d)", 1000*(i%7))
	}
}

func TestServerPlanCacheLedger(t *testing.T) {
	srv, base := startServer(t, Config{
		MaxInFlight: 4,
		MaxQueue:    64,
		PlanCache:   32,
	})

	// An uncached twin answers the oracle rows for every workload query.
	oracle, err := New(Config{LoadFilms: true})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 6
	const perWorker = 25
	type reply struct {
		query string
		code  guard.Code
		rows  [][]string
	}
	replies := make([][]reply, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewClient(base)
			c.Retry.MaxAttempts = 1 // exact request accounting
			for i := 0; i < perWorker; i++ {
				q := repeatedShapes(w*perWorker + i)
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				out := c.Query(ctx, q)
				cancel()
				r := reply{query: q, code: out.Code}
				if out.Resp != nil {
					r.rows = out.Resp.Rows
				}
				replies[w] = append(replies[w], r)
			}
		}(w)
	}
	wg.Wait()

	// Every request has a typed outcome, and OK answers match the
	// uncached oracle row for row.
	valid := map[guard.Code]bool{guard.CodeOK: true, guard.CodeOverloaded: true}
	total, ok := 0, 0
	for w := range replies {
		for _, r := range replies[w] {
			total++
			if !valid[r.code] {
				t.Fatalf("untyped outcome %q for %s", r.code, r.query)
			}
			if r.code != guard.CodeOK {
				continue
			}
			ok++
			want := oracle.queryDirect(t, r.query)
			if len(r.rows) != len(want) {
				t.Fatalf("%s: %d rows, oracle %d", r.query, len(r.rows), len(want))
			}
			for i := range want {
				for j := range want[i] {
					if r.rows[i][j] != want[i][j] {
						t.Fatalf("%s: row %d col %d = %q, oracle %q", r.query, i, j, r.rows[i][j], want[i][j])
					}
				}
			}
		}
	}
	if total != workers*perWorker {
		t.Fatalf("accounted %d outcomes, want %d", total, workers*perWorker)
	}

	// The ledger: hits + misses == queries that reached the rewrite
	// phase == lera_queries_total (no translate failures in this
	// workload), and the repeated shapes make hits dominate.
	m := srv.Metrics()
	hits := m.Counter("lera_plancache_hits_total", "").Value()
	misses := m.Counter("lera_plancache_misses_total", "").Value()
	queries := m.Counter("lera_queries_total", "").Value()
	if hits+misses != queries {
		t.Errorf("ledger broken: hits %d + misses %d != queries %d", hits, misses, queries)
	}
	if queries != int64(ok) {
		t.Errorf("session queries %d != OK replies %d", queries, ok)
	}
	if hits == 0 || float64(hits)/float64(hits+misses) < 0.8 {
		t.Errorf("repeated-shape workload should mostly hit: %d/%d", hits, hits+misses)
	}
}

// The ledger holds under engine-level chaos too: a query whose execution
// errors still counted its hit or miss (the cache phase precedes the
// engine), and every outcome stays typed.
func TestServerPlanCacheLedgerUnderChaos(t *testing.T) {
	chaos, err := ParseChaos("count:error:every=4")
	if err != nil {
		t.Fatal(err)
	}
	srv, base := startServer(t, Config{
		MaxInFlight: 2,
		MaxQueue:    32,
		PlanCache:   16,
		Chaos:       chaos,
	})

	// COUNT(Categories) trips the armed fault on every 4th evaluation.
	queries := []string{
		"SELECT Title FROM FILM WHERE COUNT(Categories) > 0",
		"SELECT Title FROM FILM WHERE Numf = 1",
		"SELECT Title FROM FILM WHERE Numf = 2",
	}
	valid := map[guard.Code]bool{
		guard.CodeOK: true, guard.CodeInjected: true, guard.CodeOverloaded: true,
	}
	c := NewClient(base)
	c.Retry.MaxAttempts = 1
	codes := map[guard.Code]int{}
	const n = 30
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		out := c.Query(ctx, queries[i%len(queries)])
		cancel()
		if !valid[out.Code] {
			t.Fatalf("untyped outcome %q", out.Code)
		}
		codes[out.Code]++
	}
	if codes[guard.CodeInjected] == 0 {
		t.Fatal("chaos never fired; the test is not exercising the error path")
	}

	m := srv.Metrics()
	hits := m.Counter("lera_plancache_hits_total", "").Value()
	misses := m.Counter("lera_plancache_misses_total", "").Value()
	queriesTotal := m.Counter("lera_queries_total", "").Value()
	if hits+misses != queriesTotal {
		t.Errorf("chaos broke the ledger: hits %d + misses %d != queries %d", hits, misses, queriesTotal)
	}
	if hits == 0 {
		t.Error("repeated shapes under chaos should still hit")
	}
}

// queryDirect runs a query on the server's own base session pool twin —
// an uncached oracle — returning rows as strings.
func (s *Server) queryDirect(t *testing.T, q string) [][]string {
	t.Helper()
	res, err := s.base.Query(q)
	if err != nil {
		t.Fatalf("oracle %s: %v", q, err)
	}
	out := make([][]string, len(res.Rows))
	for i, row := range res.Rows {
		out[i] = make([]string, len(row))
		for j, v := range row {
			out[i][j] = v.String()
		}
	}
	return out
}
