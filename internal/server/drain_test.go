package server

// Graceful drain under -race with intra-query parallelism > 1: an
// in-flight query either completes or is cancelled within the drain
// deadline, new work is refused with a typed DRAINING outcome, and the
// listener stops accepting connections.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"lera/internal/guard"
)

// drainServer boots a server (no automatic cleanup drain — the test
// drives the drain itself) and returns it with its listener address.
func drainServer(t *testing.T, cfg Config) (*Server, string, chan error) {
	t.Helper()
	cfg.LoadFilms = true
	cfg.Parallelism = 2 // exercise the intra-query worker pool during drain
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return srv, ln.Addr().String(), done
}

// TestDrainWaitsForInFlight: a query executing when drain begins runs to
// completion; drain returns clean; Serve unblocks; the port refuses new
// connections.
func TestDrainWaitsForInFlight(t *testing.T) {
	srv, addr, done := drainServer(t, Config{DrainTimeout: 10 * time.Second})
	srv.Injector().Set("COUNT", guard.Fault{Mode: guard.FaultStall, Stall: 150 * time.Millisecond})

	slow := make(chan Outcome, 1)
	go func() {
		c := NewClient("http://" + addr)
		slow <- c.Query(context.Background(), "SELECT Title FROM FILM WHERE COUNT(Categories) > 0")
	}()
	waitInFlight(t, srv)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	out := <-slow
	if out.Code != guard.CodeOK || out.Resp.RowsN != 4 {
		t.Fatalf("in-flight query during drain: code=%s resp=%+v err=%v", out.Code, out.Resp, out.Err)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	if conn, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		// A TCP dial may still connect before the OS reaps the socket,
		// but no request may be answered on it.
		_ = conn.SetReadDeadline(time.Now().Add(time.Second))
		fmt.Fprintln(conn, "ping")
		if resp, err := bufio.NewReader(conn).ReadString('\n'); err == nil {
			t.Fatalf("drained listener answered %q", strings.TrimSpace(resp))
		}
		conn.Close()
	}
}

// TestDrainCancelsAtDeadline: a query stalled past the drain deadline is
// cancelled, receives a typed outcome, and drain finishes within
// deadline+grace instead of hanging.
func TestDrainCancelsAtDeadline(t *testing.T) {
	srv, addr, done := drainServer(t, Config{
		DrainTimeout: 200 * time.Millisecond,
		DrainGrace:   2 * time.Second,
	})
	// One stall far beyond the drain deadline: only cancellation can end
	// the query.
	srv.Injector().Set("COUNT", guard.Fault{Mode: guard.FaultStall, Stall: 60 * time.Second})

	slow := make(chan Outcome, 1)
	go func() {
		c := NewClient("http://" + addr)
		c.Retry.MaxAttempts = 1
		slow <- c.Query(context.Background(), "SELECT Title FROM FILM WHERE COUNT(Categories) > 0")
	}()
	waitInFlight(t, srv)

	t0 := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := srv.Drain(ctx)
	if err == nil {
		t.Fatal("drain of a 60s-stalled query reported clean")
	}
	if guard.CodeOf(err) != guard.CodeDeadline {
		t.Fatalf("drain error is untyped: %v", err)
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("drain took %v, want < deadline+grace+slack", d)
	}
	out := <-slow
	if out.Code != guard.CodeCanceled && out.Code != guard.CodeDeadline && out.Err == nil {
		t.Fatalf("cancelled in-flight query got untyped outcome: code=%s resp=%+v", out.Code, out.Resp)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after deadline drain")
	}
}

// TestDrainRefusesNewWork: a connection opened before drain still gets
// typed DRAINING answers for queries sent while the server drains.
func TestDrainRefusesNewWork(t *testing.T) {
	srv, addr, done := drainServer(t, Config{DrainTimeout: 5 * time.Second})
	srv.Injector().Set("COUNT", guard.Fault{Mode: guard.FaultStall, Stall: 100 * time.Millisecond})

	// Pre-drain line connection.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	fmt.Fprintln(conn, "ping")
	if resp, _ := br.ReadString('\n'); strings.TrimSpace(resp) != "pong" {
		t.Fatalf("pre-drain ping failed: %q", resp)
	}

	// Hold a slot so drain stays in its waiting phase.
	slow := make(chan Outcome, 1)
	go func() {
		c := NewClient("http://" + addr)
		slow <- c.Query(context.Background(), "SELECT Title FROM FILM WHERE COUNT(Categories) > 0")
	}()
	waitInFlight(t, srv)

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- srv.Drain(ctx)
	}()
	waitFor(t, func() bool { return srv.gate.Draining() }, "gate never started draining")

	fmt.Fprintln(conn, "query "+filmQuery)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("draining server must answer, not drop: %v", err)
	}
	var resp Response
	if err := json.Unmarshal([]byte(line), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Code != string(guard.CodeDraining) {
		t.Fatalf("query during drain: code=%s, want DRAINING", resp.Code)
	}

	if out := <-slow; out.Code != guard.CodeOK {
		t.Fatalf("in-flight query: %s", out.Code)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n := srv.Metrics().Counter("lera_server_draining_rejected_total", "").Value(); n == 0 {
		t.Error("draining_rejected counter never incremented")
	}
	<-done
}

func waitInFlight(t *testing.T, srv *Server) {
	t.Helper()
	waitFor(t, func() bool { return srv.gate.InFlight() > 0 }, "query never entered execution")
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}
