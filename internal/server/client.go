package server

// Client is the Go-side HTTP client for the server, used by cmd/loadgen
// and the tests. It adds the one robustness behavior a well-behaved
// client owes an overloaded server: bounded retries with exponential
// backoff and deterministic jitter, and only for the codes that promise a
// retry might help (OVERLOADED; optionally DEADLINE). Every other code is
// final — retrying a PARSE or a ROW_BUDGET error is a waste of both
// sides' budget.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"lera/internal/guard"
)

// RetryPolicy bounds the client's retry behavior. Jitter is deterministic
// (a per-client xorshift seeded explicitly), so a load test that shed N
// requests sheds exactly N on the rerun.
type RetryPolicy struct {
	// MaxAttempts counts the first try too; 0 or 1 means no retries.
	MaxAttempts int
	// BaseBackoff is the first retry's delay; each further retry doubles
	// it, capped at MaxBackoff. Jitter in [0, backoff/2) is added.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// RetryDeadline also retries DEADLINE responses (off by default:
	// a query that blew its budget usually blows it again).
	RetryDeadline bool
	// Seed seeds the jitter PRNG; the zero value is replaced by 1.
	Seed uint64
}

// DefaultRetryPolicy: 4 attempts, 10ms base, 200ms cap.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 200 * time.Millisecond}
}

// Client issues queries over the HTTP API.
type Client struct {
	BaseURL string
	Tenant  string
	Retry   RetryPolicy
	HTTP    *http.Client

	rng uint64
}

// NewClient builds a client for baseURL (e.g. "http://127.0.0.1:7457")
// with the default retry policy.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, Retry: DefaultRetryPolicy(), HTTP: &http.Client{}}
}

// Outcome is one query's final, client-side account: the server's last
// response (or the transport error), plus how many attempts it took.
// Exactly one of Resp/Err is meaningful; Code covers both (transport
// errors report as INTERNAL unless the context expired).
type Outcome struct {
	Resp     *Response
	Err      error
	Code     guard.Code
	Attempts int
	// Total is the wall clock across all attempts, backoff included.
	Total time.Duration
}

// Query runs one query with retries per the policy and returns its final
// outcome. It never returns an unreported result: every path yields an
// Outcome with a code.
func (c *Client) Query(ctx context.Context, query string) Outcome {
	t0 := time.Now()
	pol := c.Retry
	if pol.MaxAttempts < 1 {
		pol.MaxAttempts = 1
	}
	if c.rng == 0 {
		if pol.Seed == 0 {
			pol.Seed = 1
		}
		c.rng = pol.Seed
	}
	var out Outcome
	backoff := pol.BaseBackoff
	for attempt := 1; ; attempt++ {
		out = c.once(ctx, query)
		out.Attempts = attempt
		if !retryable(out.Code, pol) || attempt >= pol.MaxAttempts || ctx.Err() != nil {
			break
		}
		d := backoff + c.jitter(backoff/2)
		select {
		case <-time.After(d):
		case <-ctx.Done():
			out.Total = time.Since(t0)
			return out
		}
		if backoff *= 2; backoff > pol.MaxBackoff && pol.MaxBackoff > 0 {
			backoff = pol.MaxBackoff
		}
	}
	out.Total = time.Since(t0)
	return out
}

func retryable(c guard.Code, pol RetryPolicy) bool {
	switch c {
	case guard.CodeOverloaded:
		return true
	case guard.CodeDeadline:
		return pol.RetryDeadline
	}
	return false
}

// once performs a single HTTP attempt.
func (c *Client) once(ctx context.Context, query string) Outcome {
	body, _ := json.Marshal(map[string]string{"tenant": c.Tenant, "query": query})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/query", bytes.NewReader(body))
	if err != nil {
		return Outcome{Err: err, Code: guard.CodeInternal}
	}
	req.Header.Set("Content-Type", "application/json")
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		code := guard.CodeInternal
		if ctx.Err() != nil {
			code = guard.CodeOf(ctx.Err())
		}
		return Outcome{Err: err, Code: code}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return Outcome{Err: err, Code: guard.CodeInternal}
	}
	var r Response
	if err := json.Unmarshal(data, &r); err != nil {
		return Outcome{
			Err:  fmt.Errorf("bad response (HTTP %d): %w", resp.StatusCode, err),
			Code: guard.CodeInternal,
		}
	}
	return Outcome{Resp: &r, Code: guard.Code(r.Code)}
}

// jitter draws a deterministic duration in [0, max) via xorshift64.
func (c *Client) jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	x := c.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.rng = x
	return time.Duration(x % uint64(max))
}
