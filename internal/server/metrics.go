package server

// Server metrics (the lera_server_* family, docs/OBSERVABILITY.md). They
// live in the same obs.Registry as the session-level lera_* metrics, so
// one /metrics scrape shows the whole stack: admission decisions and tail
// latency next to rewrite and execution counters.

import (
	"strings"
	"time"

	"lera/internal/guard"
	"lera/internal/obs"
)

// metrics bundles the server's registry handles. All underlying types are
// atomic; the bundle is shared freely across connection goroutines.
type metrics struct {
	reg *obs.Registry

	// requests is labeled {tenant, code}: the per-tenant breakdown of
	// every finished query. It is incremented exactly once per request,
	// in observe, so the sum over all series equals ok+errors exactly —
	// the ledger invariant loadgen audits. Tenant cardinality is bounded
	// upstream (Tenants.Resolve collapses unknown tenants to "default")
	// and by the vector's own _other overflow cap.
	requests    *obs.CounterVec
	admitted    *obs.Counter // passed admission control
	shed        *obs.Counter // refused with OVERLOADED
	drainReject *obs.Counter // refused with DRAINING
	ok          *obs.Counter // answered with code OK
	errors      *obs.Counter // answered with a non-OK code (shed included)
	degraded    *obs.Counter // answered OK from the fallback plan
	panics      *obs.Counter // per-request panic isolation fired
	chaos       *obs.Counter // chaos faults that fired at the request hook

	inFlight    *obs.Gauge // queries currently executing
	queued      *obs.Gauge // queries waiting for an execution slot
	connections *obs.Gauge // open client connections (both protocols)
	sessions    *obs.Gauge // pooled sessions (constant after boot)
	drainState  *obs.Gauge // 0 serving, 1 draining

	latency *obs.HistogramVec // request wall-clock seconds by tenant
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		reg:         reg,
		requests:    reg.CounterVec("lera_server_requests_total", "queries finished, by tenant and protocol code", "tenant", "code"),
		admitted:    reg.Counter("lera_server_admitted_total", "queries that passed admission control"),
		shed:        reg.Counter("lera_server_shed_total", "queries shed with OVERLOADED at admission"),
		drainReject: reg.Counter("lera_server_draining_rejected_total", "queries refused with DRAINING"),
		ok:          reg.Counter("lera_server_queries_ok_total", "queries answered with code OK"),
		errors:      reg.Counter("lera_server_query_errors_total", "queries answered with a non-OK code"),
		degraded:    reg.Counter("lera_server_degraded_total", "queries answered from the rewrite fallback plan"),
		panics:      reg.Counter("lera_server_panics_total", "request panics isolated by the per-request recover"),
		chaos:       reg.Counter("lera_server_chaos_faults_total", "chaos faults fired at the server.request hook"),
		inFlight:    reg.Gauge("lera_server_in_flight", "queries currently executing"),
		queued:      reg.Gauge("lera_server_queued", "queries waiting for an execution slot"),
		connections: reg.Gauge("lera_server_connections", "open client connections"),
		sessions:    reg.Gauge("lera_server_sessions", "pooled sessions"),
		drainState:  reg.Gauge("lera_server_draining", "1 while the server is draining"),
		latency:     reg.HistogramVec("lera_server_request_seconds", "request wall-clock latency in seconds, by tenant", nil, "tenant"),
	}
}

// code counts one response by protocol code: a per-code counter named
// lera_server_code_<code>_total (codes are a small closed vocabulary, so
// the metric set stays bounded).
func (m *metrics) code(c guard.Code) {
	m.reg.Counter("lera_server_code_"+strings.ToLower(string(c))+"_total",
		"responses with code "+string(c)).Inc()
}

// observe records one finished request under its tenant.
func (m *metrics) observe(tenant string, c guard.Code, degraded bool, d time.Duration) {
	m.requests.With(tenant, string(c)).Inc()
	m.latency.With(tenant).Observe(d.Seconds())
	m.code(c)
	if c == guard.CodeOK {
		m.ok.Inc()
		if degraded {
			m.degraded.Inc()
		}
	} else {
		m.errors.Inc()
	}
}
