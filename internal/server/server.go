// Package server is the multi-tenant network front end over the LERA
// pipeline: an HTTP/JSON API and a newline-delimited line protocol on
// one listener, a bounded pool of forked core.Sessions over a shared
// immutable catalog + rule base + data snapshot, per-tenant guard
// budgets, admission control with typed shedding (guard.Gate), graceful
// drain, per-request panic isolation, and a deterministic chaos mode
// (guard.Injector) so every overload and fault path is testable rather
// than asserted. See docs/SERVER.md.
//
// The robustness contract: every request receives exactly one typed
// outcome — rows, a degraded-but-correct answer with the degradation
// code, a typed budget/fault error code, or an explicit OVERLOADED /
// DRAINING shed. No hangs, no panics escaping a connection, and rows and
// engine counters for admitted queries are bit-identical to the embedded
// Session path (the pool forks are snapshots of the very same session).
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"lera/internal/core"
	"lera/internal/engine"
	"lera/internal/esql"
	"lera/internal/guard"
	"lera/internal/obs"
	"lera/internal/testdb"
)

// Config configures a Server. The zero value is usable for tests: an
// empty database, default pool and admission bounds, no tenants file, no
// chaos.
type Config struct {
	// InitESQL is executed on the boot session before forking the pool:
	// DDL, views and INSERTs that define the served snapshot.
	InitESQL string
	// LoadFilms loads the paper's Figure 2-5 example database (schema,
	// views, sample rows and objects), like edsql's \films.
	LoadFilms bool
	// Rules is extra rule-language source merged into the rule base
	// (core.WithRules).
	Rules string
	// MaxInFlight bounds concurrently executing queries; it is also the
	// session-pool size. Default 8.
	MaxInFlight int
	// MaxQueue bounds queries waiting for an execution slot; beyond it,
	// requests shed with OVERLOADED. Default (0) is 2*MaxInFlight;
	// negative means no queue at all — shed the moment all slots are
	// busy.
	MaxQueue int
	// DrainTimeout bounds the graceful-drain wait for in-flight work;
	// after it, in-flight contexts are cancelled and the server waits
	// DrainGrace for the cancellations to land. Default 10s.
	DrainTimeout time.Duration
	// DrainGrace bounds the post-cancel wait. Default 2s.
	DrainGrace time.Duration
	// Parallelism is each pooled session's intra-query worker pool size
	// (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
	// RowEngine selects the tuple-at-a-time execution oracle instead of
	// the default batched engine (bit-identical responses; docs/PERF.md).
	RowEngine bool
	// BatchSize is the batched engine's rows-per-batch granularity
	// (0 = engine default). Responses never depend on it.
	BatchSize int
	// PlanCache, when > 0, arms a plan cache of that many entries,
	// shared read-mostly by every pooled session (core.WithPlanCache;
	// docs/PLANCACHE.md). Repeated query shapes then skip the rewriter,
	// observable as lera_plancache_* metrics.
	PlanCache int
	// PlanCacheValidation re-validates every n'th cache hit against a
	// cold rewrite (core.WithPlanCacheValidation). 0 = off.
	PlanCacheValidation int
	// MaxMemBytes is the server-wide per-operator memory grant, applied to
	// any tenant whose own maxMemBytes is unset (0 = ungoverned). Governed
	// operators that outgrow the grant spill to SpillDir, or fail with
	// MEM_BUDGET when no spill directory is configured
	// (docs/GUARDRAILS.md).
	MaxMemBytes int64
	// SpillDir is where governed operators spill partition files; ""
	// disables spilling (over-grant operators then fail with MEM_BUDGET).
	// Spill files live in a per-query subdirectory and are removed when
	// the query finishes, including on error, cancel and drain.
	SpillDir string
	// Tenants maps tenant names to guard budgets (see tenant.go). Nil
	// serves every request under unlimited default limits.
	Tenants Tenants
	// Chaos is the armed fault schedule (see chaos.go). Empty = off.
	Chaos []ChaosFault
	// Injector, when non-nil, is used instead of a fresh one — tests arm
	// and inspect it directly. Chaos faults are armed on it either way.
	Injector *guard.Injector
	// Observer, when non-nil, supplies the metrics registry; default a
	// fresh observer (metrics only, no tracing).
	Observer *obs.Observer
	// ErrorLog, when non-nil, receives one line per isolated panic and
	// drain-phase event.
	ErrorLog io.Writer

	// QueryLog, when non-nil, receives one wide structured event per
	// finished request — shed, failed and panicked requests included, so
	// events are 1:1 with the request ledger (docs/OBSERVABILITY.md
	// "Structured query log"). The server closes it on Drain.
	QueryLog *obs.QueryLog

	// SlowLogSize is the slow-query ring capacity. 0 takes the default
	// (DefaultSlowLogSize); negative disables the ring.
	SlowLogSize int
	// SlowThreshold is the ring's capture latency bound
	// (0 = core.DefaultSlowThreshold). Degraded and non-OK queries are
	// captured regardless of latency.
	SlowThreshold time.Duration
}

// DefaultSlowLogSize is the slow-query ring capacity unless configured.
const DefaultSlowLogSize = 64

// Response is the JSON answer to one query, and the single vocabulary
// both protocols speak: Code is always set; OK responses carry columns
// and rows (plus the degradation record when the rewriter fell back);
// every failure carries the typed code and message. Rows are rendered
// values (value.Value.String), bit-identical to what FormatResult prints
// for the embedded session.
type Response struct {
	Code    string     `json:"code"`
	Error   string     `json:"error,omitempty"`
	Tenant  string     `json:"tenant,omitempty"`
	RowsN   int        `json:"rowCount"`
	Columns []string   `json:"columns,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`

	Degraded       bool   `json:"degraded,omitempty"`
	DegradedCode   string `json:"degradedCode,omitempty"`
	DegradedReason string `json:"degradedReason,omitempty"`

	// Counters is the engine work-counter delta of this query alone —
	// the bit-identity witness against the embedded session.
	Counters *engine.Counters `json:"counters,omitempty"`
	// ElapsedNs is the server-side wall clock for the whole request,
	// admission wait included.
	ElapsedNs int64 `json:"elapsedNs"`
}

// Server is one running instance. Build with New, run with Serve (or
// ListenAndServe), stop with Drain.
type Server struct {
	cfg  Config
	obs  *obs.Observer
	m    *metrics
	gate *guard.Gate
	inj  *guard.Injector
	qlog *obs.QueryLog
	slow *core.SlowLog

	base *core.Session
	pool chan *core.Session

	baseCtx context.Context
	cancel  context.CancelFunc

	httpLn  *chanListener
	httpSrv *http.Server

	mu        sync.Mutex
	ln        net.Listener
	conns     map[net.Conn]struct{}
	draining  bool
	drained   chan struct{}
	drainErr  error
	drainOnce sync.Once
}

// New boots a server: builds the base session, executes the init ESQL,
// loads the example database if asked, and forks the session pool. Any
// init failure is returned here — a server that starts is a server whose
// snapshot and rule base are known-good.
func New(cfg Config) (*Server, error) {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 8
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 2 * cfg.MaxInFlight
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 2 * time.Second
	}
	inj := cfg.Injector
	if inj == nil {
		inj = guard.NewInjector()
	}
	Arm(inj, cfg.Chaos)

	ob := cfg.Observer
	if ob == nil {
		ob = obs.NewObserver()
	}

	var opts []core.Option
	if cfg.Rules != "" {
		opts = append(opts, core.WithRules(cfg.Rules))
	}
	opts = append(opts, core.WithInjector(inj))
	if cfg.RowEngine {
		opts = append(opts, core.WithRowEngine())
	}
	if cfg.PlanCache > 0 {
		opts = append(opts, core.WithPlanCache(cfg.PlanCache))
		if cfg.PlanCacheValidation > 0 {
			opts = append(opts, core.WithPlanCacheValidation(cfg.PlanCacheValidation))
		}
	}
	base := core.NewSession(opts...)
	base.Obs = ob
	base.Parallelism = cfg.Parallelism
	base.BatchSize = cfg.BatchSize
	base.SpillDir = cfg.SpillDir
	if cfg.LoadFilms {
		if err := loadFilms(base); err != nil {
			return nil, fmt.Errorf("server: loading example database: %w", err)
		}
	}
	if cfg.InitESQL != "" {
		if _, err := base.Exec(cfg.InitESQL); err != nil {
			return nil, fmt.Errorf("server: init script: %w", err)
		}
	}

	slowSize := cfg.SlowLogSize
	if slowSize == 0 {
		slowSize = DefaultSlowLogSize
	}
	s := &Server{
		cfg:     cfg,
		obs:     ob,
		m:       newMetrics(ob.Metrics),
		gate:    guard.NewGate(cfg.MaxInFlight, cfg.MaxQueue),
		inj:     inj,
		qlog:    cfg.QueryLog,
		slow:    core.NewSlowLog(slowSize, cfg.SlowThreshold),
		base:    base,
		pool:    make(chan *core.Session, cfg.MaxInFlight),
		conns:   map[net.Conn]struct{}{},
		drained: make(chan struct{}),
	}
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.MaxInFlight; i++ {
		fork, err := base.Fork()
		if err != nil {
			return nil, fmt.Errorf("server: forking session pool: %w", err)
		}
		// The slow-query ring needs the full EXPLAIN ANALYZE operator
		// tree for any query it captures — and capture is decided after
		// the fact, so collection must be on for every pooled session.
		// (Fork does not copy CollectStats; see also the replacement
		// path in handleQuery.)
		fork.DB.CollectStats = s.slow != nil
		s.pool <- fork
	}
	s.m.sessions.Set(int64(cfg.MaxInFlight))

	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleHTTPQuery)
	mux.Handle("/metrics", s.metricsHandler(ob.Metrics))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/slowlog", s.handleSlowlog)
	s.httpSrv = &http.Server{
		Handler:     mux,
		BaseContext: func(net.Listener) context.Context { return s.baseCtx },
	}
	return s, nil
}

// loadFilms mirrors edsql's \films: the Figure 2 schema, Figure 4/5
// views, and the sample instance with its actor objects.
func loadFilms(s *core.Session) error {
	for _, src := range []string{esql.Figure2DDL, esql.Figure4View, esql.Figure5View} {
		if _, err := s.Exec(src); err != nil {
			return err
		}
	}
	inst, err := testdb.Data()
	if err != nil {
		return err
	}
	for name, rows := range inst.Rows {
		if err := s.DB.Load(name, rows); err != nil {
			return err
		}
	}
	for oid, obj := range inst.Objects {
		s.SetObject(oid, obj)
	}
	return nil
}

// Injector returns the server's fault injector (chaos faults are armed on
// it; tests arm more and read call counts).
func (s *Server) Injector() *guard.Injector { return s.inj }

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *obs.Registry { return s.obs.Metrics }

// ListenAndServe listens on addr and serves until Drain completes or the
// listener fails.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln, sniffing each connection's first byte
// to route it: HTTP methods are uppercase ASCII, line-protocol verbs are
// lowercase, so one port serves both. Serve blocks until Drain finishes
// (returning the drain result) or the listener fails.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()

	s.httpLn = newChanListener(ln.Addr())
	httpDone := make(chan error, 1)
	go func() { httpDone <- s.httpSrv.Serve(s.httpLn) }()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				<-s.drained
				<-httpDone // http.Server exits once its chan listener closes
				s.mu.Lock()
				defer s.mu.Unlock()
				return s.drainErr
			}
			return err
		}
		go s.dispatch(conn)
	}
}

// Addr returns the bound listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// dispatch sniffs one connection and hands it to the right protocol.
func (s *Server) dispatch(conn net.Conn) {
	s.trackConn(conn, true)
	br := bufio.NewReader(conn)
	_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	first, err := br.Peek(1)
	_ = conn.SetReadDeadline(time.Time{})
	if err != nil {
		s.trackConn(conn, false)
		_ = conn.Close()
		return
	}
	pc := &peekedConn{Conn: conn, r: br}
	if first[0] >= 'A' && first[0] <= 'Z' {
		// HTTP request line ("GET ", "POST ", ...): the HTTP server owns
		// the connection from here; its lifecycle untracks it.
		s.httpLn.deliver(pc, func() { s.trackConn(conn, false) })
		return
	}
	defer s.trackConn(conn, false)
	s.serveLine(pc, br)
}

// trackConn maintains the connection set (for drain-time close) and the
// connections gauge.
func (s *Server) trackConn(c net.Conn, add bool) {
	s.mu.Lock()
	if add {
		s.conns[c] = struct{}{}
	} else {
		delete(s.conns, c)
	}
	n := len(s.conns)
	s.mu.Unlock()
	s.m.connections.Set(int64(n))
}

// handleQuery is the one request path both protocols share: chaos hook,
// admission, session checkout, guarded execution, typed response. It
// never panics — a panic anywhere inside is isolated per request,
// counted, and answered as INTERNAL.
func (s *Server) handleQuery(ctx context.Context, tenant, query string) (resp Response) {
	t0 := time.Now()
	tenantName, limits := s.cfg.Tenants.Resolve(tenant)
	if limits.MaxMemBytes == 0 {
		// The server-wide grant backstops tenants that set none; a tenant
		// entry with its own maxMemBytes overrides it either way.
		limits.MaxMemBytes = s.cfg.MaxMemBytes
	}
	resp.Tenant = tenantName

	// res outlives the execution closure so the deferred diagnostics —
	// the query-log event and the slow-query capture — can read the
	// report, cache outcome and budget of the finished query.
	var res *core.Result

	defer func() {
		if p := recover(); p != nil {
			s.m.panics.Inc()
			s.logf("panic isolated in request (tenant %s): %v", tenantName, p)
			resp = Response{Code: string(guard.CodeInternal), Tenant: tenantName,
				Error: fmt.Sprintf("internal panic (isolated): %v", p)}
		}
		elapsed := time.Since(t0)
		resp.ElapsedNs = elapsed.Nanoseconds()
		// The per-tenant request counter ticks here, once per finished
		// request, so sum-over-series always equals ok+errors.
		s.m.observe(tenantName, guard.Code(resp.Code), resp.Degraded, elapsed)
		s.m.inFlight.Set(int64(s.gate.InFlight()))
		s.m.queued.Set(int64(s.gate.Queued()))
		s.recordDiagnostics(t0, elapsed, tenantName, query, resp, res)
	}()

	// Chaos hook: deterministic latency/error/panic injection at the
	// request level, before admission (a stalled request occupies no
	// execution slot, like a slow client).
	if err := s.inj.Hit(ctx, RequestHook); err != nil {
		s.m.chaos.Inc()
		return s.errResponse(tenantName, err)
	}

	release, err := s.gate.Acquire(ctx)
	if err != nil {
		switch {
		case errors.Is(err, guard.ErrOverloaded):
			s.m.shed.Inc()
		case errors.Is(err, guard.ErrDraining):
			s.m.drainReject.Inc()
		}
		return s.errResponse(tenantName, err)
	}
	defer release()
	s.m.admitted.Inc()
	s.m.inFlight.Set(int64(s.gate.InFlight()))

	sess := <-s.pool
	healthy := true
	defer func() {
		if healthy {
			s.pool <- sess
		} else {
			// The session panicked mid-query; its internal state is
			// suspect. Replace it with a fresh fork of the immutable
			// boot snapshot so the pool never shrinks.
			fork, ferr := s.base.Fork()
			if ferr != nil {
				s.logf("session replacement failed, recycling suspect session: %v", ferr)
				fork = sess
			} else {
				fork.DB.CollectStats = s.slow != nil
			}
			s.pool <- fork
		}
	}()
	sess.Limits = limits

	err = func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				healthy = false
				s.m.panics.Inc()
				s.logf("panic isolated in query (tenant %s): %v", tenantName, p)
				err = fmt.Errorf("internal panic (isolated): %v", p)
			}
		}()
		res, err = sess.QueryCtx(ctx, query)
		return err
	}()
	if err != nil {
		return s.errResponse(tenantName, err)
	}

	resp.Code = string(guard.CodeOK)
	for _, row := range res.Rows {
		out := make([]string, len(row))
		for i, v := range row {
			out[i] = v.String()
		}
		resp.Rows = append(resp.Rows, out)
	}
	resp.RowsN = len(res.Rows)
	resp.Columns = res.Columns
	if st := res.RewriteStats(); st.Degraded {
		resp.Degraded = true
		resp.DegradedCode = st.DegradationCode
		resp.DegradedReason = st.DegradationReason
	}
	if res.Report != nil {
		c := res.Report.ExecCounters
		resp.Counters = &c
	}
	return resp
}

// errResponse builds the typed failure response for an error. A nil
// result (parse/translate failure) that classifies as INTERNAL is
// reported as PARSE: the request never reached the guarded pipeline, so
// the failure is in the request text, not the server.
func (s *Server) errResponse(tenant string, err error) Response {
	code := guard.CodeOf(err)
	if code == guard.CodeInternal && isRequestError(err) {
		code = guard.CodeParse
	}
	return Response{Code: string(code), Tenant: tenant, Error: err.Error()}
}

// isRequestError reports whether the error came from parsing/translating
// the request text rather than from executing it.
func isRequestError(err error) bool {
	msg := err.Error()
	return strings.Contains(msg, "parse") || strings.Contains(msg, "esql") ||
		strings.Contains(msg, "translate") || strings.Contains(msg, "unknown")
}

// handleHTTPQuery serves POST /query {"tenant": "...", "query": "..."}
// (or GET /query?q=...&tenant=...) with a Response body and the HTTP
// status mapped from the code.
func (s *Server) handleHTTPQuery(w http.ResponseWriter, r *http.Request) {
	var tenant, query string
	switch r.Method {
	case http.MethodPost:
		var req struct {
			Tenant string `json:"tenant"`
			Query  string `json:"query"`
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err == nil {
			err = json.Unmarshal(body, &req)
		}
		if err != nil {
			writeJSON(w, http.StatusBadRequest, Response{Code: string(guard.CodeParse), Error: "bad request body: " + err.Error()})
			return
		}
		tenant, query = req.Tenant, req.Query
	case http.MethodGet:
		tenant, query = r.URL.Query().Get("tenant"), r.URL.Query().Get("q")
	default:
		writeJSON(w, http.StatusMethodNotAllowed, Response{Code: string(guard.CodeParse), Error: "use GET or POST"})
		return
	}
	if strings.TrimSpace(query) == "" {
		writeJSON(w, http.StatusBadRequest, Response{Code: string(guard.CodeParse), Error: "empty query"})
		return
	}
	resp := s.handleQuery(r.Context(), tenant, query)
	writeJSON(w, httpStatus(guard.Code(resp.Code)), resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := http.StatusOK
	state := "ok"
	if draining {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, map[string]any{"status": state, "inFlight": s.gate.InFlight(), "queued": s.gate.Queued()})
}

// httpStatus maps protocol codes onto HTTP statuses. Degraded answers are
// 200: the client got correct rows; the degradation is in the body.
func httpStatus(c guard.Code) int {
	switch c {
	case guard.CodeOK:
		return http.StatusOK
	case guard.CodeParse:
		return http.StatusBadRequest
	case guard.CodeOverloaded:
		return http.StatusTooManyRequests
	case guard.CodeDraining:
		return http.StatusServiceUnavailable
	case guard.CodeDeadline:
		return http.StatusGatewayTimeout
	case guard.CodeCanceled:
		return http.StatusRequestTimeout
	case guard.CodeStepBudget, guard.CodeTermSize, guard.CodeRowBudget, guard.CodeMemBudget:
		return http.StatusUnprocessableEntity
	default: // INJECTED, EXTERNAL_*, INTERNAL
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// Drain gracefully shuts the server down: stop accepting connections,
// refuse new queries with DRAINING, wait DrainTimeout for in-flight work,
// cancel what remains and wait DrainGrace for the cancellations to land,
// then close surviving connections and flush a final metrics snapshot to
// ErrorLog. Idempotent; concurrent callers share one drain. The returned
// error is nil on a clean drain and the typed deadline error when
// in-flight work had to be cancelled or outlived the grace period.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() { s.drain(ctx) })
	<-s.drained
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drainErr
}

func (s *Server) drain(ctx context.Context) {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	s.m.drainState.Set(1)
	if ln != nil {
		_ = ln.Close() // stop accepting; Serve's accept loop sees draining
	}

	dctx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
	defer cancel()
	err := s.gate.Drain(dctx)
	if err != nil {
		// In-flight work outlived the deadline: cancel it and give the
		// cancellations a bounded grace period to unwind.
		s.logf("drain deadline after %v with %d in flight; cancelling", s.cfg.DrainTimeout, s.gate.InFlight())
		s.cancel()
		gctx, gcancel := context.WithTimeout(context.Background(), s.cfg.DrainGrace)
		if gerr := s.gate.Drain(gctx); gerr == nil {
			err = fmt.Errorf("%w (in-flight work cancelled at drain deadline)", guard.ErrDeadline)
		} else {
			err = fmt.Errorf("%w (work still stuck after cancel+grace)", guard.ErrDeadline)
		}
		gcancel()
	}
	s.cancel() // idle pool sessions need no context beyond this point

	// Close the HTTP side and any line connections still open.
	sctx, scancel := context.WithTimeout(context.Background(), time.Second)
	_ = s.httpSrv.Shutdown(sctx)
	scancel()
	if s.httpLn != nil {
		_ = s.httpLn.Close()
	}
	s.mu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.conns = map[net.Conn]struct{}{}
	s.mu.Unlock()
	s.m.connections.Set(0)
	s.m.drainState.Set(0)

	// Flush and close the query log first so its final accounting lands
	// in the snapshot below (events already offered are drained to the
	// sink; late stragglers count as drops, never disappear).
	if s.qlog != nil {
		if qerr := s.qlog.Close(); qerr != nil {
			s.logf("query log close: %v", qerr)
		}
	}

	// Flush the final metrics snapshot so a supervised process leaves a
	// complete account even though /metrics just went away.
	if s.cfg.ErrorLog != nil {
		s.syncDiagnosticsMetrics(s.obs.Metrics)
		fmt.Fprintln(s.cfg.ErrorLog, "# final metrics snapshot")
		_ = s.obs.Metrics.WritePrometheus(s.cfg.ErrorLog)
	}
	s.mu.Lock()
	s.drainErr = err
	s.mu.Unlock()
	close(s.drained)
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.ErrorLog != nil {
		fmt.Fprintf(s.cfg.ErrorLog, "leraserver: "+format+"\n", args...)
	}
}

// --- listener plumbing -------------------------------------------------

// peekedConn is a net.Conn whose first bytes were consumed into a
// bufio.Reader by protocol sniffing; reads drain the buffer first.
type peekedConn struct {
	net.Conn
	r         *bufio.Reader
	onClose   func()
	closeOnce sync.Once
}

func (c *peekedConn) Read(p []byte) (int, error) { return c.r.Read(p) }

func (c *peekedConn) Close() error {
	err := c.Conn.Close()
	c.closeOnce.Do(func() {
		if c.onClose != nil {
			c.onClose()
		}
	})
	return err
}

// chanListener adapts sniffed connections into a net.Listener for
// http.Server.
type chanListener struct {
	ch   chan net.Conn
	addr net.Addr
	done chan struct{}
	once sync.Once
}

func newChanListener(addr net.Addr) *chanListener {
	return &chanListener{ch: make(chan net.Conn), addr: addr, done: make(chan struct{})}
}

// deliver hands a sniffed connection to the HTTP server; onClose fires
// when the HTTP side closes it (or immediately when the listener is
// already closed).
func (l *chanListener) deliver(c *peekedConn, onClose func()) {
	c.onClose = onClose
	select {
	case l.ch <- c:
	case <-l.done:
		_ = c.Close()
	}
}

func (l *chanListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *chanListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *chanListener) Addr() net.Addr { return l.addr }
