package server

// Tenant configuration: per-tenant guard budgets. A tenant is a named
// class of clients — "free" and "paid" tiers, an internal dashboard, a
// batch pipeline — each with its own guard.Limits so one tenant's
// pathological query burns its own budget, not the server's. The special
// name "default" supplies the limits for requests that name no tenant or
// an unknown one (unknown tenants are served under default limits and
// reported in the response, so a typo degrades service predictably
// instead of failing closed).

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"lera/internal/guard"
)

// DefaultTenant is the tenant name used when a request names none.
const DefaultTenant = "default"

// TenantLimits is the JSON shape of one tenant's budget. Zero fields mean
// "unlimited", exactly like the corresponding guard.Limits fields.
type TenantLimits struct {
	// TimeoutMs is the per-phase wall-clock budget in milliseconds
	// (applied to rewrite and execution separately, like edsql
	// --timeout).
	TimeoutMs int `json:"timeoutMs"`
	// MaxSteps caps committed rule applications per query.
	MaxSteps int `json:"maxSteps"`
	// MaxTermSize caps the query term's node count during rewriting.
	MaxTermSize int `json:"maxTermSize"`
	// MaxRows caps rows materialized during execution.
	MaxRows int `json:"maxRows"`
	// MaxFixIterations caps each fixpoint instance's rounds.
	MaxFixIterations int `json:"maxFixIterations"`
	// MaxMemBytes is the per-operator memory grant for execution
	// (docs/GUARDRAILS.md): hash structures that would exceed it spill to
	// the server's spill directory, or fail with MEM_BUDGET when spilling
	// is disabled.
	MaxMemBytes int64 `json:"maxMemBytes"`
}

// Limits converts the JSON shape into a guard budget.
func (t TenantLimits) Limits() guard.Limits {
	return guard.Limits{
		Timeout:          time.Duration(t.TimeoutMs) * time.Millisecond,
		MaxSteps:         t.MaxSteps,
		MaxTermSize:      t.MaxTermSize,
		MaxRows:          t.MaxRows,
		MaxFixIterations: t.MaxFixIterations,
		MaxMemBytes:      t.MaxMemBytes,
	}
}

// Tenants maps tenant names to their limits.
type Tenants map[string]TenantLimits

// ParseTenants decodes a tenant-config JSON object:
//
//	{"default": {"timeoutMs": 2000, "maxRows": 100000},
//	 "free":    {"timeoutMs": 250,  "maxRows": 10000, "maxSteps": 500}}
func ParseTenants(r io.Reader) (Tenants, error) {
	var t Tenants
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("server: tenant config: %w", err)
	}
	return t, nil
}

// LoadTenants reads a tenant-config file.
func LoadTenants(path string) (Tenants, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("server: tenant config: %w", err)
	}
	defer f.Close()
	return ParseTenants(f)
}

// Resolve returns the effective tenant name and limits for a requested
// tenant: the named tenant when configured, else the default entry, else
// zero limits (unlimited). The returned name is what the response echoes,
// so clients can see which budget actually applied.
func (t Tenants) Resolve(name string) (string, guard.Limits) {
	if name == "" {
		name = DefaultTenant
	}
	if tl, ok := t[name]; ok {
		return name, tl.Limits()
	}
	if tl, ok := t[DefaultTenant]; ok {
		return DefaultTenant, tl.Limits()
	}
	return DefaultTenant, guard.Limits{}
}

// Names returns the configured tenant names, sorted, for logs and docs.
func (t Tenants) Names() []string {
	out := make([]string, 0, len(t))
	for k := range t {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
