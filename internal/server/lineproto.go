package server

// The line protocol: a newline-delimited request/response framing for
// scripts, loadgen and netcat, multiplexed on the same listener as HTTP.
// Protocol sniffing keys on the first byte of the connection — HTTP
// methods ("GET", "POST", ...) are uppercase ASCII, line-protocol verbs
// are lowercase — so one port serves both.
//
// Requests (one per line):
//
//	tenant <name>    set this connection's tenant (echoes "ok <name>")
//	query <esql>     run one SELECT; answers one JSON Response line
//	q <esql>         shorthand for query
//	ping             liveness check (echoes "pong")
//	quit             close the connection
//
// Every query answers exactly one JSON line — the same Response shape the
// HTTP API returns, same code vocabulary, so a client speaking either
// protocol sees identical outcomes.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
)

// serveLine runs the line protocol on one sniffed connection until EOF,
// quit, or drain-time close.
func (s *Server) serveLine(conn net.Conn, br *bufio.Reader) {
	defer conn.Close()
	w := bufio.NewWriter(conn)
	tenant := ""
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		verb, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch strings.ToLower(verb) {
		case "quit", "exit":
			fmt.Fprintln(w, "bye")
			_ = w.Flush()
			return
		case "ping":
			fmt.Fprintln(w, "pong")
		case "tenant":
			name, _ := s.cfg.Tenants.Resolve(rest)
			tenant = rest
			fmt.Fprintf(w, "ok %s\n", name)
		case "query", "q":
			resp := s.handleQuery(s.requestCtx(conn), tenant, rest)
			b, err := json.Marshal(resp)
			if err != nil {
				b, _ = json.Marshal(Response{Code: "INTERNAL", Error: "response encoding failed"})
			}
			w.Write(b)
			w.WriteByte('\n')
		default:
			fmt.Fprintf(w, "error unknown verb %q (tenant|query|ping|quit)\n", verb)
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// requestCtx derives the per-request context for a line-protocol query:
// the server's base context, cancelled at the drain deadline. The
// connection itself is the client's cancellation signal; drain-time close
// unblocks any pending read or write.
func (s *Server) requestCtx(net.Conn) context.Context { return s.baseCtx }
