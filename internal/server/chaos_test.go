package server

// The chaos gate: under a sustained mixed workload with fault injection
// on, every request receives a typed outcome, nothing hangs, no panic
// escapes a connection, the server-side ledger accounts for every
// request, and the server still drains cleanly afterwards.

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"lera/internal/guard"
)

func TestParseChaos(t *testing.T) {
	faults, err := ParseChaos("member:error:every=7, server.request:stall:every=5:stall=20ms, count:panic:on=3")
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 3 {
		t.Fatalf("parsed %d faults", len(faults))
	}
	if faults[0].Name != "MEMBER" || faults[0].Fault.Every != 7 || faults[0].Fault.Mode != guard.FaultError {
		t.Errorf("fault 0: %+v", faults[0])
	}
	if faults[1].Name != RequestHook || faults[1].Fault.Stall != 20*time.Millisecond {
		t.Errorf("fault 1: %+v", faults[1])
	}
	if faults[2].Name != "COUNT" || faults[2].Fault.OnCall != 3 || faults[2].Fault.Mode != guard.FaultPanic {
		t.Errorf("fault 2: %+v", faults[2])
	}
	if f, err := ParseChaos(""); err != nil || f != nil {
		t.Errorf("empty spec: %v %v", f, err)
	}
	for _, bad := range []string{
		"member",                // no mode
		"member:explode",        // unknown mode
		"member:error:on=zero",  // bad int
		"member:stall",          // stall without duration
		"member:error:what=3",   // unknown option
		"member:error:every=-1", // negative
	} {
		if _, err := ParseChaos(bad); err == nil {
			t.Errorf("ParseChaos(%q) accepted", bad)
		}
	}
}

// TestChaosEveryRequestTyped drives a concurrent mixed workload against a
// small server with chaos armed at every layer — request-level stalls and
// panics, execution-level ADT faults — and checks the robustness
// contract request by request.
func TestChaosEveryRequestTyped(t *testing.T) {
	// One fault per injector name (Set replaces): a panic at the request
	// hook plus an error on every 5th COUNT execution. Stall coverage
	// lives in the shed and drain tests.
	chaos, err := ParseChaos("server.request:panic:on=7,count:error:every=5")
	if err != nil {
		t.Fatal(err)
	}
	srv, base := startServer(t, Config{
		MaxInFlight: 2,
		MaxQueue:    2,
		Chaos:       chaos,
		// Several tenants so the labeled request ledger is exercised
		// across series, not just {default,*}.
		Tenants: Tenants{"default": {}, "alpha": {}, "beta": {}},
	})

	queries := []string{
		filmQuery,
		"SELECT Title FROM FILM WHERE COUNT(Categories) > 0",
		"SELECT Name(Refactor1) FROM BETTER_THAN WHERE Name(Refactor2) = 'Quinn'",
		"this is not esql",
	}

	const workers = 8
	const perWorker = 10
	type account struct {
		code guard.Code
		dur  time.Duration
	}
	results := make([][]account, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewClient(base)
			c.Retry.MaxAttempts = 1 // exact request accounting
			c.Tenant = []string{"", "alpha", "beta", "unknown"}[w%4]
			for i := 0; i < perWorker; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				out := c.Query(ctx, queries[(w+i)%len(queries)])
				cancel()
				results[w] = append(results[w], account{out.Code, out.Total})
			}
		}(w)
	}
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(60 * time.Second):
		t.Fatal("workload hung under chaos")
	}

	// Every request got a typed outcome from the protocol vocabulary.
	valid := map[guard.Code]bool{
		guard.CodeOK: true, guard.CodeParse: true, guard.CodeOverloaded: true,
		guard.CodeInjected: true, guard.CodeInternal: true, guard.CodeDeadline: true,
		guard.CodeExternalError: true, guard.CodeExternalPanic: true,
		guard.CodeCanceled: true,
	}
	total := 0
	byCode := map[guard.Code]int{}
	for w := range results {
		for _, a := range results[w] {
			total++
			byCode[a.code]++
			if !valid[a.code] {
				t.Errorf("untyped outcome %q", a.code)
			}
			if a.dur > 10*time.Second {
				t.Errorf("request took %v under chaos", a.dur)
			}
		}
	}
	if total != workers*perWorker {
		t.Fatalf("accounted %d outcomes, want %d", total, workers*perWorker)
	}

	// The server-side ledger covers every request: received = answered.
	// requests_total is labeled {tenant,code}; the sum over every series
	// must equal the unlabeled ok/error ledger exactly — the acceptance
	// invariant of the per-tenant breakdown.
	m := srv.Metrics()
	requests := m.CounterVec("lera_server_requests_total", "", "tenant", "code").Sum()
	answered := m.Counter("lera_server_queries_ok_total", "").Value() +
		m.Counter("lera_server_query_errors_total", "").Value()
	if requests != int64(total) {
		t.Errorf("server saw %d requests, clients sent %d", requests, total)
	}
	if answered != requests {
		t.Errorf("dropped-but-unreported requests: received %d, answered %d", requests, answered)
	}
	// The breakdown really is per tenant: each configured tenant owns at
	// least one series (the unknown tenant collapsed into default).
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, tenant := range []string{`tenant="default"`, `tenant="alpha"`, `tenant="beta"`} {
		if !strings.Contains(sb.String(), "lera_server_requests_total{"+tenant) {
			t.Errorf("ledger missing a %s series", tenant)
		}
	}
	if strings.Contains(sb.String(), `tenant="unknown"`) {
		t.Error("unknown tenant leaked its own label series")
	}
	// The armed faults actually fired.
	if srv.Injector().Calls(RequestHook) == 0 {
		t.Error("request hook never hit")
	}
	if m.Counter("lera_server_panics_total", "").Value() == 0 {
		t.Error("injected request panic never isolated")
	}
	if byCode[guard.CodeOK] == total {
		t.Error("chaos run produced no failures at all")
	}

	// And the server still drains cleanly (startServer's cleanup checks
	// the error); a healthz probe still answers first.
	out := NewClient(base).Query(context.Background(), filmQuery)
	if out.Code != guard.CodeOK {
		t.Errorf("post-chaos query: %s", out.Code)
	}
}

// TestChaosPanicReplacesSession: an execution-layer panic that escapes
// the pipeline's own isolation is caught by the per-request recover and
// the suspect pooled session is replaced — the pool never shrinks and
// later queries still answer.
func TestChaosPanicReplacesSession(t *testing.T) {
	srv, base := startServer(t, Config{MaxInFlight: 1})
	// ADT panics are isolated inside adtCall and come back as
	// EXTERNAL_PANIC without poisoning the session.
	srv.Injector().Set("COUNT", guard.Fault{OnCall: 1, Mode: guard.FaultPanic})

	c := NewClient(base)
	out := c.Query(context.Background(), "SELECT Title FROM FILM WHERE COUNT(Categories) > 0")
	if out.Code != guard.CodeExternalPanic {
		t.Fatalf("code = %s, want EXTERNAL_PANIC (%+v)", out.Code, out.Resp)
	}

	// Request-hook panics hit the outer recover (INTERNAL, isolated).
	srv.Injector().Set(RequestHook, guard.Fault{OnCall: srv.Injector().Calls(RequestHook) + 1, Mode: guard.FaultPanic})
	out = c.Query(context.Background(), filmQuery)
	if out.Code != guard.CodeInternal {
		t.Fatalf("request panic code = %s, want INTERNAL", out.Code)
	}

	// The server keeps answering afterwards with the full pool.
	for i := 0; i < 3; i++ {
		if out := c.Query(context.Background(), filmQuery); out.Code != guard.CodeOK {
			t.Fatalf("post-panic query %d: %s", i, out.Code)
		}
	}
	if srv.Metrics().Counter("lera_server_panics_total", "").Value() == 0 {
		t.Error("panic isolation counter is zero")
	}
}
