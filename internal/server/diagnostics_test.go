package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"lera/internal/guard"
	"lera/internal/obs"
)

// memSink collects query-log events in memory.
type memSink struct {
	mu     sync.Mutex
	events []obs.QueryEvent
}

func (s *memSink) Emit(ev obs.QueryEvent) {
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

func (s *memSink) Close() error { return nil }

func (s *memSink) snapshot() []obs.QueryEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]obs.QueryEvent(nil), s.events...)
}

// TestQueryLogOneEventPerRequest: every request — OK, parse failure,
// budget trip — leaves exactly one wide event, and the accounting
// (emitted + dropped + sampled_out) balances the request ledger.
func TestQueryLogOneEventPerRequest(t *testing.T) {
	sink := &memSink{}
	qlog := obs.NewQueryLog(sink, 64, 1)
	srv, base := startServer(t, Config{
		QueryLog: qlog,
		Tenants: Tenants{
			"default": {MaxRows: 100000},
			"tiny":    {MaxRows: 1},
		},
	})
	c := NewClient(base)
	requests := 0
	for i := 0; i < 3; i++ {
		if out := c.Query(context.Background(), filmQuery); out.Code != guard.CodeOK {
			t.Fatalf("query %d: %s", i, out.Code)
		}
		requests++
	}
	if out := c.Query(context.Background(), "not esql at all"); out.Code != guard.CodeParse {
		t.Fatalf("parse outcome: %s", out.Code)
	}
	requests++
	tc := NewClient(base)
	tc.Tenant = "tiny"
	if out := tc.Query(context.Background(), filmQuery); out.Code != guard.CodeRowBudget {
		t.Fatalf("budget outcome: %s", out.Code)
	}
	requests++

	ledger := srv.Metrics().CounterVec("lera_server_requests_total", "", "tenant", "code").Sum()
	if ledger != int64(requests) {
		t.Fatalf("ledger %d, sent %d", ledger, requests)
	}
	// Drain closes the log, flushing the channel into the sink.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if got := qlog.Emitted() + qlog.Dropped() + qlog.SampledOut(); got != ledger {
		t.Fatalf("query-log accounting %d (emitted %d, dropped %d, sampled %d) != ledger %d",
			got, qlog.Emitted(), qlog.Dropped(), qlog.SampledOut(), ledger)
	}
	events := sink.snapshot()
	if int64(len(events)) != qlog.Emitted() {
		t.Fatalf("sink saw %d events, log emitted %d", len(events), qlog.Emitted())
	}
	byCode := map[string]int{}
	for _, ev := range events {
		byCode[ev.Code]++
		if ev.ElapsedNs <= 0 {
			t.Errorf("event %+v has no elapsed time", ev)
		}
	}
	if byCode["OK"] != 3 || byCode[string(guard.CodeParse)] != 1 || byCode[string(guard.CodeRowBudget)] != 1 {
		t.Fatalf("event codes %v, want 3 OK / 1 parse / 1 row-budget", byCode)
	}
	// OK events carry the wide fields: budget, cache outcome, counters.
	for _, ev := range events {
		if ev.Code != "OK" {
			continue
		}
		if ev.Tenant != "default" {
			t.Errorf("OK event tenant %q, want default", ev.Tenant)
		}
		if ev.RowsUsed <= 0 {
			t.Errorf("OK event RowsUsed = %d, want > 0", ev.RowsUsed)
		}
		if ev.Scanned <= 0 {
			t.Errorf("OK event Scanned = %d, want > 0 (report counters missing)", ev.Scanned)
		}
	}
}

// TestQueryLogSampledServer: with sample=2 half the events are skipped
// but still counted — the ledger stays balanced.
func TestQueryLogSampledServer(t *testing.T) {
	qlog := obs.NewQueryLog(&memSink{}, 64, 2)
	srv, base := startServer(t, Config{QueryLog: qlog})
	c := NewClient(base)
	const n = 6
	for i := 0; i < n; i++ {
		if out := c.Query(context.Background(), filmQuery); out.Code != guard.CodeOK {
			t.Fatalf("query %d: %s", i, out.Code)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if got := qlog.Emitted() + qlog.SampledOut() + qlog.Dropped(); got != n {
		t.Fatalf("accounting %d, want %d", got, n)
	}
	if qlog.SampledOut() != n/2 {
		t.Fatalf("SampledOut = %d, want %d", qlog.SampledOut(), n/2)
	}
}

// TestSlowlogEndpoint: a query slower than the threshold (via an
// injected stall) lands in the ring with its full report, and
// /debug/slowlog serves it.
func TestSlowlogEndpoint(t *testing.T) {
	chaos, err := ParseChaos("server.request:stall:on=2:stall=30ms")
	if err != nil {
		t.Fatal(err)
	}
	_, base := startServer(t, Config{
		SlowThreshold: 20 * time.Millisecond,
		Chaos:         chaos,
	})
	c := NewClient(base)
	// First query fast (below threshold), second stalled 30ms (captured).
	for i := 0; i < 2; i++ {
		if out := c.Query(context.Background(), filmQuery); out.Code != guard.CodeOK {
			t.Fatalf("query %d: %s", i, out.Code)
		}
	}
	resp, err := http.Get(base + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/slowlog status %d", resp.StatusCode)
	}
	var out struct {
		ThresholdNs int64 `json:"threshold_ns"`
		Size        int   `json:"size"`
		Captured    int64 `json:"captured"`
		Entries     []struct {
			Query  string `json:"query"`
			Code   string `json:"code"`
			Report string `json:"report"`
			Budget struct {
				RowsUsed int64 `json:"rows_used"`
			} `json:"budget"`
		} `json:"entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ThresholdNs != (20 * time.Millisecond).Nanoseconds() {
		t.Errorf("threshold_ns = %d", out.ThresholdNs)
	}
	if out.Size != DefaultSlowLogSize {
		t.Errorf("size = %d, want %d", out.Size, DefaultSlowLogSize)
	}
	if out.Captured != 1 || len(out.Entries) != 1 {
		t.Fatalf("captured %d entries %d, want exactly the stalled query", out.Captured, len(out.Entries))
	}
	e := out.Entries[0]
	if e.Query != filmQuery || e.Code != "OK" {
		t.Errorf("entry %q code %q", e.Query, e.Code)
	}
	if e.Budget.RowsUsed <= 0 {
		t.Errorf("entry budget rows_used = %d, want > 0", e.Budget.RowsUsed)
	}
	// The full EXPLAIN ANALYZE operator tree came along.
	for _, want := range []string{"execution:", "budget:", "timings:"} {
		if !strings.Contains(e.Report, want) {
			t.Errorf("report missing %q:\n%s", want, e.Report)
		}
	}
}

// TestSlowlogDegradedCapture: degraded / budget-tripped queries are
// captured regardless of latency.
func TestSlowlogDegradedCapture(t *testing.T) {
	srv, base := startServer(t, Config{
		SlowThreshold: time.Hour, // latency alone will never trigger
		Tenants: Tenants{
			"default": {MaxRows: 100000},
			"tiny":    {MaxRows: 1},
		},
	})
	c := NewClient(base)
	c.Tenant = "tiny"
	if out := c.Query(context.Background(), filmQuery); out.Code != guard.CodeRowBudget {
		t.Fatalf("budget outcome: %s", out.Code)
	}
	if got := srv.SlowLog().Captured(); got != 1 {
		t.Fatalf("ring captured %d, want the budget-tripped query", got)
	}
	e := srv.SlowLog().Snapshot()[0]
	if e.Code != string(guard.CodeRowBudget) || e.Tenant != "tiny" {
		t.Errorf("entry code=%s tenant=%s", e.Code, e.Tenant)
	}
}

// TestSlowlogDisabled: SlowLogSize < 0 turns the ring off; the endpoint
// answers 404 and pooled sessions skip stats collection.
func TestSlowlogDisabled(t *testing.T) {
	srv, base := startServer(t, Config{SlowLogSize: -1})
	if srv.SlowLog() != nil {
		t.Fatal("ring must be nil when disabled")
	}
	resp, err := http.Get(base + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/slowlog status %d, want 404", resp.StatusCode)
	}
}

// TestMetricsScrapeDiagnostics: the scrape carries the query-log and
// slow-ring accounting gauges, synced at scrape time.
func TestMetricsScrapeDiagnostics(t *testing.T) {
	qlog := obs.NewQueryLog(&memSink{}, 64, 1)
	_, base := startServer(t, Config{QueryLog: qlog, SlowThreshold: time.Nanosecond})
	c := NewClient(base)
	if out := c.Query(context.Background(), filmQuery); out.Code != guard.CodeOK {
		t.Fatalf("query: %s", out.Code)
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		obs.MetricQuerylogEvents,
		obs.MetricQuerylogDropped,
		obs.MetricQuerylogSampledOut,
		"lera_server_slowlog_captured_total 1",
		"lera_server_slowlog_size 64",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}
