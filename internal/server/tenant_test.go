package server

import (
	"testing"
	"time"
)

// TestLoadTenantsExample pins the shipped example config
// (testdata/tenants.json, referenced from docs/SERVER.md).
func TestLoadTenantsExample(t *testing.T) {
	ten, err := LoadTenants("../../testdata/tenants.json")
	if err != nil {
		t.Fatal(err)
	}
	name, lim := ten.Resolve("free")
	if name != "free" || lim.Timeout != 250*time.Millisecond || lim.MaxRows != 10000 || lim.MaxSteps != 500 {
		t.Fatalf("free resolved to %q %+v", name, lim)
	}
	if name, lim = ten.Resolve("unknown"); name != DefaultTenant || lim.Timeout != 2*time.Second {
		t.Fatalf("unknown resolved to %q %+v", name, lim)
	}
	if got := ten.Names(); len(got) != 4 || got[0] != "batch" {
		t.Fatalf("Names() = %v", got)
	}
}
