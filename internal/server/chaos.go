package server

// Chaos mode: deterministic fault schedules armed on the server's shared
// guard.Injector. The same injector instance is threaded through every
// pooled session via core.WithInjector, so one spec can fault the
// request path ("server.request"), any rewrite-side external, or any
// ADT function — with the determinism contract of
// internal/guard/faultinject.go: whether a fault fires depends only on
// the per-name call count, never on time or scheduling.
//
// Spec grammar (comma-separated faults):
//
//	name:mode[:on=N][:every=N][:stall=DURATION]
//
//	member:error:every=7        — every 7th MEMBER call returns ErrInjected
//	server.request:stall:every=5:stall=20ms
//	                            — every 5th request waits 20ms (ctx-aware)
//	server.request:panic:on=100 — the 100th request panics (isolation test)
//	member:error                — every MEMBER call errors
//
// Modes: error, panic, stall. Names are case-insensitive except
// "server.request", the per-request hook hit after admission and before
// the session runs.

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"lera/internal/guard"
)

// RequestHook is the injector name hit once per admitted request.
const RequestHook = "server.request"

// ChaosFault is one parsed fault: the injector name and the armed fault.
type ChaosFault struct {
	Name  string
	Fault guard.Fault
}

// ParseChaos parses a chaos spec. An empty spec is valid and yields nil.
func ParseChaos(spec string) ([]ChaosFault, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []ChaosFault
	for _, item := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("server: chaos fault %q: want name:mode[:opts]", item)
		}
		cf := ChaosFault{Name: normalizeChaosName(parts[0])}
		switch strings.ToLower(parts[1]) {
		case "error":
			cf.Fault.Mode = guard.FaultError
		case "panic":
			cf.Fault.Mode = guard.FaultPanic
		case "stall":
			cf.Fault.Mode = guard.FaultStall
		default:
			return nil, fmt.Errorf("server: chaos fault %q: unknown mode %q (error|panic|stall)", item, parts[1])
		}
		for _, opt := range parts[2:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("server: chaos fault %q: malformed option %q", item, opt)
			}
			switch strings.ToLower(k) {
			case "on":
				n, err := strconv.Atoi(v)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("server: chaos fault %q: on=%q is not a positive integer", item, v)
				}
				cf.Fault.OnCall = n
			case "every":
				n, err := strconv.Atoi(v)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("server: chaos fault %q: every=%q is not a positive integer", item, v)
				}
				cf.Fault.Every = n
			case "stall":
				d, err := time.ParseDuration(v)
				if err != nil {
					return nil, fmt.Errorf("server: chaos fault %q: stall=%q: %v", item, v, err)
				}
				cf.Fault.Stall = d
			default:
				return nil, fmt.Errorf("server: chaos fault %q: unknown option %q", item, k)
			}
		}
		if cf.Fault.Mode == guard.FaultStall && cf.Fault.Stall <= 0 {
			return nil, fmt.Errorf("server: chaos fault %q: stall mode needs stall=DURATION", item)
		}
		out = append(out, cf)
	}
	return out, nil
}

// normalizeChaosName maps a spec name onto the injector namespace:
// external names are uppercase (as the pipeline hits them), the request
// hook keeps its canonical lowercase form.
func normalizeChaosName(name string) string {
	name = strings.TrimSpace(name)
	if strings.EqualFold(name, RequestHook) {
		return RequestHook
	}
	return strings.ToUpper(name)
}

// Arm sets every fault on the injector.
func Arm(inj *guard.Injector, faults []ChaosFault) {
	for _, cf := range faults {
		inj.Set(cf.Name, cf.Fault)
	}
}
