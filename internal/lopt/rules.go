package lopt

import (
	"fmt"

	"lera/internal/catalog"
	"lera/internal/rewrite"
	"lera/internal/rules"
	"lera/internal/term"
)

// SyntacticRules is the default syntactic rule base, written in the
// paper's rule language: normalisation of basic operators into the
// canonical compound forms, the Figure 7 merging rules and the Figure 8
// permutation rules. The blocks are assembled into the full optimizer
// sequence by internal/core.
const SyntacticRules = `
-- normalisation: binary connectives into canonical n-ary forms, basic
-- operators (filter, join) into the compound search (§3.1)
rule and_norm: AND(f, g) --> ANDMERGE(f, g);
rule or_norm: OR(f, g) --> ORMERGE(f, g);
rule and_in_ands: ANDS(SET(w*, AND(f, g))) --> ANDS(SET(w*, f, g));
rule ands_in_ands: ANDS(SET(w*, ANDS(z))) --> ANDS(SET-UNION(w*, z));
rule filter_to_search: FILTER(r, q) --> SEARCH(LIST(r), q, p9) / IDPROJ(r, p9);
rule join_to_search: JOIN(r, s, q) --> SEARCH(LIST(r, s), q, p9) / IDPROJ2(r, s, p9);

-- Figure 7: operation merging. Two successive searches merge; their
-- qualifications are connected by "and" after SUBSTITUTE remaps the
-- outer references through the inner projection and SHIFT rebases the
-- inner qualification (the paper's substitute function, with the match
-- context passed explicitly).
rule search_merge:
  SEARCH(LIST(x*, SEARCH(z, g, b), v*), f, a)
  / -->
  SEARCH(APPENDL(x*, v*, z), ANDMERGE(f2, g2), a2)
  / SUBSTITUTE(f, x*, v*, z, b, f2), SHIFT(g, x*, v*, z, g2), SUBSTITUTE(a, x*, v*, z, b, a2) ;

rule union_merge: UNIONN(SET(x*, UNIONN(z))) --> UNIONN(SET-UNION(x*, z));
rule union_single: UNIONN(SET(u)) --> u;

-- Redundant sub-query elimination (§1): a search that neither filters nor
-- reshapes its single operand is the identity and disappears.
rule search_identity: SEARCH(LIST(r), q, e) / ISTRUEQ(q), ISIDPROJ(e, r) --> r;

-- Figure 8: operation permutation. A search over a union splits into a
-- union of searches (binary in the paper; n-ary unions peel one member
-- per application here). A search over a nest pushes the conjuncts that
-- REFER only to non-nested attributes inside the nest.
rule push_union:
  SEARCH(LIST(x*, UNIONN(SET(u, v, w*)), y*), f, a)
  / -->
  UNIONN(SET(
     SEARCH(APPENDL(x*, LIST(u), y*), f, a),
     SEARCH(APPENDL(x*, LIST(UNIONN(SET(v, w*))), y*), f, a)))
  / ;

rule push_nest:
  SEARCH(LIST(x*, NEST(z, a, b), y*), q, e)
  / -->
  SEARCH(LIST(x*, NEST(SEARCH(z2, q2, e2), a, b), y*), q3, e)
  / PUSHNEST(q, x*, z, a, b, q2, q3, e2, z2) ;

-- Under set semantics a selection commutes with difference on its left
-- operand and with intersection on any operand:
--   σq(u − v) = σq(u) − v        σq(u ∩ v) = σq(u) ∩ v
-- The NOTTRUEQ guard stops re-application once the qualification has
-- moved inside.
rule push_diff:
  SEARCH(LIST(DIFF(u, v)), q, a)
  / NOTTRUEQ(q)
  --> SEARCH(LIST(DIFF(SEARCH(LIST(u), q, p9), v)), ANDS(SET()), a)
  / IDPROJ(u, p9) ;

rule push_inter:
  SEARCH(LIST(INTERN(SET(u, w*))), q, a)
  / NOTTRUEQ(q)
  --> SEARCH(LIST(INTERN(SET(SEARCH(LIST(u), q, p9), w*))), ANDS(SET()), a)
  / IDPROJ(u, p9) ;

block(normalize, {and_norm, or_norm, and_in_ands, ands_in_ands, filter_to_search, join_to_search}, inf);
block(merge, {union_merge, union_single, search_merge, search_identity}, inf);
block(push, {push_union, push_nest, push_diff, push_inter}, inf);
`

// RuleSet parses the syntactic rule base.
func RuleSet() *rules.RuleSet { return rules.MustParse(SyntacticRules) }

func registerIDProj2(ext *rewrite.Externals) {
	ext.RegisterMethod("IDPROJ2", func(ctx *rewrite.Ctx, args []*term.Term) (bool, error) {
		if len(args) != 3 {
			return false, fmt.Errorf("IDPROJ2 takes (r, s, out)")
		}
		p, err := idProjN(ctx, []*term.Term{args[0], args[1]})
		if err != nil {
			return false, nil
		}
		return true, bindOut(ctx, args[2], p)
	})
}

// Externals returns a fresh externals registry with both the generic and
// the syntactic externals installed.
func Externals() *rewrite.Externals {
	ext := rewrite.NewExternals()
	RegisterExternals(ext)
	registerIDProj2(ext)
	return ext
}

// Engine builds a rewrite engine over the syntactic rules with the
// syntactic externals registered — convenient for tests; internal/core
// assembles the full optimizer.
func Engine(cat *catalog.Catalog, opts rewrite.Options) *rewrite.Engine {
	return rewrite.New(RuleSet(), Externals(), cat, opts)
}
