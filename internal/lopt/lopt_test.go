package lopt

import (
	"strings"
	"testing"

	"lera/internal/lera"
	"lera/internal/rewrite"
	"lera/internal/rules"
	"lera/internal/term"
	"lera/internal/testdb"
)

func engine(t *testing.T) *rewrite.Engine {
	t.Helper()
	cat, err := testdb.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	return Engine(cat, rewrite.Options{CollectTrace: true})
}

// TestFigure7SearchMerging: two stacked searches merge into one, with the
// outer qualification remapped through the inner projection.
func TestFigure7SearchMerging(t *testing.T) {
	e := engine(t)
	// Inner: search((FILM), [member('Adventure', 1.3)], (1.1, 1.2))
	inner := lera.Search(
		[]*term.Term{lera.Rel("FILM")},
		lera.Ands(term.F("MEMBER", term.Str("Adventure"), lera.Attr(1, 3))),
		[]*term.Term{lera.Attr(1, 1), lera.Attr(1, 2)},
	)
	// Outer: search((APPEARS_IN, inner), [1.1=2.1], (2.2))
	outer := lera.Search(
		[]*term.Term{lera.Rel("APPEARS_IN"), inner},
		lera.Ands(lera.Cmp("=", lera.Attr(1, 1), lera.Attr(2, 1))),
		[]*term.Term{lera.Attr(2, 2)},
	)
	out, st, err := e.RunBlock(outer, "merge")
	if err != nil {
		t.Fatal(err)
	}
	if st.Applications != 1 {
		t.Fatalf("applications = %d; %s", st.Applications, lera.Format(out))
	}
	if lera.SearchCount(out) != 1 {
		t.Fatalf("merged tree still has %d searches: %s", lera.SearchCount(out), lera.Format(out))
	}
	got := lera.Format(out)
	// Relations: append(x*, v*, z) = (APPEARS_IN, FILM); outer ref 2.1
	// maps through inner proj (1.1 shifted by 1) to 2.1; inner member
	// shifts to 2.3; outer proj 2.2 maps to inner 1.2 shifted -> 2.2.
	want := "search((APPEARS_IN, FILM), [2.1=1.1 ∧ member('Adventure', 2.3)], (2.2))"
	// Conjunct order is canonical; accept either order of the equality.
	alt := "search((APPEARS_IN, FILM), [1.1=2.1 ∧ member('Adventure', 2.3)], (2.2))"
	if got != want && got != alt {
		t.Errorf("merged = %s", got)
	}
	// The merged query must still be schema-valid.
	if _, err := lera.Infer(out, e.Cat, nil); err != nil {
		t.Errorf("schema after merge: %v", err)
	}
}

// A three-level stack merges to a single search (the rule applies once
// per level).
func TestSearchMergingStack(t *testing.T) {
	e := engine(t)
	q := lera.Search([]*term.Term{lera.Rel("FILM")}, lera.TrueQual(),
		[]*term.Term{lera.Attr(1, 1), lera.Attr(1, 2), lera.Attr(1, 3)})
	for i := 0; i < 3; i++ {
		q = lera.Search([]*term.Term{q}, lera.TrueQual(),
			[]*term.Term{lera.Attr(1, 1), lera.Attr(1, 2), lera.Attr(1, 3)})
	}
	out, st, err := e.RunBlock(q, "merge")
	if err != nil {
		t.Fatal(err)
	}
	// Three merges plus the final identity elimination: the whole stack
	// reduces to the base relation.
	if st.Applications != 4 || !lera.IsOp(out, lera.OpRel) {
		t.Errorf("stack merge: %d applications, %s", st.Applications, lera.Format(out))
	}
}

// Merging remaps complex inner projection expressions into the outer
// qualification (the SUBSTITUTE method's inlining path).
func TestSearchMergingInlinesProjections(t *testing.T) {
	e := engine(t)
	inner := lera.Search(
		[]*term.Term{lera.Rel("APPEARS_IN")},
		lera.TrueQual(),
		[]*term.Term{lera.Attr(1, 1), lera.Call("Salary", lera.Attr(1, 2))},
	)
	outer := lera.Search(
		[]*term.Term{inner},
		lera.Ands(lera.Cmp(">", lera.Attr(1, 2), term.Num(10000))),
		[]*term.Term{lera.Attr(1, 1)},
	)
	out, _, err := e.RunBlock(outer, "merge")
	if err != nil {
		t.Fatal(err)
	}
	got := lera.Format(out)
	want := "search((APPEARS_IN), [salary(1.2)>10000], (1.1))"
	if got != want {
		t.Errorf("merged = %s, want %s", got, want)
	}
}

// TestFigure7UnionMerging: UNION(SET(x*, UNION(z))) flattens.
func TestFigure7UnionMerging(t *testing.T) {
	e := engine(t)
	q := lera.Union(
		lera.Rel("FILM"),
		lera.Union(lera.Rel("APPEARS_IN"), lera.Rel("DOMINATE")),
	)
	out, st, err := e.RunBlock(q, "merge")
	if err != nil {
		t.Fatal(err)
	}
	if st.Applications != 1 {
		t.Fatalf("applications = %d", st.Applications)
	}
	if len(out.Args[0].Args) != 3 {
		t.Errorf("flattened union members = %d: %s", len(out.Args[0].Args), lera.Format(out))
	}
}

func TestUnionSingleCollapses(t *testing.T) {
	e := engine(t)
	q := lera.Union(lera.Rel("FILM"))
	out, _, err := e.RunBlock(q, "merge")
	if err != nil {
		t.Fatal(err)
	}
	if !lera.IsOp(out, lera.OpRel) {
		t.Errorf("singleton union must collapse: %s", lera.Format(out))
	}
}

// TestNormalizeBasicOps: FILTER and JOIN canonicalise into SEARCH with
// identity projections derived from the catalog schema (the paper's
// SCHEMA method).
func TestNormalizeBasicOps(t *testing.T) {
	e := engine(t)
	f := lera.Filter(lera.Rel("FILM"), lera.Ands(lera.Cmp("=", lera.Attr(1, 1), term.Num(1))))
	out, _, err := e.RunBlock(f, "normalize")
	if err != nil {
		t.Fatal(err)
	}
	if lera.Format(out) != "search((FILM), [1.1=1], (1.1, 1.2, 1.3))" {
		t.Errorf("filter = %s", lera.Format(out))
	}
	j := lera.Join(lera.Rel("FILM"), lera.Rel("APPEARS_IN"), lera.Ands(lera.Cmp("=", lera.Attr(1, 1), lera.Attr(2, 1))))
	out2, _, err := e.RunBlock(j, "normalize")
	if err != nil {
		t.Fatal(err)
	}
	if lera.Format(out2) != "search((FILM, APPEARS_IN), [1.1=2.1], (1.1, 1.2, 1.3, 2.1, 2.2))" {
		t.Errorf("join = %s", lera.Format(out2))
	}
}

func TestNormalizeConnectives(t *testing.T) {
	e := engine(t)
	c1 := lera.Cmp("=", lera.Attr(1, 1), term.Num(1))
	c2 := lera.Cmp(">", lera.Attr(1, 2), term.Num(2))
	q := lera.Filter(lera.Rel("FILM"), term.F("AND", c1, c2))
	out, _, err := e.RunBlock(q, "normalize")
	if err != nil {
		t.Fatal(err)
	}
	qual := out.Args[1]
	if !lera.IsOp(qual, lera.EAnds) || len(lera.Conjuncts(qual)) != 2 {
		t.Errorf("AND normalised = %s", lera.Format(qual))
	}
	// AND nested inside an ANDS set flattens too.
	q2 := lera.Filter(lera.Rel("FILM"), lera.Ands(term.F("AND", c1, c2)))
	out2, _, err := e.RunBlock(q2, "normalize")
	if err != nil {
		t.Fatal(err)
	}
	if len(lera.Conjuncts(out2.Args[1])) != 2 {
		t.Errorf("and_in_ands = %s", lera.Format(out2.Args[1]))
	}
	// OR normalises into ORS.
	q3 := lera.Filter(lera.Rel("FILM"), term.F("OR", c1, c2))
	out3, _, err := e.RunBlock(q3, "normalize")
	if err != nil {
		t.Fatal(err)
	}
	if !lera.IsOp(out3.Args[1], lera.EOrs) {
		t.Errorf("OR normalised = %s", lera.Format(out3.Args[1]))
	}
}

// TestFigure8PushUnion: a search over a union splits into a union of
// searches, recursively down to single members.
func TestFigure8PushUnion(t *testing.T) {
	e := engine(t)
	u := lera.Union(lera.Rel("FILM"), lera.Rel("FILM2"), lera.Rel("FILM3"))
	// Declare two more FILM-shaped relations.
	for _, n := range []string{"FILM2", "FILM3"} {
		r, _ := e.Cat.Relation("FILM")
		if _, err := e.Cat.DeclareRelation(n, r.Columns); err != nil {
			t.Fatal(err)
		}
	}
	q := lera.Search(
		[]*term.Term{u},
		lera.Ands(lera.Cmp("=", lera.Attr(1, 1), term.Num(1))),
		[]*term.Term{lera.Attr(1, 2)},
	)
	out, _, err := e.RunBlock(q, "push")
	if err != nil {
		t.Fatal(err)
	}
	// Result: union of three searches, one per member (after the merge
	// block flattens the nested unions).
	out, _, err = e.RunBlock(out, "merge")
	if err != nil {
		t.Fatal(err)
	}
	if !lera.IsOp(out, lera.OpUnion) {
		t.Fatalf("expected union at root: %s", lera.Format(out))
	}
	members := out.Args[0].Args
	if len(members) != 3 {
		t.Fatalf("members = %d: %s", len(members), lera.Format(out))
	}
	for _, m := range members {
		if !lera.IsOp(m, lera.OpSearch) {
			t.Errorf("member is not a search: %s", lera.Format(m))
		}
		if term.Contains(m, func(s *term.Term) bool { return lera.IsOp(s, lera.OpUnion) }) {
			t.Errorf("member still contains a union: %s", lera.Format(m))
		}
	}
}

// TestFigure8PushNest: conjuncts on non-nested attributes push inside the
// nest; conjuncts on the nested collection stay outside (the REFER
// condition).
func TestFigure8PushNest(t *testing.T) {
	e := engine(t)
	// NEST(APPEARS_IN, (2), Actors): output (Numf, Actors).
	n := lera.Nest(lera.Rel("APPEARS_IN"), []int{2}, "Actors")
	q := lera.Search(
		[]*term.Term{n},
		lera.Ands(
			lera.Cmp("=", lera.Attr(1, 1), term.Num(1)),       // on Numf: pushable
			term.F("NOT", term.F("ISEMPTY", lera.Attr(1, 2))), // on Actors: not pushable
		),
		[]*term.Term{lera.Attr(1, 2)},
	)
	out, st, err := e.RunBlock(q, "push")
	if err != nil {
		t.Fatal(err)
	}
	if st.Applications != 1 {
		t.Fatalf("applications = %d: %s", st.Applications, lera.Format(out))
	}
	got := lera.Format(out)
	// The inner search filters Numf=1 against APPEARS_IN's column 1.
	if !strings.Contains(got, "nest(search((APPEARS_IN), [1.1=1], (1.1, 1.2)), (2), Actors)") {
		t.Errorf("pushed = %s", got)
	}
	// The ISEMPTY conjunct stays in the outer search.
	if !strings.Contains(got, "¬(isempty(1.2))") {
		t.Errorf("kept conjunct missing: %s", got)
	}
	// Idempotent: nothing more to push.
	out2, st2, err := e.RunBlock(out, "push")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Applications != 0 {
		t.Errorf("second push applied %d times: %s", st2.Applications, lera.Format(out2))
	}
}

// When every conjunct touches the nested column, the REFER condition
// blocks the rule entirely.
func TestPushNestVetoed(t *testing.T) {
	e := engine(t)
	n := lera.Nest(lera.Rel("APPEARS_IN"), []int{2}, "Actors")
	q := lera.Search(
		[]*term.Term{n},
		lera.Ands(term.F("NOT", term.F("ISEMPTY", lera.Attr(1, 2)))),
		[]*term.Term{lera.Attr(1, 1)},
	)
	_, st, err := e.RunBlock(q, "push")
	if err != nil {
		t.Fatal(err)
	}
	if st.Applications != 0 {
		t.Error("push through nest must be vetoed when nothing is pushable")
	}
}

// E1 shape check at the unit level: a k-level view stack's operator count
// collapses to a single search regardless of k.
func TestMergeReducesProgramSize(t *testing.T) {
	e := engine(t)
	for k := 1; k <= 6; k++ {
		q := lera.Search([]*term.Term{lera.Rel("FILM")}, lera.TrueQual(),
			[]*term.Term{lera.Attr(1, 1), lera.Attr(1, 2), lera.Attr(1, 3)})
		for i := 0; i < k; i++ {
			q = lera.Search([]*term.Term{q}, lera.TrueQual(),
				[]*term.Term{lera.Attr(1, 1), lera.Attr(1, 2), lera.Attr(1, 3)})
		}
		before := lera.OperatorCount(q)
		out, _, err := e.RunBlock(q, "merge")
		if err != nil {
			t.Fatal(err)
		}
		after := lera.OperatorCount(out)
		// The stacked identity searches merge and then vanish entirely
		// (search_identity), leaving just the base relation reference.
		if after != 1 {
			t.Errorf("k=%d: operators %d -> %d, want 1", k, before, after)
		}
	}
}

// The REFERONLY constraint is available to implementor-written rules.
func TestReferOnlyConstraint(t *testing.T) {
	cat, _ := testdb.Catalog()
	ext := Externals()
	rs := RuleSet()
	extra := `
rule mark: SEARCH(LIST(r), q, e) / REFERONLY(q, 1) --> MARKED(r, q, e);
block(extra, {mark}, inf);
`
	rsx, err := rules.Parse(extra)
	if err != nil {
		t.Fatal(err)
	}
	rs.Merge(rsx)
	e := rewrite.New(rs, ext, cat, rewrite.Options{})
	q := lera.Search([]*term.Term{lera.Rel("FILM")},
		lera.Ands(lera.Cmp("=", lera.Attr(1, 1), term.Num(1))),
		[]*term.Term{lera.Attr(1, 2)})
	out, _, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if out.Functor != "MARKED" {
		t.Errorf("REFERONLY rule did not fire: %s", out)
	}
}

// The identity search introduced by view expansion disappears (§1's
// redundant sub-query elimination).
func TestSearchIdentityElimination(t *testing.T) {
	e := engine(t)
	id := lera.Search([]*term.Term{lera.Rel("FILM")}, lera.TrueQual(),
		[]*term.Term{lera.Attr(1, 1), lera.Attr(1, 2), lera.Attr(1, 3)})
	q := lera.Diff(id, lera.Rel("FILM"))
	out, st, err := e.RunBlock(q, "merge")
	if err != nil {
		t.Fatal(err)
	}
	if st.Applications != 1 || !lera.IsOp(out.Args[0], lera.OpRel) {
		t.Errorf("identity not eliminated: %s", lera.Format(out))
	}
	// Non-identity searches survive: wrong order, wrong arity, a filter.
	keep := []*term.Term{
		lera.Search([]*term.Term{lera.Rel("FILM")}, lera.TrueQual(),
			[]*term.Term{lera.Attr(1, 2), lera.Attr(1, 1), lera.Attr(1, 3)}),
		lera.Search([]*term.Term{lera.Rel("FILM")}, lera.TrueQual(),
			[]*term.Term{lera.Attr(1, 1)}),
		lera.Search([]*term.Term{lera.Rel("FILM")},
			lera.Ands(lera.Cmp("=", lera.Attr(1, 1), term.Num(1))),
			[]*term.Term{lera.Attr(1, 1), lera.Attr(1, 2), lera.Attr(1, 3)}),
	}
	for _, k := range keep {
		_, st, err := e.RunBlock(k, "merge")
		if err != nil {
			t.Fatal(err)
		}
		if st.Applications != 0 {
			t.Errorf("non-identity eliminated: %s", lera.Format(k))
		}
	}
}

// Selections push through difference and intersection (set semantics).
func TestPushDiffAndInter(t *testing.T) {
	e := engine(t)
	qual := lera.Ands(lera.Cmp("=", lera.Attr(1, 1), term.Num(1)))
	proj := []*term.Term{lera.Attr(1, 2)}

	d := lera.Search([]*term.Term{lera.Diff(lera.Rel("FILM"), lera.Rel("FILM"))}, qual, proj)
	out, st, err := e.RunBlock(d, "push")
	if err != nil {
		t.Fatal(err)
	}
	if st.Applications != 1 {
		t.Fatalf("push_diff applications = %d", st.Applications)
	}
	f := lera.Format(out)
	if !strings.Contains(f, "diff(search((FILM), [1.1=1]") {
		t.Errorf("pushed diff = %s", f)
	}
	// Re-application is blocked (outer qual now true).
	_, st2, err := e.RunBlock(out, "push")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Applications != 0 {
		t.Error("push_diff must not re-apply")
	}

	i := lera.Search([]*term.Term{lera.Inter(lera.Rel("FILM"), lera.Rel("DOMINATE2"))}, qual, proj)
	// Declare a FILM-shaped second relation so schemas agree.
	r, _ := e.Cat.Relation("FILM")
	if _, err := e.Cat.DeclareRelation("DOMINATE2", r.Columns); err != nil {
		t.Fatal(err)
	}
	out2, st3, err := e.RunBlock(i, "push")
	if err != nil {
		t.Fatal(err)
	}
	if st3.Applications != 1 {
		t.Fatalf("push_inter applications = %d: %s", st3.Applications, lera.Format(out2))
	}
	if !strings.Contains(lera.Format(out2), "inter({") || !strings.Contains(lera.Format(out2), "[1.1=1]") {
		t.Errorf("pushed inter = %s", lera.Format(out2))
	}
}
