// Package lopt implements the syntactic part of the logical optimizer
// (Section 5): the LERA-specific external functions the paper's rules call
// (SUBSTITUTE, REFER, SCHEMA-derived identity projections, the nest-push
// splitter) and the default syntactic rule base — normalisation, operation
// merging (Figure 7) and operation permutation (Figure 8).
package lopt

import (
	"fmt"

	"lera/internal/lera"
	"lera/internal/rewrite"
	"lera/internal/term"
)

// RegisterExternals installs the syntactic externals into the registry.
func RegisterExternals(ext *rewrite.Externals) {
	ext.RegisterMethod("SUBSTITUTE", substitute)
	ext.RegisterMethod("SHIFT", shift)
	ext.RegisterMethod("IDPROJ", idProj)
	ext.RegisterMethod("PUSHNEST", pushNest)
	ext.RegisterConstraint("REFERONLY", referOnly)
	ext.RegisterConstraint("NOTEMPTYL", notEmptyL)
	ext.RegisterConstraint("ISTRUEQ", func(ctx *rewrite.Ctx, args []*term.Term) (bool, error) {
		if len(args) != 1 {
			return false, fmt.Errorf("ISTRUEQ takes one qualification")
		}
		return lera.IsTrueQual(args[0]), nil
	})
	ext.RegisterConstraint("NOTTRUEQ", func(ctx *rewrite.Ctx, args []*term.Term) (bool, error) {
		if len(args) != 1 {
			return false, fmt.Errorf("NOTTRUEQ takes one qualification")
		}
		return !lera.IsTrueQual(args[0]), nil
	})
	ext.RegisterConstraint("ISIDPROJ", isIDProj)
	ext.RegisterBuiltin("ORMERGE", func(ctx *rewrite.Ctx, args []*term.Term) (*term.Term, error) {
		return lera.Ors(args...), nil
	})
}

func listArgs(t *term.Term) ([]*term.Term, bool) {
	if t != nil && t.Kind == term.Fun && t.Functor == term.FList {
		return t.Args, true
	}
	return nil, false
}

func bindOut(ctx *rewrite.Ctx, out *term.Term, val *term.Term) error {
	if out.Kind != term.Var {
		return fmt.Errorf("output argument must be an unbound variable, got %s", out)
	}
	ctx.Bind.BindVar(out.Name, val)
	return nil
}

// substitute implements the SUBSTITUTE method of the Figure 7 search
// merging rule: SUBSTITUTE(q, x*, v*, z, b, out).
//
// The inner search sat at position p = len(x*)+1 of the outer relation
// list and is replaced by its own relations z, appended AFTER x* and v*
// (the paper's append(x*, v*, z)). The outer expression q is remapped:
//
//   - ATTR(i, j) with i < p: unchanged;
//   - ATTR(i, j) with i > p: i decreases by one (the inner search left
//     the list);
//   - ATTR(p, j): replaced by the inner projection expression b[j], whose
//     own ATTRs shift by len(x*)+len(v*) because z now starts there.
func substitute(ctx *rewrite.Ctx, args []*term.Term) (bool, error) {
	if len(args) != 6 {
		return false, fmt.Errorf("SUBSTITUTE takes (q, x*, v*, z, b, out)")
	}
	q := args[0]
	xs, ok1 := listArgs(args[1])
	vs, ok2 := listArgs(args[2])
	zs, ok3 := listArgs(args[3])
	bs, ok4 := listArgs(args[4])
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return false, fmt.Errorf("SUBSTITUTE: list arguments expected")
	}
	_ = zs
	p := len(xs) + 1
	offset := len(xs) + len(vs)
	var mapErr error
	out := lera.MapAttrs(q, func(i, j int, at *term.Term) *term.Term {
		switch {
		case i < p:
			return at
		case i > p:
			return lera.Attr(i-1, j)
		default: // i == p: inline the inner projection expression
			if j < 1 || j > len(bs) {
				mapErr = fmt.Errorf("SUBSTITUTE: projection index %d out of range 1..%d", j, len(bs))
				return at
			}
			return lera.ShiftAttrs(bs[j-1], 1, offset)
		}
	})
	if mapErr != nil {
		return false, mapErr
	}
	return true, bindOut(ctx, args[5], out)
}

// shift implements SHIFT(g, x*, v*, z, out): the inner search's
// qualification g refers to z's positions 1..len(z); after the merge z
// starts at len(x*)+len(v*)+1, so every reference shifts by that offset.
func shift(ctx *rewrite.Ctx, args []*term.Term) (bool, error) {
	if len(args) != 5 {
		return false, fmt.Errorf("SHIFT takes (g, x*, v*, z, out)")
	}
	xs, ok1 := listArgs(args[1])
	vs, ok2 := listArgs(args[2])
	if !ok1 || !ok2 {
		return false, fmt.Errorf("SHIFT: list arguments expected")
	}
	out := lera.ShiftAttrs(args[0], 1, len(xs)+len(vs))
	return true, bindOut(ctx, args[4], out)
}

// idProj implements IDPROJ(r, out): bind out to the identity projection
// LIST(1.1, ..., 1.n) over relation expression r — the SCHEMA method of
// Figure 8 specialised to the use the canonicalisation rules need.
func idProj(ctx *rewrite.Ctx, args []*term.Term) (bool, error) {
	if len(args) != 2 {
		return false, fmt.Errorf("IDPROJ takes (rel, out)")
	}
	s, err := ctx.InferAt(args[0])
	if err != nil {
		return false, nil // unknown schema: not applicable
	}
	projs := make([]*term.Term, s.Arity())
	for j := 1; j <= s.Arity(); j++ {
		projs[j-1] = lera.Attr(1, j)
	}
	return true, bindOut(ctx, args[1], term.List(projs...))
}

// idProj2 is like idProj for a two-relation list: LIST(1.*, 2.*).
func idProjN(ctx *rewrite.Ctx, rels []*term.Term) (*term.Term, error) {
	var projs []*term.Term
	for i, r := range rels {
		s, err := ctx.InferAt(r)
		if err != nil {
			return nil, err
		}
		for j := 1; j <= s.Arity(); j++ {
			projs = append(projs, lera.Attr(i+1, j))
		}
	}
	return term.List(projs...), nil
}

// isIDProj implements ISIDPROJ(e, r): e is the identity projection
// LIST(1.1, ..., 1.n) over relation expression r.
func isIDProj(ctx *rewrite.Ctx, args []*term.Term) (bool, error) {
	if len(args) != 2 {
		return false, fmt.Errorf("ISIDPROJ takes (proj, rel)")
	}
	projs, ok := listArgs(args[0])
	if !ok {
		return false, nil
	}
	s, err := ctx.InferAt(args[1])
	if err != nil || s.Arity() != len(projs) {
		return false, nil
	}
	for j, p := range projs {
		i, jj, isAttr := lera.AttrIdx(p)
		if !isAttr || i != 1 || jj != j+1 {
			return false, nil
		}
	}
	return true, nil
}

// referOnly implements the REFER check of Figure 8 as a constraint:
// REFERONLY(q, n) is true when every attribute reference in q addresses
// relation n (a positive integer constant).
func referOnly(ctx *rewrite.Ctx, args []*term.Term) (bool, error) {
	if len(args) != 2 || args[1].Kind != term.Const {
		return false, fmt.Errorf("REFERONLY takes (qual, relIndex)")
	}
	n := int(args[1].Val.I)
	return lera.RefersOnly(args[0], func(i, j int) bool { return i == n }), nil
}

// notEmptyL is true when the instantiated list argument is non-empty.
func notEmptyL(ctx *rewrite.Ctx, args []*term.Term) (bool, error) {
	if len(args) != 1 {
		return false, fmt.Errorf("NOTEMPTYL takes one list")
	}
	as, ok := listArgs(args[0])
	if !ok {
		return false, fmt.Errorf("NOTEMPTYL: list expected, got %s", args[0])
	}
	return len(as) > 0, nil
}

// pushNest implements the Figure 8 "search through nest pushing" rule's
// computational core: PUSHNEST(q, x*, z, a, b, qi2, qj, e2, z2).
//
// Given the outer qualification q and a NEST(z, a, b) at position
// p = len(x*)+1, it partitions q's conjuncts into those referring ONLY to
// non-nested output columns of the nest at position p (the paper's quali*,
// selected by the REFER condition) and the rest (qualj*). It binds:
//
//	qi2 — quali* remapped into the nest input's coordinates (rel 1),
//	qj  — qualj*, unchanged (the nest keeps its position),
//	e2  — the identity projection over z (the SCHEMA method's role),
//	z2  — LIST(z), the inner search's relation list.
//
// It vetoes the rule when no conjunct can be pushed.
func pushNest(ctx *rewrite.Ctx, args []*term.Term) (bool, error) {
	if len(args) != 9 {
		return false, fmt.Errorf("PUSHNEST takes (q, x*, z, a, b, qi2, qj, e2, z2)")
	}
	q := args[0]
	xs, ok := listArgs(args[1])
	if !ok {
		return false, fmt.Errorf("PUSHNEST: x* must be a list")
	}
	z := args[2]
	aIdxs, ok := listArgs(args[3])
	if !ok {
		return false, fmt.Errorf("PUSHNEST: nest attribute list expected")
	}
	p := len(xs) + 1

	zSchema, err := ctx.InferAt(z)
	if err != nil {
		return false, nil // cannot type the nest input: not applicable
	}
	// Map from nest-output column index (non-nested columns, in order)
	// to nest-input column index.
	nested := map[int]bool{}
	for _, ix := range aIdxs {
		nested[int(ix.Val.I)] = true
	}
	var outToIn []int
	for j := 1; j <= zSchema.Arity(); j++ {
		if !nested[j] {
			outToIn = append(outToIn, j)
		}
	}
	nestedColOut := len(outToIn) + 1 // the new collection column

	var pushed, kept []*term.Term
	for _, c := range lera.Conjuncts(q) {
		pushable := lera.RefersOnly(c, func(i, j int) bool {
			return i == p && j < nestedColOut && j >= 1
		})
		// A conjunct with no attribute references at all stays put.
		hasAttr := term.Contains(c, func(s *term.Term) bool {
			_, _, isAttr := lera.AttrIdx(s)
			return isAttr
		})
		if pushable && hasAttr {
			pushed = append(pushed, lera.MapAttrs(c, func(i, j int, at *term.Term) *term.Term {
				return lera.Attr(1, outToIn[j-1])
			}))
		} else {
			kept = append(kept, c)
		}
	}
	if len(pushed) == 0 {
		return false, nil // nothing to push: veto (the REFER condition)
	}
	e2, err := idProjN(ctx, []*term.Term{z})
	if err != nil {
		return false, nil
	}
	if err := bindOut(ctx, args[5], lera.Ands(pushed...)); err != nil {
		return false, err
	}
	if err := bindOut(ctx, args[6], lera.Ands(kept...)); err != nil {
		return false, err
	}
	if err := bindOut(ctx, args[7], e2); err != nil {
		return false, err
	}
	return true, bindOut(ctx, args[8], term.List(z))
}
