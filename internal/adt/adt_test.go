package adt

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"lera/internal/value"
)

func call(t *testing.T, r *Registry, name string, args ...value.Value) value.Value {
	t.Helper()
	v, err := r.Call(name, args)
	if err != nil {
		t.Fatalf("%s(%v): %v", name, args, err)
	}
	return v
}

func mustErr(t *testing.T, r *Registry, name string, args ...value.Value) {
	t.Helper()
	if _, err := r.Call(name, args); err == nil {
		t.Errorf("%s(%v): expected error", name, args)
	}
}

// TestFigure1 exercises every collection function the paper's Figure 1
// lists, at the hierarchy level the figure places it.
func TestFigure1(t *testing.T) {
	r := NewRegistry()
	s := value.NewSet(value.Int(1), value.Int(2))
	b := value.NewBag(value.Int(1), value.Int(1))
	l := value.NewList(value.Int(3), value.Int(4))

	// Collection level: Convert, IsEmpty, Equal, Insert, Remove.
	if got := call(t, r, "TOSET", b); got.Len() != 1 {
		t.Errorf("Convert bag->set = %v", got)
	}
	if got := call(t, r, "TOBAG", s); got.K != value.KBag {
		t.Errorf("Convert set->bag = %v", got)
	}
	if got := call(t, r, "TOLIST", s); got.K != value.KList {
		t.Errorf("Convert set->list = %v", got)
	}
	if got := call(t, r, "TOARRAY", l); got.K != value.KArray {
		t.Errorf("Convert list->array = %v", got)
	}
	if !call(t, r, "ISEMPTY", value.NewSet()).B {
		t.Error("IsEmpty({}) = false")
	}
	if call(t, r, "ISEMPTY", s).B {
		t.Error("IsEmpty({1,2}) = true")
	}
	if !call(t, r, "EQUAL", s, value.NewSet(value.Int(2), value.Int(1))).B {
		t.Error("Equal on reordered sets")
	}
	if got := call(t, r, "INSERT", s, value.Int(3)); got.Len() != 3 {
		t.Errorf("Insert = %v", got)
	}
	if got := call(t, r, "REMOVE", s, value.Int(1)); got.Len() != 1 {
		t.Errorf("Remove = %v", got)
	}

	// Set/bag level: Member, Union, Intersection, Difference, Include,
	// Choice, MakeSet, Exist/All.
	if !call(t, r, "MEMBER", value.Int(2), s).B {
		t.Error("Member(2, {1,2})")
	}
	if got := call(t, r, "UNION", s, value.NewSet(value.Int(3))); got.Len() != 3 {
		t.Errorf("Union = %v", got)
	}
	if got := call(t, r, "INTERSECTION", s, value.NewSet(value.Int(2))); got.Len() != 1 {
		t.Errorf("Intersection = %v", got)
	}
	if got := call(t, r, "DIFFERENCE", s, value.NewSet(value.Int(2))); got.Len() != 1 {
		t.Errorf("Difference = %v", got)
	}
	if !call(t, r, "INCLUDE", value.NewSet(value.Int(1)), s).B {
		t.Error("Include({1}, {1,2})")
	}
	if got := call(t, r, "CHOICE", s); got.I != 1 {
		t.Errorf("Choice = %v", got)
	}
	if got := call(t, r, "MAKESET", value.Int(1), value.Int(1), value.Int(2)); got.Len() != 2 {
		t.Errorf("MakeSet dedupes: %v", got)
	}
	if got := call(t, r, "MAKEBAG", value.Int(1), value.Int(1)); got.Len() != 2 {
		t.Errorf("MakeBag = %v", got)
	}
	if got := call(t, r, "MAKELIST", value.Int(2), value.Int(1)); got.Elems[0].I != 2 {
		t.Errorf("MakeList preserves order: %v", got)
	}

	// List level: Append, First, Last, Nth, Count.
	if got := call(t, r, "APPEND", l, value.NewList(value.Int(5))); got.Len() != 3 {
		t.Errorf("Append = %v", got)
	}
	if got := call(t, r, "FIRST", l); got.I != 3 {
		t.Errorf("First = %v", got)
	}
	if got := call(t, r, "LAST", l); got.I != 4 {
		t.Errorf("Last = %v", got)
	}
	if got := call(t, r, "NTH", l, value.Int(2)); got.I != 4 {
		t.Errorf("Nth = %v", got)
	}
	if got := call(t, r, "COUNT", b); got.I != 2 {
		t.Errorf("Count = %v", got)
	}
}

func TestQuantifiers(t *testing.T) {
	r := NewRegistry()
	allTrue := value.NewList(value.Bool(true), value.Bool(true))
	mixed := value.NewList(value.Bool(true), value.Bool(false))
	empty := value.NewSet()
	if !call(t, r, "ALL", allTrue).B {
		t.Error("ALL(true,true)")
	}
	if call(t, r, "ALL", mixed).B {
		t.Error("ALL(true,false)")
	}
	if !call(t, r, "ALL", empty).B {
		t.Error("ALL({}) is vacuously true")
	}
	if !call(t, r, "EXIST", mixed).B {
		t.Error("EXIST(true,false)")
	}
	if call(t, r, "EXIST", empty).B {
		t.Error("EXIST({}) is false")
	}
	mustErr(t, r, "ALL", value.Int(1))
	mustErr(t, r, "ALL", value.NewList(value.Int(1)))
}

func TestComparisons(t *testing.T) {
	r := NewRegistry()
	cases := []struct {
		op   string
		a, b value.Value
		want bool
	}{
		{"=", value.Int(5), value.Real(5), true},
		{"<>", value.Int(5), value.Int(6), true},
		{"<", value.Int(5), value.Int(6), true},
		{">", value.String("b"), value.String("a"), true},
		{"<=", value.Int(5), value.Int(5), true},
		{">=", value.Int(4), value.Int(5), false},
	}
	for _, c := range cases {
		if got := call(t, r, c.op, c.a, c.b); got.B != c.want {
			t.Errorf("%v %s %v = %v, want %v", c.a, c.op, c.b, got.B, c.want)
		}
	}
}

func TestBooleans(t *testing.T) {
	r := NewRegistry()
	if call(t, r, "AND", value.True, value.False).B {
		t.Error("AND(T,F)")
	}
	if !call(t, r, "AND").B {
		t.Error("AND() = true")
	}
	if !call(t, r, "OR", value.False, value.True).B {
		t.Error("OR(F,T)")
	}
	if call(t, r, "OR").B {
		t.Error("OR() = false")
	}
	if call(t, r, "NOT", value.True).B {
		t.Error("NOT(T)")
	}
	mustErr(t, r, "AND", value.Int(1))
	mustErr(t, r, "OR", value.Int(1))
	mustErr(t, r, "NOT", value.Int(1))
}

func TestArithmetic(t *testing.T) {
	r := NewRegistry()
	if got := call(t, r, "+", value.Int(2), value.Int(3)); got.K != value.KInt || got.I != 5 {
		t.Errorf("2+3 = %v", got)
	}
	if got := call(t, r, "-", value.Int(2), value.Real(0.5)); got.K != value.KReal || got.F != 1.5 {
		t.Errorf("2-0.5 = %v", got)
	}
	if got := call(t, r, "*", value.Int(4), value.Int(5)); got.I != 20 {
		t.Errorf("4*5 = %v", got)
	}
	if got := call(t, r, "/", value.Int(5), value.Int(2)); got.F != 2.5 {
		t.Errorf("5/2 = %v", got)
	}
	if got := call(t, r, "NEG", value.Int(3)); got.I != -3 {
		t.Errorf("NEG 3 = %v", got)
	}
	if got := call(t, r, "NEG", value.Real(1.5)); got.F != -1.5 {
		t.Errorf("NEG 1.5 = %v", got)
	}
	mustErr(t, r, "/", value.Int(1), value.Int(0))
	mustErr(t, r, "+", value.Int(1), value.String("x"))
	mustErr(t, r, "NEG", value.String("x"))
}

func TestStrings(t *testing.T) {
	r := NewRegistry()
	if got := call(t, r, "CONCAT", value.String("ab"), value.String("cd")); got.S != "abcd" {
		t.Errorf("CONCAT = %v", got)
	}
	if got := call(t, r, "LENGTH", value.String("abc")); got.I != 3 {
		t.Errorf("LENGTH = %v", got)
	}
	mustErr(t, r, "CONCAT", value.Int(1), value.String("x"))
	mustErr(t, r, "LENGTH", value.Int(1))
}

func TestErrors(t *testing.T) {
	r := NewRegistry()
	mustErr(t, r, "NOSUCH", value.Int(1))
	mustErr(t, r, "MEMBER", value.Int(1)) // arity
	mustErr(t, r, "ISEMPTY", value.Int(1))
	mustErr(t, r, "COUNT", value.Int(1))
	mustErr(t, r, "FIRST", value.NewList())
	mustErr(t, r, "LAST", value.NewSet(value.Int(1)))
	mustErr(t, r, "NTH", value.NewList(value.Int(1)), value.Int(0))
	mustErr(t, r, "NTH", value.NewList(value.Int(1)), value.String("x"))
	mustErr(t, r, "NTH", value.Int(1), value.Int(1))
}

func TestRegisterExtension(t *testing.T) {
	r := NewRegistry()
	// A database implementor adds an Interval overlap method — the
	// paper's extensibility story (Section 2.1).
	r.Register("OVERLAPS", 2, true, func(a []value.Value) (value.Value, error) {
		lo1, _ := a[0].Field("lo")
		hi1, _ := a[0].Field("hi")
		lo2, _ := a[1].Field("lo")
		hi2, _ := a[1].Field("hi")
		return value.Bool(value.Compare(lo1, hi2) <= 0 && value.Compare(lo2, hi1) <= 0), nil
	})
	iv := func(lo, hi int64) value.Value {
		return value.NewTuple([]string{"lo", "hi"}, []value.Value{value.Int(lo), value.Int(hi)})
	}
	if !call(t, r, "overlaps", iv(1, 5), iv(4, 9)).B {
		t.Error("overlap expected")
	}
	if call(t, r, "OVERLAPS", iv(1, 2), iv(3, 4)).B {
		t.Error("no overlap expected")
	}
	if !r.IsPure("OVERLAPS") {
		t.Error("registered function should be pure")
	}
	if r.IsPure("NOSUCH") {
		t.Error("unknown function is not pure")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	names := r.Names()
	if !sortedStrings(names) {
		t.Error("Names() must be sorted")
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"MEMBER", "UNION", "CHOICE", "MAKESET", "APPEND", "ISEMPTY", "ALL", "EXIST"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Names() missing %s", want)
		}
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

// --- property tests ---

type smallSet struct{ v value.Value }

func (smallSet) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(5)
	es := make([]value.Value, n)
	for i := range es {
		es[i] = value.Int(int64(r.Intn(6)))
	}
	return reflect.ValueOf(smallSet{value.NewSet(es...)})
}

// De Morgan over collections: INCLUDE(a,b) iff DIFFERENCE(a,b) empty.
func TestPropIncludeDifference(t *testing.T) {
	r := NewRegistry()
	f := func(a, b smallSet) bool {
		inc, err := r.Call("INCLUDE", []value.Value{a.v, b.v})
		if err != nil {
			return false
		}
		d, err := r.Call("DIFFERENCE", []value.Value{a.v, b.v})
		if err != nil {
			return false
		}
		return inc.B == (d.Len() == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Insert then Remove returns a set equal to original when elem not present.
func TestPropInsertRemove(t *testing.T) {
	r := NewRegistry()
	f := func(a smallSet, x uint8) bool {
		e := value.Int(int64(x%6) + 100) // guaranteed absent
		ins, err := r.Call("INSERT", []value.Value{a.v, e})
		if err != nil {
			return false
		}
		rem, err := r.Call("REMOVE", []value.Value{ins, e})
		if err != nil {
			return false
		}
		return value.Equal(rem, a.v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// MEMBER distributes over UNION.
func TestPropMemberUnion(t *testing.T) {
	r := NewRegistry()
	f := func(a, b smallSet, x uint8) bool {
		e := value.Int(int64(x % 8))
		u, err := r.Call("UNION", []value.Value{a.v, b.v})
		if err != nil {
			return false
		}
		mu, _ := r.Call("MEMBER", []value.Value{e, u})
		ma, _ := r.Call("MEMBER", []value.Value{e, a.v})
		mb, _ := r.Call("MEMBER", []value.Value{e, b.v})
		return mu.B == (ma.B || mb.B)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
