// Package adt implements the built-in ADT function library of the paper's
// Figure 1 together with the scalar operators of ESQL, organised as an
// extensible registry: the database implementor registers new functions
// exactly as the paper's "DBMS ADTs facility" extends the optimizer
// library (Section 1), and both the execution engine and the rewriter's
// EVALUATE constant folding call through the same registry.
package adt

import (
	"fmt"
	"sort"
	"strings"

	"lera/internal/value"
)

// Func is a registered ADT function: it receives fully evaluated argument
// values and returns a value or an error.
type Func func(args []value.Value) (value.Value, error)

// Entry describes a registered function.
type Entry struct {
	Name string
	// Arity is the required argument count; -1 means variadic.
	Arity int
	// Pure functions of constant arguments may be folded at rewrite time
	// by the EVALUATE method (paper Figure 12).
	Pure bool
	Fn   Func
}

// Registry maps (case-insensitive) function names to implementations.
type Registry struct {
	fns map[string]Entry
	// overridden records post-construction Register calls. The engine's
	// compiled comparison fast path may only bypass the registry while
	// the builtin implementations (pure value.Compare wrappers — total,
	// never erring) are still in place, so the registry tracks whether an
	// implementor replaced one.
	overridden map[string]bool
	sealed     bool
}

// NewRegistry returns a registry pre-populated with the built-in library.
func NewRegistry() *Registry {
	r := &Registry{fns: map[string]Entry{}, overridden: map[string]bool{}}
	r.registerBuiltins()
	r.sealed = true
	return r
}

// Register installs a function, replacing any previous definition of the
// same name — the extensibility hook for database implementors.
func (r *Registry) Register(name string, arity int, pure bool, fn Func) {
	key := strings.ToUpper(name)
	if r.sealed {
		r.overridden[key] = true
	}
	r.fns[key] = Entry{Name: name, Arity: arity, Pure: pure, Fn: fn}
}

// IsBuiltinComparison reports whether name is one of the six comparison
// operators and still bound to its builtin implementation — a pure,
// total wrapper over value.Compare that can never error or panic. The
// engine relies on this to decide whether a comparison may be compiled
// down to a direct value.Compare call.
func (r *Registry) IsBuiltinComparison(name string) bool {
	switch name {
	case "=", "<>", "<", ">", "<=", ">=":
		return !r.overridden[strings.ToUpper(name)]
	}
	return false
}

// Lookup finds a function by name.
func (r *Registry) Lookup(name string) (Entry, bool) {
	e, ok := r.fns[strings.ToUpper(name)]
	return e, ok
}

// IsPure reports whether name is a registered pure function (foldable).
func (r *Registry) IsPure(name string) bool {
	e, ok := r.Lookup(name)
	return ok && e.Pure
}

// Names returns all registered function names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.fns))
	for _, e := range r.fns {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

// Call invokes a registered function with arity checking.
func (r *Registry) Call(name string, args []value.Value) (value.Value, error) {
	e, ok := r.Lookup(name)
	if !ok {
		return value.Null, fmt.Errorf("adt: unknown function %q", name)
	}
	if e.Arity >= 0 && len(args) != e.Arity {
		return value.Null, fmt.Errorf("adt: %s expects %d arguments, got %d", e.Name, e.Arity, len(args))
	}
	return e.Fn(args)
}

func bool2(b bool, err error) (value.Value, error) {
	if err != nil {
		return value.Null, err
	}
	return value.Bool(b), nil
}

func numeric2(name string, args []value.Value) (float64, float64, bool, error) {
	a, aok := args[0].AsFloat()
	b, bok := args[1].AsFloat()
	if !aok || !bok {
		return 0, 0, false, fmt.Errorf("adt: %s requires numeric arguments, got %s and %s", name, args[0].K, args[1].K)
	}
	bothInt := args[0].K == value.KInt && args[1].K == value.KInt
	return a, b, bothInt, nil
}

func (r *Registry) registerBuiltins() {
	// --- Figure 1: COLLECTION-level functions ---
	r.Register("ISEMPTY", 1, true, func(a []value.Value) (value.Value, error) {
		if !a[0].K.IsCollection() {
			return value.Null, fmt.Errorf("adt: ISEMPTY requires a collection, got %s", a[0].K)
		}
		return value.Bool(a[0].Len() == 0), nil
	})
	r.Register("EQUAL", 2, true, func(a []value.Value) (value.Value, error) {
		return value.Bool(value.Equal(a[0], a[1])), nil
	})
	r.Register("INSERT", 2, true, func(a []value.Value) (value.Value, error) { return value.Insert(a[0], a[1]) })
	r.Register("REMOVE", 2, true, func(a []value.Value) (value.Value, error) { return value.Remove(a[0], a[1]) })
	r.Register("COUNT", 1, true, func(a []value.Value) (value.Value, error) {
		if !a[0].K.IsCollection() {
			return value.Null, fmt.Errorf("adt: COUNT requires a collection, got %s", a[0].K)
		}
		return value.Int(int64(a[0].Len())), nil
	})
	for _, cv := range []struct {
		name string
		kind value.Kind
	}{{"TOSET", value.KSet}, {"TOBAG", value.KBag}, {"TOLIST", value.KList}, {"TOARRAY", value.KArray}} {
		kind := cv.kind
		r.Register(cv.name, 1, true, func(a []value.Value) (value.Value, error) { return value.Convert(a[0], kind) })
	}

	// --- Figure 1: set/bag functions ---
	r.Register("MEMBER", 2, true, func(a []value.Value) (value.Value, error) { return bool2(value.Member(a[0], a[1])) })
	r.Register("UNION", 2, true, func(a []value.Value) (value.Value, error) { return value.Union(a[0], a[1]) })
	r.Register("INTERSECTION", 2, true, func(a []value.Value) (value.Value, error) { return value.Intersection(a[0], a[1]) })
	r.Register("DIFFERENCE", 2, true, func(a []value.Value) (value.Value, error) { return value.Difference(a[0], a[1]) })
	r.Register("INCLUDE", 2, true, func(a []value.Value) (value.Value, error) { return bool2(value.Include(a[0], a[1])) })
	r.Register("CHOICE", 1, true, func(a []value.Value) (value.Value, error) { return value.Choice(a[0]) })

	// MAKESET / MAKEBAG / MAKELIST build a collection from an enumeration
	// of elements (paper Section 2.1: "MakeSet creates a new set from a
	// given enumeration of elements").
	r.Register("MAKESET", -1, true, func(a []value.Value) (value.Value, error) { return value.NewSet(a...), nil })
	r.Register("MAKEBAG", -1, true, func(a []value.Value) (value.Value, error) { return value.NewBag(a...), nil })
	r.Register("MAKELIST", -1, true, func(a []value.Value) (value.Value, error) { return value.NewList(a...), nil })
	r.Register("MAKEARRAY", -1, true, func(a []value.Value) (value.Value, error) { return value.NewArray(a...), nil })

	// --- Figure 1: list/array functions ---
	r.Register("APPEND", 2, true, func(a []value.Value) (value.Value, error) { return value.Append(a[0], a[1]) })
	r.Register("FIRST", 1, true, func(a []value.Value) (value.Value, error) {
		if (a[0].K != value.KList && a[0].K != value.KArray) || a[0].Len() == 0 {
			return value.Null, fmt.Errorf("adt: FIRST requires a non-empty list or array")
		}
		return a[0].Elems[0], nil
	})
	r.Register("LAST", 1, true, func(a []value.Value) (value.Value, error) {
		if (a[0].K != value.KList && a[0].K != value.KArray) || a[0].Len() == 0 {
			return value.Null, fmt.Errorf("adt: LAST requires a non-empty list or array")
		}
		return a[0].Elems[a[0].Len()-1], nil
	})
	r.Register("NTH", 2, true, func(a []value.Value) (value.Value, error) {
		if a[0].K != value.KList && a[0].K != value.KArray {
			return value.Null, fmt.Errorf("adt: NTH requires a list or array")
		}
		if a[1].K != value.KInt {
			return value.Null, fmt.Errorf("adt: NTH index must be an int")
		}
		i := int(a[1].I)
		if i < 1 || i > a[0].Len() {
			return value.Null, fmt.Errorf("adt: NTH index %d out of range 1..%d", i, a[0].Len())
		}
		return a[0].Elems[i-1], nil
	})

	// --- quantifiers (Figure 4: ALL(Salary(Actors) > 10000), EXIST) ---
	// The translator rewrites the quantified comparison into
	// ALL(<set of booleans>) / EXIST(<set of booleans>); at the value
	// level they are conjunction/disjunction over a collection.
	r.Register("ALL", 1, true, func(a []value.Value) (value.Value, error) { return quantify(a[0], true) })
	r.Register("EXIST", 1, true, func(a []value.Value) (value.Value, error) { return quantify(a[0], false) })

	// --- scalar comparison operators (as functions, per LERA §3.3) ---
	cmp := func(name string, ok func(c int) bool) {
		r.Register(name, 2, true, func(a []value.Value) (value.Value, error) {
			return value.Bool(ok(value.Compare(a[0], a[1]))), nil
		})
	}
	cmp("=", func(c int) bool { return c == 0 })
	cmp("<>", func(c int) bool { return c != 0 })
	cmp("<", func(c int) bool { return c < 0 })
	cmp(">", func(c int) bool { return c > 0 })
	cmp("<=", func(c int) bool { return c <= 0 })
	cmp(">=", func(c int) bool { return c >= 0 })

	// --- boolean connectives ---
	r.Register("AND", -1, true, func(a []value.Value) (value.Value, error) {
		for _, v := range a {
			if v.K != value.KBool {
				return value.Null, fmt.Errorf("adt: AND requires booleans, got %s", v.K)
			}
			if !v.B {
				return value.False, nil
			}
		}
		return value.True, nil
	})
	r.Register("OR", -1, true, func(a []value.Value) (value.Value, error) {
		for _, v := range a {
			if v.K != value.KBool {
				return value.Null, fmt.Errorf("adt: OR requires booleans, got %s", v.K)
			}
			if v.B {
				return value.True, nil
			}
		}
		return value.False, nil
	})
	r.Register("NOT", 1, true, func(a []value.Value) (value.Value, error) {
		if a[0].K != value.KBool {
			return value.Null, fmt.Errorf("adt: NOT requires a boolean, got %s", a[0].K)
		}
		return value.Bool(!a[0].B), nil
	})

	// --- arithmetic ---
	arith := func(name string, f func(a, b float64) float64, intF func(a, b int64) int64) {
		r.Register(name, 2, true, func(a []value.Value) (value.Value, error) {
			x, y, bothInt, err := numeric2(name, a)
			if err != nil {
				return value.Null, err
			}
			if bothInt && intF != nil {
				return value.Int(intF(a[0].I, a[1].I)), nil
			}
			return value.Real(f(x, y)), nil
		})
	}
	arith("+", func(a, b float64) float64 { return a + b }, func(a, b int64) int64 { return a + b })
	arith("-", func(a, b float64) float64 { return a - b }, func(a, b int64) int64 { return a - b })
	arith("*", func(a, b float64) float64 { return a * b }, func(a, b int64) int64 { return a * b })
	r.Register("/", 2, true, func(a []value.Value) (value.Value, error) {
		x, y, _, err := numeric2("/", a)
		if err != nil {
			return value.Null, err
		}
		if y == 0 {
			return value.Null, fmt.Errorf("adt: division by zero")
		}
		return value.Real(x / y), nil
	})
	r.Register("NEG", 1, true, func(a []value.Value) (value.Value, error) {
		switch a[0].K {
		case value.KInt:
			return value.Int(-a[0].I), nil
		case value.KReal:
			return value.Real(-a[0].F), nil
		}
		return value.Null, fmt.Errorf("adt: NEG requires a numeric argument, got %s", a[0].K)
	})

	// --- string / misc ---
	r.Register("CONCAT", 2, true, func(a []value.Value) (value.Value, error) {
		if a[0].K != value.KString || a[1].K != value.KString {
			return value.Null, fmt.Errorf("adt: CONCAT requires strings")
		}
		return value.String(a[0].S + a[1].S), nil
	})
	r.Register("LENGTH", 1, true, func(a []value.Value) (value.Value, error) {
		if a[0].K != value.KString {
			return value.Null, fmt.Errorf("adt: LENGTH requires a string")
		}
		return value.Int(int64(len(a[0].S))), nil
	})
}

func quantify(coll value.Value, all bool) (value.Value, error) {
	if !coll.K.IsCollection() {
		return value.Null, fmt.Errorf("adt: quantifier requires a collection, got %s", coll.K)
	}
	for _, e := range coll.Elems {
		if e.K != value.KBool {
			return value.Null, fmt.Errorf("adt: quantifier over non-boolean element %s", e.K)
		}
		if all && !e.B {
			return value.False, nil
		}
		if !all && e.B {
			return value.True, nil
		}
	}
	return value.Bool(all), nil
}
