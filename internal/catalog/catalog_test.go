package catalog_test

import (
	"strings"
	"testing"

	"lera/internal/catalog"
	"lera/internal/lera"
	"lera/internal/rules"
	"lera/internal/term"
)

func sample(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	if _, err := c.DeclareRelation("FILM", []catalog.Column{
		{Name: "Numf", Type: c.Types.Numeric},
		{Name: "Title", Type: c.Types.Char},
	}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDeclareAndResolveRelation(t *testing.T) {
	c := sample(t)
	r, ok := c.Relation("film") // case-insensitive
	if !ok || r.Name != "FILM" {
		t.Fatalf("Relation = %v, %v", r, ok)
	}
	j, ty, ok := r.Column("title")
	if !ok || j != 2 || ty != c.Types.Char {
		t.Errorf("Column = %d %v %v", j, ty, ok)
	}
	if _, _, ok := r.Column("nope"); ok {
		t.Error("unknown column must not resolve")
	}
	if _, ok := c.Relation("NOPE"); ok {
		t.Error("unknown relation must not resolve")
	}
	// Duplicates fail.
	if _, err := c.DeclareRelation("FILM", nil); err == nil {
		t.Error("duplicate relation must fail")
	}
}

func TestDeclareView(t *testing.T) {
	c := sample(t)
	v := &catalog.View{
		Name:    "Titles",
		Columns: []catalog.Column{{Name: "Title", Type: c.Types.Char}},
		Def: lera.Search([]*term.Term{lera.Rel("FILM")}, lera.TrueQual(),
			[]*term.Term{lera.Attr(1, 2)}),
	}
	if err := c.DeclareView(v); err != nil {
		t.Fatal(err)
	}
	got, ok := c.View("titles")
	if !ok || got != v {
		t.Fatalf("View = %v, %v", got, ok)
	}
	if err := c.DeclareView(v); err == nil {
		t.Error("duplicate view must fail")
	}
	// Name collisions across namespaces fail both ways.
	if err := c.DeclareView(&catalog.View{Name: "FILM"}); err == nil {
		t.Error("view named like a relation must fail")
	}
	if _, err := c.DeclareRelation("Titles", nil); err == nil {
		t.Error("relation named like a view must fail")
	}
}

func TestNames(t *testing.T) {
	c := sample(t)
	if _, err := c.DeclareRelation("ACTOR", nil); err != nil {
		t.Fatal(err)
	}
	if err := c.DeclareView(&catalog.View{Name: "V1"}); err != nil {
		t.Fatal(err)
	}
	rn := c.RelationNames()
	if strings.Join(rn, ",") != "ACTOR,FILM" {
		t.Errorf("RelationNames = %v (must be sorted)", rn)
	}
	vn := c.ViewNames()
	if strings.Join(vn, ",") != "V1" {
		t.Errorf("ViewNames = %v", vn)
	}
}

func TestConstraints(t *testing.T) {
	c := catalog.New()
	rs := rules.MustParse("rule ic: F(x) / ISA(x, Point) --> F(x) AND ABS(x) > 0;")
	c.AddConstraint(rs.Rules["ic"])
	if got := c.Constraints(); len(got) != 1 || got[0].Name != "ic" {
		t.Errorf("Constraints = %v", got)
	}
}

func TestNewHasRegistries(t *testing.T) {
	c := catalog.New()
	if c.Types == nil || c.ADTs == nil {
		t.Fatal("registries must be initialised")
	}
	if _, ok := c.Types.Lookup("INT"); !ok {
		t.Error("built-in types missing")
	}
	if _, ok := c.ADTs.Lookup("MEMBER"); !ok {
		t.Error("built-in ADT functions missing")
	}
	// EstRows starts at zero and is writable (the engine maintains it).
	r, _ := c.DeclareRelation("T", []catalog.Column{{Name: "a", Type: c.Types.Int}})
	if r.EstRows != 0 {
		t.Error("EstRows must start at 0")
	}
	r.EstRows = 7
	got, _ := c.Relation("T")
	if got.EstRows != 7 {
		t.Error("EstRows must be shared state")
	}
}
