// Package catalog implements the database schema catalog: base relations,
// views (including recursive deductive views, stored as translated LERA
// terms), declared integrity constraints (compiled to rewrite rules, per
// Section 6.1) and the type and ADT-function registries. The catalog is
// the "context" of a rule: "a rule has a context, which is the query and
// the database on which it is applied" (Section 4.1).
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"lera/internal/adt"
	"lera/internal/rules"
	"lera/internal/term"
	"lera/internal/types"
)

// Column is a named, typed relation attribute.
type Column struct {
	Name string
	Type *types.Type
}

// Relation describes a base relation (TABLE ...).
type Relation struct {
	Name    string
	Columns []Column
	// EstRows is the stored cardinality estimate, maintained by the
	// engine on load/insert; the planning-hint rules (§7 extension) sort
	// join operands by it.
	EstRows int
}

// Column returns the 1-based index and type of a named column.
func (r *Relation) Column(name string) (int, *types.Type, bool) {
	for i, c := range r.Columns {
		if strings.EqualFold(c.Name, name) {
			return i + 1, c.Type, true
		}
	}
	return 0, nil, false
}

// View describes a (possibly recursive) view. Def is the translated LERA
// term: for recursive views, a FIX term (Section 3.2); Columns carry the
// inferred output schema.
type View struct {
	Name      string
	Columns   []Column
	Def       *term.Term
	Recursive bool
}

// Catalog is the schema catalog.
type Catalog struct {
	Types *types.Registry
	ADTs  *adt.Registry

	rels  map[string]*Relation
	views map[string]*View

	// constraints are the integrity-constraint rules declared by the
	// database administrator, in declaration order.
	constraints []*rules.Rule

	// schemaVersion counts schema mutations (relations, views,
	// constraints); dataVersion counts statistics mutations (EstRows).
	// Both feed plan-cache invalidation keys (docs/PLANCACHE.md).
	schemaVersion atomic.Uint64
	dataVersion   atomic.Uint64
}

// SchemaVersion returns a counter that changes whenever a relation,
// view or integrity constraint is declared. Cached rewrites embed it so
// any schema change invalidates them.
func (c *Catalog) SchemaVersion() uint64 { return c.schemaVersion.Load() }

// DataVersion returns a counter that changes whenever a relation's
// estimated cardinality changes (engine loads/inserts). Only rewrites
// that consulted cardinalities (planning hints) key on it.
func (c *Catalog) DataVersion() uint64 { return c.dataVersion.Load() }

// BumpDataVersion records a statistics change; the engine calls it when
// it updates Relation.EstRows.
func (c *Catalog) BumpDataVersion() { c.dataVersion.Add(1) }

// New creates an empty catalog with fresh type and ADT registries.
func New() *Catalog {
	return &Catalog{
		Types: types.NewRegistry(),
		ADTs:  adt.NewRegistry(),
		rels:  map[string]*Relation{},
		views: map[string]*View{},
	}
}

// DeclareRelation registers a base relation.
func (c *Catalog) DeclareRelation(name string, cols []Column) (*Relation, error) {
	key := strings.ToUpper(name)
	if _, dup := c.rels[key]; dup {
		return nil, fmt.Errorf("catalog: relation %q already declared", name)
	}
	if _, dup := c.views[key]; dup {
		return nil, fmt.Errorf("catalog: %q already declared as a view", name)
	}
	r := &Relation{Name: name, Columns: append([]Column(nil), cols...)}
	c.rels[key] = r
	c.schemaVersion.Add(1)
	return r, nil
}

// DeclareView registers a view.
func (c *Catalog) DeclareView(v *View) error {
	key := strings.ToUpper(v.Name)
	if _, dup := c.views[key]; dup {
		return fmt.Errorf("catalog: view %q already declared", v.Name)
	}
	if _, dup := c.rels[key]; dup {
		return fmt.Errorf("catalog: %q already declared as a relation", v.Name)
	}
	c.views[key] = v
	c.schemaVersion.Add(1)
	return nil
}

// Relation resolves a base relation by name.
func (c *Catalog) Relation(name string) (*Relation, bool) {
	r, ok := c.rels[strings.ToUpper(name)]
	return r, ok
}

// View resolves a view by name.
func (c *Catalog) View(name string) (*View, bool) {
	v, ok := c.views[strings.ToUpper(name)]
	return v, ok
}

// RelationNames returns all base relation names, sorted.
func (c *Catalog) RelationNames() []string {
	var out []string
	for _, r := range c.rels {
		out = append(out, r.Name)
	}
	sort.Strings(out)
	return out
}

// ViewNames returns all view names, sorted.
func (c *Catalog) ViewNames() []string {
	var out []string
	for _, v := range c.views {
		out = append(out, v.Name)
	}
	sort.Strings(out)
	return out
}

// AddConstraint registers an integrity constraint expressed as a rewrite
// rule (the paper's Section 6.1: "The language we propose for defining
// constraints is the rules language for defining optimization rules").
func (c *Catalog) AddConstraint(r *rules.Rule) {
	c.constraints = append(c.constraints, r)
	c.schemaVersion.Add(1)
}

// Constraints returns the declared integrity-constraint rules.
func (c *Catalog) Constraints() []*rules.Rule { return c.constraints }
