// Package esql implements the front end for ESQL, the extended SQL of the
// paper's Section 2: type declarations over generic collection ADTs,
// object types with inheritance, table declarations, (recursive) view
// definitions, SELECT queries with ADT function calls and the ALL/EXIST
// set quantifiers, and INSERT statements with collection literals.
package esql

import (
	"strings"

	"lera/internal/value"
)

// Stmt is a parsed ESQL statement.
type Stmt interface{ stmt() }

// TypeRef references a type by name, as an inline collection constructor
// (SET OF CHAR, LIST OF Point, ...) or as an inline tuple
// (TUPLE (Pros : INT, Cons : INT), as in Figure 2's Pairs).
type TypeRef struct {
	Name     string      // named reference, or "" for inline constructors
	CollKind value.Kind  // KSet/KBag/KList/KArray for inline collections
	Elem     *TypeRef    // element type for inline collections
	Fields   []FieldDecl // inline tuple fields
}

// String renders the reference in ESQL syntax.
func (r *TypeRef) String() string {
	if r.Name != "" {
		return r.Name
	}
	if len(r.Fields) > 0 {
		parts := make([]string, len(r.Fields))
		for i, f := range r.Fields {
			parts[i] = f.Name + " : " + f.Type.String()
		}
		return "TUPLE (" + strings.Join(parts, ", ") + ")"
	}
	return strings.ToUpper(r.CollKind.String()) + " OF " + r.Elem.String()
}

// FieldDecl is a "name : type" component.
type FieldDecl struct {
	Name string
	Type *TypeRef
}

// TypeDeclKind discriminates TYPE declarations.
type TypeDeclKind int

const (
	// TypeEnum is TYPE name ENUMERATION OF (...).
	TypeEnum TypeDeclKind = iota
	// TypeTuple is TYPE name [OBJECT] TUPLE (...), optionally SUBTYPE OF.
	TypeTuple
	// TypeColl is TYPE name SET/BAG/LIST/ARRAY OF elem.
	TypeColl
)

// TypeDecl is a TYPE declaration (Figure 2).
type TypeDecl struct {
	Name     string
	Kind     TypeDeclKind
	Object   bool
	Super    string // SUBTYPE OF parent, or ""
	EnumVals []string
	Fields   []FieldDecl
	CollKind value.Kind
	Elem     *TypeRef
	// Methods records FUNCTION declarations attached to the type; only
	// the names are kept (implementations are registered through the ADT
	// registry, the C++ of the paper replaced by Go).
	Methods []string
}

func (*TypeDecl) stmt() {}

// TableDecl is a TABLE declaration.
type TableDecl struct {
	Name string
	Cols []FieldDecl
}

func (*TableDecl) stmt() {}

// ViewDecl is CREATE VIEW name (cols) AS select [UNION select ...]. A view
// is recursive when one of its selects references the view itself
// (Figure 5).
type ViewDecl struct {
	Name    string
	Cols    []string
	Selects []*Select
}

func (*ViewDecl) stmt() {}

// Recursive reports whether the view references itself in a FROM clause.
func (v *ViewDecl) Recursive() bool {
	for _, s := range v.Selects {
		for _, tr := range s.From {
			if strings.EqualFold(tr.Table, v.Name) {
				return true
			}
		}
	}
	return false
}

// Select is a SELECT block.
type Select struct {
	Proj    []Expr
	From    []TableRef
	Where   Expr // nil when absent
	GroupBy []Expr
}

func (*Select) stmt() {}

// TableRef is a FROM item: table or view name with an optional alias.
type TableRef struct {
	Table string
	Alias string // "" when absent
}

// Explain is EXPLAIN [ANALYZE] SELECT ...: show the translated and
// rewritten LERA plan for the wrapped query; with ANALYZE, also execute
// it and report per-operator statistics and phase timings.
type Explain struct {
	Analyze bool
	Sel     *Select
}

func (*Explain) stmt() {}

// InsertStmt is INSERT INTO table VALUES (...), (...), ....
type InsertStmt struct {
	Table string
	Rows  [][]Expr
}

func (*InsertStmt) stmt() {}

// PrepareStmt is PREPARE name AS SELECT ... with $1-style parameters:
// the statement is parsed and registered once; EXECUTE binds literals
// into the placeholders and runs it (docs/PLANCACHE.md).
type PrepareStmt struct {
	Name string
	Sel  *Select
}

func (*PrepareStmt) stmt() {}

// ExecuteStmt is EXECUTE name(arg, ...): run a prepared statement with
// literal arguments bound to its $n placeholders in order.
type ExecuteStmt struct {
	Name string
	Args []Expr
}

func (*ExecuteStmt) stmt() {}

// --- expressions ---

// Expr is a parsed ESQL expression.
type Expr interface{ expr() }

// Lit is a literal constant.
type Lit struct{ Val value.Value }

func (*Lit) expr() {}

// Param is a $n placeholder (1-based) inside a PREPARE body. It is a
// parse-time construct only: EXECUTE replaces every Param with the
// bound literal (BindParams) before translation, and the translator
// rejects any Param that reaches it unbound.
type Param struct{ Index int }

func (*Param) expr() {}

// Ref is a column reference: bare name or qualified R.attr.
type Ref struct {
	Qualifier string // table name or alias, "" when bare
	Name      string
}

func (*Ref) expr() {}

// App is a function application F(args...): an ADT method, an attribute
// used as a function (Section 2.1), or a built-in like MEMBER or MakeSet.
type App struct {
	Fn   string
	Args []Expr
}

func (*App) expr() {}

// Bin is a binary operation: comparison, arithmetic, AND, OR.
type Bin struct {
	Op   string
	L, R Expr
}

func (*Bin) expr() {}

// Not is logical negation.
type Not struct{ Arg Expr }

func (*Not) expr() {}

// Quant is the ALL/EXIST set quantifier of Figure 4: ALL(expr) where expr
// evaluates to a collection of booleans.
type Quant struct {
	All bool
	Arg Expr
}

func (*Quant) expr() {}

// CollLit is a collection literal SET(...), LIST(...), BAG(...), ARRAY(...)
// used in INSERT statements.
type CollLit struct {
	Kind  value.Kind
	Elems []Expr
}

func (*CollLit) expr() {}

// TupleLit is TUPLE(name: expr, ...).
type TupleLit struct {
	Names []string
	Elems []Expr
}

func (*TupleLit) expr() {}
