package esql

import (
	"math/rand"
	"strings"
	"testing"

	"lera/internal/value"
)

// Figure2DDL is the paper's Figure 2 schema in ESQL (hyphens in relation
// names replaced by underscores; the FUNCTION declaration kept).

func TestFigure2(t *testing.T) {
	stmts, err := Parse(Figure2DDL)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 10 {
		t.Fatalf("statements = %d", len(stmts))
	}
	cat := stmts[0].(*TypeDecl)
	if cat.Kind != TypeEnum || len(cat.EnumVals) != 4 || cat.EnumVals[2] != "Science Fiction" {
		t.Errorf("Category = %+v", cat)
	}
	point := stmts[1].(*TypeDecl)
	if point.Kind != TypeTuple || point.Object || len(point.Fields) != 2 {
		t.Errorf("Point = %+v", point)
	}
	person := stmts[2].(*TypeDecl)
	if !person.Object || person.Fields[1].Type.CollKind != value.KSet {
		t.Errorf("Person = %+v", person)
	}
	if person.Fields[2].Type.String() != "LIST OF Point" {
		t.Errorf("Caricature type = %s", person.Fields[2].Type)
	}
	actor := stmts[3].(*TypeDecl)
	if actor.Super != "Person" || !actor.Object || len(actor.Methods) != 1 || actor.Methods[0] != "IncreaseSalary" {
		t.Errorf("Actor = %+v", actor)
	}
	text := stmts[4].(*TypeDecl)
	if text.Kind != TypeColl || text.CollKind != value.KList || text.Elem.Name != "CHAR" {
		t.Errorf("Text = %+v", text)
	}
	pairs := stmts[6].(*TypeDecl)
	if pairs.CollKind != value.KList || pairs.Elem != nil && pairs.Elem.Name != "" && false {
		t.Errorf("Pairs = %+v", pairs)
	}
	film := stmts[7].(*TableDecl)
	if film.Name != "FILM" || len(film.Cols) != 3 || film.Cols[2].Type.Name != "SetCategory" {
		t.Errorf("FILM = %+v", film)
	}
	dom := stmts[9].(*TableDecl)
	if len(dom.Cols) != 4 {
		t.Errorf("DOMINATE = %+v", dom)
	}
}

// Figure3Query is the paper's Figure 3 example query.

func TestFigure3(t *testing.T) {
	stmts, err := Parse(Figure3Query)
	if err != nil {
		t.Fatal(err)
	}
	s := stmts[0].(*Select)
	if len(s.Proj) != 3 || len(s.From) != 2 {
		t.Fatalf("select = %+v", s)
	}
	if app, ok := s.Proj[2].(*App); !ok || app.Fn != "Salary" {
		t.Errorf("proj[2] = %#v", s.Proj[2])
	}
	// WHERE is a conjunction tree: AND(AND(=, =), MEMBER).
	and, ok := s.Where.(*Bin)
	if !ok || and.Op != "AND" {
		t.Fatalf("where = %#v", s.Where)
	}
	member, ok := and.R.(*App)
	if !ok || member.Fn != "MEMBER" {
		t.Errorf("member = %#v", and.R)
	}
	inner := and.L.(*Bin)
	eq := inner.L.(*Bin)
	if eq.Op != "=" {
		t.Errorf("eq = %#v", eq)
	}
	lref := eq.L.(*Ref)
	if lref.Qualifier != "FILM" || lref.Name != "Numf" {
		t.Errorf("lref = %#v", lref)
	}
}

// Figure4DDL is the paper's Figure 4 nested view and query.

func TestFigure4(t *testing.T) {
	stmts, err := Parse(Figure4View)
	if err != nil {
		t.Fatal(err)
	}
	v := stmts[0].(*ViewDecl)
	if v.Name != "FilmActors" || len(v.Cols) != 3 || v.Recursive() {
		t.Errorf("view = %+v", v)
	}
	s := v.Selects[0]
	if len(s.GroupBy) != 2 {
		t.Errorf("group by = %v", s.GroupBy)
	}
	if app, ok := s.Proj[2].(*App); !ok || app.Fn != "MakeSet" {
		t.Errorf("MakeSet proj = %#v", s.Proj[2])
	}
	qs, err := Parse(Figure4Query)
	if err != nil {
		t.Fatal(err)
	}
	q := qs[0].(*Select)
	and := q.Where.(*Bin)
	quant, ok := and.R.(*Quant)
	if !ok || !quant.All {
		t.Fatalf("quant = %#v", and.R)
	}
	cmp := quant.Arg.(*Bin)
	if cmp.Op != ">" {
		t.Errorf("quant arg = %#v", quant.Arg)
	}
	if app, ok := cmp.L.(*App); !ok || app.Fn != "Salary" {
		t.Errorf("salary app = %#v", cmp.L)
	}
}

// Figure5View is the paper's recursive BETTER_THAN view and its query.

func TestFigure5(t *testing.T) {
	stmts, err := Parse(Figure5View)
	if err != nil {
		t.Fatal(err)
	}
	v := stmts[0].(*ViewDecl)
	if !v.Recursive() {
		t.Fatal("BETTER_THAN must be recursive")
	}
	if len(v.Selects) != 2 {
		t.Fatalf("selects = %d", len(v.Selects))
	}
	rec := v.Selects[1]
	if rec.From[0].Alias != "B1" || rec.From[1].Alias != "B2" {
		t.Errorf("aliases = %+v", rec.From)
	}
	pr := rec.Proj[0].(*Ref)
	if pr.Qualifier != "B1" || pr.Name != "Refactor1" {
		t.Errorf("proj ref = %+v", pr)
	}
	if _, err := Parse(Figure5Query); err != nil {
		t.Fatal(err)
	}
}

func TestParseInsert(t *testing.T) {
	stmts, err := Parse(`
INSERT INTO FILM VALUES
  (1, 'Lawrence of Arabia', SET('Adventure')),
  (2, 'Casablanca', SET('Adventure', 'Comedy'));
`)
	if err != nil {
		t.Fatal(err)
	}
	ins := stmts[0].(*InsertStmt)
	if ins.Table != "FILM" || len(ins.Rows) != 2 {
		t.Fatalf("insert = %+v", ins)
	}
	cl, ok := ins.Rows[0][2].(*CollLit)
	if !ok || cl.Kind != value.KSet || len(cl.Elems) != 1 {
		t.Errorf("collection literal = %#v", ins.Rows[0][2])
	}
}

func TestParseTupleLiteralAndArithmetic(t *testing.T) {
	stmts, err := Parse(`INSERT INTO T VALUES (TUPLE(Pros: 2 + 3 * 4, Cons: -1), LIST());`)
	if err != nil {
		t.Fatal(err)
	}
	ins := stmts[0].(*InsertStmt)
	tl := ins.Rows[0][0].(*TupleLit)
	if len(tl.Names) != 2 || tl.Names[0] != "Pros" {
		t.Fatalf("tuple lit = %+v", tl)
	}
	sum := tl.Elems[0].(*Bin)
	if sum.Op != "+" {
		t.Errorf("precedence: %#v", sum)
	}
	if prod, ok := sum.R.(*Bin); !ok || prod.Op != "*" {
		t.Errorf("precedence: %#v", sum.R)
	}
	if lit, ok := tl.Elems[1].(*Lit); !ok || lit.Val.I != -1 {
		t.Errorf("negative literal: %#v", tl.Elems[1])
	}
}

func TestParseQueryHelper(t *testing.T) {
	q, err := ParseQuery("SELECT Title FROM FILM WHERE Numf = 1")
	if err != nil || len(q.Proj) != 1 {
		t.Errorf("ParseQuery: %v %+v", err, q)
	}
	if _, err := ParseQuery("TABLE T (a : INT)"); err == nil {
		t.Error("non-select must fail")
	}
	if _, err := ParseQuery("SELECT a FROM t; SELECT b FROM t"); err == nil {
		t.Error("multiple statements must fail")
	}
}

func TestParseNotAndQuantifiers(t *testing.T) {
	q, err := ParseQuery("SELECT a FROM t WHERE NOT ISEMPTY(s) AND EXIST(x(s) = 1)")
	if err != nil {
		t.Fatal(err)
	}
	and := q.Where.(*Bin)
	if _, ok := and.L.(*Not); !ok {
		t.Errorf("NOT: %#v", and.L)
	}
	qt, ok := and.R.(*Quant)
	if !ok || qt.All {
		t.Errorf("EXIST: %#v", and.R)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t GROUP BY",
		"TABLE",
		"TABLE t",
		"TABLE t (a)",
		"TABLE t (a :",
		"TYPE",
		"TYPE t",
		"TYPE t ENUMERATION OF (1)",
		"TYPE t SUBTYPE Person OBJECT TUPLE (a : INT)",
		"CREATE t",
		"CREATE VIEW v",
		"CREATE VIEW v AS",
		"INSERT t",
		"INSERT INTO t",
		"INSERT INTO t VALUES",
		"INSERT INTO t VALUES (1",
		"SELECT a FROM t WHERE x = 'unterminated",
		"SELECT a FROM t; garbage",
		"SELECT ? FROM t",
		"SELECT a FROM t WHERE (a = 1",
		"TYPE T TUPLE (a : INT) FUNCTION",
		"TYPE T TUPLE (a : INT) FUNCTION f (unbalanced",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestCommentsAndCaseInsensitivity(t *testing.T) {
	stmts, err := Parse(`
-- a comment
select title from film where numf = 1; -- trailing
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 1 {
		t.Errorf("stmts = %d", len(stmts))
	}
}

func TestEscapedStringLiteral(t *testing.T) {
	q, err := ParseQuery("SELECT a FROM t WHERE s = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	cmp := q.Where.(*Bin)
	if lit := cmp.R.(*Lit); lit.Val.S != "it's" {
		t.Errorf("escaped = %q", lit.Val.S)
	}
}

// Arbitrary input must produce an error or statements — never a panic.
func TestParserRobustness(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	tokens := []string{
		"SELECT", "FROM", "WHERE", "GROUP", "BY", "UNION", "TABLE", "TYPE",
		"CREATE", "VIEW", "INSERT", "INTO", "VALUES", "AS", "OF", "TUPLE",
		"SET", "LIST", "ENUMERATION", "SUBTYPE", "OBJECT", "FUNCTION",
		"a", "T", "(", ")", ",", ";", ":", ".", "=", "<", "'s'", "1", "2.5",
		"AND", "OR", "NOT", "ALL", "EXIST", "MEMBER", "-",
	}
	for trial := 0; trial < 300; trial++ {
		var sb strings.Builder
		n := r.Intn(24)
		for i := 0; i < n; i++ {
			sb.WriteString(tokens[r.Intn(len(tokens))])
			sb.WriteString(" ")
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on %q: %v", sb.String(), p)
				}
			}()
			_, _ = Parse(sb.String())
		}()
	}
}

func TestParseExplain(t *testing.T) {
	stmts, err := Parse("EXPLAIN SELECT Title FROM FILM WHERE Numf = 1;")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := stmts[0].(*Explain)
	if !ok || ex.Analyze || ex.Sel == nil {
		t.Fatalf("EXPLAIN parse = %+v", stmts[0])
	}
	stmts, err = Parse("EXPLAIN ANALYZE SELECT Title FROM FILM;")
	if err != nil {
		t.Fatal(err)
	}
	ex = stmts[0].(*Explain)
	if !ex.Analyze || len(ex.Sel.From) != 1 {
		t.Fatalf("EXPLAIN ANALYZE parse = %+v", ex)
	}
	for _, bad := range []string{
		"EXPLAIN;",
		"EXPLAIN ANALYZE;",
		"EXPLAIN TABLE T (a : INT);",
		"EXPLAIN ANALYZE INSERT INTO T VALUES (1);",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}
