package esql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tString
	tPunct // ( ) , ; . :
	tOp    // = <> < > <= >= + - * /
	tParam // $1, $2, ... (text holds the digits)
)

type token struct {
	kind      tokKind
	text      string
	line, col int
}

func (t token) is(text string) bool {
	return (t.kind == tIdent && strings.EqualFold(t.text, text)) ||
		((t.kind == tPunct || t.kind == tOp) && t.text == text)
}

type lexer struct {
	src       []rune
	pos       int
	line, col int
}

func lex(src string) ([]token, error) {
	l := &lexer{src: []rune(src), line: 1, col: 1}
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tEOF {
			return toks, nil
		}
	}
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekAt(off int) rune {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		r := l.peek()
		if unicode.IsSpace(r) {
			l.advance()
			continue
		}
		if r == '-' && l.peekAt(1) == '-' {
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		break
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tEOF, line: line, col: col}, nil
	}
	r := l.peek()
	switch {
	case unicode.IsLetter(r) || r == '_':
		var sb strings.Builder
		for l.pos < len(l.src) {
			c := l.peek()
			if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
				sb.WriteRune(c)
				l.advance()
				continue
			}
			break
		}
		return token{kind: tIdent, text: sb.String(), line: line, col: col}, nil

	case unicode.IsDigit(r):
		var sb strings.Builder
		seenDot := false
		for l.pos < len(l.src) {
			c := l.peek()
			if unicode.IsDigit(c) {
				sb.WriteRune(c)
				l.advance()
				continue
			}
			if c == '.' && !seenDot && unicode.IsDigit(l.peekAt(1)) {
				seenDot = true
				sb.WriteRune(c)
				l.advance()
				continue
			}
			break
		}
		return token{kind: tNumber, text: sb.String(), line: line, col: col}, nil

	case r == '\'':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, fmt.Errorf("esql: %d:%d: unterminated string", line, col)
			}
			c := l.advance()
			if c == '\'' {
				if l.peek() == '\'' {
					sb.WriteRune('\'')
					l.advance()
					continue
				}
				break
			}
			sb.WriteRune(c)
		}
		return token{kind: tString, text: sb.String(), line: line, col: col}, nil

	case r == '$':
		if !unicode.IsDigit(l.peekAt(1)) {
			return token{}, fmt.Errorf("esql: %d:%d: expected parameter number after '$'", line, col)
		}
		l.advance()
		var sb strings.Builder
		for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
			sb.WriteRune(l.peek())
			l.advance()
		}
		return token{kind: tParam, text: sb.String(), line: line, col: col}, nil
	}
	two := string(r) + string(l.peekAt(1))
	switch two {
	case "<>", "<=", ">=":
		l.advance()
		l.advance()
		return token{kind: tOp, text: two, line: line, col: col}, nil
	}
	switch r {
	case '(', ')', ',', ';', '.', ':':
		l.advance()
		return token{kind: tPunct, text: string(r), line: line, col: col}, nil
	case '=', '<', '>', '+', '-', '*', '/':
		l.advance()
		return token{kind: tOp, text: string(r), line: line, col: col}, nil
	}
	return token{}, fmt.Errorf("esql: %d:%d: unexpected character %q", line, col, string(r))
}
