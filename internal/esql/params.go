package esql

import (
	"fmt"
	"sort"
)

// CountParams validates the $n placeholders of a PREPARE body and
// returns the parameter count. Placeholders must be exactly $1..$n with
// no gaps (repeats are allowed: one binding may be used several times).
func CountParams(sel *Select) (int, error) {
	seen := map[int]bool{}
	walkSelect(sel, func(e Expr) {
		if p, ok := e.(*Param); ok {
			seen[p.Index] = true
		}
	})
	if len(seen) == 0 {
		return 0, nil
	}
	idxs := make([]int, 0, len(seen))
	for i := range seen {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	max := idxs[len(idxs)-1]
	for want := 1; want <= max; want++ {
		if !seen[want] {
			return 0, fmt.Errorf("esql: prepared statement uses $%d but not $%d (parameters must be $1..$%d with no gaps)", max, want, max)
		}
	}
	return max, nil
}

// BindParams returns a deep copy of sel with every $n placeholder
// replaced by args[n-1]. The arguments must be literal expressions (the
// EXECUTE grammar only produces literals); the original AST is never
// mutated, so one prepared statement can serve concurrent EXECUTEs.
func BindParams(sel *Select, args []Expr) (*Select, error) {
	var err error
	bind := func(e Expr) Expr {
		p, ok := e.(*Param)
		if !ok {
			return e
		}
		if p.Index < 1 || p.Index > len(args) {
			if err == nil {
				err = fmt.Errorf("esql: statement uses $%d but EXECUTE passed %d argument(s)", p.Index, len(args))
			}
			return e
		}
		return args[p.Index-1]
	}
	out := copySelect(sel, bind)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// walkSelect visits every expression of a SELECT, including nested ones.
func walkSelect(sel *Select, fn func(Expr)) {
	var walk func(e Expr)
	walk = func(e Expr) {
		if e == nil {
			return
		}
		fn(e)
		switch x := e.(type) {
		case *App:
			for _, a := range x.Args {
				walk(a)
			}
		case *Bin:
			walk(x.L)
			walk(x.R)
		case *Not:
			walk(x.Arg)
		case *Quant:
			walk(x.Arg)
		case *CollLit:
			for _, a := range x.Elems {
				walk(a)
			}
		case *TupleLit:
			for _, a := range x.Elems {
				walk(a)
			}
		}
	}
	for _, e := range sel.Proj {
		walk(e)
	}
	walk(sel.Where)
	for _, e := range sel.GroupBy {
		walk(e)
	}
}

// copySelect deep-copies a SELECT, mapping every leaf expression
// through fn (applied bottom-up; fn sees each node after its children
// were copied).
func copySelect(sel *Select, fn func(Expr) Expr) *Select {
	var cp func(e Expr) Expr
	cp = func(e Expr) Expr {
		if e == nil {
			return nil
		}
		switch x := e.(type) {
		case *App:
			args := make([]Expr, len(x.Args))
			for i, a := range x.Args {
				args[i] = cp(a)
			}
			return fn(&App{Fn: x.Fn, Args: args})
		case *Bin:
			return fn(&Bin{Op: x.Op, L: cp(x.L), R: cp(x.R)})
		case *Not:
			return fn(&Not{Arg: cp(x.Arg)})
		case *Quant:
			return fn(&Quant{All: x.All, Arg: cp(x.Arg)})
		case *CollLit:
			elems := make([]Expr, len(x.Elems))
			for i, a := range x.Elems {
				elems[i] = cp(a)
			}
			return fn(&CollLit{Kind: x.Kind, Elems: elems})
		case *TupleLit:
			elems := make([]Expr, len(x.Elems))
			for i, a := range x.Elems {
				elems[i] = cp(a)
			}
			return fn(&TupleLit{Names: append([]string(nil), x.Names...), Elems: elems})
		default:
			// Lit, Ref, Param are immutable leaves; fn may substitute.
			return fn(e)
		}
	}
	out := &Select{
		From:    append([]TableRef(nil), sel.From...),
		Proj:    make([]Expr, len(sel.Proj)),
		GroupBy: make([]Expr, len(sel.GroupBy)),
	}
	for i, e := range sel.Proj {
		out.Proj[i] = cp(e)
	}
	out.Where = cp(sel.Where)
	for i, e := range sel.GroupBy {
		out.GroupBy[i] = cp(e)
	}
	if len(out.GroupBy) == 0 {
		out.GroupBy = nil
	}
	return out
}
