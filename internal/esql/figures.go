package esql

// The paper's running examples (Figures 2-5) in ESQL source form, shared
// by tests, examples and the benchmark harness. Hyphenated relation names
// are spelled with underscores (APPEARS-IN -> APPEARS_IN) and the OCR
// artifact "10 0OO" is written 10000.

// Figure2DDL is the Figure 2 schema: type definitions and relations.
const Figure2DDL = `
TYPE Category ENUMERATION OF ('Comedy', 'Adventure', 'Science Fiction', 'Western');
TYPE Point TUPLE (ABS : REAL, ORD : REAL);
TYPE Person OBJECT TUPLE (
    Name : CHAR,
    Firstname : SET OF CHAR,
    Caricature : LIST OF Point);
TYPE Actor SUBTYPE OF Person OBJECT TUPLE (Salary : NUMERIC)
    FUNCTION IncreaseSalary (This : Actor, Val : NUMERIC);
TYPE Text LIST OF CHAR;
TYPE SetCategory SET OF Category;
TYPE Pairs LIST OF TUPLE (Pros : INT, Cons : INT);

TABLE FILM (Numf : NUMERIC, Title : CHAR, Categories : SetCategory);
TABLE APPEARS_IN (Numf : NUMERIC, Refactor : Actor);
TABLE DOMINATE (Numf : NUMERIC, Refactor1 : Actor, Refactor2 : Actor, Score : Pairs);
`

// Figure3Query finds the titles, categories and salary of films of
// category 'Adventure' in which Quinn appears.
const Figure3Query = `
SELECT Title, Categories, Salary(Refactor)
FROM FILM, APPEARS_IN
WHERE FILM.Numf = APPEARS_IN.Numf
  AND Name(Refactor) = 'Quinn'
  AND MEMBER('Adventure', Categories);
`

// Figure4View is the nested view built with GROUP BY and MakeSet.
const Figure4View = `
CREATE VIEW FilmActors (Title, Categories, Actors) AS
SELECT Title, Categories, MakeSet(Refactor)
FROM FILM, APPEARS_IN
WHERE FILM.Numf = APPEARS_IN.Numf
GROUP BY Title, Categories;
`

// Figure4Query uses the ALL set quantifier over the nested Actors column.
const Figure4Query = `
SELECT Title
FROM FilmActors
WHERE MEMBER('Adventure', Categories) AND ALL(Salary(Actors) > 10000);
`

// Figure5View is the recursive BETTER_THAN view.
const Figure5View = `
CREATE VIEW BETTER_THAN (Refactor1, Refactor2) AS (
  SELECT Refactor1, Refactor2
  FROM DOMINATE
  UNION
  SELECT B1.Refactor1, B2.Refactor2
  FROM BETTER_THAN B1, BETTER_THAN B2
  WHERE B1.Refactor2 = B2.Refactor1 );
`

// Figure5Query asks who dominates Quinn.
const Figure5Query = `
SELECT Name(Refactor1)
FROM BETTER_THAN
WHERE Name(Refactor2) = 'Quinn';
`
