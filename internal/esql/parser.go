package esql

import (
	"fmt"
	"strconv"
	"strings"

	"lera/internal/value"
)

// Parse parses a sequence of ESQL statements.
func Parse(src string) ([]Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Stmt
	for !p.atEOF() {
		if p.peek().is(";") {
			p.advance()
			continue
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.peek().is(";") && !p.atEOF() {
			t := p.peek()
			return nil, fmt.Errorf("esql: %d:%d: expected ';', got %q", t.line, t.col, t.text)
		}
	}
	return out, nil
}

// ParseQuery parses a single SELECT statement.
func ParseQuery(src string) (*Select, error) {
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("esql: expected one statement, got %d", len(stmts))
	}
	s, ok := stmts[0].(*Select)
	if !ok {
		return nil, fmt.Errorf("esql: expected a SELECT statement")
	}
	return s, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peekAt(off int) token {
	if p.pos+off >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+off]
}
func (p *parser) atEOF() bool { return p.peek().kind == tEOF }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(text string) bool {
	if p.peek().is(text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	t := p.peek()
	if t.is(text) {
		p.advance()
		return nil
	}
	return fmt.Errorf("esql: %d:%d: expected %q, got %q", t.line, t.col, text, t.text)
}

func (p *parser) ident(what string) (string, error) {
	t := p.peek()
	if t.kind != tIdent {
		return "", fmt.Errorf("esql: %d:%d: expected %s, got %q", t.line, t.col, what, t.text)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	switch {
	case t.is("TYPE"):
		return p.parseType()
	case t.is("TABLE"):
		return p.parseTable()
	case t.is("CREATE"):
		return p.parseCreate()
	case t.is("SELECT"):
		return p.parseSelect()
	case t.is("INSERT"):
		return p.parseInsert()
	case t.is("EXPLAIN"):
		return p.parseExplain()
	case t.is("PREPARE"):
		return p.parsePrepare()
	case t.is("EXECUTE"):
		return p.parseExecute()
	}
	return nil, fmt.Errorf("esql: %d:%d: unexpected %q (expected TYPE, TABLE, CREATE, SELECT, INSERT, EXPLAIN, PREPARE or EXECUTE)", t.line, t.col, t.text)
}

// parsePrepare parses PREPARE name AS SELECT ... ($n placeholders are
// allowed anywhere a literal is).
func (p *parser) parsePrepare() (Stmt, error) {
	p.advance() // PREPARE
	name, err := p.ident("prepared-statement name")
	if err != nil {
		return nil, err
	}
	if err := p.expect("AS"); err != nil {
		return nil, err
	}
	t := p.peek()
	if !t.is("SELECT") {
		return nil, fmt.Errorf("esql: %d:%d: PREPARE expects a SELECT body, got %q", t.line, t.col, t.text)
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &PrepareStmt{Name: name, Sel: sel.(*Select)}, nil
}

// parseExecute parses EXECUTE name(arg, ...); the parentheses are
// required even for zero arguments.
func (p *parser) parseExecute() (Stmt, error) {
	p.advance() // EXECUTE
	name, err := p.ident("prepared-statement name")
	if err != nil {
		return nil, err
	}
	args, err := p.parseArgList()
	if err != nil {
		return nil, err
	}
	return &ExecuteStmt{Name: name, Args: args}, nil
}

// parseExplain parses EXPLAIN [ANALYZE] SELECT ....
func (p *parser) parseExplain() (Stmt, error) {
	p.advance() // EXPLAIN
	ex := &Explain{}
	if p.accept("ANALYZE") {
		ex.Analyze = true
	}
	t := p.peek()
	if !t.is("SELECT") {
		return nil, fmt.Errorf("esql: %d:%d: EXPLAIN expects a SELECT, got %q", t.line, t.col, t.text)
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	ex.Sel = sel.(*Select)
	return ex, nil
}

// parseType parses the TYPE declarations of Figure 2.
func (p *parser) parseType() (Stmt, error) {
	p.advance() // TYPE
	name, err := p.ident("type name")
	if err != nil {
		return nil, err
	}
	d := &TypeDecl{Name: name}
	if p.accept("SUBTYPE") {
		if err := p.expect("OF"); err != nil {
			return nil, err
		}
		d.Super, err = p.ident("supertype name")
		if err != nil {
			return nil, err
		}
	}
	t := p.peek()
	switch {
	case t.is("ENUMERATION"):
		p.advance()
		if err := p.expect("OF"); err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		d.Kind = TypeEnum
		for !p.peek().is(")") {
			v := p.peek()
			if v.kind != tString {
				return nil, fmt.Errorf("esql: %d:%d: enumeration values must be strings", v.line, v.col)
			}
			p.advance()
			d.EnumVals = append(d.EnumVals, v.text)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}

	case t.is("OBJECT"), t.is("TUPLE"):
		if p.accept("OBJECT") {
			d.Object = true
		}
		if err := p.expect("TUPLE"); err != nil {
			return nil, err
		}
		d.Kind = TypeTuple
		fields, err := p.parseFieldList()
		if err != nil {
			return nil, err
		}
		d.Fields = fields
		// Optional FUNCTION declarations (Figure 2's IncreaseSalary).
		for p.accept("FUNCTION") {
			fn, err := p.ident("function name")
			if err != nil {
				return nil, err
			}
			d.Methods = append(d.Methods, fn)
			// Skip the signature parenthesis.
			if p.peek().is("(") {
				if err := p.skipParens(); err != nil {
					return nil, err
				}
			}
		}

	case t.is("SET"), t.is("BAG"), t.is("LIST"), t.is("ARRAY"):
		d.Kind = TypeColl
		ref, err := p.parseTypeRef()
		if err != nil {
			return nil, err
		}
		d.CollKind = ref.CollKind
		d.Elem = ref.Elem

	default:
		return nil, fmt.Errorf("esql: %d:%d: unexpected %q in TYPE declaration", t.line, t.col, t.text)
	}
	return d, nil
}

func (p *parser) skipParens() error {
	if err := p.expect("("); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		if p.atEOF() {
			return fmt.Errorf("esql: unbalanced parentheses")
		}
		t := p.advance()
		if t.is("(") {
			depth++
		}
		if t.is(")") {
			depth--
		}
	}
	return nil
}

func (p *parser) parseFieldList() ([]FieldDecl, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var out []FieldDecl
	for !p.peek().is(")") {
		name, err := p.ident("field name")
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		ref, err := p.parseTypeRef()
		if err != nil {
			return nil, err
		}
		out = append(out, FieldDecl{Name: name, Type: ref})
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) parseTypeRef() (*TypeRef, error) {
	t := p.peek()
	for _, ck := range []struct {
		kw   string
		kind value.Kind
	}{{"SET", value.KSet}, {"BAG", value.KBag}, {"LIST", value.KList}, {"ARRAY", value.KArray}} {
		if t.is(ck.kw) && p.peekAt(1).is("OF") {
			p.advance()
			p.advance()
			elem, err := p.parseTypeRef()
			if err != nil {
				return nil, err
			}
			return &TypeRef{CollKind: ck.kind, Elem: elem}, nil
		}
	}
	if t.is("TUPLE") && p.peekAt(1).is("(") {
		p.advance()
		fields, err := p.parseFieldList()
		if err != nil {
			return nil, err
		}
		return &TypeRef{Fields: fields}, nil
	}
	name, err := p.ident("type name")
	if err != nil {
		return nil, err
	}
	return &TypeRef{Name: name}, nil
}

func (p *parser) parseTable() (Stmt, error) {
	p.advance() // TABLE
	name, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	cols, err := p.parseFieldList()
	if err != nil {
		return nil, err
	}
	return &TableDecl{Name: name, Cols: cols}, nil
}

func (p *parser) parseCreate() (Stmt, error) {
	p.advance() // CREATE
	if err := p.expect("VIEW"); err != nil {
		return nil, err
	}
	name, err := p.ident("view name")
	if err != nil {
		return nil, err
	}
	v := &ViewDecl{Name: name}
	if p.peek().is("(") {
		p.advance()
		for !p.peek().is(")") {
			c, err := p.ident("column name")
			if err != nil {
				return nil, err
			}
			v.Cols = append(v.Cols, c)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expect("AS"); err != nil {
		return nil, err
	}
	// Optional outer parenthesis around the select/union body (Figure 5).
	wrapped := p.accept("(")
	for {
		s, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		v.Selects = append(v.Selects, s.(*Select))
		if !p.accept("UNION") {
			break
		}
		// Each arm may itself be parenthesised.
		if p.accept("(") {
			arm, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			v.Selects = append(v.Selects, arm.(*Select))
			if !p.accept("UNION") {
				break
			}
		}
	}
	if wrapped {
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	return v, nil
}

func (p *parser) parseSelect() (Stmt, error) {
	if err := p.expect("SELECT"); err != nil {
		return nil, err
	}
	s := &Select{}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Proj = append(s.Proj, e)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	for {
		name, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		tr := TableRef{Table: name}
		// Optional alias: a bare identifier that is not a clause keyword.
		if t := p.peek(); t.kind == tIdent && !isClauseKeyword(t.text) {
			tr.Alias = t.text
			p.advance()
		}
		s.From = append(s.From, tr)
		if !p.accept(",") {
			break
		}
	}
	if p.accept("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.peek().is("GROUP") {
		p.advance()
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.accept(",") {
				break
			}
		}
	}
	return s, nil
}

func isClauseKeyword(s string) bool {
	switch strings.ToUpper(s) {
	case "WHERE", "GROUP", "UNION", "AND", "OR", "ORDER", "FROM", "SELECT", "AS", "ON":
		return true
	}
	return false
}

func (p *parser) parseInsert() (Stmt, error) {
	p.advance() // INSERT
	if err := p.expect("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expect("VALUES"); err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: name}
	for {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var row []Expr
		for !p.peek().is(")") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(",") {
			break
		}
	}
	return ins, nil
}

// --- expressions ---
// Precedence: OR < AND < NOT < comparison < additive < multiplicative < unary < primary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().is("OR") {
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peek().is("AND") {
		p.advance()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.peek().is("NOT") {
		p.advance()
		a, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Not{Arg: a}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "<>", "<=", ">=", "<", ">"} {
		if p.peek().is(op) {
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Bin{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.peek().is("+") || p.peek().is("-") {
		op := p.advance().text
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().is("*") || p.peek().is("/") {
		op := p.advance().text
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.peek().is("-") {
		p.advance()
		a, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := a.(*Lit); ok {
			switch lit.Val.K {
			case value.KInt:
				return &Lit{Val: value.Int(-lit.Val.I)}, nil
			case value.KReal:
				return &Lit{Val: value.Real(-lit.Val.F)}, nil
			}
		}
		return &App{Fn: "NEG", Args: []Expr{a}}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("esql: %d:%d: bad number %q", t.line, t.col, t.text)
			}
			return &Lit{Val: value.Real(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("esql: %d:%d: bad number %q", t.line, t.col, t.text)
		}
		return &Lit{Val: value.Int(n)}, nil

	case tString:
		p.advance()
		return &Lit{Val: value.String(t.text)}, nil

	case tParam:
		p.advance()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("esql: %d:%d: bad parameter $%s (parameters are $1, $2, ...)", t.line, t.col, t.text)
		}
		return &Param{Index: n}, nil

	case tIdent:
		switch strings.ToUpper(t.text) {
		case "TRUE":
			p.advance()
			return &Lit{Val: value.True}, nil
		case "FALSE":
			p.advance()
			return &Lit{Val: value.False}, nil
		case "NULL":
			p.advance()
			return &Lit{Val: value.Null}, nil
		case "ALL", "EXIST":
			if p.peekAt(1).is("(") {
				all := strings.EqualFold(t.text, "ALL")
				p.advance()
				p.advance()
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				return &Quant{All: all, Arg: arg}, nil
			}
		case "SET", "BAG", "LIST", "ARRAY":
			if p.peekAt(1).is("(") {
				kind := map[string]value.Kind{"SET": value.KSet, "BAG": value.KBag, "LIST": value.KList, "ARRAY": value.KArray}[strings.ToUpper(t.text)]
				p.advance()
				elems, err := p.parseArgList()
				if err != nil {
					return nil, err
				}
				return &CollLit{Kind: kind, Elems: elems}, nil
			}
		case "TUPLE":
			if p.peekAt(1).is("(") {
				p.advance()
				p.advance()
				tl := &TupleLit{}
				for !p.peek().is(")") {
					n, err := p.ident("field name")
					if err != nil {
						return nil, err
					}
					if err := p.expect(":"); err != nil {
						return nil, err
					}
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					tl.Names = append(tl.Names, n)
					tl.Elems = append(tl.Elems, e)
					if !p.accept(",") {
						break
					}
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				return tl, nil
			}
		}
		p.advance()
		// Function application.
		if p.peek().is("(") {
			args, err := p.parseArgList()
			if err != nil {
				return nil, err
			}
			return &App{Fn: t.text, Args: args}, nil
		}
		// Qualified reference R.attr.
		if p.peek().is(".") {
			p.advance()
			attr, err := p.ident("attribute name")
			if err != nil {
				return nil, err
			}
			return &Ref{Qualifier: t.text, Name: attr}, nil
		}
		return &Ref{Name: t.text}, nil

	case tPunct:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("esql: %d:%d: unexpected token %q", t.line, t.col, t.text)
}

func (p *parser) parseArgList() ([]Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var out []Expr
	for !p.peek().is(")") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return out, nil
}
