package esql

import (
	"strings"
	"testing"
)

func TestParsePrepareExecute(t *testing.T) {
	stmts, err := Parse(`
		PREPARE byNum AS SELECT Title FROM FILM WHERE Numf = $1;
		EXECUTE byNum(7);
		EXECUTE noargs();
		EXECUTE multi(1, 'x', 2.5);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 4 {
		t.Fatalf("got %d statements", len(stmts))
	}
	prep, ok := stmts[0].(*PrepareStmt)
	if !ok || prep.Name != "byNum" {
		t.Fatalf("stmt 0 = %#v", stmts[0])
	}
	if n, err := CountParams(prep.Sel); err != nil || n != 1 {
		t.Fatalf("CountParams = %d, %v", n, err)
	}
	ex, ok := stmts[1].(*ExecuteStmt)
	if !ok || ex.Name != "byNum" || len(ex.Args) != 1 {
		t.Fatalf("stmt 1 = %#v", stmts[1])
	}
	if ex := stmts[2].(*ExecuteStmt); len(ex.Args) != 0 {
		t.Fatalf("stmt 2 args = %v", ex.Args)
	}
	if ex := stmts[3].(*ExecuteStmt); len(ex.Args) != 3 {
		t.Fatalf("stmt 3 args = %v", ex.Args)
	}
}

func TestParseParamPlaceholders(t *testing.T) {
	sel, err := ParseQuery("SELECT Title FROM FILM WHERE Numf = $1 AND Numf < $2 OR Numf > $1")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := CountParams(sel); err != nil || n != 2 {
		t.Fatalf("CountParams = %d, %v (repeats allowed)", n, err)
	}
}

func TestParamParseErrors(t *testing.T) {
	for _, bad := range []struct{ src, want string }{
		{"SELECT Title FROM FILM WHERE Numf = $0;", "bad parameter $0"},
		{"SELECT Title FROM FILM WHERE Numf = $;", "expected parameter number"},
		{"SELECT Title FROM FILM WHERE Numf = $x;", "expected parameter number"},
		{"PREPARE p SELECT Title FROM FILM;", `expected "AS"`},
		{"PREPARE p AS INSERT INTO FILM VALUES (1);", "expects a SELECT body"},
		{"EXECUTE p;", `expected "("`},
	} {
		if _, err := Parse(bad.src); err == nil || !strings.Contains(err.Error(), bad.want) {
			t.Errorf("%s: err = %v, want %q", bad.src, err, bad.want)
		}
	}
}

func TestCountParamsGaps(t *testing.T) {
	sel, err := ParseQuery("SELECT Title FROM FILM WHERE Numf = $2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CountParams(sel); err == nil || !strings.Contains(err.Error(), "uses $2 but not $1") {
		t.Fatalf("gap error = %v", err)
	}
}

func TestBindParams(t *testing.T) {
	sel, err := ParseQuery("SELECT Title FROM FILM WHERE Numf = $1 AND Numf < $2")
	if err != nil {
		t.Fatal(err)
	}
	bound, err := BindParams(sel, []Expr{&Lit{}, &Lit{}})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := CountParams(bound); n != 0 {
		t.Fatalf("bound statement still has %d params", n)
	}
	// The original AST is untouched (BindParams deep-copies).
	if n, _ := CountParams(sel); n != 2 {
		t.Fatalf("BindParams mutated the original: %d params left", n)
	}
	if _, err := BindParams(sel, []Expr{&Lit{}}); err == nil ||
		!strings.Contains(err.Error(), "uses $2 but EXECUTE passed 1") {
		t.Fatalf("arity error = %v", err)
	}
}
