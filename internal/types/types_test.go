package types

import (
	"strings"
	"testing"

	"lera/internal/value"
)

// figure2 builds the paper's Figure 2 type definitions.
func figure2(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	if _, err := r.DeclareEnum("Category", []string{"Comedy", "Adventure", "Science Fiction", "Western"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.DeclareTuple("Point", []Field{{"ABS", r.Real}, {"ORD", r.Real}}, false, nil); err != nil {
		t.Fatal(err)
	}
	firstname := r.Collection(value.KSet, r.Char)
	caricature := r.Collection(value.KList, r.MustLookup("Point"))
	person, err := r.DeclareTuple("Person", []Field{
		{"Name", r.Char}, {"Firstname", firstname}, {"Caricature", caricature},
	}, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.DeclareTuple("Actor", []Field{{"Salary", r.Numeric}}, true, person); err != nil {
		t.Fatal(err)
	}
	if _, err := r.DeclareCollection("SetCategory", value.KSet, r.MustLookup("Category")); err != nil {
		t.Fatal(err)
	}
	pairsElem := &Type{Name: "_pair", Kind: Tuple, Fields: []Field{{"Pros", r.Int}, {"Cons", r.Int}}}
	if _, err := r.DeclareCollection("Pairs", value.KList, pairsElem); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBuiltins(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"INT", "REAL", "NUMERIC", "CHAR", "BOOLEAN", "ANY", "COLLECTION"} {
		if _, ok := r.Lookup(name); !ok {
			t.Errorf("builtin %s missing", name)
		}
	}
	// Case insensitive lookup.
	if _, ok := r.Lookup("int"); !ok {
		t.Error("lookup must be case-insensitive")
	}
}

func TestFigure2Schema(t *testing.T) {
	r := figure2(t)
	actor := r.MustLookup("Actor")
	if !actor.IsObject {
		t.Error("Actor must be an object type")
	}
	// Inherited field lookup through SUBTYPE OF.
	ft, ok := actor.FieldType("Name")
	if !ok || ft != r.Char {
		t.Errorf("Actor.Name type = %v, %v", ft, ok)
	}
	ft, ok = actor.FieldType("Salary")
	if !ok || ft != r.Numeric {
		t.Errorf("Actor.Salary type = %v, %v", ft, ok)
	}
	if _, ok := actor.FieldType("nope"); ok {
		t.Error("unknown field must not resolve")
	}
	fields := actor.AllFields()
	if len(fields) != 4 || fields[0].Name != "Name" || fields[3].Name != "Salary" {
		t.Errorf("AllFields order wrong: %v", fields)
	}
	cat := r.MustLookup("Category")
	if !cat.HasEnumValue("Adventure") {
		t.Error("Adventure must be a Category value")
	}
	if cat.HasEnumValue("Cartoon") {
		t.Error("'Cartoon' is not a Category value (paper Section 6.1)")
	}
	if r.Int.HasEnumValue("x") {
		t.Error("non-enum has no enum values")
	}
}

func TestISA(t *testing.T) {
	r := figure2(t)
	cases := []struct {
		sub, super string
		want       bool
	}{
		{"Actor", "Person", true},
		{"Actor", "Actor", true},
		{"Person", "Actor", false},
		{"INT", "NUMERIC", true},
		{"REAL", "NUMERIC", true},
		{"NUMERIC", "INT", false},
		{"SetCategory", "COLLECTION", true},
		{"Pairs", "COLLECTION", true},
		{"Category", "CHAR", true}, // enums are string-valued
		{"Actor", "ANY", true},
		{"INT", "ANY", true},
		{"Point", "Person", false},
		{"nosuch", "ANY", false},
		{"INT", "nosuch", false},
	}
	for _, c := range cases {
		if got := r.ISAName(c.sub, c.super); got != c.want {
			t.Errorf("ISA(%s, %s) = %v, want %v", c.sub, c.super, got, c.want)
		}
	}
}

func TestISACollectionStructural(t *testing.T) {
	r := figure2(t)
	setActor := r.Collection(value.KSet, r.MustLookup("Actor"))
	setPerson := r.Collection(value.KSet, r.MustLookup("Person"))
	listActor := r.Collection(value.KList, r.MustLookup("Actor"))
	if !r.ISA(setActor, setPerson) {
		t.Error("SET OF Actor ISA SET OF Person (covariant)")
	}
	if r.ISA(setPerson, setActor) {
		t.Error("SET OF Person is not a SET OF Actor")
	}
	if r.ISA(listActor, setActor) {
		t.Error("LIST is not a SET")
	}
	if !r.ISA(listActor, r.CollectionT) {
		t.Error("LIST OF Actor ISA COLLECTION")
	}
	if r.ISA(nil, setActor) || r.ISA(setActor, nil) {
		t.Error("nil types are unrelated")
	}
	// A named SET type matches the anonymous SET OF same-elem.
	sc := r.MustLookup("SetCategory")
	anonSC := r.Collection(value.KSet, r.MustLookup("Category"))
	if !r.ISA(sc, anonSC) || !r.ISA(anonSC, sc) {
		t.Error("named and anonymous SET OF Category should be mutual subtypes")
	}
}

func TestCollectionInterning(t *testing.T) {
	r := NewRegistry()
	a := r.Collection(value.KSet, r.Int)
	b := r.Collection(value.KSet, r.Int)
	if a != b {
		t.Error("anonymous collection types must be interned")
	}
	c := r.Collection(value.KList, r.Int)
	if a == c {
		t.Error("different kinds must differ")
	}
	if got := a.String(); got != "SET OF INT" {
		t.Errorf("anon collection String = %q", got)
	}
}

func TestDeclareDuplicate(t *testing.T) {
	r := NewRegistry()
	if _, err := r.DeclareEnum("E", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.DeclareEnum("e", []string{"b"}); err == nil {
		t.Error("duplicate declaration (case-insensitive) must fail")
	}
	if _, err := r.DeclareCollection("C", value.KInt, r.Int); err == nil {
		t.Error("non-collection kind must fail")
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLookup of unknown type must panic")
		}
	}()
	NewRegistry().MustLookup("nope")
}

func TestTypeOfValue(t *testing.T) {
	r := NewRegistry()
	cases := []struct {
		v    value.Value
		want string
	}{
		{value.Int(1), "INT"},
		{value.Real(1), "REAL"},
		{value.String("x"), "CHAR"},
		{value.Bool(true), "BOOLEAN"},
		{value.NewSet(value.Int(1)), "SET OF INT"},
		{value.NewList(), "LIST OF ANY"},
	}
	for _, c := range cases {
		if got := r.TypeOfValue(c.v).String(); got != c.want {
			t.Errorf("TypeOfValue(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	tv := r.TypeOfValue(value.NewTuple([]string{"a"}, []value.Value{value.Int(1)}))
	if tv.Kind != Tuple || len(tv.Fields) != 1 || tv.Fields[0].Name != "a" {
		t.Errorf("tuple TypeOfValue = %v", tv)
	}
}

func TestNames(t *testing.T) {
	r := figure2(t)
	names := r.Names()
	joined := strings.Join(names, ",")
	for _, want := range []string{"Actor", "Category", "Person", "Point", "SetCategory", "Pairs", "INT"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Names() missing %s: %v", want, names)
		}
	}
	for _, n := range names {
		if strings.HasPrefix(n, "_") {
			t.Errorf("anonymous type leaked into Names(): %s", n)
		}
	}
}

func TestZeroValue(t *testing.T) {
	r := figure2(t)
	cases := []struct {
		tn   string
		want value.Kind
	}{
		{"INT", value.KInt}, {"REAL", value.KReal}, {"CHAR", value.KString},
		{"BOOLEAN", value.KBool}, {"Category", value.KString},
		{"SetCategory", value.KSet}, {"Pairs", value.KList},
		{"Point", value.KTuple}, {"Actor", value.KTuple},
	}
	for _, c := range cases {
		z := r.MustLookup(c.tn).ZeroValue()
		if z.K != c.want {
			t.Errorf("ZeroValue(%s).K = %v, want %v", c.tn, z.K, c.want)
		}
	}
	actor := r.MustLookup("Actor").ZeroValue()
	if actor.Len() != 4 {
		t.Errorf("Actor zero tuple must include inherited fields: %v", actor)
	}
	if !(*Type)(nil).ZeroValue().IsNull() {
		t.Error("nil type zero is NULL")
	}
	if (*Type)(nil).String() != "<nil>" {
		t.Error("nil type String")
	}
	cat := r.MustLookup("Category").ZeroValue()
	if cat.S != "Comedy" {
		t.Errorf("enum zero = %v", cat)
	}
}
