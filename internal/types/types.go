// Package types implements the ESQL type system of the paper's Section 2:
// user-definable abstract data types (ADTs), the generic collection ADTs of
// Figure 1 organised in an inheritance hierarchy rooted at COLLECTION,
// tuple types, object types with identity, enumerations and subtyping.
//
// The ISA relation of this package is exactly the ISA predicate of the
// paper's rule-language constraints (Section 4.1): ISA(x, y) is true if the
// type of x is y or a subtype of y.
package types

import (
	"fmt"
	"sort"
	"strings"

	"lera/internal/value"
)

// Kind discriminates type structure.
type Kind int

// Type kinds. Basic covers the built-in scalar types.
const (
	Basic Kind = iota
	Enum
	Tuple
	Collection
	Any // top type, used by generic function signatures
)

// Field is a named, typed tuple component.
type Field struct {
	Name string
	Type *Type
}

// Type describes an ESQL type. Types are interned in a Registry; pointer
// identity is not significant, Name is.
type Type struct {
	Name string
	Kind Kind

	// Super is the declared supertype (SUBTYPE OF ...), or the implicit
	// supertype for collections (SET OF T isa COLLECTION OF T isa
	// COLLECTION). Nil for roots.
	Super *Type

	// IsObject marks object types: instances carry an object identifier
	// and are referentially shared (Section 2.1).
	IsObject bool

	// Elem is the element type for collections.
	Elem *Type
	// CollKind is the value kind (KSet, KBag, KList, KArray) for concrete
	// collections; KNull for the abstract COLLECTION type.
	CollKind value.Kind

	// Fields are the components of tuple types.
	Fields []Field

	// EnumVals are the values of enumeration types, in declaration order.
	EnumVals []string
}

// String renders the type in ESQL-ish syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case Collection:
		if t.Elem == nil {
			return t.Name
		}
		if strings.HasPrefix(t.Name, "_") { // anonymous
			return collName(t.CollKind) + " OF " + t.Elem.String()
		}
		return t.Name
	default:
		return t.Name
	}
}

func collName(k value.Kind) string {
	switch k {
	case value.KSet:
		return "SET"
	case value.KBag:
		return "BAG"
	case value.KList:
		return "LIST"
	case value.KArray:
		return "ARRAY"
	}
	return "COLLECTION"
}

// FieldType returns the type of a named field of a tuple type.
func (t *Type) FieldType(name string) (*Type, bool) {
	if t == nil || t.Kind != Tuple {
		return nil, false
	}
	for _, f := range t.Fields {
		if strings.EqualFold(f.Name, name) {
			return f.Type, true
		}
	}
	// Inherited fields from the supertype chain (Actor SUBTYPE OF Person).
	if t.Super != nil {
		return t.Super.FieldType(name)
	}
	return nil, false
}

// AllFields returns the fields of a tuple type including inherited ones,
// supertype fields first (as subtypes extend their parents).
func (t *Type) AllFields() []Field {
	if t == nil || t.Kind != Tuple {
		return nil
	}
	var out []Field
	if t.Super != nil && t.Super.Kind == Tuple {
		out = append(out, t.Super.AllFields()...)
	}
	return append(out, t.Fields...)
}

// HasEnumValue reports whether v is one of the enumeration's values.
func (t *Type) HasEnumValue(v string) bool {
	if t == nil || t.Kind != Enum {
		return false
	}
	for _, e := range t.EnumVals {
		if e == v {
			return true
		}
	}
	return false
}

// Registry holds all known types and implements name resolution, the
// collection hierarchy of Figure 1 and the ISA relation.
type Registry struct {
	byName map[string]*Type

	// Built-in roots, exposed for convenience.
	Int, Real, Numeric, Char, Bool, AnyT *Type
	CollectionT                          *Type

	anon int // counter for anonymous collection type names
}

// NewRegistry creates a registry pre-populated with the built-in scalar
// types and the generic collection root of Figure 1.
func NewRegistry() *Registry {
	r := &Registry{byName: map[string]*Type{}}
	add := func(t *Type) *Type { r.byName[strings.ToUpper(t.Name)] = t; return t }
	r.Int = add(&Type{Name: "INT", Kind: Basic})
	r.Real = add(&Type{Name: "REAL", Kind: Basic})
	// NUMERIC is the paper's catch-all numeric; INT and REAL are its
	// subtypes so ISA(Salary, NUMERIC) holds for both.
	r.Numeric = add(&Type{Name: "NUMERIC", Kind: Basic})
	r.Int.Super = r.Numeric
	r.Real.Super = r.Numeric
	r.Char = add(&Type{Name: "CHAR", Kind: Basic})
	r.Bool = add(&Type{Name: "BOOLEAN", Kind: Basic})
	r.AnyT = add(&Type{Name: "ANY", Kind: Any})
	r.CollectionT = add(&Type{Name: "COLLECTION", Kind: Collection, CollKind: value.KNull})
	return r
}

// Lookup resolves a type by name, case-insensitively.
func (r *Registry) Lookup(name string) (*Type, bool) {
	t, ok := r.byName[strings.ToUpper(name)]
	return t, ok
}

// MustLookup resolves a type by name or panics; for tests and built-ins.
func (r *Registry) MustLookup(name string) *Type {
	t, ok := r.Lookup(name)
	if !ok {
		panic(fmt.Sprintf("types: unknown type %q", name))
	}
	return t
}

// Declare registers a named type. It fails if the name is already taken.
func (r *Registry) Declare(t *Type) error {
	key := strings.ToUpper(t.Name)
	if _, dup := r.byName[key]; dup {
		return fmt.Errorf("types: type %q already declared", t.Name)
	}
	r.byName[key] = t
	return nil
}

// DeclareEnum registers an enumeration type (TYPE name ENUMERATION OF ...).
func (r *Registry) DeclareEnum(name string, vals []string) (*Type, error) {
	t := &Type{Name: name, Kind: Enum, EnumVals: append([]string(nil), vals...), Super: r.Char}
	if err := r.Declare(t); err != nil {
		return nil, err
	}
	return t, nil
}

// DeclareTuple registers a tuple type (TYPE name TUPLE (...)); object
// reports whether it is an OBJECT TUPLE type; super may be nil or a
// declared supertype (SUBTYPE OF).
func (r *Registry) DeclareTuple(name string, fields []Field, object bool, super *Type) (*Type, error) {
	t := &Type{Name: name, Kind: Tuple, Fields: append([]Field(nil), fields...), IsObject: object, Super: super}
	if err := r.Declare(t); err != nil {
		return nil, err
	}
	return t, nil
}

// DeclareCollection registers a named collection type such as
// TYPE SetCategory SET OF Category.
func (r *Registry) DeclareCollection(name string, kind value.Kind, elem *Type) (*Type, error) {
	if !kind.IsCollection() {
		return nil, fmt.Errorf("types: %s is not a collection kind", kind)
	}
	t := &Type{Name: name, Kind: Collection, CollKind: kind, Elem: elem, Super: r.CollectionT}
	if err := r.Declare(t); err != nil {
		return nil, err
	}
	return t, nil
}

// Collection returns (interning per element type and kind) the anonymous
// collection type "KIND OF elem"; used by type inference.
func (r *Registry) Collection(kind value.Kind, elem *Type) *Type {
	key := "_" + collName(kind) + " OF " + strings.ToUpper(elem.Name)
	if t, ok := r.byName[key]; ok {
		return t
	}
	r.anon++
	t := &Type{Name: key, Kind: Collection, CollKind: kind, Elem: elem, Super: r.CollectionT}
	r.byName[key] = t
	return t
}

// ISA reports whether sub is t or a (transitive) subtype of t. This is the
// ISA predicate of the paper's rule constraints. The collection hierarchy
// of Figure 1 is built in: every SET/BAG/LIST/ARRAY type is a subtype of
// COLLECTION; element types are covariant (SET OF Actor ISA SET OF Person
// when Actor ISA Person). ANY is the top type.
func (r *Registry) ISA(sub, t *Type) bool {
	if sub == nil || t == nil {
		return false
	}
	if t.Kind == Any {
		return true
	}
	if sub == t || strings.EqualFold(sub.Name, t.Name) {
		return true
	}
	// Collection structural subtyping.
	if sub.Kind == Collection && t.Kind == Collection {
		if t.Elem == nil && t.CollKind == value.KNull {
			return true // anything collection-ish ISA COLLECTION
		}
		if t.CollKind != value.KNull && sub.CollKind != t.CollKind {
			return false
		}
		if t.Elem == nil {
			return true
		}
		if sub.Elem == nil {
			return false
		}
		return r.ISA(sub.Elem, t.Elem)
	}
	if sub.Super != nil {
		return r.ISA(sub.Super, t)
	}
	return false
}

// ISAName is ISA by type names; unknown names are never related.
func (r *Registry) ISAName(sub, super string) bool {
	s, ok1 := r.Lookup(sub)
	t, ok2 := r.Lookup(super)
	return ok1 && ok2 && r.ISA(s, t)
}

// TypeOfValue infers the most specific built-in type of a runtime value.
// Declared user types cannot always be recovered from a bare value; this is
// used for literals during type checking.
func (r *Registry) TypeOfValue(v value.Value) *Type {
	switch v.K {
	case value.KBool:
		return r.Bool
	case value.KInt:
		return r.Int
	case value.KReal:
		return r.Real
	case value.KString:
		return r.Char
	case value.KSet, value.KBag, value.KList, value.KArray:
		elem := r.AnyT
		if len(v.Elems) > 0 {
			elem = r.TypeOfValue(v.Elems[0])
		}
		return r.Collection(v.K, elem)
	case value.KTuple:
		fields := make([]Field, len(v.Names))
		for i, n := range v.Names {
			fields[i] = Field{Name: n, Type: r.TypeOfValue(v.Elems[i])}
		}
		return &Type{Name: "_tuple", Kind: Tuple, Fields: fields}
	}
	return r.AnyT
}

// Names returns all declared (non-anonymous) type names, sorted; used by
// the shell's \dt-style introspection and by tests.
func (r *Registry) Names() []string {
	var out []string
	for k, t := range r.byName {
		if strings.HasPrefix(k, "_") || strings.HasPrefix(t.Name, "_") {
			continue
		}
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// ZeroValue returns a reasonable default runtime value for the type.
func (t *Type) ZeroValue() value.Value {
	if t == nil {
		return value.Null
	}
	switch t.Kind {
	case Basic:
		switch strings.ToUpper(t.Name) {
		case "INT", "NUMERIC":
			return value.Int(0)
		case "REAL":
			return value.Real(0)
		case "BOOLEAN":
			return value.Bool(false)
		default:
			return value.String("")
		}
	case Enum:
		if len(t.EnumVals) > 0 {
			return value.String(t.EnumVals[0])
		}
		return value.String("")
	case Tuple:
		fs := t.AllFields()
		names := make([]string, len(fs))
		vals := make([]value.Value, len(fs))
		for i, f := range fs {
			names[i] = f.Name
			vals[i] = f.Type.ZeroValue()
		}
		return value.NewTuple(names, vals)
	case Collection:
		switch t.CollKind {
		case value.KSet:
			return value.NewSet()
		case value.KBag:
			return value.NewBag()
		case value.KList:
			return value.NewList()
		case value.KArray:
			return value.NewArray()
		}
	}
	return value.Null
}
