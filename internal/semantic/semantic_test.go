package semantic

import (
	"strings"
	"testing"

	"lera/internal/lera"
	"lera/internal/rewrite"
	"lera/internal/rules"
	"lera/internal/term"
	"lera/internal/testdb"
)

func semEngine(t *testing.T, extraSrc string) *rewrite.Engine {
	t.Helper()
	cat, err := testdb.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	ext := rewrite.NewExternals()
	RegisterExternals(ext)
	rs := RuleSet()
	if extraSrc != "" {
		extra, err := ParseConstraints(extraSrc, 100)
		if err != nil {
			t.Fatal(err)
		}
		rs.Merge(extra)
	}
	return rewrite.New(rs, ext, cat, rewrite.Options{})
}

func runBlock(t *testing.T, e *rewrite.Engine, q *term.Term, block string) *term.Term {
	t.Helper()
	out, _, err := e.RunBlock(q, block)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// --- Figure 11: implicit semantic knowledge ---

func TestFigure11TransitivityOfEquality(t *testing.T) {
	e := semEngine(t, "")
	q := lera.Ands(
		lera.Cmp("=", lera.Attr(1, 1), lera.Attr(2, 1)),
		lera.Cmp("=", lera.Attr(2, 1), lera.Attr(3, 1)),
	)
	out := runBlock(t, e, q, "semantic")
	cs := lera.Conjuncts(out)
	if len(cs) != 3 {
		t.Fatalf("conjuncts = %d: %s", len(cs), lera.Format(out))
	}
	want := lera.Cmp("=", lera.Attr(1, 1), lera.Attr(3, 1))
	found := false
	for _, c := range cs {
		if term.Equal(c, want) {
			found = true
		}
	}
	if !found {
		t.Errorf("derived 1.1=3.1 missing: %s", lera.Format(out))
	}
	// Closure of a longer chain terminates by saturation.
	q2 := lera.Ands(
		lera.Cmp("=", lera.Attr(1, 1), lera.Attr(2, 1)),
		lera.Cmp("=", lera.Attr(2, 1), lera.Attr(3, 1)),
		lera.Cmp("=", lera.Attr(3, 1), lera.Attr(4, 1)),
	)
	out2 := runBlock(t, e, q2, "semantic")
	if len(lera.Conjuncts(out2)) != 6 { // 3 given + 3 derived
		t.Errorf("chain closure = %s", lera.Format(out2))
	}
}

func TestFigure11IncludeTransitivity(t *testing.T) {
	e := semEngine(t, "")
	q := lera.Ands(
		term.F("INCLUDE", lera.Attr(1, 1), lera.Attr(2, 1)),
		term.F("INCLUDE", lera.Attr(2, 1), lera.Attr(3, 1)),
	)
	out := runBlock(t, e, q, "semantic")
	want := term.F("INCLUDE", lera.Attr(1, 1), lera.Attr(3, 1))
	if !term.Contains(out, func(s *term.Term) bool { return term.Equal(s, want) }) {
		t.Errorf("INCLUDE transitivity: %s", lera.Format(out))
	}
}

func TestFigure11EqualitySubstitution(t *testing.T) {
	e := semEngine(t, "")
	q := lera.Ands(
		lera.Cmp("=", lera.Attr(1, 1), lera.Attr(2, 1)),
		term.F("ISEMPTY", lera.Attr(1, 1)),
	)
	out := runBlock(t, e, q, "semantic")
	want := term.F("ISEMPTY", lera.Attr(2, 1))
	if !term.Contains(out, func(s *term.Term) bool { return term.Equal(s, want) }) {
		t.Errorf("equality substitution: %s", lera.Format(out))
	}
}

// --- Figure 12: predicate simplification ---

func TestFigure12Inconsistencies(t *testing.T) {
	e := semEngine(t, "")
	x, y := lera.Attr(1, 1), lera.Attr(1, 2)
	other := term.F("ISEMPTY", lera.Attr(1, 3))
	cases := []*term.Term{
		lera.Ands(lera.Cmp(">", x, y), lera.Cmp("<=", x, y), other),
		lera.Ands(lera.Cmp("<", x, y), lera.Cmp(">=", x, y), other),
		lera.Ands(lera.Cmp("=", x, y), lera.Cmp("<>", x, y), other),
	}
	for _, q := range cases {
		out := runBlock(t, e, q, "simplify")
		if out.Kind != term.Const || out.Val.B {
			t.Errorf("inconsistency not detected: %s -> %s", lera.Format(q), lera.Format(out))
		}
	}
	// A consistent pair stays.
	ok := lera.Ands(lera.Cmp(">", x, y), lera.Cmp("<", x, lera.Attr(2, 2)))
	out := runBlock(t, e, ok, "simplify")
	if len(lera.Conjuncts(out)) != 2 {
		t.Errorf("consistent qual altered: %s", lera.Format(out))
	}
}

func TestFigure12ConstantFolding(t *testing.T) {
	e := semEngine(t, "")
	// x - y = 0 with constants rewrites to x = y (the paper's rule),
	// then folds to TRUE, then the TRUE conjunct is dropped.
	q := lera.Ands(
		lera.Cmp("=", term.F("-", term.Num(3), term.Num(3)), term.Num(0)),
		term.F("ISEMPTY", lera.Attr(1, 1)),
	)
	out := runBlock(t, e, q, "simplify")
	cs := lera.Conjuncts(out)
	if len(cs) != 1 || cs[0].Functor != "ISEMPTY" {
		t.Errorf("folded = %s", lera.Format(out))
	}
	// General pure-function folding: MEMBER over a literal set.
	q2 := lera.Ands(term.F("MEMBER", term.Str("Cartoon"),
		term.Set(term.Str("Comedy"), term.Str("Adventure"))))
	out2 := runBlock(t, e, q2, "simplify")
	if out2.Kind != term.Const || out2.Val.B {
		t.Errorf("member fold = %s", lera.Format(out2))
	}
	// Arithmetic folding inside a comparison.
	q3 := lera.Ands(lera.Cmp(">", term.F("+", term.Num(2), term.Num(3)), lera.Attr(1, 1)))
	out3 := runBlock(t, e, q3, "simplify")
	if !strings.Contains(lera.Format(out3), "5>1.1") {
		t.Errorf("arith fold = %s", lera.Format(out3))
	}
	// NOT folding.
	q4 := lera.Ands(lera.Not(term.FalseT()), term.F("ISEMPTY", lera.Attr(1, 1)))
	out4 := runBlock(t, e, q4, "simplify")
	if len(lera.Conjuncts(out4)) != 1 {
		t.Errorf("NOT fold = %s", lera.Format(out4))
	}
}

func TestFoldingDoesNotDestroyStructure(t *testing.T) {
	e := semEngine(t, "")
	// A constant-only SET inside ANDS must not be folded into an opaque
	// value (PUREFN excludes constructors and connectives).
	q := lera.Search(
		[]*term.Term{lera.Rel("FILM")},
		lera.Ands(term.F("MEMBER", lera.Attr(1, 2), term.Set(term.Str("a"), term.Str("b")))),
		[]*term.Term{lera.Attr(1, 1)},
	)
	out := runBlock(t, e, q, "simplify")
	if !lera.IsOp(out, lera.OpSearch) {
		t.Fatalf("structure destroyed: %s", out)
	}
	if err := lera.Validate(out); err != nil {
		t.Errorf("invalid after simplify: %v", err)
	}
}

// --- Section 6.1: domain inconsistency ---

func TestMemberEnumInconsistency(t *testing.T) {
	e := semEngine(t, "")
	// MEMBER('Cartoon', Categories) inside a search over FILM: the
	// Categories column is SET OF Category and 'Cartoon' is not a
	// Category value, so the qualification is inconsistent.
	q := lera.Search(
		[]*term.Term{lera.Rel("FILM")},
		lera.Ands(term.F("MEMBER", term.Str("Cartoon"), lera.Attr(1, 3))),
		[]*term.Term{lera.Attr(1, 2)},
	)
	out := runBlock(t, e, q, "simplify")
	if !term.Equal(out.Args[1], term.FalseT()) {
		t.Errorf("qualification should be FALSE: %s", lera.Format(out))
	}
	// A legal member test is untouched.
	q2 := lera.Search(
		[]*term.Term{lera.Rel("FILM")},
		lera.Ands(term.F("MEMBER", term.Str("Adventure"), lera.Attr(1, 3))),
		[]*term.Term{lera.Attr(1, 2)},
	)
	out2 := runBlock(t, e, q2, "simplify")
	if term.Equal(out2.Args[1], term.FalseT()) {
		t.Error("legal member test wrongly simplified")
	}
}

// --- Figure 10: integrity constraints ---

const figure10Constraints = `
rule ic_point_abs: F(x) / ISA(x, Point) --> F(x) AND ABS(x) > 0 / ;
rule ic_category: F(x) / ISA(x, SetCategory) --> F(x) AND INCLUDE(x, SET('Comedy', 'Adventure', 'Science Fiction', 'Western')) / ;
`

func TestFigure10ConstraintCompilation(t *testing.T) {
	rs, err := ParseConstraints(figure10Constraints, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.RuleOrder) != 2 {
		t.Fatalf("rules = %v", rs.RuleOrder)
	}
	r := rs.Rules["ic_category"]
	if !lera.IsOp(r.LHS, lera.EAnds) {
		t.Errorf("compiled LHS = %s", r.LHS)
	}
	if len(r.Methods) != 1 || r.Methods[0].Functor != "TYPEDSUB" {
		t.Errorf("compiled methods = %v", r.Methods)
	}
	b := rs.Blocks["constraints"]
	if b == nil || b.Limit != 50 {
		t.Errorf("constraints block = %+v", b)
	}
}

func TestFigure10ConstraintAddition(t *testing.T) {
	e := semEngine(t, figure10Constraints)
	// A query over FILM whose qualification mentions Categories gets the
	// domain INCLUDE constraint added.
	q := lera.Search(
		[]*term.Term{lera.Rel("FILM")},
		lera.Ands(term.F("MEMBER", term.Str("Cartoon"), lera.Attr(1, 3))),
		[]*term.Term{lera.Attr(1, 2)},
	)
	out := runBlock(t, e, q, "constraints")
	qual := out.Args[1]
	hasInclude := term.Contains(qual, func(s *term.Term) bool {
		return s.Kind == term.Fun && s.Functor == "INCLUDE"
	})
	if !hasInclude {
		t.Fatalf("INCLUDE constraint not added: %s", lera.Format(out))
	}
	// Now the simplify block detects the inconsistency through the
	// explicit-knowledge rule (member_include_incons).
	out2 := runBlock(t, e, out, "simplify")
	if !term.Equal(out2.Args[1], term.FalseT()) {
		t.Errorf("inconsistency via explicit constraint: %s", lera.Format(out2))
	}
}

func TestConstraintCompilationErrors(t *testing.T) {
	bad := []string{
		"rule r: FOO(x) / ISA(x, Point) --> FOO(x) AND ABS(x) > 0;",   // fixed head
		"rule r: F(x, y) / ISA(x, Point) --> F(x, y) AND ABS(x) > 0;", // arity
		"rule r: F(x) / --> F(x) AND ABS(x) > 0;",                     // missing ISA
		"rule r: F(x) / ISA(x, Point) --> ABS(x) > 0;",                // RHS shape
		"rule r: F(x) / ISA(x, Point) --> G(x) AND ABS(x) > 0;",       // RHS head differs
	}
	for _, src := range bad {
		if _, err := ParseConstraints(src, 10); err == nil {
			t.Errorf("expected compile error for %q", src)
		}
	}
	if _, err := ParseConstraints("garbage", 10); err == nil {
		t.Error("parse error expected")
	}
}

// Figure 11(3): subclass substitution falls out of ISA — a constraint on
// Person-typed subterms also fires for Actor-typed ones.
func TestSubclassSubstitutionViaISA(t *testing.T) {
	src := "rule ic_person: F(x) / ISA(x, Person) --> F(x) AND NOT ISEMPTY(FIRSTNAME(VALUE(x))) / ;"
	e := semEngine(t, src)
	// Refactor (column 2 of APPEARS_IN) is an Actor — a subtype of
	// Person — so the constraint applies.
	q := lera.Search(
		[]*term.Term{lera.Rel("APPEARS_IN")},
		lera.Ands(lera.Cmp("=", lera.Call("Name", lera.Attr(1, 2)), term.Str("Quinn"))),
		[]*term.Term{lera.Attr(1, 1)},
	)
	out := runBlock(t, e, q, "constraints")
	if !term.Contains(out, func(s *term.Term) bool { return s.Kind == term.Fun && s.Functor == "FIRSTNAME" }) {
		t.Errorf("subclass constraint not added: %s", lera.Format(out))
	}
}

// The semantic block's budget bounds augmentation (§7): a tiny limit
// stops the transitive closure early.
func TestSemanticBudgetBounds(t *testing.T) {
	cat, _ := testdb.Catalog()
	ext := rewrite.NewExternals()
	RegisterExternals(ext)
	rs := RuleSet()
	src := strings.Replace(SemanticRules,
		"block(semantic, {transitivity_eq, include_trans, eq_subst}, 200);",
		"block(semantic, {transitivity_eq, include_trans, eq_subst}, 1);", 1)
	rs = rules.MustParse(src)
	e := rewrite.New(rs, ext, cat, rewrite.Options{})
	q := lera.Ands(
		lera.Cmp("=", lera.Attr(1, 1), lera.Attr(2, 1)),
		lera.Cmp("=", lera.Attr(2, 1), lera.Attr(3, 1)),
		lera.Cmp("=", lera.Attr(3, 1), lera.Attr(4, 1)),
	)
	out, st, err := e.RunBlock(q, "semantic")
	if err != nil {
		t.Fatal(err)
	}
	if !st.BudgetExhausted {
		t.Error("budget should be exhausted")
	}
	if len(lera.Conjuncts(out)) >= 6 {
		t.Errorf("limit 1 must not reach full closure: %s", lera.Format(out))
	}
}
