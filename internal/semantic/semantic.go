// Package semantic implements the semantic rewriting of Section 6:
// integrity constraints declared in the rule language (Figure 10) are
// compiled into qualification-augmentation rules; the implicit semantic
// knowledge of Figure 11 (transitivity, equality substitution, INCLUDE
// transitivity) and the predicate simplification rules of Figure 12
// (inconsistency detection, constant folding through EVALUATE) form the
// default semantic rule base.
//
// All rules operate on the canonical qualification form ANDS(SET(...)),
// whose set semantics make augmentation idempotent — the engine's
// no-change detection plus the block budgets of §4.2 bound the process,
// exactly the trade-off the paper's Section 7 discusses.
package semantic

import (
	"fmt"
	"strings"

	"lera/internal/lera"
	"lera/internal/rewrite"
	"lera/internal/rules"
	"lera/internal/term"
	"lera/internal/types"
	"lera/internal/value"
)

// SemanticRules is the default semantic rule base: Figure 11's implicit
// knowledge (block "semantic") and Figure 12's simplifications (block
// "simplify").
const SemanticRules = `
-- Figure 11 (1): transitivity of = and of INCLUDE. The DISTINCT and
-- NOTMEMBER guards keep the augmentation from re-deriving known facts.
rule transitivity_eq:
  ANDS(SET(w*, x = y, y = z))
  / DISTINCT(x, z), NOTMEMBER(x = z, w*)
  --> ANDS(SET(w*, x = y, y = z, x = z)) / ;

rule include_trans:
  ANDS(SET(w*, INCLUDE(x, y), INCLUDE(y, z)))
  / DISTINCT(x, z), NOTMEMBER(INCLUDE(x, z), w*)
  --> ANDS(SET(w*, INCLUDE(x, y), INCLUDE(y, z), INCLUDE(x, z))) / ;

-- Figure 11 (2): equality substitution for unary predicates.
rule eq_subst:
  ANDS(SET(w*, x = y, p(x)))
  / DISTINCT(x, y), NOTMEMBER(p(y), w*)
  --> ANDS(SET(w*, x = y, p(x), p(y))) / ;

-- Figure 12: predicate simplification.
rule gt_le_incons: ANDS(SET(w*, x > y, x <= y)) --> FALSE ;
rule lt_ge_incons: ANDS(SET(w*, x < y, x >= y)) --> FALSE ;
rule eq_neq_incons: ANDS(SET(w*, x = y, x <> y)) --> FALSE ;
rule and_false: ANDS(SET(w*, FALSE)) --> FALSE ;
rule and_true: ANDS(SET(w*, TRUE)) --> ANDS(SET(w*)) ;
rule or_true: ORS(SET(w*, TRUE)) --> TRUE ;
rule or_false: ORS(SET(w*, FALSE)) --> ORS(SET(w*)) ;
rule not_true: NOT(TRUE) --> FALSE ;
rule not_false: NOT(FALSE) --> TRUE ;
rule sub_zero: x - y = 0 / ISA(x, constant), ISA(y, constant) --> x = y / ;

-- Figure 12's generic constant folding: any pure ADT function applied to
-- constants evaluates at rewrite time.
rule const_fold2: F(x, y) / ISA(x, constant), ISA(y, constant), PUREFN(F(x, y)) --> a / EVALUATE(F(x, y), a) ;
rule const_fold1: F(x) / ISA(x, constant), PUREFN(F(x)) --> a / EVALUATE(F(x), a) ;

-- Section 6.1: a membership test against a declared domain whose
-- enumeration excludes the constant is inconsistent
-- (MEMBER('Cartoon', Categories) is false).
rule member_enum_incons:
  ANDS(SET(w*, MEMBER(c, x)))
  / ISA(c, constant), ENUMEXCLUDES(c, x)
  --> FALSE ;

-- Explicit-knowledge variant: when an INCLUDE(x, dom) constraint has been
-- added (Figure 10) and the constant is outside dom, the qualification is
-- inconsistent.
rule member_include_incons:
  ANDS(SET(w*, MEMBER(c, x), INCLUDE(x, d)))
  / ISA(c, constant), ISA(d, constant), NOT MEMBER(c, d)
  --> FALSE ;

block(semantic, {transitivity_eq, include_trans, eq_subst}, 200);
block(simplify, {and_false, and_true, or_true, or_false, not_true, not_false,
                 gt_le_incons, lt_ge_incons, eq_neq_incons, sub_zero,
                 member_enum_incons, member_include_incons,
                 const_fold2, const_fold1}, inf);
`

// RuleSet parses the semantic rule base.
func RuleSet() *rules.RuleSet { return rules.MustParse(SemanticRules) }

// RegisterExternals installs the semantic externals: PUREFN, ENUMEXCLUDES
// and TYPEDSUB (used by compiled integrity constraints).
func RegisterExternals(ext *rewrite.Externals) {
	ext.RegisterConstraint("PUREFN", pureFn)
	ext.RegisterConstraint("ENUMEXCLUDES", enumExcludes)
	ext.RegisterMethod("TYPEDSUB", typedSub)
}

// pureFn is true when the instantiated application's head is a registered
// pure ADT function — constructors and the logical connectives are
// excluded, so constant folding cannot destroy qualification structure.
func pureFn(ctx *rewrite.Ctx, args []*term.Term) (bool, error) {
	if len(args) != 1 || args[0].Kind != term.Fun {
		return false, fmt.Errorf("PUREFN takes one application")
	}
	f := args[0].Functor
	if args[0].VarHead || term.IsConstructor(f) {
		return false, nil
	}
	switch f {
	case lera.EAnds, lera.EOrs, lera.ENot, lera.EAttr, lera.ECall, lera.EValue, lera.EProject:
		return false, nil
	}
	return ctx.Cat.ADTs.IsPure(f), nil
}

// enumExcludes(c, x) is true when x's type (at the match site) is an
// enumeration, or a collection of an enumeration, whose values do not
// include the constant c — the implicit domain knowledge of Section 6.1.
func enumExcludes(ctx *rewrite.Ctx, args []*term.Term) (bool, error) {
	if len(args) != 2 {
		return false, fmt.Errorf("ENUMEXCLUDES takes (const, expr)")
	}
	c, x := args[0], args[1]
	if c.Kind != term.Const || c.Val.K != value.KString {
		return false, nil
	}
	rels, err := ctx.EnclosingRels()
	if err != nil {
		return false, nil
	}
	xt, err := lera.TypeOf(x, rels, ctx.Cat)
	if err != nil || xt == nil {
		return false, nil
	}
	enum := xt
	if xt.Kind == types.Collection && xt.Elem != nil {
		enum = xt.Elem
	}
	if enum.Kind != types.Enum {
		return false, nil
	}
	return !enum.HasEnumValue(c.Val.S), nil
}

// typedSub implements TYPEDSUB(f, 'T', x): bind x to the first subterm of
// the conjunct f whose inferred type ISA T (attribute references, VALUE,
// PROJECT and CALL expressions — constants are skipped, as literals do not
// carry user types). Vetoes when f has no such subterm. This is the
// mechanism by which a Figure 10 constraint "F(x) / ISA(x, T) --> F(x) AND
// P(x)" finds its x inside an arbitrary conjunct.
func typedSub(ctx *rewrite.Ctx, args []*term.Term) (bool, error) {
	if len(args) != 3 {
		return false, fmt.Errorf("TYPEDSUB takes (conjunct, type, out)")
	}
	f := args[0]
	tname := args[1]
	out := args[2]
	if tname.Kind != term.Const || tname.Val.K != value.KString {
		return false, fmt.Errorf("TYPEDSUB: type name must be a constant")
	}
	if out.Kind != term.Var {
		return false, fmt.Errorf("TYPEDSUB: output must be an unbound variable")
	}
	want, ok := ctx.Cat.Types.Lookup(tname.Val.S)
	if !ok {
		return false, nil
	}
	rels, err := ctx.EnclosingRels()
	if err != nil {
		return false, nil
	}
	var found *term.Term
	term.Walk(f, func(s *term.Term, _ term.Path) bool {
		if s.Kind != term.Fun {
			return true
		}
		switch s.Functor {
		case lera.EAttr, lera.EValue, lera.EProject, lera.ECall:
			if t, err := lera.TypeOf(s, rels, ctx.Cat); err == nil && t != nil && ctx.Cat.Types.ISA(t, want) {
				found = s
				return false
			}
		}
		return true
	})
	if found == nil {
		return false, nil
	}
	ctx.Bind.BindVar(out.Name, found)
	return true, nil
}

// CompileConstraint compiles a Figure 10 integrity constraint
//
//	rule name: F(x) / ISA(x, T) --> F(x) AND P /
//
// into the guarded qualification-augmentation rule
//
//	rule name: ANDS(SET(w0*, f0)) / <other constraints>
//	           --> ANDS(SET(w0*, f0, P)) / TYPEDSUB(f0, 'T', x)
//
// which adds P to any qualification containing a conjunct with a
// T-typed subterm (bound to x). The paper's Figure 11(3) subclass
// substitution holds automatically because TYPEDSUB's ISA check accepts
// subtypes of T.
func CompileConstraint(r *rules.Rule) (*rules.Rule, error) {
	lhs := r.LHS
	if lhs.Kind != term.Fun || !lhs.VarHead || len(lhs.Args) != 1 || lhs.Args[0].Kind != term.Var {
		return nil, fmt.Errorf("semantic: constraint %s: left-hand side must be F(x) with a function variable", r.Name)
	}
	xName := lhs.Args[0].Name
	// Find the ISA(x, T) constraint.
	var typeName string
	var others []*term.Term
	for _, c := range r.Constraints {
		if c.Kind == term.Fun && strings.EqualFold(c.Functor, "ISA") && len(c.Args) == 2 &&
			c.Args[0].Kind == term.Var && c.Args[0].Name == xName &&
			c.Args[1].Kind == term.Const {
			typeName = c.Args[1].Val.S
			continue
		}
		others = append(others, c)
	}
	if typeName == "" {
		return nil, fmt.Errorf("semantic: constraint %s: missing ISA(%s, T) condition", r.Name, xName)
	}
	// RHS must be AND(lhs, P).
	rhs := r.RHS
	if rhs.Kind != term.Fun || rhs.Functor != "AND" || len(rhs.Args) != 2 || !term.Equal(rhs.Args[0], lhs) {
		return nil, fmt.Errorf("semantic: constraint %s: right-hand side must be %s AND <predicate>", r.Name, lhs)
	}
	pred := rhs.Args[1]

	// Fresh variable names for the guard.
	used := map[string]bool{}
	seqs := map[string]bool{}
	funs := map[string]bool{}
	for _, t := range append([]*term.Term{lhs, rhs}, r.Constraints...) {
		t.Vars(used, seqs, funs)
	}
	fresh := func(base string) string {
		for i := 0; i < 10; i++ {
			cand := base[:1] + string(rune('0'+i))
			if !used[cand] && !seqs[cand] {
				used[cand] = true
				return cand
			}
		}
		return base
	}
	wName := fresh("w0")
	fName := fresh("f0")

	newLHS := term.F(lera.EAnds, term.Set(term.SV(wName), term.V(fName)))
	newRHS := term.F(lera.EAnds, term.Set(term.SV(wName), term.V(fName), pred))
	methods := append([]*term.Term{
		term.F("TYPEDSUB", term.V(fName), term.Str(typeName), term.V(xName)),
	}, r.Methods...)
	return &rules.Rule{
		Name:        r.Name,
		LHS:         newLHS,
		Constraints: others,
		RHS:         newRHS,
		Methods:     methods,
	}, nil
}

// ParseConstraints parses Figure 10-style constraint declarations and
// compiles them; the result is a rule set with a single block
// "constraints" holding every compiled rule (bounded, per §7).
func ParseConstraints(src string, limit int) (*rules.RuleSet, error) {
	raw, err := rules.Parse(src)
	if err != nil {
		return nil, err
	}
	out := rules.NewRuleSet()
	var names []string
	for _, name := range raw.RuleOrder {
		compiled, err := CompileConstraint(raw.Rules[name])
		if err != nil {
			return nil, err
		}
		out.Rules[name] = compiled
		out.RuleOrder = append(out.RuleOrder, name)
		names = append(names, name)
	}
	out.Blocks["constraints"] = &rules.Block{Name: "constraints", Rules: names, Limit: limit}
	out.BlockOrder = append(out.BlockOrder, "constraints")
	return out, nil
}
