package rulecheck

import (
	"fmt"

	"lera/internal/catalog"
	"lera/internal/engine"
	"lera/internal/guard"
	"lera/internal/lera"
	"lera/internal/term"
	"lera/internal/types"
	"lera/internal/value"
)

// prng is a tiny deterministic generator (splitmix64). Differential
// testing must be reproducible, so no math/rand global state and no
// wall-clock seeding.
type prng struct{ state uint64 }

func newPrng(seed uint64) *prng { return &prng{state: seed*2862933555777941757 + 3037000493} }

func (p *prng) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (p *prng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(p.next() % uint64(n))
}

// Instance is a generated test database: rows per relation plus the
// object store backing any object-typed columns.
type Instance struct {
	Rows    map[string][][]value.Value
	Objects map[int64]value.Value
}

// charPool is the vocabulary of generated CHAR values; small on purpose
// so that equality predicates are selective but not empty.
var charPool = []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}

// Generate builds a small deterministic database instance for every base
// relation of the catalog. rowsPer is the target rows per relation;
// duplicate rows are retried a few times so that the set-semantics engine
// sees distinct tuples.
func Generate(cat *catalog.Catalog, seed uint64, rowsPer int) *Instance {
	inst := &Instance{Rows: map[string][][]value.Value{}, Objects: map[int64]value.Value{}}
	rng := newPrng(seed)
	oid := int64(1000)
	for _, name := range cat.RelationNames() {
		rel, _ := cat.Relation(name)
		seen := map[string]bool{}
		var rows [][]value.Value
		for i := 0; i < rowsPer; i++ {
			var row []value.Value
			for attempt := 0; attempt < 4; attempt++ {
				row = row[:0]
				for _, col := range rel.Columns {
					row = append(row, genValue(col.Type, rng, 0, inst, &oid))
				}
				if !seen[rowsKey(row)] {
					break
				}
			}
			if seen[rowsKey(row)] {
				continue
			}
			seen[rowsKey(row)] = true
			rows = append(rows, append([]value.Value(nil), row...))
		}
		inst.Rows[name] = rows
	}
	return inst
}

func rowsKey(row []value.Value) string {
	s := ""
	for _, v := range row {
		s += v.Key() + "\x1f"
	}
	return s
}

// genValue generates one deterministic value of the given type. Object
// types allocate an OID and park the tuple in the instance's object
// store, mirroring how the session loads the Figure 2 database.
func genValue(t *types.Type, rng *prng, depth int, inst *Instance, oid *int64) value.Value {
	if t == nil || depth > 3 {
		return value.Int(int64(rng.intn(10)))
	}
	switch t.Kind {
	case types.Basic:
		switch t.Name {
		case "REAL":
			// Quarter steps: exact in binary, so Key() round-trips.
			return value.Real(float64(rng.intn(40)) / 4)
		case "CHAR":
			return value.String(charPool[rng.intn(len(charPool))])
		case "BOOLEAN":
			return value.Bool(rng.intn(2) == 1)
		default: // INT, NUMERIC
			return value.Int(int64(rng.intn(10)))
		}
	case types.Enum:
		if len(t.EnumVals) == 0 {
			return value.String("?")
		}
		return value.String(t.EnumVals[rng.intn(len(t.EnumVals))])
	case types.Collection:
		n := rng.intn(3)
		elems := make([]value.Value, 0, n)
		for i := 0; i < n; i++ {
			elems = append(elems, genValue(t.Elem, rng, depth+1, inst, oid))
		}
		switch t.CollKind {
		case value.KBag:
			return value.NewBag(elems...)
		case value.KList:
			return value.NewList(elems...)
		case value.KArray:
			return value.NewArray(elems...)
		default:
			return value.NewSet(elems...)
		}
	case types.Tuple:
		fields := t.AllFields()
		names := make([]string, len(fields))
		vals := make([]value.Value, len(fields))
		for i, f := range fields {
			names[i] = f.Name
			vals[i] = genValue(f.Type, rng, depth+1, inst, oid)
		}
		tup := value.NewTuple(names, vals)
		if t.IsObject {
			id := *oid
			*oid++
			inst.Objects[id] = tup
			return value.OID(id)
		}
		return tup
	}
	return value.Int(int64(rng.intn(10)))
}

// NewDB loads a generated instance into a fresh engine over the catalog,
// with the guard limits applied to every evaluation.
func NewDB(cat *catalog.Catalog, inst *Instance, lim guard.Limits) (*engine.DB, error) {
	db := engine.New(cat)
	db.Limits = lim
	for _, name := range cat.RelationNames() {
		if err := db.Load(name, inst.Rows[name]); err != nil {
			return nil, fmt.Errorf("rulecheck: loading %s: %w", name, err)
		}
	}
	for id, obj := range inst.Objects {
		db.SetObject(id, obj)
	}
	return db, nil
}

// Query is one corpus entry: a named executable LERA term.
type Query struct {
	Name string
	Term *term.Term
}

// Corpus synthesizes a deterministic set of LERA terms over the catalog's
// base relations, shaped so that every shipped rule family has something
// to match: plain and stacked SEARCHes, FILTER/JOIN forms awaiting
// normalisation, selections over UNIONN/DIFF/INTERN/NEST, CALLs over
// object and ADT functions, inconsistent and foldable predicates, MEMBER
// tests on enum collections and a recursive FIX query for the Alexander
// reduction. Constants are drawn from the generated instance so equality
// predicates are selective but non-empty.
func Corpus(cat *catalog.Catalog, inst *Instance, seed uint64) []Query {
	var out []Query
	for _, name := range cat.RelationNames() {
		rel, _ := cat.Relation(name)
		out = append(out, relationCorpus(cat, name, rel, inst)...)
	}
	return out
}

func relationCorpus(cat *catalog.Catalog, name string, rel *catalog.Relation, inst *Instance) []Query {
	n := len(rel.Columns)
	if n == 0 {
		return nil
	}
	R := lera.Rel(name)
	projAll := make([]*term.Term, n)
	for j := 1; j <= n; j++ {
		projAll[j-1] = lera.Attr(1, j)
	}

	// Pick the first scalar (basic or enum) column as the predicate
	// target, with one present and one absent constant.
	scalar := 0
	var present, absent *term.Term
	for j, col := range rel.Columns {
		if col.Type == nil || (col.Type.Kind != types.Basic && col.Type.Kind != types.Enum) {
			continue
		}
		scalar = j + 1
		present, absent = constantsFor(col.Type, inst.Rows[name], j)
		break
	}

	q := func(qname string, t *term.Term) Query {
		return Query{Name: name + "/" + qname, Term: t}
	}
	var out []Query

	// Identity projection: the ISIDPROJ / search-elimination family.
	out = append(out, q("identity", lera.Search([]*term.Term{R}, lera.TrueQual(), projAll)))

	if scalar > 0 {
		A := lera.Attr(1, scalar)
		eq := lera.Ands(lera.Cmp("=", A, present))
		neq := lera.Ands(lera.Cmp("<>", A, absent))
		selEq := lera.Search([]*term.Term{R}, eq, projAll)

		out = append(out,
			q("select_eq", selEq),
			// FILTER with a raw binary AND: normalize + filter_to_search.
			q("filter_and", lera.Filter(R, term.F("AND",
				lera.Cmp("<>", A, absent), lera.Cmp("=", A, present)))),
			// SEARCH over SEARCH: the Figure 7 merge family.
			q("stacked", lera.Search([]*term.Term{selEq},
				lera.Ands(lera.Cmp("<>", lera.Attr(1, scalar), absent)),
				[]*term.Term{lera.Attr(1, 1)})),
			// Selections over the set operators: the Figure 8 push family.
			q("union_single", lera.Search([]*term.Term{lera.Union(R)}, lera.TrueQual(), projAll)),
			q("push_union", lera.Search([]*term.Term{lera.Union(R, selEq)}, neq, projAll)),
			q("push_diff", lera.Search([]*term.Term{lera.Diff(R, selEq)}, neq, projAll)),
			q("push_inter", lera.Search([]*term.Term{lera.Inter(R, selEq)}, neq, projAll)),
			// Binary operators awaiting SEARCH normalisation.
			q("join_op", lera.Join(R, R, lera.Ands(lera.Cmp("=", lera.Attr(1, scalar), lera.Attr(2, scalar))))),
			q("join_search", lera.Search([]*term.Term{R, R},
				lera.Ands(lera.Cmp("=", lera.Attr(1, scalar), lera.Attr(2, scalar))),
				[]*term.Term{lera.Attr(1, scalar), lera.Attr(2, scalar)})),
			// Predicate simplification: foldable and inconsistent quals.
			q("const_fold", lera.Search([]*term.Term{R},
				lera.Ands(lera.Cmp("<", term.F("+", term.Num(1), term.Num(2)), term.Num(7)), lera.Cmp("<>", A, absent)),
				projAll)),
			q("inconsistent", lera.Search([]*term.Term{R},
				lera.Ands(lera.Cmp(">", A, present), lera.Cmp("<=", A, present)),
				projAll)),
			// Equality chains: the §6 transitivity/substitution family.
			q("eq_chain", lera.Search([]*term.Term{R, R},
				lera.Ands(lera.Cmp("=", lera.Attr(1, scalar), lera.Attr(2, scalar)),
					lera.Cmp("=", lera.Attr(2, scalar), present)),
				[]*term.Term{lera.Attr(1, 1)})),
		)

		// Selection over NEST on the last column, qual on a non-nested
		// scalar column: the push_nest / REFER family.
		if n >= 2 && scalar < n {
			nest := lera.Nest(R, []int{n}, "NZ")
			nestProj := make([]*term.Term, n)
			for j := 1; j <= n; j++ {
				nestProj[j-1] = lera.Attr(1, j)
			}
			out = append(out, q("push_nest", lera.Search([]*term.Term{nest},
				lera.Ands(lera.Cmp("<>", lera.Attr(1, scalar), absent)), nestProj)))
		}
	}

	// CALL over an object/tuple column: the type-checking rule family.
	for j, col := range rel.Columns {
		t := col.Type
		if t == nil || t.Kind != types.Tuple {
			continue
		}
		for _, f := range t.AllFields() {
			if f.Type == nil || f.Type.Kind != types.Basic && f.Type.Kind != types.Enum {
				continue
			}
			out = append(out, q("call_field_"+f.Name,
				lera.Search([]*term.Term{R}, lera.TrueQual(),
					[]*term.Term{lera.Call(f.Name, lera.Attr(1, j+1))})))
			break
		}
		break
	}

	// CALL of a pure ADT function over an INT column: call_adt + EVALUATE.
	for j, col := range rel.Columns {
		if col.Type == nil || col.Type.Kind != types.Basic || col.Type.Name != "INT" && col.Type.Name != "NUMERIC" {
			continue
		}
		out = append(out, q("call_adt",
			lera.Search([]*term.Term{R},
				lera.Ands(lera.Cmp(">=", lera.Call("+", lera.Attr(1, j+1), term.Num(0)), term.Num(-1))),
				projAll)))
		break
	}

	// MEMBER of a value outside the enum: the §6.1 inconsistency family.
	for j, col := range rel.Columns {
		t := col.Type
		if t == nil || t.Kind != types.Collection || t.Elem == nil || t.Elem.Kind != types.Enum {
			continue
		}
		out = append(out, q("member_enum",
			lera.Search([]*term.Term{R},
				lera.Ands(term.F("MEMBER", term.Str("\x00no-such-"+t.Elem.Name), lera.Attr(1, j+1))),
				projAll)))
		break
	}

	// Transitive closure over the first two same-kind numeric columns,
	// wrapped in a selective SEARCH: the Alexander fixpoint family.
	if j1, j2 := numericPair(rel); j1 > 0 {
		fixName := "TCQ_" + name
		base := lera.Search([]*term.Term{R}, lera.TrueQual(),
			[]*term.Term{lera.Attr(1, j1), lera.Attr(1, j2)})
		rec := lera.Search([]*term.Term{R, lera.Rel(fixName)},
			lera.Ands(lera.Cmp("=", lera.Attr(1, j2), lera.Attr(2, 1))),
			[]*term.Term{lera.Attr(1, j1), lera.Attr(2, 2)})
		fix := lera.Fix(fixName, lera.Union(base, rec), []string{"SRC", "DST"})
		var c *term.Term
		if rows := inst.Rows[name]; len(rows) > 0 {
			c = term.C(rows[0][j1-1])
		} else {
			c = term.Num(1)
		}
		out = append(out, q("fix_tc", lera.Search([]*term.Term{fix},
			lera.Ands(lera.Cmp("=", lera.Attr(1, 1), c)),
			[]*term.Term{lera.Attr(1, 1), lera.Attr(1, 2)})))
	}
	return out
}

// constantsFor picks a present constant (from row 0 of the data, so
// equality selects something) and an absent constant (so inequality
// keeps everything) for a scalar column.
func constantsFor(t *types.Type, rows [][]value.Value, col int) (present, absent *term.Term) {
	if len(rows) > 0 {
		present = term.C(rows[0][col])
	}
	switch {
	case t.Kind == types.Enum || t.Name == "CHAR":
		if present == nil {
			present = term.Str(charPool[0])
		}
		absent = term.Str("\x00absent")
	case t.Name == "REAL":
		if present == nil {
			present = term.Flt(1)
		}
		absent = term.Flt(999983.5)
	case t.Name == "BOOLEAN":
		if present == nil {
			present = term.TrueT()
		}
		absent = term.FalseT()
	default:
		if present == nil {
			present = term.Num(1)
		}
		absent = term.Num(999983)
	}
	return present, absent
}

// numericPair returns the 1-based indices of the first two INT/NUMERIC
// columns, or (0, 0).
func numericPair(rel *catalog.Relation) (int, int) {
	first := 0
	for j, col := range rel.Columns {
		if col.Type == nil || col.Type.Kind != types.Basic {
			continue
		}
		if col.Type.Name != "INT" && col.Type.Name != "NUMERIC" {
			continue
		}
		if first == 0 {
			first = j + 1
			continue
		}
		return first, j + 1
	}
	return 0, 0
}
