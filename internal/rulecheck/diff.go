package rulecheck

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"lera/internal/catalog"
	"lera/internal/engine"
	"lera/internal/guard"
	"lera/internal/lera"
	"lera/internal/rewrite"
	"lera/internal/rules"
	"lera/internal/term"
)

// DiffOptions configures the differential tester. The zero value is
// usable: seed 1, 4 rows per relation, a per-rule block budget of 16 and
// no guard limits.
type DiffOptions struct {
	// Seed drives all data generation. Same seed, same catalog, same
	// rule base => byte-identical diagnostics.
	Seed uint64
	// RowsPerRelation is the generated database size.
	RowsPerRelation int
	// BlockBudget bounds how often a single rule may fire per corpus
	// term, so even divergent rules terminate without an error (every
	// prefix of a sound rule's applications must preserve semantics).
	BlockBudget int
	// Limits is the guard budget for each rewrite and each execution;
	// Limits.Timeout is applied per phase, exactly as a Session does.
	Limits guard.Limits
	// MaxCounterexamples stops testing a rule after this many findings
	// (default 1).
	MaxCounterexamples int
	// EndToEnd additionally runs every corpus term through the whole
	// rule base (blocks and sequence as declared), catching unsound
	// rule interactions that no single rule exhibits alone.
	EndToEnd bool
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.RowsPerRelation <= 0 {
		o.RowsPerRelation = 4
	}
	if o.BlockBudget <= 0 {
		o.BlockBudget = 16
	}
	if o.MaxCounterexamples <= 0 {
		o.MaxCounterexamples = 1
	}
	return o
}

// Diff runs differential semantic testing: for every rule, every corpus
// term the rule's left-hand side fires on is executed both before and
// after the rewrite, and the results are compared as multisets. Findings
// are returned as diagnostics (RC100-RC103); the error return is reserved
// for setup failures and context cancellation.
func Diff(ctx context.Context, rs *rules.RuleSet, ext *rewrite.Externals, cat *catalog.Catalog, opt DiffOptions) ([]Diagnostic, error) {
	opt = opt.withDefaults()
	inst := Generate(cat, opt.Seed, opt.RowsPerRelation)
	db, err := NewDB(cat, inst, opt.Limits)
	if err != nil {
		return nil, err
	}
	corpus := Corpus(cat, inst, opt.Seed)

	var ds []Diagnostic
	for _, rn := range rs.RuleOrder {
		if err := ctx.Err(); err != nil {
			return ds, err
		}
		r := rs.Rules[rn]
		found, exercised := 0, false
		for _, q := range corpus {
			if found >= opt.MaxCounterexamples {
				break
			}
			d, fired, err := diffOne(ctx, db, r, ext, cat, q, opt)
			if err != nil {
				return ds, err
			}
			exercised = exercised || fired
			if d != nil {
				ds = append(ds, *d)
				found++
			}
		}
		if !exercised {
			ds = append(ds, Diagnostic{Rule: rn, Severity: SevInfo, Code: CodeNotExercised,
				Site: ruleSite(r, ""),
				Msg:  "no generated corpus term made this rule fire; differential testing says nothing about it"})
		}
	}

	if opt.EndToEnd {
		// A structurally invalid rule set (dangling block/sequence
		// references, reported by the lint as RC008/RC009) cannot be run
		// through the engine.
		if err := rs.Validate(); err != nil {
			ds = append(ds, Diagnostic{Rule: "(all)", Severity: SevInfo, Code: CodeNotExercised,
				Msg: fmt.Sprintf("end-to-end differential testing skipped: %v", err)})
			return ds, nil
		}
		eng := rewrite.New(rs, ext, cat, rewrite.Options{Limits: opt.Limits})
		for _, q := range corpus {
			if err := ctx.Err(); err != nil {
				return ds, err
			}
			d, err := diffWhole(ctx, db, eng, q, opt)
			if err != nil {
				return ds, err
			}
			if d != nil {
				ds = append(ds, *d)
			}
		}
	}
	return ds, nil
}

// singleRuleSet wraps one rule in a finite-budget block so the rewrite
// engine applies just that rule, at most BlockBudget times.
func singleRuleSet(r *rules.Rule, budget int) *rules.RuleSet {
	rs := rules.NewRuleSet()
	rs.Rules[r.Name] = r
	rs.RuleOrder = []string{r.Name}
	b := &rules.Block{Name: "check", Rules: []string{r.Name}, Limit: budget}
	rs.Blocks["check"] = b
	rs.BlockOrder = []string{"check"}
	return rs
}

// diffOne tests one rule against one corpus term. Returns a diagnostic
// (or nil), whether the rule fired, and a hard error only on context
// cancellation.
func diffOne(ctx context.Context, db *engine.DB, r *rules.Rule, ext *rewrite.Externals, cat *catalog.Catalog, q Query, opt DiffOptions) (*Diagnostic, bool, error) {
	eng := rewrite.New(singleRuleSet(r, opt.BlockBudget), ext, cat, rewrite.Options{Limits: opt.Limits})
	rewritten, st, err := runPhase(ctx, opt.Limits, func(c context.Context) (*term.Term, *rewrite.Stats, error) {
		return eng.RunCtx(c, q.Term)
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil, false, ctx.Err()
		}
		sev := SevError
		if isBudget(err) {
			sev = SevWarn
		}
		return &Diagnostic{Rule: r.Name, Severity: sev, Code: CodeRewriteError,
			Site: ruleSite(r, q.Name),
			Msg:  fmt.Sprintf("rewrite failed on %s: %v", lera.Format(q.Term), err)}, true, nil
	}
	if st == nil || st.Applications == 0 {
		return nil, false, nil
	}

	base, errBase := evalPhase(ctx, db, opt.Limits, q.Term)
	if errBase != nil {
		// The corpus term itself is not executable here (or busted a
		// budget); nothing to compare, but the rule did fire.
		if ctx.Err() != nil {
			return nil, true, ctx.Err()
		}
		return nil, true, nil
	}
	out, errOut := evalPhase(ctx, db, opt.Limits, rewritten)
	if errOut != nil {
		if ctx.Err() != nil {
			return nil, true, ctx.Err()
		}
		sev := SevError
		if isBudget(errOut) {
			sev = SevWarn
		}
		return &Diagnostic{Rule: r.Name, Severity: sev, Code: CodeExecBroken,
			Site: ruleSite(r, q.Name),
			Msg: fmt.Sprintf("original executes but rewritten term fails: %v\n  before: %s\n  after:  %s",
				errOut, lera.Format(q.Term), lera.Format(rewritten))}, true, nil
	}
	if diff := compare(base, out); diff != "" {
		return &Diagnostic{Rule: r.Name, Severity: SevError, Code: CodeCounterexample,
			Site: ruleSite(r, q.Name),
			Msg: fmt.Sprintf("counterexample on seed-%d database: results differ (%s)\n  before: %s\n  after:  %s",
				opt.Seed, diff, lera.Format(q.Term), lera.Format(rewritten))}, true, nil
	}
	return nil, true, nil
}

// diffWhole runs one corpus term through the full rule base.
func diffWhole(ctx context.Context, db *engine.DB, eng *rewrite.Engine, q Query, opt DiffOptions) (*Diagnostic, error) {
	rewritten, _, err := runPhase(ctx, opt.Limits, func(c context.Context) (*term.Term, *rewrite.Stats, error) {
		return eng.RunCtx(c, q.Term)
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		sev := SevError
		if isBudget(err) {
			sev = SevWarn
		}
		return &Diagnostic{Rule: "(all)", Severity: sev, Code: CodeRewriteError,
			Site: q.Name, Msg: fmt.Sprintf("full-sequence rewrite failed on %s: %v", lera.Format(q.Term), err)}, nil
	}
	base, errBase := evalPhase(ctx, db, opt.Limits, q.Term)
	if errBase != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, nil
	}
	out, errOut := evalPhase(ctx, db, opt.Limits, rewritten)
	if errOut != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		sev := SevError
		if isBudget(errOut) {
			sev = SevWarn
		}
		return &Diagnostic{Rule: "(all)", Severity: sev, Code: CodeExecBroken,
			Site: q.Name,
			Msg: fmt.Sprintf("original executes but fully rewritten term fails: %v\n  before: %s\n  after:  %s",
				errOut, lera.Format(q.Term), lera.Format(rewritten))}, nil
	}
	if diff := compare(base, out); diff != "" {
		return &Diagnostic{Rule: "(all)", Severity: SevError, Code: CodeCounterexample,
			Site: q.Name,
			Msg: fmt.Sprintf("full-sequence counterexample: results differ (%s)\n  before: %s\n  after:  %s",
				diff, lera.Format(q.Term), lera.Format(rewritten))}, nil
	}
	return nil, nil
}

// runPhase applies the per-phase wall-clock budget, mirroring
// Session.rewriteGuarded.
func runPhase(ctx context.Context, lim guard.Limits, fn func(context.Context) (*term.Term, *rewrite.Stats, error)) (*term.Term, *rewrite.Stats, error) {
	if lim.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, lim.Timeout)
		defer cancel()
	}
	return fn(ctx)
}

func evalPhase(ctx context.Context, db *engine.DB, lim guard.Limits, t *term.Term) (*engine.Relation, error) {
	if lim.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, lim.Timeout)
		defer cancel()
	}
	return db.EvalCtx(ctx, t)
}

// isBudget reports whether an error is a guard budget trip rather than a
// semantic failure.
func isBudget(err error) bool {
	return errors.Is(err, guard.ErrDeadline) || errors.Is(err, guard.ErrStepBudget) ||
		errors.Is(err, guard.ErrTermSize) || errors.Is(err, guard.ErrRowBudget) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// compare diffs two relations as multisets of rows. Empty string means
// equal; otherwise a short human-readable delta.
func compare(a, b *engine.Relation) string {
	am, bm := multiset(a), multiset(b)
	if len(am) == len(bm) {
		equal := true
		for k, n := range am {
			if bm[k] != n {
				equal = false
				break
			}
		}
		if equal {
			return ""
		}
	}
	var missing, extra []string
	for k, n := range am {
		if bm[k] < n {
			missing = append(missing, k)
		}
	}
	for k, n := range bm {
		if am[k] < n {
			extra = append(extra, k)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	parts := []string{fmt.Sprintf("%d vs %d rows", relLen(a), relLen(b))}
	if len(missing) > 0 {
		parts = append(parts, fmt.Sprintf("%d row(s) lost, e.g. %s", len(missing), firstKey(missing)))
	}
	if len(extra) > 0 {
		parts = append(parts, fmt.Sprintf("%d row(s) gained, e.g. %s", len(extra), firstKey(extra)))
	}
	return strings.Join(parts, "; ")
}

func relLen(r *engine.Relation) int {
	if r == nil {
		return 0
	}
	return len(r.Rows)
}

func multiset(r *engine.Relation) map[string]int {
	out := map[string]int{}
	if r == nil {
		return out
	}
	for _, row := range r.Rows {
		out[rowsKey(row)]++
	}
	return out
}

func firstKey(keys []string) string {
	k := strings.ReplaceAll(keys[0], "\x1f", " | ")
	k = strings.ReplaceAll(k, "\x00", "")
	if len(k) > 80 {
		k = k[:80] + "…"
	}
	return strings.TrimSpace(k)
}
