package rulecheck

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"lera/internal/guard"
	"lera/internal/lopt"
	"lera/internal/rewrite"
	"lera/internal/testdb"
)

// dropQual is the canonical "statically clean, semantically broken" rule:
// it silently discards the first conjunct of a qualification. Every
// variable is bound, every symbol is vocabulary, it is size-decreasing so
// the divergence check stays quiet — only running queries through it can
// reveal the bug.
const dropQual = `
rule drop_qual: SEARCH(LIST(REL(n)), ANDS(SET(c, w*)), a) / --> SEARCH(LIST(REL(n)), ANDS(SET(w*)), a) / ;
`

func TestDiffCatchesDroppedConjunct(t *testing.T) {
	cat, err := testdb.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	rs := mustParse(t, dropQual)
	ext := rewrite.NewExternals()

	// The static lint has nothing to say at error or warn level: this
	// bug is invisible to syntactic analysis.
	for _, d := range Lint(rs, ext, cat) {
		if d.Severity >= SevWarn {
			t.Fatalf("rule should be statically clean, got: %s", d)
		}
	}

	ds, err := Diff(context.Background(), rs, ext, cat, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d := want(t, ds, CodeCounterexample, "drop_qual", SevError, "results differ")
	// The counterexample must be reproducible: it names the seed and
	// shows both terms.
	for _, frag := range []string{"seed-1", "before:", "after:", "row(s) gained"} {
		if !strings.Contains(d.Msg, frag) {
			t.Fatalf("counterexample message missing %q:\n%s", frag, d.Msg)
		}
	}
}

func TestDiffCatchesBrokenExecution(t *testing.T) {
	cat, err := testdb.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	// Rewrites every single-relation search to scan a relation that does
	// not exist: the rewritten term fails where the original ran fine.
	rs := mustParse(t, `
rule break_exec: SEARCH(LIST(REL(n)), q, a) / --> SEARCH(LIST(REL('NO_SUCH_RELATION')), q, a) / ;
`)
	ds, err := Diff(context.Background(), rs, rewrite.NewExternals(), cat, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want(t, ds, CodeExecBroken, "break_exec", SevError, "NO_SUCH_RELATION")
}

func TestDiffDeterministic(t *testing.T) {
	cat, err := testdb.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	run := func() []Diagnostic {
		rs := mustParse(t, dropQual)
		ds, err := Diff(context.Background(), rs, rewrite.NewExternals(), cat, DiffOptions{EndToEnd: true})
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical Diff runs disagree:\n%s\nvs\n%s", renderAll(a), renderAll(b))
	}
}

func TestDiffRespectsRowBudget(t *testing.T) {
	cat, err := testdb.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	rs := mustParse(t, dropQual)
	// A one-row budget makes every base execution trip the guard, so no
	// comparison can run — budget trips must never be reported as
	// semantic errors.
	ds, err := Diff(context.Background(), rs, rewrite.NewExternals(), cat, DiffOptions{
		Limits: guard.Limits{MaxRows: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if d.Severity == SevError {
			t.Fatalf("budget trip surfaced as error: %s", d)
		}
	}
}

func TestDiffCancellation(t *testing.T) {
	cat, err := testdb.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	rs := mustParse(t, dropQual)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Diff(ctx, rs, rewrite.NewExternals(), cat, DiffOptions{}); err == nil {
		t.Fatal("cancelled context must surface as an error")
	}
}

func TestDiffShippedOptimizerRulesClean(t *testing.T) {
	// The shipped logical-optimization library is the first regression
	// corpus: none of its rules may produce a counterexample or break
	// execution on the generated database.
	cat, err := testdb.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Diff(context.Background(), lopt.RuleSet(), lopt.Externals(), cat, DiffOptions{EndToEnd: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if d.Severity >= SevWarn {
			t.Fatalf("shipped rule base produced a finding:\n%s", d)
		}
	}
}
