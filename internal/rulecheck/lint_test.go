package rulecheck

import (
	"strings"
	"testing"

	"lera/internal/catalog"
	"lera/internal/rewrite"
	"lera/internal/rules"
	"lera/internal/term"
)

func mustParse(t *testing.T, src string) *rules.RuleSet {
	t.Helper()
	rs, err := rules.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return rs
}

// testExt returns externals with one registered constraint and method so
// that positive cases have something legitimate to reference.
func testExt() *rewrite.Externals {
	ext := rewrite.NewExternals()
	ext.RegisterConstraint("GOODC", func(ctx *rewrite.Ctx, args []*term.Term) (bool, error) { return true, nil })
	ext.RegisterMethod("GOODM", func(ctx *rewrite.Ctx, args []*term.Term) (bool, error) { return true, nil })
	return ext
}

// want asserts that ds contains a diagnostic for (code, rule) at the
// given severity whose message contains frag, and returns it.
func want(t *testing.T, ds []Diagnostic, code, rule string, sev Severity, frag string) Diagnostic {
	t.Helper()
	for _, d := range ds {
		if d.Code == code && d.Rule == rule && d.Severity == sev && strings.Contains(d.Msg, frag) {
			return d
		}
	}
	t.Fatalf("no %s %s diagnostic for rule %q containing %q in:\n%s", sev, code, rule, frag, renderAll(ds))
	return Diagnostic{}
}

func wantNone(t *testing.T, ds []Diagnostic, code string) {
	t.Helper()
	for _, d := range ds {
		if d.Code == code {
			t.Fatalf("unexpected %s diagnostic: %s", code, d)
		}
	}
}

func renderAll(ds []Diagnostic) string {
	var sb strings.Builder
	for _, d := range ds {
		sb.WriteString("  " + d.String() + "\n")
	}
	if sb.Len() == 0 {
		return "  (no diagnostics)\n"
	}
	return sb.String()
}

func TestLintUnboundRHSVariable(t *testing.T) {
	rs := mustParse(t, `rule broken: UNIONN(s) / --> UNIONN(z) / ;`)
	ds := Lint(rs, testExt(), catalog.New())
	want(t, ds, CodeUnboundRHS, "broken", SevError, `"z"`)
}

func TestLintUnboundRHSSeqVar(t *testing.T) {
	rs := mustParse(t, `rule broken: FILTER(r, ANDS(SET(c, w*))) / --> FILTER(r, ANDS(SET(q*))) / ;`)
	ds := Lint(rs, testExt(), catalog.New())
	want(t, ds, CodeUnboundRHS, "broken", SevError, `"q"*`)
}

func TestLintMethodBoundRHSVariableOK(t *testing.T) {
	// z appears only in the RHS but a method call mentions it, so it can
	// be bound there — no RC001.
	rs := mustParse(t, `rule ok: UNIONN(s) / --> UNIONN(z) / GOODM(s, z) ;`)
	ds := Lint(rs, testExt(), catalog.New())
	wantNone(t, ds, CodeUnboundRHS)
}

func TestLintConstraintUnboundVariableWarns(t *testing.T) {
	rs := mustParse(t, `rule loose: UNIONN(s) / z = 1 --> INTERN(s) / ;`)
	ds := Lint(rs, testExt(), catalog.New())
	want(t, ds, CodeUnboundRHS, "loose", SevWarn, "constraints run before methods")
}

func TestLintUnknownConstraint(t *testing.T) {
	rs := mustParse(t, `rule broken: UNIONN(s) / NOSUCHCONSTRAINT(s) --> INTERN(s) / ;`)
	ds := Lint(rs, testExt(), catalog.New())
	want(t, ds, CodeUnknownConstraint, "broken", SevError, `"NOSUCHCONSTRAINT"`)

	// Registered constraints, built-in forms and ADT functions are fine.
	ok := mustParse(t, `rule fine: UNIONN(s) / AND(GOODC(s), NOT(ISEMPTY(s))) --> INTERN(s) / ;`)
	wantNone(t, Lint(ok, testExt(), catalog.New()), CodeUnknownConstraint)
}

func TestLintUnknownMethod(t *testing.T) {
	rs := mustParse(t, `rule broken: UNIONN(s) / --> INTERN(s) / NOSUCHMETHOD(s) ;`)
	ds := Lint(rs, testExt(), catalog.New())
	want(t, ds, CodeUnknownMethod, "broken", SevError, `"NOSUCHMETHOD"`)
}

func TestLintArityMismatch(t *testing.T) {
	// JOIN's declared arity is 3.
	rs := mustParse(t, `rule broken: JOIN(a, b) / --> JOIN(b, a) / ;`)
	ds := Lint(rs, testExt(), catalog.New())
	want(t, ds, CodeArity, "broken", SevWarn, "declared arity is 3")
}

func TestLintArityInconsistentWithinRule(t *testing.T) {
	rs := mustParse(t, `rule broken: UNIONN(MYFN(a)) / --> UNIONN(MYFN(a, a)) / ;`)
	ds := Lint(rs, testExt(), catalog.New())
	want(t, ds, CodeArity, "broken", SevWarn, "inconsistent arities")
}

func TestLintUnknownSymbol(t *testing.T) {
	rs := mustParse(t, `rule odd: UNIONN(FROBNICATE(a)) / --> UNIONN(a) / ;`)
	ds := Lint(rs, testExt(), catalog.New())
	want(t, ds, CodeUnknownSymbol, "odd", SevInfo, `"FROBNICATE"`)

	// LERA vocabulary, registered externals and ADT builtins are known.
	ok := mustParse(t, `rule fine: SEARCH(LIST(REL(n)), q, a) / --> FILTER(REL(n), q) / ;`)
	wantNone(t, Lint(ok, testExt(), catalog.New()), CodeUnknownSymbol)
}

func TestLintDivergentSelfCycle(t *testing.T) {
	// Identity rewrite with no guard: warn-level divergence.
	rs := mustParse(t, `rule spin: UNIONN(s) / --> UNIONN(s) / ;`)
	ds := Lint(rs, testExt(), catalog.New())
	want(t, ds, CodeDivergence, "spin", SevWarn, "no constraints or methods guard it")

	// The same cycle behind a constraint degrades to info: the guard is
	// assumed to break the loop, block budgets catch it if not.
	guarded := mustParse(t, `rule churn: UNIONN(s) / GOODC(s) --> UNIONN(s) / ;`)
	ds = Lint(guarded, testExt(), catalog.New())
	want(t, ds, CodeDivergence, "churn", SevInfo, "constraints/methods must prevent re-application")

	// A size-decreasing rule never triggers RC006.
	dec := mustParse(t, `rule shrink: INTERN(INTERN(s)) / --> INTERN(s) / ;`)
	wantNone(t, Lint(dec, testExt(), catalog.New()), CodeDivergence)
}

func TestLintDuplicateListing(t *testing.T) {
	rs := mustParse(t, `
rule a: UNIONN(s) / --> INTERN(s) / ;
block(b, {a, a}, 1);
`)
	ds := Lint(rs, testExt(), catalog.New())
	want(t, ds, CodeShadowed, "b", SevWarn, "more than once")
}

func TestLintShadowedRule(t *testing.T) {
	rs := mustParse(t, `
rule first:  UNIONN(s) / --> INTERN(s) / ;
rule second: UNIONN(s) / --> DIFF(s, s) / ;
block(b, {first, second}, 1);
`)
	ds := Lint(rs, testExt(), catalog.New())
	want(t, ds, CodeShadowed, "second", SevWarn, `shadows`)
}

func TestLintUnknownBlockInSeq(t *testing.T) {
	// The parser does not resolve seq -> block references (Validate
	// does), so the lint must catch the dangling name.
	rs := mustParse(t, `
rule a: UNIONN(s) / --> INTERN(s) / ;
block(b, {a}, 1);
seq({b, ghost}, 1);
`)
	ds := Lint(rs, testExt(), catalog.New())
	want(t, ds, CodeUnknownBlock, "", SevError, `"ghost"`)
}

func TestLintUnknownRuleInBlock(t *testing.T) {
	// Parse rejects this, so build the rule set programmatically — the
	// lint must still catch it for rule bases assembled in Go.
	rs := rules.NewRuleSet()
	rs.Blocks["b"] = &rules.Block{Name: "b", Rules: []string{"ghost"}, Limit: 1}
	rs.BlockOrder = []string{"b"}
	ds := Lint(rs, testExt(), catalog.New())
	want(t, ds, CodeUnknownRule, "b", SevError, `"ghost"`)
}

func TestLintDeadRule(t *testing.T) {
	rs := mustParse(t, `
rule used:   UNIONN(s) / --> INTERN(s) / ;
rule orphan: INTERN(INTERN(s)) / --> INTERN(s) / ;
block(b, {used}, 1);
`)
	ds := Lint(rs, testExt(), catalog.New())
	want(t, ds, CodeDeadRule, "orphan", SevInfo, "never fire")

	// Without any blocks the whole rule set is one implicit block, so no
	// rule is dead.
	free := mustParse(t, `rule solo: INTERN(INTERN(s)) / --> INTERN(s) / ;`)
	wantNone(t, Lint(free, testExt(), catalog.New()), CodeDeadRule)
}

func TestLintNilExternalsAndCatalogDegrade(t *testing.T) {
	// With no externals/catalog the lint must not panic and must not
	// invent RC002/RC003 errors it cannot substantiate... except RC003,
	// which still fires for non-call methods; here everything resolves.
	rs := mustParse(t, `rule r: UNIONN(s) / GOODC(s) --> INTERN(s) / ;`)
	ds := Lint(rs, nil, nil)
	want(t, ds, CodeUnknownConstraint, "r", SevError, `"GOODC"`)
}

func TestLintSitesCarryPositions(t *testing.T) {
	rs := mustParse(t, `
rule broken: UNIONN(s) / --> UNIONN(z) / ;
`)
	ds := Lint(rs, testExt(), catalog.New())
	d := want(t, ds, CodeUnboundRHS, "broken", SevError, `"z"`)
	if !strings.HasPrefix(d.Site, "2:1") {
		t.Fatalf("diagnostic site %q does not carry the rule position 2:1", d.Site)
	}
}

func TestDiagnosticHelpers(t *testing.T) {
	ds := []Diagnostic{
		{Rule: "a", Severity: SevError, Code: CodeUnboundRHS, Msg: "x"},
		{Rule: "b", Severity: SevWarn, Code: CodeArity, Msg: "y"},
		{Rule: "c", Severity: SevInfo, Code: CodeArity, Msg: "z"},
	}
	if !HasErrors(ds) {
		t.Fatal("HasErrors should be true")
	}
	if n := Count(ds, SevWarn); n != 1 {
		t.Fatalf("Count(warn) = %d, want 1", n)
	}
	if got := len(Filter(ds, CodeArity)); got != 2 {
		t.Fatalf("Filter(RC004) = %d entries, want 2", got)
	}
	if !HasErrors(ds[:1]) || HasErrors(ds[1:]) {
		t.Fatal("HasErrors severity threshold wrong")
	}
}
