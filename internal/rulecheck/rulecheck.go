// Package rulecheck vets a rewrite-rule base before it touches production
// queries. The paper's extensibility pitch is that a database implementor
// grows the optimizer by adding rules, never by recompiling the engine
// (§4) — which means a buggy rule silently corrupts every query it
// matches. rulecheck closes that gap with two independent halves:
//
//   - Static analysis (Lint): per-rule lints over a parsed rules.RuleSet —
//     unbound right-hand-side variables, constraints and methods that name
//     externals not registered in rewrite.Externals, function symbols with
//     inconsistent arity or unknown to the LERA/catalog vocabulary,
//     non-size-decreasing self-cycles (possible divergence), duplicate or
//     shadowed rules within a block, and dangling block/rule references.
//
//   - Differential semantic testing (Diff): generate a small deterministic
//     database from the catalog schemas, synthesize LERA terms the rules
//     match, execute the original and the rewritten term through
//     internal/engine under guard.Limits, and compare the results as
//     multisets. A counterexample — a term plus a database on which the
//     two plans disagree — is the diagnostic.
//
// Both halves report structured Diagnostics; see the code constants for
// the catalogue. docs/RULES.md ("Validating your rules") walks through a
// deliberately broken rule per check.
package rulecheck

import (
	"encoding/json"
	"fmt"
)

// Severity grades a diagnostic.
type Severity int

// Severities, least to most severe.
const (
	// SevInfo is advisory: the rule is unusual but may well be intended
	// (an open-vocabulary symbol, a guarded self-cycle, a dead rule).
	SevInfo Severity = iota
	// SevWarn is a likely mistake that the engine's guards still contain
	// (possible divergence, arity drift, a shadowed rule).
	SevWarn
	// SevError is a rule that cannot work as written or demonstrably
	// changes query semantics.
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarn:
		return "warn"
	case SevError:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// MarshalJSON renders the severity as its lowercase name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Diagnostic codes. RC0xx come from the static analysis, RC1xx from the
// differential tester.
const (
	// CodeUnboundRHS: a right-hand-side variable is bound by neither the
	// left-hand side nor any method call (methods may bind outputs).
	CodeUnboundRHS = "RC001"
	// CodeUnknownConstraint: a constraint names an external that is not
	// registered, not a built-in form (AND/OR/NOT/ISA/comparison) and not
	// a ground-evaluable ADT function.
	CodeUnknownConstraint = "RC002"
	// CodeUnknownMethod: a method call names an unregistered method.
	CodeUnknownMethod = "RC003"
	// CodeArity: a function symbol is applied with inconsistent arity
	// across the rule, or with an arity the LERA vocabulary / ADT library
	// fixes differently.
	CodeArity = "RC004"
	// CodeUnknownSymbol: a function symbol is unknown to the LERA
	// vocabulary, the catalog's ADT library and the registered externals.
	// Advisory only — implementors register new ADTs at runtime.
	CodeUnknownSymbol = "RC005"
	// CodeDivergence: the left-hand side matches (a skolemized copy of)
	// the rule's own right-hand side and the rule does not decrease term
	// size — a self-cycle that only budgets can stop.
	CodeDivergence = "RC006"
	// CodeShadowed: a block lists a rule twice, or two rules in one block
	// have identical left-hand sides and constraints (the later one can
	// only fire when the earlier one's methods veto).
	CodeShadowed = "RC007"
	// CodeUnknownBlock: the sequence references an undeclared block.
	CodeUnknownBlock = "RC008"
	// CodeUnknownRule: a block references an undeclared rule.
	CodeUnknownRule = "RC009"
	// CodeDeadRule: a rule is declared but referenced by no block, so the
	// sequenced optimizer can never apply it.
	CodeDeadRule = "RC010"

	// CodeCounterexample: the original and the rewritten term produced
	// different results on a generated database.
	CodeCounterexample = "RC100"
	// CodeExecBroken: the original term executed but the rewritten term
	// failed to.
	CodeExecBroken = "RC101"
	// CodeNotExercised: no generated corpus term made the rule fire; the
	// differential tester has nothing to say about it.
	CodeNotExercised = "RC102"
	// CodeRewriteError: the rewrite engine itself errored while applying
	// the rule (an external panicked or a budget tripped mid-rewrite).
	CodeRewriteError = "RC103"
	// CodeEngineDivergence: the engine disagreed with itself — two
	// evaluation variants (naive/semi-naive fixpoint mode, serial/parallel
	// worker pool) produced different results for the same term on the
	// same generated database (enginediff.go).
	CodeEngineDivergence = "RC104"
)

// Diagnostic is one finding about one rule (or about the rule-base
// structure, in which case Rule may be empty or name a block).
type Diagnostic struct {
	// Rule is the rule the finding is about ("(all)" for whole-rule-base
	// differential findings, a block name for block-structure findings).
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	Code     string   `json:"code"`
	// Site locates the finding: a source position ("12:3") when the rule
	// carries one, plus the rule part ("rhs", "constraint 2", "method 1",
	// "block push", "seq") or the corpus query a counterexample came from.
	Site string `json:"site,omitempty"`
	Msg  string `json:"msg"`
}

func (d Diagnostic) String() string {
	site := ""
	if d.Site != "" {
		site = " (" + d.Site + ")"
	}
	who := d.Rule
	if who == "" {
		who = "rule base"
	}
	return fmt.Sprintf("%s %s %s%s: %s", d.Severity, d.Code, who, site, d.Msg)
}

// HasErrors reports whether any diagnostic is SevError.
func HasErrors(ds []Diagnostic) bool {
	for _, d := range ds {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}

// Count returns how many diagnostics have the given severity.
func Count(ds []Diagnostic, sev Severity) int {
	n := 0
	for _, d := range ds {
		if d.Severity == sev {
			n++
		}
	}
	return n
}

// Filter returns the diagnostics with the given code.
func Filter(ds []Diagnostic, code string) []Diagnostic {
	var out []Diagnostic
	for _, d := range ds {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}
