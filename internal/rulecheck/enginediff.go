package rulecheck

// Engine differential harness: the generated corpus is executed under
// every evaluation variant the engine offers — the batched engine and the
// tuple-at-a-time oracle, each in naive and semi-naive fixpoint mode, each
// serially and on a worker pool — and the results are cross-checked.
// Mode pairs must agree as multisets (row order is not part of the
// fixpoint-mode contract); serial/parallel pairs of the same engine and
// mode, and batch/row pairs of the same mode, must agree bit-for-bit,
// rows in the same order — parallel evaluation promises determinism and
// the batched engine promises oracle bit-identity (docs/PERF.md). This is
// the random-corpus half of the parallel and engine differential gates;
// the golden Figure 3–12 half lives in internal/core.

import (
	"context"
	"fmt"

	"lera/internal/catalog"
	"lera/internal/engine"
	"lera/internal/guard"
	"lera/internal/lera"
)

// EngineDiffOptions configures the engine differential harness. The zero
// value is usable: seed 1, 4 rows per relation, 4 workers, default batch
// size, no limits.
type EngineDiffOptions struct {
	// Seed drives the data and corpus generation (same contract as
	// DiffOptions.Seed).
	Seed uint64
	// RowsPerRelation is the generated database size.
	RowsPerRelation int
	// Parallelism is the pool size of the parallel variants (minimum 2 to
	// actually exercise worker goroutines).
	Parallelism int
	// BatchSize is the batch granularity of the batched variants
	// (0 = engine.DefaultBatchSize). Results must not depend on it — run
	// the harness at several values to prove that.
	BatchSize int
	// Limits is the guard budget applied to every evaluation.
	Limits guard.Limits
	// SpillDir, when set, adds four spill-forced variants: the batched
	// variants (both fixpoint modes, serial and parallel) re-run with
	// Limits.MaxMemBytes = SpillMaxMem and this spill directory armed, so
	// join builds, dedup passes and seen-sets all take the out-of-core
	// path. Their outputs must stay bit-identical to the unlimited-memory
	// batched runs — the spill half of the engine differential gate
	// (docs/PERF.md, "Memory governor & spill").
	SpillDir string
	// SpillMaxMem is the per-operator memory grant of the spill variants.
	// 0 means 1 byte: every governed structure spills immediately.
	SpillMaxMem int64
}

func (o EngineDiffOptions) withDefaults() EngineDiffOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.RowsPerRelation <= 0 {
		o.RowsPerRelation = 4
	}
	if o.Parallelism < 2 {
		o.Parallelism = 4
	}
	return o
}

// engineVariant is one way of running the engine.
type engineVariant struct {
	name  string
	mode  engine.FixMode
	par   int
	row   bool // tuple-at-a-time oracle instead of the batched engine
	spill bool // memory governor armed with a tiny grant + spill dir
}

// EngineDiff executes every corpus term under all eight engine variants
// (twelve when SpillDir arms the spill-forced runs) and reports
// divergence as RC104 diagnostics. The error return is reserved for
// setup failures and context cancellation.
func EngineDiff(ctx context.Context, cat *catalog.Catalog, opt EngineDiffOptions) ([]Diagnostic, error) {
	opt = opt.withDefaults()
	inst := Generate(cat, opt.Seed, opt.RowsPerRelation)
	corpus := Corpus(cat, inst, opt.Seed)
	variants := []engineVariant{
		{"batch/naive/serial", engine.Naive, 1, false, false},
		{"batch/semi-naive/serial", engine.SemiNaive, 1, false, false},
		{"batch/naive/parallel", engine.Naive, opt.Parallelism, false, false},
		{"batch/semi-naive/parallel", engine.SemiNaive, opt.Parallelism, false, false},
		{"row/naive/serial", engine.Naive, 1, true, false},
		{"row/semi-naive/serial", engine.SemiNaive, 1, true, false},
		{"row/naive/parallel", engine.Naive, opt.Parallelism, true, false},
		{"row/semi-naive/parallel", engine.SemiNaive, opt.Parallelism, true, false},
	}
	if opt.SpillDir != "" {
		variants = append(variants,
			engineVariant{"batch/naive/serial/spill", engine.Naive, 1, false, true},
			engineVariant{"batch/semi-naive/serial/spill", engine.SemiNaive, 1, false, true},
			engineVariant{"batch/naive/parallel/spill", engine.Naive, opt.Parallelism, false, true},
			engineVariant{"batch/semi-naive/parallel/spill", engine.SemiNaive, opt.Parallelism, false, true},
		)
	}
	spillMem := opt.SpillMaxMem
	if spillMem <= 0 {
		spillMem = 1
	}
	limsOf := func(v engineVariant) guard.Limits {
		lims := opt.Limits
		if v.spill {
			lims.MaxMemBytes = spillMem
		}
		return lims
	}
	dbs := make([]*engine.DB, len(variants))
	for i, v := range variants {
		db, err := NewDB(cat, inst, limsOf(v))
		if err != nil {
			return nil, err
		}
		db.Mode = v.mode
		db.Parallelism = v.par
		db.RowEngine = v.row
		db.BatchSize = opt.BatchSize
		if v.spill {
			db.SpillDir = opt.SpillDir
		}
		dbs[i] = db
	}

	var ds []Diagnostic
	report := func(q Query, a, b engineVariant, detail string) {
		ds = append(ds, Diagnostic{Rule: "(engine)", Severity: SevError, Code: CodeEngineDivergence,
			Site: q.Name,
			Msg: fmt.Sprintf("seed-%d database: %s and %s diverge on %s: %s",
				opt.Seed, a.name, b.name, lera.Format(q.Term), detail)})
	}
	// Bit-exact pairs: same engine and mode, serial vs parallel (parallel
	// determinism), and same mode serial, batch vs row (engine oracle
	// identity). Exactness composes: together these pin all eight
	// variants' successful outputs to the serial row oracle's, up to the
	// fixpoint-mode multiset tolerance.
	exactPairs := [][2]int{
		{0, 2}, {1, 3}, // batch: serial vs parallel
		{4, 6}, {5, 7}, // row: serial vs parallel
		{0, 4}, {1, 5}, // serial: batch vs row
	}
	if len(variants) > 8 {
		// Spill determinism: the spill-forced runs must match the
		// unlimited-memory batched runs bit for bit (and each other across
		// pool sizes) — out-of-core processing is an implementation detail,
		// never a semantic one.
		exactPairs = append(exactPairs,
			[2]int{0, 8}, [2]int{1, 9}, // serial batch: unlimited vs spill
			[2]int{8, 10}, [2]int{9, 11}, // spill: serial vs parallel
		)
	}
	for _, q := range corpus {
		if err := ctx.Err(); err != nil {
			return ds, err
		}
		rels := make([]*engine.Relation, len(variants))
		errs := make([]error, len(variants))
		for i := range variants {
			rels[i], errs[i] = evalPhase(ctx, dbs[i], limsOf(variants[i]), q.Term)
		}
		// Success parity holds across every exact pair: the cumulative row
		// account is order-independent, so a budget trips under the pool
		// (or in batches) iff it trips in the serial row loop.
		for _, pair := range exactPairs {
			a, b := pair[0], pair[1]
			if (errs[a] == nil) != (errs[b] == nil) {
				report(q, variants[a], variants[b], fmt.Sprintf("%v vs %v", errs[a], errs[b]))
				continue
			}
			if errs[a] != nil {
				continue
			}
			if d := orderedDiff(rels[a], rels[b]); d != "" {
				report(q, variants[a], variants[b], d)
			}
		}
		// Cross-mode agreement as multisets. The modes do different
		// amounts of work, so under a tight budget one may legitimately
		// trip where the other converges — only compare when both
		// succeed; a semantic failure in exactly one mode still reports.
		if errs[0] != nil && errs[1] != nil {
			continue
		}
		if (errs[0] == nil) != (errs[1] == nil) {
			if !isBudget(errs[0]) && !isBudget(errs[1]) {
				report(q, variants[0], variants[1], fmt.Sprintf("%v vs %v", errs[0], errs[1]))
			}
			continue
		}
		if diff := compare(rels[0], rels[1]); diff != "" {
			report(q, variants[0], variants[1], diff)
		}
	}
	return ds, nil
}

// orderedDiff compares two relations row by row; empty string means
// identical, order included.
func orderedDiff(a, b *engine.Relation) string {
	if len(a.Rows) != len(b.Rows) {
		return fmt.Sprintf("%d vs %d rows", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if rowsKey(a.Rows[i]) != rowsKey(b.Rows[i]) {
			return fmt.Sprintf("row %d differs", i)
		}
	}
	return ""
}
