package rulecheck

import (
	"context"
	"testing"

	"lera/internal/guard"
	"lera/internal/testdb"
)

// TestEngineModesAgree is the random-corpus differential gate: on several
// seeded databases, all eight engine variants (batch/row × naive/semi-
// naive × serial/parallel) must agree on every generated term — as
// multisets across fixpoint modes, bit-for-bit between serial/parallel
// runs and between the batched engine and the row oracle.
func TestEngineModesAgree(t *testing.T) {
	cat, err := testdb.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 7, 42} {
		ds, err := EngineDiff(context.Background(), cat, EngineDiffOptions{
			Seed:            seed,
			RowsPerRelation: 6,
			Parallelism:     4,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, d := range ds {
			t.Errorf("seed %d: %s", seed, d)
		}
	}
}

// TestEngineModesAgreeUnderLimits re-runs the gate with a guard budget in
// force: budget trips must be consistent between a mode's serial and
// parallel runs, and whatever converges must still agree.
func TestEngineModesAgreeUnderLimits(t *testing.T) {
	cat, err := testdb.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := EngineDiff(context.Background(), cat, EngineDiffOptions{
		Seed:            3,
		RowsPerRelation: 6,
		Parallelism:     4,
		Limits:          guard.Limits{MaxRows: 200, MaxFixIterations: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		t.Errorf("%s", d)
	}
}

// TestEngineAgreesUnderSpill is the spill half of the differential gate
// (ISSUE 10 acceptance): with a one-byte memory grant and a spill
// directory armed, every join build, dedup pass and fixpoint seen-set in
// the spill-forced variants goes out of core, and the results must still
// be bit-identical to the unlimited-memory batched runs — at degenerate
// and whole-input batch sizes, serial and on a pool.
func TestEngineAgreesUnderSpill(t *testing.T) {
	cat, err := testdb.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range []int{1, 1024} {
		ds, err := EngineDiff(context.Background(), cat, EngineDiffOptions{
			Seed:            5,
			RowsPerRelation: 6,
			Parallelism:     4,
			BatchSize:       bs,
			SpillDir:        t.TempDir(),
		})
		if err != nil {
			t.Fatalf("batch size %d: %v", bs, err)
		}
		for _, d := range ds {
			t.Errorf("batch size %d: %s", bs, d)
		}
	}
}

// TestEngineAgreesAcrossBatchSizes re-runs the gate at degenerate and
// large batch granularities: batch size must never change any output —
// size 1 degenerates to per-row batches, 2 exercises every partial-batch
// boundary, 1024 covers whole-input batches on this corpus.
func TestEngineAgreesAcrossBatchSizes(t *testing.T) {
	cat, err := testdb.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range []int{1, 2, 1024} {
		ds, err := EngineDiff(context.Background(), cat, EngineDiffOptions{
			Seed:            11,
			RowsPerRelation: 5,
			Parallelism:     4,
			BatchSize:       bs,
		})
		if err != nil {
			t.Fatalf("batch size %d: %v", bs, err)
		}
		for _, d := range ds {
			t.Errorf("batch size %d: %s", bs, d)
		}
	}
}
