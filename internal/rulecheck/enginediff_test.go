package rulecheck

import (
	"context"
	"testing"

	"lera/internal/guard"
	"lera/internal/testdb"
)

// TestEngineModesAgree is the random-corpus differential gate: on several
// seeded databases, naive, semi-naive and parallel evaluation must agree
// on every generated term — as multisets across modes, bit-for-bit
// between a mode's serial and parallel runs.
func TestEngineModesAgree(t *testing.T) {
	cat, err := testdb.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 7, 42} {
		ds, err := EngineDiff(context.Background(), cat, EngineDiffOptions{
			Seed:            seed,
			RowsPerRelation: 6,
			Parallelism:     4,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, d := range ds {
			t.Errorf("seed %d: %s", seed, d)
		}
	}
}

// TestEngineModesAgreeUnderLimits re-runs the gate with a guard budget in
// force: budget trips must be consistent between a mode's serial and
// parallel runs, and whatever converges must still agree.
func TestEngineModesAgreeUnderLimits(t *testing.T) {
	cat, err := testdb.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := EngineDiff(context.Background(), cat, EngineDiffOptions{
		Seed:            3,
		RowsPerRelation: 6,
		Parallelism:     4,
		Limits:          guard.Limits{MaxRows: 200, MaxFixIterations: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		t.Errorf("%s", d)
	}
}
