package rulecheck

import (
	"fmt"
	"sort"
	"strings"

	"lera/internal/catalog"
	"lera/internal/lera"
	"lera/internal/rewrite"
	"lera/internal/rules"
	"lera/internal/term"
)

// leraArity fixes the arity of the LERA operator and expression
// vocabulary (internal/lera) plus the fixed-arity rule-language forms.
// Symbols with variable arity (CALL, AND, OR in qualifications) are
// deliberately absent.
var leraArity = map[string]int{
	lera.OpRel: 1, lera.OpSearch: 3, lera.OpFilter: 2, lera.OpJoin: 3,
	lera.OpUnion: 1, lera.OpInter: 1, lera.OpDiff: 2,
	lera.OpFix: 3, lera.OpNest: 3, lera.OpUnnest: 2, lera.OpLet: 3,
	lera.EAttr: 2, lera.EValue: 1, lera.EProject: 2,
	lera.EAnds: 1, lera.EOrs: 1, lera.ENot: 1,
	"ISA": 2, "NEG": 1,
	"=": 2, "<>": 2, "<": 2, ">": 2, "<=": 2, ">=": 2,
}

// variadicVocab are known symbols with no fixed arity (the rule language
// writes AND/OR as binary but the evaluator folds them variadically).
var variadicVocab = map[string]bool{
	lera.ECall: true, "AND": true, "OR": true,
}

func isComparison(f string) bool {
	switch f {
	case "=", "<>", "<", ">", "<=", ">=":
		return true
	}
	return false
}

// Lint statically analyses a rule base. ext and cat are optional: a nil
// Externals skips the registered-external checks (RC002/RC003 degrade to
// vocabulary checks), a nil Catalog skips the ADT-library lookups.
func Lint(rs *rules.RuleSet, ext *rewrite.Externals, cat *catalog.Catalog) []Diagnostic {
	var ds []Diagnostic

	// Block structure: dangling rule references, duplicate listings,
	// shadowed rules (RC007/RC009).
	for _, bn := range rs.BlockOrder {
		b := rs.Blocks[bn]
		seen := map[string]bool{}
		for _, rn := range b.Rules {
			if _, ok := rs.Rules[rn]; !ok {
				ds = append(ds, Diagnostic{Rule: bn, Severity: SevError, Code: CodeUnknownRule,
					Site: blockSite(b), Msg: fmt.Sprintf("block %q references unknown rule %q", bn, rn)})
				continue
			}
			if seen[rn] {
				ds = append(ds, Diagnostic{Rule: bn, Severity: SevWarn, Code: CodeShadowed,
					Site: blockSite(b), Msg: fmt.Sprintf("block %q lists rule %q more than once", bn, rn)})
			}
			seen[rn] = true
		}
		for i := 1; i < len(b.Rules); i++ {
			ri, ok := rs.Rules[b.Rules[i]]
			if !ok {
				continue
			}
			for j := 0; j < i; j++ {
				rj, ok := rs.Rules[b.Rules[j]]
				if !ok || b.Rules[i] == b.Rules[j] {
					continue
				}
				if sameGuards(rj, ri) {
					ds = append(ds, Diagnostic{Rule: b.Rules[i], Severity: SevWarn, Code: CodeShadowed,
						Site: blockSite(b),
						Msg:  fmt.Sprintf("rule %q in block %q has the same left-hand side and constraints as earlier rule %q, which shadows it", b.Rules[i], bn, b.Rules[j])})
					break
				}
			}
		}
	}

	// Sequence structure (RC008).
	if rs.Sequence != nil {
		for _, bn := range rs.Sequence.Blocks {
			if _, ok := rs.Blocks[bn]; !ok {
				ds = append(ds, Diagnostic{Severity: SevError, Code: CodeUnknownBlock,
					Site: seqSite(rs.Sequence), Msg: fmt.Sprintf("seq references unknown block %q", bn)})
			}
		}
	}

	// Dead rules (RC010): only meaningful once blocks exist — a rule set
	// with no blocks runs as one implicit all-rules block.
	inBlock := map[string]bool{}
	for _, bn := range rs.BlockOrder {
		for _, rn := range rs.Blocks[bn].Rules {
			inBlock[rn] = true
		}
	}
	for _, rn := range rs.RuleOrder {
		r := rs.Rules[rn]
		if len(rs.Blocks) > 0 && !inBlock[rn] {
			ds = append(ds, Diagnostic{Rule: rn, Severity: SevInfo, Code: CodeDeadRule,
				Site: ruleSite(r, ""), Msg: "rule is not referenced by any block and can never fire"})
		}
		ds = append(ds, lintRule(r, ext, cat)...)
	}
	return ds
}

// sameGuards reports whether two rules have equal left-hand sides and
// equal constraint lists — the earlier one then matches whenever the
// later one would.
func sameGuards(a, b *rules.Rule) bool {
	if !term.Equal(a.LHS, b.LHS) || len(a.Constraints) != len(b.Constraints) {
		return false
	}
	for i := range a.Constraints {
		if !term.Equal(a.Constraints[i], b.Constraints[i]) {
			return false
		}
	}
	return true
}

func ruleSite(r *rules.Rule, part string) string {
	pos := ""
	if r.Line > 0 {
		pos = fmt.Sprintf("%d:%d", r.Line, r.Col)
	}
	switch {
	case pos == "":
		return part
	case part == "":
		return pos
	default:
		return pos + " " + part
	}
}

func blockSite(b *rules.Block) string {
	if b.Line > 0 {
		return fmt.Sprintf("%d:%d", b.Line, b.Col)
	}
	return ""
}

func seqSite(s *rules.Seq) string {
	if s.Line > 0 {
		return fmt.Sprintf("%d:%d", s.Line, s.Col)
	}
	return "seq"
}

func lintRule(r *rules.Rule, ext *rewrite.Externals, cat *catalog.Catalog) []Diagnostic {
	var ds []Diagnostic

	// RC001: every RHS variable must be bound by the LHS or appear in a
	// method call (methods such as SUBSTITUTE and EVALUATE bind outputs;
	// constraints cannot bind).
	lv, lsq, lf := map[string]bool{}, map[string]bool{}, map[string]bool{}
	r.LHS.Vars(lv, lsq, lf)
	bv, bsq, bf := copySet(lv), copySet(lsq), copySet(lf)
	for _, m := range r.Methods {
		m.Vars(bv, bsq, bf)
	}
	rv, rsq, rf := map[string]bool{}, map[string]bool{}, map[string]bool{}
	r.RHS.Vars(rv, rsq, rf)
	for _, n := range sortedKeys(rv) {
		if !bv[n] {
			ds = append(ds, Diagnostic{Rule: r.Name, Severity: SevError, Code: CodeUnboundRHS,
				Site: ruleSite(r, "rhs"),
				Msg:  fmt.Sprintf("right-hand-side variable %q is bound by neither the left-hand side nor any method", n)})
		}
	}
	for _, n := range sortedKeys(rsq) {
		if !bsq[n] {
			ds = append(ds, Diagnostic{Rule: r.Name, Severity: SevError, Code: CodeUnboundRHS,
				Site: ruleSite(r, "rhs"),
				Msg:  fmt.Sprintf("right-hand-side collection variable %q* is bound by neither the left-hand side nor any method", n)})
		}
	}
	for _, n := range sortedKeys(rf) {
		if !bf[n] {
			ds = append(ds, Diagnostic{Rule: r.Name, Severity: SevError, Code: CodeUnboundRHS,
				Site: ruleSite(r, "rhs"),
				Msg:  fmt.Sprintf("right-hand-side function variable %q is bound by neither the left-hand side nor any method", n)})
		}
	}

	// Constraints run before methods, so they may only use LHS bindings.
	for i, c := range r.Constraints {
		cv, csq, cf := map[string]bool{}, map[string]bool{}, map[string]bool{}
		c.Vars(cv, csq, cf)
		for _, n := range sortedKeys(cv) {
			if !lv[n] {
				ds = append(ds, Diagnostic{Rule: r.Name, Severity: SevWarn, Code: CodeUnboundRHS,
					Site: ruleSite(r, fmt.Sprintf("constraint %d", i+1)),
					Msg:  fmt.Sprintf("constraint references variable %q that the left-hand side does not bind (constraints run before methods)", n)})
			}
		}
	}

	// RC002: constraints must resolve to something evaluable.
	for i, c := range r.Constraints {
		ds = append(ds, lintConstraint(r, i, c, ext, cat)...)
	}

	// RC003: methods must be registered method calls.
	for i, m := range r.Methods {
		site := ruleSite(r, fmt.Sprintf("method %d", i+1))
		if m.Kind != term.Fun || m.VarHead {
			ds = append(ds, Diagnostic{Rule: r.Name, Severity: SevError, Code: CodeUnknownMethod,
				Site: site, Msg: fmt.Sprintf("method %s is not a call to a registered method", m)})
			continue
		}
		if ext != nil && !ext.HasMethod(m.Functor) {
			ds = append(ds, Diagnostic{Rule: r.Name, Severity: SevError, Code: CodeUnknownMethod,
				Site: site, Msg: fmt.Sprintf("method %q is not registered in the rewriter's externals", m.Functor)})
		}
	}

	// RC004 + RC005: walk every application in the rule.
	ds = append(ds, lintSymbols(r, ext, cat)...)

	// RC006: possible divergence — LHS matches the rule's own
	// (skolemized) RHS and the rule does not shrink the term.
	if !r.Decreasing() && selfMatches(r) {
		sev := SevWarn
		note := "no constraints or methods guard it"
		if len(r.Constraints) > 0 || len(r.Methods) > 0 {
			sev = SevInfo
			note = "its constraints/methods must prevent re-application"
		}
		ds = append(ds, Diagnostic{Rule: r.Name, Severity: sev, Code: CodeDivergence,
			Site: ruleSite(r, ""),
			Msg: fmt.Sprintf("left-hand side matches the rule's own right-hand side and the rule does not decrease term size (lhs %d, rhs %d nodes); %s, so termination relies on block budgets",
				r.LHS.Size(), r.RHS.Size(), note)})
	}
	return ds
}

// lintConstraint checks one constraint term. The evaluator accepts the
// special forms AND/OR/NOT (recursing into their arguments), ISA,
// comparisons, registered constraint externals, and falls back to ground
// evaluation through the catalog's ADT library.
func lintConstraint(r *rules.Rule, idx int, c *term.Term, ext *rewrite.Externals, cat *catalog.Catalog) []Diagnostic {
	site := ruleSite(r, fmt.Sprintf("constraint %d", idx+1))
	var ds []Diagnostic
	var check func(t *term.Term)
	check = func(t *term.Term) {
		if t.Kind != term.Fun || t.VarHead {
			return
		}
		switch strings.ToUpper(t.Functor) {
		case "AND", "OR", "NOT":
			for _, a := range t.Args {
				check(a)
			}
			return
		case "ISA":
			return
		}
		if isComparison(t.Functor) {
			return
		}
		if ext != nil && ext.HasConstraint(t.Functor) {
			return
		}
		if cat != nil {
			if _, ok := cat.ADTs.Lookup(t.Functor); ok {
				return
			}
		}
		ds = append(ds, Diagnostic{Rule: r.Name, Severity: SevError, Code: CodeUnknownConstraint,
			Site: site,
			Msg: fmt.Sprintf("constraint %q is not a registered constraint, a built-in form (AND/OR/NOT/ISA/comparison) or a ground-evaluable ADT function",
				t.Functor)})
	}
	check(c)
	return ds
}

// lintSymbols checks arity consistency (RC004) and symbol vocabulary
// (RC005) across every function application of the rule.
func lintSymbols(r *rules.Rule, ext *rewrite.Externals, cat *catalog.Catalog) []Diagnostic {
	var ds []Diagnostic
	type use struct {
		arities map[int]bool
		site    string
	}
	uses := map[string]*use{}
	var order []string
	unknownSeen := map[string]bool{}

	scan := func(part string, t *term.Term) {
		site := ruleSite(r, part)
		term.Walk(t, func(sub *term.Term, _ term.Path) bool {
			if sub.Kind != term.Fun || sub.VarHead {
				return true
			}
			f := strings.ToUpper(sub.Functor)
			if term.IsConstructor(f) || f == term.FCollection {
				return true
			}
			// Applications containing collection variables have variable
			// arity by construction.
			hasSeq := false
			for _, a := range sub.Args {
				if a.Kind == term.SeqVar {
					hasSeq = true
					break
				}
			}
			if !hasSeq {
				u := uses[f]
				if u == nil {
					u = &use{arities: map[int]bool{}, site: site}
					uses[f] = u
					order = append(order, f)
				}
				u.arities[len(sub.Args)] = true
				if want, fixed := fixedArity(f, cat); fixed && len(sub.Args) != want {
					ds = append(ds, Diagnostic{Rule: r.Name, Severity: SevWarn, Code: CodeArity,
						Site: site,
						Msg:  fmt.Sprintf("%s is applied to %d arguments but its declared arity is %d", f, len(sub.Args), want)})
				}
			}
			if !knownSymbol(f, ext, cat) && !unknownSeen[f] {
				unknownSeen[f] = true
				ds = append(ds, Diagnostic{Rule: r.Name, Severity: SevInfo, Code: CodeUnknownSymbol,
					Site: site,
					Msg:  fmt.Sprintf("function symbol %q is not LERA vocabulary, a registered ADT function or a registered external (fine if it is registered at runtime)", f)})
			}
			return true
		})
	}

	scan("lhs", r.LHS)
	for i, c := range r.Constraints {
		scan(fmt.Sprintf("constraint %d", i+1), c)
	}
	scan("rhs", r.RHS)
	for i, m := range r.Methods {
		scan(fmt.Sprintf("method %d", i+1), m)
	}

	for _, f := range order {
		u := uses[f]
		if len(u.arities) > 1 {
			ds = append(ds, Diagnostic{Rule: r.Name, Severity: SevWarn, Code: CodeArity,
				Site: u.site,
				Msg:  fmt.Sprintf("%s is applied with inconsistent arities %v within this rule", f, sortedInts(u.arities))})
		}
	}
	return ds
}

// fixedArity resolves the declared arity of a symbol, if any: the LERA
// vocabulary first, then the catalog's ADT library (variadic entries have
// no fixed arity).
func fixedArity(f string, cat *catalog.Catalog) (int, bool) {
	if n, ok := leraArity[f]; ok {
		return n, true
	}
	if variadicVocab[f] {
		return 0, false
	}
	if cat != nil {
		if e, ok := cat.ADTs.Lookup(f); ok && e.Arity >= 0 {
			return e.Arity, true
		}
	}
	return 0, false
}

func knownSymbol(f string, ext *rewrite.Externals, cat *catalog.Catalog) bool {
	if _, ok := leraArity[f]; ok {
		return true
	}
	if variadicVocab[f] {
		return true
	}
	if cat != nil {
		if _, ok := cat.ADTs.Lookup(f); ok {
			return true
		}
	}
	if ext != nil && (ext.HasConstraint(f) || ext.HasMethod(f) || ext.HasBuiltin(f)) {
		return true
	}
	return false
}

// selfMatches reports whether the rule's LHS matches any subterm of a
// skolemized copy of its RHS — the "trivially non-terminating self-cycle"
// test. Variables in the RHS are replaced by unique constants so that a
// match witnesses a genuine instance-of relation.
func selfMatches(r *rules.Rule) bool {
	sk := skolemize(r.RHS)
	found := false
	term.Walk(sk, func(sub *term.Term, _ term.Path) bool {
		if _, ok := term.MatchFirst(r.LHS, sub); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

func skolemize(t *term.Term) *term.Term {
	switch t.Kind {
	case term.Const:
		return t
	case term.Var:
		return term.Str("\x00var:" + t.Name)
	case term.SeqVar:
		return term.Str("\x00seq:" + t.Name)
	case term.Fun:
		args := make([]*term.Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = skolemize(a)
		}
		functor := t.Functor
		if t.VarHead {
			functor = "\x00fun:" + t.Functor
		}
		return term.F(functor, args...)
	}
	return t
}

func copySet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedInts(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
