package guard

// Admission-gate tests: bounded queueing, typed shedding, drain
// semantics, and the CodeOf classification the protocol layers rely on.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestGateFastPathAndShed(t *testing.T) {
	g := NewGate(2, 1)

	r1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := g.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}

	// Third acquirer queues (capacity 1); a fourth must shed typed.
	queued := make(chan error, 1)
	go func() {
		r, err := g.Acquire(context.Background())
		if err == nil {
			defer r()
		}
		queued <- err
	}()
	waitFor(t, func() bool { return g.Queued() == 1 })

	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-queue acquire: got %v, want ErrOverloaded", err)
	}

	r1() // frees a slot; the queued acquirer takes it
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire after release: %v", err)
	}
	r2()
	// Double release must be a no-op.
	r2()
	waitFor(t, func() bool { return g.InFlight() == 0 })
}

func TestGateQueuedCallerContextExpiry(t *testing.T) {
	g := NewGate(1, 4)
	r, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer r()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := g.Acquire(ctx); !errors.Is(err, ErrDeadline) {
		t.Fatalf("queued caller with expired deadline: got %v, want ErrDeadline", err)
	}
	if got := g.Queued(); got != 0 {
		t.Fatalf("Queued after expiry = %d, want 0", got)
	}
}

func TestGateDrain(t *testing.T) {
	g := NewGate(1, 4)
	r, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// A queued waiter must be refused when the drain starts.
	queued := make(chan error, 1)
	go func() {
		_, err := g.Acquire(context.Background())
		queued <- err
	}()
	waitFor(t, func() bool { return g.Queued() == 1 })

	drained := make(chan error, 1)
	go func() { drained <- g.Drain(context.Background()) }()
	waitFor(t, func() bool { return g.Draining() })

	if err := <-queued; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued acquire during drain: got %v, want ErrDraining", err)
	}
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("new acquire during drain: got %v, want ErrDraining", err)
	}

	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with work still in flight", err)
	case <-time.After(30 * time.Millisecond):
	}
	r()
	if err := <-drained; err != nil {
		t.Fatalf("Drain after release: %v", err)
	}
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight after drain = %d, want 0", got)
	}
	// Idempotent.
	if err := g.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}

func TestGateDrainDeadline(t *testing.T) {
	g := NewGate(1, 0)
	r, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer r()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := g.Drain(ctx); !errors.Is(err, ErrDeadline) {
		t.Fatalf("Drain past deadline with stuck work: got %v, want ErrDeadline", err)
	}
	if got := g.InFlight(); got != 1 {
		t.Fatalf("InFlight after failed drain = %d, want 1 (the stuck holder)", got)
	}
}

// TestGateConcurrentAccounting hammers the gate from many goroutines and
// checks the invariant the server relies on: admissions never exceed the
// slot bound, shed work is typed, and everything balances to zero. Run
// under -race in CI.
func TestGateConcurrentAccounting(t *testing.T) {
	const slots, queue, callers = 4, 8, 64
	g := NewGate(slots, queue)
	var mu sync.Mutex
	var admitted, shed int
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := g.Acquire(context.Background())
			if err != nil {
				if !errors.Is(err, ErrOverloaded) {
					t.Errorf("unexpected acquire error: %v", err)
				}
				mu.Lock()
				shed++
				mu.Unlock()
				return
			}
			if in := g.InFlight(); in > slots {
				t.Errorf("InFlight %d exceeds slot bound %d", in, slots)
			}
			time.Sleep(time.Millisecond)
			r()
			mu.Lock()
			admitted++
			mu.Unlock()
		}()
	}
	wg.Wait()
	if admitted+shed != callers {
		t.Fatalf("admitted %d + shed %d != %d callers", admitted, shed, callers)
	}
	if admitted == 0 {
		t.Fatal("nothing was admitted")
	}
	if g.InFlight() != 0 || g.Queued() != 0 {
		t.Fatalf("gate not empty: inflight=%d queued=%d", g.InFlight(), g.Queued())
	}
}

func TestCodeOf(t *testing.T) {
	cases := []struct {
		err  error
		want Code
	}{
		{nil, CodeOK},
		{ErrOverloaded, CodeOverloaded},
		{fmt.Errorf("gate: %w", ErrDraining), CodeDraining},
		{fmt.Errorf("%w (X call 3)", ErrInjected), CodeInjected},
		{fmt.Errorf("%w: detail", ErrDeadline), CodeDeadline},
		{context.DeadlineExceeded, CodeDeadline},
		{fmt.Errorf("%w: 12 steps", ErrStepBudget), CodeStepBudget},
		{fmt.Errorf("%w: 900 nodes", ErrTermSize), CodeTermSize},
		{fmt.Errorf("engine: %w: 100 rows", ErrRowBudget), CodeRowBudget},
		{context.Canceled, CodeCanceled},
		{NewExternalPanic(ExtConstraint, "r", "F", "[0]", "boom"), CodeExternalPanic},
		{&ExternalError{Kind: ExtADT, External: "F", Err: errors.New("bad")}, CodeExternalError},
		// An external wrapping an injected fault keeps the INJECTED code.
		{&ExternalError{Kind: ExtMethod, External: "M", Err: fmt.Errorf("%w (M call 1)", ErrInjected)}, CodeInjected},
		{errors.New("mystery"), CodeInternal},
	}
	for _, tc := range cases {
		if got := CodeOf(tc.err); got != tc.want {
			t.Errorf("CodeOf(%v) = %s, want %s", tc.err, got, tc.want)
		}
	}
}

func TestInjectorEvery(t *testing.T) {
	in := NewInjector()
	in.Set("e", Fault{Every: 3, Mode: FaultError})
	var fired []int
	for i := 1; i <= 10; i++ {
		if err := in.Hit(nil, "e"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("call %d: got %v, want ErrInjected", i, err)
			}
			fired = append(fired, i)
		}
	}
	if fmt.Sprint(fired) != "[3 6 9]" {
		t.Fatalf("Every=3 fired on %v, want [3 6 9]", fired)
	}
	// OnCall takes precedence over Every.
	in.Set("o", Fault{OnCall: 2, Every: 1, Mode: FaultError})
	fired = nil
	for i := 1; i <= 4; i++ {
		if err := in.Hit(nil, "o"); err != nil {
			fired = append(fired, i)
		}
	}
	if fmt.Sprint(fired) != "[2]" {
		t.Fatalf("OnCall=2 fired on %v, want [2]", fired)
	}
}

// waitFor polls a condition with a bounded spin, failing the test on
// timeout. Used where the interesting state is a goroutine mid-queue.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
