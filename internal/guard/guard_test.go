package guard

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestLimitsFixIterations(t *testing.T) {
	if got := (Limits{}).FixIterations(); got != DefaultMaxFixIterations {
		t.Fatalf("zero Limits: got %d, want default %d", got, DefaultMaxFixIterations)
	}
	if got := (Limits{MaxFixIterations: 7}).FixIterations(); got != 7 {
		t.Fatalf("explicit cap: got %d, want 7", got)
	}
}

func TestCheckCtx(t *testing.T) {
	if err := CheckCtx(nil); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	if err := CheckCtx(context.Background()); err != nil {
		t.Fatalf("live ctx: %v", err)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := CheckCtx(canceled); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx: got %v, want context.Canceled", err)
	}

	expired, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	<-expired.Done()
	err := CheckCtx(expired)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired ctx: got %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired ctx should still match context.DeadlineExceeded, got %v", err)
	}
}

func TestSentinelsAreDistinct(t *testing.T) {
	sentinels := []error{ErrDeadline, ErrStepBudget, ErrTermSize, ErrRowBudget}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if (i == j) != errors.Is(a, b) {
				t.Fatalf("sentinel identity broken: %v vs %v", a, b)
			}
		}
	}
}

func TestExternalErrorMessageAndAs(t *testing.T) {
	var err error = NewExternalPanic(ExtConstraint, "myrule", "BOOM", "[0 1]", "kaboom")
	var ee *ExternalError
	if !errors.As(err, &ee) {
		t.Fatalf("errors.As failed on %T", err)
	}
	if ee.Kind != ExtConstraint || ee.Rule != "myrule" || ee.External != "BOOM" || ee.Site != "[0 1]" {
		t.Fatalf("fields lost: %+v", ee)
	}
	msg := err.Error()
	for _, want := range []string{"constraint", "BOOM", "panicked", "myrule", "[0 1]", "kaboom"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("message %q missing %q", msg, want)
		}
	}

	wrapped := &ExternalError{Kind: ExtADT, External: "zoneOf", Err: errors.New("bad zone")}
	if !strings.Contains(wrapped.Error(), "failed") || !strings.Contains(wrapped.Error(), "bad zone") {
		t.Fatalf("error-wrapping message: %q", wrapped.Error())
	}
	if !errors.Is(wrapped, wrapped.Err) {
		t.Fatalf("Unwrap should expose the underlying error")
	}
}

func TestInjectorDeterminism(t *testing.T) {
	in := NewInjector()
	in.Set("f", Fault{OnCall: 3, Mode: FaultError})
	for i := 1; i <= 5; i++ {
		err := in.Hit(nil, "f")
		if (i == 3) != (err != nil) {
			t.Fatalf("call %d: err=%v, want error exactly on call 3", i, err)
		}
	}
	if got := in.Calls("f"); got != 5 {
		t.Fatalf("Calls: got %d, want 5", got)
	}
	// OnCall 0 fires every time.
	in.Set("g", Fault{Mode: FaultError, Err: errors.New("always")})
	for i := 0; i < 2; i++ {
		if err := in.Hit(nil, "g"); err == nil || err.Error() != "always" {
			t.Fatalf("OnCall=0 should fire every call, got %v", err)
		}
	}
	// Reset zeroes counters but keeps faults armed.
	in.Reset()
	if got := in.Calls("f"); got != 0 {
		t.Fatalf("Reset: Calls=%d, want 0", got)
	}
	for i := 1; i <= 3; i++ {
		err := in.Hit(nil, "f")
		if (i == 3) != (err != nil) {
			t.Fatalf("after Reset, call %d: err=%v", i, err)
		}
	}
}

func TestInjectorPanic(t *testing.T) {
	in := NewInjector()
	in.Set("p", Fault{OnCall: 1, Mode: FaultPanic, PanicValue: "boom"})
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	_ = in.Hit(nil, "p")
	t.Fatalf("Hit should have panicked")
}

func TestInjectorStall(t *testing.T) {
	in := NewInjector()
	in.Set("s", Fault{Mode: FaultStall, Stall: 10 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := in.Hit(ctx, "s")
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stall was not interrupted by ctx (took %v)", elapsed)
	}
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("interrupted stall: got %v, want ErrDeadline", err)
	}

	// An elapsed stall returns nil.
	in.Set("q", Fault{Mode: FaultStall, Stall: time.Millisecond})
	if err := in.Hit(context.Background(), "q"); err != nil {
		t.Fatalf("elapsed stall: %v", err)
	}
}
