package guard

// Admission control: a Gate bounds the number of queries in flight and
// the number allowed to wait for a slot. Work beyond both bounds is shed
// immediately with the typed ErrOverloaded — bounded queueing instead of
// unbounded backlog is what keeps an overloaded server's tail latency
// finite and its memory flat. The Gate is also the drain point: once
// draining, every Acquire fails fast with ErrDraining and Drain blocks
// until the in-flight count reaches zero (or its context expires), which
// is exactly the "stop accepting, finish what you started" half of a
// graceful shutdown.

import (
	"context"
	"sync"
)

// Gate is a bounded admission gate. The zero value is not usable; build
// one with NewGate. Safe for concurrent use.
type Gate struct {
	mu       sync.Mutex
	idle     *sync.Cond // signalled when inFlight drops or drain starts
	slots    chan struct{}
	maxQueue int
	queued   int
	inFlight int
	draining bool
	drainCh  chan struct{} // closed when draining starts
}

// NewGate builds a gate admitting at most maxInFlight concurrent holders
// with at most maxQueue callers waiting for a slot. maxInFlight < 1 is
// treated as 1; maxQueue < 0 as 0 (no waiting: every acquire beyond the
// in-flight bound sheds).
func NewGate(maxInFlight, maxQueue int) *Gate {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	g := &Gate{
		slots:    make(chan struct{}, maxInFlight),
		maxQueue: maxQueue,
		drainCh:  make(chan struct{}),
	}
	g.idle = sync.NewCond(&g.mu)
	return g
}

// Acquire claims an execution slot, waiting in the bounded queue when all
// slots are busy. It returns a release function that must be called
// exactly once when the work finishes. Typed failures:
//
//   - ErrOverloaded — all slots busy and the wait queue is full; the
//     caller was shed without waiting.
//   - ErrDraining — the gate is draining; no new work is admitted.
//   - the context's error (via CheckCtx: ErrDeadline for an expired
//     deadline) — the caller gave up while queued.
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		return nil, ErrDraining
	}
	// Fast path: a free slot, no waiting.
	select {
	case g.slots <- struct{}{}:
		g.inFlight++
		g.mu.Unlock()
		return g.releaseFunc(), nil
	default:
	}
	if g.queued >= g.maxQueue {
		g.mu.Unlock()
		return nil, ErrOverloaded
	}
	g.queued++
	g.mu.Unlock()

	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case g.slots <- struct{}{}:
		g.mu.Lock()
		g.queued--
		// A drain that started while we were queued wins: the slot is
		// returned and the caller is refused, so Drain never waits on
		// work that was admitted after it began.
		if g.draining {
			<-g.slots
			g.mu.Unlock()
			return nil, ErrDraining
		}
		g.inFlight++
		g.mu.Unlock()
		return g.releaseFunc(), nil
	case <-g.drainCh:
		g.mu.Lock()
		g.queued--
		g.mu.Unlock()
		return nil, ErrDraining
	case <-done:
		g.mu.Lock()
		g.queued--
		g.mu.Unlock()
		return nil, CheckCtx(ctx)
	}
}

// releaseFunc returns the one-shot slot release. Callers hold no lock.
func (g *Gate) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			<-g.slots
			g.mu.Lock()
			g.inFlight--
			g.idle.Broadcast()
			g.mu.Unlock()
		})
	}
}

// InFlight reports the number of currently admitted holders.
func (g *Gate) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inFlight
}

// Queued reports the number of callers waiting for a slot.
func (g *Gate) Queued() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.queued
}

// Draining reports whether the gate has started draining.
func (g *Gate) Draining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// Drain switches the gate into drain mode — every subsequent or queued
// Acquire fails with ErrDraining — and blocks until all in-flight work
// has released or ctx is done. It returns nil when the gate emptied and
// the (typed) context error when the drain deadline fired first; the
// number still in flight at return is InFlight(). Drain is idempotent.
func (g *Gate) Drain(ctx context.Context) error {
	g.mu.Lock()
	if !g.draining {
		g.draining = true
		close(g.drainCh)
	}
	g.mu.Unlock()

	// Wake the cond waiter when the context dies: Cond has no native
	// context support, so a helper goroutine broadcasts on expiry.
	stop := make(chan struct{})
	defer close(stop)
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				g.mu.Lock()
				g.idle.Broadcast()
				g.mu.Unlock()
			case <-stop:
			}
		}()
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	for g.inFlight > 0 {
		if err := CheckCtx(ctx); err != nil {
			return err
		}
		g.idle.Wait()
	}
	return nil
}
