package guard

// Deterministic fault injection for externals. Tests register an Injector
// hit at the head of a constraint/method/builtin/ADT function; the
// injector counts calls per name and fires the armed fault on the Nth
// call — panic, error, or stall — so every degradation path of the
// pipeline is exercised deterministically rather than asserted.

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// FaultMode selects what an armed fault does when it fires.
type FaultMode int

// Fault modes.
const (
	// FaultNone: fire as a no-op (the call is still counted).
	FaultNone FaultMode = iota
	// FaultPanic: panic with PanicValue (default "injected panic").
	FaultPanic
	// FaultError: return Err (default a generic injected error).
	FaultError
	// FaultStall: block for Stall, or until the supplied context is done,
	// whichever comes first; a cancelled context returns its (typed)
	// error, an elapsed stall returns nil.
	FaultStall
)

// Fault is one armed fault.
type Fault struct {
	// OnCall is the 1-based call index the fault fires on; 0 fires on
	// every call.
	OnCall int
	Mode   FaultMode
	// Stall is the FaultStall duration.
	Stall time.Duration
	// Err overrides the FaultError error.
	Err error
	// PanicValue overrides the FaultPanic value.
	PanicValue any
}

// Injector counts calls per external name and fires armed faults. Safe
// for concurrent use.
type Injector struct {
	mu     sync.Mutex
	calls  map[string]int
	faults map[string]Fault
}

// NewInjector returns an empty injector: all hits are counted no-ops
// until faults are armed with Set.
func NewInjector() *Injector {
	return &Injector{calls: map[string]int{}, faults: map[string]Fault{}}
}

// Set arms a fault for the named external, replacing any previous one.
func (in *Injector) Set(name string, f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.faults[name] = f
}

// Calls reports how many times the named external has hit the injector.
func (in *Injector) Calls(name string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[name]
}

// Reset zeroes all call counters (armed faults stay armed).
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.calls = map[string]int{}
}

// Hit records one call to the named external and fires its armed fault if
// the call index matches. ctx may be nil; it is only consulted by
// FaultStall.
func (in *Injector) Hit(ctx context.Context, name string) error {
	in.mu.Lock()
	in.calls[name]++
	n := in.calls[name]
	f, armed := in.faults[name]
	in.mu.Unlock()
	if !armed || (f.OnCall != 0 && n != f.OnCall) {
		return nil
	}
	switch f.Mode {
	case FaultPanic:
		p := f.PanicValue
		if p == nil {
			p = fmt.Sprintf("injected panic (%s call %d)", name, n)
		}
		panic(p)
	case FaultError:
		if f.Err != nil {
			return f.Err
		}
		return fmt.Errorf("injected error (%s call %d)", name, n)
	case FaultStall:
		timer := time.NewTimer(f.Stall)
		defer timer.Stop()
		if ctx == nil {
			<-timer.C
			return nil
		}
		select {
		case <-ctx.Done():
			return CheckCtx(ctx)
		case <-timer.C:
			return nil
		}
	}
	return nil
}
