package guard

// Deterministic fault injection for externals and servers. A hit site —
// the head of a constraint/method/builtin/ADT function (wired pipeline-
// wide by core.WithInjector), or leraserver's per-request "server.request"
// hook — reports each call by name; the injector counts calls per name
// and fires the armed fault — panic, error, or stall — so every
// degradation path is exercised deterministically rather than asserted.
//
// The determinism contract:
//
//   - Whether a fault fires depends only on the per-name call count: the
//     OnCall'th call (or every Every'th call) fires, every other call is
//     a counted no-op. No randomness, no clocks, no goroutine identity.
//   - Counting is per name and strictly sequential under the injector's
//     lock: N calls to Hit("X") are observed as calls 1..N in arrival
//     order. Under concurrency the *assignment* of indices to callers
//     follows arrival order at the lock; a test that needs call K to be
//     a specific request must serialize those requests.
//   - Reset zeroes the counters but keeps faults armed, so a warm-up
//     phase can be excluded and the armed schedule replayed exactly.
//   - The same injector instance may be shared by every consumer of a
//     pipeline (rewrite constraints/methods/builtins, engine ADT calls,
//     server request hooks): names are a flat namespace, so arming
//     "MEMBER" trips the rewriter's and the executor's MEMBER alike.
//
// This is the one path chaos testing and unit tests share: leraserver's
// chaos mode arms the very same Fault values on the very same injector
// type that the guard/core/engine unit tests use.

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// FaultMode selects what an armed fault does when it fires.
type FaultMode int

// Fault modes.
const (
	// FaultNone: fire as a no-op (the call is still counted).
	FaultNone FaultMode = iota
	// FaultPanic: panic with PanicValue (default "injected panic").
	FaultPanic
	// FaultError: return Err (default a generic injected error).
	FaultError
	// FaultStall: block for Stall, or until the supplied context is done,
	// whichever comes first; a cancelled context returns its (typed)
	// error, an elapsed stall returns nil.
	FaultStall
)

// Fault is one armed fault.
type Fault struct {
	// OnCall is the 1-based call index the fault fires on; 0 fires on
	// every call (unless Every narrows it).
	OnCall int
	// Every, when positive, fires the fault on every Every'th call
	// (call indices Every, 2*Every, ...). It composes with OnCall = 0
	// only; a non-zero OnCall takes precedence. This is the chaos-mode
	// knob: "every 7th request errors" is Every: 7.
	Every int
	Mode  FaultMode
	// Stall is the FaultStall duration.
	Stall time.Duration
	// Err overrides the FaultError error.
	Err error
	// PanicValue overrides the FaultPanic value.
	PanicValue any
}

// Injector counts calls per external name and fires armed faults. Safe
// for concurrent use.
type Injector struct {
	mu     sync.Mutex
	calls  map[string]int
	faults map[string]Fault
}

// NewInjector returns an empty injector: all hits are counted no-ops
// until faults are armed with Set.
func NewInjector() *Injector {
	return &Injector{calls: map[string]int{}, faults: map[string]Fault{}}
}

// Set arms a fault for the named external, replacing any previous one.
func (in *Injector) Set(name string, f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.faults[name] = f
}

// Calls reports how many times the named external has hit the injector.
func (in *Injector) Calls(name string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[name]
}

// Clear disarms the named external's fault (its call counter is kept).
func (in *Injector) Clear(name string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.faults, name)
}

// Reset zeroes all call counters (armed faults stay armed).
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.calls = map[string]int{}
}

// Hit records one call to the named external and fires its armed fault if
// the call index matches. ctx may be nil; it is only consulted by
// FaultStall.
func (in *Injector) Hit(ctx context.Context, name string) error {
	in.mu.Lock()
	in.calls[name]++
	n := in.calls[name]
	f, armed := in.faults[name]
	in.mu.Unlock()
	if !armed {
		return nil
	}
	switch {
	case f.OnCall != 0:
		if n != f.OnCall {
			return nil
		}
	case f.Every > 0:
		if n%f.Every != 0 {
			return nil
		}
	}
	switch f.Mode {
	case FaultPanic:
		p := f.PanicValue
		if p == nil {
			p = fmt.Sprintf("injected panic (%s call %d)", name, n)
		}
		panic(p)
	case FaultError:
		if f.Err != nil {
			return f.Err
		}
		return fmt.Errorf("%w (%s call %d)", ErrInjected, name, n)
	case FaultStall:
		timer := time.NewTimer(f.Stall)
		defer timer.Stop()
		if ctx == nil {
			<-timer.C
			return nil
		}
		select {
		case <-ctx.Done():
			return CheckCtx(ctx)
		case <-timer.C:
			return nil
		}
	}
	return nil
}
