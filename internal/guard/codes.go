package guard

// Protocol error codes: the stable, operator-facing names of the guard
// vocabulary. Every typed failure the pipeline can produce — budget
// trips, cancellation, external faults, admission-control shedding —
// maps to exactly one short uppercase code, and every front end
// (leraserver responses, edsql notices, benchrunner JSON, loadgen
// reports) prints the same names, so a `ROW_BUDGET` seen in a server
// log means precisely what a `ROW_BUDGET` in a shell notice means.
//
// Codes are append-only: new failure classes get new names; existing
// names never change meaning. CodeOf is total — an error it cannot
// classify is INTERNAL, never an empty string.

import (
	"context"
	"errors"
)

// Code is a stable protocol error code.
type Code string

// The code vocabulary. OK is the success code; DEGRADED is not a code —
// degradation is a successful answer from the fallback plan whose
// *cause* is reported via CodeOf (see rewrite.Stats.DegradationCode).
const (
	CodeOK Code = "OK"
	// Budget trips (docs/GUARDRAILS.md).
	CodeDeadline   Code = "DEADLINE"
	CodeStepBudget Code = "STEP_BUDGET"
	CodeTermSize   Code = "TERM_SIZE"
	CodeRowBudget  Code = "ROW_BUDGET"
	CodeMemBudget  Code = "MEM_BUDGET"
	// Caller cancellation (not a budget: the client went away).
	CodeCanceled Code = "CANCELED"
	// Implementor-code failures (panic isolated / error wrapped).
	CodeExternalPanic Code = "EXTERNAL_PANIC"
	CodeExternalError Code = "EXTERNAL_ERROR"
	// Deterministic chaos faults (guard.Injector).
	CodeInjected Code = "INJECTED"
	// Admission control (leraserver).
	CodeOverloaded Code = "OVERLOADED"
	CodeDraining   Code = "DRAINING"
	// Request-shaping failures reported by front ends.
	CodeParse Code = "PARSE"
	// Anything not covered above.
	CodeInternal Code = "INTERNAL"
)

// Admission-control errors (see Gate). Typed so that shed work is
// distinguishable from failed work everywhere errors.Is reaches.
var (
	// ErrOverloaded: the request was shed at admission — the in-flight
	// limit was reached and the bounded accept queue was full. The
	// request did not run; retrying after backoff is safe.
	ErrOverloaded = errors.New("guard: overloaded, request shed")
	// ErrDraining: the server is draining for shutdown and admits no new
	// work. The request did not run.
	ErrDraining = errors.New("guard: draining, not accepting new work")
	// ErrInjected: a deterministic chaos fault fired (Injector,
	// FaultError default). Distinguishable from real external errors so
	// chaos runs can prove every injected fault surfaced as a typed
	// outcome.
	ErrInjected = errors.New("guard: injected fault")
)

// CodeOf classifies an error into the protocol code vocabulary. nil maps
// to CodeOK; an unrecognized error maps to CodeInternal. Order matters:
// the sentinels are checked before the ExternalError envelope so an
// injected or budget-typed error keeps its specific code even when an
// external wrapped it.
func CodeOf(err error) Code {
	if err == nil {
		return CodeOK
	}
	switch {
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, ErrDraining):
		return CodeDraining
	case errors.Is(err, ErrInjected):
		return CodeInjected
	case errors.Is(err, ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		return CodeDeadline
	case errors.Is(err, ErrStepBudget):
		return CodeStepBudget
	case errors.Is(err, ErrTermSize):
		return CodeTermSize
	case errors.Is(err, ErrRowBudget):
		return CodeRowBudget
	case errors.Is(err, ErrMemBudget):
		return CodeMemBudget
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	}
	var ext *ExternalError
	if errors.As(err, &ext) {
		if ext.Panic != nil {
			return CodeExternalPanic
		}
		return CodeExternalError
	}
	return CodeInternal
}
