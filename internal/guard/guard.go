// Package guard is the query guardrail layer: resource limits, typed
// budget errors, and panic isolation for the rewrite/execute pipeline.
//
// The paper's extensibility claim — implementors add rules and externals
// without touching the engine — only holds if the engine survives whatever
// they add: non-terminating rule sets, term-size blowups, and panicking
// external code. This package supplies the vocabulary the pipeline uses to
// defend itself: a Limits budget enforced with errors distinguishable via
// errors.Is/As, an ExternalError that wraps a recovered panic with enough
// context to name the offending rule and external, and a deterministic
// fault injector (faultinject.go) so every degradation path is exercised
// by tests rather than asserted.
//
// guard is a leaf package: it imports only the standard library, so every
// layer (rewrite, engine, core, cmd) can depend on it freely.
package guard

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Typed budget errors. Wrapped errors carry detail (counts, caps); callers
// classify with errors.Is.
var (
	// ErrDeadline: the wall-clock budget expired (context deadline).
	ErrDeadline = errors.New("guard: deadline exceeded")
	// ErrStepBudget: the global rule-application step cap was reached
	// during rewriting.
	ErrStepBudget = errors.New("guard: rewrite step budget exhausted")
	// ErrTermSize: a rewrite grew the query term past the size cap.
	ErrTermSize = errors.New("guard: term size limit exceeded")
	// ErrRowBudget: execution materialized more rows than allowed.
	ErrRowBudget = errors.New("guard: row budget exceeded")
	// ErrMemBudget: an execution operator needed more memory than
	// MaxMemBytes grants and no spill directory was available to move
	// its state out of core.
	ErrMemBudget = errors.New("guard: memory budget exceeded")
)

// DefaultMaxFixIterations bounds fixpoint rounds when Limits leaves
// MaxFixIterations zero (guards against non-monotone bodies).
const DefaultMaxFixIterations = 1_000_000

// Limits is the per-query resource budget. The zero value means
// "no limits" (except the fixpoint cap, which always defaults).
type Limits struct {
	// Timeout is the wall-clock budget applied to each pipeline phase
	// (rewrite, execute) separately, so a rewrite that burns its budget
	// can still degrade to a plan the execution phase has time to run.
	// 0 means no deadline.
	Timeout time.Duration
	// MaxSteps caps successful rule applications across all blocks of one
	// rewrite. 0 means unlimited.
	MaxSteps int
	// MaxTermSize caps the node count of the query term during rewriting.
	// 0 means unlimited.
	MaxTermSize int
	// MaxRows caps the cumulative number of rows materialized by
	// relational operators during execution. 0 means unlimited.
	MaxRows int
	// MaxFixIterations caps iterations of each fixpoint instance
	// (per FIX subterm, not shared across them). 0 means
	// DefaultMaxFixIterations.
	MaxFixIterations int
	// MaxMemBytes is the per-operator memory grant of the batched
	// engine's memory governor (work_mem-style, docs/PERF.md "Memory
	// governor & spill"): the estimated resident bytes any single
	// memory-hungry operator structure — a join build, a dedup or
	// fixpoint seen-set — may hold before it must switch to its
	// out-of-core strategy. Without a spill directory the switch is
	// impossible and the operator fails with ErrMemBudget instead.
	// 0 means unlimited.
	MaxMemBytes int64
}

// FixIterations returns the effective per-instance fixpoint iteration cap.
func (l Limits) FixIterations() int {
	if l.MaxFixIterations > 0 {
		return l.MaxFixIterations
	}
	return DefaultMaxFixIterations
}

// Budget is the shared resource account of one query evaluation: the
// cumulative row count and the tracked-memory account. Every worker of a
// parallel query charges the same Budget, so the row cap trips promptly
// no matter which worker materializes the row that crosses it; the
// serial path pays one uncontended atomic add per operator output.
type Budget struct {
	rows atomic.Int64
	// mem is the current tracked resident bytes (engine structures the
	// memory governor accounts: arenas, join builds, seen-sets) and
	// memPeak its high-water mark. Unlike rows, the shared memory
	// account never errors by itself — the spill/fail decision is made
	// operator-locally against Limits.MaxMemBytes so it stays
	// deterministic at every pool size; the shared account exists so one
	// peak number covers all workers (reports, the peak-memory gauge).
	mem     atomic.Int64
	memPeak atomic.Int64
}

// ChargeRows adds n freshly materialized rows to the account and reports
// ErrRowBudget once the cumulative total exceeds max (0 = unlimited).
func (b *Budget) ChargeRows(n, max int) error {
	total := b.rows.Add(int64(n))
	if max > 0 && total > int64(max) {
		return fmt.Errorf("%w: %d rows materialized (cap %d)", ErrRowBudget, total, max)
	}
	return nil
}

// Rows returns the rows charged so far.
func (b *Budget) Rows() int { return int(b.rows.Load()) }

// ChargeMem adds n tracked bytes to the shared memory account and
// advances the peak. Pair with ReleaseMem when the structure is dropped
// (or shrinks, e.g. after migrating to disk).
func (b *Budget) ChargeMem(n int64) {
	if n == 0 {
		return
	}
	cur := b.mem.Add(n)
	for {
		p := b.memPeak.Load()
		if cur <= p || b.memPeak.CompareAndSwap(p, cur) {
			return
		}
	}
}

// ReleaseMem returns n tracked bytes to the account.
func (b *Budget) ReleaseMem(n int64) {
	if n != 0 {
		b.mem.Add(-n)
	}
}

// MemPeak returns the high-water mark of tracked bytes.
func (b *Budget) MemPeak() int64 { return b.memPeak.Load() }

// Consumption is a per-query snapshot of budget use against its limits:
// how many rows the engine materialized and how many rewrite steps the
// rule engine applied, next to the caps that bounded them (0 = the cap
// was unlimited). It rides on Result.Budget, the query-log event and
// the slow-query ring so an operator can see how close a query came to
// tripping — not just whether it tripped.
type Consumption struct {
	RowsUsed   int64 `json:"rows_used"`
	RowsLimit  int64 `json:"rows_limit,omitempty"`
	StepsUsed  int64 `json:"steps_used"`
	StepsLimit int64 `json:"steps_limit,omitempty"`
	// MemPeakBytes is the high-water mark of the engine's tracked
	// memory (Budget.MemPeak) and MemLimit the per-operator grant it
	// ran under. Both zero when the memory governor was off, so the
	// rendered form only grows a mem clause for governed queries.
	MemPeakBytes int64 `json:"mem_peak_bytes,omitempty"`
	MemLimit     int64 `json:"mem_limit,omitempty"`
}

// String renders the consumption compactly for notices: "rows 120/1000,
// steps 4/500" (plus ", mem 8192/65536" once the memory governor is on)
// with "unlimited" for uncapped budgets.
func (c Consumption) String() string {
	lim := func(n int64) string {
		if n <= 0 {
			return "unlimited"
		}
		return fmt.Sprintf("%d", n)
	}
	s := fmt.Sprintf("rows %d/%s, steps %d/%s", c.RowsUsed, lim(c.RowsLimit), c.StepsUsed, lim(c.StepsLimit))
	if c.MemPeakBytes > 0 || c.MemLimit > 0 {
		s += fmt.Sprintf(", mem %d/%s", c.MemPeakBytes, lim(c.MemLimit))
	}
	return s
}

// CheckCtx translates context cancellation into the guard vocabulary: a
// deadline expiry reports ErrDeadline (still matching
// context.DeadlineExceeded via errors.Is), a plain cancellation passes
// through as context.Canceled. A nil or live context returns nil.
func CheckCtx(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	err := ctx.Err()
	if err == nil {
		return nil
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrDeadline, err)
	}
	return err
}

// ExternalKind names the kind of external whose invocation failed.
type ExternalKind string

// External kinds.
const (
	ExtConstraint ExternalKind = "constraint"
	ExtMethod     ExternalKind = "method"
	ExtBuiltin    ExternalKind = "builtin"
	ExtADT        ExternalKind = "adt function"
)

// ExternalError reports a failure inside implementor-supplied code — a
// rule constraint, method, right-hand-side builtin, or ADT function —
// converted from a panic (Panic non-nil) or wrapped from a returned error
// (Err non-nil). Rule and Site are empty when the external was not invoked
// from a rewrite rule (e.g. an ADT call during execution).
type ExternalError struct {
	Kind     ExternalKind
	Rule     string // rule that invoked the external, if any
	External string // name of the external function
	Site     string // match-site path within the query term, if any
	Panic    any    // recovered panic value, nil when Err is set
	Err      error  // underlying error, nil when Panic is set
}

// NewExternalPanic converts a recovered panic value into an ExternalError.
func NewExternalPanic(kind ExternalKind, rule, external, site string, p any) *ExternalError {
	return &ExternalError{Kind: kind, Rule: rule, External: external, Site: site, Panic: p}
}

// Error implements error.
func (e *ExternalError) Error() string {
	verb := "failed"
	detail := ""
	if e.Panic != nil {
		verb = "panicked"
		detail = fmt.Sprintf(": %v", e.Panic)
	} else if e.Err != nil {
		detail = fmt.Sprintf(": %v", e.Err)
	}
	where := ""
	if e.Rule != "" {
		where = fmt.Sprintf(" in rule %s", e.Rule)
	}
	if e.Site != "" {
		where += fmt.Sprintf(" at %s", e.Site)
	}
	return fmt.Sprintf("guard: %s %s %s%s%s", e.Kind, e.External, verb, where, detail)
}

// Unwrap exposes the underlying error (nil for panics).
func (e *ExternalError) Unwrap() error { return e.Err }
