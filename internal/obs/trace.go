package obs

// Hierarchical spans and structured events. A Recorder collects one tree
// per observed query: parse -> translate -> rewrite (one child span per
// block run) -> execute (one child span per operator). Events — rule
// applications, budget exhaustion, degradation — attach to the span that
// was open when they happened, in order.
//
// Everything is nil-safe: a nil *Recorder no-ops on every method, so
// instrumented code calls straight through without its own guards (call
// sites that build attribute slices still gate on Enabled() to keep the
// disabled path allocation-free).

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// KV is one span or event attribute. Values are rendered with %v; keep
// them to strings and integers so traces stay deterministic.
type KV struct {
	K string
	V any
}

// Int is shorthand for an integer attribute.
func Int(k string, v int) KV { return KV{K: k, V: int64(v)} }

// Str is shorthand for a string attribute.
func Str(k, v string) KV { return KV{K: k, V: v} }

// Event is one structured log entry: a rule application, a budget
// consumption notice, a degradation.
type Event struct {
	Kind  string
	Attrs []KV
}

// MaxSpanChildren bounds the fanout of one span (and MaxSpanEvents the
// events on one span): a fixpoint running thousands of rounds must not
// grow the trace without bound. Overflow is counted, not silently
// dropped.
const (
	MaxSpanChildren = 128
	MaxSpanEvents   = 512
)

// Span is one timed region of the pipeline.
type Span struct {
	Name     string
	Attrs    []KV
	Start    time.Time
	Duration time.Duration
	Events   []Event
	Children []*Span
	// TruncatedChildren / TruncatedEvents count entries dropped by the
	// MaxSpanChildren / MaxSpanEvents bounds.
	TruncatedChildren int
	TruncatedEvents   int

	parent *Span
}

// SetAttrs appends attributes to the span (nil-safe), e.g. to record a
// row count that is only known when the region finishes.
func (s *Span) SetAttrs(attrs ...KV) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, attrs...)
}

// AddChild attaches a pre-built child span (used to mirror the engine's
// per-operator ExecStats into the trace). Nil-safe, bounded.
func (s *Span) AddChild(c *Span) {
	if s == nil || c == nil {
		return
	}
	if len(s.Children) >= MaxSpanChildren {
		s.TruncatedChildren++
		return
	}
	s.Children = append(s.Children, c)
}

// Recorder collects one span tree and its events. It is single-goroutine
// by design (one recorder per query, like one evalGuard per EvalCtx); the
// zero-cost disabled path is a nil *Recorder.
type Recorder struct {
	root *Span
	cur  *Span
	// now is the clock, replaceable by tests for deterministic durations.
	now func() time.Time
}

// NewRecorder starts a recorder with an open root span.
func NewRecorder(rootName string) *Recorder {
	r := &Recorder{now: time.Now}
	r.root = &Span{Name: rootName, Start: r.now()}
	r.cur = r.root
	return r
}

// Enabled reports whether the recorder collects anything. Call sites that
// would allocate attribute slices gate on this.
func (r *Recorder) Enabled() bool { return r != nil }

// Begin opens a child span of the current span and makes it current.
// Returns nil (harmless to End) on a nil recorder.
func (r *Recorder) Begin(name string, attrs ...KV) *Span {
	if r == nil {
		return nil
	}
	s := &Span{Name: name, Attrs: attrs, Start: r.now(), parent: r.cur}
	if len(r.cur.Children) >= MaxSpanChildren {
		r.cur.TruncatedChildren++
		// The span still opens (so End stays balanced and events nest
		// correctly); it just isn't retained in the tree.
	} else {
		r.cur.Children = append(r.cur.Children, s)
	}
	r.cur = s
	return s
}

// End closes a span opened by Begin, restoring its parent as current.
// Nil-safe; ending an already-ended or foreign span is a no-op.
func (r *Recorder) End(s *Span) {
	if r == nil || s == nil {
		return
	}
	s.Duration = r.now().Sub(s.Start)
	if r.cur == s && s.parent != nil {
		r.cur = s.parent
	}
}

// Event appends a structured event to the current span.
func (r *Recorder) Event(kind string, attrs ...KV) {
	if r == nil {
		return
	}
	s := r.cur
	if len(s.Events) >= MaxSpanEvents {
		s.TruncatedEvents++
		return
	}
	s.Events = append(s.Events, Event{Kind: kind, Attrs: attrs})
}

// Finish closes the root span and returns the completed tree.
func (r *Recorder) Finish() *Span {
	if r == nil {
		return nil
	}
	r.root.Duration = r.now().Sub(r.root.Start)
	r.cur = r.root
	return r.root
}

// Root returns the root span (nil on a nil recorder).
func (r *Recorder) Root() *Span {
	if r == nil {
		return nil
	}
	return r.root
}

// --- context carriage ---

type ctxKey struct{}

// NewContext returns ctx carrying the recorder. Passing nil r returns ctx
// unchanged, so disabled observation adds no context wrapper at all.
func NewContext(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext returns the recorder carried by ctx, or nil. The nil path
// is one interface lookup and no allocation — cheap enough for every
// phase entry, though never called per row.
func FromContext(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxKey{}).(*Recorder)
	return r
}

// --- rendering ---

func writeAttrs(sb *strings.Builder, attrs []KV) {
	for _, a := range attrs {
		sb.WriteByte(' ')
		sb.WriteString(a.K)
		sb.WriteByte('=')
		switch v := a.V.(type) {
		case string:
			sb.WriteString(v)
		case int64:
			sb.WriteString(strconv.FormatInt(v, 10))
		case int:
			sb.WriteString(strconv.Itoa(v))
		default:
			fmt.Fprintf(sb, "%v", v)
		}
	}
}

// FormatTree renders the span tree as an indented outline. With
// withTimings false the output is fully deterministic for a given query
// and rule base — the trace-determinism regression compares exactly this
// form — and with true each span carries its measured duration.
func FormatTree(root *Span, withTimings bool) string {
	var sb strings.Builder
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		indent := strings.Repeat("  ", depth)
		sb.WriteString(indent)
		sb.WriteString(s.Name)
		writeAttrs(&sb, s.Attrs)
		if withTimings {
			fmt.Fprintf(&sb, " (%s)", s.Duration.Round(time.Microsecond))
		}
		sb.WriteByte('\n')
		for _, ev := range s.Events {
			sb.WriteString(indent)
			sb.WriteString("  · ")
			sb.WriteString(ev.Kind)
			writeAttrs(&sb, ev.Attrs)
			sb.WriteByte('\n')
		}
		if s.TruncatedEvents > 0 {
			fmt.Fprintf(&sb, "%s  · (%d more events truncated)\n", indent, s.TruncatedEvents)
		}
		for _, c := range s.Children {
			walk(c, depth+1)
		}
		if s.TruncatedChildren > 0 {
			fmt.Fprintf(&sb, "%s  (%d more spans truncated)\n", indent, s.TruncatedChildren)
		}
	}
	if root == nil {
		return ""
	}
	walk(root, 0)
	return sb.String()
}

// WriteTree writes FormatTree output to w.
func WriteTree(w io.Writer, root *Span, withTimings bool) error {
	_, err := io.WriteString(w, FormatTree(root, withTimings))
	return err
}
