package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Structured query log: one wide event per request, the "canonical log
// line" pattern. Instead of scattering a request's story across many
// narrow log lines, every field an operator (or the rule-discovery
// ranker, ROADMAP item 2) could want is folded into a single JSON
// object: who (tenant), what shape (template hash), how it was answered
// (cache outcome, degradation code), what it cost (phase timings, guard
// budget consumption, engine counter deltas).
//
// The emission path is bounded and never blocks a request: events go
// through a fixed-capacity channel drained by one background goroutine;
// when the channel is full the event is dropped and counted — drops are
// visible (lera_querylog_dropped_total), never silent. Sampling (keep 1
// in N) is applied before the channel and also counted, so
// emitted + dropped + sampled_out always equals the requests offered.

// QueryEvent is one wide query-log event. Fields are flat (no nested
// structs beyond Budget) so downstream line-oriented tooling can select
// on them without schema knowledge. Zero-valued optional fields are
// omitted.
type QueryEvent struct {
	Time   time.Time `json:"time"`
	Tenant string    `json:"tenant,omitempty"`
	Query  string    `json:"query,omitempty"`

	// Code is the protocol outcome code (OK, PARSE_ERROR, TIMEOUT,
	// OVERLOADED, ...) — the guard.Code vocabulary.
	Code  string `json:"code"`
	Error string `json:"error,omitempty"`

	// TemplateHash identifies the query shape (plancache templatizer);
	// rendered as hex for log greppability. Empty when the query never
	// reached the rewrite phase.
	TemplateHash string `json:"template_hash,omitempty"`
	// Cache is the plan-cache outcome: "hit", "miss", "bypass" or "".
	Cache string `json:"cache,omitempty"`

	// Phase timings, nanoseconds. Zero when the phase did not run.
	ParseNs     int64 `json:"parse_ns,omitempty"`
	TranslateNs int64 `json:"translate_ns,omitempty"`
	RewriteNs   int64 `json:"rewrite_ns,omitempty"`
	ExecNs      int64 `json:"exec_ns,omitempty"`
	ElapsedNs   int64 `json:"elapsed_ns"`

	// Guard budget consumption (used vs. limit; limits 0 = unlimited).
	RowsUsed   int64 `json:"rows_used,omitempty"`
	RowsLimit  int64 `json:"rows_limit,omitempty"`
	StepsUsed  int64 `json:"steps_used,omitempty"`
	StepsLimit int64 `json:"steps_limit,omitempty"`
	// Memory governor consumption: the tracked-memory peak against the
	// per-operator grant, all zero when the governor is off.
	MemPeakBytes int64 `json:"mem_peak_bytes,omitempty"`
	MemLimit     int64 `json:"mem_limit,omitempty"`

	// Engine counter deltas for this query.
	Scanned       int64 `json:"scanned,omitempty"`
	JoinPairs     int64 `json:"join_pairs,omitempty"`
	Emitted       int64 `json:"emitted,omitempty"`
	PredEvals     int64 `json:"pred_evals,omitempty"`
	FixIterations int64 `json:"fix_iterations,omitempty"`

	// Out-of-core activity for this query (spill-to-disk under the
	// memory governor): partition files written, bytes spilled, records
	// read back. All zero for queries that never spilled.
	SpillPartitions int64 `json:"spill_partitions,omitempty"`
	SpillBytes      int64 `json:"spill_bytes,omitempty"`
	SpillReads      int64 `json:"spill_reads,omitempty"`

	// Rewrite effort for this query.
	MatchAttempts int64 `json:"match_attempts,omitempty"`
	Applications  int64 `json:"applications,omitempty"`

	Rows     int64  `json:"rows"`
	Degraded bool   `json:"degraded,omitempty"`
	Reason   string `json:"degraded_reason,omitempty"`
}

// Sink receives drained query events. Emit is called from the drainer
// goroutine only, so implementations need no internal locking against
// concurrent Emit calls (Close may race with nothing: it is called once,
// after the drainer stops).
type Sink interface {
	Emit(ev QueryEvent)
	Close() error
}

// WriterSink writes events as JSON lines to an io.Writer.
type WriterSink struct {
	W io.Writer
	// CloseW, when set, is closed by Close (e.g. the underlying file).
	CloseW io.Closer
	enc    *json.Encoder
}

// Emit writes one event as a JSON line. Encode errors are swallowed —
// a broken sink must not take the server down; the drop shows up in the
// operator's file, not the request path.
func (s *WriterSink) Emit(ev QueryEvent) {
	if s.enc == nil {
		s.enc = json.NewEncoder(s.W)
	}
	_ = s.enc.Encode(ev)
}

// Close closes the underlying writer when it is closable.
func (s *WriterSink) Close() error {
	if s.CloseW != nil {
		return s.CloseW.Close()
	}
	return nil
}

// QueryLog fans query events into a sink through a bounded channel.
// A nil *QueryLog no-ops every method, so callers hold one field and
// never branch. Safe for concurrent Record calls.
type QueryLog struct {
	ch     chan QueryEvent
	sink   Sink
	sample int64 // keep 1 in sample (1 = keep all)
	seq    atomic.Int64

	emitted    atomic.Int64
	dropped    atomic.Int64
	sampledOut atomic.Int64

	done chan struct{}
	once sync.Once

	// closeMu serializes Record against Close so a late Record cannot
	// send on the closed channel; closed makes post-Close Records count
	// as drops rather than disappear.
	closeMu sync.RWMutex
	closed  bool
}

// DefaultQueryLogBuffer is the bounded-channel capacity between the
// request path and the drainer.
const DefaultQueryLogBuffer = 1024

// NewQueryLog starts a query log draining into sink. buffer <= 0 takes
// DefaultQueryLogBuffer; sample <= 1 keeps every event, sample = N keeps
// 1 in N (deterministic round-robin, not random, so low-rate tests are
// predictable).
func NewQueryLog(sink Sink, buffer, sample int) *QueryLog {
	if sink == nil {
		return nil
	}
	if buffer <= 0 {
		buffer = DefaultQueryLogBuffer
	}
	if sample < 1 {
		sample = 1
	}
	q := &QueryLog{
		ch:     make(chan QueryEvent, buffer),
		sink:   sink,
		sample: int64(sample),
		done:   make(chan struct{}),
	}
	go q.drain()
	return q
}

func (q *QueryLog) drain() {
	defer close(q.done)
	for ev := range q.ch {
		q.sink.Emit(ev)
		q.emitted.Add(1)
	}
}

// Record offers one event to the log: sampled out, enqueued, or dropped
// if the buffer is full. Never blocks. Nil-safe.
func (q *QueryLog) Record(ev QueryEvent) {
	if q == nil {
		return
	}
	if q.sample > 1 && q.seq.Add(1)%q.sample != 1 {
		q.sampledOut.Add(1)
		return
	}
	q.closeMu.RLock()
	defer q.closeMu.RUnlock()
	if q.closed {
		q.dropped.Add(1)
		return
	}
	select {
	case q.ch <- ev:
	default:
		q.dropped.Add(1)
	}
}

// Emitted, Dropped and SampledOut report the event accounting; their sum
// equals the number of Record calls once Close has drained the channel.
func (q *QueryLog) Emitted() int64 {
	if q == nil {
		return 0
	}
	return q.emitted.Load()
}

// Dropped reports events lost to a full buffer.
func (q *QueryLog) Dropped() int64 {
	if q == nil {
		return 0
	}
	return q.dropped.Load()
}

// SampledOut reports events skipped by the sampling policy.
func (q *QueryLog) SampledOut() int64 {
	if q == nil {
		return 0
	}
	return q.sampledOut.Load()
}

// Metric names for the query-log accounting, kept here so every
// endpoint that carries them agrees (docs/OBSERVABILITY.md).
const (
	MetricQuerylogEvents     = "lera_querylog_events_total"
	MetricQuerylogDropped    = "lera_querylog_dropped_total"
	MetricQuerylogSampledOut = "lera_querylog_sampled_out_total"
)

// SyncMetrics copies the current accounting into gauges on reg (gauges,
// not counters, because they are set from absolute values). Call from a
// scrape hook or periodically. Nil-safe on both sides.
func (q *QueryLog) SyncMetrics(reg *Registry) {
	if q == nil || reg == nil {
		return
	}
	reg.Gauge(MetricQuerylogEvents, "query-log events emitted to the sink").Set(q.Emitted())
	reg.Gauge(MetricQuerylogDropped, "query-log events dropped on a full buffer").Set(q.Dropped())
	reg.Gauge(MetricQuerylogSampledOut, "query-log events skipped by sampling").Set(q.SampledOut())
}

// Close stops accepting events, drains the buffer into the sink, and
// closes the sink. Safe to call more than once; nil-safe.
func (q *QueryLog) Close() error {
	if q == nil {
		return nil
	}
	q.once.Do(func() {
		q.closeMu.Lock()
		q.closed = true
		q.closeMu.Unlock()
		close(q.ch)
	})
	<-q.done
	return q.sink.Close()
}
