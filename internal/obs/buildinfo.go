package obs

// RegisterBuildInfo exposes a lera_build_info{commit,go_version} gauge
// pinned to 1 — the Prometheus idiom for joining build provenance onto
// any other series. Call once per registry at process start; repeated
// calls with the same values are idempotent. Nil-safe.
func RegisterBuildInfo(reg *Registry, commit, goVersion string) {
	if reg == nil {
		return
	}
	reg.GaugeVec("lera_build_info",
		"build provenance: a constant 1 labeled by git commit and go version",
		"commit", "go_version").With(commit, goVersion).Set(1)
}
