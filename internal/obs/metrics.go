// Package obs is the observability layer of the pipeline: a process-wide
// metrics registry (counters, gauges, bounded histograms), lightweight
// hierarchical spans carried through context.Context, and a structured
// event log for rule applications, budget consumption and degradation.
//
// The paper argues that rewriting pays for itself in execution work saved;
// this package is what lets the system measure that claim in-band instead
// of asserting it per-benchmark. Design constraints, in order:
//
//  1. Disabled must be free. Every hook in the rewrite/execute hot paths
//     is gated on a nil check (a nil *Recorder no-ops, a missing context
//     recorder costs one Value lookup at phase entry, never per row).
//     The root allocation regression test pins this at 0 allocs/op.
//  2. Bounded memory. Histograms are fixed-bucket; span trees cap their
//     fanout (Span.Truncated counts what was dropped) so a 10^6-round
//     fixpoint cannot OOM the trace.
//  3. Zero dependencies. Standard library only, like internal/guard, so
//     every layer (rewrite, engine, core, cmd) can depend on it freely.
//
// See docs/OBSERVABILITY.md for the metric name inventory, the span
// hierarchy and the exposition formats.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. Safe for
// concurrent use; the zero value is ready.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored: counters only
// go up, matching the Prometheus contract).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 metric. Safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultDurationBuckets are the histogram bounds used for phase timings,
// in seconds: 10µs .. ~84s, exponential with factor 4.
var DefaultDurationBuckets = []float64{
	10e-6, 40e-6, 160e-6, 640e-6, 2.56e-3, 10.24e-3, 40.96e-3, 163.84e-3, 655.36e-3, 2.62144, 10.48576, 41.94304,
}

// DefaultCountBuckets are the histogram bounds used for per-query counts
// (rows, checks): 1 .. ~1M, exponential with factor 4.
var DefaultCountBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

// Histogram is a bounded fixed-bucket histogram: observations land in the
// first bucket whose upper bound is >= the value, with an implicit +Inf
// overflow bucket. Quantiles are estimated by linear interpolation within
// the winning bucket — coarse, but bounded-memory and mergeable, which is
// what a production scrape needs. Safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds
	counts []uint64  // len(bounds)+1; last is +Inf
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram builds a histogram over ascending upper bounds. An empty
// bounds slice gets DefaultDurationBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultDurationBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1), min: math.Inf(1), max: math.Inf(-1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-th quantile (0 < q < 1) from the buckets:
// the observation rank is located in its bucket and interpolated linearly
// between the bucket's bounds (clamped by the observed min/max for the
// outermost buckets). Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	var cum float64
	for i, c := range h.counts {
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		lo, hi := 0.0, h.max
		if i < len(h.bounds) {
			hi = math.Min(h.bounds[i], h.max)
		}
		if i > 0 {
			lo = h.bounds[i-1]
		}
		lo = math.Max(lo, h.min)
		if hi <= lo {
			return hi
		}
		// Interpolate the rank's position within this bucket.
		frac := (rank - (cum - float64(c))) / float64(c)
		return lo + frac*(hi-lo)
	}
	return h.max
}

// snapshot copies the histogram state for exposition.
func (h *Histogram) snapshot() (bounds []float64, counts []uint64, count uint64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bounds, append([]uint64(nil), h.counts...), h.count, h.sum
}

// metricKind discriminates registry entries for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterVec
	kindGaugeVec
	kindHistogramVec
)

// metric is one registered metric with its exposition metadata.
type metric struct {
	name string
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
	cv   *CounterVec
	gv   *GaugeVec
	hv   *HistogramVec
}

// Registry is a named collection of metrics. Get-or-create accessors are
// safe for concurrent use and idempotent: the first registration of a
// name wins, later calls return the same instance (a kind mismatch
// panics — it is a programming error, like a duplicate expvar name).
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
	order   []string // registration order; exposition sorts by name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

func (r *Registry) lookup(name string, kind metricKind) (*metric, bool) {
	r.mu.RLock()
	m, ok := r.metrics[name]
	r.mu.RUnlock()
	if !ok {
		return nil, false
	}
	if m.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
	}
	return m, true
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	if m, ok := r.lookup(name, kindCounter); ok {
		return m.c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m.c
	}
	m := &metric{name: name, help: help, kind: kindCounter, c: &Counter{}}
	r.metrics[name] = m
	r.order = append(r.order, name)
	return m.c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	if m, ok := r.lookup(name, kindGauge); ok {
		return m.g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m.g
	}
	m := &metric{name: name, help: help, kind: kindGauge, g: &Gauge{}}
	r.metrics[name] = m
	r.order = append(r.order, name)
	return m.g
}

// Histogram returns the named histogram, creating it on first use with
// the given bucket bounds (nil = DefaultDurationBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if m, ok := r.lookup(name, kindHistogram); ok {
		return m.h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m.h
	}
	m := &metric{name: name, help: help, kind: kindHistogram, h: NewHistogram(bounds)}
	r.metrics[name] = m
	r.order = append(r.order, name)
	return m.h
}

// CounterVec returns the named labeled counter family, creating it on
// first use with the given label names. Later calls must pass the same
// labels (a mismatch panics, like a kind mismatch).
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	if m, ok := r.lookup(name, kindCounterVec); ok {
		checkLabels(name, m.cv.vec.labels, labels)
		return m.cv
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m.cv
	}
	m := &metric{name: name, help: help, kind: kindCounterVec,
		cv: &CounterVec{vec: newLabelVec(name, labels)}}
	r.metrics[name] = m
	r.order = append(r.order, name)
	return m.cv
}

// GaugeVec returns the named labeled gauge family, creating it on first
// use with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	if m, ok := r.lookup(name, kindGaugeVec); ok {
		checkLabels(name, m.gv.vec.labels, labels)
		return m.gv
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m.gv
	}
	m := &metric{name: name, help: help, kind: kindGaugeVec,
		gv: &GaugeVec{vec: newLabelVec(name, labels)}}
	r.metrics[name] = m
	r.order = append(r.order, name)
	return m.gv
}

// HistogramVec returns the named labeled histogram family, creating it
// on first use with the given bucket bounds (nil = duration defaults)
// and label names. Every child shares the bound layout.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if m, ok := r.lookup(name, kindHistogramVec); ok {
		checkLabels(name, m.hv.vec.labels, labels)
		return m.hv
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m.hv
	}
	m := &metric{name: name, help: help, kind: kindHistogramVec,
		hv: &HistogramVec{vec: newLabelVec(name, labels), bounds: bounds}}
	r.metrics[name] = m
	r.order = append(r.order, name)
	return m.hv
}

func checkLabels(name string, have, want []string) {
	if len(have) != len(want) {
		panic(fmt.Sprintf("obs: metric %q re-registered with different labels", name))
	}
	for i := range have {
		if have[i] != want[i] {
			panic(fmt.Sprintf("obs: metric %q re-registered with different labels", name))
		}
	}
}

// sorted returns the metrics in name order for deterministic exposition.
func (r *Registry) sorted() []*metric {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*metric, 0, len(r.metrics))
	for _, name := range r.order {
		out = append(out, r.metrics[name])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
