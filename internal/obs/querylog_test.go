package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// memSink collects events in memory; Emit runs on the drainer goroutine
// only, so a plain slice suffices (Close makes the result visible).
type memSink struct {
	mu     sync.Mutex
	events []QueryEvent
	closed bool
}

func (s *memSink) Emit(ev QueryEvent) {
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

func (s *memSink) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return nil
}

func TestQueryLogNilSafe(t *testing.T) {
	var q *QueryLog
	q.Record(QueryEvent{Code: "OK"})
	q.SyncMetrics(NewRegistry())
	if q.Emitted() != 0 || q.Dropped() != 0 || q.SampledOut() != 0 {
		t.Fatal("nil QueryLog must report zeros")
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if NewQueryLog(nil, 0, 1) != nil {
		t.Fatal("nil sink must yield a nil (disabled) log")
	}
}

func TestQueryLogDeliversAll(t *testing.T) {
	sink := &memSink{}
	q := NewQueryLog(sink, 16, 1)
	const n = 200
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				q.Record(QueryEvent{Tenant: "t", Code: "OK", Rows: int64(i)})
			}
		}(w)
	}
	wg.Wait()
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	// The invariant: every Record is accounted exactly once.
	if got := q.Emitted() + q.Dropped() + q.SampledOut(); got != n {
		t.Fatalf("emitted %d + dropped %d + sampledOut %d = %d, want %d",
			q.Emitted(), q.Dropped(), q.SampledOut(), got, n)
	}
	if int64(len(sink.events)) != q.Emitted() {
		t.Fatalf("sink saw %d events, log counted %d emitted", len(sink.events), q.Emitted())
	}
	if !sink.closed {
		t.Fatal("Close must close the sink")
	}
}

func TestQueryLogSampling(t *testing.T) {
	sink := &memSink{}
	q := NewQueryLog(sink, 64, 10)
	const n = 100
	for i := 0; i < n; i++ {
		q.Record(QueryEvent{Code: "OK"})
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if got := q.Emitted(); got != n/10 {
		t.Fatalf("1-in-10 sampling emitted %d of %d, want %d", got, n, n/10)
	}
	if got := q.SampledOut(); got != n-n/10 {
		t.Fatalf("SampledOut = %d, want %d", got, n-n/10)
	}
	if got := q.Emitted() + q.Dropped() + q.SampledOut(); got != n {
		t.Fatalf("accounting sums to %d, want %d", got, n)
	}
}

// blockSink stalls the drainer until released, forcing buffer overflow.
type blockSink struct {
	memSink
	gate chan struct{}
	once sync.Once
}

func (s *blockSink) Emit(ev QueryEvent) {
	s.once.Do(func() { <-s.gate })
	s.memSink.Emit(ev)
}

func TestQueryLogDropsCounted(t *testing.T) {
	sink := &blockSink{gate: make(chan struct{})}
	q := NewQueryLog(sink, 4, 1)
	// One event enters the stalled drainer, four fill the buffer; the
	// rest must be dropped, never block.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			q.Record(QueryEvent{Code: "OK"})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Record blocked on a full buffer")
	}
	close(sink.gate)
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if q.Dropped() == 0 {
		t.Fatal("overflow produced no counted drops")
	}
	if got := q.Emitted() + q.Dropped() + q.SampledOut(); got != 50 {
		t.Fatalf("accounting sums to %d, want 50 (silent loss)", got)
	}
}

func TestQueryLogRecordAfterClose(t *testing.T) {
	q := NewQueryLog(&memSink{}, 4, 1)
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	q.Record(QueryEvent{Code: "OK"}) // must not panic (send on closed chan)
	if got := q.Dropped(); got != 1 {
		t.Fatalf("post-Close Record counted as %d drops, want 1", got)
	}
	if err := q.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestQueryLogSyncMetrics(t *testing.T) {
	q := NewQueryLog(&memSink{}, 16, 2)
	for i := 0; i < 10; i++ {
		q.Record(QueryEvent{Code: "OK"})
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	q.SyncMetrics(r)
	if got := r.Gauge(MetricQuerylogEvents, "").Value(); got != q.Emitted() {
		t.Fatalf("%s = %d, want %d", MetricQuerylogEvents, got, q.Emitted())
	}
	if got := r.Gauge(MetricQuerylogSampledOut, "").Value(); got != q.SampledOut() {
		t.Fatalf("%s = %d, want %d", MetricQuerylogSampledOut, got, q.SampledOut())
	}
}

func TestWriterSinkJSONLines(t *testing.T) {
	var sb strings.Builder
	q := NewQueryLog(&WriterSink{W: &sb}, 16, 1)
	q.Record(QueryEvent{Tenant: "acme", Code: "OK", Rows: 3, ElapsedNs: 1000})
	q.Record(QueryEvent{Code: "PARSE", Error: "syntax"})
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var lines int
	for sc.Scan() {
		lines++
		var ev QueryEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", lines, err, sc.Text())
		}
	}
	if lines != 2 {
		t.Fatalf("sink wrote %d JSON lines, want 2", lines)
	}
	if !strings.Contains(sb.String(), `"tenant":"acme"`) {
		t.Errorf("event missing tenant field:\n%s", sb.String())
	}
}
