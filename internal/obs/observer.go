package obs

// Observer is the session-level observability configuration: a metrics
// registry that outlives individual queries, and a switch for per-query
// trace recording. A nil *Observer disables the whole layer; a non-nil
// observer with Trace=false keeps metrics only (the common production
// setting — counters are atomics, traces allocate).
type Observer struct {
	// Metrics receives pipeline counters, gauges and histograms. Never
	// nil on an Observer built with NewObserver.
	Metrics *Registry
	// Trace enables per-query span/event recording. The resulting tree
	// lands on the query's Result (core.Result.Report).
	Trace bool
}

// NewObserver returns an observer with a fresh metrics registry and
// tracing off.
func NewObserver() *Observer {
	return &Observer{Metrics: NewRegistry()}
}

// Recorder returns a new per-query recorder when tracing is on, else nil
// (which every downstream hook treats as "off"). Nil-safe.
func (o *Observer) Recorder(rootName string) *Recorder {
	if o == nil || !o.Trace {
		return nil
	}
	return NewRecorder(rootName)
}
