package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter Value = %d, want 0", got)
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if got := g.Value(); got != 0 {
		t.Fatalf("nil gauge Value = %d, want 0", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "help")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("shared counter value = %d, want 1", b.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("x_total", "help")
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100, 1000})
	for i := 0; i < 100; i++ {
		h.Observe(5) // all in the (1,10] bucket
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	if got := h.Sum(); got != 500 {
		t.Fatalf("Sum = %v, want 500", got)
	}
	p50 := h.Quantile(0.5)
	if p50 < 1 || p50 > 10 {
		t.Fatalf("p50 = %v, want within (1,10]", p50)
	}
	// A spread distribution: quantiles must be monotone.
	h2 := NewHistogram(DefaultCountBuckets)
	for i := 1; i <= 1000; i++ {
		h2.Observe(float64(i))
	}
	q := []float64{h2.Quantile(0.5), h2.Quantile(0.95), h2.Quantile(0.99)}
	if !(q[0] <= q[1] && q[1] <= q[2]) {
		t.Fatalf("quantiles not monotone: %v", q)
	}
	if q[0] < 100 || q[0] > 1000 {
		t.Fatalf("p50 = %v, implausible for 1..1000", q[0])
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(DefaultDurationBuckets)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("lera_q_total", "Queries.").Add(3)
	r.Gauge("lera_rels", "Relations.").Set(7)
	r.Histogram("lera_lat_seconds", "Latency.", []float64{0.1, 1}).Observe(0.05)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP lera_q_total Queries.",
		"# TYPE lera_q_total counter",
		"lera_q_total 3",
		"# TYPE lera_rels gauge",
		"lera_rels 7",
		"# TYPE lera_lat_seconds histogram",
		`lera_lat_seconds_bucket{le="0.1"} 1`,
		`lera_lat_seconds_bucket{le="+Inf"} 1`,
		"lera_lat_seconds_sum 0.05",
		"lera_lat_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
}

func TestJSONExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c").Add(2)
	r.Histogram("h_seconds", "h", []float64{1, 2}).Observe(1.5)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &m); err != nil {
		t.Fatalf("WriteJSON not valid JSON: %v", err)
	}
	if m["c_total"] != float64(2) {
		t.Fatalf("c_total = %v, want 2", m["c_total"])
	}
	h, ok := m["h_seconds"].(map[string]any)
	if !ok || h["count"] != float64(1) {
		t.Fatalf("h_seconds = %v, want summary with count 1", m["h_seconds"])
	}
}

func TestHandlerFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c").Inc()
	h := r.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "c_total 1") {
		t.Fatalf("prometheus handler output: %s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if !strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("json content type = %q", rec.Header().Get("Content-Type"))
	}
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderNesting(t *testing.T) {
	rec := NewRecorder("root")
	a := rec.Begin("a")
	rec.Event("ev1", Str("k", "v"))
	b := rec.Begin("b", Int("n", 2))
	rec.End(b)
	rec.End(a)
	c := rec.Begin("c")
	rec.End(c)
	root := rec.Finish()
	got := FormatTree(root, false)
	want := "root\n" +
		"  a\n" +
		"    · ev1 k=v\n" +
		"    b n=2\n" +
		"  c\n"
	if got != want {
		t.Fatalf("tree mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestRecorderBounds(t *testing.T) {
	rec := NewRecorder("root")
	for i := 0; i < MaxSpanChildren+10; i++ {
		s := rec.Begin("child")
		rec.End(s)
	}
	for i := 0; i < MaxSpanEvents+5; i++ {
		rec.Event("e")
	}
	root := rec.Finish()
	if len(root.Children) != MaxSpanChildren {
		t.Fatalf("children = %d, want %d", len(root.Children), MaxSpanChildren)
	}
	if root.TruncatedChildren != 10 {
		t.Fatalf("TruncatedChildren = %d, want 10", root.TruncatedChildren)
	}
	if len(root.Events) != MaxSpanEvents || root.TruncatedEvents != 5 {
		t.Fatalf("events = %d truncated = %d", len(root.Events), root.TruncatedEvents)
	}
	out := FormatTree(root, false)
	if !strings.Contains(out, "(10 more spans truncated)") ||
		!strings.Contains(out, "(5 more events truncated)") {
		t.Fatalf("truncation notes missing:\n%s", out[:200])
	}
}

func TestContextCarriage(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("empty context must carry no recorder")
	}
	if NewContext(ctx, nil) != ctx {
		t.Fatal("nil recorder must not wrap the context")
	}
	rec := NewRecorder("r")
	if FromContext(NewContext(ctx, rec)) != rec {
		t.Fatal("recorder not carried")
	}
}

// TestNilRecorderAllocs pins the disabled path: every hook on a nil
// recorder and nil observer must be allocation-free.
func TestNilRecorderAllocs(t *testing.T) {
	var rec *Recorder
	var o *Observer
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		s := rec.Begin("x")
		rec.Event("e")
		rec.End(s)
		rec.Finish()
		if rec.Enabled() {
			t.Fatal("nil recorder enabled")
		}
		_ = o.Recorder("q")
		_ = NewContext(ctx, nil)
		_ = FromContext(ctx)
	})
	if allocs != 0 {
		t.Fatalf("disabled observability path allocates: %v allocs/op", allocs)
	}
}

func TestRecorderDeterministicClock(t *testing.T) {
	rec := NewRecorder("root")
	tick := time.Unix(0, 0)
	rec.now = func() time.Time { tick = tick.Add(time.Millisecond); return tick }
	s := rec.Begin("a")
	rec.End(s)
	root := rec.Finish()
	if s.Duration != time.Millisecond {
		t.Fatalf("span duration = %v, want 1ms", s.Duration)
	}
	out := FormatTree(root, true)
	if !strings.Contains(out, "a (1ms)") {
		t.Fatalf("timed tree missing duration:\n%s", out)
	}
}
