package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labeled metrics: CounterVec, GaugeVec and HistogramVec — families of
// child metrics keyed by a fixed label vector, the per-tenant /
// per-code dimension the flat registry (metrics.go) cannot express.
//
// Design constraints, matching the rest of the package:
//
//  1. Bounded cardinality. A vector accepts at most maxSeries distinct
//     label-value combinations (DefaultMaxSeries unless overridden with
//     SetMaxSeries). Past the cap, new combinations collapse into an
//     overflow series whose FIRST label value is OverflowLabel ("_other")
//     — by convention the first label is the high-cardinality one
//     (tenant), the rest a closed vocabulary (codes). Nothing is ever
//     dropped: an overflowed observation still counts, so the sum over
//     all series of a vector remains exact. Collapses are counted
//     (Overflowed) so operators can see the cap is too small.
//  2. Exact sums. Children are ordinary *Counter/*Gauge/*Histogram
//     handles backed by atomics; With() is a read-locked map hit on the
//     steady state, and callers on hot paths may cache the child handle.
//  3. Prometheus-faithful exposition. Label values are escaped per the
//     text exposition format (backslash, quote, newline), label names
//     render in their declared order, and series render in sorted key
//     order so scrapes are deterministic (expose.go).
//  4. Nil is off. A nil vector returns nil children, and nil children
//     no-op — the disabled path stays allocation-free.
type labelVec struct {
	mu     sync.RWMutex
	name   string
	labels []string
	max    int
	series map[string]*labelSeries
	// overflowed counts label-value combinations collapsed into the
	// _other overflow series because the vector was at capacity.
	overflowed atomic.Int64
}

// labelSeries is one child of a vector: its escaped, render-ready label
// values plus the child metric (exactly one of c/g/h is set, matching
// the owning vector's kind).
type labelSeries struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// DefaultMaxSeries bounds the label-set cardinality of one vector unless
// SetMaxSeries raises it: high enough for a realistic tenant roster times
// a closed code vocabulary, low enough that a tenant-name-per-request bug
// cannot grow a scrape without bound.
const DefaultMaxSeries = 256

// OverflowLabel is the value substituted for the first (high-cardinality)
// label of combinations created past the cardinality cap.
const OverflowLabel = "_other"

func newLabelVec(name string, labels []string) *labelVec {
	if len(labels) == 0 {
		panic("obs: labeled metric " + name + " needs at least one label")
	}
	return &labelVec{name: name, labels: append([]string(nil), labels...),
		max: DefaultMaxSeries, series: map[string]*labelSeries{}}
}

// seriesKey joins label values into a map key. Values are joined with an
// unlikely separator; the escaped render form is stored on the series.
func seriesKey(values []string) string {
	var sb strings.Builder
	for i, v := range values {
		if i > 0 {
			sb.WriteByte('\x1f')
		}
		sb.WriteString(v)
	}
	return sb.String()
}

// lookup returns the series for values, creating it under the cardinality
// policy. make constructs the child metric for a fresh series.
func (v *labelVec) lookup(values []string, make func() *labelSeries) *labelSeries {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: metric %s expects %d label value(s), got %d", v.name, len(v.labels), len(values)))
	}
	key := seriesKey(values)
	v.mu.RLock()
	s, ok := v.series[key]
	v.mu.RUnlock()
	if ok {
		return s
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if s, ok := v.series[key]; ok {
		return s
	}
	if len(v.series) >= v.max {
		// At capacity: collapse the high-cardinality first label into the
		// overflow series and count the collapse. The overflow series
		// itself is created past the cap (its remaining labels come from
		// closed vocabularies, so the set stays bounded).
		if values[0] != OverflowLabel {
			v.overflowed.Add(1)
			over := append([]string(nil), values...)
			over[0] = OverflowLabel
			okey := seriesKey(over)
			if s, ok := v.series[okey]; ok {
				return s
			}
			s := make()
			s.values = over
			v.series[okey] = s
			return s
		}
	}
	s = make()
	s.values = append([]string(nil), values...)
	v.series[key] = s
	return s
}

// setMax adjusts the cardinality cap (existing series are kept even if
// they exceed a lowered cap; only new combinations overflow).
func (v *labelVec) setMax(n int) {
	if v == nil || n <= 0 {
		return
	}
	v.mu.Lock()
	v.max = n
	v.mu.Unlock()
}

// sortedSeries snapshots the series in deterministic (sorted-key) order
// for exposition.
func (v *labelVec) sortedSeries() []*labelSeries {
	v.mu.RLock()
	keys := make([]string, 0, len(v.series))
	for k := range v.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*labelSeries, len(keys))
	for i, k := range keys {
		out[i] = v.series[k]
	}
	v.mu.RUnlock()
	return out
}

// CounterVec is a family of counters keyed by a label vector, e.g.
// lera_server_requests_total{tenant,code}.
type CounterVec struct {
	vec *labelVec
}

// With returns the counter for the given label values (in declared label
// order), creating it on first use under the cardinality policy. A nil
// vector returns a nil (no-op) counter.
func (cv *CounterVec) With(values ...string) *Counter {
	if cv == nil {
		return nil
	}
	return cv.vec.lookup(values, func() *labelSeries { return &labelSeries{c: &Counter{}} }).c
}

// SetMaxSeries adjusts the vector's cardinality cap (nil-safe).
func (cv *CounterVec) SetMaxSeries(n int) {
	if cv == nil {
		return
	}
	cv.vec.setMax(n)
}

// Overflowed reports label-value combinations collapsed into the
// overflow series.
func (cv *CounterVec) Overflowed() int64 {
	if cv == nil {
		return 0
	}
	return cv.vec.overflowed.Load()
}

// Sum returns the total over every series of the vector — the exactness
// witness against an unlabeled ledger.
func (cv *CounterVec) Sum() int64 {
	if cv == nil {
		return 0
	}
	var total int64
	for _, s := range cv.vec.sortedSeries() {
		total += s.c.Value()
	}
	return total
}

// GaugeVec is a family of gauges keyed by a label vector, e.g.
// lera_build_info{commit,go_version}.
type GaugeVec struct {
	vec *labelVec
}

// With returns the gauge for the given label values (nil-safe).
func (gv *GaugeVec) With(values ...string) *Gauge {
	if gv == nil {
		return nil
	}
	return gv.vec.lookup(values, func() *labelSeries { return &labelSeries{g: &Gauge{}} }).g
}

// SetMaxSeries adjusts the vector's cardinality cap (nil-safe).
func (gv *GaugeVec) SetMaxSeries(n int) {
	if gv == nil {
		return
	}
	gv.vec.setMax(n)
}

// HistogramVec is a family of histograms keyed by a label vector, e.g.
// lera_server_request_seconds{tenant}. All children share one bucket
// layout, so the per-label series merge cleanly on the scrape side.
type HistogramVec struct {
	vec    *labelVec
	bounds []float64
}

// With returns the histogram for the given label values (nil-safe).
func (hv *HistogramVec) With(values ...string) *Histogram {
	if hv == nil {
		return nil
	}
	return hv.vec.lookup(values, func() *labelSeries { return &labelSeries{h: NewHistogram(hv.bounds)} }).h
}

// SetMaxSeries adjusts the vector's cardinality cap (nil-safe).
func (hv *HistogramVec) SetMaxSeries(n int) {
	if hv == nil {
		return
	}
	hv.vec.setMax(n)
}

// Overflowed reports label-value combinations collapsed into the
// overflow series.
func (hv *HistogramVec) Overflowed() int64 {
	if hv == nil {
		return 0
	}
	return hv.vec.overflowed.Load()
}

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double quote and newline.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// labelString renders a full {k="v",...} label set in declared label
// order, values escaped.
func labelString(labels, values []string) string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(values[i]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}
