package obs

// Exposition: the registry renders as expvar-style JSON and as Prometheus
// text exposition format (version 0.0.4), and serves both over HTTP.
// Exposition holds only read locks and snapshots histograms, so a scrape
// never blocks the hot path for longer than one bucket copy.

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// HistogramSummary is the JSON shape of one histogram.
type HistogramSummary struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot returns the registry as a flat name->value map: counters and
// gauges as int64, histograms as HistogramSummary.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	for _, m := range r.sorted() {
		switch m.kind {
		case kindCounter:
			out[m.name] = m.c.Value()
		case kindGauge:
			out[m.name] = m.g.Value()
		case kindHistogram:
			out[m.name] = HistogramSummary{
				Count: m.h.Count(), Sum: m.h.Sum(),
				P50: m.h.Quantile(0.50), P95: m.h.Quantile(0.95), P99: m.h.Quantile(0.99),
			}
		case kindCounterVec:
			series := map[string]int64{}
			for _, s := range m.cv.vec.sortedSeries() {
				series[labelString(m.cv.vec.labels, s.values)] = s.c.Value()
			}
			out[m.name] = series
		case kindGaugeVec:
			series := map[string]int64{}
			for _, s := range m.gv.vec.sortedSeries() {
				series[labelString(m.gv.vec.labels, s.values)] = s.g.Value()
			}
			out[m.name] = series
		case kindHistogramVec:
			series := map[string]HistogramSummary{}
			for _, s := range m.hv.vec.sortedSeries() {
				series[labelString(m.hv.vec.labels, s.values)] = HistogramSummary{
					Count: s.h.Count(), Sum: s.h.Sum(),
					P50: s.h.Quantile(0.50), P95: s.h.Quantile(0.95), P99: s.h.Quantile(0.99),
				}
			}
			out[m.name] = series
		}
	}
	return out
}

// WriteJSON writes the registry as one sorted-key JSON object, the same
// shape expvar would publish.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ExpvarFunc adapts the registry to an expvar.Func, for callers that want
// the standard /debug/vars page to carry these metrics:
//
//	expvar.Publish("lera", reg.ExpvarFunc())
func (r *Registry) ExpvarFunc() expvar.Func {
	return func() any { return r.Snapshot() }
}

// promEscape escapes a help string for the Prometheus text format.
func promEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WritePrometheus writes the registry in Prometheus text exposition
// format: counters and gauges as single samples, histograms as
// cumulative _bucket{le=...} series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, m := range r.sorted() {
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, promEscape(m.help)); err != nil {
				return err
			}
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(w, "# TYPE %s counter\n", m.name)
			if _, err := fmt.Fprintf(w, "%s %d\n", m.name, m.c.Value()); err != nil {
				return err
			}
		case kindGauge:
			fmt.Fprintf(w, "# TYPE %s gauge\n", m.name)
			if _, err := fmt.Fprintf(w, "%s %d\n", m.name, m.g.Value()); err != nil {
				return err
			}
		case kindHistogram:
			fmt.Fprintf(w, "# TYPE %s histogram\n", m.name)
			bounds, counts, count, sum := m.h.snapshot()
			var cum uint64
			for i, b := range bounds {
				cum += counts[i]
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, formatFloat(b), cum); err != nil {
					return err
				}
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, count)
			fmt.Fprintf(w, "%s_sum %v\n", m.name, sum)
			if _, err := fmt.Fprintf(w, "%s_count %d\n", m.name, count); err != nil {
				return err
			}
		case kindCounterVec:
			fmt.Fprintf(w, "# TYPE %s counter\n", m.name)
			for _, s := range m.cv.vec.sortedSeries() {
				ls := labelString(m.cv.vec.labels, s.values)
				if _, err := fmt.Fprintf(w, "%s%s %d\n", m.name, ls, s.c.Value()); err != nil {
					return err
				}
			}
		case kindGaugeVec:
			fmt.Fprintf(w, "# TYPE %s gauge\n", m.name)
			for _, s := range m.gv.vec.sortedSeries() {
				ls := labelString(m.gv.vec.labels, s.values)
				if _, err := fmt.Fprintf(w, "%s%s %d\n", m.name, ls, s.g.Value()); err != nil {
					return err
				}
			}
		case kindHistogramVec:
			fmt.Fprintf(w, "# TYPE %s histogram\n", m.name)
			labels := m.hv.vec.labels
			for _, s := range m.hv.vec.sortedSeries() {
				bounds, counts, count, sum := s.h.snapshot()
				var cum uint64
				for i, b := range bounds {
					cum += counts[i]
					// _bucket carries the series labels plus le, in
					// that order, matching client_golang's rendering.
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name,
						labelStringWith(labels, s.values, "le", formatFloat(b)), cum); err != nil {
						return err
					}
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, labelStringWith(labels, s.values, "le", "+Inf"), count)
				fmt.Fprintf(w, "%s_sum%s %v\n", m.name, labelString(labels, s.values), sum)
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, labelString(labels, s.values), count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// labelStringWith renders {k="v",...,extraK="extraV"} — the histogram
// bucket form where le joins the series labels.
func labelStringWith(labels, values []string, extraK, extraV string) string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(values[i]))
		sb.WriteByte('"')
	}
	if len(labels) > 0 {
		sb.WriteByte(',')
	}
	sb.WriteString(extraK)
	sb.WriteString(`="`)
	sb.WriteString(escapeLabelValue(extraV))
	sb.WriteString(`"}`)
	return sb.String()
}

// formatFloat renders a bucket bound the way Prometheus clients expect
// (shortest representation, no exponent for small values).
func formatFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", f), "0"), ".")
}

// Handler serves the registry over HTTP: Prometheus text at the request
// path (conventionally /metrics), expvar-style JSON when the client asks
// with ?format=json or an Accept: application/json header.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
