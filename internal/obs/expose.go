package obs

// Exposition: the registry renders as expvar-style JSON and as Prometheus
// text exposition format (version 0.0.4), and serves both over HTTP.
// Exposition holds only read locks and snapshots histograms, so a scrape
// never blocks the hot path for longer than one bucket copy.

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// HistogramSummary is the JSON shape of one histogram.
type HistogramSummary struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot returns the registry as a flat name->value map: counters and
// gauges as int64, histograms as HistogramSummary.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	for _, m := range r.sorted() {
		switch m.kind {
		case kindCounter:
			out[m.name] = m.c.Value()
		case kindGauge:
			out[m.name] = m.g.Value()
		case kindHistogram:
			out[m.name] = HistogramSummary{
				Count: m.h.Count(), Sum: m.h.Sum(),
				P50: m.h.Quantile(0.50), P95: m.h.Quantile(0.95), P99: m.h.Quantile(0.99),
			}
		}
	}
	return out
}

// WriteJSON writes the registry as one sorted-key JSON object, the same
// shape expvar would publish.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ExpvarFunc adapts the registry to an expvar.Func, for callers that want
// the standard /debug/vars page to carry these metrics:
//
//	expvar.Publish("lera", reg.ExpvarFunc())
func (r *Registry) ExpvarFunc() expvar.Func {
	return func() any { return r.Snapshot() }
}

// promEscape escapes a help string for the Prometheus text format.
func promEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WritePrometheus writes the registry in Prometheus text exposition
// format: counters and gauges as single samples, histograms as
// cumulative _bucket{le=...} series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, m := range r.sorted() {
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, promEscape(m.help)); err != nil {
				return err
			}
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(w, "# TYPE %s counter\n", m.name)
			if _, err := fmt.Fprintf(w, "%s %d\n", m.name, m.c.Value()); err != nil {
				return err
			}
		case kindGauge:
			fmt.Fprintf(w, "# TYPE %s gauge\n", m.name)
			if _, err := fmt.Fprintf(w, "%s %d\n", m.name, m.g.Value()); err != nil {
				return err
			}
		case kindHistogram:
			fmt.Fprintf(w, "# TYPE %s histogram\n", m.name)
			bounds, counts, count, sum := m.h.snapshot()
			var cum uint64
			for i, b := range bounds {
				cum += counts[i]
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, formatFloat(b), cum); err != nil {
					return err
				}
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, count)
			fmt.Fprintf(w, "%s_sum %v\n", m.name, sum)
			if _, err := fmt.Fprintf(w, "%s_count %d\n", m.name, count); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatFloat renders a bucket bound the way Prometheus clients expect
// (shortest representation, no exponent for small values).
func formatFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", f), "0"), ".")
}

// Handler serves the registry over HTTP: Prometheus text at the request
// path (conventionally /metrics), expvar-style JSON when the client asks
// with ?format=json or an Accept: application/json header.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
