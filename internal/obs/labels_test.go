package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestLabelVecNilSafe(t *testing.T) {
	var cv *CounterVec
	cv.With("a", "b").Inc()
	cv.SetMaxSeries(10)
	if cv.Sum() != 0 || cv.Overflowed() != 0 {
		t.Fatal("nil CounterVec must report zeros")
	}
	var gv *GaugeVec
	gv.With("x").Set(3)
	gv.SetMaxSeries(10)
	var hv *HistogramVec
	hv.With("x").Observe(1)
	hv.SetMaxSeries(10)
	if hv.Overflowed() != 0 {
		t.Fatal("nil HistogramVec must report zero overflow")
	}
}

func TestLabelVecNilPathAllocs(t *testing.T) {
	var cv *CounterVec
	var hv *HistogramVec
	allocs := testing.AllocsPerRun(100, func() {
		cv.With("tenant", "OK").Inc()
		hv.With("tenant").Observe(0.001)
	})
	if allocs != 0 {
		t.Fatalf("nil vec path allocates %v per op, want 0", allocs)
	}
}

func TestCounterVecGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.CounterVec("req_total", "h", "tenant", "code")
	b := r.CounterVec("req_total", "h", "tenant", "code")
	if a != b {
		t.Fatal("same name must return the same vector")
	}
	c1 := a.With("t1", "OK")
	c2 := b.With("t1", "OK")
	if c1 != c2 {
		t.Fatal("same label values must return the same child")
	}
	c1.Inc()
	a.With("t2", "ERR").Add(2)
	if got := a.Sum(); got != 3 {
		t.Fatalf("Sum = %d, want 3", got)
	}
	// Re-registering the same name with different labels must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("label mismatch must panic")
		}
	}()
	r.CounterVec("req_total", "h", "tenant")
}

func TestCounterVecKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("vec_total", "h", "tenant")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Counter("vec_total", "h")
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("esc_total", "h", "tenant")
	cv.With("a\"b").Inc()
	cv.With("c\\d").Inc()
	cv.With("e\nf").Inc()
	cv.With("plain").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`esc_total{tenant="a\"b"} 1`,
		`esc_total{tenant="c\\d"} 1`,
		`esc_total{tenant="e\nf"} 1`,
		`esc_total{tenant="plain"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// The newline must be escaped, not literal: every non-comment line
	// still parses as `series value`.
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, " ") {
			t.Errorf("unparseable exposition line %q", line)
		}
	}
}

func TestCounterVecOverflow(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("cap_total", "h", "tenant", "code")
	cv.SetMaxSeries(3)
	cv.With("t1", "OK").Inc()
	cv.With("t2", "OK").Inc()
	cv.With("t3", "OK").Inc()
	// At capacity: new tenants collapse into {_other, code}.
	cv.With("t4", "OK").Inc()
	cv.With("t5", "OK").Add(2)
	cv.With("t6", "ERR").Inc()
	if got := cv.Overflowed(); got != 3 {
		t.Fatalf("Overflowed = %d, want 3", got)
	}
	// Nothing dropped: the sum stays exact.
	if got := cv.Sum(); got != 7 {
		t.Fatalf("Sum = %d, want 7", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`cap_total{tenant="_other",code="OK"} 3`,
		`cap_total{tenant="_other",code="ERR"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, `tenant="t4"`) || strings.Contains(out, `tenant="t5"`) {
		t.Errorf("over-cap tenants leaked their own series\n%s", out)
	}
	// An existing series keeps accumulating normally even at the cap.
	cv.With("t1", "OK").Inc()
	if got := cv.Sum(); got != 8 {
		t.Fatalf("Sum after existing-series inc = %d, want 8", got)
	}
	if got := cv.Overflowed(); got != 3 {
		t.Fatalf("existing-series inc bumped Overflowed to %d", got)
	}
}

func TestCounterVecConcurrentSumExact(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("con_total", "h", "tenant", "code")
	cv.SetMaxSeries(4) // force overflow under contention
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				cv.With(fmt.Sprintf("tenant%d", (w+i)%7), "OK").Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := cv.Sum(); got != workers*perWorker {
		t.Fatalf("Sum = %d, want %d (observations lost under concurrency)", got, workers*perWorker)
	}
}

func TestHistogramVecExposition(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("lat_seconds", "h", []float64{0.1, 1}, "tenant")
	hv.With("t1").Observe(0.05)
	hv.With("t1").Observe(0.5)
	hv.With("t2").Observe(2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{tenant="t1",le="0.1"} 1`,
		`lat_seconds_bucket{tenant="t1",le="1"} 2`,
		`lat_seconds_bucket{tenant="t1",le="+Inf"} 2`,
		`lat_seconds_count{tenant="t1"} 2`,
		`lat_seconds_bucket{tenant="t2",le="+Inf"} 1`,
		`lat_seconds_count{tenant="t2"} 1`,
		`lat_seconds_sum{tenant="t2"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Exactly one TYPE line for the whole family.
	if n := strings.Count(out, "# TYPE lat_seconds "); n != 1 {
		t.Errorf("family has %d TYPE lines, want 1\n%s", n, out)
	}
}

func TestGaugeVecBuildInfo(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r, "abc123", "go1.22")
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `lera_build_info{commit="abc123",go_version="go1.22"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("exposition missing %q\n%s", want, sb.String())
	}
}

func TestLabelVecWrongArity(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("arity_total", "h", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label-value arity must panic")
		}
	}()
	cv.With("only-one")
}
