package term

import (
	"testing"

	"lera/internal/value"
)

// sample terms covering every kind, canonicalization and sharing.
func hashSamples() []*Term {
	deep := F("SEARCH", List(Str("FILM")), F("ANDS", Set(F("EQ", Num(1), Num(1)))), V("p"))
	return []*Term{
		Num(5), Flt(5), Num(-3), Str("x"), Str(""), TrueT(), FalseT(),
		C(value.Null),
		V("x"), V("y"), SV("x"),
		F("F", V("x")), FV("F", V("x")),
		Set(Num(1), Num(2)), Set(Num(2), Num(1)), Bag(Num(1), Num(1)),
		List(Num(1), Num(2)), List(Num(2), Num(1)),
		TupleT(Num(1)), Array(Num(1)),
		deep,
		ReplaceAt(deep, Path{1, 0, 0, 1}, Num(2)),
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	ts := hashSamples()
	for i, a := range ts {
		for j, b := range ts {
			eq := Compare(a, b) == 0
			if eq && a.Hash() != b.Hash() {
				t.Errorf("samples %d and %d compare equal but hash %d != %d (%s vs %s)",
					i, j, a.Hash(), b.Hash(), a, b)
			}
			if Equal(a, b) != eq {
				t.Errorf("Equal(%s, %s) = %v, Compare says %v", a, b, !eq, eq)
			}
		}
	}
}

func TestHashNumericCrossKind(t *testing.T) {
	if Num(5).Hash() != Flt(5).Hash() {
		t.Errorf("5 and 5.0 compare equal but hash differently")
	}
	if !Equal(Num(5), Flt(5)) {
		t.Errorf("Equal(5, 5.0) = false")
	}
}

func TestRawLiteralHashMatchesConstructed(t *testing.T) {
	// A term built by hand (no seal) must hash like the constructed one
	// and compare equal through the fast path without panicking.
	raw := &Term{Kind: Fun, Functor: "F", Args: []*Term{V("x")}, VarHead: true}
	built := FV("F", V("x"))
	if raw.Hash() != built.Hash() {
		t.Errorf("raw literal hash %d != constructed %d", raw.Hash(), built.Hash())
	}
	if !Equal(raw, built) || !Equal(built, raw) {
		t.Errorf("raw literal and constructed term not Equal")
	}
	if raw.Size() != built.Size() {
		t.Errorf("raw literal size %d != constructed %d", raw.Size(), built.Size())
	}
}

func TestReplaceAtKeepsMemoFresh(t *testing.T) {
	// Replacing under a VarHead spine must reseal every rebuilt node:
	// a stale memo would make Equal disagree with Compare.
	root := FV("G", F("H", V("x"), Num(1)))
	repl := ReplaceAt(root, Path{0, 1}, Num(2))
	want := FV("G", F("H", V("x"), Num(2)))
	if Compare(repl, want) != 0 {
		t.Fatalf("ReplaceAt structure wrong: %s", repl)
	}
	if !Equal(repl, want) {
		t.Errorf("Equal(%s, %s) = false after ReplaceAt (stale memo?)", repl, want)
	}
	if repl.Hash() != want.Hash() {
		t.Errorf("hash %d != %d after ReplaceAt", repl.Hash(), want.Hash())
	}
	if repl.Size() != want.Size() {
		t.Errorf("size %d != %d after ReplaceAt", repl.Size(), want.Size())
	}
}

func TestSizeMemoMatchesCount(t *testing.T) {
	for _, s := range hashSamples() {
		walked := Count(s, func(*Term) bool { return true })
		if s.Size() != walked {
			t.Errorf("Size(%s) = %d, walk counts %d", s, s.Size(), walked)
		}
	}
}

func TestRewritePreservesMemo(t *testing.T) {
	in := F("ADD", F("ADD", Num(1), Num(2)), V("x"))
	out := Rewrite(in, func(s *Term) *Term {
		if s.Kind == Fun && s.Functor == "ADD" && s.Args[0].Kind == Const && s.Args[1].Kind == Const {
			return Num(s.Args[0].Val.I + s.Args[1].Val.I)
		}
		return s
	})
	want := F("ADD", Num(3), V("x"))
	if !Equal(out, want) || out.Hash() != want.Hash() || out.Size() != want.Size() {
		t.Errorf("Rewrite memo stale: got %s (hash %d size %d), want %s (hash %d size %d)",
			out, out.Hash(), out.Size(), want, want.Hash(), want.Size())
	}
}
