package term

// Tree-walking utilities used by the rewrite engine: preorder traversal
// with paths, subterm access and path-based replacement with structural
// sharing. Replacement rebuilds only the spine from the root to the
// replaced node; SET/BAG nodes on the spine are re-canonicalised by F.

// Path addresses a subterm by argument indices from the root.
type Path []int

// Clone copies the path.
func (p Path) Clone() Path { return append(Path(nil), p...) }

// At returns the subterm addressed by path, or nil if the path is invalid.
func At(t *Term, path Path) *Term {
	for _, i := range path {
		if t == nil || t.Kind != Fun || i < 0 || i >= len(t.Args) {
			return nil
		}
		t = t.Args[i]
	}
	return t
}

// ReplaceAt returns a copy of t with the subterm at path replaced. The
// original term is unchanged; unaffected subtrees are shared. Only the
// spine from the root to the replaced node is rebuilt, and each rebuilt
// node's hash/size memo is recomputed from its (memoized) children.
func ReplaceAt(t *Term, path Path, repl *Term) *Term {
	if len(path) == 0 {
		return repl
	}
	i := path[0]
	if t.Kind != Fun || i < 0 || i >= len(t.Args) {
		return t
	}
	args := make([]*Term, len(t.Args))
	copy(args, t.Args)
	args[i] = ReplaceAt(t.Args[i], path[1:], repl)
	return rebuildFun(t, args)
}

// rebuildFun constructs a Fun node like t but with new arguments,
// preserving the VarHead flag and keeping the hash/size memo valid (F
// seals before VarHead is known, so a VarHead copy must be resealed).
func rebuildFun(t *Term, args []*Term) *Term {
	nt := F(t.Functor, args...)
	if t.VarHead {
		nt.VarHead = true
		nt.seal()
	}
	return nt
}

// Walk calls fn on every subterm of t in preorder with its path. If fn
// returns false the walk stops immediately and Walk returns false.
func Walk(t *Term, fn func(sub *Term, path Path) bool) bool {
	var rec func(sub *Term, path Path) bool
	rec = func(sub *Term, path Path) bool {
		if !fn(sub, path) {
			return false
		}
		if sub.Kind == Fun {
			for i, a := range sub.Args {
				if !rec(a, append(path, i)) {
					return false
				}
			}
		}
		return true
	}
	return rec(t, Path{})
}

// Count returns the number of subterms satisfying pred.
func Count(t *Term, pred func(*Term) bool) int {
	n := 0
	Walk(t, func(sub *Term, _ Path) bool {
		if pred(sub) {
			n++
		}
		return true
	})
	return n
}

// Contains reports whether any subterm satisfies pred.
func Contains(t *Term, pred func(*Term) bool) bool {
	return !Walk(t, func(sub *Term, _ Path) bool { return !pred(sub) })
}

// Rewrite applies fn bottom-up to every subterm, replacing each subterm
// with fn's result. fn must return its argument unchanged when it does not
// rewrite. Structural sharing is preserved where nothing changes.
func Rewrite(t *Term, fn func(*Term) *Term) *Term {
	if t.Kind == Fun {
		changed := false
		args := make([]*Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = Rewrite(a, fn)
			if args[i] != a {
				changed = true
			}
		}
		if changed {
			t = rebuildFun(t, args)
		}
	}
	return fn(t)
}
