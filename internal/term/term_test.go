package term

import (
	"strings"
	"testing"
)

func TestConstructorsAndString(t *testing.T) {
	cases := []struct {
		t    *Term
		want string
	}{
		{Num(42), "42"},
		{Flt(2.5), "2.5"},
		{Str("Quinn"), "'Quinn'"},
		{TrueT(), "TRUE"},
		{FalseT(), "FALSE"},
		{V("x"), "x"},
		{SV("x"), "x*"},
		{F("MEMBER", Str("a"), V("s")), "MEMBER('a', s)"},
		{List(Num(1), Num(2)), "LIST(1, 2)"},
		{Set(), "SET()"},
		{FV("F", V("x")), "F(x)"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
	if (*Term)(nil).String() != "<nil>" {
		t.Error("nil String")
	}
}

func TestFunctorUppercased(t *testing.T) {
	if F("member").Functor != "MEMBER" {
		t.Error("functor must be upper-cased")
	}
}

func TestSetCanonicalization(t *testing.T) {
	s := Set(Num(3), Num(1), Num(3), Num(2))
	if s.String() != "SET(1, 2, 3)" {
		t.Errorf("set canonical form = %s", s)
	}
	// Bags sort but keep duplicates.
	b := Bag(Num(3), Num(1), Num(3))
	if b.String() != "BAG(1, 3, 3)" {
		t.Errorf("bag canonical form = %s", b)
	}
	// Lists preserve order.
	l := List(Num(3), Num(1))
	if l.String() != "LIST(3, 1)" {
		t.Errorf("list form = %s", l)
	}
	// Sequence variables float to the end but stay.
	p := Set(SV("x"), F("G", V("y")))
	if p.String() != "SET(G(y), x*)" {
		t.Errorf("pattern set form = %s", p)
	}
}

func TestSetDedupeMakesAndIdempotent(t *testing.T) {
	// AND over a SET of conjuncts is idempotent by construction — the
	// property the semantic rules rely on for termination.
	c := F("=", V("x"), V("y"))
	and1 := F("ANDS", Set(c, c))
	if len(and1.Args[0].Args) != 1 {
		t.Errorf("duplicate conjuncts must collapse: %s", and1)
	}
}

func TestCompareAndEqual(t *testing.T) {
	a := F("F", Num(1), V("x"))
	b := F("F", Num(1), V("x"))
	if !Equal(a, b) {
		t.Error("structurally equal terms")
	}
	if Equal(a, F("F", Num(1), V("y"))) {
		t.Error("different var names differ")
	}
	if Equal(a, F("G", Num(1), V("x"))) {
		t.Error("different functors differ")
	}
	if Equal(a, F("F", Num(1))) {
		t.Error("different arities differ")
	}
	if Compare(V("x"), SV("x")) == 0 {
		t.Error("var and seqvar differ")
	}
	if Compare(FV("F", V("x")), F("F", V("x"))) == 0 {
		t.Error("varhead and fixed head differ")
	}
	if Compare(Num(1), Num(2)) >= 0 {
		t.Error("constant order")
	}
	if Compare(a, a) != 0 {
		t.Error("identity")
	}
}

func TestIsGroundVarsSize(t *testing.T) {
	g := F("SEARCH", List(F("REL", Str("FILM"))), TrueT())
	if !g.IsGround() {
		t.Error("ground term")
	}
	ng := F("SEARCH", List(SV("x")), V("f"))
	if ng.IsGround() {
		t.Error("term with vars is not ground")
	}
	if FV("F", Num(1)).IsGround() {
		t.Error("function variable head is not ground")
	}
	vars, seqs, funs := map[string]bool{}, map[string]bool{}, map[string]bool{}
	FV("F", V("x"), SV("y"), F("G", V("z"))).Vars(vars, seqs, funs)
	if !vars["x"] || !vars["z"] || !seqs["y"] || !funs["F"] {
		t.Errorf("Vars = %v %v %v", vars, seqs, funs)
	}
	if g.Size() != 5 {
		t.Errorf("Size = %d, want 5", g.Size())
	}
}

func TestApply(t *testing.T) {
	b := NewBindings()
	b.BindVar("x", Num(7))
	b.BindSeq("r", []*Term{Str("a"), Str("b")})
	b.BindFun("F", "MEMBER")
	got, err := b.Apply(FV("F", V("x"), List(SV("r"), Num(9))))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "MEMBER(7, LIST('a', 'b', 9))" {
		t.Errorf("Apply = %s", got)
	}
	// Unbound errors.
	if _, err := b.Apply(V("nope")); err == nil {
		t.Error("unbound var must error")
	}
	if _, err := b.Apply(F("G", SV("nope"))); err == nil {
		t.Error("unbound seqvar must error")
	}
	if _, err := b.Apply(FV("H", Num(1))); err == nil {
		t.Error("unbound funvar must error")
	}
	if _, err := b.Apply(SV("r")); err == nil {
		t.Error("top-level seqvar must error")
	}
	// Constants pass through untouched (same pointer).
	c := Num(3)
	if got, _ := b.Apply(c); got != c {
		t.Error("constants are shared")
	}
}

func TestMustApplyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustApply must panic on unbound var")
		}
	}()
	NewBindings().MustApply(V("x"))
}

func TestBindingsTrail(t *testing.T) {
	b := NewBindings()
	mark := b.Mark()
	b.BindVar("x", Num(1))
	b.BindSeq("s", []*Term{Num(2)})
	b.BindFun("F", "G")
	if _, ok := b.Var("x"); !ok {
		t.Fatal("x bound")
	}
	b.Restore(mark)
	if _, ok := b.Var("x"); ok {
		t.Error("x must be unbound after restore")
	}
	if _, ok := b.Seq("s"); ok {
		t.Error("s must be unbound after restore")
	}
	if _, ok := b.Fun("F"); ok {
		t.Error("F must be unbound after restore")
	}
}

func TestBindingsCloneAndString(t *testing.T) {
	b := NewBindings()
	b.BindVar("x", Num(1))
	b.BindSeq("s", []*Term{Num(2)})
	b.BindFun("F", "G")
	c := b.Clone()
	b.Restore(0)
	if _, ok := c.Var("x"); !ok {
		t.Error("clone must survive restore of original")
	}
	s := c.String()
	for _, want := range []string{"x=1", "s*=[2]", "F()=G"} {
		if !strings.Contains(s, want) {
			t.Errorf("Bindings.String() = %s missing %s", s, want)
		}
	}
}

// --- matching ---

func mustMatch(t *testing.T, pat, subj *Term) *Bindings {
	t.Helper()
	b, ok := MatchFirst(pat, subj)
	if !ok {
		t.Fatalf("no match: %s vs %s", pat, subj)
	}
	return b
}

func mustNotMatch(t *testing.T, pat, subj *Term) {
	t.Helper()
	if _, ok := MatchFirst(pat, subj); ok {
		t.Fatalf("unexpected match: %s vs %s", pat, subj)
	}
}

func TestMatchBasics(t *testing.T) {
	b := mustMatch(t, V("x"), Num(5))
	if v, _ := b.Var("x"); v.Val.I != 5 {
		t.Errorf("x = %v", v)
	}
	mustMatch(t, Num(5), Num(5))
	mustNotMatch(t, Num(5), Num(6))
	mustNotMatch(t, Num(5), V("y"))
	mustNotMatch(t, F("F", V("x")), Num(5))
	mustNotMatch(t, F("F", V("x")), F("G", Num(1)))
	mustNotMatch(t, F("F", V("x")), F("F", Num(1), Num(2)))
	mustNotMatch(t, SV("x"), Num(1))
}

func TestMatchNonLinear(t *testing.T) {
	// Same variable twice must bind consistently.
	pat := F("=", V("x"), V("x"))
	mustMatch(t, pat, F("=", Num(3), Num(3)))
	mustNotMatch(t, pat, F("=", Num(3), Num(4)))
}

func TestMatchSeqVarOrdered(t *testing.T) {
	// LIST(x*, SEARCH(z), v*) — the paper's Figure 7 search-merging
	// left-hand side shape.
	pat := List(SV("x"), F("SEARCH", V("z")), SV("v"))
	subj := List(F("REL", Str("A")), F("SEARCH", Num(1)), F("REL", Str("B")))
	b := mustMatch(t, pat, subj)
	xs, _ := b.Seq("x")
	vs, _ := b.Seq("v")
	if len(xs) != 1 || len(vs) != 1 {
		t.Errorf("split: x*=%v v*=%v", xs, vs)
	}
	// Seq vars may be empty.
	subj2 := List(F("SEARCH", Num(1)))
	b2 := mustMatch(t, pat, subj2)
	xs2, _ := b2.Seq("x")
	vs2, _ := b2.Seq("v")
	if len(xs2) != 0 || len(vs2) != 0 {
		t.Errorf("empty split: %v %v", xs2, vs2)
	}
	mustNotMatch(t, pat, List(F("REL", Str("A"))))
}

func TestMatchSeqVarAllSplits(t *testing.T) {
	// x* followed by y* over 3 elements has 4 splits; verify all are
	// reachable via the continuation.
	pat := List(SV("x"), SV("y"))
	subj := List(Num(1), Num(2), Num(3))
	splits := 0
	b := NewBindings()
	Match(pat, subj, b, func() bool {
		splits++
		return false // reject, keep enumerating
	})
	if splits != 4 {
		t.Errorf("splits = %d, want 4", splits)
	}
}

func TestMatchSeqVarBoundConsistency(t *testing.T) {
	// Same seq var twice: LIST(x*, SEP(), x*).
	pat := List(SV("x"), F("SEP"), SV("x"))
	mustMatch(t, pat, List(Num(1), F("SEP"), Num(1)))
	mustNotMatch(t, pat, List(Num(1), F("SEP"), Num(2)))
	mustNotMatch(t, pat, List(Num(1), F("SEP"), Num(1), Num(2)))
	mustNotMatch(t, pat, List(Num(1), Num(2), F("SEP"), Num(1)))
}

func TestMatchMultiset(t *testing.T) {
	// Paper's running example: F(SET(x*, G(y, f))) — pick G out of a
	// set regardless of canonical position.
	pat := F("F", Set(SV("x"), F("G", V("y"), V("f"))))
	subj := F("F", Set(Num(1), F("G", Num(2), TrueT()), Num(3)))
	b := mustMatch(t, pat, subj)
	y, _ := b.Var("y")
	if y.Val.I != 2 {
		t.Errorf("y = %v", y)
	}
	xs, _ := b.Seq("x")
	if len(xs) != 2 {
		t.Errorf("x* = %v", xs)
	}
	// Fixed elements must pick distinct subject elements.
	pat2 := Set(V("a"), V("b"))
	mustNotMatch(t, pat2, Set(Num(1)))
	b2 := mustMatch(t, pat2, Set(Num(1), Num(2)))
	av, _ := b2.Var("a")
	bv, _ := b2.Var("b")
	if Equal(av, bv) {
		t.Error("distinct picks required")
	}
}

func TestMatchMultisetBacktracksOverPicks(t *testing.T) {
	// SET(x, G(x), rest*): x must be chosen such that G(x) is also
	// present, forcing backtracking over the pick of x.
	pat := Set(V("x"), F("G", V("x")), SV("rest"))
	subj := Set(Num(1), Num(2), F("G", Num(2)))
	b := mustMatch(t, pat, subj)
	x, _ := b.Var("x")
	if x.Val.I != 2 {
		t.Errorf("x = %v, want 2", x)
	}
	rest, _ := b.Seq("rest")
	if len(rest) != 1 || rest[0].Val.I != 1 {
		t.Errorf("rest = %v", rest)
	}
	mustNotMatch(t, pat, Set(Num(1), F("G", Num(2))))
}

func TestMatchMultisetTwoSeqVars(t *testing.T) {
	pat := F("SPLIT", Set(SV("a"), SV("b")))
	subj := F("SPLIT", Set(Num(1), Num(2)))
	parts := 0
	b := NewBindings()
	Match(pat, subj, b, func() bool {
		parts++
		return false
	})
	if parts != 4 { // each of 2 elements goes to a or b
		t.Errorf("partitions = %d, want 4", parts)
	}
}

func TestMatchBagKeepsMultiplicity(t *testing.T) {
	pat := Bag(V("x"), V("x"), SV("r"))
	mustMatch(t, pat, Bag(Num(1), Num(1), Num(2)))
	mustNotMatch(t, pat, Bag(Num(1), Num(2), Num(3)))
}

func TestMatchCollectionWildcard(t *testing.T) {
	pat := F("F", F(FCollection, SV("x")))
	for _, mk := range []func(...*Term) *Term{Set, Bag, List, Array} {
		subj := F("F", mk(Num(1), Num(2)))
		if _, ok := MatchFirst(pat, subj); !ok {
			t.Errorf("COLLECTION should match %s", subj)
		}
	}
	mustNotMatch(t, pat, F("F", F("REL", Num(1))))
}

func TestMatchFunctionVariable(t *testing.T) {
	// F(x) with function variable F: matches any unary application.
	pat := FV("F", V("x"))
	b := mustMatch(t, pat, F("ABS", Num(3)))
	f, _ := b.Fun("F")
	if f != "ABS" {
		t.Errorf("F = %q", f)
	}
	// Non-linear function variables: F(x) = F(y) heads must agree.
	pat2 := F("=", FV("F", V("x")), FV("F", V("y")))
	mustMatch(t, pat2, F("=", F("ABS", Num(1)), F("ABS", Num(2))))
	mustNotMatch(t, pat2, F("=", F("ABS", Num(1)), F("ORD", Num(2))))
}

func TestMatchContinuationVeto(t *testing.T) {
	// The constraint-check pattern: reject bindings until y > 1.
	pat := Set(SV("rest"), V("y"))
	subj := Set(Num(1), Num(2), Num(3))
	b := NewBindings()
	ok := Match(pat, subj, b, func() bool {
		y, _ := b.Var("y")
		return y.Val.I > 2
	})
	if !ok {
		t.Fatal("should find y=3")
	}
	y, _ := b.Var("y")
	if y.Val.I != 3 {
		t.Errorf("y = %v", y)
	}
	// Rejecting all restores bindings.
	b2 := NewBindings()
	if Match(pat, subj, b2, func() bool { return false }) {
		t.Error("all-veto must fail")
	}
	if _, bound := b2.Var("y"); bound {
		t.Error("bindings must be restored after failed match")
	}
}

// Applying the accepted bindings to the pattern must reproduce the subject
// (soundness of matching) — checked across representative cases.
func TestMatchApplyRoundTrip(t *testing.T) {
	cases := []struct{ pat, subj *Term }{
		{V("x"), F("F", Num(1))},
		{F("F", V("x"), V("y")), F("F", Num(1), Str("a"))},
		{List(SV("x"), F("S", V("z")), SV("v")), List(Num(1), F("S", Num(2)), Num(3), Num(4))},
		{F("F", Set(SV("x"), F("G", V("y")))), F("F", Set(Num(1), F("G", Num(2))))},
		{FV("F", V("x")), F("NAME", Num(9))},
		{F("UNION", Set(SV("x"), F("UNION", V("z")))), F("UNION", Set(F("R", Num(1)), F("UNION", Set(Num(5)))))},
	}
	for _, c := range cases {
		b, ok := MatchFirst(c.pat, c.subj)
		if !ok {
			t.Errorf("no match: %s vs %s", c.pat, c.subj)
			continue
		}
		got, err := b.Apply(c.pat)
		if err != nil {
			t.Errorf("apply: %v", err)
			continue
		}
		if !Equal(got, c.subj) {
			t.Errorf("round trip: apply(match(%s)) = %s, want %s", c.pat, got, c.subj)
		}
	}
}
