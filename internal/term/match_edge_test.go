package term

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// These tests pin down the edge cases of sequence-variable ("x*") and
// multiset matching: empty bindings, collection-variable-only argument
// lists, and partition enumeration when several collection variables
// share one SET argument.

func seqString(ts []*Term) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func TestMatchSeqVarBindsEmptyOrdered(t *testing.T) {
	// P(x, w*) against P(a): w* must bind to the empty sequence.
	pat := F("P", V("x"), SV("w"))
	sub := F("P", Str("a"))
	b, ok := MatchFirst(pat, sub)
	if !ok {
		t.Fatal("pattern should match with an empty sequence binding")
	}
	if x, _ := b.Var("x"); !Equal(x, Str("a")) {
		t.Fatalf("x bound to %s, want 'a'", x)
	}
	w, bound := b.Seq("w")
	if !bound || len(w) != 0 {
		t.Fatalf("w* bound to %s, want empty sequence", seqString(w))
	}
}

func TestMatchSeqVarBindsEmptyInSet(t *testing.T) {
	// FILTER(r, ANDS(SET(c, w*))) against a one-conjunct qualification:
	// the single element goes to c, w* takes the empty remainder. This is
	// the shape every push-style rule relies on.
	pat := F("ANDS", Set(V("c"), SV("w")))
	sub := F("ANDS", Set(F("=", Str("A"), Num(1))))
	b, ok := MatchFirst(pat, sub)
	if !ok {
		t.Fatal("single-conjunct SET should match (c, w*) with empty w")
	}
	if c, _ := b.Var("c"); !Equal(c, F("=", Str("A"), Num(1))) {
		t.Fatalf("c bound to %s", c)
	}
	if w, _ := b.Seq("w"); len(w) != 0 {
		t.Fatalf("w* bound to %s, want empty", seqString(w))
	}
}

func TestMatchSeqVarOnlyArgumentList(t *testing.T) {
	// P(w*): the collection variable is the entire argument list. It must
	// match zero arguments, and any number, preserving order.
	pat := F("P", SV("w"))

	b, ok := MatchFirst(pat, F("P"))
	if !ok {
		t.Fatal("P(w*) should match P()")
	}
	if w, bound := b.Seq("w"); !bound || len(w) != 0 {
		t.Fatalf("w* = %s, want bound empty sequence", seqString(w))
	}

	b, ok = MatchFirst(pat, F("P", Str("a"), Str("b"), Str("c")))
	if !ok {
		t.Fatal("P(w*) should match P(a, b, c)")
	}
	w, _ := b.Seq("w")
	if len(w) != 3 || !Equal(w[0], Str("a")) || !Equal(w[1], Str("b")) || !Equal(w[2], Str("c")) {
		t.Fatalf("w* = %s, want [a b c] in order", seqString(w))
	}
}

func TestMatchSeqVarEnumeratesSplits(t *testing.T) {
	// LIST(u*, v*) against LIST(1, 2): ordered splits only — (|12), (1|2),
	// (12|) — no reorderings.
	pat := List(SV("u"), SV("v"))
	sub := List(Num(1), Num(2))
	var got []string
	b := NewBindings()
	Match(pat, sub, b, func() bool {
		u, _ := b.Seq("u")
		v, _ := b.Seq("v")
		got = append(got, fmt.Sprintf("%s|%s", seqString(u), seqString(v)))
		return false // enumerate all solutions
	})
	want := []string{"[]|[1 2]", "[1]|[2]", "[1 2]|[]"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("splits = %v, want %v", got, want)
	}
}

func TestMatchTwoSeqVarsInOneSetEnumeratePartitions(t *testing.T) {
	// SET(u*, v*) against SET(1, 2): every partition of the multiset into
	// two groups must be enumerated — 2 elements × 2 variables = 4.
	pat := Set(SV("u"), SV("v"))
	sub := Set(Num(1), Num(2))
	var got []string
	b := NewBindings()
	Match(pat, sub, b, func() bool {
		u, _ := b.Seq("u")
		v, _ := b.Seq("v")
		got = append(got, fmt.Sprintf("%s|%s", seqString(u), seqString(v)))
		return false
	})
	sort.Strings(got)
	want := []string{"[]|[1 2]", "[1 2]|[]", "[1]|[2]", "[2]|[1]"}
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("partitions = %v, want %v", got, want)
	}
}

func TestMatchTwoSeqVarsEmptyRemainder(t *testing.T) {
	// SET(c, u*, v*) against SET(x): the fixed pattern consumes the only
	// element, so both collection variables must accept the empty group —
	// exactly one solution.
	pat := Set(V("c"), SV("u"), SV("v"))
	sub := Set(Str("x"))
	n := 0
	b := NewBindings()
	Match(pat, sub, b, func() bool {
		u, uOK := b.Seq("u")
		v, vOK := b.Seq("v")
		if !uOK || !vOK || len(u) != 0 || len(v) != 0 {
			t.Fatalf("u=%s v=%s, want both bound empty", seqString(u), seqString(v))
		}
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("solutions = %d, want exactly 1", n)
	}
}

func TestMatchRepeatedSeqVarMustAgree(t *testing.T) {
	// P(LIST(w*), LIST(w*)): the second occurrence must replay the first
	// binding, element for element.
	pat := F("P", List(SV("w")), List(SV("w")))
	if _, ok := MatchFirst(pat, F("P", List(Num(1), Num(2)), List(Num(1), Num(2)))); !ok {
		t.Fatal("equal lists should match a repeated collection variable")
	}
	if _, ok := MatchFirst(pat, F("P", List(Num(1), Num(2)), List(Num(2), Num(1)))); ok {
		t.Fatal("differently ordered lists must not match a repeated collection variable")
	}
	// In a SET the repeated variable compares as a multiset, so order of
	// the remainder is irrelevant.
	setPat := F("P", Set(Num(9), SV("w")), Set(SV("w")))
	if _, ok := MatchFirst(setPat, F("P", Set(Num(9), Num(1), Num(2)), Set(Num(2), Num(1)))); !ok {
		t.Fatal("multiset remainder should match the repeated variable regardless of order")
	}
}

func TestMatchSeqVarRejectsTopLevel(t *testing.T) {
	// A bare collection variable outside an argument list never matches.
	if _, ok := MatchFirst(SV("w"), Str("a")); ok {
		t.Fatal("top-level collection variable must not match")
	}
}
