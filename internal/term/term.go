// Package term implements the term language underlying the paper's rule
// formalism (Section 4.1): functional expressions over constants,
// variables, collection variables (written x* in the paper) and function
// variables (F, G, ... in Figure 6), together with substitution and a
// backtracking matcher.
//
// LERA expressions, qualifications and projections are all terms — the
// uniform representation that lets a single rule language drive every kind
// of query rewriting. SET and BAG constructor arguments are kept in
// canonical sorted order (sets deduplicated), which gives commutative
// matching a normal form and makes AND-over-a-set qualifications
// automatically idempotent.
package term

import (
	"fmt"
	"sort"
	"strings"

	"lera/internal/value"
)

// Kind discriminates term structure.
type Kind int

// Term kinds.
const (
	// Const is a constant embedding a runtime value.
	Const Kind = iota
	// Var is an ordinary variable, matching exactly one term.
	Var
	// SeqVar is a collection variable (x* in the paper), matching a
	// sequence of zero or more argument terms.
	SeqVar
	// Fun is a function application, including the collection
	// constructors SET, BAG, LIST, ARRAY, TUPLE.
	Fun
)

// Reserved constructor functors. COLLECTION is pattern-only: it matches
// any of the four concrete constructors (Figure 6's <collection>).
const (
	FSet        = "SET"
	FBag        = "BAG"
	FList       = "LIST"
	FArray      = "ARRAY"
	FTuple      = "TUPLE"
	FCollection = "COLLECTION"
)

// Term is an immutable term. Do not mutate a Term after construction;
// sharing subterms is encouraged and relied upon.
type Term struct {
	Kind    Kind
	Functor string  // Fun: function symbol, upper-cased
	Args    []*Term // Fun: arguments
	// VarHead marks a Fun whose head is a function variable (Figure 6's
	// F, G, H...): Functor is then the variable's name and matches any
	// function symbol.
	VarHead bool
	Val     value.Value // Const
	Name    string      // Var, SeqVar

	// hash and size memoize the structural fingerprint and node count,
	// computed bottom-up by the constructors (terms are immutable, so the
	// memo never goes stale). Zero means "not memoized": terms built by
	// hand through a struct literal recompute on demand without caching,
	// keeping them safe to share across goroutines.
	hash uint64
	size int32
}

// seal memoizes the structural hash and node count of a freshly
// constructed term. Every constructor ends with seal; hand-built struct
// literals skip it and fall back to on-the-fly computation in Hash/Size.
func (t *Term) seal() *Term {
	n := 1
	for _, a := range t.Args {
		n += a.Size()
	}
	t.size = int32(n)
	t.hash = t.computeHash()
	return t
}

func (t *Term) computeHash() uint64 {
	h := value.HashUint(value.HashOffset, uint64(t.Kind))
	switch t.Kind {
	case Const:
		h = value.HashUint(h, t.Val.Hash())
	case Var, SeqVar:
		h = value.HashString(h, t.Name)
	case Fun:
		if t.VarHead {
			h = value.HashUint(h, 1)
		}
		h = value.HashString(h, t.Functor)
		h = value.HashUint(h, uint64(len(t.Args)))
		for _, a := range t.Args {
			h = value.HashUint(h, a.Hash())
		}
	}
	if h == 0 {
		h = 1 // reserve 0 for "not memoized"
	}
	return h
}

// Hash returns the structural hash of t: Equal terms hash identically, so
// unequal hashes are an O(1) disproof of equality. Constructor-built terms
// answer from the memo; hand-built literals recompute without caching.
func (t *Term) Hash() uint64 {
	if t == nil {
		return 0
	}
	if t.hash != 0 {
		return t.hash
	}
	return t.computeHash()
}

// C constructs a constant term.
func C(v value.Value) *Term { return (&Term{Kind: Const, Val: v}).seal() }

// Str, Num, Flt, and TrueT/FalseT are constant shorthands.
func Str(s string) *Term  { return C(value.String(s)) }
func Num(i int64) *Term   { return C(value.Int(i)) }
func Flt(f float64) *Term { return C(value.Real(f)) }
func BoolT(b bool) *Term  { return C(value.Bool(b)) }
func TrueT() *Term        { return BoolT(true) }
func FalseT() *Term       { return BoolT(false) }

// V constructs a variable.
func V(name string) *Term { return (&Term{Kind: Var, Name: name}).seal() }

// SV constructs a collection (sequence) variable; the name excludes the
// trailing '*'.
func SV(name string) *Term { return (&Term{Kind: SeqVar, Name: name}).seal() }

// F constructs a function application. SET and BAG arguments are put in
// canonical order (SET deduplicated).
func F(functor string, args ...*Term) *Term {
	f := strings.ToUpper(functor)
	t := &Term{Kind: Fun, Functor: f, Args: args}
	if f == FSet || f == FBag {
		t.Args = canonicalize(args, f == FSet)
	}
	return t.seal()
}

// FV constructs an application whose head is a function variable.
func FV(name string, args ...*Term) *Term {
	return (&Term{Kind: Fun, Functor: name, Args: args, VarHead: true}).seal()
}

// Set, Bag, List, Array, TupleT are constructor shorthands.
func Set(args ...*Term) *Term    { return F(FSet, args...) }
func Bag(args ...*Term) *Term    { return F(FBag, args...) }
func List(args ...*Term) *Term   { return F(FList, args...) }
func Array(args ...*Term) *Term  { return F(FArray, args...) }
func TupleT(args ...*Term) *Term { return F(FTuple, args...) }

func canonicalize(args []*Term, dedupe bool) []*Term {
	// Sequence variables float to the end, preserving their relative
	// order, so that patterns like SET(x*, G(y)) keep the fixed element
	// visible; concrete elements sort canonically.
	var fixed, seqs []*Term
	for _, a := range args {
		if a.Kind == SeqVar {
			seqs = append(seqs, a)
		} else {
			fixed = append(fixed, a)
		}
	}
	sort.SliceStable(fixed, func(i, j int) bool { return Compare(fixed[i], fixed[j]) < 0 })
	if dedupe {
		out := fixed[:0]
		for i, a := range fixed {
			if i == 0 || Compare(fixed[i-1], a) != 0 {
				out = append(out, a)
			}
		}
		fixed = out
	}
	return append(fixed, seqs...)
}

// IsConstructor reports whether the functor is one of the collection or
// tuple constructors.
func IsConstructor(functor string) bool {
	switch functor {
	case FSet, FBag, FList, FArray, FTuple, FCollection:
		return true
	}
	return false
}

// IsComm reports whether a constructor's arguments match commutatively.
func IsComm(functor string) bool { return functor == FSet || functor == FBag }

// Compare imposes a deterministic total order on terms: by kind, then by
// name/functor, arity, arguments and constant value.
func Compare(a, b *Term) int {
	if a == b {
		return 0
	}
	if a.Kind != b.Kind {
		if a.Kind < b.Kind {
			return -1
		}
		return 1
	}
	switch a.Kind {
	case Const:
		return value.Compare(a.Val, b.Val)
	case Var, SeqVar:
		return strings.Compare(a.Name, b.Name)
	case Fun:
		if a.VarHead != b.VarHead {
			if !a.VarHead {
				return -1
			}
			return 1
		}
		if c := strings.Compare(a.Functor, b.Functor); c != 0 {
			return c
		}
		if len(a.Args) != len(b.Args) {
			if len(a.Args) < len(b.Args) {
				return -1
			}
			return 1
		}
		for i := range a.Args {
			if c := Compare(a.Args[i], b.Args[i]); c != 0 {
				return c
			}
		}
		return 0
	}
	return 0
}

// Equal reports structural equality. Identical pointers and memoized
// hash/size mismatches resolve in O(1); only hash-equal distinct terms pay
// for the full structural comparison.
func Equal(a, b *Term) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.hash != 0 && b.hash != 0 {
		if a.hash != b.hash {
			return false
		}
		if a.size != b.size {
			return false
		}
	}
	return Compare(a, b) == 0
}

// IsGround reports whether t contains no variables of any kind.
func (t *Term) IsGround() bool {
	switch t.Kind {
	case Var, SeqVar:
		return false
	case Fun:
		if t.VarHead {
			return false
		}
		for _, a := range t.Args {
			if !a.IsGround() {
				return false
			}
		}
	}
	return true
}

// Vars appends the names of all ordinary, sequence and function variables
// in t to the three sets.
func (t *Term) Vars(vars, seqs, funs map[string]bool) {
	switch t.Kind {
	case Var:
		vars[t.Name] = true
	case SeqVar:
		seqs[t.Name] = true
	case Fun:
		if t.VarHead {
			funs[t.Functor] = true
		}
		for _, a := range t.Args {
			a.Vars(vars, seqs, funs)
		}
	}
}

// Size returns the number of nodes in t — the paper's "number of terms in
// a query", used to classify rules as increasing or decreasing (§4.2) and
// as the MaxTermSize guard currency. Constructor-built terms answer from
// the memo in O(1).
func (t *Term) Size() int {
	if t.size > 0 {
		return int(t.size)
	}
	n := 1
	if t.Kind == Fun {
		for _, a := range t.Args {
			n += a.Size()
		}
	}
	return n
}

// String renders the term: constants in ESQL literal syntax, variables as
// their name, collection variables with a trailing '*', applications as
// FUNCTOR(arg, ...).
func (t *Term) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case Const:
		return t.Val.String()
	case Var:
		return t.Name
	case SeqVar:
		return t.Name + "*"
	case Fun:
		if len(t.Args) == 0 && IsConstructor(t.Functor) {
			return t.Functor + "()"
		}
		parts := make([]string, len(t.Args))
		for i, a := range t.Args {
			parts[i] = a.String()
		}
		return t.Functor + "(" + strings.Join(parts, ", ") + ")"
	}
	return "?"
}

// --- substitution & bindings ---

// Bindings maps variables to terms, collection variables to term
// sequences, and function variables to function symbols. A single Bindings
// is threaded through a backtracking match; Snapshot/Restore implement the
// undo trail.
type Bindings struct {
	vars map[string]*Term
	seqs map[string][]*Term
	funs map[string]string
	// trail records bound names for backtracking.
	trail []trailEntry
}

type trailEntry struct {
	kind Kind // Var, SeqVar or Fun (function variable)
	name string
}

// NewBindings returns an empty binding set.
func NewBindings() *Bindings {
	return &Bindings{vars: map[string]*Term{}, seqs: map[string][]*Term{}, funs: map[string]string{}}
}

// Var returns the binding of an ordinary variable.
func (b *Bindings) Var(name string) (*Term, bool) { t, ok := b.vars[name]; return t, ok }

// Seq returns the binding of a collection variable.
func (b *Bindings) Seq(name string) ([]*Term, bool) { s, ok := b.seqs[name]; return s, ok }

// Fun returns the binding of a function variable.
func (b *Bindings) Fun(name string) (string, bool) { f, ok := b.funs[name]; return f, ok }

// BindVar binds an ordinary variable (recording it on the trail).
func (b *Bindings) BindVar(name string, t *Term) {
	b.vars[name] = t
	b.trail = append(b.trail, trailEntry{Var, name})
}

// BindSeq binds a collection variable.
func (b *Bindings) BindSeq(name string, ts []*Term) {
	b.seqs[name] = ts
	b.trail = append(b.trail, trailEntry{SeqVar, name})
}

// BindFun binds a function variable to a symbol.
func (b *Bindings) BindFun(name, functor string) {
	b.funs[name] = functor
	b.trail = append(b.trail, trailEntry{Fun, name})
}

// Mark returns the current trail position for later Restore.
func (b *Bindings) Mark() int { return len(b.trail) }

// Reset empties the binding set in place, retaining the allocated maps and
// trail so one Bindings can be reused across many match attempts (the
// rewrite engine's scratch pool). Equivalent to Restore(0).
func (b *Bindings) Reset() { b.Restore(0) }

// Restore undoes all bindings made after the given mark.
func (b *Bindings) Restore(mark int) {
	for i := len(b.trail) - 1; i >= mark; i-- {
		e := b.trail[i]
		switch e.kind {
		case Var:
			delete(b.vars, e.name)
		case SeqVar:
			delete(b.seqs, e.name)
		case Fun:
			delete(b.funs, e.name)
		}
	}
	b.trail = b.trail[:mark]
}

// Clone deep-copies the binding maps (the trail is not copied).
func (b *Bindings) Clone() *Bindings {
	nb := NewBindings()
	for k, v := range b.vars {
		nb.vars[k] = v
	}
	for k, v := range b.seqs {
		nb.seqs[k] = append([]*Term(nil), v...)
	}
	for k, v := range b.funs {
		nb.funs[k] = v
	}
	return nb
}

// String renders the bindings deterministically, for traces and tests.
func (b *Bindings) String() string {
	var parts []string
	for k, v := range b.vars {
		parts = append(parts, k+"="+v.String())
	}
	for k, v := range b.seqs {
		ss := make([]string, len(v))
		for i, t := range v {
			ss[i] = t.String()
		}
		parts = append(parts, k+"*=["+strings.Join(ss, ", ")+"]")
	}
	for k, v := range b.funs {
		parts = append(parts, k+"()="+v)
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}

// Apply instantiates a term under the bindings: variables are replaced by
// their bindings, collection variables are spliced into argument lists,
// function-variable heads are replaced by their bound symbol. Unbound
// variables are an error — rules must bind every right-hand-side variable
// either by matching or by a method call (Section 4.1).
func (b *Bindings) Apply(t *Term) (*Term, error) {
	switch t.Kind {
	case Const:
		return t, nil
	case Var:
		if v, ok := b.vars[t.Name]; ok {
			return v, nil
		}
		return nil, fmt.Errorf("term: unbound variable %s", t.Name)
	case SeqVar:
		return nil, fmt.Errorf("term: collection variable %s* used outside an argument list", t.Name)
	case Fun:
		functor := t.Functor
		if t.VarHead {
			f, ok := b.funs[t.Functor]
			if !ok {
				return nil, fmt.Errorf("term: unbound function variable %s", t.Functor)
			}
			functor = f
		}
		args := make([]*Term, 0, len(t.Args))
		for _, a := range t.Args {
			if a.Kind == SeqVar {
				seq, ok := b.seqs[a.Name]
				if !ok {
					return nil, fmt.Errorf("term: unbound collection variable %s*", a.Name)
				}
				args = append(args, seq...)
				continue
			}
			na, err := b.Apply(a)
			if err != nil {
				return nil, err
			}
			args = append(args, na)
		}
		return F(functor, args...), nil
	}
	return nil, fmt.Errorf("term: cannot apply bindings to kind %d", t.Kind)
}

// MustApply is Apply for tests and internal call sites that guarantee all
// variables are bound.
func (b *Bindings) MustApply(t *Term) *Term {
	r, err := b.Apply(t)
	if err != nil {
		panic(err)
	}
	return r
}
