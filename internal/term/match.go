package term

// This file implements one-way matching of rule patterns against query
// terms: the operation the paper's PROLOG implementation inherited from
// unification and that the Go reproduction builds explicitly.
//
// Matching is backtracking: collection variables in ordered contexts
// (LIST, ARRAY, TUPLE and ordinary function arguments) enumerate splits of
// the argument sequence; in commutative contexts (SET, BAG) fixed patterns
// enumerate choices of subject elements and collection variables partition
// the remainder. The continuation style lets rule constraints veto a
// binding and resume the search, which is exactly the paper's "a rule is
// only applied ... if all the constraints are true" (Section 4.1).

// Match attempts to match pattern against subject, extending b. For every
// complete match it calls k; if k returns true the match is kept (b holds
// the accepted bindings) and Match returns true. If k rejects every
// solution, b is restored and Match returns false.
func Match(pattern, subject *Term, b *Bindings, k func() bool) bool {
	mark := b.Mark()
	if match(pattern, subject, b, k) {
		return true
	}
	b.Restore(mark)
	return false
}

// MatchFirst returns the first complete match, if any.
func MatchFirst(pattern, subject *Term) (*Bindings, bool) {
	b := NewBindings()
	ok := Match(pattern, subject, b, func() bool { return true })
	return b, ok
}

func match(pattern, subject *Term, b *Bindings, k func() bool) bool {
	switch pattern.Kind {
	case Const:
		if subject.Kind == Const && Equal(pattern, subject) {
			return k()
		}
		return false
	case Var:
		if bound, ok := b.Var(pattern.Name); ok {
			if Equal(bound, subject) {
				return k()
			}
			return false
		}
		mark := b.Mark()
		b.BindVar(pattern.Name, subject)
		if k() {
			return true
		}
		b.Restore(mark)
		return false
	case SeqVar:
		// A collection variable is only meaningful inside an argument
		// list; a top-level occurrence never matches.
		return false
	case Fun:
		if subject.Kind != Fun {
			return false
		}
		return matchFun(pattern, subject, b, k)
	}
	return false
}

func matchFun(pattern, subject *Term, b *Bindings, k func() bool) bool {
	// Resolve the head.
	if pattern.VarHead {
		if bound, ok := b.Fun(pattern.Functor); ok {
			if bound != subject.Functor {
				return false
			}
			return matchArgs(pattern, subject, b, k)
		}
		mark := b.Mark()
		b.BindFun(pattern.Functor, subject.Functor)
		if matchArgs(pattern, subject, b, k) {
			return true
		}
		b.Restore(mark)
		return false
	}
	if pattern.Functor == FCollection {
		// COLLECTION matches any collection constructor (Figure 6).
		switch subject.Functor {
		case FSet, FBag, FList, FArray, FCollection:
			return matchArgs(pattern, subject, b, k)
		}
		return false
	}
	if pattern.Functor != subject.Functor {
		return false
	}
	return matchArgs(pattern, subject, b, k)
}

func matchArgs(pattern, subject *Term, b *Bindings, k func() bool) bool {
	if IsComm(subject.Functor) {
		return matchMultiset(pattern.Args, subject.Args, subject.Functor, b, k)
	}
	return matchSeq(pattern.Args, subject.Args, b, k)
}

// matchSeq matches an ordered pattern argument list against an ordered
// subject argument list, enumerating splits for collection variables.
func matchSeq(pats, subjs []*Term, b *Bindings, k func() bool) bool {
	if len(pats) == 0 {
		if len(subjs) == 0 {
			return k()
		}
		return false
	}
	p := pats[0]
	if p.Kind == SeqVar {
		if bound, ok := b.Seq(p.Name); ok {
			if len(bound) > len(subjs) {
				return false
			}
			for i, t := range bound {
				if !Equal(t, subjs[i]) {
					return false
				}
			}
			return matchSeq(pats[1:], subjs[len(bound):], b, k)
		}
		// Try every prefix length, shortest first.
		for n := 0; n <= len(subjs); n++ {
			mark := b.Mark()
			b.BindSeq(p.Name, subjs[:n:n])
			if matchSeq(pats[1:], subjs[n:], b, k) {
				return true
			}
			b.Restore(mark)
		}
		return false
	}
	if len(subjs) == 0 {
		return false
	}
	return match(p, subjs[0], b, func() bool {
		return matchSeq(pats[1:], subjs[1:], b, k)
	})
}

// matchMultiset matches pattern arguments against subject arguments of a
// SET or BAG constructor: fixed patterns pick distinct subject elements in
// any order; collection variables partition the remaining elements.
func matchMultiset(pats, subjs []*Term, functor string, b *Bindings, k func() bool) bool {
	var fixed, seqs []*Term
	for _, p := range pats {
		if p.Kind == SeqVar {
			seqs = append(seqs, p)
		} else {
			fixed = append(fixed, p)
		}
	}
	if len(fixed) > len(subjs) {
		return false
	}
	used := make([]bool, len(subjs))
	var matchFixed func(i int) bool
	matchFixed = func(i int) bool {
		if i == len(fixed) {
			var rest []*Term
			for j, u := range used {
				if !u {
					rest = append(rest, subjs[j])
				}
			}
			return distribute(seqs, rest, functor, b, k)
		}
		for j := range subjs {
			if used[j] {
				continue
			}
			used[j] = true
			ok := match(fixed[i], subjs[j], b, func() bool { return matchFixed(i + 1) })
			used[j] = false
			if ok {
				return true
			}
		}
		return false
	}
	return matchFixed(0)
}

// distribute assigns the remaining multiset elements to the collection
// variables. With no collection variables the remainder must be empty;
// with one, it takes everything; with several, all partitions are
// enumerated.
func distribute(seqs []*Term, rest []*Term, functor string, b *Bindings, k func() bool) bool {
	switch len(seqs) {
	case 0:
		if len(rest) == 0 {
			return k()
		}
		return false
	case 1:
		return bindOrCheckSeq(seqs[0], rest, b, k)
	}
	// General partition enumeration: assign each element to one of the
	// collection variables.
	groups := make([][]*Term, len(seqs))
	var assign func(i int) bool
	assign = func(i int) bool {
		if i == len(rest) {
			var rec func(j int) bool
			rec = func(j int) bool {
				if j == len(seqs) {
					return k()
				}
				return bindOrCheckSeq(seqs[j], groups[j], b, func() bool { return rec(j + 1) })
			}
			return rec(0)
		}
		for g := range groups {
			groups[g] = append(groups[g], rest[i])
			if assign(i + 1) {
				return true
			}
			groups[g] = groups[g][:len(groups[g])-1]
		}
		return false
	}
	return assign(0)
}

func bindOrCheckSeq(sv *Term, elems []*Term, b *Bindings, k func() bool) bool {
	if bound, ok := b.Seq(sv.Name); ok {
		if !multisetEqual(bound, elems) {
			return false
		}
		return k()
	}
	mark := b.Mark()
	b.BindSeq(sv.Name, sortedCopy(elems))
	if k() {
		return true
	}
	b.Restore(mark)
	return false
}

func sortedCopy(ts []*Term) []*Term {
	out := append([]*Term(nil), ts...)
	// Canonical order keeps SET reconstruction and traces deterministic.
	sortTerms(out)
	return out
}

func sortTerms(ts []*Term) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && Compare(ts[j-1], ts[j]) > 0; j-- {
			ts[j-1], ts[j] = ts[j], ts[j-1]
		}
	}
}

func multisetEqual(a, b []*Term) bool {
	if len(a) != len(b) {
		return false
	}
	// Order-independent hash sums disprove most mismatches without the
	// sort + pairwise compare below.
	var ha, hb uint64
	for i := range a {
		ha += a[i].Hash()
		hb += b[i].Hash()
	}
	if ha != hb {
		return false
	}
	as, bs := sortedCopy(a), sortedCopy(b)
	for i := range as {
		if !Equal(as[i], bs[i]) {
			return false
		}
	}
	return true
}
