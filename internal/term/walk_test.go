package term

import (
	"math/rand"
	"testing"
)

func sampleTree() *Term {
	return F("SEARCH",
		List(F("REL", Str("A")), F("SEARCH", List(F("REL", Str("B"))), TrueT(), List())),
		F("=", F("ATTR", Num(1), Num(1)), Num(5)),
		List(F("ATTR", Num(2), Num(2))))
}

func TestAtAndReplaceAt(t *testing.T) {
	tr := sampleTree()
	sub := At(tr, Path{0, 1})
	if sub == nil || sub.Functor != "SEARCH" {
		t.Fatalf("At = %v", sub)
	}
	if At(tr, Path{9}) != nil {
		t.Error("invalid path must return nil")
	}
	if At(tr, Path{1, 0, 0, 0, 0}) != nil {
		t.Error("path through constants must return nil")
	}
	repl := F("REL", Str("MERGED"))
	nt := ReplaceAt(tr, Path{0, 1}, repl)
	if got := At(nt, Path{0, 1}); !Equal(got, repl) {
		t.Errorf("replacement missing: %s", nt)
	}
	// Original unchanged; untouched subtrees shared.
	if At(tr, Path{0, 1}).Functor != "SEARCH" {
		t.Error("original mutated")
	}
	if At(nt, Path{1}) != At(tr, Path{1}) {
		t.Error("untouched subtree must be shared")
	}
	// Empty path replaces the root.
	if !Equal(ReplaceAt(tr, Path{}, repl), repl) {
		t.Error("root replacement")
	}
	// Invalid path is a no-op.
	if !Equal(ReplaceAt(tr, Path{9, 9}, repl), tr) {
		t.Error("invalid path no-op")
	}
}

func TestReplaceAtRecanonicalizesSets(t *testing.T) {
	s := F("UNION", Set(F("R", Num(2)), F("R", Num(1))))
	// Replace R(1) (canonically first) with R(9); set must re-sort.
	nt := ReplaceAt(s, Path{0, 0}, F("R", Num(9)))
	if nt.Args[0].Args[0].String() != "R(2)" {
		t.Errorf("set not re-canonicalised: %s", nt)
	}
}

func TestWalkCountContains(t *testing.T) {
	tr := sampleTree()
	n := 0
	Walk(tr, func(sub *Term, _ Path) bool { n++; return true })
	if n != tr.Size() {
		t.Errorf("walk visited %d, size %d", n, tr.Size())
	}
	searches := Count(tr, func(s *Term) bool { return s.Kind == Fun && s.Functor == "SEARCH" })
	if searches != 2 {
		t.Errorf("searches = %d", searches)
	}
	if !Contains(tr, func(s *Term) bool { return s.Functor == "ATTR" }) {
		t.Error("Contains ATTR")
	}
	if Contains(tr, func(s *Term) bool { return s.Functor == "FIX" }) {
		t.Error("no FIX present")
	}
	// Early stop: fn returning false aborts.
	visited := 0
	ok := Walk(tr, func(sub *Term, _ Path) bool { visited++; return visited < 3 })
	if ok || visited != 3 {
		t.Errorf("early stop: ok=%v visited=%d", ok, visited)
	}
}

func TestWalkPathsAddressable(t *testing.T) {
	tr := sampleTree()
	Walk(tr, func(sub *Term, p Path) bool {
		if got := At(tr, p); got != sub {
			t.Errorf("path %v does not address %s", p, sub)
		}
		return true
	})
}

func TestRewriteBottomUp(t *testing.T) {
	tr := F("AND", F("OR", FalseT(), TrueT()), TrueT())
	// Fold OR(FALSE, TRUE) -> TRUE bottom-up, then AND(TRUE,TRUE)->TRUE.
	fold := func(s *Term) *Term {
		if s.Kind == Fun && s.Functor == "OR" && len(s.Args) == 2 &&
			Equal(s.Args[0], FalseT()) && Equal(s.Args[1], TrueT()) {
			return TrueT()
		}
		if s.Kind == Fun && s.Functor == "AND" && len(s.Args) == 2 &&
			Equal(s.Args[0], TrueT()) && Equal(s.Args[1], TrueT()) {
			return TrueT()
		}
		return s
	}
	if got := Rewrite(tr, fold); !Equal(got, TrueT()) {
		t.Errorf("Rewrite = %s", got)
	}
	// Identity rewrite shares the original tree.
	same := Rewrite(tr, func(s *Term) *Term { return s })
	if same != tr {
		t.Error("identity Rewrite must return the same pointer")
	}
}

// Property: ReplaceAt(t, p, At(t, p)) is structurally equal to t for every
// valid path, on random trees.
func TestPropReplaceIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		tr := randTerm(r, 3)
		Walk(tr, func(sub *Term, p Path) bool {
			if got := ReplaceAt(tr, p.Clone(), sub); !Equal(got, tr) {
				t.Fatalf("replace identity failed at %v on %s: %s", p, tr, got)
			}
			return true
		})
	}
}

func randTerm(r *rand.Rand, depth int) *Term {
	if depth == 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return Num(int64(r.Intn(5)))
		case 1:
			return Str(string(rune('a' + r.Intn(3))))
		default:
			return TrueT()
		}
	}
	n := 1 + r.Intn(3)
	args := make([]*Term, n)
	for i := range args {
		args[i] = randTerm(r, depth-1)
	}
	heads := []string{"F", "G", FList, FSet}
	return F(heads[r.Intn(len(heads))], args...)
}

// Property: matching a random ground term against itself always succeeds
// with empty bindings; matching its generalisation (replace random leaves
// with fresh vars) succeeds and Apply reproduces the original.
func TestPropGeneralizationMatches(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 60; i++ {
		subj := randTerm(r, 3)
		if _, ok := MatchFirst(subj, subj); !ok {
			t.Fatalf("self-match failed: %s", subj)
		}
		vc := 0
		pat := Rewrite(subj, func(s *Term) *Term {
			if s.Kind == Const && r.Intn(2) == 0 {
				vc++
				return V("v" + string(rune('0'+vc%10)) + string(rune('a'+vc/10)))
			}
			return s
		})
		b, ok := MatchFirst(pat, subj)
		if !ok {
			// Non-linear variables introduced by the counter may clash
			// on different constants inside commutative contexts; only
			// fail when pattern is linear.
			continue
		}
		got, err := b.Apply(pat)
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
		if !Equal(got, subj) {
			t.Fatalf("apply(match) != subject: %s vs %s (pat %s)", got, subj, pat)
		}
	}
}
