package plancache

import (
	"math/rand"
	"testing"

	lalg "lera/internal/lera"
	"lera/internal/term"
	"lera/internal/value"
)

// mustRoundTrip pins the core templatizer contract:
// Substitute(Templatize(q)) is bit-identical to q.
func mustRoundTrip(t *testing.T, q *term.Term) (*term.Term, []value.Value) {
	t.Helper()
	tmpl, params := Templatize(q)
	back, err := Substitute(tmpl, params)
	if err != nil {
		t.Fatalf("Substitute: %v", err)
	}
	if !term.Equal(back, q) {
		t.Fatalf("round trip broke:\n  q    = %s\n  tmpl = %s\n  back = %s", q, tmpl, back)
	}
	return tmpl, params
}

func TestTemplatizeTable(t *testing.T) {
	attr11 := lalg.Attr(1, 1)
	attr12 := lalg.Attr(1, 2)
	attr21 := lalg.Attr(2, 1)

	cases := []struct {
		name    string
		q       *term.Term
		nparams int
	}{
		{"int filter", term.F("=", attr11, term.Num(5)), 1},
		{"const on left", term.F("<", term.Num(5), attr11), 1},
		{"string filter", term.F("=", attr12, term.Str("Allen")), 1},
		{"real range", term.F(">=", attr11, term.Flt(2.5)), 1},
		{"not-equal", term.F("<>", attr12, term.Str("Cartoon")), 1},
		{"join key stays", term.F("=", attr11, attr21), 0},
		{"const-const comparison stays", term.F("=", term.F("+", term.Num(2), term.Num(3)), term.Num(5)), 1},
		{"bool const stays", term.F("=", attr11, term.TrueT()), 0},
		{"null const stays", term.F("=", attr11, term.C(value.Null)), 0},
		{"arithmetic operand stays", term.F("+", attr11, term.Num(7)), 0},
		{"call args lift", term.F(lalg.ECall, term.Str("member"), term.Str("Cartoon"), term.Num(5)), 2},
		{"call name never lifts", term.F(lalg.ECall, term.Str("substr"), term.Str("abc")), 1},
		{"call attr arg stays", term.F(lalg.ECall, term.Str("count"), attr12), 0},
		{"bare call stays", term.F(lalg.ECall, term.Str("now")), 0},
		{"rel name never lifts", lalg.Rel("FILM"), 0},
		{"nested conjunction", term.F(lalg.EAnds, term.Set(
			term.F("=", attr11, term.Num(3)),
			term.F("<", attr12, term.Str("m")),
			term.F("=", attr11, attr21),
		)), 2},
		{"search-shaped", lalg.Search(
			[]*term.Term{lalg.Rel("FILM")},
			term.F(lalg.EAnds, term.Set(
				term.F(">", attr11, term.Num(1990)),
				term.F("=", attr12, term.Str("Drama")),
			)),
			[]*term.Term{attr11, attr12},
		), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tmpl, params := mustRoundTrip(t, tc.q)
			if len(params) != tc.nparams {
				t.Fatalf("lifted %d params, want %d (template %s)", len(params), tc.nparams, tmpl)
			}
			if tc.nparams == 0 && tmpl != tc.q {
				t.Errorf("no-op templatization should return q unchanged")
			}
		})
	}
}

// Two queries that differ only in constant values share one template;
// differing constant kinds do not (typecheck rules are type-dependent).
func TestTemplateSharing(t *testing.T) {
	attr := lalg.Attr(1, 1)
	shape := func(v *term.Term) *term.Term {
		return lalg.Search([]*term.Term{lalg.Rel("FILM")}, term.F("=", attr, v), []*term.Term{attr})
	}
	t1, p1 := Templatize(shape(term.Num(7)))
	t2, p2 := Templatize(shape(term.Num(99)))
	if !term.Equal(t1, t2) {
		t.Fatalf("same shape, different constants must share a template:\n  %s\n  %s", t1, t2)
	}
	if p1[0].I != 7 || p2[0].I != 99 {
		t.Fatalf("binding vectors should carry the lifted constants: %v %v", p1, p2)
	}
	t3, _ := Templatize(shape(term.Str("7")))
	if term.Equal(t1, t3) {
		t.Fatalf("kind-distinct constants must not share a template: %s", t3)
	}
}

func TestParamHelpers(t *testing.T) {
	p := Param(3, value.KString)
	if i, ok := ParamIndex(p); !ok || i != 3 {
		t.Fatalf("ParamIndex(Param(3)) = %d, %v", i, ok)
	}
	for _, not := range []*term.Term{
		term.Num(3),
		term.F("PARAMX", term.Num(1), term.Str("INT")),
		term.F(ParamFunctor, term.Str("1"), term.Str("INT")),
		term.FV("F", term.Num(1), term.Str("INT")),
	} {
		if _, ok := ParamIndex(not); ok {
			t.Errorf("ParamIndex(%s) should not match", not)
		}
	}
}

func TestSubstituteOutOfRange(t *testing.T) {
	plan := term.F("=", lalg.Attr(1, 1), Param(2, value.KInt))
	if _, err := Substitute(plan, []value.Value{value.Int(1)}); err == nil {
		t.Fatal("want error for PARAM(2) with one binding")
	}
	// Zero-param substitution is a no-op returning the plan unchanged.
	q := term.F("=", lalg.Attr(1, 1), lalg.Attr(2, 1))
	out, err := Substitute(q, nil)
	if err != nil || !term.Equal(out, q) {
		t.Fatalf("no-op substitute: %s, %v", out, err)
	}
}

// Seeded fuzz: random query-shaped terms must round-trip bit-identically.
func TestTemplatizeFuzzRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randConst := func() *term.Term {
		switch rng.Intn(5) {
		case 0:
			return term.Num(int64(rng.Intn(100)))
		case 1:
			return term.Flt(float64(rng.Intn(100)) / 4)
		case 2:
			return term.Str(string(rune('a' + rng.Intn(26))))
		case 3:
			return term.TrueT()
		default:
			return term.C(value.Null)
		}
	}
	ops := []string{"=", "<>", "<", ">", "<=", ">=", "+"}
	var randExpr func(depth int) *term.Term
	randExpr = func(depth int) *term.Term {
		if depth <= 0 || rng.Intn(4) == 0 {
			if rng.Intn(2) == 0 {
				return randConst()
			}
			return lalg.Attr(1+rng.Intn(3), 1+rng.Intn(4))
		}
		switch rng.Intn(4) {
		case 0:
			op := ops[rng.Intn(len(ops))]
			return term.F(op, randExpr(depth-1), randExpr(depth-1))
		case 1:
			n := 2 + rng.Intn(3)
			args := make([]*term.Term, n)
			for i := range args {
				args[i] = randExpr(depth - 1)
			}
			return term.F(lalg.EAnds, term.Set(args...))
		case 2:
			return term.F(lalg.ECall, term.Str("f"), randExpr(depth-1), randExpr(depth-1))
		default:
			return lalg.Filter(lalg.Rel("FILM"), randExpr(depth-1))
		}
	}
	for i := 0; i < 500; i++ {
		q := randExpr(4)
		mustRoundTrip(t, q)
	}
}

// Lifted templates must be purely structural: no Int/Real/String constant
// from a lifted position survives in the template itself.
func TestTemplateHoldsNoLiftedValues(t *testing.T) {
	attr := lalg.Attr(1, 2)
	q := lalg.Search(
		[]*term.Term{lalg.Rel("PERSON")},
		term.F(lalg.EAnds, term.Set(
			term.F("=", attr, term.Str("secret-tenant-value")),
			term.F(">", lalg.Attr(1, 3), term.Num(424242)),
		)),
		[]*term.Term{attr},
	)
	tmpl, params := mustRoundTrip(t, q)
	if len(params) != 2 {
		t.Fatalf("want 2 params, got %d", len(params))
	}
	var walk func(t *term.Term) bool
	walk = func(n *term.Term) bool {
		if n.Kind == term.Const && (n.Val.K == value.KString && n.Val.S == "secret-tenant-value" ||
			n.Val.K == value.KInt && n.Val.I == 424242) {
			return true
		}
		for _, a := range n.Args {
			if walk(a) {
				return true
			}
		}
		return false
	}
	if walk(tmpl) {
		t.Fatalf("lifted constant leaked into template: %s", tmpl)
	}
}
