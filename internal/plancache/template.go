// Query templatization: lift constants out of a translated LERA term
// into a 1-based binding vector, so one cached rewrite of the template
// serves every query that differs only in those constants.
//
// Lifting is deliberately conservative (a whitelist): only Int, Real and
// String constants that sit in a value position — one operand of a
// two-place comparison whose other operand is not a constant, or an
// argument of an ADT CALL — are replaced by PARAM placeholders.
// Structural constants (relation names under REL, attribute indices
// under ATTR, fixpoint/nest names, CALL function names at argument 0)
// are never positions the whitelist reaches, so templates stay purely
// structural: no user data survives in a cached template or plan.
//
// A PARAM placeholder carries its binding's value kind
// (PARAM(i, 'INT')), so two queries whose constants differ in type
// produce different templates — the typecheck rules are type-dependent
// and must not share a cached rewrite across kinds.
//
// Determinism: Templatize numbers parameters in one bottom-up
// left-to-right pass over the canonical term. Because SET/BAG arguments
// are already sorted by term.Compare before lifting, and PARAM indices
// ascend in exactly that traversal order, re-canonicalization of the
// template (and of the substituted result) reproduces the original
// argument order bit-for-bit. Substitute(Templatize(q)) == q is pinned
// by a fuzz test.
package plancache

import (
	"fmt"

	lalg "lera/internal/lera"
	"lera/internal/term"
	"lera/internal/value"
)

// ParamFunctor is the placeholder functor: PARAM(index, kind-name).
const ParamFunctor = "PARAM"

// cmpOps are the two-place comparison functors whose constant operands
// are lifted. Arithmetic ('+', '*') is excluded on purpose: constant
// subexpressions there exist to be folded by the simplification rules.
var cmpOps = map[string]bool{
	"=": true, "<>": true, "<": true, ">": true, "<=": true, ">=": true,
}

// liftable reports whether a constant of this kind may become a
// parameter. Booleans and NULL are structural (TRUE/FALSE are rewrite
// targets); collections, tuples and OIDs never templatize.
func liftable(v value.Value) bool {
	switch v.K {
	case value.KInt, value.KReal, value.KString:
		return true
	}
	return false
}

// Param builds the placeholder term for 1-based parameter i of kind k.
func Param(i int, k value.Kind) *term.Term {
	return term.F(ParamFunctor, term.Num(int64(i)), term.Str(k.String()))
}

// ParamIndex recognizes a placeholder and returns its 1-based index.
func ParamIndex(t *term.Term) (int, bool) {
	if t.Kind != term.Fun || t.VarHead || t.Functor != ParamFunctor || len(t.Args) != 2 {
		return 0, false
	}
	ix := t.Args[0]
	if ix.Kind != term.Const || ix.Val.K != value.KInt {
		return 0, false
	}
	return int(ix.Val.I), true
}

// Templatize returns a copy of q with whitelisted constants replaced by
// PARAM placeholders, plus the binding vector in placeholder order. If
// nothing is liftable the original term is returned unchanged with a
// nil vector. q itself is never mutated (terms are immutable).
func Templatize(q *term.Term) (*term.Term, []value.Value) {
	var params []value.Value
	lift := func(c *term.Term) *term.Term {
		params = append(params, c.Val)
		return Param(len(params), c.Val.K)
	}
	tmpl := term.Rewrite(q, func(t *term.Term) *term.Term {
		if t.Kind != term.Fun || t.VarHead {
			return t
		}
		switch {
		case len(t.Args) == 2 && cmpOps[t.Functor]:
			a, b := t.Args[0], t.Args[1]
			// Lift a constant operand only when the other side is not a
			// constant: const-vs-const comparisons (e.g. the folded
			// "2+3=5", or contradiction detection over "n>2 AND n<=2")
			// are consumed by the simplification rules at rewrite time.
			switch {
			case a.Kind == term.Const && liftable(a.Val) && b.Kind != term.Const:
				return term.F(t.Functor, lift(a), b)
			case b.Kind == term.Const && liftable(b.Val) && a.Kind != term.Const:
				return term.F(t.Functor, a, lift(b))
			}
		case t.Functor == lalg.ECall && len(t.Args) > 1:
			// CALL('Name', arg1, ...): argument 0 is the function name —
			// structural, never lifted. Value arguments are.
			var args []*term.Term
			for i, a := range t.Args {
				if i > 0 && a.Kind == term.Const && liftable(a.Val) {
					if args == nil {
						args = append(args[:0:0], t.Args...)
					}
					args[i] = lift(a)
				}
			}
			if args != nil {
				return term.F(t.Functor, args...)
			}
		}
		return t
	})
	return tmpl, params
}

// Substitute replaces every PARAM placeholder in plan with the
// corresponding constant from params (1-based). Placeholders may have
// been duplicated or dropped by the rewrite; every surviving occurrence
// is bound. An out-of-range index is an error (a corrupt cache entry).
func Substitute(plan *term.Term, params []value.Value) (*term.Term, error) {
	var err error
	out := term.Rewrite(plan, func(t *term.Term) *term.Term {
		i, ok := ParamIndex(t)
		if !ok {
			return t
		}
		if i < 1 || i > len(params) {
			if err == nil {
				err = fmt.Errorf("plancache: plan references $%d but only %d bindings are present", i, len(params))
			}
			return t
		}
		return term.C(params[i-1])
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
