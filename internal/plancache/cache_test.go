package plancache

import (
	"fmt"
	"sync"
	"testing"

	"lera/internal/term"
)

func tm(i int) *term.Term { return term.F("T", term.Num(int64(i))) }

func TestStoreLookupHit(t *testing.T) {
	c := New(4)
	tmpl, plan := tm(1), tm(100)
	if _, _, _, st := c.Lookup(tmpl, "e"); st != Miss {
		t.Fatalf("empty cache lookup = %v, want Miss", st)
	}
	c.Store(tmpl, plan, 2, "e")
	got, np, ord, st := c.Lookup(tmpl, "e")
	if st != Hit || !term.Equal(got, plan) || np != 2 || ord != 1 {
		t.Fatalf("lookup = %s, %d, %d, %v", got, np, ord, st)
	}
	if _, _, ord, _ := c.Lookup(tmpl, "e"); ord != 2 {
		t.Fatalf("second hit ordinal = %d, want 2", ord)
	}
	s := c.Snapshot()
	if s.Hits != 2 || s.Misses != 1 || s.Entries != 1 || s.Capacity != 4 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Store(tm(1), tm(101), 0, "e")
	c.Store(tm(2), tm(102), 0, "e")
	// Touch 1 so 2 becomes least-recently-used.
	if _, _, _, st := c.Lookup(tm(1), "e"); st != Hit {
		t.Fatal("expected hit on 1")
	}
	if ev := c.Store(tm(3), tm(103), 0, "e"); ev != 1 {
		t.Fatalf("evicted = %d, want 1", ev)
	}
	if _, _, _, st := c.Lookup(tm(2), "e"); st != Miss {
		t.Fatal("2 should have been evicted")
	}
	for _, i := range []int{1, 3} {
		if _, _, _, st := c.Lookup(tm(i), "e"); st != Hit {
			t.Fatalf("%d should have survived", i)
		}
	}
	if s := c.Snapshot(); s.Evictions != 1 {
		t.Fatalf("evictions = %d", s.Evictions)
	}
}

func TestStoreReplaceKeepsOneEntry(t *testing.T) {
	c := New(2)
	c.Store(tm(1), tm(101), 0, "e")
	if ev := c.Store(tm(1), tm(201), 1, "e2"); ev != 0 {
		t.Fatalf("replace evicted %d", ev)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	got, np, _, st := c.Lookup(tm(1), "e2")
	if st != Hit || !term.Equal(got, tm(201)) || np != 1 {
		t.Fatalf("replaced entry lookup = %s, %d, %v", got, np, st)
	}
}

func TestEnvMismatchInvalidates(t *testing.T) {
	c := New(4)
	c.Store(tm(1), tm(101), 0, "rules-v1")
	if _, _, _, st := c.Lookup(tm(1), "rules-v2"); st != Stale {
		t.Fatalf("lookup under new env = %v, want Stale", st)
	}
	// The stale entry is gone: the old environment misses too.
	if _, _, _, st := c.Lookup(tm(1), "rules-v1"); st != Miss {
		t.Fatal("stale entry should have been dropped")
	}
	s := c.Snapshot()
	if s.Invalidations != 1 || s.Misses != 2 || s.Entries != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPeekIsReadOnly(t *testing.T) {
	c := New(2)
	c.Store(tm(1), tm(101), 3, "e")
	c.Store(tm(2), tm(102), 0, "e")
	before := c.Snapshot()
	if plan, np, ok := c.Peek(tm(1), "e"); !ok || np != 3 || !term.Equal(plan, tm(101)) {
		t.Fatalf("peek = %v %d %v", plan, np, ok)
	}
	if _, _, ok := c.Peek(tm(1), "other-env"); ok {
		t.Fatal("peek must not match a different environment")
	}
	if _, _, ok := c.Peek(tm(9), "e"); ok {
		t.Fatal("peek of absent entry")
	}
	if after := c.Snapshot(); after != before {
		t.Fatalf("peek mutated counters: %+v -> %+v", before, after)
	}
	// Peek must not refresh LRU order: 1 is still the oldest entry.
	c.Store(tm(3), tm(103), 0, "e")
	if _, _, _, st := c.Lookup(tm(1), "e"); st != Miss {
		t.Fatal("peek refreshed LRU order; 1 should have been evicted")
	}
	// And a stale peek must not drop the entry.
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestRejectSet(t *testing.T) {
	c := New(2)
	if c.Rejected(42) {
		t.Fatal("fresh cache rejects nothing")
	}
	c.Reject(42)
	if !c.Rejected(42) {
		t.Fatal("rejected hash not remembered")
	}
	if s := c.Snapshot(); s.Rejections != 1 {
		t.Fatalf("rejections = %d", s.Rejections)
	}
	// The reject set is bounded: overflowing resets it rather than growing.
	for i := 0; i < rejectedCap+1; i++ {
		c.Reject(uint64(1000 + i))
	}
	if c.Rejected(42) {
		t.Fatal("reject set should have been reset at capacity")
	}
}

func TestFailValidation(t *testing.T) {
	c := New(4)
	c.Store(tm(1), tm(101), 0, "e")
	c.FailValidation(tm(1))
	if _, _, _, st := c.Lookup(tm(1), "e"); st != Miss {
		t.Fatal("failed entry should be gone")
	}
	s := c.Snapshot()
	if s.ValidationFailures != 1 || s.Invalidations != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestClearPreservesCounters(t *testing.T) {
	c := New(4)
	c.Store(tm(1), tm(101), 0, "e")
	c.Store(tm(2), tm(102), 0, "e")
	c.Lookup(tm(1), "e")
	c.Reject(7)
	if n := c.Clear(); n != 2 {
		t.Fatalf("cleared %d entries", n)
	}
	if c.Len() != 0 || c.Rejected(7) {
		t.Fatal("clear must drop entries and the reject set")
	}
	s := c.Snapshot()
	if s.Hits != 1 || s.Rejections != 1 {
		t.Fatalf("clear must preserve cumulative counters: %+v", s)
	}
}

func TestMinimumCapacity(t *testing.T) {
	c := New(0)
	c.Store(tm(1), tm(101), 0, "e")
	if _, _, _, st := c.Lookup(tm(1), "e"); st != Hit {
		t.Fatal("capacity 0 clamps to 1, entry should fit")
	}
}

// Hammer the cache from many goroutines; correctness is checked by the
// race detector plus the final entries-within-capacity invariant.
func TestConcurrentAccess(t *testing.T) {
	c := New(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g + i) % 16
				env := fmt.Sprintf("e%d", i%2)
				if _, _, _, st := c.Lookup(tm(k), env); st != Hit {
					c.Store(tm(k), tm(100+k), 0, env)
				}
				c.Peek(tm(k), env)
				if i%50 == 0 {
					c.Reject(uint64(k))
					c.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Fatalf("len %d exceeds capacity", c.Len())
	}
}
