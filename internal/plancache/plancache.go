// Package plancache is a bounded, concurrency-safe LRU of rewritten
// LERA plans. Entries are keyed by the memoized structural hash of the
// templatized query term and guarded by an environment string that
// folds in everything else the rewrite output depends on — the rule
// base fingerprint, the rewrite-relevant session knobs, and the catalog
// schema version (plus the data version when planning hints are on).
// A lookup whose environment no longer matches drops the entry and
// reports it as an invalidation, so rule-base or catalog changes can
// never serve a stale plan.
//
// Templates are structural only (constants live in the per-request
// binding vector, see template.go), so a shared cache never leaks rows
// or bindings between the sessions of a fork pool.
//
// The cache is defensive about templatization soundness: a template
// whose rewritten plan fails the store-time round-trip check
// (Substitute(rewrite(template)) must equal rewrite(query) on the
// triggering binding) is remembered in a bounded reject set, and such
// queries fall back to exact-term caching.
package plancache

import (
	"container/list"
	"sync"

	"lera/internal/term"
)

// rejectedCap bounds the reject set; when full it is reset (the cost is
// re-deriving a rejection, never a wrong plan).
const rejectedCap = 4096

// Status classifies one cache lookup.
type Status int

const (
	// Miss: no entry for this template in the current environment.
	Miss Status = iota
	// Hit: the cached plan was returned.
	Hit
	// Stale: an entry existed but its environment no longer matches; it
	// was dropped and counted as an invalidation (the lookup is a miss).
	Stale
)

// Outcome is the per-query cache record surfaced on core.Result: what
// the cache did for one SELECT. The core layer publishes it to the
// lera_plancache_* metrics and EXPLAIN renders it.
type Outcome struct {
	Hit              bool   // plan served from cache
	Stored           bool   // a new entry was stored
	Rejected         bool   // template failed validation; exact entry used
	Invalidated      bool   // a stale or failing entry was dropped
	Evicted          int    // entries evicted by this store
	Validated        bool   // hit was re-checked against a cold rewrite
	ValidationFailed bool   // the re-check disagreed (entry dropped)
	TemplateHash     uint64 // structural hash of the template
	NParams          int    // lifted constants in the binding vector
}

// Stats is a point-in-time snapshot of cache counters (see \cache).
type Stats struct {
	Hits               uint64
	Misses             uint64
	Evictions          uint64
	Invalidations      uint64
	ValidationFailures uint64
	Rejections         uint64
	Entries            int
	Capacity           int
}

type entry struct {
	key      uint64 // template structural hash
	template *term.Term
	plan     *term.Term
	nparams  int
	env      string
	hits     uint64
}

// Cache is the bounded LRU. The zero value is not usable; construct
// with New. All methods are safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	idx      map[uint64]*list.Element
	rejected map[uint64]struct{}
	stats    Stats
}

// New returns a cache bounded to capacity entries (minimum 1).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		idx:      make(map[uint64]*list.Element),
		rejected: make(map[uint64]struct{}),
	}
}

// Lookup finds the entry for tmpl in environment env. On Hit it returns
// the cached plan (immutable — safe to share), its parameter count and
// the entry's hit ordinal (1 for the first hit; the caller uses it for
// sampled re-validation). A hash collision with a different template is
// treated as a miss. An entry whose environment differs is dropped and
// reported Stale.
func (c *Cache) Lookup(tmpl *term.Term, env string) (plan *term.Term, nparams int, hitOrdinal uint64, st Status) {
	key := tmpl.Hash()
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[key]
	if !ok {
		c.stats.Misses++
		return nil, 0, 0, Miss
	}
	e := el.Value.(*entry)
	if e.env != env {
		c.removeLocked(el)
		c.stats.Invalidations++
		c.stats.Misses++
		return nil, 0, 0, Stale
	}
	if !term.Equal(e.template, tmpl) {
		c.stats.Misses++
		return nil, 0, 0, Miss
	}
	c.ll.MoveToFront(el)
	e.hits++
	c.stats.Hits++
	return e.plan, e.nparams, e.hits, Hit
}

// Peek is a read-only probe (plain EXPLAIN uses it): it reports what a
// Lookup would return without counting a hit or miss, moving the entry
// in LRU order, or dropping a stale entry.
func (c *Cache) Peek(tmpl *term.Term, env string) (plan *term.Term, nparams int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, present := c.idx[tmpl.Hash()]
	if !present {
		return nil, 0, false
	}
	e := el.Value.(*entry)
	if e.env != env || !term.Equal(e.template, tmpl) {
		return nil, 0, false
	}
	return e.plan, e.nparams, true
}

// Store inserts (or replaces) the entry for tmpl and returns how many
// entries were evicted to stay within capacity.
func (c *Cache) Store(tmpl, plan *term.Term, nparams int, env string) (evicted int) {
	key := tmpl.Hash()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[key]; ok {
		e := el.Value.(*entry)
		e.template, e.plan, e.nparams, e.env, e.hits = tmpl, plan, nparams, env, 0
		c.ll.MoveToFront(el)
		return 0
	}
	c.idx[key] = c.ll.PushFront(&entry{key: key, template: tmpl, plan: plan, nparams: nparams, env: env})
	for c.ll.Len() > c.capacity {
		c.removeLocked(c.ll.Back())
		c.stats.Evictions++
		evicted++
	}
	return evicted
}

// FailValidation drops the entry for tmpl after a sampled hit
// re-validation disagreed with a cold rewrite, counting both a
// validation failure and an invalidation.
func (c *Cache) FailValidation(tmpl *term.Term) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[tmpl.Hash()]; ok {
		c.removeLocked(el)
	}
	c.stats.ValidationFailures++
	c.stats.Invalidations++
}

// Reject marks a template hash as not safely templatizable; subsequent
// queries with this shape use exact-term entries instead.
func (c *Cache) Reject(key uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.rejected) >= rejectedCap {
		c.rejected = make(map[uint64]struct{})
	}
	c.rejected[key] = struct{}{}
	c.stats.Rejections++
}

// Rejected reports whether a template hash has been rejected.
func (c *Cache) Rejected(key uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.rejected[key]
	return ok
}

// Clear empties the cache and the reject set, returning how many plan
// entries were dropped. Counters are preserved (they are cumulative).
func (c *Cache) Clear() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.ll.Len()
	c.ll.Init()
	c.idx = make(map[uint64]*list.Element)
	c.rejected = make(map[uint64]struct{})
	return n
}

// Len returns the current number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Snapshot returns the cumulative counters plus current size/capacity.
func (c *Cache) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.Capacity = c.capacity
	return s
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.idx, e.key)
}
