// Rule and site indexing for the engine hot path (docs/PERF.md).
//
// The paper's §4.2 control strategy restarts a block from its first rule
// after every application, so the naive loop re-walks the whole query term
// once per rule per iteration and attempts a full match at every node. But
// a match can only complete at a node whose head functor and arity are
// compatible with the rule's LHS head — a property computable once per
// rule and once per node. The engine therefore discriminates on the head,
// Starburst/Volcano style: each rule's LHS is classified into an lhsFilter
// at engine construction, and each pass walks the term once, bucketing
// Fun nodes by functor into a siteIndex. A rule then visits only its
// candidate sites, in the same preorder the naive walk would have used, so
// the sequence of complete matches — and with it every rewrite result and
// every §4.2 budget decrement — is bit-for-bit identical to the full scan.
package rewrite

import (
	"lera/internal/rules"
	"lera/internal/term"
)

// headKind classifies how a rule's LHS constrains a match site's head.
type headKind int

const (
	// headExact: the LHS head is a concrete functor; only sites with that
	// functor are candidates.
	headExact headKind = iota
	// headCollection: the LHS head is the pattern-only COLLECTION functor,
	// matching any of SET, BAG, LIST, ARRAY (or a literal COLLECTION).
	headCollection
	// headAny: the head cannot be discriminated — a function-variable head
	// (Figure 6's F, G, ...) or a bare variable LHS matches every functor.
	headAny
	// headNone: the LHS is a constant or a bare collection variable, which
	// can never match a Fun site; the rule has no candidates at all.
	headNone
)

// lhsFilter is the per-rule discrimination key: a conservative, O(1)
// necessary condition for the rule's LHS to match at a site. It never
// rejects a site the matcher could accept; it only skips sites where the
// backtracking matcher would have failed on the head or the arity.
type lhsFilter struct {
	kind    headKind
	functor string // headExact only
	// minArity is the number of non-collection-variable LHS arguments; a
	// subject needs at least that many. When the LHS has no collection
	// variables (exact == true) the subject arity must match minArity
	// exactly — both the ordered and the SET/BAG multiset matcher consume
	// all subject arguments. Collection-variable arguments absorb any
	// surplus, which is also why AC heads can't be discriminated further
	// than functor/minimum-arity (see docs/PERF.md).
	minArity int
	exact    bool
}

// filterFor classifies a rule's LHS.
func filterFor(lhs *term.Term) lhsFilter {
	switch lhs.Kind {
	case term.Var:
		// A bare variable binds any subterm: every Fun site is a candidate.
		return lhsFilter{kind: headAny}
	case term.Fun:
		min, exact := arityBounds(lhs.Args)
		switch {
		case lhs.VarHead:
			return lhsFilter{kind: headAny, minArity: min, exact: exact}
		case lhs.Functor == term.FCollection:
			return lhsFilter{kind: headCollection, minArity: min, exact: exact}
		default:
			return lhsFilter{kind: headExact, functor: lhs.Functor, minArity: min, exact: exact}
		}
	default: // Const, SeqVar: the engine only matches at Fun sites
		return lhsFilter{kind: headNone}
	}
}

// arityBounds derives the subject-arity constraint from LHS arguments.
func arityBounds(args []*term.Term) (min int, exact bool) {
	seqs := 0
	for _, a := range args {
		if a.Kind == term.SeqVar {
			seqs++
		}
	}
	return len(args) - seqs, seqs == 0
}

// admits reports whether a Fun site passes the arity constraint.
func (f lhsFilter) admits(site *term.Term) bool {
	if f.exact {
		return len(site.Args) == f.minArity
	}
	return len(site.Args) >= f.minArity
}

// ruleFilters computes (and memoizes) the lhsFilter of every rule in the
// engine's rule set.
func (e *Engine) ruleFilters() map[string]lhsFilter {
	if e.filters == nil {
		e.filters = make(map[string]lhsFilter, len(e.RS.Rules))
		for name, r := range e.RS.Rules {
			e.filters[name] = filterFor(r.LHS)
		}
	}
	return e.filters
}

// siteEntry is one Fun node of the current query term, with enough parent
// linkage to materialize its Path lazily — the path is only built when a
// match actually completes, never for the nodes the walk merely passes.
type siteEntry struct {
	node   *term.Term
	parent int32 // index of the parent entry, -1 at the root
	arg    int32 // argument position within the parent
	depth  int32
}

// siteIndex is the per-pass discrimination structure: all Fun nodes of the
// query term in preorder, bucketed by head functor. It is rebuilt (in one
// walk, reusing its allocations) after every committed application, and
// stays valid across all rules of a pass because no term changes between
// applications.
type siteIndex struct {
	sites  []siteEntry
	byHead map[string][]int32
	coll   []int32 // sites matching the COLLECTION pattern head
}

// rebuild walks root once and refills the index in place.
func (ix *siteIndex) rebuild(root *term.Term) {
	ix.sites = ix.sites[:0]
	ix.coll = ix.coll[:0]
	if ix.byHead == nil {
		ix.byHead = make(map[string][]int32)
	} else {
		for k, v := range ix.byHead {
			ix.byHead[k] = v[:0]
		}
	}
	var rec func(t *term.Term, parent, arg, depth int32)
	rec = func(t *term.Term, parent, arg, depth int32) {
		if t.Kind != term.Fun {
			return
		}
		id := int32(len(ix.sites))
		ix.sites = append(ix.sites, siteEntry{node: t, parent: parent, arg: arg, depth: depth})
		ix.byHead[t.Functor] = append(ix.byHead[t.Functor], id)
		switch t.Functor {
		case term.FSet, term.FBag, term.FList, term.FArray, term.FCollection:
			ix.coll = append(ix.coll, id)
		}
		for i, a := range t.Args {
			rec(a, id, int32(i), depth+1)
		}
	}
	rec(root, -1, -1, 0)
}

// path materializes the root path of site id by chasing parent links.
func (ix *siteIndex) path(id int32) term.Path {
	e := ix.sites[id]
	p := make(term.Path, e.depth)
	for i := int(e.depth) - 1; i >= 0; i-- {
		p[i] = int(e.arg)
		e = ix.sites[e.parent]
	}
	return p
}

// applyOnceIndexed is applyOnce over the site index: same rule, same
// topmost-leftmost site order, same budget accounting, but only candidate
// sites are attempted. The shared tryRuleAtSite keeps the two paths'
// behavior identical by construction.
func (e *Engine) applyOnceIndexed(q *term.Term, rule *rules.Rule, blockName string, budget *int, st *Stats) (*term.Term, bool, error) {
	f := e.ruleFilters()[rule.Name]
	if f.kind == headNone {
		return nil, false, nil
	}
	ix := &e.ix
	try := func(id int32) (*term.Term, siteOutcome, error) {
		site := ix.sites[id].node
		if !f.admits(site) {
			return nil, siteSkip, nil
		}
		return e.tryRuleAtSite(q, rule, blockName, site,
			func() term.Path { return ix.path(id) }, budget, st)
	}
	var ids []int32
	switch f.kind {
	case headExact:
		ids = ix.byHead[f.functor]
	case headCollection:
		ids = ix.coll
	case headAny:
		// No discrimination possible: every site in preorder.
		for id := int32(0); id < int32(len(ix.sites)); id++ {
			if *budget <= 0 {
				return nil, false, nil
			}
			res, outcome, err := try(id)
			if err != nil {
				return nil, false, err
			}
			if outcome == siteApplied {
				return res, true, nil
			}
			if outcome == siteStop {
				return nil, false, nil
			}
		}
		return nil, false, nil
	}
	for _, id := range ids {
		if *budget <= 0 {
			return nil, false, nil
		}
		res, outcome, err := try(id)
		if err != nil {
			return nil, false, err
		}
		if outcome == siteApplied {
			return res, true, nil
		}
		if outcome == siteStop {
			return nil, false, nil
		}
	}
	return nil, false, nil
}
