package rewrite

// Generic externals: the constraint and method functions that belong to
// the rule language itself rather than to LERA — ISA type checking,
// constant evaluation (EVALUATE, used by the Figure 12 simplification
// rules), and ground-term comparison. LERA-specific externals (SUBSTITUTE,
// REFER, ALEXANDER, ...) are registered by the packages that own them.

import (
	"fmt"
	"strings"

	"lera/internal/lera"
	"lera/internal/term"
	"lera/internal/types"
	"lera/internal/value"
)

// EvalGround evaluates a ground term to a runtime value using the
// catalog's ADT registry: constants evaluate to themselves, constructor
// terms to collection/tuple values, and pure registered functions fold.
// The boolean result reports evaluability (non-ground or impure terms are
// simply not evaluable, which constraint evaluation treats as "condition
// not established").
func EvalGround(ctx *Ctx, t *term.Term) (value.Value, bool) {
	switch t.Kind {
	case term.Const:
		return t.Val, true
	case term.Fun:
		args := make([]value.Value, len(t.Args))
		for i, a := range t.Args {
			v, ok := EvalGround(ctx, a)
			if !ok {
				return value.Null, false
			}
			args[i] = v
		}
		switch t.Functor {
		case term.FSet:
			return value.NewSet(args...), true
		case term.FBag:
			return value.NewBag(args...), true
		case term.FList:
			return value.NewList(args...), true
		case term.FArray:
			return value.NewArray(args...), true
		case term.FTuple:
			names := make([]string, len(args))
			for i := range names {
				names[i] = fmt.Sprintf("f%d", i+1)
			}
			return value.NewTuple(names, args), true
		case lera.EAnds, lera.EOrs:
			// ANDS(SET(...)) / ORS(SET(...)) over ground formulas.
			if len(t.Args) == 1 {
				all := t.Functor == lera.EAnds
				inner := args[0]
				for _, e := range inner.Elems {
					if e.K != value.KBool {
						return value.Null, false
					}
					if all && !e.B {
						return value.False, true
					}
					if !all && e.B {
						return value.True, true
					}
				}
				return value.Bool(all), true
			}
			return value.Null, false
		}
		if ent, ok := ctx.Cat.ADTs.Lookup(t.Functor); ok && ent.Pure {
			v, err := ctx.Cat.ADTs.Call(t.Functor, args)
			if err != nil {
				return value.Null, false
			}
			return v, true
		}
	}
	return value.Null, false
}

// evalConstraint evaluates one rule constraint under the context.
func (e *Engine) evalConstraint(ctx *Ctx, c *term.Term) (bool, error) {
	inst := e.instArg(ctx, c)
	switch inst.Kind {
	case term.Const:
		if inst.Val.K == value.KBool {
			return inst.Val.B, nil
		}
		return false, fmt.Errorf("non-boolean constraint %s", inst)
	case term.Var, term.SeqVar:
		return false, fmt.Errorf("unbound constraint %s", inst)
	}
	switch strings.ToUpper(inst.Functor) {
	case "AND":
		for _, a := range inst.Args {
			ok, err := e.evalConstraint(ctx, a)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case "OR":
		for _, a := range inst.Args {
			ok, err := e.evalConstraint(ctx, a)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case "NOT":
		if len(inst.Args) != 1 {
			return false, fmt.Errorf("NOT takes one constraint")
		}
		ok, err := e.evalConstraint(ctx, inst.Args[0])
		return !ok, err
	case "ISA":
		return evalISA(ctx, inst.Args)
	}
	if fn, ok := e.Ext.constraints[strings.ToUpper(inst.Functor)]; ok {
		return fn(ctx, inst.Args)
	}
	// Fallback: ground evaluation (comparisons, MEMBER on literal
	// collections, f = TRUE, ...).
	if v, ok := EvalGround(ctx, inst); ok && v.K == value.KBool {
		return v.B, nil
	}
	return false, fmt.Errorf("unknown or non-ground constraint %s", inst)
}

// evalISA implements the ISA predicate of Section 4.1 over three argument
// shapes: ISA(x, constant) tests constant-hood (Figure 12); ISA(expr,
// TypeName) types a query expression at the match site; ISA(T1, T2)
// relates two named types.
func evalISA(ctx *Ctx, args []*term.Term) (bool, error) {
	if len(args) != 2 {
		return false, fmt.Errorf("ISA takes 2 arguments")
	}
	x, y := args[0], args[1]
	yName := ""
	if y.Kind == term.Const && y.Val.K == value.KString {
		yName = y.Val.S
	} else {
		return false, nil
	}
	if strings.EqualFold(yName, "constant") {
		return x.IsGround() && isConstExpr(x), nil
	}
	xt, err := typeOfAtSite(ctx, x)
	if err != nil || xt == nil {
		// Fall back to name-to-name subtyping.
		if x.Kind == term.Const && x.Val.K == value.KString {
			return ctx.Cat.Types.ISAName(x.Val.S, yName), nil
		}
		return false, nil
	}
	super, ok := ctx.Cat.Types.Lookup(yName)
	if !ok {
		// "Set" etc. in Figure 11 refer to the generic collection ADTs.
		switch strings.ToUpper(yName) {
		case "SET", "BAG", "LIST", "ARRAY":
			return xt.Kind == types.Collection && xt.CollKind.String() == strings.ToLower(yName), nil
		case "COLLECTION":
			return xt.Kind == types.Collection, nil
		}
		return false, nil
	}
	return ctx.Cat.Types.ISA(xt, super), nil
}

// isConstExpr reports whether a ground term is a constant expression (a
// literal or a constructor of literals) as ISA(x, constant) requires.
func isConstExpr(t *term.Term) bool {
	switch t.Kind {
	case term.Const:
		return true
	case term.Fun:
		if !term.IsConstructor(t.Functor) {
			return false
		}
		for _, a := range t.Args {
			if !isConstExpr(a) {
				return false
			}
		}
		return true
	}
	return false
}

// typeOfAtSite types a query expression using the schemas of the
// enclosing relational operator (so ATTR references resolve).
func typeOfAtSite(ctx *Ctx, x *term.Term) (*types.Type, error) {
	if x.Kind == term.Const {
		// An enum literal carries its declared enum type when the value
		// belongs to exactly one enumeration; otherwise the literal's
		// basic type.
		return ctx.Cat.Types.TypeOfValue(x.Val), nil
	}
	rels, err := ctx.EnclosingRels()
	if err != nil {
		return nil, err
	}
	return lera.TypeOf(x, rels, ctx.Cat)
}

func registerGenericExternals(e *Externals) {
	// EVALUATE(expr, out): fold a ground expression to a constant and
	// bind the output variable (Figure 12's constant-folding method).
	e.RegisterMethod("EVALUATE", func(ctx *Ctx, args []*term.Term) (bool, error) {
		if len(args) != 2 {
			return false, fmt.Errorf("EVALUATE takes (expr, out)")
		}
		out := args[1]
		if out.Kind != term.Var {
			return false, fmt.Errorf("EVALUATE output must be an unbound variable, got %s", out)
		}
		v, ok := EvalGround(ctx, args[0])
		if !ok {
			return false, nil // not foldable: veto the rule
		}
		ctx.Bind.BindVar(out.Name, term.C(v))
		return true, nil
	})

	// NOTMEMBER(t, list): true when term t does not occur in the
	// instantiated sequence — used to guard augmentation rules.
	e.RegisterConstraint("NOTMEMBER", func(ctx *Ctx, args []*term.Term) (bool, error) {
		if len(args) != 2 || args[1].Kind != term.Fun {
			return false, fmt.Errorf("NOTMEMBER takes (term, collection)")
		}
		for _, el := range args[1].Args {
			if term.Equal(el, args[0]) {
				return false, nil
			}
		}
		return true, nil
	})

	// DISTINCT(a, b): the two instantiated terms differ syntactically.
	e.RegisterConstraint("DISTINCT", func(ctx *Ctx, args []*term.Term) (bool, error) {
		if len(args) != 2 {
			return false, fmt.Errorf("DISTINCT takes 2 arguments")
		}
		return !term.Equal(args[0], args[1]), nil
	})

	// SET-UNION(xs..., set): the Figure 7 union-merge builtin — splice
	// sequence elements and the elements of any SET arguments into one
	// SET.
	setUnion := func(ctx *Ctx, args []*term.Term) (*term.Term, error) {
		var elems []*term.Term
		for _, a := range args {
			if a.Kind == term.Fun && (a.Functor == term.FSet || a.Functor == term.FList) {
				elems = append(elems, a.Args...)
				continue
			}
			elems = append(elems, a)
		}
		return term.Set(elems...), nil
	}
	e.RegisterBuiltin("SET-UNION", setUnion)
	e.RegisterBuiltin("SETUNION", setUnion)

	// APPENDL(args...): build a LIST, flattening LIST arguments — the
	// append(x*, v*, z) of the Figure 7 search-merging rule.
	e.RegisterBuiltin("APPENDL", func(ctx *Ctx, args []*term.Term) (*term.Term, error) {
		var elems []*term.Term
		for _, a := range args {
			if a.Kind == term.Fun && a.Functor == term.FList {
				elems = append(elems, a.Args...)
				continue
			}
			elems = append(elems, a)
		}
		return term.List(elems...), nil
	})

	// ANDMERGE(f, g): conjoin two qualifications, flattening canonical
	// ANDS forms (lera.Ands does the flattening and deduplication).
	e.RegisterBuiltin("ANDMERGE", func(ctx *Ctx, args []*term.Term) (*term.Term, error) {
		return lera.Ands(args...), nil
	})
}
