package rewrite

import (
	"strings"
	"testing"

	"lera/internal/lera"
	"lera/internal/rules"
	"lera/internal/term"
	"lera/internal/testdb"
	"lera/internal/value"
)

func newEngine(t *testing.T, src string, opts Options) *Engine {
	t.Helper()
	rs, err := rules.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := testdb.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	return New(rs, NewExternals(), cat, opts)
}

func run(t *testing.T, e *Engine, q *term.Term) (*term.Term, *Stats) {
	t.Helper()
	out, st, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	return out, st
}

func TestSimpleRewrite(t *testing.T) {
	e := newEngine(t, "rule r: FOO(x) --> BAR(x);", Options{})
	out, st := run(t, e, term.F("WRAP", term.F("FOO", term.Num(1))))
	if out.String() != "WRAP(BAR(1))" {
		t.Errorf("out = %s", out)
	}
	if st.Applications != 1 {
		t.Errorf("applications = %d", st.Applications)
	}
}

func TestRewriteToFixpoint(t *testing.T) {
	// Peano-style: s(s(s(z))) with rule s(x) --> x reduces to z in 3
	// applications under an infinite implicit block.
	e := newEngine(t, "rule strip: SUCC(x) --> x;", Options{})
	n := term.F("ZERO")
	for i := 0; i < 3; i++ {
		n = term.F("SUCC", n)
	}
	out, st := run(t, e, n)
	if out.String() != "ZERO()" {
		t.Errorf("out = %s", out)
	}
	if st.Applications != 3 {
		t.Errorf("applications = %d", st.Applications)
	}
}

func TestConstraintComparison(t *testing.T) {
	e := newEngine(t, "rule r: F(x) / x > 5 --> BIG(x);", Options{})
	out, _ := run(t, e, term.F("PAIR", term.F("F", term.Num(3)), term.F("F", term.Num(7))))
	if out.String() != "PAIR(F(3), BIG(7))" {
		t.Errorf("out = %s", out)
	}
}

func TestConstraintConnectives(t *testing.T) {
	e := newEngine(t, `
rule r1: FF(x) / x > 5 AND x < 10 --> MID(x);
rule r2: GG(x) / x < 0 OR x > 100 --> EXT(x);
rule r3: HH(x) / NOT x = 0 --> NZ(x);
`, Options{})
	out, _ := run(t, e, term.F("TT",
		term.F("FF", term.Num(7)), term.F("FF", term.Num(12)),
		term.F("GG", term.Num(-1)), term.F("GG", term.Num(50)),
		term.F("HH", term.Num(0)), term.F("HH", term.Num(1))))
	want := "TT(MID(7), FF(12), EXT(-1), GG(50), HH(0), NZ(1))"
	if out.String() != want {
		t.Errorf("out = %s, want %s", out, want)
	}
}

func TestConstraintISAConstant(t *testing.T) {
	// Figure 12's ISA(x, constant).
	e := newEngine(t, "rule r: F(x, y) / ISA(x, constant), ISA(y, constant) --> a / EVALUATE(PLUSOP(x, y), a);", Options{})
	// PLUSOP is an implementor-registered pure ADT function, so
	// EVALUATE can fold it (the extensibility path of Section 4.1).
	e.Cat.ADTs.Register("PLUSOP", 2, true, func(args []value.Value) (value.Value, error) {
		return value.Int(args[0].I + args[1].I), nil
	})
	out, _ := run(t, e, term.F("F", term.Num(2), term.Num(3)))
	if out.String() != "5" {
		t.Errorf("out = %s", out)
	}
	// Non-constant arguments: rule must not fire.
	out2, _ := run(t, e, term.F("F", term.V("q"), term.Num(3)))
	if !strings.HasPrefix(out2.String(), "F(") {
		t.Errorf("out2 = %s", out2)
	}
}

func TestConstraintISAType(t *testing.T) {
	// ISA typed against the schema of the enclosing search: Categories
	// (2.3 in the Figure 3 ordering) is a SetCategory.
	e := newEngine(t, "rule r: MEMBER(c, x) / ISA(x, SetCategory) --> MARKED(c, x);", Options{})
	q := lera.Search(
		[]*term.Term{lera.Rel("APPEARS_IN"), lera.Rel("FILM")},
		lera.Ands(term.F("MEMBER", term.Str("Adventure"), lera.Attr(2, 3))),
		[]*term.Term{lera.Attr(2, 2)},
	)
	out, st := run(t, e, q)
	if st.Applications != 1 {
		t.Fatalf("applications = %d", st.Applications)
	}
	if !term.Contains(out, func(s *term.Term) bool { return s.Functor == "MARKED" }) {
		t.Errorf("out = %s", lera.Format(out))
	}
	// The same rule must NOT fire when the second argument is a set of
	// chars rather than SetCategory.
	q2 := lera.Search(
		[]*term.Term{lera.Rel("APPEARS_IN")},
		lera.Ands(term.F("MEMBER", term.Str("x"), term.Set(term.Str("x")))),
		[]*term.Term{lera.Attr(1, 1)},
	)
	_, st2 := run(t, e, q2)
	if st2.Applications != 0 {
		t.Errorf("rule fired on non-SetCategory argument")
	}
}

func TestSeqVarRule(t *testing.T) {
	// The paper's running example: drop a G(y, TRUE) member whose y is
	// already in the rest of the set. (The paper prints the right-hand
	// side as F(x*); under our splice semantics the set-typed result is
	// written explicitly as F(SET(x*)).)
	e := newEngine(t, "rule ex: F(SET(x*, G(y, f))) / MEMBER(y, x*), f = TRUE --> F(SET(x*));", Options{})
	q := term.F("F", term.Set(term.Num(1), term.Num(2), term.F("G", term.Num(2), term.TrueT())))
	out, _ := run(t, e, q)
	if out.String() != "F(SET(1, 2))" {
		t.Errorf("out = %s", out)
	}
	// y not in x*: no application.
	q2 := term.F("F", term.Set(term.Num(1), term.F("G", term.Num(9), term.TrueT())))
	_, st := run(t, e, q2)
	if st.Applications != 0 {
		t.Error("must not fire when MEMBER(y, x*) fails")
	}
	// f = FALSE: no application.
	q3 := term.F("F", term.Set(term.Num(1), term.F("G", term.Num(1), term.FalseT())))
	_, st3 := run(t, e, q3)
	if st3.Applications != 0 {
		t.Error("must not fire when f != TRUE")
	}
}

func TestBuiltins(t *testing.T) {
	e := newEngine(t, `
rule flat: CAT(LIST(x*), LIST(y*)) --> APPENDL(x*, y*);
rule merge: MRG(f, g) --> ANDMERGE(f, g);
rule su: UU(SET(x*), SET(y*)) --> SET-UNION(x*, y*);
`, Options{})
	out, _ := run(t, e, term.F("CAT", term.List(term.Num(1)), term.List(term.Num(2))))
	if out.String() != "LIST(1, 2)" {
		t.Errorf("APPENDL: %s", out)
	}
	a := lera.Ands(term.F("=", lera.Attr(1, 1), term.Num(1)))
	b := lera.Ands(term.F(">", lera.Attr(1, 2), term.Num(2)))
	out2, _ := run(t, e, term.F("MRG", a, b))
	if len(lera.Conjuncts(out2)) != 2 {
		t.Errorf("ANDMERGE: %s", out2)
	}
	out3, _ := run(t, e, term.F("UU", term.Set(term.Num(1), term.Num(2)), term.Set(term.Num(2), term.Num(3))))
	if out3.String() != "SET(1, 2, 3)" {
		t.Errorf("SET-UNION: %s", out3)
	}
}

func TestMethodVeto(t *testing.T) {
	// EVALUATE on a non-ground expression vetoes the rule.
	e := newEngine(t, "rule r: F(x) --> a / EVALUATE(UNKNOWNFN(x), a);", Options{})
	q := term.F("F", term.Num(1))
	out, st := run(t, e, q)
	if st.Applications != 0 || !term.Equal(out, q) {
		t.Errorf("vetoed rule must not apply: %s", out)
	}
}

func TestMethodErrors(t *testing.T) {
	e := newEngine(t, "rule r: F(x) --> a / NOSUCHMETHOD(x, a);", Options{})
	if _, _, err := e.Run(term.F("F", term.Num(1))); err == nil {
		t.Error("unknown method must error")
	}
	e2 := newEngine(t, "rule r: F(x) --> a / EVALUATE(x);", Options{})
	if _, _, err := e2.Run(term.F("F", term.Num(1))); err == nil {
		t.Error("bad EVALUATE arity must error")
	}
}

func TestUnknownConstraintErrors(t *testing.T) {
	e := newEngine(t, "rule r: F(x) / MYSTERY(x) --> G(x);", Options{})
	if _, _, err := e.Run(term.F("F", term.Num(1))); err == nil {
		t.Error("unknown constraint must error")
	}
}

func TestUnboundRHSVariableErrors(t *testing.T) {
	e := newEngine(t, "rule r: F(x) --> G(x, q9);", Options{})
	if _, _, err := e.Run(term.F("F", term.Num(1))); err == nil {
		t.Error("unbound RHS variable must error")
	}
}

func TestNoChangeApplicationsDoNotLoop(t *testing.T) {
	// G(x) --> G(x) would loop forever if no-change detection failed.
	e := newEngine(t, "rule id: G(x) --> G(x);", Options{})
	out, st := run(t, e, term.F("G", term.Num(1)))
	if st.Applications != 0 {
		t.Errorf("identity rule must not count as application: %d", st.Applications)
	}
	if out.String() != "G(1)" {
		t.Errorf("out = %s", out)
	}
}

func TestMaxChecksGuard(t *testing.T) {
	// A growing rule under an infinite block must hit the guard, not
	// hang: F(x) --> F(S(x)).
	e := newEngine(t, "rule grow: F(x) --> F(S(x));", Options{MaxChecks: 500})
	if _, _, err := e.Run(term.F("F", term.Num(1))); err == nil {
		t.Error("non-terminating rule set must be cut by MaxChecks")
	}
}

func TestBlockBudgetCountsConditionChecks(t *testing.T) {
	// §4.2: each condition check decrements the budget. The LHS F(x)
	// matches both F nodes; with budget 1 only one check happens.
	src := `
rule r: FF(x) / x > 10 --> BIG(x);
block(b, {r}, 1);
seq({b}, 1);
`
	e := newEngine(t, src, Options{})
	q := term.F("TT", term.F("FF", term.Num(1)), term.F("FF", term.Num(20)))
	out, st := run(t, e, q)
	// The first check is FF(1), which fails x>10 and exhausts the
	// budget; FF(20) is never tried.
	if st.ConditionChecks != 1 {
		t.Errorf("condition checks = %d, want 1", st.ConditionChecks)
	}
	if st.Applications != 0 {
		t.Errorf("applications = %d, want 0 (budget spent on failing check)", st.Applications)
	}
	if !st.BudgetExhausted {
		t.Error("budget must be flagged exhausted")
	}
	if out.String() != q.String() {
		t.Errorf("out = %s", out)
	}
	// With budget 2 the second check succeeds.
	src2 := strings.Replace(src, ", 1);", ", 2);", 1)
	e2 := newEngine(t, src2, Options{})
	out2, _ := run(t, e2, q)
	if out2.String() != "TT(FF(1), BIG(20))" {
		t.Errorf("out2 = %s", out2)
	}
}

func TestZeroBudgetBlockIsSkipped(t *testing.T) {
	// §7: "Simple queries ... a 0 limit can then be given to all blocks".
	src := `
rule r: FF(x) --> GG(x);
block(b, {r}, 0);
seq({b}, 1);
`
	e := newEngine(t, src, Options{})
	q := term.F("FF", term.Num(1))
	out, st := run(t, e, q)
	if st.Applications != 0 || !term.Equal(out, q) {
		t.Errorf("zero-budget block must be inert: %s", out)
	}
}

func TestSequenceOrderAndRepeats(t *testing.T) {
	// Two blocks in sequence; the second depends on the first's output;
	// a repeated first block picks up work exposed by the second (§4.2:
	// "the same block may be executed several times").
	src := `
rule a2b: AA(x) --> BB(x);
rule b2c: BB(x) / --> CC(AA(x)) / ;
block(first, {a2b}, inf);
block(second, {b2c}, 1);
seq({first, second, first}, 1);
`
	e := newEngine(t, src, Options{})
	out, _ := run(t, e, term.F("AA", term.Num(1)))
	// first: AA->BB; second: BB->CC(AA(1)); first again: inner AA->BB.
	if out.String() != "CC(BB(1))" {
		t.Errorf("out = %s", out)
	}
}

func TestSeqLimitBoundsRounds(t *testing.T) {
	// A ping-pong pair under seq limit 3 stops after 3 rounds.
	src := `
rule p: PP(x) --> QQ(SS(x));
rule q: QQ(x) --> PP(x);
block(bp, {p}, 1);
block(bq, {q}, 1);
seq({bp, bq}, 3);
`
	e := newEngine(t, src, Options{})
	out, st := run(t, e, term.F("PP", term.Num(0)))
	if st.Rounds != 3 {
		t.Errorf("rounds = %d", st.Rounds)
	}
	if out.String() != "PP(SS(SS(SS(0))))" {
		t.Errorf("out = %s", out)
	}
}

func TestRunBlockDirect(t *testing.T) {
	src := `
rule r: FF(x) --> GG(x);
block(b, {r}, inf);
`
	e := newEngine(t, src, Options{})
	out, st, err := e.RunBlock(term.F("FF", term.Num(1)), "b")
	if err != nil || out.String() != "GG(1)" || st.Applications != 1 {
		t.Errorf("RunBlock: %s %v %v", out, st, err)
	}
	if _, _, err := e.RunBlock(term.Num(1), "nosuch"); err == nil {
		t.Error("unknown block must error")
	}
}

func TestBlockLimitOverride(t *testing.T) {
	src := `
rule r: FF(x) --> GG(x);
block(b, {r}, inf);
seq({b}, 1);
`
	e := newEngine(t, src, Options{
		BlockLimitOverride: func(block string, declared int) int { return 0 },
	})
	out, st := run(t, e, term.F("FF", term.Num(1)))
	if st.Applications != 0 || out.String() != "FF(1)" {
		t.Errorf("override to 0 must disable the block: %s", out)
	}
}

func TestTraceCollection(t *testing.T) {
	src := `
rule r: FF(x) --> GG(x);
block(b, {r}, inf);
seq({b}, 1);
`
	e := newEngine(t, src, Options{CollectTrace: true})
	run(t, e, term.F("HH", term.F("FF", term.Num(1))))
	if len(e.Trace) != 1 {
		t.Fatalf("trace = %v", e.Trace)
	}
	tr := e.Trace[0]
	if tr.Rule != "r" || tr.Block != "b" || tr.Before != "FF(1)" || tr.After != "GG(1)" {
		t.Errorf("trace entry = %+v", tr)
	}
	if len(tr.Site) != 1 || tr.Site[0] != 0 {
		t.Errorf("site = %v", tr.Site)
	}
}

func TestRuleOrderWithinBlock(t *testing.T) {
	// Earlier rules win when several match the same site.
	src := `
rule first: FOO(x) --> ONE(x);
rule second: FOO(x) --> TWO(x);
block(b, {first, second}, inf);
seq({b}, 1);
`
	e := newEngine(t, src, Options{})
	out, _ := run(t, e, term.F("FOO", term.Num(1)))
	if out.String() != "ONE(1)" {
		t.Errorf("out = %s", out)
	}
}

func TestNotMemberAndDistinctConstraints(t *testing.T) {
	// Transitivity with a NOTMEMBER guard terminates by saturation:
	// once EQT(x,z) is present, SET-dedup makes application a no-op.
	src := `
rule trans: ANDS(SET(w*, EQT(x, y), EQT(y, z))) / DISTINCT(x, z), NOTMEMBER(EQT(x, z), w*)
  --> ANDS(SET(w*, EQT(x, y), EQT(y, z), EQT(x, z)));
`
	e := newEngine(t, src, Options{})
	q := term.F("ANDS", term.Set(
		term.F("EQT", term.Str("a"), term.Str("b")),
		term.F("EQT", term.Str("b"), term.Str("c")),
		term.F("EQT", term.Str("c"), term.Str("d")),
	))
	out, _ := run(t, e, q)
	// Transitive closure of a=b=c=d adds a=c, b=d, a=d.
	if n := len(out.Args[0].Args); n != 6 {
		t.Errorf("closure size = %d, want 6: %s", n, out)
	}
}

func TestFreshNames(t *testing.T) {
	e := newEngine(t, "rule r: F(x) --> G(x);", Options{})
	ctx := &Ctx{engine: e}
	a, b := ctx.Fresh("magic"), ctx.Fresh("magic")
	if a == b || !strings.HasPrefix(a, "MAGIC_") {
		t.Errorf("fresh names: %s, %s", a, b)
	}
}

// Context helpers: EnclosingRels and InferAt must respect FIX/LET binders
// crossed on the way to the match site.
func TestCtxEnclosingRelsThroughBinders(t *testing.T) {
	e := newEngine(t, "rule probe: MEMBER(c, x) / ISA(x, SetCategory) --> HIT(c, x);", Options{})
	// The MEMBER conjunct sits inside a fixpoint body whose relation list
	// includes the fix-bound name; typing 2.3 must resolve through the
	// provisional schema (declared columns) and the base FILM schema.
	seed := lera.Search([]*term.Term{lera.Rel("FILM")}, lera.TrueQual(),
		[]*term.Term{lera.Attr(1, 1), lera.Attr(1, 3)})
	rec := lera.Search(
		[]*term.Term{lera.Rel("FX"), lera.Rel("FILM")},
		lera.Ands(
			lera.Cmp("=", lera.Attr(1, 1), lera.Attr(2, 1)),
			term.F("MEMBER", term.Str("Adventure"), lera.Attr(2, 3)),
		),
		[]*term.Term{lera.Attr(1, 1), lera.Attr(1, 2)},
	)
	q := lera.Fix("FX", lera.Union(seed, rec), []string{"N", "Cats"})
	out, st := run(t, e, q)
	if st.Applications != 1 {
		t.Fatalf("applications = %d: %s", st.Applications, lera.Format(out))
	}
	// LET binders work the same way.
	q2 := lera.Let("M", seed,
		lera.Search([]*term.Term{lera.Rel("M"), lera.Rel("FILM")},
			lera.Ands(term.F("MEMBER", term.Str("Western"), lera.Attr(2, 3))),
			[]*term.Term{lera.Attr(1, 1)}))
	_, st2 := run(t, e, q2)
	if st2.Applications != 1 {
		t.Errorf("LET binder: applications = %d", st2.Applications)
	}
}

// A constraint needing a relational context outside any operator fails
// gracefully (rule simply does not apply).
func TestCtxNoEnclosingOperator(t *testing.T) {
	e := newEngine(t, "rule probe: MEMBER(c, x) / ISA(x, SetCategory) --> HIT(c, x);", Options{})
	q := term.F("MEMBER", term.Str("Adventure"), lera.Attr(1, 3))
	_, st := run(t, e, q)
	if st.Applications != 0 {
		t.Error("no enclosing operator: rule must not fire")
	}
}
