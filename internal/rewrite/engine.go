// Package rewrite implements the extensible rewrite engine of Section 4:
// it applies term-rewriting rules to query terms under constraints, runs
// rule methods (external functions), and drives the whole process with the
// block/sequence meta-rules of Section 4.2, where every *condition check*
// — not every successful application — decrements a block's budget.
//
// The engine is generic over the rule vocabulary: constraints, methods and
// right-hand-side builtins are registered in an Externals table, which is
// how the database implementor extends the optimizer without touching the
// engine (the paper's central extensibility claim).
package rewrite

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"

	"lera/internal/catalog"
	"lera/internal/guard"
	"lera/internal/lera"
	"lera/internal/obs"
	"lera/internal/rules"
	"lera/internal/term"
)

// Ctx is the evaluation context handed to constraints, methods and
// builtins: "a rule has a context, which is the query and the database on
// which it is applied" (Section 4.1).
type Ctx struct {
	Cat  *catalog.Catalog
	Root *term.Term // the whole query term being rewritten
	Site term.Path  // path of the subterm being matched
	Bind *term.Bindings
	Rule string // name of the rule being applied, if any

	engine *Engine
}

// Context returns the cancellation context of the current engine run, so
// long-running externals can abort cooperatively (context.Background when
// the run is unguarded).
func (c *Ctx) Context() context.Context {
	if c.engine != nil && c.engine.ctx != nil {
		return c.engine.ctx
	}
	return context.Background()
}

// Fresh returns a fresh relation name with the given prefix, unique within
// the engine's lifetime (used by the Alexander transformation to name
// magic relations).
func (c *Ctx) Fresh(prefix string) string {
	c.engine.fresh++
	return fmt.Sprintf("%s_%d", strings.ToUpper(prefix), c.engine.fresh)
}

// EnvAtSite reconstructs the FIX/LET binder environment in scope at the
// match site, so externals can run schema inference on subterms that
// reference fixpoint-bound relation names.
func (c *Ctx) EnvAtSite() lera.Env {
	env := lera.Env{}
	node := c.Root
	for _, i := range c.Site {
		switch {
		case lera.IsOp(node, lera.OpFix) && i == 1:
			name := strings.ToUpper(node.Args[0].Val.S)
			if s, err := lera.Infer(node, c.Cat, env); err == nil {
				env = cloneEnv(env)
				env[name] = s
			}
		case lera.IsOp(node, lera.OpLet) && i == 2:
			name := strings.ToUpper(node.Args[0].Val.S)
			if s, err := lera.Infer(node.Args[1], c.Cat, env); err == nil {
				env = cloneEnv(env)
				env[name] = s
			}
		}
		if node.Kind != term.Fun || i >= len(node.Args) {
			break
		}
		node = node.Args[i]
	}
	return env
}

// InferAt runs schema inference on a subterm using the binder environment
// at the match site.
func (c *Ctx) InferAt(t *term.Term) (*lera.Schema, error) {
	return lera.Infer(t, c.Cat, c.EnvAtSite())
}

// EnclosingRels returns the schemas of the relation list of the nearest
// relational operator enclosing (or at) the match site, so that
// type-sensitive constraints (ISA, ISOBJECT, REFER) can type ATTR
// references. The environment of FIX/LET binders crossed on the way down
// is respected.
func (c *Ctx) EnclosingRels() ([]*lera.Schema, error) {
	env := lera.Env{}
	node := c.Root
	var best *term.Term
	record := func(n *term.Term) {
		switch {
		case lera.IsOp(n, lera.OpSearch), lera.IsOp(n, lera.OpFilter),
			lera.IsOp(n, lera.OpJoin), lera.IsOp(n, lera.OpNest),
			lera.IsOp(n, lera.OpUnnest):
			best = n
		}
	}
	record(node)
	bestEnv := env
	for _, i := range c.Site {
		switch {
		case lera.IsOp(node, lera.OpFix) && i == 1:
			name := strings.ToUpper(node.Args[0].Val.S)
			if s, err := lera.Infer(node, c.Cat, env); err == nil {
				env = cloneEnv(env)
				env[name] = s
			}
		case lera.IsOp(node, lera.OpLet) && i == 2:
			name := strings.ToUpper(node.Args[0].Val.S)
			if s, err := lera.Infer(node.Args[1], c.Cat, env); err == nil {
				env = cloneEnv(env)
				env[name] = s
			}
		}
		if node.Kind != term.Fun || i >= len(node.Args) {
			break
		}
		node = node.Args[i]
		if n := node; n.Kind == term.Fun {
			if lera.IsOp(n, lera.OpSearch) || lera.IsOp(n, lera.OpFilter) ||
				lera.IsOp(n, lera.OpJoin) || lera.IsOp(n, lera.OpNest) ||
				lera.IsOp(n, lera.OpUnnest) {
				best = n
				bestEnv = env
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("rewrite: no enclosing relational operator at %v", c.Site)
	}
	var relTerms []*term.Term
	switch best.Functor {
	case lera.OpSearch:
		relTerms = best.Args[0].Args
	case lera.OpJoin:
		relTerms = []*term.Term{best.Args[0], best.Args[1]}
	default: // FILTER, NEST, UNNEST
		relTerms = []*term.Term{best.Args[0]}
	}
	out := make([]*lera.Schema, len(relTerms))
	for i, r := range relTerms {
		s, err := lera.Infer(r, c.Cat, bestEnv)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

func cloneEnv(e lera.Env) lera.Env {
	ne := lera.Env{}
	for k, v := range e {
		ne[k] = v
	}
	return ne
}

// ConstraintFn evaluates a rule constraint; args are instantiated under
// the current bindings (sequence variables arrive as LIST terms).
type ConstraintFn func(ctx *Ctx, args []*term.Term) (bool, error)

// MethodFn runs a rule method. Args are instantiated except for output
// variables, which arrive as unbound Vars the method binds through
// ctx.Bind. Returning ok=false vetoes the rule application (the method
// judged the transformation inapplicable); err reports a hard failure.
type MethodFn func(ctx *Ctx, args []*term.Term) (ok bool, err error)

// BuiltinFn evaluates a right-hand-side optimizer function (APPENDL,
// ANDMERGE, SET-UNION, ...); args are fully instantiated.
type BuiltinFn func(ctx *Ctx, args []*term.Term) (*term.Term, error)

// Externals is the registry of constraint, method and builtin functions —
// the "minimal set of basic functions ... built-in to increase the power
// of the language" (Section 4.1) plus implementor extensions.
type Externals struct {
	constraints map[string]ConstraintFn
	methods     map[string]MethodFn
	builtins    map[string]BuiltinFn
}

// NewExternals returns a registry pre-populated with the generic built-ins
// (ISA, EVALUATE, NOTMEMBER, comparison folding).
func NewExternals() *Externals {
	e := &Externals{
		constraints: map[string]ConstraintFn{},
		methods:     map[string]MethodFn{},
		builtins:    map[string]BuiltinFn{},
	}
	registerGenericExternals(e)
	return e
}

// RegisterConstraint installs a constraint function.
func (e *Externals) RegisterConstraint(name string, fn ConstraintFn) {
	e.constraints[strings.ToUpper(name)] = fn
}

// RegisterMethod installs a method.
func (e *Externals) RegisterMethod(name string, fn MethodFn) {
	e.methods[strings.ToUpper(name)] = fn
}

// RegisterBuiltin installs a right-hand-side builtin.
func (e *Externals) RegisterBuiltin(name string, fn BuiltinFn) {
	e.builtins[strings.ToUpper(name)] = fn
}

// HasConstraint, HasMethod and HasBuiltin report registration — used by
// rule-base lint checks to catch typos in rule text.
func (e *Externals) HasConstraint(name string) bool {
	_, ok := e.constraints[strings.ToUpper(name)]
	return ok
}

// HasMethod reports whether a method is registered.
func (e *Externals) HasMethod(name string) bool {
	_, ok := e.methods[strings.ToUpper(name)]
	return ok
}

// HasBuiltin reports whether a right-hand-side builtin is registered.
func (e *Externals) HasBuiltin(name string) bool {
	_, ok := e.builtins[strings.ToUpper(name)]
	return ok
}

// TraceEntry records one rule application for EXPLAIN output.
type TraceEntry struct {
	Block  string
	Rule   string
	Site   term.Path
	Before string
	After  string
}

// Stats aggregates engine work, the measurable currency of the paper's
// §4.2/§7 budget discussion.
type Stats struct {
	ConditionChecks int // LHS matches on which constraints were evaluated
	// MatchAttempts counts invocations of the backtracking matcher — one
	// per (rule, candidate site) pair tried. Unlike ConditionChecks (the
	// §4.2 budget currency, which by construction is identical between the
	// indexed and the full-scan engine), this is the work counter the rule
	// index actually shrinks: sites whose head functor or arity cannot
	// match a rule's LHS are never attempted.
	MatchAttempts   int
	Applications    int // successful rewrites
	Rounds          int // sequence iterations executed
	BudgetExhausted bool
	// StepsLimit echoes the MaxSteps cap the run was budgeted with
	// (0 = unlimited), so consumers can report Applications against it
	// without holding the Options that produced the run.
	StepsLimit int

	// Degraded records graceful degradation: the rewrite failed, panicked
	// or exhausted a guard budget, and the session fell back to the best
	// safe plan (see internal/guard and docs/GUARDRAILS.md). The stats
	// above are then partial — the work done before the failure.
	Degraded          bool
	DegradationReason string
	// DegradationCode is the stable protocol code of the failure that
	// caused the degradation (guard.CodeOf of the rewrite error): the
	// same vocabulary servers, shells and harnesses print, so a
	// "STEP_BUDGET" in a leraserver response and in an edsql notice name
	// the same event. Empty when not degraded.
	DegradationCode string

	// CacheHit marks a plan served by the session plan cache: the engine
	// never ran, so the work counters above are genuinely zero (the
	// point of the cache). See internal/plancache and docs/PLANCACHE.md.
	CacheHit bool
}

// Options configure a run.
type Options struct {
	// MaxChecks caps total condition checks across all blocks, guarding
	// against non-terminating rule sets with infinite block limits
	// (termination is undecidable, §4.2). 0 means the default.
	MaxChecks int
	// CollectTrace records a TraceEntry per application.
	CollectTrace bool
	// BlockLimitOverride, if non-nil, replaces every block's limit —
	// the §7 dynamic-limit hook.
	BlockLimitOverride func(block string, declared int) int
	// Limits is the guard budget enforced during the run: MaxSteps caps
	// successful applications across all blocks, MaxTermSize caps the
	// query term's node count. (The wall-clock deadline arrives through
	// the RunCtx context instead.)
	Limits guard.Limits
	// FullScan disables the rule/site index and walks the whole term once
	// per rule per iteration, as the engine did before indexing. The two
	// paths produce identical rewrites and identical ConditionChecks (the
	// differential regression test pins this); FullScan only exists as
	// that test's oracle and as an escape hatch.
	FullScan bool
	// Injector, when non-nil, is hit (by uppercase external name) before
	// every constraint, method and builtin invocation, so armed faults
	// fire deterministically inside live rewrites — the shared chaos/test
	// path (see guard/faultinject.go for the determinism contract).
	// Injected panics and errors surface as typed ExternalErrors exactly
	// like faults in real implementor code.
	Injector *guard.Injector
}

// DefaultMaxChecks bounds runaway rule systems.
const DefaultMaxChecks = 1_000_000

// Engine applies a rule set to query terms.
type Engine struct {
	RS    *rules.RuleSet
	Ext   *Externals
	Cat   *catalog.Catalog
	Opts  Options
	Trace []TraceEntry
	fresh int

	ctx      context.Context // cancellation context of the current run
	rec      *obs.Recorder   // trace recorder carried by the run context (nil = off)
	lastGood *term.Term      // term after the last committed application

	// Hot-path state (docs/PERF.md): the per-rule LHS head filters, the
	// per-pass site index and a scratch binding set reused across match
	// attempts. All rebuilt or reset in place, so a steady-state pass
	// allocates almost nothing per visited site.
	filters map[string]lhsFilter
	ix      siteIndex
	scratch *term.Bindings
}

// New creates an engine.
func New(rs *rules.RuleSet, ext *Externals, cat *catalog.Catalog, opts Options) *Engine {
	if opts.MaxChecks <= 0 {
		opts.MaxChecks = DefaultMaxChecks
	}
	return &Engine{RS: rs, Ext: ext, Cat: cat, Opts: opts}
}

// Run rewrites q under the rule set's sequence meta-rule with no
// cancellation (see RunCtx).
func (e *Engine) Run(q *term.Term) (*term.Term, *Stats, error) {
	return e.RunCtx(context.Background(), q)
}

// LastGood returns the query term as of the last committed rule
// application of the most recent run — the best safe plan to fall back to
// when the run failed partway (nil before any run).
func (e *Engine) LastGood() *term.Term { return e.lastGood }

// RunCtx rewrites q under the rule set's sequence meta-rule. If no
// sequence is declared, all blocks run once in declaration order; if no
// blocks are declared, all rules form one implicit saturating block.
// Cancellation is checked on every condition check; the Options.Limits
// budget is enforced on every application.
func (e *Engine) RunCtx(ctx context.Context, q *term.Term) (*term.Term, *Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.ctx = ctx
	e.rec = obs.FromContext(ctx)
	e.lastGood = q
	st := &Stats{StepsLimit: e.Opts.Limits.MaxSteps}
	seq := e.RS.Sequence
	if seq == nil {
		blocks := e.RS.BlockOrder
		if len(blocks) == 0 {
			all := &rules.Block{Name: "(all)", Rules: e.RS.RuleOrder, Limit: rules.Infinite}
			return e.runWithSeq(q, []*rules.Block{all}, 1, st)
		}
		bs := make([]*rules.Block, len(blocks))
		for i, n := range blocks {
			bs[i] = e.RS.Blocks[n]
		}
		return e.runWithSeq(q, bs, 1, st)
	}
	bs := make([]*rules.Block, len(seq.Blocks))
	for i, n := range seq.Blocks {
		bs[i] = e.RS.Blocks[n]
	}
	limit := seq.Limit
	if limit == rules.Infinite {
		limit = math.MaxInt32
	}
	return e.runWithSeq(q, bs, limit, st)
}

// RunBlock applies a single named block to q (used by tests and the §7
// per-phase experiments).
func (e *Engine) RunBlock(q *term.Term, blockName string) (*term.Term, *Stats, error) {
	return e.RunBlockCtx(context.Background(), q, blockName)
}

// RunBlockCtx is RunBlock under a cancellation context.
func (e *Engine) RunBlockCtx(ctx context.Context, q *term.Term, blockName string) (*term.Term, *Stats, error) {
	b, ok := e.RS.Blocks[blockName]
	if !ok {
		return nil, nil, fmt.Errorf("rewrite: unknown block %q", blockName)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	e.ctx = ctx
	e.rec = obs.FromContext(ctx)
	e.lastGood = q
	st := &Stats{StepsLimit: e.Opts.Limits.MaxSteps}
	out, err := e.runBlock(q, b, st)
	return out, st, err
}

func (e *Engine) runWithSeq(q *term.Term, blocks []*rules.Block, rounds int, st *Stats) (*term.Term, *Stats, error) {
	for r := 0; r < rounds; r++ {
		st.Rounds++
		var roundSpan *obs.Span
		if e.rec != nil {
			roundSpan = e.rec.Begin("rewrite.round", obs.Int("round", st.Rounds))
		}
		before := q
		for _, b := range blocks {
			var err error
			q, err = e.runBlock(q, b, st)
			if err != nil {
				e.rec.End(roundSpan)
				return nil, st, err
			}
		}
		e.rec.End(roundSpan)
		if term.Equal(before, q) {
			break // fixpoint of the whole sequence
		}
	}
	return q, st, nil
}

func (e *Engine) runBlock(q *term.Term, b *rules.Block, st *Stats) (*term.Term, error) {
	budget := b.Limit
	if e.Opts.BlockLimitOverride != nil {
		budget = e.Opts.BlockLimitOverride(b.Name, budget)
	}
	if budget == rules.Infinite {
		budget = math.MaxInt
	}
	var blockSpan *obs.Span
	if e.rec != nil {
		blockSpan = e.rec.Begin("rewrite.block", obs.Str("block", b.Name))
		checks0, apps0 := st.ConditionChecks, st.Applications
		defer func() {
			blockSpan.SetAttrs(
				obs.Int("checks", st.ConditionChecks-checks0),
				obs.Int("applications", st.Applications-apps0))
			e.rec.End(blockSpan)
		}()
	}
	indexed := !e.Opts.FullScan
	if indexed && budget > 0 {
		// One walk per pass: the site index stays valid for every rule of
		// the pass, since the term only changes on a committed application.
		e.ix.rebuild(q)
	}
	for budget > 0 {
		applied := false
		for _, rn := range b.Rules {
			rule := e.RS.Rules[rn]
			var nq *term.Term
			var ok bool
			var err error
			if indexed {
				nq, ok, err = e.applyOnceIndexed(q, rule, b.Name, &budget, st)
			} else {
				nq, ok, err = e.applyOnce(q, rule, b.Name, &budget, st)
			}
			if err != nil {
				return nil, err
			}
			if ok {
				q = nq
				e.lastGood = q
				applied = true
				if indexed {
					e.ix.rebuild(q)
				}
				break // restart from the first rule of the block
			}
			if budget <= 0 {
				break
			}
		}
		if !applied {
			break
		}
	}
	if budget <= 0 {
		st.BudgetExhausted = true
		if e.rec != nil {
			// §4.2 budget consumption: the block spent its whole
			// condition-check allowance.
			e.rec.Event("budget.exhausted", obs.Str("block", b.Name))
		}
	}
	return q, nil
}

// siteOutcome reports what trying one rule at one site produced.
type siteOutcome int

const (
	// siteSkip: the site failed the LHS head pre-filter; no match was
	// attempted.
	siteSkip siteOutcome = iota
	// siteNoMatch: the LHS did not match (or every binding was rejected by
	// constraints, or the methods vetoed); keep trying later sites.
	siteNoMatch
	// siteApplied: the rule was applied; the returned term is the rewritten
	// query.
	siteApplied
	// siteStop: stop trying sites for this rule — the budget ran out mid-
	// search or an error was raised (returned alongside).
	siteStop
)

// applyOnce tries to apply rule at the topmost-leftmost applicable site by
// walking the whole term — the pre-index control strategy, kept behind
// Options.FullScan as the differential-testing oracle.
func (e *Engine) applyOnce(q *term.Term, rule *rules.Rule, blockName string, budget *int, st *Stats) (*term.Term, bool, error) {
	var result *term.Term
	var applyErr error
	found := false
	term.Walk(q, func(sub *term.Term, path term.Path) bool {
		if sub.Kind != term.Fun || *budget <= 0 {
			return *budget > 0
		}
		res, outcome, err := e.tryRuleAtSite(q, rule, blockName, sub, path.Clone, budget, st)
		if err != nil {
			applyErr = err
			return false
		}
		switch outcome {
		case siteApplied:
			result = res
			found = true
			return false
		case siteStop:
			return false
		}
		return *budget > 0
	})
	if applyErr != nil {
		return nil, false, applyErr
	}
	return result, found, nil
}

// tryRuleAtSite attempts one rule at one Fun site. It is the single match
// loop shared by the indexed and the full-scan paths, so the two cannot
// drift apart semantically. lazyPath materializes the site's root path and
// is only invoked once a complete LHS match needs it (for constraints,
// methods, replacement and traces) — sites that never match never pay for
// a path allocation, and no Bindings or Ctx is allocated before the head
// has already passed the caller's pre-filter.
func (e *Engine) tryRuleAtSite(q *term.Term, rule *rules.Rule, blockName string, sub *term.Term, lazyPath func() term.Path, budget *int, st *Stats) (*term.Term, siteOutcome, error) {
	st.MatchAttempts++
	if e.scratch == nil {
		e.scratch = term.NewBindings()
	}
	b := e.scratch
	b.Reset()
	ctx := &Ctx{Cat: e.Cat, Root: q, Bind: b, Rule: rule.Name, engine: e}
	haveSite := false
	var applyErr error
	matched := term.Match(rule.LHS, sub, b, func() bool {
		// One condition check: the LHS matched and the constraints
		// are evaluated (§4.2 budget semantics).
		*budget--
		st.ConditionChecks++
		if err := guard.CheckCtx(e.ctx); err != nil {
			applyErr = err
			return true // stop the search; error reported below
		}
		if st.ConditionChecks > e.Opts.MaxChecks {
			applyErr = fmt.Errorf("rewrite: rule system exceeded %d condition checks (non-terminating rule set?)", e.Opts.MaxChecks)
			return true
		}
		if !haveSite {
			ctx.Site = lazyPath()
			haveSite = true
		}
		ok, err := e.checkConstraints(ctx, rule)
		if err != nil {
			applyErr = fmt.Errorf("rewrite: rule %s: %w", rule.Name, err)
			return true
		}
		if !ok {
			return false
		}
		if *budget < 0 {
			return false
		}
		return true
	})
	if applyErr != nil {
		return nil, siteStop, applyErr
	}
	if !matched {
		return nil, siteNoMatch, nil
	}
	// Run methods; a method may veto.
	for _, m := range rule.Methods {
		ok, err := e.runMethod(ctx, m)
		if err != nil {
			return nil, siteStop, fmt.Errorf("rewrite: rule %s, method %s: %w", rule.Name, m.Functor, err)
		}
		if !ok {
			return nil, siteNoMatch, nil // veto: keep trying other sites
		}
	}
	rhs, err := e.instantiate(ctx, rule.RHS)
	if err != nil {
		return nil, siteStop, fmt.Errorf("rewrite: rule %s: %w", rule.Name, err)
	}
	if term.Equal(rhs, sub) {
		// No-change application: treat as inapplicable here (keeps
		// idempotent semantic rules from looping).
		return nil, siteNoMatch, nil
	}
	if max := e.Opts.Limits.MaxSteps; max > 0 && st.Applications >= max {
		return nil, siteStop, fmt.Errorf("rewrite: %w: %d rule applications reached (cap %d)",
			guard.ErrStepBudget, st.Applications, max)
	}
	result := term.ReplaceAt(q, ctx.Site, rhs)
	if max := e.Opts.Limits.MaxTermSize; max > 0 {
		if sz := result.Size(); sz > max {
			return nil, siteStop, fmt.Errorf("rewrite: rule %s: %w: term grew to %d nodes (cap %d)",
				rule.Name, guard.ErrTermSize, sz, max)
		}
	}
	st.Applications++
	if e.rec != nil {
		// The per-rule provenance record: which rule fired, where, and
		// what it cost (cumulative §4.2 checks at commit time; term size
		// reads are O(1) via the memoized size).
		e.rec.Event("rule.apply",
			obs.Str("rule", rule.Name), obs.Str("block", blockName),
			obs.Str("site", sitePath(ctx.Site)),
			obs.Int("checks", st.ConditionChecks), obs.Int("size", result.Size()))
	}
	if e.Opts.CollectTrace {
		// All trace-only work — the path clone and the Before/After
		// renderings — happens only when a trace is actually collected.
		e.Trace = append(e.Trace, TraceEntry{
			Block: blockName, Rule: rule.Name, Site: ctx.Site.Clone(),
			Before: sub.String(), After: rhs.String(),
		})
	}
	return result, siteApplied, nil
}

func (e *Engine) checkConstraints(ctx *Ctx, rule *rules.Rule) (bool, error) {
	for _, c := range rule.Constraints {
		ok, err := e.evalConstraintSafe(ctx, c)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// evalConstraintSafe isolates a panicking constraint (or any external it
// reaches, e.g. an ADT function folded by EvalGround) as a typed
// ExternalError carrying the rule, external name and match site. The
// fault injector, when armed, is hit first under the same isolation: an
// injected panic or error is indistinguishable in shape from a real
// implementor fault.
func (e *Engine) evalConstraintSafe(ctx *Ctx, c *term.Term) (ok bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			ok = false
			err = guard.NewExternalPanic(guard.ExtConstraint, ctx.Rule, externalName(c), sitePath(ctx.Site), p)
		}
	}()
	if err := e.injectorHit(ctx, externalName(c)); err != nil {
		return false, &guard.ExternalError{Kind: guard.ExtConstraint, Rule: ctx.Rule, External: externalName(c), Site: sitePath(ctx.Site), Err: err}
	}
	return e.evalConstraint(ctx, c)
}

// injectorHit reports one external invocation to the armed fault
// injector, if any. A FaultStall consults the run's cancellation context;
// a FaultPanic unwinds into the caller's panic isolation.
func (e *Engine) injectorHit(ctx *Ctx, name string) error {
	if e.Opts.Injector == nil {
		return nil
	}
	return e.Opts.Injector.Hit(ctx.Context(), strings.ToUpper(name))
}

func (e *Engine) runMethod(ctx *Ctx, call *term.Term) (ok bool, err error) {
	if call.Kind != term.Fun {
		return false, fmt.Errorf("method %s is not a call", call)
	}
	fn, found := e.Ext.methods[strings.ToUpper(call.Functor)]
	if !found {
		return false, fmt.Errorf("unknown method %q", call.Functor)
	}
	args := make([]*term.Term, len(call.Args))
	for i, a := range call.Args {
		args[i] = e.instArg(ctx, a)
	}
	defer func() {
		if p := recover(); p != nil {
			ok = false
			err = guard.NewExternalPanic(guard.ExtMethod, ctx.Rule, call.Functor, sitePath(ctx.Site), p)
		}
	}()
	if err := e.injectorHit(ctx, call.Functor); err != nil {
		return false, &guard.ExternalError{Kind: guard.ExtMethod, Rule: ctx.Rule, External: call.Functor, Site: sitePath(ctx.Site), Err: err}
	}
	return fn(ctx, args)
}

// externalName labels a constraint term for error reporting.
func externalName(c *term.Term) string {
	if c.Kind == term.Fun {
		return c.Functor
	}
	return c.String()
}

// sitePath renders a match-site path for error reporting, in the same
// "[1 0 2]" form fmt.Sprint gave, without reflection.
func sitePath(p term.Path) string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, x := range p {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(strconv.Itoa(x))
	}
	sb.WriteByte(']')
	return sb.String()
}

// instArg instantiates a constraint/method argument: bound variables are
// replaced, bound sequence variables become LIST terms, unbound variables
// are passed through (method outputs), and compound terms are instantiated
// recursively.
func (e *Engine) instArg(ctx *Ctx, a *term.Term) *term.Term {
	switch a.Kind {
	case term.Const:
		return a
	case term.Var:
		if t, ok := ctx.Bind.Var(a.Name); ok {
			return t
		}
		return a
	case term.SeqVar:
		if seq, ok := ctx.Bind.Seq(a.Name); ok {
			return term.List(seq...)
		}
		return a
	case term.Fun:
		args := make([]*term.Term, 0, len(a.Args))
		for _, sub := range a.Args {
			if sub.Kind == term.SeqVar {
				if seq, ok := ctx.Bind.Seq(sub.Name); ok {
					// Splice into constructors (SET(x*, ...) keeps
					// constructor semantics); elsewhere a collection
					// variable denotes the collection itself, so wrap
					// it (MEMBER(y, x*) sees one LIST argument).
					if term.IsConstructor(a.Functor) {
						args = append(args, seq...)
					} else {
						args = append(args, term.List(seq...))
					}
					continue
				}
			}
			args = append(args, e.instArg(ctx, sub))
		}
		functor := a.Functor
		if a.VarHead {
			if f, ok := ctx.Bind.Fun(a.Functor); ok {
				return term.F(f, args...)
			}
			return term.FV(a.Functor, args...)
		}
		return term.F(functor, args...)
	}
	return a
}

// instantiate builds the rule's right-hand side: apply bindings, then
// evaluate registered builtins bottom-up.
func (e *Engine) instantiate(ctx *Ctx, rhs *term.Term) (*term.Term, error) {
	applied, err := ctx.Bind.Apply(rhs)
	if err != nil {
		return nil, err
	}
	var evalErr error
	out := term.Rewrite(applied, func(s *term.Term) *term.Term {
		if evalErr != nil || s.Kind != term.Fun {
			return s
		}
		if fn, ok := e.Ext.builtins[strings.ToUpper(s.Functor)]; ok {
			r, err := e.callBuiltin(ctx, s, fn)
			if err != nil {
				evalErr = err
				return s
			}
			return r
		}
		return s
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

// callBuiltin isolates a panicking right-hand-side builtin as a typed
// ExternalError.
func (e *Engine) callBuiltin(ctx *Ctx, s *term.Term, fn BuiltinFn) (t *term.Term, err error) {
	defer func() {
		if p := recover(); p != nil {
			t = nil
			err = guard.NewExternalPanic(guard.ExtBuiltin, ctx.Rule, s.Functor, sitePath(ctx.Site), p)
		}
	}()
	if err := e.injectorHit(ctx, s.Functor); err != nil {
		return nil, &guard.ExternalError{Kind: guard.ExtBuiltin, Rule: ctx.Rule, External: s.Functor, Site: sitePath(ctx.Site), Err: err}
	}
	return fn(ctx, s.Args)
}
