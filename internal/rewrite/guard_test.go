package rewrite

// Guardrail tests for the rewrite engine: panic isolation around every
// external invocation, cancellation/deadline checks inside the condition
// loop, and the step/term-size budgets. Faults are injected
// deterministically through guard.Injector.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"lera/internal/guard"
	"lera/internal/term"
)

func TestConstraintPanicIsolated(t *testing.T) {
	e := newEngine(t, "rule rc: FF(x) / BOOMC(x) --> GG(x);", Options{})
	inj := guard.NewInjector()
	inj.Set("BOOMC", guard.Fault{OnCall: 1, Mode: guard.FaultPanic, PanicValue: "constraint kaboom"})
	e.Ext.RegisterConstraint("BOOMC", func(ctx *Ctx, args []*term.Term) (bool, error) {
		if err := inj.Hit(ctx.Context(), "BOOMC"); err != nil {
			return false, err
		}
		return true, nil
	})
	_, _, err := e.Run(term.F("FF", term.Num(1)))
	var ee *guard.ExternalError
	if !errors.As(err, &ee) {
		t.Fatalf("want ExternalError, got %v", err)
	}
	if ee.Kind != guard.ExtConstraint {
		t.Errorf("kind = %q", ee.Kind)
	}
	if ee.Rule != "rc" {
		t.Errorf("rule = %q, want rc", ee.Rule)
	}
	if ee.External != "BOOMC" {
		t.Errorf("external = %q", ee.External)
	}
	if ee.Site == "" {
		t.Errorf("site must name the match path")
	}
	if ee.Panic != "constraint kaboom" {
		t.Errorf("panic = %v", ee.Panic)
	}
}

func TestMethodPanicIsolated(t *testing.T) {
	e := newEngine(t, "rule rm: FF(x) --> a / BOOMM(x, a);", Options{})
	e.Ext.RegisterMethod("BOOMM", func(ctx *Ctx, args []*term.Term) (bool, error) {
		panic("method kaboom")
	})
	_, _, err := e.Run(term.F("FF", term.Num(1)))
	var ee *guard.ExternalError
	if !errors.As(err, &ee) {
		t.Fatalf("want ExternalError, got %v", err)
	}
	if ee.Kind != guard.ExtMethod || ee.Rule != "rm" || ee.External != "BOOMM" {
		t.Errorf("fields = %+v", ee)
	}
}

func TestBuiltinPanicIsolated(t *testing.T) {
	e := newEngine(t, "rule rb: FF(x) --> BOOMB(x);", Options{})
	e.Ext.RegisterBuiltin("BOOMB", func(ctx *Ctx, args []*term.Term) (*term.Term, error) {
		panic("builtin kaboom")
	})
	_, _, err := e.Run(term.F("FF", term.Num(1)))
	var ee *guard.ExternalError
	if !errors.As(err, &ee) {
		t.Fatalf("want ExternalError, got %v", err)
	}
	if ee.Kind != guard.ExtBuiltin || ee.Rule != "rb" || ee.External != "BOOMB" {
		t.Errorf("fields = %+v", ee)
	}
}

func TestRewriteDeadline(t *testing.T) {
	// The grow rule never terminates; without MaxChecks only the context
	// deadline can cut it.
	e := newEngine(t, "rule grow: FF(x) --> FF(SS(x));", Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := e.RunCtx(ctx, term.F("FF", term.Num(1)))
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline did not interrupt the rewrite (took %v)", elapsed)
	}
	if !errors.Is(err, guard.ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
}

func TestRewriteCancel(t *testing.T) {
	e := newEngine(t, "rule grow: FF(x) --> FF(SS(x));", Options{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, _, err := e.RunCtx(ctx, term.F("FF", term.Num(1)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestStepBudget(t *testing.T) {
	e := newEngine(t, "rule grow: FF(x) --> FF(SS(x));",
		Options{Limits: guard.Limits{MaxSteps: 5}})
	_, st, err := e.Run(term.F("FF", term.Num(1)))
	if !errors.Is(err, guard.ErrStepBudget) {
		t.Fatalf("got %v, want ErrStepBudget", err)
	}
	if st == nil || st.Applications != 5 {
		t.Fatalf("stats = %+v, want 5 applications", st)
	}
	if !strings.Contains(err.Error(), "5") {
		t.Errorf("error must carry the application count: %v", err)
	}
}

func TestTermSizeBudget(t *testing.T) {
	e := newEngine(t, "rule grow: FF(x) --> FF(SS(x));",
		Options{Limits: guard.Limits{MaxTermSize: 10}})
	_, _, err := e.Run(term.F("FF", term.Num(1)))
	if !errors.Is(err, guard.ErrTermSize) {
		t.Fatalf("got %v, want ErrTermSize", err)
	}
	if !strings.Contains(err.Error(), "grow") {
		t.Errorf("error must name the offending rule: %v", err)
	}
}

func TestLastGoodAfterPanic(t *testing.T) {
	// The safe rule commits once before the panicking rule fires; LastGood
	// must hold the committed intermediate, not the original query.
	e := newEngine(t, `
rule ok: AA(x) --> BB(x);
rule boom: BB(x) / BOOMC(x) --> CC(x);
`, Options{})
	e.Ext.RegisterConstraint("BOOMC", func(ctx *Ctx, args []*term.Term) (bool, error) {
		panic("late kaboom")
	})
	_, _, err := e.Run(term.F("AA", term.Num(1)))
	if err == nil {
		t.Fatal("want error from panicking constraint")
	}
	lg := e.LastGood()
	if lg == nil || lg.String() != "BB(1)" {
		t.Fatalf("LastGood = %v, want BB(1)", lg)
	}
}

func TestLastGoodAfterStepBudget(t *testing.T) {
	e := newEngine(t, "rule grow: FF(x) --> FF(SS(x));",
		Options{Limits: guard.Limits{MaxSteps: 2}})
	_, _, err := e.Run(term.F("FF", term.Num(1)))
	if !errors.Is(err, guard.ErrStepBudget) {
		t.Fatalf("got %v", err)
	}
	if lg := e.LastGood(); lg == nil || lg.String() != "FF(SS(SS(1)))" {
		t.Fatalf("LastGood = %v, want FF(SS(SS(1)))", lg)
	}
}
