package rewrite

import (
	"fmt"
	"strings"
	"testing"

	"lera/internal/rules"
	"lera/internal/term"
)

func TestFilterForClassification(t *testing.T) {
	cases := []struct {
		lhs  *term.Term
		want lhsFilter
	}{
		{term.F("SEARCH", term.V("r"), term.V("q"), term.V("p")),
			lhsFilter{kind: headExact, functor: "SEARCH", minArity: 3, exact: true}},
		{term.F("ANDS", term.Set(term.SV("w"), term.V("f"))),
			lhsFilter{kind: headExact, functor: "ANDS", minArity: 1, exact: true}},
		{term.Set(term.SV("w"), term.V("f")),
			lhsFilter{kind: headExact, functor: term.FSet, minArity: 1, exact: false}},
		{term.F(term.FCollection, term.SV("x")),
			lhsFilter{kind: headCollection, minArity: 0, exact: false}},
		{term.FV("F", term.V("x"), term.SV("y")),
			lhsFilter{kind: headAny, minArity: 1, exact: false}},
		{term.V("x"), lhsFilter{kind: headAny}},
		{term.Num(1), lhsFilter{kind: headNone}},
		{term.SV("x"), lhsFilter{kind: headNone}},
	}
	for i, c := range cases {
		if got := filterFor(c.lhs); got != c.want {
			t.Errorf("case %d (%s): filterFor = %+v, want %+v", i, c.lhs, got, c.want)
		}
	}
}

func TestFilterAdmitsArity(t *testing.T) {
	exact2 := filterFor(term.F("EQ", term.V("a"), term.V("b")))
	if exact2.admits(term.F("EQ", term.Num(1))) || !exact2.admits(term.F("EQ", term.Num(1), term.Num(2))) ||
		exact2.admits(term.F("EQ", term.Num(1), term.Num(2), term.Num(3))) {
		t.Errorf("exact-arity filter admits the wrong arities")
	}
	atLeast1 := filterFor(term.List(term.V("a"), term.SV("rest")))
	if atLeast1.admits(term.F("LIST")) || !atLeast1.admits(term.List(term.Num(1))) ||
		!atLeast1.admits(term.List(term.Num(1), term.Num(2))) {
		t.Errorf("min-arity filter admits the wrong arities")
	}
}

func TestSiteIndexPreorderAndPaths(t *testing.T) {
	q := term.F("A", term.F("B", term.Num(1), term.F("C")), term.F("B"))
	var ix siteIndex
	ix.rebuild(q)
	// Fun nodes in preorder: A, B(1,C), C, B().
	var got []string
	for id := range ix.sites {
		got = append(got, ix.sites[id].node.Functor+fmt.Sprint([]int(ix.path(int32(id)))))
	}
	want := []string{"A[]", "B[0]", "C[0 1]", "B[1]"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("site index = %v, want %v", got, want)
	}
	if len(ix.byHead["B"]) != 2 || ix.byHead["B"][0] != 1 || ix.byHead["B"][1] != 3 {
		t.Errorf("byHead[B] = %v", ix.byHead["B"])
	}
	// Rebuild on a different term must fully supersede the old contents.
	ix.rebuild(term.Set(term.F("D")))
	if len(ix.sites) != 2 || len(ix.byHead["B"]) != 0 || len(ix.coll) != 1 {
		t.Errorf("rebuild left stale state: sites=%d byHead[B]=%v coll=%v",
			len(ix.sites), ix.byHead["B"], ix.coll)
	}
}

// differentialRules exercises every head class: concrete heads, a
// COLLECTION head, a function-variable head, sequence variables in ordered
// and multiset contexts, constraints and a veto method.
const differentialRules = `
rule conc: FOO(x) / x > 1 --> BAR(x);
rule coll: COLLECTION(PICKME(x), r*) --> COLLECTION(x, r*);
rule fv: F(GUARDED(x)) --> F(x);
rule seqm: ANDS(SET(w*, DUP(y), DUP(y))) --> ANDS(SET(w*, DUP(y)));
block(all, {conc, coll, fv, seqm}, inf);
seq({all}, 2);
`

func differentialQueries() []*term.Term {
	return []*term.Term{
		term.F("TOP", term.F("FOO", term.Num(0)), term.F("FOO", term.Num(7))),
		term.List(term.F("PICKME", term.Num(1)), term.Num(2), term.Num(3)),
		term.F("WRAP", term.F("NEST", term.F("GUARDED", term.Num(4)))),
		term.F("ANDS", term.Set(term.F("DUP", term.Num(2)), term.F("DUP", term.Num(2)), term.F("OTHER"))),
		term.F("DEEP", term.F("DEEP", term.F("DEEP", term.F("FOO", term.Num(9))))),
		term.Num(5), // non-Fun root: nothing to do
	}
}

// TestIndexedMatchesFullScan pins the tentpole invariant: the indexed
// engine and the full-scan engine produce byte-identical terms, identical
// ConditionChecks (the §4.2 budget currency) and identical application
// counts, while the index performs strictly fewer match attempts.
func TestIndexedMatchesFullScan(t *testing.T) {
	for i, q := range differentialQueries() {
		idx := newEngine(t, differentialRules, Options{})
		full := newEngine(t, differentialRules, Options{FullScan: true})
		oi, si, err := idx.Run(q)
		if err != nil {
			t.Fatalf("query %d indexed: %v", i, err)
		}
		of, sf, err := full.Run(q)
		if err != nil {
			t.Fatalf("query %d full-scan: %v", i, err)
		}
		if oi.String() != of.String() {
			t.Errorf("query %d: indexed %s != full-scan %s", i, oi, of)
		}
		if si.ConditionChecks != sf.ConditionChecks || si.Applications != sf.Applications {
			t.Errorf("query %d: stats diverge: indexed checks=%d apps=%d, full-scan checks=%d apps=%d",
				i, si.ConditionChecks, si.Applications, sf.ConditionChecks, sf.Applications)
		}
		if si.MatchAttempts > sf.MatchAttempts {
			t.Errorf("query %d: indexed attempts %d > full-scan %d", i, si.MatchAttempts, sf.MatchAttempts)
		}
	}
}

func TestIndexSkipsNonCandidateSites(t *testing.T) {
	// 1 FOO site among many BAZ sites, and a rule base with many distinct
	// dead heads: the index must attempt only the FOO rule at the FOO site.
	var src strings.Builder
	src.WriteString("rule live: FOO(x) --> DONE(x);\n")
	names := []string{"live"}
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&src, "rule dead%d: DEADHEAD%d(x) --> GONE%d(x);\n", i, i, i)
		names = append(names, fmt.Sprintf("dead%d", i))
	}
	fmt.Fprintf(&src, "block(all, {%s}, inf);\nseq({all}, 1);\n", strings.Join(names, ", "))
	q := term.F("BAZ", term.F("BAZ", term.F("BAZ", term.F("FOO", term.Num(1)))))

	idx := newEngine(t, src.String(), Options{})
	_, si, err := idx.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	full := newEngine(t, src.String(), Options{FullScan: true})
	_, sf, err := full.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	// Indexed: pass 1 tries live@FOO (applies); pass 2 finds no candidate
	// at all (DONE head matches nothing). Full-scan pays sites × rules.
	if si.MatchAttempts != 1 {
		t.Errorf("indexed attempts = %d, want 1", si.MatchAttempts)
	}
	if sf.MatchAttempts < 80 {
		t.Errorf("full-scan attempts = %d, expected the sites x rules storm", sf.MatchAttempts)
	}
	if si.ConditionChecks != sf.ConditionChecks {
		t.Errorf("checks diverge: %d vs %d", si.ConditionChecks, sf.ConditionChecks)
	}
}

func TestScratchBindingsIsolatedAcrossSites(t *testing.T) {
	// A veto at one site must not leak method/match bindings into the
	// attempt at the next site: the x bound at the first G site would
	// otherwise force the second match to fail (or worse, succeed with a
	// stale binding in the RHS).
	e := newEngine(t, "rule r: GG(x) / x > 5 --> HH(x);", Options{})
	q := term.F("TOP", term.F("GG", term.Num(1)), term.F("GG", term.Num(9)))
	out, st := run(t, e, q)
	if out.String() != "TOP(GG(1), HH(9))" {
		t.Errorf("out = %s", out)
	}
	if st.Applications != 1 {
		t.Errorf("applications = %d", st.Applications)
	}
}

func TestVarHeadRuleStillMatchesEverywhere(t *testing.T) {
	// Function-variable heads live in the wildcard bucket; make sure the
	// indexed engine still applies them at arbitrary functors.
	e := newEngine(t, "rule r: F(REMOVE(x)) --> F(x);", Options{})
	q := term.F("AA", term.F("BB", term.F("REMOVE", term.Num(3))))
	out, _ := run(t, e, q)
	if out.String() != "AA(BB(3))" {
		t.Errorf("out = %s", out)
	}
}

func TestFullScanOptionStillWorks(t *testing.T) {
	e := newEngine(t, "rule r: FOO(x) --> BAR(x);", Options{FullScan: true})
	out, st := run(t, e, term.F("WRAP", term.F("FOO", term.Num(1))))
	if out.String() != "WRAP(BAR(1))" || st.Applications != 1 {
		t.Errorf("out = %s, applications = %d", out, st.Applications)
	}
}

func BenchmarkManyDeadRules(b *testing.B) {
	var src strings.Builder
	src.WriteString("rule live: FOO(x) / x > 0 --> FOO2(x);\nrule live2: FOO2(x) --> DONE(x);\n")
	names := []string{"live", "live2"}
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&src, "rule dead%d: DEADHEAD%d(x) --> GONE%d(x);\n", i, i, i)
		names = append(names, fmt.Sprintf("dead%d", i))
	}
	fmt.Fprintf(&src, "block(all, {%s}, inf);\nseq({all}, 2);\n", strings.Join(names, ", "))
	rs, err := rules.Parse(src.String())
	if err != nil {
		b.Fatal(err)
	}
	q := term.F("ROOT")
	for i := 0; i < 40; i++ {
		q = term.F("WRAP", q, term.F("LEAF", term.Num(int64(i))))
	}
	q = term.F("TOP", q, term.F("FOO", term.Num(1)))
	for _, mode := range []struct {
		name string
		opts Options
	}{{"indexed", Options{}}, {"fullscan", Options{FullScan: true}}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := New(rs, NewExternals(), nil, mode.opts)
				if _, _, err := e.Run(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
