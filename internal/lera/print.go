package lera

// The paper-style concrete printer: SEARCH terms print as
//
//	search((APPEARS_IN, FILM), [1.1=2.1 ∧ name(1.2)='Quinn'], (2.2, 2.3, salary(1.2)))
//
// matching the §3.1 notation (modulo whitespace normalisation, which
// EXPERIMENTS.md documents). Format is used by the tools, the EXPLAIN
// trace and the figure-reproduction golden tests.

import (
	"strings"

	"lera/internal/term"
	"lera/internal/value"
)

// Format renders a LERA term in the paper's concrete syntax.
func Format(t *term.Term) string {
	var sb strings.Builder
	formatExpr(&sb, t)
	return sb.String()
}

func formatExpr(sb *strings.Builder, t *term.Term) {
	if t == nil {
		sb.WriteString("<nil>")
		return
	}
	switch t.Kind {
	case term.Const:
		sb.WriteString(t.Val.String())
		return
	case term.Var:
		sb.WriteString(t.Name)
		return
	case term.SeqVar:
		sb.WriteString(t.Name + "*")
		return
	}
	switch t.Functor {
	case OpRel:
		if n, ok := RelName(t); ok {
			sb.WriteString(n)
			return
		}
	case OpSearch:
		if len(t.Args) == 3 {
			sb.WriteString("search(")
			formatParenList(sb, t.Args[0].Args)
			sb.WriteString(", ")
			formatQualBracketed(sb, t.Args[1])
			sb.WriteString(", ")
			formatParenList(sb, t.Args[2].Args)
			sb.WriteString(")")
			return
		}
	case OpFilter:
		if len(t.Args) == 2 {
			sb.WriteString("filter(")
			formatExpr(sb, t.Args[0])
			sb.WriteString(", ")
			formatQualBracketed(sb, t.Args[1])
			sb.WriteString(")")
			return
		}
	case OpJoin:
		if len(t.Args) == 3 {
			sb.WriteString("join(")
			formatExpr(sb, t.Args[0])
			sb.WriteString(", ")
			formatExpr(sb, t.Args[1])
			sb.WriteString(", ")
			formatQualBracketed(sb, t.Args[2])
			sb.WriteString(")")
			return
		}
	case OpUnion, OpInter:
		if len(t.Args) == 1 && IsOp(t.Args[0], term.FSet) {
			if t.Functor == OpUnion {
				sb.WriteString("union({")
			} else {
				sb.WriteString("inter({")
			}
			formatList(sb, t.Args[0].Args)
			sb.WriteString("})")
			return
		}
	case OpDiff:
		if len(t.Args) == 2 {
			sb.WriteString("diff(")
			formatExpr(sb, t.Args[0])
			sb.WriteString(", ")
			formatExpr(sb, t.Args[1])
			sb.WriteString(")")
			return
		}
	case OpFix:
		if len(t.Args) == 3 {
			sb.WriteString("fix(")
			sb.WriteString(rawString(t.Args[0]))
			sb.WriteString(", ")
			formatExpr(sb, t.Args[1])
			sb.WriteString(")")
			return
		}
	case OpLet:
		if len(t.Args) == 3 {
			sb.WriteString("let(")
			sb.WriteString(rawString(t.Args[0]))
			sb.WriteString(" = ")
			formatExpr(sb, t.Args[1])
			sb.WriteString(" in ")
			formatExpr(sb, t.Args[2])
			sb.WriteString(")")
			return
		}
	case OpNest:
		if len(t.Args) == 3 {
			sb.WriteString("nest(")
			formatExpr(sb, t.Args[0])
			sb.WriteString(", ")
			formatParenList(sb, t.Args[1].Args)
			sb.WriteString(", ")
			sb.WriteString(rawString(t.Args[2]))
			sb.WriteString(")")
			return
		}
	case OpUnnest:
		if len(t.Args) == 2 {
			sb.WriteString("unnest(")
			formatExpr(sb, t.Args[0])
			sb.WriteString(", ")
			formatExpr(sb, t.Args[1])
			sb.WriteString(")")
			return
		}
	case EAttr:
		if i, j, ok := AttrIdx(t); ok {
			sb.WriteString(itoa(i))
			sb.WriteString(".")
			sb.WriteString(itoa(j))
			return
		}
	case ECall:
		if name, ok := CallName(t); ok {
			sb.WriteString(strings.ToLower(name))
			sb.WriteString("(")
			formatList(sb, t.Args[1:])
			sb.WriteString(")")
			return
		}
	case EProject:
		if len(t.Args) == 2 {
			sb.WriteString("PROJECT(")
			formatExpr(sb, t.Args[0])
			sb.WriteString(", ")
			sb.WriteString(rawString(t.Args[1]))
			sb.WriteString(")")
			return
		}
	case EAnds:
		formatQual(sb, t)
		return
	case EOrs:
		formatQual(sb, t)
		return
	case ENot:
		if len(t.Args) == 1 {
			sb.WriteString("¬(")
			formatExpr(sb, t.Args[0])
			sb.WriteString(")")
			return
		}
	case "=", "<>", "<", ">", "<=", ">=":
		if len(t.Args) == 2 {
			formatExpr(sb, t.Args[0])
			sb.WriteString(t.Functor)
			formatExpr(sb, t.Args[1])
			return
		}
	case "+", "-", "*", "/":
		if len(t.Args) == 2 {
			sb.WriteString("(")
			formatExpr(sb, t.Args[0])
			sb.WriteString(" " + t.Functor + " ")
			formatExpr(sb, t.Args[1])
			sb.WriteString(")")
			return
		}
	case term.FSet:
		sb.WriteString("{")
		formatList(sb, t.Args)
		sb.WriteString("}")
		return
	case term.FList, term.FTuple:
		sb.WriteString("(")
		formatList(sb, t.Args)
		sb.WriteString(")")
		return
	}
	// Generic application: ADT functions print lower-case except the
	// conversion functions the paper capitalises.
	sb.WriteString(lowerFunctor(t.Functor))
	sb.WriteString("(")
	formatList(sb, t.Args)
	sb.WriteString(")")
}

// formatQual renders a qualification without brackets: conjuncts joined
// by " ∧ ", disjuncts by " ∨ ", TRUE/FALSE for empty.
func formatQual(sb *strings.Builder, q *term.Term) {
	switch {
	case IsOp(q, EAnds) && len(q.Args) == 1:
		cs := q.Args[0].Args
		if len(cs) == 0 {
			sb.WriteString("true")
			return
		}
		for i, c := range cs {
			if i > 0 {
				sb.WriteString(" ∧ ")
			}
			formatExpr(sb, c)
		}
	case IsOp(q, EOrs) && len(q.Args) == 1:
		ds := q.Args[0].Args
		if len(ds) == 0 {
			sb.WriteString("false")
			return
		}
		for i, d := range ds {
			if i > 0 {
				sb.WriteString(" ∨ ")
			}
			formatExpr(sb, d)
		}
	default:
		formatExpr(sb, q)
	}
}

func formatQualBracketed(sb *strings.Builder, q *term.Term) {
	sb.WriteString("[")
	formatQual(sb, q)
	sb.WriteString("]")
}

func formatList(sb *strings.Builder, ts []*term.Term) {
	for i, t := range ts {
		if i > 0 {
			sb.WriteString(", ")
		}
		formatExpr(sb, t)
	}
}

func formatParenList(sb *strings.Builder, ts []*term.Term) {
	sb.WriteString("(")
	formatList(sb, ts)
	sb.WriteString(")")
}

// rawString renders a constant string without quotes (relation and field
// names in operator positions).
func rawString(t *term.Term) string {
	if t.Kind == term.Const && t.Val.K == value.KString {
		return t.Val.S
	}
	return t.String()
}

func itoa(i int) string {
	if i >= 0 && i < 10 {
		return string(rune('0' + i))
	}
	var digits []byte
	neg := i < 0
	if neg {
		i = -i
	}
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	if neg {
		return "-" + string(digits)
	}
	return string(digits)
}
