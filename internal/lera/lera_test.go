package lera

import (
	"strings"
	"testing"

	"lera/internal/catalog"
	"lera/internal/term"
	"lera/internal/testdb"
)

// figure3Search builds the §3.1 translation of the Figure 3 query:
//
//	search((APPEARS_IN, FILM),
//	       [1.1=2.1 ∧ name(1.2)='Quinn' ∧ member('Adventure', 2.3)],
//	       (2.2, 2.3, salary(1.2)))
func figure3Search() *term.Term {
	return Search(
		[]*term.Term{Rel("APPEARS_IN"), Rel("FILM")},
		Ands(
			Cmp("=", Attr(1, 1), Attr(2, 1)),
			Cmp("=", Call("Name", Attr(1, 2)), term.Str("Quinn")),
			Call("Member", term.Str("Adventure"), Attr(2, 3)),
		),
		[]*term.Term{Attr(2, 2), Attr(2, 3), Call("Salary", Attr(1, 2))},
	)
}

func TestFormatFigure3(t *testing.T) {
	got := Format(figure3Search())
	want := "search((APPEARS_IN, FILM), [1.1=2.1 ∧ name(1.2)='Quinn' ∧ member('Adventure', 2.3)], (2.2, 2.3, salary(1.2)))"
	if got != want {
		t.Errorf("Format:\n got %s\nwant %s", got, want)
	}
}

func TestFormatFixpointFigure5(t *testing.T) {
	// §3.2: fix(BETTER_THAN, union({DOMINATE', search((BT, BT), [1.2=2.1], (1.1, 2.2))}))
	bt := "BETTER_THAN"
	rec := Search(
		[]*term.Term{Rel(bt), Rel(bt)},
		Ands(Cmp("=", Attr(1, 2), Attr(2, 1))),
		[]*term.Term{Attr(1, 1), Attr(2, 2)},
	)
	seed := Search(
		[]*term.Term{Rel("DOMINATE")},
		TrueQual(),
		[]*term.Term{Attr(1, 2), Attr(1, 3)},
	)
	fix := Fix(bt, Union(seed, rec), []string{"Refactor1", "Refactor2"})
	got := Format(fix)
	for _, frag := range []string{"fix(BETTER_THAN, union({", "search((DOMINATE)", "search((BETTER_THAN, BETTER_THAN), [1.2=2.1], (1.1, 2.2))"} {
		if !strings.Contains(got, frag) {
			t.Errorf("Format(fix) = %s\nmissing %q", got, frag)
		}
	}
}

func TestFormatOtherOps(t *testing.T) {
	cases := []struct {
		t    *term.Term
		want string
	}{
		{Filter(Rel("R"), Ands(Cmp(">", Attr(1, 1), term.Num(5)))), "filter(R, [1.1>5])"},
		{Join(Rel("A"), Rel("B"), Ands(Cmp("=", Attr(1, 1), Attr(2, 1)))), "join(A, B, [1.1=2.1])"},
		{Diff(Rel("A"), Rel("B")), "diff(A, B)"},
		{Inter(Rel("A"), Rel("B")), "inter({A, B})"},
		{Nest(Rel("R"), []int{3}, "Actors"), "nest(R, (3), Actors)"},
		{Unnest(Rel("R"), 2), "unnest(R, 2)"},
		{Let("M", Rel("A"), Rel("M")), "let(M = A in M)"},
		{Not(Call("IsEmpty", Attr(1, 1))), "¬(isempty(1.1))"},
		{Ors(Cmp("=", Attr(1, 1), term.Num(1)), Cmp("=", Attr(1, 1), term.Num(2))), "1.1=1 ∨ 1.1=2"},
		{Ors(), "false"},
		{TrueQual(), "true"},
		{Project(Value(Attr(1, 2)), "Salary"), "PROJECT(VALUE(1.2), Salary)"},
		{Cmp("=", term.F("-", V1(), V2()), term.Num(0)), "(x - y)=0"},
	}
	for _, c := range cases {
		if got := Format(c.t); got != c.want {
			t.Errorf("Format = %q, want %q", got, c.want)
		}
	}
}

func V1() *term.Term { return term.V("x") }
func V2() *term.Term { return term.V("y") }

func TestAndsFlattensDedupesDropsTrue(t *testing.T) {
	c1 := Cmp("=", Attr(1, 1), term.Num(1))
	c2 := Cmp(">", Attr(1, 2), term.Num(2))
	q := Ands(c1, term.TrueT(), Ands(c2, c1))
	cs := Conjuncts(q)
	if len(cs) != 2 {
		t.Errorf("conjuncts = %v", cs)
	}
	if !IsTrueQual(Ands(term.TrueT())) {
		t.Error("ANDS(TRUE) is trivially true")
	}
	if IsTrueQual(q) {
		t.Error("non-empty qual is not true")
	}
	// Non-ANDS qualification is its own single conjunct.
	if len(Conjuncts(c1)) != 1 {
		t.Error("bare conjunct")
	}
	if len(Conjuncts(term.TrueT())) != 0 {
		t.Error("TRUE has no conjuncts")
	}
}

func TestOrsFlattensDropsFalse(t *testing.T) {
	d := Cmp("=", Attr(1, 1), term.Num(1))
	q := Ors(term.FalseT(), Ors(d))
	if len(q.Args[0].Args) != 1 {
		t.Errorf("ors = %s", q)
	}
}

func TestRelNameCallNameAttrIdx(t *testing.T) {
	if n, ok := RelName(Rel("FILM")); !ok || n != "FILM" {
		t.Error("RelName")
	}
	if _, ok := RelName(term.Num(1)); ok {
		t.Error("RelName of const")
	}
	if n, ok := CallName(Call("Salary", Attr(1, 1))); !ok || n != "Salary" {
		t.Error("CallName")
	}
	if _, ok := CallName(Rel("X")); ok {
		t.Error("CallName of REL")
	}
	i, j, ok := AttrIdx(Attr(3, 4))
	if !ok || i != 3 || j != 4 {
		t.Error("AttrIdx")
	}
	if _, _, ok := AttrIdx(term.Num(1)); ok {
		t.Error("AttrIdx of const")
	}
}

func TestValidate(t *testing.T) {
	good := []*term.Term{
		figure3Search(),
		Union(Rel("A"), Rel("B")),
		Fix("R", Rel("A"), []string{"c"}),
		Nest(Rel("A"), []int{1}, "n"),
	}
	for _, g := range good {
		if err := Validate(g); err != nil {
			t.Errorf("Validate(%s) = %v", Format(g), err)
		}
	}
	bad := []*term.Term{
		term.F(OpSearch, Rel("A"), TrueQual(), term.List()),               // rels not a LIST
		term.F(OpSearch, term.List(term.Num(1)), TrueQual(), term.List()), // non-relational operand
		term.F(OpSearch, term.List()),                                     // arity
		term.F(OpRel),                                                     // arity
		term.F(OpUnion, term.List(Rel("A"))),                              // not a SET
		term.F(OpDiff, Rel("A")),                                          // arity
		term.F(OpFix, term.Str("R"), Rel("A")),                            // arity
		term.F(OpLet, term.Str("R"), Rel("A"), term.Num(1)),               // body not relational
		term.F(OpNest, Rel("A"), term.Num(1), term.Str("n")),              // idxs not LIST
		term.F(OpUnnest, Rel("A")),                                        // arity
		term.F(EAttr, term.Num(0), term.Num(1)),                           // non-positive
		term.F(ECall, term.Num(1)),                                        // name not string const? (const ok) — use no args
		term.F(EValue),                                                    // arity
		term.F(EProject, Attr(1, 1)),                                      // arity
		term.F(EAnds, term.List()),                                        // not SET
	}
	for _, b := range bad {
		if err := Validate(b); err == nil {
			t.Errorf("Validate(%s) should fail", b)
		}
	}
	// Validation recurses: a bad subterm inside a good operator fails.
	if err := Validate(Filter(term.F(OpRel), TrueQual())); err == nil {
		t.Error("nested invalid REL should fail")
	}
}

func TestCounts(t *testing.T) {
	q := Search([]*term.Term{figure3Search(), Rel("X")}, TrueQual(), []*term.Term{Attr(1, 1)})
	if OperatorCount(q) != 5 { // outer search + inner search + 2 rels + REL X
		t.Errorf("OperatorCount = %d", OperatorCount(q))
	}
	if SearchCount(q) != 2 {
		t.Errorf("SearchCount = %d", SearchCount(q))
	}
}

func TestShiftAndMapAttrs(t *testing.T) {
	e := Ands(Cmp("=", Attr(1, 1), Attr(2, 2)), Cmp(">", Attr(3, 1), term.Num(0)))
	shifted := ShiftAttrs(e, 2, 10)
	want := map[string]bool{}
	term.Walk(shifted, func(s *term.Term, _ term.Path) bool {
		if i, j, ok := AttrIdx(s); ok {
			want[Format(Attr(i, j))] = true
		}
		return true
	})
	for _, a := range []string{"1.1", "12.2", "13.1"} {
		if !want[a] {
			t.Errorf("ShiftAttrs missing %s: %v", a, want)
		}
	}
	mapped := MapAttrs(e, func(i, j int, at *term.Term) *term.Term { return Attr(i, j+100) })
	if !term.Contains(mapped, func(s *term.Term) bool {
		_, j, ok := AttrIdx(s)
		return ok && j == 101
	}) {
		t.Error("MapAttrs did not apply")
	}
}

func TestRefersOnly(t *testing.T) {
	e := Ands(Cmp("=", Attr(1, 1), term.Num(5)))
	if !RefersOnly(e, func(i, j int) bool { return i == 1 }) {
		t.Error("refers only rel 1")
	}
	if RefersOnly(e, func(i, j int) bool { return i == 2 }) {
		t.Error("does refer to rel 1")
	}
	if !RefersOnly(term.TrueT(), func(i, j int) bool { return false }) {
		t.Error("no attrs at all")
	}
}

// --- schema inference ---

func TestInferFigure3(t *testing.T) {
	cat, err := testdb.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	s, err := Infer(figure3Search(), cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Arity() != 3 {
		t.Fatalf("arity = %d", s.Arity())
	}
	if s.Cols[0].Name != "Title" || s.Cols[1].Name != "Categories" || s.Cols[2].Name != "Salary" {
		t.Errorf("column names = %s", s)
	}
	// salary(1.2): Refactor is an Actor object; attribute-as-function
	// typing resolves Salary to NUMERIC.
	if s.Cols[2].Type.Name != "NUMERIC" {
		t.Errorf("Salary type = %s", s.Cols[2].Type)
	}
	if s.Cols[1].Type.Name != "SetCategory" {
		t.Errorf("Categories type = %s", s.Cols[1].Type)
	}
	if j, ok := s.Index("salary"); !ok || j != 3 {
		t.Errorf("Index(salary) = %d, %v", j, ok)
	}
	if _, ok := s.Index("none"); ok {
		t.Error("unknown column")
	}
	if _, ok := s.Col(0); ok {
		t.Error("Col(0) out of range")
	}
}

func TestInferFixAndLet(t *testing.T) {
	cat, _ := testdb.Catalog()
	seed := Search([]*term.Term{Rel("DOMINATE")}, TrueQual(), []*term.Term{Attr(1, 2), Attr(1, 3)})
	rec := Search([]*term.Term{Rel("BT"), Rel("BT")},
		Ands(Cmp("=", Attr(1, 2), Attr(2, 1))),
		[]*term.Term{Attr(1, 1), Attr(2, 2)})
	fix := Fix("BT", Union(seed, rec), []string{"Refactor1", "Refactor2"})
	s, err := Infer(fix, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Arity() != 2 || s.Cols[0].Name != "Refactor1" {
		t.Errorf("fix schema = %s", s)
	}
	if s.Cols[0].Type.Name != "Actor" {
		t.Errorf("fix col type = %s (want Actor, refined from seed)", s.Cols[0].Type)
	}
	// LET binds a name visible in the body.
	let := Let("M", seed, Search([]*term.Term{Rel("M")}, TrueQual(), []*term.Term{Attr(1, 1)}))
	s2, err := Infer(let, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Arity() != 1 {
		t.Errorf("let schema = %s", s2)
	}
}

func TestInferNestUnnest(t *testing.T) {
	cat, _ := testdb.Catalog()
	// NEST(APPEARS_IN, (2), Actors): group Numf, nest Refactor.
	n := Nest(Rel("APPEARS_IN"), []int{2}, "Actors")
	s, err := Infer(n, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Arity() != 2 || s.Cols[1].Name != "Actors" {
		t.Fatalf("nest schema = %s", s)
	}
	if s.Cols[1].Type.Kind != 3 /* types.Collection */ {
		t.Errorf("nested col type = %s", s.Cols[1].Type)
	}
	// UNNEST inverts.
	u := Unnest(n, 2)
	s2, err := Infer(u, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Cols[1].Type.Name != "Actor" {
		t.Errorf("unnest col type = %s", s2.Cols[1].Type)
	}
}

func TestInferErrors(t *testing.T) {
	cat, _ := testdb.Catalog()
	bad := []*term.Term{
		Rel("NOSUCH"),
		Search([]*term.Term{Rel("FILM")}, TrueQual(), []*term.Term{Attr(2, 1)}), // rel idx
		Search([]*term.Term{Rel("FILM")}, TrueQual(), []*term.Term{Attr(1, 9)}), // col idx
		Union(Search([]*term.Term{Rel("FILM")}, TrueQual(), []*term.Term{Attr(1, 1)}),
			Search([]*term.Term{Rel("FILM")}, TrueQual(), []*term.Term{Attr(1, 1), Attr(1, 2)})), // arity mismatch
		term.F(OpUnion, term.Set()), // empty union
		Nest(Rel("FILM"), []int{9}, "x"),
		Unnest(Rel("FILM"), 9),
		Diff(Rel("FILM"), Rel("APPEARS_IN")),
		term.Num(1),
	}
	for _, b := range bad {
		if _, err := Infer(b, cat, nil); err == nil {
			t.Errorf("Infer(%s) should fail", b)
		}
	}
}

func TestInferViewSchema(t *testing.T) {
	cat, _ := testdb.Catalog()
	def := Search([]*term.Term{Rel("FILM")}, TrueQual(), []*term.Term{Attr(1, 2)})
	vs, err := Infer(def, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.DeclareView(&catalog.View{Name: "TitlesV", Columns: vs.Cols, Def: def}); err != nil {
		t.Fatal(err)
	}
	s, err := Infer(Rel("TitlesV"), cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Arity() != 1 || s.Cols[0].Name != "Title" {
		t.Errorf("view schema = %s", s)
	}
}
