package lera

import (
	"testing"

	"lera/internal/term"
	"lera/internal/testdb"
	"lera/internal/types"
)

// TestTypeOfExpressions covers the §3.3 typing rules: attribute
// references, VALUE dereference, PROJECT with collection broadcast,
// attribute-as-function CALLs, comparisons, connectives, arithmetic and
// the built-in ADT function result types.
func TestTypeOfExpressions(t *testing.T) {
	cat, err := testdb.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	filmS, err := Infer(Rel("FILM"), cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	appearsS, err := Infer(Rel("APPEARS_IN"), cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	rels := []*Schema{appearsS, filmS}
	nested, err := Infer(Nest(Rel("APPEARS_IN"), []int{2}, "Actors"), cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	nrels := []*Schema{nested}

	cases := []struct {
		name string
		e    *term.Term
		rels []*Schema
		want string
	}{
		{"attr", Attr(2, 3), rels, "SetCategory"},
		{"const int", term.Num(5), rels, "INT"},
		{"const string", term.Str("x"), rels, "CHAR"},
		{"value deref", Value(Attr(1, 2)), rels, "Actor"},
		{"project field", Project(Value(Attr(1, 2)), "Salary"), rels, "NUMERIC"},
		{"project missing field", Project(Value(Attr(1, 2)), "Nope"), rels, "ANY"},
		{"project broadcast", Project(Attr(1, 2), "Salary"), nrels, "SET OF NUMERIC"},
		{"call attr-as-function", Call("Name", Attr(1, 2)), rels, "CHAR"},
		{"call broadcast", Call("Salary", Attr(1, 2)), nrels, "SET OF NUMERIC"},
		{"call unknown", Call("Frobnicate", Attr(1, 1)), rels, "ANY"},
		{"comparison", Cmp("=", Attr(1, 1), term.Num(1)), rels, "BOOLEAN"},
		{"ands", Ands(Cmp("=", Attr(1, 1), term.Num(1))), rels, "BOOLEAN"},
		{"not", Not(term.TrueT()), rels, "BOOLEAN"},
		{"arith", term.F("+", Attr(1, 1), term.Num(1)), rels, "NUMERIC"},
		{"member", term.F("MEMBER", term.Str("x"), Attr(2, 3)), rels, "BOOLEAN"},
		{"count", term.F("COUNT", Attr(2, 3)), rels, "INT"},
		{"concat", term.F("CONCAT", term.Str("a"), term.Str("b")), rels, "CHAR"},
		{"union preserves", term.F("UNION", Attr(2, 3), Attr(2, 3)), rels, "SetCategory"},
		{"choice element", term.F("CHOICE", Attr(2, 3)), rels, "Category"},
		{"makeset", term.F("MAKESET", Attr(1, 1)), rels, "SET OF NUMERIC"},
		{"set literal", term.Set(term.Str("a")), rels, "SET OF CHAR"},
		{"var is any", term.V("x"), rels, "ANY"},
	}
	for _, c := range cases {
		got, err := TypeOf(c.e, c.rels, cat)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("%s: TypeOf = %s, want %s", c.name, got, c.want)
		}
	}
}

func TestTypeOfErrors(t *testing.T) {
	cat, _ := testdb.Catalog()
	filmS, _ := Infer(Rel("FILM"), cat, nil)
	rels := []*Schema{filmS}
	bad := []*term.Term{
		Attr(2, 1),  // relation index out of range
		Attr(1, 99), // column index out of range
		Value(Attr(9, 9)),
		Project(Attr(9, 9), "x"),
	}
	for _, e := range bad {
		if _, err := TypeOf(e, rels, cat); err == nil {
			t.Errorf("TypeOf(%s) should fail", e)
		}
	}
}

// Inference through FIX refines the provisional ANY column types from the
// seed (checked here against a non-trivial expression shape).
func TestInferSchemaStrings(t *testing.T) {
	cat, _ := testdb.Catalog()
	s, err := Infer(Rel("FILM"), cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	str := s.String()
	if str != "(Numf:NUMERIC, Title:CHAR, Categories:SetCategory)" {
		t.Errorf("Schema.String = %q", str)
	}
	if s.Cols[2].Type.Kind != types.Collection {
		t.Errorf("Categories kind = %v", s.Cols[2].Type.Kind)
	}
}
