// Package lera defines LERA, the extended relational algebra of the
// paper's Section 3, as a typed veneer over the uniform term
// representation: operator symbols, constructors, well-formedness
// validation, schema inference and the paper-style concrete printer.
//
// A LERA expression IS a term (the paper interprets "LERA operators ...
// as functions", Section 4.1), so the rewriter needs no conversion layer
// and every part of a query is reachable by rules.
package lera

import (
	"fmt"
	"strings"

	"lera/internal/term"
	"lera/internal/value"
)

// Relational operator symbols (Section 3).
const (
	// OpRel references a base relation, view-expansion result or a
	// FIX/LET-bound name: REL('FILM').
	OpRel = "REL"
	// OpSearch is the compound operator of §3.1:
	// SEARCH(LIST(rels...), qual, LIST(projs...)).
	OpSearch = "SEARCH"
	// OpFilter and OpJoin are the basic operators; the canonicalisation
	// rules rewrite them into SEARCH form.
	OpFilter = "FILTER"
	OpJoin   = "JOIN"
	// OpUnion and OpInter are n-ary over a SET of expressions (§3.1's
	// union* and join* family); OpDiff is binary and ordered. The
	// functor names are chosen to be writable in the rule language
	// (UNION alone names the binary collection ADT function).
	OpUnion = "UNIONN"
	OpInter = "INTERN"
	OpDiff  = "DIFF"
	// OpFix is the fixpoint operator of §3.2:
	// FIX(name, expr, LIST(colnames...)); inside expr, REL(name) refers
	// to the relation being saturated.
	OpFix = "FIX"
	// OpNest groups the listed column indices into a set-valued column:
	// NEST(rel, LIST(idx...), newcol). OpUnnest is its inverse:
	// UNNEST(rel, idx).
	OpNest   = "NEST"
	OpUnnest = "UNNEST"
	// OpLet names an auxiliary expression: LET(name, def, body); the
	// magic-sets transformation introduces it (DESIGN.md §2.4).
	OpLet = "LET"
)

// Expression symbols used in qualifications and projections (§3.3, §3.4).
const (
	// EAttr is an attribute reference ATTR(i, j), printed i.j.
	EAttr = "ATTR"
	// ECall is a not-yet-type-checked ESQL function application
	// CALL('Name', args...); the type-checking rules rewrite it into
	// VALUE/PROJECT/ADT-function form.
	ECall = "CALL"
	// EValue dereferences an object identifier (§3.3).
	EValue = "VALUE"
	// EProject extracts a tuple attribute: PROJECT(x, 'Salary') (§3.3).
	EProject = "PROJECT"
	// EAnds and EOrs are the canonical n-ary connectives over a SET of
	// subformulas; the empty ANDS is TRUE, the empty ORS is FALSE.
	EAnds = "ANDS"
	EOrs  = "ORS"
	ENot  = "NOT"
)

// Rel constructs a relation reference.
func Rel(name string) *term.Term { return term.F(OpRel, term.Str(name)) }

// RelName extracts the name of a REL term.
func RelName(t *term.Term) (string, bool) {
	if t.Kind == term.Fun && t.Functor == OpRel && len(t.Args) == 1 && t.Args[0].Kind == term.Const {
		return t.Args[0].Val.S, true
	}
	return "", false
}

// Search constructs SEARCH(LIST(rels), qual, LIST(projs)).
func Search(rels []*term.Term, qual *term.Term, projs []*term.Term) *term.Term {
	return term.F(OpSearch, term.List(rels...), qual, term.List(projs...))
}

// Filter constructs FILTER(rel, qual).
func Filter(rel, qual *term.Term) *term.Term { return term.F(OpFilter, rel, qual) }

// Join constructs JOIN(r1, r2, qual).
func Join(r1, r2, qual *term.Term) *term.Term { return term.F(OpJoin, r1, r2, qual) }

// Union constructs UNION*(SET(exprs...)).
func Union(exprs ...*term.Term) *term.Term { return term.F(OpUnion, term.Set(exprs...)) }

// Inter constructs INTER*(SET(exprs...)).
func Inter(exprs ...*term.Term) *term.Term { return term.F(OpInter, term.Set(exprs...)) }

// Diff constructs DIFF(a, b).
func Diff(a, b *term.Term) *term.Term { return term.F(OpDiff, a, b) }

// Fix constructs FIX(name, expr, LIST(cols...)).
func Fix(name string, expr *term.Term, cols []string) *term.Term {
	cs := make([]*term.Term, len(cols))
	for i, c := range cols {
		cs[i] = term.Str(c)
	}
	return term.F(OpFix, term.Str(name), expr, term.List(cs...))
}

// Let constructs LET(name, def, body).
func Let(name string, def, body *term.Term) *term.Term {
	return term.F(OpLet, term.Str(name), def, body)
}

// Nest constructs NEST(rel, LIST(idx...), newcol).
func Nest(rel *term.Term, idxs []int, newcol string) *term.Term {
	is := make([]*term.Term, len(idxs))
	for i, j := range idxs {
		is[i] = term.Num(int64(j))
	}
	return term.F(OpNest, rel, term.List(is...), term.Str(newcol))
}

// Unnest constructs UNNEST(rel, idx).
func Unnest(rel *term.Term, idx int) *term.Term {
	return term.F(OpUnnest, rel, term.Num(int64(idx)))
}

// Attr constructs an attribute reference ATTR(i, j) — relation i (1-based
// within the enclosing operator's relation list), column j.
func Attr(i, j int) *term.Term { return term.F(EAttr, term.Num(int64(i)), term.Num(int64(j))) }

// AttrIdx extracts (i, j) from an ATTR term.
func AttrIdx(t *term.Term) (int, int, bool) {
	if t.Kind == term.Fun && t.Functor == EAttr && len(t.Args) == 2 &&
		t.Args[0].Kind == term.Const && t.Args[1].Kind == term.Const {
		return int(t.Args[0].Val.I), int(t.Args[1].Val.I), true
	}
	return 0, 0, false
}

// Call constructs a raw ESQL function application CALL('name', args...).
func Call(name string, args ...*term.Term) *term.Term {
	return term.F(ECall, append([]*term.Term{term.Str(name)}, args...)...)
}

// CallName extracts the function name of a CALL term.
func CallName(t *term.Term) (string, bool) {
	if t.Kind == term.Fun && t.Functor == ECall && len(t.Args) >= 1 && t.Args[0].Kind == term.Const {
		return t.Args[0].Val.S, true
	}
	return "", false
}

// Value constructs VALUE(x).
func Value(x *term.Term) *term.Term { return term.F(EValue, x) }

// Project constructs PROJECT(x, 'field').
func Project(x *term.Term, field string) *term.Term {
	return term.F(EProject, x, term.Str(field))
}

// Ands constructs the canonical conjunction ANDS(SET(conjuncts...));
// duplicate conjuncts collapse by SET semantics, nested ANDS flatten, and
// TRUE conjuncts are dropped.
func Ands(conjuncts ...*term.Term) *term.Term {
	var flat []*term.Term
	for _, c := range conjuncts {
		switch {
		case c.Kind == term.Fun && c.Functor == EAnds && len(c.Args) == 1:
			flat = append(flat, c.Args[0].Args...)
		case c.Kind == term.Const && c.Val.IsTrue():
			// drop
		default:
			flat = append(flat, c)
		}
	}
	return term.F(EAnds, term.Set(flat...))
}

// Ors constructs ORS(SET(disjuncts...)).
func Ors(disjuncts ...*term.Term) *term.Term {
	var flat []*term.Term
	for _, d := range disjuncts {
		switch {
		case d.Kind == term.Fun && d.Functor == EOrs && len(d.Args) == 1:
			flat = append(flat, d.Args[0].Args...)
		case d.Kind == term.Const && d.Val.K == value.KBool && !d.Val.B: // FALSE
			// drop
		default:
			flat = append(flat, d)
		}
	}
	return term.F(EOrs, term.Set(flat...))
}

// Not constructs NOT(q).
func Not(q *term.Term) *term.Term { return term.F(ENot, q) }

// Cmp constructs a comparison op(a, b) with op in = <> < > <= >=.
func Cmp(op string, a, b *term.Term) *term.Term { return term.F(op, a, b) }

// Conjuncts returns the conjunct list of a qualification: the SET elements
// of an ANDS, or the qualification itself as a single conjunct. TRUE
// yields none.
func Conjuncts(q *term.Term) []*term.Term {
	if q.Kind == term.Fun && q.Functor == EAnds && len(q.Args) == 1 && q.Args[0].Functor == term.FSet {
		return q.Args[0].Args
	}
	if q.Kind == term.Const && q.Val.IsTrue() {
		return nil
	}
	return []*term.Term{q}
}

// TrueQual is the empty conjunction.
func TrueQual() *term.Term { return Ands() }

// IsTrueQual reports whether q is trivially true.
func IsTrueQual(q *term.Term) bool {
	return len(Conjuncts(q)) == 0
}

// IsOp reports whether t is an application of the given operator.
func IsOp(t *term.Term, op string) bool {
	return t != nil && t.Kind == term.Fun && t.Functor == op
}

// IsRelational reports whether t is a relational operator node (produces
// a relation when evaluated).
func IsRelational(t *term.Term) bool {
	if t == nil || t.Kind != term.Fun {
		return false
	}
	switch t.Functor {
	case OpRel, OpSearch, OpFilter, OpJoin, OpUnion, OpInter, OpDiff, OpFix, OpNest, OpUnnest, OpLet:
		return true
	}
	return false
}

// Validate checks the structural well-formedness of a LERA term: operator
// arities, LIST/SET argument shapes, and that attribute references are
// positive. It returns the first violation found.
func Validate(t *term.Term) error {
	var err error
	term.Walk(t, func(s *term.Term, p term.Path) bool {
		if s.Kind != term.Fun {
			return true
		}
		fail := func(format string, args ...any) bool {
			err = fmt.Errorf("lera: at %v: "+format, append([]any{p}, args...)...)
			return false
		}
		switch s.Functor {
		case OpRel:
			if len(s.Args) != 1 || s.Args[0].Kind != term.Const {
				return fail("REL requires one constant name, got %s", s)
			}
		case OpSearch:
			if len(s.Args) != 3 {
				return fail("SEARCH requires 3 arguments, got %d", len(s.Args))
			}
			if !IsOp(s.Args[0], term.FList) {
				return fail("SEARCH relations must be a LIST, got %s", s.Args[0])
			}
			if !IsOp(s.Args[2], term.FList) {
				return fail("SEARCH projection must be a LIST, got %s", s.Args[2])
			}
			for _, r := range s.Args[0].Args {
				if !IsRelational(r) {
					return fail("SEARCH relation operand %s is not relational", r)
				}
			}
		case OpFilter:
			if len(s.Args) != 2 || !IsRelational(s.Args[0]) {
				return fail("FILTER requires (relation, qual), got %s", s)
			}
		case OpJoin:
			if len(s.Args) != 3 || !IsRelational(s.Args[0]) || !IsRelational(s.Args[1]) {
				return fail("JOIN requires (relation, relation, qual), got %s", s)
			}
		case OpUnion, OpInter:
			if len(s.Args) != 1 || !IsOp(s.Args[0], term.FSet) {
				return fail("%s requires a SET of expressions, got %s", s.Functor, s)
			}
			for _, r := range s.Args[0].Args {
				if !IsRelational(r) {
					return fail("%s operand %s is not relational", s.Functor, r)
				}
			}
		case OpDiff:
			if len(s.Args) != 2 || !IsRelational(s.Args[0]) || !IsRelational(s.Args[1]) {
				return fail("DIFF requires two relational operands, got %s", s)
			}
		case OpFix:
			if len(s.Args) != 3 || s.Args[0].Kind != term.Const || !IsRelational(s.Args[1]) || !IsOp(s.Args[2], term.FList) {
				return fail("FIX requires (name, expr, LIST(cols)), got %s", s)
			}
		case OpLet:
			if len(s.Args) != 3 || s.Args[0].Kind != term.Const || !IsRelational(s.Args[1]) || !IsRelational(s.Args[2]) {
				return fail("LET requires (name, def, body), got %s", s)
			}
		case OpNest:
			if len(s.Args) != 3 || !IsRelational(s.Args[0]) || !IsOp(s.Args[1], term.FList) || s.Args[2].Kind != term.Const {
				return fail("NEST requires (rel, LIST(idx), name), got %s", s)
			}
		case OpUnnest:
			if len(s.Args) != 2 || !IsRelational(s.Args[0]) || s.Args[1].Kind != term.Const {
				return fail("UNNEST requires (rel, idx), got %s", s)
			}
		case EAttr:
			i, j, ok := AttrIdx(s)
			if !ok || i < 1 || j < 1 {
				return fail("ATTR requires two positive indices, got %s", s)
			}
		case ECall:
			if len(s.Args) < 1 || s.Args[0].Kind != term.Const || s.Args[0].Val.K != value.KString {
				return fail("CALL requires a constant function name, got %s", s)
			}
		case EValue:
			if len(s.Args) != 1 {
				return fail("VALUE requires one argument, got %s", s)
			}
		case EProject:
			if len(s.Args) != 2 || s.Args[1].Kind != term.Const {
				return fail("PROJECT requires (expr, 'field'), got %s", s)
			}
		case EAnds, EOrs:
			if len(s.Args) != 1 || !IsOp(s.Args[0], term.FSet) {
				return fail("%s requires a SET of formulas, got %s", s.Functor, s)
			}
		}
		return true
	})
	return err
}

// OperatorCount counts relational operator nodes — the program-size
// metric of experiment E1 ("merging rules reduce the size of a LERA
// program", §5.1).
func OperatorCount(t *term.Term) int {
	return term.Count(t, func(s *term.Term) bool { return IsRelational(s) })
}

// SearchCount counts SEARCH nodes.
func SearchCount(t *term.Term) int {
	return term.Count(t, func(s *term.Term) bool { return IsOp(s, OpSearch) })
}

// ShiftAttrs returns expr with every ATTR(i, j) satisfying i >= from
// replaced by ATTR(i+delta, j). Used by the SUBSTITUTE/SHIFT methods.
func ShiftAttrs(expr *term.Term, from, delta int) *term.Term {
	return term.Rewrite(expr, func(s *term.Term) *term.Term {
		if i, j, ok := AttrIdx(s); ok && i >= from {
			return Attr(i+delta, j)
		}
		return s
	})
}

// MapAttrs rewrites every ATTR in expr through fn; fn returns the
// replacement term (possibly the input unchanged).
func MapAttrs(expr *term.Term, fn func(i, j int, at *term.Term) *term.Term) *term.Term {
	return term.Rewrite(expr, func(s *term.Term) *term.Term {
		if i, j, ok := AttrIdx(s); ok {
			return fn(i, j, s)
		}
		return s
	})
}

// RefersOnly reports whether every ATTR(i, _) in expr satisfies pred(i) —
// the REFER external of Figure 8 builds on it.
func RefersOnly(expr *term.Term, pred func(i, j int) bool) bool {
	ok := true
	term.Walk(expr, func(s *term.Term, _ term.Path) bool {
		if i, j, isAttr := AttrIdx(s); isAttr && !pred(i, j) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// lowerFunctor renders a functor for printing.
func lowerFunctor(f string) string {
	switch f {
	case EValue, EProject:
		return f
	}
	return strings.ToLower(f)
}
