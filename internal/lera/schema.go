package lera

// Schema inference over LERA terms. The rewriter's external functions
// (REFER, SCHEMA, the type-checking constraints) and the execution engine
// both need to know the output schema of any relational subterm; this file
// computes it from the catalog, handling FIX- and LET-bound names through
// an environment.

import (
	"fmt"
	"strings"

	"lera/internal/catalog"
	"lera/internal/term"
	"lera/internal/types"
	"lera/internal/value"
)

// Schema is the ordered, typed column list of a relational expression.
type Schema struct {
	Cols []catalog.Column
}

// Arity returns the number of columns.
func (s *Schema) Arity() int { return len(s.Cols) }

// Col returns the 1-based column (name, type); ok is false out of range.
func (s *Schema) Col(j int) (catalog.Column, bool) {
	if j < 1 || j > len(s.Cols) {
		return catalog.Column{}, false
	}
	return s.Cols[j-1], true
}

// Index returns the 1-based index of a named column.
func (s *Schema) Index(name string) (int, bool) {
	for i, c := range s.Cols {
		if strings.EqualFold(c.Name, name) {
			return i + 1, true
		}
	}
	return 0, false
}

// String renders "name:TYPE, ..." for traces and tests.
func (s *Schema) String() string {
	parts := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		parts[i] = c.Name + ":" + c.Type.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Env maps FIX/LET-bound relation names to their schemas during
// inference.
type Env map[string]*Schema

func (e Env) clone() Env {
	ne := Env{}
	for k, v := range e {
		ne[k] = v
	}
	return ne
}

// Infer computes the output schema of a relational LERA term.
func Infer(t *term.Term, cat *catalog.Catalog, env Env) (*Schema, error) {
	if env == nil {
		env = Env{}
	}
	switch {
	case IsOp(t, OpRel):
		name, _ := RelName(t)
		if s, ok := env[strings.ToUpper(name)]; ok {
			return s, nil
		}
		if r, ok := cat.Relation(name); ok {
			return &Schema{Cols: r.Columns}, nil
		}
		if v, ok := cat.View(name); ok {
			return &Schema{Cols: v.Columns}, nil
		}
		return nil, fmt.Errorf("lera: unknown relation %q", name)

	case IsOp(t, OpSearch):
		rels := t.Args[0].Args
		schemas := make([]*Schema, len(rels))
		for i, r := range rels {
			s, err := Infer(r, cat, env)
			if err != nil {
				return nil, err
			}
			schemas[i] = s
		}
		out := &Schema{}
		for k, p := range t.Args[2].Args {
			ty, err := TypeOf(p, schemas, cat)
			if err != nil {
				return nil, err
			}
			out.Cols = append(out.Cols, catalog.Column{Name: exprName(p, schemas, k), Type: ty})
		}
		return out, nil

	case IsOp(t, OpFilter):
		return Infer(t.Args[0], cat, env)

	case IsOp(t, OpJoin):
		a, err := Infer(t.Args[0], cat, env)
		if err != nil {
			return nil, err
		}
		b, err := Infer(t.Args[1], cat, env)
		if err != nil {
			return nil, err
		}
		return &Schema{Cols: append(append([]catalog.Column(nil), a.Cols...), b.Cols...)}, nil

	case IsOp(t, OpUnion), IsOp(t, OpInter):
		members := t.Args[0].Args
		if len(members) == 0 {
			return nil, fmt.Errorf("lera: empty %s", t.Functor)
		}
		first, err := Infer(members[0], cat, env)
		if err != nil {
			return nil, err
		}
		for _, m := range members[1:] {
			s, err := Infer(m, cat, env)
			if err != nil {
				return nil, err
			}
			if s.Arity() != first.Arity() {
				return nil, fmt.Errorf("lera: %s members have arities %d and %d", t.Functor, first.Arity(), s.Arity())
			}
		}
		return first, nil

	case IsOp(t, OpDiff):
		a, err := Infer(t.Args[0], cat, env)
		if err != nil {
			return nil, err
		}
		b, err := Infer(t.Args[1], cat, env)
		if err != nil {
			return nil, err
		}
		if a.Arity() != b.Arity() {
			return nil, fmt.Errorf("lera: DIFF operands have arities %d and %d", a.Arity(), b.Arity())
		}
		return a, nil

	case IsOp(t, OpFix):
		name := strings.ToUpper(t.Args[0].Val.S)
		cols := t.Args[2].Args
		// Provisional schema: declared names, ANY types; refine by
		// inferring the body once.
		prov := &Schema{}
		for _, c := range cols {
			prov.Cols = append(prov.Cols, catalog.Column{Name: c.Val.S, Type: cat.Types.AnyT})
		}
		inner := env.clone()
		inner[name] = prov
		body, err := Infer(t.Args[1], cat, inner)
		if err != nil {
			return nil, err
		}
		if body.Arity() != prov.Arity() {
			return nil, fmt.Errorf("lera: FIX %s body arity %d, declared %d", name, body.Arity(), prov.Arity())
		}
		out := &Schema{}
		for i, c := range prov.Cols {
			out.Cols = append(out.Cols, catalog.Column{Name: c.Name, Type: body.Cols[i].Type})
		}
		return out, nil

	case IsOp(t, OpLet):
		name := strings.ToUpper(t.Args[0].Val.S)
		def, err := Infer(t.Args[1], cat, env)
		if err != nil {
			return nil, err
		}
		inner := env.clone()
		inner[name] = def
		return Infer(t.Args[2], cat, inner)

	case IsOp(t, OpNest):
		in, err := Infer(t.Args[0], cat, env)
		if err != nil {
			return nil, err
		}
		nested := map[int]bool{}
		var nestedCols []catalog.Column
		for _, ix := range t.Args[1].Args {
			j := int(ix.Val.I)
			c, ok := in.Col(j)
			if !ok {
				return nil, fmt.Errorf("lera: NEST index %d out of range", j)
			}
			nested[j] = true
			nestedCols = append(nestedCols, c)
		}
		out := &Schema{}
		for j := 1; j <= in.Arity(); j++ {
			if !nested[j] {
				c, _ := in.Col(j)
				out.Cols = append(out.Cols, c)
			}
		}
		var elem *types.Type
		if len(nestedCols) == 1 {
			elem = nestedCols[0].Type
		} else {
			elem = &types.Type{Name: "_nested", Kind: types.Tuple}
			for _, c := range nestedCols {
				elem.Fields = append(elem.Fields, types.Field{Name: c.Name, Type: c.Type})
			}
		}
		out.Cols = append(out.Cols, catalog.Column{
			Name: t.Args[2].Val.S,
			Type: cat.Types.Collection(valueKindSet, elem),
		})
		return out, nil

	case IsOp(t, OpUnnest):
		in, err := Infer(t.Args[0], cat, env)
		if err != nil {
			return nil, err
		}
		j := int(t.Args[1].Val.I)
		c, ok := in.Col(j)
		if !ok {
			return nil, fmt.Errorf("lera: UNNEST index %d out of range", j)
		}
		out := &Schema{Cols: append([]catalog.Column(nil), in.Cols...)}
		elem := cat.Types.AnyT
		if c.Type != nil && c.Type.Kind == types.Collection && c.Type.Elem != nil {
			elem = c.Type.Elem
		}
		out.Cols[j-1] = catalog.Column{Name: c.Name, Type: elem}
		return out, nil
	}
	return nil, fmt.Errorf("lera: %s is not a relational operator", t)
}

// TypeOf infers the type of a qualification or projection expression given
// the schemas of the enclosing operator's relation list.
func TypeOf(e *term.Term, rels []*Schema, cat *catalog.Catalog) (*types.Type, error) {
	switch e.Kind {
	case term.Const:
		return cat.Types.TypeOfValue(e.Val), nil
	case term.Var, term.SeqVar:
		return cat.Types.AnyT, nil
	}
	switch e.Functor {
	case EAttr:
		i, j, _ := AttrIdx(e)
		if i < 1 || i > len(rels) {
			return nil, fmt.Errorf("lera: attribute %d.%d: relation index out of range (1..%d)", i, j, len(rels))
		}
		c, ok := rels[i-1].Col(j)
		if !ok {
			return nil, fmt.Errorf("lera: attribute %d.%d: column index out of range (1..%d)", i, j, rels[i-1].Arity())
		}
		return c.Type, nil

	case EValue:
		// VALUE(oid) has the object's tuple type.
		return TypeOf(e.Args[0], rels, cat)

	case EProject:
		base, err := TypeOf(e.Args[0], rels, cat)
		if err != nil {
			return nil, err
		}
		field := e.Args[1].Val.S
		// Broadcast over collections of tuples (§2.2: "the application
		// of the projection function to a set of tuples gives the set of
		// projected tuples").
		if base != nil && base.Kind == types.Collection && base.Elem != nil {
			if ft, ok := base.Elem.FieldType(field); ok {
				return cat.Types.Collection(base.CollKind, ft), nil
			}
		}
		if ft, ok := base.FieldType(field); ok {
			return ft, nil
		}
		return cat.Types.AnyT, nil

	case ECall:
		name, _ := CallName(e)
		// Attribute-as-function: NAME(x) on a tuple- or object-typed x.
		if len(e.Args) == 2 {
			base, err := TypeOf(e.Args[1], rels, cat)
			if err != nil {
				return nil, err
			}
			if base != nil && base.Kind == types.Collection && base.Elem != nil {
				if ft, ok := base.Elem.FieldType(name); ok {
					return cat.Types.Collection(base.CollKind, ft), nil
				}
			}
			if ft, ok := base.FieldType(name); ok {
				return ft, nil
			}
		}
		return builtinResultType(name, e.Args[1:], rels, cat)

	case EAnds, EOrs, ENot, "=", "<>", "<", ">", "<=", ">=":
		return cat.Types.Bool, nil
	case "+", "-", "*", "/", "NEG":
		return cat.Types.Numeric, nil
	}
	return builtinResultType(e.Functor, e.Args, rels, cat)
}

// builtinResultType types the built-in ADT functions that qualifications
// use; unknown functions type as ANY.
func builtinResultType(name string, args []*term.Term, rels []*Schema, cat *catalog.Catalog) (*types.Type, error) {
	switch strings.ToUpper(name) {
	case "MEMBER", "ISEMPTY", "INCLUDE", "EQUAL", "ALL", "EXIST", "OVERLAPS":
		return cat.Types.Bool, nil
	case "COUNT", "LENGTH":
		return cat.Types.Int, nil
	case "CONCAT":
		return cat.Types.Char, nil
	case "UNION", "INTERSECTION", "DIFFERENCE", "INSERT", "REMOVE":
		if len(args) >= 1 {
			return TypeOf(args[0], rels, cat)
		}
		return cat.Types.AnyT, nil
	case "CHOICE", "FIRST", "LAST":
		if len(args) >= 1 {
			t, err := TypeOf(args[0], rels, cat)
			if err != nil {
				return nil, err
			}
			if t != nil && t.Kind == types.Collection && t.Elem != nil {
				return t.Elem, nil
			}
		}
		return cat.Types.AnyT, nil
	case "MAKESET":
		if len(args) >= 1 {
			t, err := TypeOf(args[0], rels, cat)
			if err != nil {
				return nil, err
			}
			return cat.Types.Collection(valueKindSet, t), nil
		}
		return cat.Types.AnyT, nil
	case term.FSet, term.FBag, term.FList, term.FArray:
		elem := cat.Types.AnyT
		if len(args) > 0 {
			t, err := TypeOf(args[0], rels, cat)
			if err == nil {
				elem = t
			}
		}
		return cat.Types.Collection(kindOfConstructor(name), elem), nil
	}
	return cat.Types.AnyT, nil
}

// exprName derives an output column name from a projection expression:
// source column names survive ATTR references, PROJECT/CALL use the field
// or function name, anything else gets a positional name.
func exprName(p *term.Term, rels []*Schema, k int) string {
	if i, j, ok := AttrIdx(p); ok && i >= 1 && i <= len(rels) {
		if c, ok := rels[i-1].Col(j); ok {
			return c.Name
		}
	}
	if IsOp(p, EProject) {
		return p.Args[1].Val.S
	}
	if name, ok := CallName(p); ok {
		return name
	}
	return fmt.Sprintf("col%d", k+1)
}

// valueKindSet avoids importing value in two files for one constant.
const valueKindSet = value.KSet

func kindOfConstructor(name string) value.Kind {
	switch strings.ToUpper(name) {
	case term.FSet:
		return value.KSet
	case term.FBag:
		return value.KBag
	case term.FList:
		return value.KList
	case term.FArray:
		return value.KArray
	}
	return value.KNull
}
