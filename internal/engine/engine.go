// Package engine evaluates LERA terms over an in-memory database: the
// measurement substrate standing in for the paper's EDS parallel server
// (see DESIGN.md §3). It implements every LERA operator — the compound
// search with hash-join planning, n-ary union/intersection, difference,
// nest/unnest, LET and the fixpoint operator with both naive and
// semi-naive iteration — plus the expression language of qualifications
// and projections, including object dereference (VALUE), tuple attribute
// projection with collection broadcast, and ADT function calls.
//
// The engine keeps work counters (tuples scanned, join pairs produced,
// tuples emitted, fixpoint iterations); the benchmark harness reports
// these machine-independent numbers alongside wall-clock timings.
package engine

import (
	"context"
	"fmt"
	"strings"
	"time"

	"lera/internal/catalog"
	"lera/internal/guard"
	"lera/internal/term"
	"lera/internal/value"
)

// Relation is an evaluated relation: a bag of rows. Width carries the
// declared arity for the empty case: operators that know their output
// width record it, so an empty result still answers Arity correctly
// instead of collapsing to 0 (which under-reported operator width in
// OpStats and EXPLAIN ANALYZE).
type Relation struct {
	Rows  [][]value.Value
	Width int
}

// Arity returns the width of the relation: the row width when rows exist,
// the declared Width otherwise.
func (r *Relation) Arity() int {
	if len(r.Rows) > 0 {
		return len(r.Rows[0])
	}
	return r.Width
}

// Key encodes a row for hashing and duplicate elimination. This is the
// retained oracle engine's key; the batched engine uses 64-bit hashed
// keys instead (hash.go). The builder is pre-sized so the baseline the
// batch engine is measured against isn't dominated by avoidable
// reallocation.
func rowKey(row []value.Value) string {
	var sb strings.Builder
	sb.Grow(16 * len(row))
	for _, v := range row {
		sb.WriteString(v.Key())
		sb.WriteByte('|')
	}
	return sb.String()
}

// Dedup returns the relation with duplicate rows removed (set semantics).
func (r *Relation) Dedup() *Relation {
	seen := map[string]bool{}
	out := &Relation{Width: r.Width}
	for _, row := range r.Rows {
		k := rowKey(row)
		if !seen[k] {
			seen[k] = true
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// Counters aggregate engine work.
type Counters struct {
	Scanned       int // rows read from stored relations
	JoinPairs     int // rows produced by join steps (before final filter)
	Emitted       int // rows emitted by operators
	PredEvals     int // qualification conjuncts evaluated against rows
	FixIterations int // fixpoint rounds executed
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Scanned += other.Scanned
	c.JoinPairs += other.JoinPairs
	c.Emitted += other.Emitted
	c.PredEvals += other.PredEvals
	c.FixIterations += other.FixIterations
}

// FixMode selects the fixpoint evaluation strategy.
type FixMode int

const (
	// SemiNaive evaluates recursive members against the delta of the
	// previous round (per-occurrence for non-linear recursion).
	SemiNaive FixMode = iota
	// Naive re-evaluates the whole body against the full accumulated
	// relation every round.
	Naive
)

// DB is an in-memory database instance: stored relations, the object
// store, and the catalog for schema information.
type DB struct {
	Cat     *catalog.Catalog
	Objects map[int64]value.Value
	Mode    FixMode
	Count   Counters
	// Limits is the guard budget enforced during evaluation: MaxRows caps
	// cumulative materialized rows per EvalCtx call, MaxFixIterations caps
	// each fixpoint instance. The zero value means "defaults" (see
	// internal/guard).
	Limits guard.Limits
	// CollectStats enables per-operator execution statistics (stats.go):
	// each EvalCtx builds an OpStats tree retrievable with LastExecStats.
	// Off, evaluation pays one nil check per operator and zero
	// allocations.
	CollectStats bool
	// Parallelism sizes the intra-query worker pool (parallel.go):
	// 0 = runtime.GOMAXPROCS(0), 1 = the serial path, n > 1 = n workers.
	// Results, counters and stats trees are bit-identical at every
	// setting — workers merge in deterministic task order (docs/PERF.md,
	// "Parallel execution").
	Parallelism int
	// Injector, when non-nil, is hit (by uppercase function name) before
	// every ADT-function invocation during evaluation, so chaos tests can
	// fire deterministic faults inside live executions (see
	// guard/faultinject.go for the determinism contract). Injected
	// faults surface as typed ExternalErrors, like real ADT failures.
	Injector *guard.Injector
	// RowEngine selects the retained tuple-at-a-time oracle engine
	// instead of the default batched engine — the execution-side analogue
	// of the rewriter's full-scan oracle. Rows, Counters and EXPLAIN
	// ANALYZE OpStats trees are bit-identical between the two engines at
	// every BatchSize and Parallelism setting (docs/PERF.md, "Batched
	// execution & relation indexes").
	RowEngine bool
	// BatchSize is the row-batch granularity of the batched engine: hot
	// loops process rows in batches of this size with one amortized
	// cancellation tick per batch. 0 means DefaultBatchSize. Results
	// never depend on it.
	BatchSize int
	// SpillDir is the directory the memory governor moves over-grant
	// operator state into (spill.go): each EvalCtx creates a private temp
	// directory beneath it on first spill and removes it when the
	// evaluation ends. Empty means spilling is disabled — an operator
	// exceeding Limits.MaxMemBytes then fails with guard.ErrMemBudget.
	SpillDir string
	// Spill accumulates the out-of-core counters across evaluations,
	// like Count. Kept outside Counters because Counters are part of the
	// bit-identity contract between spilled and in-memory runs.
	Spill SpillStats

	rels      map[string]*Relation
	idx       *indexSet  // persistent per-relation join indexes, shared across forks
	g         *evalGuard // per-EvalCtx guard state (nil outside a call)
	lastStats *OpStats   // stats tree of the last CollectStats run
	// lastRowsCharged is the row-budget total of the last EvalCtx call,
	// captured before the guard state is torn down so callers can report
	// budget consumption even for queries that stayed under their cap.
	lastRowsCharged int64
	// lastMemPeak is the tracked-memory high-water mark of the last
	// EvalCtx call (guard.Budget.MemPeak), captured like lastRowsCharged.
	lastMemPeak int64
}

// evalGuard is the per-evaluation guard state: the cancellation context,
// an amortizing tick counter for the tuple-at-a-time hot path, the
// cumulative materialized-row account, the worker pool, and the open
// per-operator stats frame (nil unless CollectStats). The context, tick
// and stats frame are per-worker (each parallel worker clone owns an
// evalGuard); the row Budget and the pool are shared by every worker of
// the evaluation, so the row cap fires promptly from any of them.
type evalGuard struct {
	ctx  context.Context
	lim  guard.Limits
	tick int
	rows *guard.Budget
	pool *workerPool
	cur  *OpStats
	// spill is the per-evaluation spill-directory handle (spill.go),
	// shared by every worker clone like the Budget so all spill files of
	// one evaluation unwind together.
	spill *spillState
}

// guardTickInterval amortizes context checks in the row hot path: the
// context is consulted once per this many ticks (power of two).
const guardTickInterval = 256

// tickRow is the amortized cancellation check, called once per row (or
// join pair) in the evaluation hot loops. It only touches the context
// every guardTickInterval calls so the fast path stays an increment and a
// mask.
func (db *DB) tickRow() error {
	g := db.g
	if g == nil {
		return nil
	}
	g.tick++
	if g.tick&(guardTickInterval-1) != 0 {
		return nil
	}
	return guard.CheckCtx(g.ctx)
}

// checkCtx is the unamortized cancellation check for coarse-grained points
// (fixpoint rounds).
func (db *DB) checkCtx() error {
	if db.g == nil {
		return nil
	}
	return guard.CheckCtx(db.g.ctx)
}

// chargeRows charges n freshly materialized rows against the shared row
// budget of the evaluation.
func (db *DB) chargeRows(n int) error {
	g := db.g
	if g == nil {
		return nil
	}
	if err := g.rows.ChargeRows(n, g.lim.MaxRows); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	return nil
}

// New creates an empty database over a catalog.
func New(cat *catalog.Catalog) *DB {
	return &DB{Cat: cat, Objects: map[int64]value.Value{}, rels: map[string]*Relation{}, idx: newIndexSet()}
}

// Fork returns a database sharing this one's stored relations, object
// store and catalog by reference, with private counters, limits, stats
// and parallelism — the snapshot-sharing primitive behind a session pool:
// one loaded database serves many concurrent evaluators, each owning its
// mutable evaluation state. The shared storage is treated as immutable;
// forks serving concurrent readers must not Load/Insert/SetObject (the
// server enforces this by accepting only SELECTs). Mode, Limits,
// Parallelism, Injector and the engine knobs (RowEngine, BatchSize) are
// copied as defaults the fork may override; the persistent relation
// indexes are shared, so a fork pool probes warm indexes instead of
// rebuilding per fork.
func (db *DB) Fork() *DB {
	return &DB{
		Cat:         db.Cat,
		Objects:     db.Objects,
		Mode:        db.Mode,
		Limits:      db.Limits,
		Parallelism: db.Parallelism,
		Injector:    db.Injector,
		RowEngine:   db.RowEngine,
		BatchSize:   db.BatchSize,
		SpillDir:    db.SpillDir,
		rels:        db.rels,
		idx:         db.idx,
	}
}

// Load stores rows under a relation name, validating arity against the
// catalog when the relation is declared.
func (db *DB) Load(name string, rows [][]value.Value) error {
	if rel, ok := db.Cat.Relation(name); ok {
		for i, row := range rows {
			if len(row) != len(rel.Columns) {
				return fmt.Errorf("engine: %s row %d has %d values, schema has %d columns", name, i, len(row), len(rel.Columns))
			}
		}
	}
	stored := &Relation{Rows: rows}
	if rel, ok := db.Cat.Relation(name); ok {
		stored.Width = len(rel.Columns)
		rel.EstRows = len(rows)
		db.Cat.BumpDataVersion()
	}
	key := strings.ToUpper(name)
	db.rels[key] = stored
	if db.idx != nil {
		// Drop cached indexes of this relation explicitly: the data-version
		// bump above covers declared relations, this covers the rest.
		db.idx.invalidate(key)
	}
	return nil
}

// Insert appends a single row.
func (db *DB) Insert(name string, row []value.Value) error {
	key := strings.ToUpper(name)
	r := db.rels[key]
	if r == nil {
		r = &Relation{}
		if rel, ok := db.Cat.Relation(name); ok {
			r.Width = len(rel.Columns)
		}
		db.rels[key] = r
	}
	if rel, ok := db.Cat.Relation(name); ok && len(row) != len(rel.Columns) {
		return fmt.Errorf("engine: %s: %d values for %d columns", name, len(row), len(rel.Columns))
	}
	r.Rows = append(r.Rows, row)
	if rel, ok := db.Cat.Relation(name); ok {
		rel.EstRows = len(r.Rows)
		db.Cat.BumpDataVersion()
	}
	if db.idx != nil {
		db.idx.invalidate(key)
	}
	return nil
}

// SetObject stores an object value under an OID.
func (db *DB) SetObject(oid int64, v value.Value) { db.Objects[oid] = v }

// Stored returns the stored relation (nil if absent).
func (db *DB) Stored(name string) *Relation { return db.rels[strings.ToUpper(name)] }

// ResetCounters zeroes the work counters.
func (db *DB) ResetCounters() { db.Count = Counters{} }

// env binds FIX/LET names to evaluated relations during evaluation.
type env map[string]*Relation

func (e env) clone() env {
	ne := env{}
	for k, v := range e {
		ne[k] = v
	}
	return ne
}

// Eval evaluates a relational LERA term with no cancellation (see
// EvalCtx).
func (db *DB) Eval(t *term.Term) (*Relation, error) {
	return db.EvalCtx(context.Background(), t)
}

// EvalCtx evaluates a relational LERA term under a cancellation context
// and the DB's Limits. Cancellation is checked amortized in the
// tuple-at-a-time hot path (every guardTickInterval rows) and at every
// fixpoint round; the row budget is charged wherever an operator
// materializes its output.
func (db *DB) EvalCtx(ctx context.Context, t *term.Term) (*Relation, error) {
	prev := db.g
	db.g = &evalGuard{ctx: ctx, lim: db.Limits, rows: &guard.Budget{}, spill: &spillState{base: db.SpillDir}}
	if w := db.Workers(); w > 1 {
		db.g.pool = &workerPool{sem: make(chan struct{}, w-1)}
	}
	if db.CollectStats {
		root := &OpStats{Op: "eval", Incl: db.Count}
		db.g.cur = root
		db.lastStats = root
		defer func(start time.Time) {
			// Close the root the same way statsExit closes an operator.
			snap := root.Incl
			root.Incl = db.Count
			root.Incl.Scanned -= snap.Scanned
			root.Incl.JoinPairs -= snap.JoinPairs
			root.Incl.Emitted -= snap.Emitted
			root.Incl.PredEvals -= snap.PredEvals
			root.Incl.FixIterations -= snap.FixIterations
			root.Duration = time.Since(start)
		}(time.Now())
	}
	defer func() {
		db.lastRowsCharged = int64(db.g.rows.Rows())
		db.lastMemPeak = db.g.rows.MemPeak()
		// Spill files are evaluation-scoped scratch: this unwind runs on
		// success, error, cancellation and panic alike, which is what makes
		// "no temp files after drain" hold — the server's drain just waits
		// for in-flight evaluations to finish unwinding.
		db.g.spill.cleanup()
		db.g = prev
	}()
	return db.eval(t, env{})
}

// LastRowsCharged reports the rows charged against the budget by the
// most recent EvalCtx call — the shared Budget total, so parallel
// workers are all accounted for.
func (db *DB) LastRowsCharged() int64 { return db.lastRowsCharged }

// LastMemPeak reports the tracked-memory high-water mark of the most
// recent EvalCtx call, across all workers. Zero when the memory governor
// was off.
func (db *DB) LastMemPeak() int64 { return db.lastMemPeak }

// eval dispatches one operator evaluation, wrapping it in a per-operator
// stats frame when collection is on. The disabled path is the g.cur nil
// check and a direct call — no allocation, no time syscall.
func (db *DB) eval(t *term.Term, e env) (*Relation, error) {
	if g := db.g; g != nil && g.cur != nil && t.Kind == term.Fun {
		node, parent := db.statsEnter(t.Functor)
		start := time.Now()
		out, err := db.evalOp(t, e)
		db.statsExit(node, parent, start, out)
		return out, err
	}
	return db.evalOp(t, e)
}

// evalOp dispatches one operator. REL, LET and FIX are pure control flow
// shared by both engines (their recursive eval calls re-dispatch, so a
// fixpoint body runs batched under the batch engine and row-at-a-time
// under the oracle); the data-moving operators route to the batched
// implementations (batch.go, batchsearch.go) by default, or to the
// retained tuple-at-a-time oracle when RowEngine is set.
func (db *DB) evalOp(t *term.Term, e env) (*Relation, error) {
	if t.Kind != term.Fun {
		return nil, fmt.Errorf("engine: cannot evaluate %s", t)
	}
	switch t.Functor {
	case "REL":
		name := strings.ToUpper(t.Args[0].Val.S)
		if name == strings.ToUpper(deltaName) {
			db.setStatsDetail("(delta)")
		} else {
			db.setStatsDetail(name)
		}
		if r, ok := e[name]; ok {
			return r, nil
		}
		if r, ok := db.rels[name]; ok {
			db.Count.Scanned += len(r.Rows)
			return r, nil
		}
		if v, ok := db.Cat.View(name); ok {
			return db.eval(v.Def, e)
		}
		return nil, fmt.Errorf("engine: unknown relation %q", name)

	case "LET":
		def, err := db.eval(t.Args[1], e)
		if err != nil {
			return nil, err
		}
		inner := e.clone()
		inner[strings.ToUpper(t.Args[0].Val.S)] = def
		return db.eval(t.Args[2], inner)

	case "FIX":
		return db.evalFix(t, e)
	}
	if db.RowEngine {
		return db.evalOpRow(t, e)
	}
	return db.evalOpBatch(t, e)
}

// evalOpRow is the retained tuple-at-a-time oracle engine: per-row
// function dispatch, string row keys, no persistent indexes. It is kept
// bit-identical in results, Counters and OpStats to the batched engine,
// exactly as the rewriter keeps its full-scan match loop as the oracle
// for the indexed one.
func (db *DB) evalOpRow(t *term.Term, e env) (*Relation, error) {
	switch t.Functor {
	case "SEARCH":
		return db.evalSearch(t, e)

	case "FILTER":
		in, err := db.eval(t.Args[0], e)
		if err != nil {
			return nil, err
		}
		kept, err := db.mapRowChunks(in.Rows, func(w *DB, chunk [][]value.Value) ([][]value.Value, error) {
			var out [][]value.Value
			for _, row := range chunk {
				if err := w.tickRow(); err != nil {
					return nil, err
				}
				ok, err := w.evalBool(t.Args[1], [][]value.Value{row})
				if err != nil {
					return nil, err
				}
				if ok {
					out = append(out, row)
				}
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		out := &Relation{Rows: kept, Width: in.Arity()}
		out = out.Dedup()
		db.Count.Emitted += len(out.Rows)
		if err := db.chargeRows(len(out.Rows)); err != nil {
			return nil, err
		}
		return out, nil

	case "JOIN":
		left, err := db.eval(t.Args[0], e)
		if err != nil {
			return nil, err
		}
		right, err := db.eval(t.Args[1], e)
		if err != nil {
			return nil, err
		}
		out := &Relation{Width: left.Arity() + right.Arity()}
		for _, l := range left.Rows {
			for _, r := range right.Rows {
				if err := db.tickRow(); err != nil {
					return nil, err
				}
				db.Count.JoinPairs++
				ok, err := db.evalBool(t.Args[2], [][]value.Value{l, r})
				if err != nil {
					return nil, err
				}
				if ok {
					out.Rows = append(out.Rows, append(append([]value.Value(nil), l...), r...))
				}
			}
		}
		out = out.Dedup()
		db.Count.Emitted += len(out.Rows)
		if err := db.chargeRows(len(out.Rows)); err != nil {
			return nil, err
		}
		return out, nil

	case "UNIONN":
		// Members are independent: evaluate them on the worker pool and
		// merge in member order, so the pre-dedup row sequence — and with
		// it the output — is identical to the serial loop.
		rels, err := db.evalMembers(t.Args[0].Args, e)
		if err != nil {
			return nil, err
		}
		out := &Relation{}
		for _, r := range rels {
			if out.Width == 0 {
				out.Width = r.Arity()
			}
			out.Rows = append(out.Rows, r.Rows...)
		}
		out = out.Dedup()
		db.Count.Emitted += len(out.Rows)
		if err := db.chargeRows(len(out.Rows)); err != nil {
			return nil, err
		}
		return out, nil

	case "INTERN":
		members := t.Args[0].Args
		if len(members) == 0 {
			return nil, fmt.Errorf("engine: empty intersection")
		}
		acc, err := db.eval(members[0], e)
		if err != nil {
			return nil, err
		}
		keys := map[string]bool{}
		for _, row := range acc.Rows {
			keys[rowKey(row)] = true
		}
		for _, m := range members[1:] {
			r, err := db.eval(m, e)
			if err != nil {
				return nil, err
			}
			next := map[string]bool{}
			for _, row := range r.Rows {
				k := rowKey(row)
				if keys[k] {
					next[k] = true
				}
			}
			keys = next
		}
		out := &Relation{Width: acc.Arity()}
		seen := map[string]bool{}
		for _, row := range acc.Rows {
			k := rowKey(row)
			if keys[k] && !seen[k] {
				seen[k] = true
				out.Rows = append(out.Rows, row)
			}
		}
		db.Count.Emitted += len(out.Rows)
		if err := db.chargeRows(len(out.Rows)); err != nil {
			return nil, err
		}
		return out, nil

	case "DIFF":
		left, err := db.eval(t.Args[0], e)
		if err != nil {
			return nil, err
		}
		right, err := db.eval(t.Args[1], e)
		if err != nil {
			return nil, err
		}
		drop := map[string]bool{}
		for _, row := range right.Rows {
			drop[rowKey(row)] = true
		}
		out := &Relation{Width: left.Arity()}
		seen := map[string]bool{}
		for _, row := range left.Rows {
			k := rowKey(row)
			if !drop[k] && !seen[k] {
				seen[k] = true
				out.Rows = append(out.Rows, row)
			}
		}
		db.Count.Emitted += len(out.Rows)
		if err := db.chargeRows(len(out.Rows)); err != nil {
			return nil, err
		}
		return out, nil

	case "NEST":
		return db.evalNest(t, e)

	case "UNNEST":
		return db.evalUnnest(t, e)
	}
	return nil, fmt.Errorf("engine: unknown operator %s", t.Functor)
}

func (db *DB) evalNest(t *term.Term, e env) (*Relation, error) {
	in, err := db.eval(t.Args[0], e)
	if err != nil {
		return nil, err
	}
	nested := map[int]bool{}
	var nestedIdx []int
	for _, ix := range t.Args[1].Args {
		j := int(ix.Val.I)
		nested[j] = true
		nestedIdx = append(nestedIdx, j)
	}
	type group struct {
		key   []value.Value
		elems []value.Value
	}
	order := []string{}
	groups := map[string]*group{}
	for _, row := range in.Rows {
		if len(nestedIdx) > 0 && nestedIdx[len(nestedIdx)-1] > len(row) {
			return nil, fmt.Errorf("engine: NEST index out of range for row of width %d", len(row))
		}
		var key []value.Value
		for j := 1; j <= len(row); j++ {
			if !nested[j] {
				key = append(key, row[j-1])
			}
		}
		var elem value.Value
		if len(nestedIdx) == 1 {
			elem = row[nestedIdx[0]-1]
		} else {
			names := make([]string, len(nestedIdx))
			vals := make([]value.Value, len(nestedIdx))
			for i, j := range nestedIdx {
				names[i] = fmt.Sprintf("a%d", j)
				vals[i] = row[j-1]
			}
			elem = value.NewTuple(names, vals)
		}
		k := rowKey(key)
		g, ok := groups[k]
		if !ok {
			g = &group{key: key}
			groups[k] = g
			order = append(order, k)
		}
		g.elems = append(g.elems, elem)
	}
	out := &Relation{}
	if w := in.Arity(); w > 0 {
		out.Width = w - len(nestedIdx) + 1
	}
	for _, k := range order {
		g := groups[k]
		out.Rows = append(out.Rows, append(append([]value.Value(nil), g.key...), value.NewSet(g.elems...)))
	}
	db.Count.Emitted += len(out.Rows)
	if err := db.chargeRows(len(out.Rows)); err != nil {
		return nil, err
	}
	return out, nil
}

func (db *DB) evalUnnest(t *term.Term, e env) (*Relation, error) {
	in, err := db.eval(t.Args[0], e)
	if err != nil {
		return nil, err
	}
	j := int(t.Args[1].Val.I)
	out := &Relation{Width: in.Arity()}
	for _, row := range in.Rows {
		if err := db.tickRow(); err != nil {
			return nil, err
		}
		if j < 1 || j > len(row) {
			return nil, fmt.Errorf("engine: UNNEST index %d out of range", j)
		}
		coll := row[j-1]
		if !coll.K.IsCollection() {
			return nil, fmt.Errorf("engine: UNNEST column %d is %s, not a collection", j, coll.K)
		}
		for _, el := range coll.Elems {
			nrow := append([]value.Value(nil), row...)
			nrow[j-1] = el
			out.Rows = append(out.Rows, nrow)
		}
	}
	out = out.Dedup()
	db.Count.Emitted += len(out.Rows)
	if err := db.chargeRows(len(out.Rows)); err != nil {
		return nil, err
	}
	return out, nil
}
