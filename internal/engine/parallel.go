package engine

// Intra-query parallelism: a per-evaluation worker pool that fans
// independent units of work — union members, semi-naive recursive members
// within a round, hash-join build partitions and probe/filter/projection
// row chunks — across DB.Parallelism goroutines.
//
// The design invariant is determinism: every parallel site merges its
// results in task/partition index order, never completion order, so rows,
// Dedup inputs, Counters and the OpStats tree are bit-identical to the
// serial path at any pool size. Each task runs on a shallow worker clone
// of the DB that shares the read-only state (stored relations, catalog,
// object store) and the cumulative guard.Budget, but owns its Counters,
// amortized cancellation tick and stats frame — the row hot loops stay
// synchronization-free. On join, worker counters are added and worker
// stats children are spliced into the open frame in task order.
//
// Error semantics: the first failing task cancels the group's context so
// sibling workers stop promptly (this is how ErrRowBudget and deadline
// trips propagate); the reported error is the lowest-indexed one that is
// not a secondary group cancellation. A query errs under the pool iff it
// errs serially, but budget-error detail (counts in the message) and the
// counters accumulated on the error path may differ, since siblings that
// the serial loop would never have reached can have partially run.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"lera/internal/guard"
	"lera/internal/term"
	"lera/internal/value"
)

// workerPool bounds the extra goroutines of one evaluation. The
// semaphore holds Workers()-1 tokens: every runTasks caller works through
// tasks itself, so nested parallel sites degrade gracefully to inline
// execution when the pool is saturated — there is no blocking acquire and
// therefore no starvation across nesting levels.
type workerPool struct {
	sem chan struct{}
}

// parallelMinRows is the chunked-loop threshold: row loops below it run
// serially, since the fan-out overhead would exceed the row work. The
// threshold never affects results — only whether the pool is used.
const parallelMinRows = 2048

// Workers returns the effective worker-pool size: DB.Parallelism when
// positive, else runtime.GOMAXPROCS(0). 1 selects the serial path.
func (db *DB) Workers() int {
	if db.Parallelism > 0 {
		return db.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// canParallel reports whether a site with n independent tasks should fan
// out: the evaluation must have a pool (EvalCtx sizes one when Workers()
// exceeds 1) and more than one task.
func (db *DB) canParallel(n int) bool {
	return n > 1 && db.g != nil && db.g.pool != nil
}

// worker returns a shallow evaluation clone for one parallel task: shared
// read-only database state and shared row budget/pool, private counters,
// tick and stats frame.
func (db *DB) worker(ctx context.Context) *DB {
	g := db.g
	w := &DB{
		Cat:          db.Cat,
		Objects:      db.Objects,
		Mode:         db.Mode,
		Limits:       db.Limits,
		CollectStats: db.CollectStats,
		Parallelism:  db.Parallelism,
		RowEngine:    db.RowEngine,
		BatchSize:    db.BatchSize,
		SpillDir:     db.SpillDir,
		rels:         db.rels,
		idx:          db.idx,
		Injector:     db.Injector,
	}
	// Workers share the evaluation's spill handle like the Budget, so all
	// their spill files land in (and unwind with) the same temp dir.
	wg := &evalGuard{ctx: ctx, lim: g.lim, rows: g.rows, pool: g.pool, spill: g.spill}
	if g.cur != nil {
		// A synthetic frame collects the task's stats children for the
		// in-order splice of mergeWorker.
		wg.cur = &OpStats{}
	}
	w.g = wg
	return w
}

// mergeWorker folds a finished worker clone back into db. Called in task
// index order: counter addition is exact, and stats children splice into
// the open frame with the usual MaxOpChildren bound, so the resulting
// tree equals the serial one.
func (db *DB) mergeWorker(w *DB) {
	db.Count.Add(w.Count)
	db.Spill.Add(w.Spill)
	g := db.g
	if g == nil || g.cur == nil || w.g == nil || w.g.cur == nil {
		return
	}
	for _, ch := range w.g.cur.Children {
		if len(g.cur.Children) >= MaxOpChildren {
			g.cur.Truncated++
		} else {
			g.cur.Children = append(g.cur.Children, ch)
		}
	}
	g.cur.Truncated += w.g.cur.Truncated
}

// runTasks evaluates n independent tasks and merges their worker state
// back in task order. With no pool (or a single task) it degenerates to
// the serial loop, including its early-abort-on-error behavior. With a
// pool, every task gets its own worker clone; the calling goroutine works
// alongside up to Workers()-1 helpers drawn non-blockingly from the
// shared semaphore.
func (db *DB) runTasks(n int, task func(w *DB, i int) error) error {
	if !db.canParallel(n) {
		for i := 0; i < n; i++ {
			if err := task(db, i); err != nil {
				return err
			}
		}
		return nil
	}
	g := db.g
	ctx, cancel := context.WithCancel(g.ctx)
	defer cancel()
	workers := make([]*DB, n)
	for i := range workers {
		workers[i] = db.worker(ctx)
	}
	errs := make([]error, n)
	var next atomic.Int64
	run := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			// Once the group is canceled (a sibling failed, or the
			// caller's context fired), unstarted tasks record the
			// cancellation instead of running: the group then reports an
			// error, so their missing results are never consumed.
			if ctx.Err() != nil {
				errs[i] = guard.CheckCtx(ctx)
				continue
			}
			if err := task(workers[i], i); err != nil {
				errs[i] = err
				cancel() // stop siblings promptly
			}
		}
	}
	var wg sync.WaitGroup
	for spawned := 0; spawned < n-1; spawned++ {
		select {
		case g.pool.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-g.pool.sem }()
				run()
			}()
			continue
		default:
		}
		break
	}
	run()
	wg.Wait()
	for _, w := range workers {
		db.mergeWorker(w)
	}
	// Report the lowest-indexed real error; a bare context.Canceled is
	// only chosen when every failure is one (i.e. the caller's own
	// context was canceled), since group cancellation after a primary
	// error also surfaces as Canceled in sibling tasks.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return first
}

// evalMembers evaluates n independent member terms and returns their
// results in member order, fanning out to the worker pool when available.
func (db *DB) evalMembers(members []*term.Term, e env) ([]*Relation, error) {
	out := make([]*Relation, len(members))
	err := db.runTasks(len(members), func(w *DB, i int) error {
		r, err := w.eval(members[i], e)
		out[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// hashTable is the build side of a hash join: one key→rows map per
// partition. The serial path builds a single partition; the parallel path
// builds Workers() partitions keyed by the hash of the join key, each
// owned end-to-end by one worker, so the per-key row order equals the
// serial insertion order regardless of scheduling.
type hashTable struct {
	parts []map[string][][]value.Value
	mod   uint64
}

func (h *hashTable) lookup(key string) [][]value.Value {
	if len(h.parts) == 1 {
		return h.parts[0][key]
	}
	return h.parts[value.HashString(value.HashOffset, key)%h.mod][key]
}

// buildHashTable indexes rows by the columns in keyIdx. Small builds (or
// pool-less evaluations) produce the single-map table of the serial
// engine; large builds under a pool are partitioned: a first chunked pass
// extracts each row's key and partition, then one task per partition
// inserts its rows in row order.
func (db *DB) buildHashTable(rows [][]value.Value, keyIdx []int) (*hashTable, error) {
	key := func(row []value.Value) string {
		var kb []value.Value
		for _, k := range keyIdx {
			kb = append(kb, row[k])
		}
		return rowKey(kb)
	}
	if !db.canParallel(2) || len(rows) < parallelMinRows {
		build := map[string][][]value.Value{}
		for _, row := range rows {
			k := key(row)
			build[k] = append(build[k], row)
		}
		return &hashTable{parts: []map[string][][]value.Value{build}, mod: 1}, nil
	}
	p := db.Workers()
	keys := make([]string, len(rows))
	part := make([]uint32, len(rows))
	cks := chunkRanges(len(rows), p)
	err := db.runTasks(len(cks), func(w *DB, i int) error {
		for j := cks[i][0]; j < cks[i][1]; j++ {
			k := key(rows[j])
			keys[j] = k
			part[j] = uint32(value.HashString(value.HashOffset, k) % uint64(p))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	ht := &hashTable{parts: make([]map[string][][]value.Value, p), mod: uint64(p)}
	err = db.runTasks(p, func(w *DB, pi int) error {
		m := map[string][][]value.Value{}
		for j, row := range rows {
			if part[j] == uint32(pi) {
				m[keys[j]] = append(m[keys[j]], row)
			}
		}
		ht.parts[pi] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ht, nil
}

// chunkRanges splits n items into at most p near-equal contiguous
// [start, end) ranges.
func chunkRanges(n, p int) [][2]int {
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	out := make([][2]int, 0, p)
	for i := 0; i < p; i++ {
		start, end := i*n/p, (i+1)*n/p
		if start < end {
			out = append(out, [2]int{start, end})
		}
	}
	return out
}

// mapRowChunks runs fn over contiguous chunks of rows on worker clones
// and concatenates the per-chunk outputs in chunk order — identical to
// fn(db, rows) run serially, which is exactly what happens below the
// parallelMinRows threshold or without a pool.
func (db *DB) mapRowChunks(rows [][]value.Value, fn func(w *DB, chunk [][]value.Value) ([][]value.Value, error)) ([][]value.Value, error) {
	if !db.canParallel(2) || len(rows) < parallelMinRows {
		return fn(db, rows)
	}
	cks := chunkRanges(len(rows), db.Workers())
	outs := make([][][]value.Value, len(cks))
	err := db.runTasks(len(cks), func(w *DB, i int) error {
		o, err := fn(w, rows[cks[i][0]:cks[i][1]])
		outs[i] = o
		return err
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	merged := make([][]value.Value, 0, total)
	for _, o := range outs {
		merged = append(merged, o...)
	}
	return merged, nil
}
