package engine

// 64-bit hashed row keys — the batched engine's replacement for the
// oracle's rowKey strings. A row hashes to one uint64 (FNV-1a over the
// per-value structural hashes); equality is decided by a collision-checked
// structural comparison that reproduces rowKey-string equality exactly
// without materializing the key:
//
//   - ints and reals compare by their float64 bit pattern (Key encodes
//     both through strconv.FormatFloat of the float64 value, so 5 and 5.0
//     collapse while -0.0 and 0.0 stay distinct), with every NaN payload
//     treated as equal, mirroring FormatFloat's single "NaN" rendering;
//   - tuples compare field names as Key does — by their ","-joined
//     concatenation — so the (pathological) name lists that Key cannot
//     distinguish stay indistinguishable here too;
//   - everything else compares structurally, which is what the
//     length-prefixed, self-delimiting Key encoding boils down to.
//
// value.Hash is consistent with this equality (Key-equal values hash
// identically), so hash buckets only ever split rowKey-distinct rows.

import (
	"math"
	"strings"

	"lera/internal/value"
)

// rowHash folds a row into a single 64-bit hash. Rows with equal rowKey
// strings hash identically.
func rowHash(row []value.Value) uint64 {
	h := uint64(value.HashOffset)
	for _, v := range row {
		h = value.HashUint(h, v.Hash())
	}
	return h
}

// hashKey folds the key columns of a row (by index) into a 64-bit hash —
// the join-build/probe hash. Rows whose key columns are rowKey-equal
// hash identically.
func hashKey(row []value.Value, keyIdx []int) uint64 {
	h := uint64(value.HashOffset)
	for _, k := range keyIdx {
		h = value.HashUint(h, row[k].Hash())
	}
	return h
}

// hashRowFn and hashKeyFn are the indirection points every hashed
// structure routes through — rowSet, joinIndex, the grace-hash
// partitioner and the spilled membership sets. Production code always
// runs the FNV hashers above; the collision-audit tests swap in a
// constant hasher to force every row into one bucket (and one spill
// partition), proving the collision-checked equality fallback carries
// correctness on its own.
var (
	hashRowFn = rowHash
	hashKeyFn = hashKey
)

// valueKeyEq reports whether a and b encode to the same Key string — the
// exact equality the string-keyed oracle engine uses — without building
// the strings.
func valueKeyEq(a, b value.Value) bool {
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if aok || bok {
		if !aok || !bok {
			return false
		}
		if math.Float64bits(af) == math.Float64bits(bf) {
			return true
		}
		return math.IsNaN(af) && math.IsNaN(bf)
	}
	if a.K != b.K {
		return false
	}
	switch a.K {
	case value.KNull:
		return true
	case value.KBool:
		return a.B == b.B
	case value.KString:
		return a.S == b.S
	case value.KOID:
		return a.OID == b.OID
	}
	// Tuples and collections: element-wise, then tuple field names.
	if len(a.Elems) != len(b.Elems) {
		return false
	}
	for i := range a.Elems {
		if !valueKeyEq(a.Elems[i], b.Elems[i]) {
			return false
		}
	}
	if a.K == value.KTuple {
		return tupleNamesKeyEq(a.Names, b.Names)
	}
	return true
}

// tupleNamesKeyEq compares tuple field-name lists the way Key encodes
// them: as their ","-joined concatenation. The element-wise fast path
// covers every realistic schema; the join fallback keeps the comparison
// exactly Key-faithful for names that themselves contain commas.
func tupleNamesKeyEq(a, b []string) bool {
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return strings.Join(a, ",") == strings.Join(b, ",")
}

// rowKeyEq reports whether two rows encode to the same rowKey string.
func rowKeyEq(a, b []value.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !valueKeyEq(a[i], b[i]) {
			return false
		}
	}
	return true
}

// rowSet is the hashed replacement for the oracle's map[string]bool
// seen-sets (Dedup, fixpoint accumulation, INTERN/DIFF membership):
// rows bucket under their 64-bit hash with collision-checked structural
// equality, preserving the first-seen semantics of the string map without
// building a key string per row.
type rowSet struct {
	m map[uint64][][]value.Value
}

func newRowSet() *rowSet { return &rowSet{m: map[uint64][][]value.Value{}} }

// add inserts row and reports whether it was newly added.
func (s *rowSet) add(row []value.Value) bool {
	h := hashRowFn(row)
	b := s.m[h]
	for _, r := range b {
		if rowKeyEq(r, row) {
			return false
		}
	}
	s.m[h] = append(b, row)
	return true
}

// has reports membership without inserting.
func (s *rowSet) has(row []value.Value) bool {
	for _, r := range s.m[hashRowFn(row)] {
		if rowKeyEq(r, row) {
			return true
		}
	}
	return false
}

// dedupRows removes duplicate rows in place (first occurrence wins),
// matching Relation.Dedup's output order exactly. The caller must own the
// slice.
func dedupRows(rows [][]value.Value) [][]value.Value {
	if len(rows) == 0 {
		return rows
	}
	s := newRowSet()
	out := rows[:0]
	for _, row := range rows {
		if s.add(row) {
			out = append(out, row)
		}
	}
	return out
}

// seenSet is the fixpoint accumulation set, chosen per engine: the
// batched engine uses the budgeted memSet (spill.go) — a hashed rowSet
// that migrates to disk under the memory governor — while the oracle
// keeps its string-key map. Both implement first-seen semantics over
// rowKey equality.
type seenSet interface {
	// add inserts row and reports whether it was newly added. The error
	// is the governor's: ErrMemBudget when the set outgrew its grant with
	// no spill dir, or a spill I/O failure.
	add(row []value.Value) (bool, error)
	// close releases the set's memory charge and any spill file.
	close()
}

// stringSeen is the oracle's string-keyed seen-set.
type stringSeen map[string]bool

func (s stringSeen) add(row []value.Value) (bool, error) {
	k := rowKey(row)
	if s[k] {
		return false, nil
	}
	s[k] = true
	return true, nil
}

func (s stringSeen) close() {}

// newSeenSet picks the seen-set implementation for the active engine.
func (db *DB) newSeenSet() seenSet {
	if db.RowEngine {
		return stringSeen{}
	}
	return db.newMemSet("fixpoint seen-set")
}

// joinGroup is one distinct join key with its build rows in insertion
// order.
type joinGroup struct {
	key  []value.Value
	rows [][]value.Value
}

// joinIndex is the hashed build side of a batch hash join (and the
// persistent per-relation index): rows grouped by their key columns under
// a 64-bit hash with collision-checked key groups. Per-key row order is
// build insertion order, matching the string-keyed oracle hash table, so
// probes emit matches in the same sequence.
type joinIndex struct {
	keyIdx []int
	groups map[uint64][]*joinGroup
}

// buildJoinIndex indexes rows by the columns in keyIdx.
func buildJoinIndex(rows [][]value.Value, keyIdx []int) *joinIndex {
	ix := &joinIndex{
		keyIdx: append([]int(nil), keyIdx...),
		groups: make(map[uint64][]*joinGroup, len(rows)),
	}
	for _, row := range rows {
		h := hashKeyFn(row, keyIdx)
		var g *joinGroup
		for _, cand := range ix.groups[h] {
			match := true
			for i, k := range keyIdx {
				if !valueKeyEq(cand.key[i], row[k]) {
					match = false
					break
				}
			}
			if match {
				g = cand
				break
			}
		}
		if g == nil {
			key := make([]value.Value, len(keyIdx))
			for i, k := range keyIdx {
				key[i] = row[k]
			}
			g = &joinGroup{key: key}
			ix.groups[h] = append(ix.groups[h], g)
		}
		g.rows = append(g.rows, row)
	}
	return ix
}

// probe returns the build rows whose key equals the probe row's columns
// at slots, in build insertion order (nil when no key matches).
func (ix *joinIndex) probe(row []value.Value, slots []int) [][]value.Value {
	h := hashKeyFn(row, slots)
	for _, g := range ix.groups[h] {
		match := true
		for i, s := range slots {
			if !valueKeyEq(g.key[i], row[s]) {
				match = false
				break
			}
		}
		if match {
			return g.rows
		}
	}
	return nil
}
