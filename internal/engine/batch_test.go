package engine

// Differential tests for the batched engine against the retained
// tuple-at-a-time oracle: rows (order included), every Counters field and
// the EXPLAIN ANALYZE OpStats tree must be bit-identical at every batch
// size and every Parallelism setting — under guard budgets and fault
// injection too. This is the engine-side analogue of the rewriter's
// indexed-vs-full-scan differential gate.

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"lera/internal/guard"
	"lera/internal/lera"
	"lera/internal/term"
	"lera/internal/testdb"
	"lera/internal/value"
)

// diffCorpus is a set of queries covering every operator and both batch
// fast paths (compiled predicates, persistent/transient join indexes) as
// well as their generic fallbacks.
func diffCorpus() map[string]*term.Term {
	fig3 := lera.Search(
		[]*term.Term{lera.Rel("APPEARS_IN"), lera.Rel("FILM")},
		lera.Ands(
			lera.Cmp("=", lera.Attr(1, 1), lera.Attr(2, 1)),
			lera.Cmp("=", lera.Call("Name", lera.Attr(1, 2)), term.Str("Quinn")),
			lera.Call("Member", term.Str("Adventure"), lera.Attr(2, 3)),
		),
		[]*term.Term{lera.Attr(2, 2), lera.Attr(2, 3), lera.Call("Salary", lera.Attr(1, 2))},
	)
	fa := lera.Nest(
		lera.Search(
			[]*term.Term{lera.Rel("FILM"), lera.Rel("APPEARS_IN")},
			lera.Ands(lera.Cmp("=", lera.Attr(1, 1), lera.Attr(2, 1))),
			[]*term.Term{lera.Attr(1, 2), lera.Attr(1, 3), lera.Attr(2, 2)},
		),
		[]int{3}, "Actors",
	)
	fig4 := lera.Search(
		[]*term.Term{fa},
		lera.Ands(
			term.F("MEMBER", term.Str("Adventure"), lera.Attr(1, 2)),
			term.F("ALL", lera.Cmp(">", lera.Call("Salary", lera.Attr(1, 3)), term.Num(10000))),
		),
		[]*term.Term{lera.Attr(1, 1)},
	)
	fig5 := lera.Search(
		[]*term.Term{fig5Fix()},
		lera.Ands(lera.Cmp("=", lera.Call("Name", lera.Attr(1, 2)), term.Str("Quinn"))),
		[]*term.Term{lera.Call("Name", lera.Attr(1, 1))},
	)
	filmIDs := func(rel string) *term.Term {
		return lera.Search([]*term.Term{lera.Rel(rel)}, lera.TrueQual(), []*term.Term{lera.Attr(1, 1)})
	}
	return map[string]*term.Term{
		"fig3-hash-join":   fig3,
		"fig4-nest-all":    fig4,
		"fig5-fixpoint":    fig5,
		"union":            lera.Union(filmIDs("FILM"), filmIDs("APPEARS_IN")),
		"inter":            lera.Inter(filmIDs("FILM"), filmIDs("DOMINATE")),
		"diff":             lera.Diff(filmIDs("FILM"), filmIDs("DOMINATE")),
		"filter-member":    lera.Filter(lera.Rel("FILM"), lera.Ands(term.F("MEMBER", term.Str("Western"), lera.Attr(1, 3)))),
		"join-op":          lera.Join(lera.Rel("FILM"), lera.Rel("APPEARS_IN"), lera.Ands(lera.Cmp("=", lera.Attr(1, 1), lera.Attr(2, 1)))),
		"nest-multi":       lera.Nest(lera.Rel("DOMINATE"), []int{2, 3}, "Pairs"),
		"unnest":           lera.Unnest(lera.Nest(lera.Rel("APPEARS_IN"), []int{2}, "Actors"), 2),
		"let-self-join":    lera.Let("M", filmIDs("FILM"), lera.Search([]*term.Term{lera.Rel("M"), lera.Rel("M")}, lera.Ands(lera.Cmp("=", lera.Attr(1, 1), lera.Attr(2, 1))), []*term.Term{lera.Attr(1, 1)})),
		"cartesian-filter": lera.Search([]*term.Term{lera.Rel("FILM"), lera.Rel("APPEARS_IN")}, lera.Ands(lera.Cmp("<", lera.Attr(1, 1), lera.Attr(2, 1))), []*term.Term{lera.Attr(1, 1), lera.Attr(2, 1)}),
		"leftover-conj":    lera.Search([]*term.Term{lera.Rel("FILM")}, lera.Ands(lera.Cmp("=", term.Str("x"), term.Str("x")), lera.Cmp(">=", lera.Attr(1, 1), term.Num(2))), []*term.Term{lera.Attr(1, 2)}),
		"static-false":     lera.Search([]*term.Term{lera.Rel("FILM")}, lera.Ands(term.FalseT()), []*term.Term{lera.Attr(1, 1), lera.Attr(1, 2)}),
	}
}

// engineRun is one evaluation outcome: rows rendered through the oracle
// row keys, counters, the stats tree and the error (if any).
type engineRun struct {
	rows  []string
	width int
	count Counters
	stats string
	err   error
}

func runEngine(t *testing.T, q *term.Term, row bool, batch, par int, lim guard.Limits, mode FixMode) engineRun {
	t.Helper()
	db := loadedDB(t)
	db.RowEngine = row
	db.BatchSize = batch
	db.Parallelism = par
	db.Limits = lim
	db.Mode = mode
	db.CollectStats = true
	rel, err := db.EvalCtx(context.Background(), q)
	out := engineRun{count: db.Count, err: err}
	if st := db.LastExecStats(); st != nil {
		out.stats = st.Format(false)
	}
	if err == nil {
		out.width = rel.Arity()
		for _, r := range rel.Rows {
			out.rows = append(out.rows, rowKey(r))
		}
	}
	return out
}

func diffRuns(a, b engineRun) string {
	if (a.err == nil) != (b.err == nil) {
		return fmt.Sprintf("error parity: %v vs %v", a.err, b.err)
	}
	if a.err != nil {
		if a.err.Error() != b.err.Error() {
			return fmt.Sprintf("error text: %q vs %q", a.err, b.err)
		}
		return ""
	}
	if a.width != b.width {
		return fmt.Sprintf("width %d vs %d", a.width, b.width)
	}
	if len(a.rows) != len(b.rows) {
		return fmt.Sprintf("%d vs %d rows", len(a.rows), len(b.rows))
	}
	for i := range a.rows {
		if a.rows[i] != b.rows[i] {
			return fmt.Sprintf("row %d differs", i)
		}
	}
	if a.count != b.count {
		return fmt.Sprintf("counters %+v vs %+v", a.count, b.count)
	}
	if a.stats != b.stats {
		return fmt.Sprintf("stats trees differ:\n%s\nvs\n%s", a.stats, b.stats)
	}
	return ""
}

// TestBatchEngineBitIdentity pins the tentpole contract: for every corpus
// query, in both fixpoint modes, the batched engine reproduces the serial
// row oracle bit-for-bit — rows in order, all counters, the whole OpStats
// tree — at batch sizes 1, 2 and 1024 and Parallelism 1 and 4, and so
// does the row engine's own parallel run.
func TestBatchEngineBitIdentity(t *testing.T) {
	for name, q := range diffCorpus() {
		for _, mode := range []FixMode{SemiNaive, Naive} {
			ref := runEngine(t, q, true, 0, 1, guard.Limits{}, mode)
			if ref.err != nil {
				t.Fatalf("%s: oracle failed: %v", name, ref.err)
			}
			for _, bs := range []int{1, 2, 1024} {
				for _, par := range []int{1, 4} {
					got := runEngine(t, q, false, bs, par, guard.Limits{}, mode)
					if d := diffRuns(ref, got); d != "" {
						t.Errorf("%s (mode %v, batch %d, par %d): %s", name, mode, bs, par, d)
					}
				}
			}
			got := runEngine(t, q, true, 0, 4, guard.Limits{}, mode)
			if d := diffRuns(ref, got); d != "" {
				t.Errorf("%s (mode %v, row engine, par 4): %s", name, mode, d)
			}
		}
	}
}

// TestBatchEngineBitIdentityUnderLimits re-runs the gate with a row
// budget tight enough to trip several corpus queries: budget errors must
// fire with identical text in both engines, and whatever fits the budget
// must still match exactly.
func TestBatchEngineBitIdentityUnderLimits(t *testing.T) {
	lim := guard.Limits{MaxRows: 12, MaxFixIterations: 50}
	tripped := 0
	for name, q := range diffCorpus() {
		ref := runEngine(t, q, true, 0, 1, lim, SemiNaive)
		if ref.err != nil {
			tripped++
		}
		for _, bs := range []int{1, 2, 1024} {
			got := runEngine(t, q, false, bs, 1, lim, SemiNaive)
			if d := diffRuns(ref, got); d != "" {
				t.Errorf("%s (batch %d): %s", name, bs, d)
			}
		}
	}
	if tripped == 0 {
		t.Fatal("budget never tripped — the limit is not exercising the error path")
	}
}

// TestBatchEngineFaultParity arms deterministic ADT faults and checks the
// engines fail identically: with an injector present the batch engine
// must disable its compiled comparisons, so every ADT hit — and therefore
// the fault call index — matches the oracle exactly.
func TestBatchEngineFaultParity(t *testing.T) {
	q := diffCorpus()["fig3-hash-join"]
	for _, call := range []int{1, 2} {
		run := func(row bool, bs int) engineRun {
			db := loadedDB(t)
			inj := guard.NewInjector()
			// MEMBER reaches the ADT registry (Name resolves as a field
			// projection and never hits the injector).
			inj.Set("MEMBER", guard.Fault{OnCall: call, Mode: guard.FaultError})
			db.Injector = inj
			db.RowEngine = row
			db.BatchSize = bs
			db.CollectStats = true
			rel, err := db.EvalCtx(context.Background(), q)
			out := engineRun{count: db.Count, err: err}
			if err == nil {
				out.width = rel.Arity()
				for _, r := range rel.Rows {
					out.rows = append(out.rows, rowKey(r))
				}
			}
			return out
		}
		ref := run(true, 0)
		if ref.err == nil {
			t.Fatalf("call %d: fault did not fire", call)
		}
		for _, bs := range []int{1, 1024} {
			got := run(false, bs)
			if (got.err == nil) || got.err.Error() != ref.err.Error() {
				t.Errorf("call %d batch %d: error %v, oracle %v", call, bs, got.err, ref.err)
			}
			if got.count != ref.count {
				t.Errorf("call %d batch %d: counters at failure %+v, oracle %+v", call, bs, got.count, ref.count)
			}
		}
	}
}

// TestBatchEngineBitIdentityLargeFixpoint runs the Figure 5 closure over
// random graphs large enough to cross batch and parallel-chunk
// boundaries.
func TestBatchEngineBitIdentityLargeFixpoint(t *testing.T) {
	cat, err := testdb.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		rows := randomGraph(40, 80, seed)
		run := func(row bool, bs, par int, mode FixMode) engineRun {
			db := New(cat)
			if err := db.Load("DOMINATE", rows); err != nil {
				t.Fatal(err)
			}
			db.RowEngine = row
			db.BatchSize = bs
			db.Parallelism = par
			db.Mode = mode
			db.CollectStats = true
			rel, err := db.EvalCtx(context.Background(), fig5Fix())
			out := engineRun{count: db.Count, err: err}
			if st := db.LastExecStats(); st != nil {
				out.stats = st.Format(false)
			}
			if err == nil {
				out.width = rel.Arity()
				for _, r := range rel.Rows {
					out.rows = append(out.rows, rowKey(r))
				}
			}
			return out
		}
		for _, mode := range []FixMode{SemiNaive, Naive} {
			ref := run(true, 0, 1, mode)
			if ref.err != nil {
				t.Fatalf("seed %d: oracle failed: %v", seed, ref.err)
			}
			for _, bs := range []int{2, 1024} {
				for _, par := range []int{1, 4} {
					got := run(false, bs, par, mode)
					if d := diffRuns(ref, got); d != "" {
						t.Errorf("seed %d (mode %v, batch %d, par %d): %s", seed, mode, bs, par, d)
					}
				}
			}
		}
	}
}

// TestRowKeyEqMatchesRowKey pins the key-faithfulness of the hashed row
// equality: for a value set chosen to hit every edge (int/real collapse,
// signed zero, NaN payloads, tuple field-name concatenation, nested
// collections), valueKeyEq must coincide with Key-string equality and
// Hash must be constant on Key-equal values.
func TestRowKeyEqMatchesRowKey(t *testing.T) {
	nan := value.Real(nanValue())
	vals := []value.Value{
		value.Int(5), value.Real(5), value.Real(5.5), value.Int(-5),
		value.Real(0), value.Real(negZero()), value.Int(0),
		nan, value.Real(nanPayload()),
		value.Bool(true), value.Bool(false), value.Null,
		value.String("x"), value.String("y"), value.String(""),
		value.OID(1), value.OID(2),
		value.NewSet(value.Int(1), value.Int(2)),
		value.NewSet(value.Int(2), value.Int(1)),
		value.NewList(value.Int(1), value.Int(2)),
		value.NewTuple([]string{"a", "b"}, []value.Value{value.Int(1), value.Int(2)}),
		value.NewTuple([]string{"a,b"}, []value.Value{value.Int(1)}),
		value.NewTuple([]string{"a"}, []value.Value{value.Int(1)}),
	}
	for i, a := range vals {
		for j, b := range vals {
			keyEq := a.Key() == b.Key()
			if got := valueKeyEq(a, b); got != keyEq {
				t.Errorf("valueKeyEq(%d:%s, %d:%s) = %v, Key equality %v", i, a, j, b, got, keyEq)
			}
			if keyEq && a.Hash() != b.Hash() {
				t.Errorf("Key-equal values hash differently: %s vs %s", a, b)
			}
		}
	}
}

func nanValue() float64 {
	z := 0.0
	return z / z
}

func negZero() float64 {
	z := 0.0
	return -z
}

// nanPayload builds a NaN with a different bit pattern than 0/0.
func nanPayload() float64 {
	n := nanValue()
	return -n
}

// TestRelationIndexLifecycle is the white-box half of the persistent
// index contract: lazily built on first keyed access, warm on the second,
// dropped by Load and Insert (declared and undeclared relations alike),
// and rebuilt — with oracle-identical results — afterwards.
func TestRelationIndexLifecycle(t *testing.T) {
	db := loadedDB(t)
	q := diffCorpus()["fig3-hash-join"]
	key := []int{0}

	if got := db.idx.size(); got != 0 {
		t.Fatalf("fresh database has %d cached indexes", got)
	}
	if _, err := db.Eval(q); err != nil {
		t.Fatal(err)
	}
	first := db.idx.lookup("FILM", key)
	if first == nil {
		t.Fatal("FILM build-side index not cached after first evaluation")
	}
	if _, err := db.Eval(q); err != nil {
		t.Fatal(err)
	}
	if again := db.idx.lookup("FILM", key); again != first {
		t.Error("second evaluation rebuilt a valid index instead of reusing it")
	}

	// Load drops the cached index; the next evaluation rebuilds against
	// the new rows and still matches the oracle.
	films := db.Stored("FILM")
	newRows := append([][]value.Value{}, films.Rows...)
	if err := db.Load("FILM", newRows); err != nil {
		t.Fatal(err)
	}
	if db.idx.lookup("FILM", key) != nil {
		t.Error("Load did not invalidate the FILM index")
	}
	if _, err := db.Eval(q); err != nil {
		t.Fatal(err)
	}
	rebuilt := db.idx.lookup("FILM", key)
	if rebuilt == nil || rebuilt == first {
		t.Error("index not rebuilt after Load")
	}

	// Insert invalidates too — including the version/nrows fast path.
	extra := append([]value.Value(nil), newRows[0]...)
	extra[0] = value.Int(99)
	extra[1] = value.String("The Extra Film")
	if err := db.Insert("FILM", extra); err != nil {
		t.Fatal(err)
	}
	if db.idx.lookup("FILM", key) != nil {
		t.Error("Insert did not invalidate the FILM index")
	}

	// Post-invalidation results stay oracle-identical.
	batch, err := db.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	oracle := db.Fork()
	oracle.RowEngine = true
	want, err := oracle.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Rows) != len(want.Rows) {
		t.Fatalf("post-invalidation rows: %d vs oracle %d", len(batch.Rows), len(want.Rows))
	}
	for i := range batch.Rows {
		if rowKey(batch.Rows[i]) != rowKey(want.Rows[i]) {
			t.Errorf("post-invalidation row %d differs", i)
		}
	}
}

// TestIndexInvalidationUndeclaredRelation pins the belt-and-braces path:
// relations the catalog does not declare never bump the data version, so
// Load/Insert must drop their indexes explicitly.
func TestIndexInvalidationUndeclaredRelation(t *testing.T) {
	db := loadedDB(t)
	rows := [][]value.Value{
		{value.Int(1), value.String("a")},
		{value.Int(2), value.String("b")},
	}
	if err := db.Load("ADHOC", rows); err != nil {
		t.Fatal(err)
	}
	v0 := db.Cat.DataVersion()
	q := lera.Search(
		[]*term.Term{lera.Rel("ADHOC"), lera.Rel("ADHOC")},
		lera.Ands(lera.Cmp("=", lera.Attr(1, 1), lera.Attr(2, 1))),
		[]*term.Term{lera.Attr(1, 2), lera.Attr(2, 2)},
	)
	if _, err := db.Eval(q); err != nil {
		t.Fatal(err)
	}
	if db.idx.lookup("ADHOC", []int{0}) == nil {
		t.Fatal("ADHOC index not cached")
	}
	// Same row count, same data version: only the explicit invalidation
	// can catch this swap.
	if err := db.Load("ADHOC", [][]value.Value{
		{value.Int(1), value.String("A")},
		{value.Int(2), value.String("B")},
	}); err != nil {
		t.Fatal(err)
	}
	if db.Cat.DataVersion() != v0 {
		t.Fatalf("undeclared Load bumped the data version — this test needs a stale-version scenario")
	}
	if db.idx.lookup("ADHOC", []int{0}) != nil {
		t.Fatal("Load of undeclared relation did not invalidate its index")
	}
	r, err := db.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if s := row[0].S; s != "A" && s != "B" {
			t.Errorf("stale index row surfaced: %v", row)
		}
	}
}

// TestIndexSharedAcrossForks: forks probe the parent's warm indexes and
// contribute their own builds back to the shared set.
func TestIndexSharedAcrossForks(t *testing.T) {
	db := loadedDB(t)
	q := diffCorpus()["fig3-hash-join"]
	f := db.Fork()
	if _, err := f.Eval(q); err != nil {
		t.Fatal(err)
	}
	e := db.idx.lookup("FILM", []int{0})
	if e == nil {
		t.Fatal("fork's index build not visible in parent set")
	}
	if _, err := db.Eval(q); err != nil {
		t.Fatal(err)
	}
	if db.idx.lookup("FILM", []int{0}) != e {
		t.Error("parent rebuilt an index the fork had already built")
	}
}

// TestWidthPreservation extends the PR 5 empty-arity fixes to the batched
// engine: declared widths survive empty results through every operator
// and short-circuit, in both engines, and EXPLAIN ANALYZE renders them.
func TestWidthPreservation(t *testing.T) {
	for _, row := range []bool{false, true} {
		db := loadedDB(t)
		db.RowEngine = row
		// Empty stored relation keeps its declared width.
		if err := db.Load("FILM", nil); err != nil {
			t.Fatal(err)
		}
		checks := []struct {
			name  string
			q     *term.Term
			width int
		}{
			{"static-false-search", lera.Search([]*term.Term{lera.Rel("APPEARS_IN")}, lera.Ands(term.FalseT()), []*term.Term{lera.Attr(1, 1), lera.Attr(1, 2)}), 2},
			{"empty-input-search", lera.Search([]*term.Term{lera.Rel("FILM"), lera.Rel("APPEARS_IN")}, lera.Ands(lera.Cmp("=", lera.Attr(1, 1), lera.Attr(2, 1))), []*term.Term{lera.Attr(1, 2), lera.Attr(2, 2), lera.Attr(2, 1)}), 3},
			{"filter-empty", lera.Filter(lera.Rel("FILM"), lera.Ands(lera.Cmp("=", lera.Attr(1, 1), term.Num(1)))), 3},
			{"join-empty", lera.Join(lera.Rel("FILM"), lera.Rel("APPEARS_IN"), lera.TrueQual()), 5},
			{"union-empty", lera.Union(lera.Rel("FILM"), lera.Rel("FILM")), 3},
			{"inter-empty", lera.Inter(lera.Rel("FILM"), lera.Rel("FILM")), 3},
			{"diff-full", lera.Diff(lera.Rel("APPEARS_IN"), lera.Rel("APPEARS_IN")), 2},
			{"unnest-empty", lera.Unnest(lera.Rel("FILM"), 3), 3},
		}
		for _, c := range checks {
			r, err := db.Eval(c.q)
			if err != nil {
				t.Fatalf("row=%v %s: %v", row, c.name, err)
			}
			if len(r.Rows) != 0 {
				t.Fatalf("row=%v %s: expected empty result, got %d rows", row, c.name, len(r.Rows))
			}
			if r.Arity() != c.width {
				t.Errorf("row=%v %s: Arity() = %d, want %d", row, c.name, r.Arity(), c.width)
			}
		}
		// The declared width of an empty operator output surfaces in
		// EXPLAIN ANALYZE (stats.go renders width= only for empty
		// results).
		db.CollectStats = true
		if _, err := db.EvalCtx(context.Background(), checks[0].q); err != nil {
			t.Fatal(err)
		}
		if s := db.LastExecStats().Format(false); !strings.Contains(s, "width=2") {
			t.Errorf("row=%v: stats missing declared width:\n%s", row, s)
		}
		db.CollectStats = false
	}
}

// TestBatchSizeInvariance: a handful of odd batch sizes on the join-heavy
// corpus entry, all bit-identical.
func TestBatchSizeInvariance(t *testing.T) {
	q := diffCorpus()["join-op"]
	ref := runEngine(t, q, false, 0, 1, guard.Limits{}, SemiNaive)
	if ref.err != nil {
		t.Fatal(ref.err)
	}
	for _, bs := range []int{1, 3, 7, 255, 256, 257} {
		got := runEngine(t, q, false, bs, 1, guard.Limits{}, SemiNaive)
		if d := diffRuns(ref, got); d != "" {
			t.Errorf("batch %d: %s", bs, d)
		}
	}
}
