package engine

// Batched SEARCH evaluation. Planning (static-false short-circuit,
// relation evaluation order, conjunct classification, widths and the
// empty-relation short-circuit) is shared with the oracle through
// prepareSearch/equiJoinKeys so both engines make identical decisions;
// only the row loops differ:
//
//   - hash-join build sides come from the persistent index set when the
//     build relation is stored (acquireJoinIndex), probes emit matches
//     with one amortized tick and counter update per probe row;
//   - the filter and projection stages run over compiled predicate and
//     projection programs: built-in comparisons over attribute slots,
//     constants and single-attribute function calls evaluate without
//     term-tree walks or row re-splitting, falling back to the generic
//     evaluator (bit-identical by construction) for everything else.
//     Compilation of comparisons is disabled when a fault injector is
//     armed, since the compiled path would skip the injector hit the
//     oracle's ADT call performs.

import (
	"fmt"
	"strings"

	"lera/internal/lera"
	"lera/internal/term"
	"lera/internal/value"
)

// searchPrep is the planning state shared by both engines.
type searchPrep struct {
	plan   *searchPlan
	widths []int
	offset []int
	// names[i] is the stored-relation name of relation i when its term is
	// a plain REL over a stored relation (not shadowed by a LET/FIX
	// binding, not a view) — the index-eligible case — and "" otherwise.
	names []string
}

// prepareSearch runs the SEARCH planning steps shared by the batched and
// oracle engines. It returns a non-nil short relation when the search
// short-circuits (statically false qualification, or an empty input
// relation) — both cases preserve the declared projection arity.
func (db *DB) prepareSearch(t *term.Term, e env) (*searchPrep, *Relation, error) {
	relTerms := t.Args[0].Args
	if len(relTerms) == 0 {
		return nil, nil, fmt.Errorf("engine: SEARCH with empty relation list")
	}
	// A statically false qualification short-circuits before any stored
	// relation is touched — the payoff of the semantic inconsistency
	// rules (§6.2): zero tuples scanned. The empty result still declares
	// the projection arity.
	for _, c := range lera.Conjuncts(t.Args[1]) {
		if c.Kind == term.Const && c.Val.K == value.KBool && !c.Val.B {
			return nil, &Relation{Width: len(t.Args[2].Args)}, nil
		}
	}
	plan := &searchPlan{projs: t.Args[2].Args}
	names := make([]string, len(relTerms))
	for i, rt := range relTerms {
		r, err := db.eval(rt, e)
		if err != nil {
			return nil, nil, err
		}
		plan.rels = append(plan.rels, r)
		names[i] = db.storedRelName(rt, e)
	}
	for _, c := range lera.Conjuncts(t.Args[1]) {
		plan.conjs = append(plan.conjs, conjunct{expr: c, maxRel: maxRelIndex(c)})
	}
	widths := make([]int, len(plan.rels))
	for i, r := range plan.rels {
		if len(r.Rows) == 0 {
			return nil, &Relation{Width: len(plan.projs)}, nil
		}
		widths[i] = len(r.Rows[0])
	}
	offset := make([]int, len(plan.rels)+1)
	for i, w := range widths {
		offset[i+1] = offset[i] + w
	}
	return &searchPrep{plan: plan, widths: widths, offset: offset, names: names}, nil, nil
}

// storedRelName resolves a relation term to its stored-relation name the
// same way REL evaluation does — env binding first, then stored relations
// — returning "" unless the term is served straight from db.rels.
func (db *DB) storedRelName(rt *term.Term, e env) string {
	if rt.Kind != term.Fun || rt.Functor != "REL" {
		return ""
	}
	name := strings.ToUpper(rt.Args[0].Val.S)
	if _, ok := e[name]; ok {
		return ""
	}
	if _, ok := db.rels[name]; ok {
		return name
	}
	return ""
}

// equiJoinKeys finds (and marks used) the equi-join conjuncts
// ATTR(a,x) = ATTR(b,y) connecting the joined prefix (< ri) to relation
// ri; leftKeys are flat prefix slots, rightKeys are 0-based columns of
// relation ri. Shared by both engines so conjunct consumption is
// identical.
func equiJoinKeys(plan *searchPlan, ri int, offset []int) (leftKeys, rightKeys []int) {
	attrSlot := func(i, j int) int { return offset[i-1] + j - 1 }
	for ci := range plan.conjs {
		c := &plan.conjs[ci]
		if c.used || c.expr.Kind != term.Fun || c.expr.Functor != "=" || len(c.expr.Args) != 2 {
			continue
		}
		ai, aj, okA := lera.AttrIdx(c.expr.Args[0])
		bi, bj, okB := lera.AttrIdx(c.expr.Args[1])
		if !okA || !okB {
			continue
		}
		switch {
		case ai < ri && bi == ri:
			leftKeys = append(leftKeys, attrSlot(ai, aj))
			rightKeys = append(rightKeys, bj-1)
			c.used = true
		case bi < ri && ai == ri:
			leftKeys = append(leftKeys, attrSlot(bi, bj))
			rightKeys = append(rightKeys, aj-1)
			c.used = true
		}
	}
	return leftKeys, rightKeys
}

// acquireJoinIndex returns the join index for a build side: the shared
// persistent one when the relation is stored, a transient build otherwise.
func (db *DB) acquireJoinIndex(name string, rows [][]value.Value, keyIdx []int) *joinIndex {
	if name != "" && db.idx != nil {
		return db.idx.acquire(db.Cat.DataVersion(), name, rows, keyIdx)
	}
	return buildJoinIndex(rows, keyIdx)
}

func (db *DB) evalSearchBatch(t *term.Term, e env) (*Relation, error) {
	prep, short, err := db.prepareSearch(t, e)
	if err != nil {
		return nil, err
	}
	if short != nil {
		return short, nil
	}
	plan, widths := prep.plan, prep.widths

	current, err := db.filterRowsBatch(plan.rels[0].Rows, plan, 1, widths[:1])
	if err != nil {
		return nil, err
	}

	for ri := 2; ri <= len(plan.rels); ri++ {
		next := plan.rels[ri-1]
		leftKeys, rightKeys := equiJoinKeys(plan, ri, prep.offset)
		var joined [][]value.Value
		if len(leftKeys) > 0 {
			// The memory governor sizes the build side with the same
			// deterministic estimate graceJoin partitions against, so the
			// spill decision is identical at every batch and pool size.
			grant := db.memGrant()
			var buildBytes int64
			if grant > 0 {
				buildBytes = rowsMemBytes(next.Rows) + int64(len(next.Rows))*setEntryBytes
			}
			if grant > 0 && buildBytes > grant {
				if !db.spillOK() {
					return nil, db.errMemBudget("SEARCH join build", buildBytes)
				}
				joined, err = db.graceJoin(current, next.Rows, leftKeys, rightKeys)
			} else {
				// Hash join through the (possibly persistent) index; matches
				// surface in (probe row, build insertion) order, exactly the
				// oracle's output sequence.
				ix := db.acquireJoinIndex(prep.names[ri-1], next.Rows, rightKeys)
				db.chargeMem(buildBytes)
				joined, err = db.mapRowChunks(current, func(w *DB, chunk [][]value.Value) ([][]value.Value, error) {
					var out [][]value.Value
					ar := &rowArena{db: w}
					for _, prow := range chunk {
						matches := ix.probe(prow, leftKeys)
						if len(matches) == 0 {
							continue
						}
						if err := w.tickRows(len(matches)); err != nil {
							return nil, err
						}
						w.Count.JoinPairs += len(matches)
						for _, rrow := range matches {
							out = append(out, ar.join(prow, rrow))
						}
					}
					return out, nil
				})
				db.releaseMem(buildBytes)
			}
		} else {
			bs := db.batchSize()
			joined, err = db.mapRowChunks(current, func(w *DB, chunk [][]value.Value) ([][]value.Value, error) {
				var out [][]value.Value
				ar := &rowArena{db: w}
				for _, prow := range chunk {
					for ni := 0; ni < len(next.Rows); {
						n := len(next.Rows) - ni
						if n > bs {
							n = bs
						}
						if err := w.tickRows(n); err != nil {
							return nil, err
						}
						w.Count.JoinPairs += n
						for _, rrow := range next.Rows[ni : ni+n] {
							out = append(out, ar.join(prow, rrow))
						}
						ni += n
					}
				}
				return out, nil
			})
		}
		if err != nil {
			return nil, err
		}
		current, err = db.filterRowsBatch(joined, plan, ri, widths[:ri])
		if err != nil {
			return nil, err
		}
	}

	// Final stage: leftover conjuncts (e.g. referencing no attributes)
	// and the projection, both compiled.
	preds := db.compilePreds(leftoverConjuncts(plan), widths)
	projs := compileProjs(plan.projs, widths)
	out := &Relation{Width: len(plan.projs)}
	bs := db.batchSize()
	projected, err := db.mapRowChunks(current, func(w *DB, chunk [][]value.Value) ([][]value.Value, error) {
		var kept [][]value.Value
		ar := &rowArena{db: w}
		sc := newSplitScratch(widths)
		for len(chunk) > 0 {
			batch := chunk
			if len(batch) > bs {
				batch = batch[:bs]
			}
			chunk = chunk[len(batch):]
			if err := w.tickRows(len(batch)); err != nil {
				return nil, err
			}
		rowLoop:
			for _, row := range batch {
				sc.reset()
				for i := range preds {
					ok, err := preds[i].eval(w, row, sc)
					if err != nil {
						return nil, err
					}
					if !ok {
						continue rowLoop
					}
				}
				prow := ar.alloc(len(projs))
				for i := range projs {
					v, err := projs[i].eval(w, row, sc)
					if err != nil {
						return nil, err
					}
					prow[i] = v
				}
				kept = append(kept, prow)
			}
		}
		return kept, nil
	})
	if err != nil {
		return nil, err
	}
	// LERA is an extension of Codd's algebra: relations are sets, so the
	// projection output deduplicates.
	out.Rows, err = db.dedupRows(projected)
	if err != nil {
		return nil, err
	}
	db.Count.Emitted += len(out.Rows)
	if err := db.chargeRows(len(out.Rows)); err != nil {
		return nil, err
	}
	return out, nil
}

// filterRowsBatch is the batched filterRows: the same active-conjunct
// selection and marking, with the conjuncts compiled and ticks amortized
// per batch.
func (db *DB) filterRowsBatch(rows [][]value.Value, plan *searchPlan, upto int, widths []int) ([][]value.Value, error) {
	var active []*conjunct
	for ci := range plan.conjs {
		c := &plan.conjs[ci]
		if !c.used && c.maxRel >= 1 && c.maxRel <= upto {
			active = append(active, c)
			c.used = true
		}
	}
	if len(active) == 0 {
		return rows, nil
	}
	preds := db.compilePreds(active, widths)
	bs := db.batchSize()
	return db.mapRowChunks(rows, func(w *DB, chunk [][]value.Value) ([][]value.Value, error) {
		var out [][]value.Value
		sc := newSplitScratch(widths)
		for len(chunk) > 0 {
			batch := chunk
			if len(batch) > bs {
				batch = batch[:bs]
			}
			chunk = chunk[len(batch):]
			if err := w.tickRows(len(batch)); err != nil {
				return nil, err
			}
			for _, row := range batch {
				sc.reset()
				keep := true
				for i := range preds {
					b, err := preds[i].eval(w, row, sc)
					if err != nil {
						return nil, err
					}
					if !b {
						keep = false
						break
					}
				}
				if keep {
					out = append(out, row)
				}
			}
		}
		return out, nil
	})
}

// leftoverConjuncts returns the conjuncts no earlier stage consumed.
func leftoverConjuncts(plan *searchPlan) []*conjunct {
	var out []*conjunct
	for ci := range plan.conjs {
		c := &plan.conjs[ci]
		if !c.used {
			out = append(out, c)
		}
	}
	return out
}

// splitScratch lazily splits a flat prefix row into per-relation segments
// for the generic evaluator, computed at most once per row across every
// generic predicate and projection.
type splitScratch struct {
	widths []int
	rows   [][]value.Value
	valid  bool
}

func newSplitScratch(widths []int) *splitScratch {
	return &splitScratch{widths: widths, rows: make([][]value.Value, len(widths))}
}

func (sc *splitScratch) reset() { sc.valid = false }

func (sc *splitScratch) get(row []value.Value) [][]value.Value {
	if !sc.valid {
		pos := 0
		for i, w := range sc.widths {
			sc.rows[i] = row[pos : pos+w]
			pos += w
		}
		sc.valid = true
	}
	return sc.rows
}

// searchPred is one compiled qualification conjunct.
type searchPred interface {
	eval(w *DB, row []value.Value, sc *splitScratch) (bool, error)
}

// genericPred evaluates the conjunct through the ordinary evaluator —
// the bit-identical fallback for everything the compiler does not cover.
type genericPred struct{ expr *term.Term }

func (p *genericPred) eval(w *DB, row []value.Value, sc *splitScratch) (bool, error) {
	return w.evalBool(p.expr, sc.get(row))
}

// operand kinds of a compiled comparison.
const (
	opSlot  = iota // flat row slot (in-range ATTR)
	opConst        // constant
	opField        // single-attribute function call CALL(name, ATTR)
)

type operand struct {
	kind  int
	slot  int
	cval  value.Value
	field string
}

func (o *operand) fetch(w *DB, row []value.Value) (value.Value, error) {
	switch o.kind {
	case opSlot:
		return row[o.slot], nil
	case opConst:
		return o.cval, nil
	}
	return w.callField(o.field, row[o.slot])
}

// cmpPred is a compiled built-in comparison. It reproduces the oracle
// path — PredEvals accounting, operand evaluation order, the Figure 4
// broadcast error for a collection-vs-scalar comparison, and the
// value.Compare semantics of the built-in comparison ADTs — without the
// expression-tree walk or the per-row ADT dispatch.
type cmpPred struct {
	expr *term.Term
	op   string
	a, b operand
}

func (p *cmpPred) eval(w *DB, row []value.Value, sc *splitScratch) (bool, error) {
	w.Count.PredEvals++
	av, err := p.a.fetch(w, row)
	if err != nil {
		return false, err
	}
	bv, err := p.b.fetch(w, row)
	if err != nil {
		return false, err
	}
	if av.K.IsCollection() != bv.K.IsCollection() {
		// The oracle broadcasts the comparison over the collection and
		// then fails to coerce the resulting collection to a boolean.
		k := av.K
		if !k.IsCollection() {
			k = bv.K
		}
		return false, fmt.Errorf("engine: qualification %s evaluated to %s, not boolean", lera.Format(p.expr), k)
	}
	return cmpHolds(p.op, value.Compare(av, bv)), nil
}

// cmpHolds mirrors the built-in comparison registrations (internal/adt):
// each holds exactly when the value.Compare result satisfies the operator.
func cmpHolds(op string, c int) bool {
	switch op {
	case "=":
		return c == 0
	case "<>":
		return c != 0
	case "<":
		return c < 0
	case ">":
		return c > 0
	case "<=":
		return c <= 0
	}
	return c >= 0
}

// compilePreds compiles conjuncts against the flat row layout described
// by widths. A conjunct compiles to a cmpPred only when it is a built-in
// (never overridden) comparison with both operands compilable and no
// fault injector armed; everything else falls back to the generic
// evaluator.
func (db *DB) compilePreds(conjs []*conjunct, widths []int) []searchPred {
	preds := make([]searchPred, len(conjs))
	for i, c := range conjs {
		preds[i] = db.compilePred(c.expr, widths)
	}
	return preds
}

func (db *DB) compilePred(e *term.Term, widths []int) searchPred {
	if db.Injector == nil && e.Kind == term.Fun && len(e.Args) == 2 && db.Cat.ADTs.IsBuiltinComparison(e.Functor) {
		if a, ok := compileOperand(e.Args[0], widths); ok {
			if b, ok2 := compileOperand(e.Args[1], widths); ok2 {
				return &cmpPred{expr: e, op: e.Functor, a: a, b: b}
			}
		}
	}
	return &genericPred{expr: e}
}

// compileOperand compiles a comparison operand: a constant, an in-range
// attribute reference, or a function call over one in-range attribute.
// Out-of-range attributes are left to the generic evaluator so its exact
// bounds errors are preserved.
func compileOperand(e *term.Term, widths []int) (operand, bool) {
	if e.Kind == term.Const {
		return operand{kind: opConst, cval: e.Val}, true
	}
	if i, j, ok := lera.AttrIdx(e); ok {
		if slot, inRange := flatSlot(i, j, widths); inRange {
			return operand{kind: opSlot, slot: slot}, true
		}
		return operand{}, false
	}
	if e.Kind == term.Fun && e.Functor == lera.ECall && len(e.Args) == 2 {
		if name, ok := lera.CallName(e); ok {
			if i, j, ok2 := lera.AttrIdx(e.Args[1]); ok2 {
				if slot, inRange := flatSlot(i, j, widths); inRange {
					return operand{kind: opField, field: name, slot: slot}, true
				}
			}
		}
	}
	return operand{}, false
}

// flatSlot maps ATTR(i, j) to a flat row slot, reporting whether the
// reference is within the layout.
func flatSlot(i, j int, widths []int) (int, bool) {
	if i < 1 || i > len(widths) || j < 1 || j > widths[i-1] {
		return 0, false
	}
	slot := j - 1
	for _, w := range widths[:i-1] {
		slot += w
	}
	return slot, true
}

// projOp is one compiled projection: a flat slot copy for a pure in-range
// attribute reference, the generic evaluator otherwise. The slot path is
// safe under fault injection — attribute access never calls an ADT.
type projOp struct {
	slot int // >= 0: copy row[slot]
	expr *term.Term
}

func (p *projOp) eval(w *DB, row []value.Value, sc *splitScratch) (value.Value, error) {
	if p.slot >= 0 {
		return row[p.slot], nil
	}
	return w.evalExpr(p.expr, sc.get(row))
}

func compileProjs(projs []*term.Term, widths []int) []projOp {
	out := make([]projOp, len(projs))
	for i, p := range projs {
		out[i] = projOp{slot: -1, expr: p}
		if pi, pj, ok := lera.AttrIdx(p); ok {
			if slot, inRange := flatSlot(pi, pj, widths); inRange {
				out[i].slot = slot
			}
		}
	}
	return out
}
