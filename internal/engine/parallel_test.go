package engine

// Tests for intra-query parallelism (parallel.go): the parallel engine
// must be bit-identical to the serial one — same rows in the same order,
// same counters, same stats tree — and the guard layer (row budget,
// cancellation) must keep firing promptly from worker goroutines. Run
// with -race these tests double as the data-race gate for the worker
// clones.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"lera/internal/guard"
	"lera/internal/lera"
	"lera/internal/term"
	"lera/internal/testdb"
	"lera/internal/value"
)

// bigJoinQuery is a self-join of EDGE large enough to cross the
// parallelMinRows threshold: SEARCH(EDGE, EDGE; $1.2 = $2.1; $1.1, $2.2).
func bigJoinQuery() *term.Term {
	return lera.Search(
		[]*term.Term{lera.Rel("EDGE"), lera.Rel("EDGE")},
		lera.Ands(lera.Cmp("=", lera.Attr(1, 2), lera.Attr(2, 1))),
		[]*term.Term{lera.Attr(1, 1), lera.Attr(2, 2)},
	)
}

// unionQuery exercises the parallel-member path: a union of per-column
// projections of EDGE.
func unionQuery() *term.Term {
	m := func(i, j int) *term.Term {
		return lera.Search(
			[]*term.Term{lera.Rel("EDGE")},
			lera.TrueQual(),
			[]*term.Term{lera.Attr(1, i), lera.Attr(1, j)},
		)
	}
	return lera.Union(m(1, 2), m(2, 1), m(1, 1), m(2, 2))
}

// evalAt runs q on a fresh n-chain database at the given parallelism with
// stats collection on, returning rows, counters and the deterministic
// stats rendering.
func evalAt(t *testing.T, n, parallelism int, mode FixMode, q *term.Term) (*Relation, Counters, string) {
	t.Helper()
	db := chainDB(t, n)
	db.Mode = mode
	db.Parallelism = parallelism
	db.CollectStats = true
	r, err := db.Eval(q)
	if err != nil {
		t.Fatalf("parallelism %d: %v", parallelism, err)
	}
	return r, db.Count, db.LastExecStats().Format(false)
}

// TestParallelBitIdentical is the engine-level determinism gate: for
// representative queries covering the hash-join build/probe partitioning,
// union-member fan-out and both fixpoint modes, a 4-worker evaluation
// must produce the same rows in the same order, the same counters and
// the same stats tree as the serial path.
func TestParallelBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		n    int
		mode FixMode
		q    *term.Term
	}{
		{"big-hash-join", 4000, SemiNaive, bigJoinQuery()},
		{"union-members", 300, SemiNaive, unionQuery()},
		{"fix-semi-naive", 80, SemiNaive, tcFix("TC")},
		{"fix-naive", 80, Naive, tcFix("TC")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serialR, serialC, serialS := evalAt(t, tc.n, 1, tc.mode, tc.q)
			parR, parC, parS := evalAt(t, tc.n, 4, tc.mode, tc.q)
			if len(serialR.Rows) != len(parR.Rows) {
				t.Fatalf("row count: serial %d, parallel %d", len(serialR.Rows), len(parR.Rows))
			}
			for i := range serialR.Rows {
				if rowKey(serialR.Rows[i]) != rowKey(parR.Rows[i]) {
					t.Fatalf("row %d differs: serial %v, parallel %v", i, serialR.Rows[i], parR.Rows[i])
				}
			}
			if serialC != parC {
				t.Errorf("counters: serial %+v, parallel %+v", serialC, parC)
			}
			if serialS != parS {
				t.Errorf("stats tree differs:\n--- serial ---\n%s--- parallel ---\n%s", serialS, parS)
			}
		})
	}
}

// TestParallelRowBudget: the shared atomic row account must trip
// ErrRowBudget under the pool just as it does serially.
func TestParallelRowBudget(t *testing.T) {
	db := chainDB(t, 50)
	db.Parallelism = 4
	db.Limits = guard.Limits{MaxRows: 100}
	_, err := db.Eval(tcFix("TC"))
	if !errors.Is(err, guard.ErrRowBudget) {
		t.Fatalf("got %v, want ErrRowBudget", err)
	}
}

// TestParallelCancellation: a context deadline must interrupt a long
// fixpoint promptly even when rounds fan out to workers.
func TestParallelCancellation(t *testing.T) {
	db := chainDB(t, 600)
	db.Parallelism = 4
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := db.EvalCtx(ctx, tcFix("TC"))
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt interruption", elapsed)
	}
	if !errors.Is(err, guard.ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
}

// TestEmptyResultPreservesArity is the regression test for the
// empty-relation arity contract: an empty SEARCH result must still
// declare the projection arity (Relation.Width), and the stats tree must
// surface it instead of reporting a width-less operator.
func TestEmptyResultPreservesArity(t *testing.T) {
	cat, err := testdb.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	db := New(cat)
	if err := db.Load("EDGE", nil); err != nil {
		t.Fatal(err)
	}
	db.CollectStats = true

	// Empty input relation.
	q := lera.Search(
		[]*term.Term{lera.Rel("EDGE")},
		lera.TrueQual(),
		[]*term.Term{lera.Attr(1, 1), lera.Attr(1, 2)},
	)
	r, err := db.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 0 || r.Arity() != 2 {
		t.Fatalf("empty-input search: rows=%d arity=%d, want 0 rows of declared arity 2", len(r.Rows), r.Arity())
	}
	if s := db.LastExecStats().Format(false); !strings.Contains(s, "width=2") {
		t.Errorf("stats must report the declared arity of the empty result:\n%s", s)
	}

	// Statically false qualification short-circuits before touching the
	// stored relation but must still declare the projection arity.
	qf := lera.Search(
		[]*term.Term{lera.Rel("EDGE")},
		lera.Ands(term.C(value.Bool(false))),
		[]*term.Term{lera.Attr(1, 1), lera.Attr(1, 2), lera.Attr(1, 1)},
	)
	rf, err := db.Eval(qf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rf.Rows) != 0 || rf.Arity() != 3 {
		t.Fatalf("false-qual search: rows=%d arity=%d, want 0 rows of declared arity 3", len(rf.Rows), rf.Arity())
	}
}
