package engine

// Guardrail tests for the execution engine: per-instance fixpoint
// iteration caps (regression for the shared-counter bug), cooperative
// cancellation of long fixpoints, the row-materialization budget, and
// panic isolation around ADT function calls.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"lera/internal/guard"
	"lera/internal/lera"
	"lera/internal/term"
	"lera/internal/testdb"
	"lera/internal/value"
)

// chainDB returns a DB whose EDGE relation is a simple path
// 1 -> 2 -> ... -> n+1.
func chainDB(t *testing.T, n int) *DB {
	t.Helper()
	cat, err := testdb.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	db := New(cat)
	for i := 1; i <= n; i++ {
		if err := db.Insert("EDGE", []value.Value{value.Int(int64(i)), value.Int(int64(i + 1))}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// tcFix builds the transitive closure of EDGE as a fixpoint named name.
func tcFix(name string) *term.Term {
	seed := lera.Search(
		[]*term.Term{lera.Rel("EDGE")},
		lera.TrueQual(),
		[]*term.Term{lera.Attr(1, 1), lera.Attr(1, 2)},
	)
	rec := lera.Search(
		[]*term.Term{lera.Rel(name), lera.Rel("EDGE")},
		lera.Ands(lera.Cmp("=", lera.Attr(1, 2), lera.Attr(2, 1))),
		[]*term.Term{lera.Attr(1, 1), lera.Attr(2, 2)},
	)
	return lera.Fix(name, lera.Union(seed, rec), []string{"A", "B"})
}

// TestFixIterationCapPerInstance is the regression test for the shared
// fixpoint counter: two sequential recursive subterms each need ~n
// iterations; a cap of n+10 must hold per FIX instance, not across the
// query, and the shared Counters.FixIterations stays a statistic.
func TestFixIterationCapPerInstance(t *testing.T) {
	const n = 50
	for _, mode := range []FixMode{Naive, SemiNaive} {
		db := chainDB(t, n)
		db.Mode = mode
		db.Limits = guard.Limits{MaxFixIterations: n + 10}
		q := lera.Union(tcFix("TC"), tcFix("TC2"))
		r, err := db.Eval(q)
		if err != nil {
			t.Fatalf("mode %v: per-instance cap must admit both fixpoints: %v", mode, err)
		}
		if want := n * (n + 1) / 2; len(r.Rows) != want {
			t.Errorf("mode %v: closure rows = %d, want %d", mode, len(r.Rows), want)
		}
		// The stats counter aggregates across instances and therefore
		// exceeds the per-instance cap — proof it no longer feeds the check.
		if db.Count.FixIterations <= n+10 {
			t.Errorf("mode %v: FixIterations = %d, want > %d (shared stats)", mode, db.Count.FixIterations, n+10)
		}
	}
}

func TestFixIterationCapExceeded(t *testing.T) {
	for _, mode := range []FixMode{Naive, SemiNaive} {
		db := chainDB(t, 50)
		db.Mode = mode
		db.Limits = guard.Limits{MaxFixIterations: 5}
		_, err := db.Eval(tcFix("TC"))
		if err == nil {
			t.Fatalf("mode %v: cap 5 must fail on a 50-chain closure", mode)
		}
		msg := err.Error()
		if !strings.Contains(msg, "TC") || !strings.Contains(msg, "cap 5") {
			t.Errorf("mode %v: error must name the fixpoint and the cap: %v", mode, err)
		}
	}
}

// TestFixIterationCapParity is the regression test for the cap
// off-by-one: naive erred at iters >= cap while semi-naive allowed
// iters > cap, so the same query under the same Limits could converge in
// one mode and err in the other. The shared semantics is "cap = max
// productive rounds": the transitive closure of an n-chain needs exactly
// n productive rounds, so cap n must converge and cap n-1 must err — in
// both modes, with identical results on success.
func TestFixIterationCapParity(t *testing.T) {
	const n = 20
	want := n * (n + 1) / 2
	for _, tc := range []struct {
		cap     int
		wantErr bool
	}{{n, false}, {n - 1, true}} {
		for _, mode := range []FixMode{Naive, SemiNaive} {
			db := chainDB(t, n)
			db.Mode = mode
			db.Limits = guard.Limits{MaxFixIterations: tc.cap}
			r, err := db.Eval(tcFix("TC"))
			if tc.wantErr {
				if err == nil {
					t.Fatalf("mode %v cap %d: want iteration-cap error, got %d rows", mode, tc.cap, len(r.Rows))
				}
				if !strings.Contains(err.Error(), "cap") {
					t.Errorf("mode %v cap %d: error must mention the cap: %v", mode, tc.cap, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("mode %v cap %d: want convergence, got %v", mode, tc.cap, err)
			}
			if len(r.Rows) != want {
				t.Errorf("mode %v cap %d: closure rows = %d, want %d", mode, tc.cap, len(r.Rows), want)
			}
		}
	}
}

// TestCancelLongNaiveFixpoint is the smoke test that a context deadline
// interrupts a long-running naive fixpoint promptly.
func TestCancelLongNaiveFixpoint(t *testing.T) {
	db := chainDB(t, 600)
	db.Mode = Naive
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := db.EvalCtx(ctx, tcFix("TC"))
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt interruption", elapsed)
	}
	if !errors.Is(err, guard.ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
}

// TestCancelLongSemiNaiveFixpoint is the semi-naive twin: round 0 (the
// base members) must observe cancellation too — a huge base member used
// to run to completion before the first context check.
func TestCancelLongSemiNaiveFixpoint(t *testing.T) {
	db := chainDB(t, 600)
	db.Mode = SemiNaive
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := db.EvalCtx(ctx, tcFix("TC"))
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt interruption", elapsed)
	}
	if !errors.Is(err, guard.ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
}

func TestRowBudget(t *testing.T) {
	db := chainDB(t, 50)
	db.Limits = guard.Limits{MaxRows: 100}
	_, err := db.Eval(tcFix("TC"))
	if !errors.Is(err, guard.ErrRowBudget) {
		t.Fatalf("got %v, want ErrRowBudget", err)
	}
	// Within budget the same query succeeds.
	db2 := chainDB(t, 5)
	db2.Limits = guard.Limits{MaxRows: 1000}
	if _, err := db2.Eval(tcFix("TC")); err != nil {
		t.Fatalf("within budget: %v", err)
	}
}

func TestADTPanicIsolated(t *testing.T) {
	db := chainDB(t, 3)
	inj := guard.NewInjector()
	inj.Set("BOOMADT", guard.Fault{OnCall: 2, Mode: guard.FaultPanic, PanicValue: "adt kaboom"})
	db.Cat.ADTs.Register("BOOMADT", 1, true, func(args []value.Value) (value.Value, error) {
		if err := inj.Hit(nil, "BOOMADT"); err != nil {
			return value.Null, err
		}
		return args[0], nil
	})
	q := lera.Search(
		[]*term.Term{lera.Rel("EDGE")},
		lera.TrueQual(),
		[]*term.Term{lera.Call("BOOMADT", lera.Attr(1, 1))},
	)
	_, err := db.Eval(q)
	var ee *guard.ExternalError
	if !errors.As(err, &ee) {
		t.Fatalf("want ExternalError, got %v", err)
	}
	if ee.Kind != guard.ExtADT || ee.External != "BOOMADT" || ee.Panic != "adt kaboom" {
		t.Errorf("fields = %+v", ee)
	}
	if got := inj.Calls("BOOMADT"); got != 2 {
		t.Errorf("fault fired on call %d, want 2 (deterministic)", got)
	}
}
