package engine

// Out-of-core execution: the spill half of the memory governor
// (docs/PERF.md, "Memory governor & spill"). guard.Limits.MaxMemBytes is
// a per-operator memory grant in the work_mem tradition: each
// memory-hungry operator structure — a SEARCH hash-join build, a dedup
// pass, a fixpoint or INTERN/DIFF seen-set — tracks a deterministic
// estimate of its resident bytes, and the moment the estimate would
// exceed the grant it switches to its out-of-core strategy:
//
//   - join builds and dedup passes go grace-hash: rows are partitioned by
//     their 64-bit key hash (hash.go) into spillFanout disk partitions
//     with a length-prefixed value encoding, then joined/deduplicated
//     partition by partition, recursing with the next hash nibble when a
//     partition is itself over the grant (skew). Partition outputs merge
//     by original row index — the same index-ordered merge discipline as
//     the parallel sites (parallel.go) — so rows, Counters and the
//     deterministic EXPLAIN ANALYZE rendering are bit-identical to the
//     in-memory path at every batch size, pool size and budget;
//   - online membership sets (fixpoint seen-sets, INTERN/DIFF keys),
//     which must answer add/has queries mid-stream and therefore cannot
//     be deferred to a partition pass, migrate their row storage to an
//     append-only spill file and keep only hash→offset buckets in
//     memory, re-reading candidate rows for the collision-checked
//     equality fallback.
//
// Temp files live in a per-evaluation directory under DB.SpillDir,
// removed when the evaluation ends (success, error, cancellation or
// server drain all unwind through the same EvalCtx defer). Without a
// spill directory the switch is impossible and the operator fails with
// the typed guard.ErrMemBudget (protocol code MEM_BUDGET) instead of
// growing without bound.
//
// The size estimates are pure functions of row content, so the
// spill/fail decision is identical at every BatchSize and Parallelism
// setting — the governor never consults the (racy) shared account to
// decide, only to report. The tuple-at-a-time oracle engine is the
// unlimited-memory reference and ignores the governor entirely, exactly
// as it ignores the persistent index set.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync"

	"lera/internal/guard"
	"lera/internal/value"
)

// SpillStats are the cumulative out-of-core counters of a DB, kept
// separate from Counters on purpose: Counters are part of the
// bit-identity contract between spilled and in-memory runs, while spill
// activity is exactly what distinguishes them. Surfaced as the
// lera_engine_spill_* metrics through core/obs.
type SpillStats struct {
	// Partitions counts spill files created (grace partitions at every
	// recursion depth, plus one per migrated membership set).
	Partitions int64
	// Bytes counts bytes written to spill files.
	Bytes int64
	// Reads counts spill records read back (partition scans and
	// collision-candidate reads).
	Reads int64
}

// Add accumulates other into s.
func (s *SpillStats) Add(other SpillStats) {
	s.Partitions += other.Partitions
	s.Bytes += other.Bytes
	s.Reads += other.Reads
}

// Grace-hash geometry: partitions per level consume spillHashBits of the
// 64-bit row hash, so recursion can re-partition maxSpillDepth times
// before the hash is exhausted. A partition whose rows all share one
// hash (forced collisions, pathological data) stops splitting and is
// processed in memory — the collision-checked buckets keep it correct.
const (
	spillFanout   = 16
	spillHashBits = 4
	maxSpillDepth = 64 / spillHashBits
)

// spillNibble selects the partition of hash h at recursion depth d.
func spillNibble(h uint64, d int) int {
	return int((h >> (uint(d) * spillHashBits)) & (spillFanout - 1))
}

// Deterministic per-value resident-size estimates, in bytes. These are
// accounting units, not allocator truth: they only need to be pure
// functions of the value so every engine configuration makes the same
// spill decision.
const (
	valueSelfBytes = 96 // one value.Value struct
	rowSliceBytes  = 24 // one row slice header
	setEntryBytes  = 48 // per-row bookkeeping of a hashed (or spilled) set
)

// valueMemBytes estimates the resident bytes of one value.
func valueMemBytes(v value.Value) int64 {
	n := int64(valueSelfBytes) + int64(len(v.S))
	for _, name := range v.Names {
		n += 16 + int64(len(name))
	}
	for _, e := range v.Elems {
		n += valueMemBytes(e)
	}
	return n
}

// rowMemBytes estimates the resident bytes of one row.
func rowMemBytes(row []value.Value) int64 {
	n := int64(rowSliceBytes)
	for _, v := range row {
		n += valueMemBytes(v)
	}
	return n
}

// rowsMemBytes estimates the resident bytes of a row slice.
func rowsMemBytes(rows [][]value.Value) int64 {
	n := int64(rowSliceBytes)
	for _, row := range rows {
		n += rowMemBytes(row)
	}
	return n
}

// memGrant returns the per-operator memory grant (0 = governor off).
// The row oracle is the unlimited-memory reference engine and is never
// governed.
func (db *DB) memGrant() int64 {
	if db.g == nil || db.RowEngine {
		return 0
	}
	return db.g.lim.MaxMemBytes
}

// chargeMem adds n tracked bytes to the evaluation's shared account
// (reporting only — see guard.Budget.ChargeMem). A no-op when the
// governor is off, so ungoverned queries report MemPeakBytes == 0 and
// pay nothing in the hot paths.
func (db *DB) chargeMem(n int64) {
	if g := db.g; g != nil && n > 0 && g.lim.MaxMemBytes > 0 {
		g.rows.ChargeMem(n)
	}
}

// releaseMem returns n tracked bytes to the shared account.
func (db *DB) releaseMem(n int64) {
	if g := db.g; g != nil && n > 0 && g.lim.MaxMemBytes > 0 {
		g.rows.ReleaseMem(n)
	}
}

// spillOK reports whether the evaluation has a spill directory to move
// over-grant state into.
func (db *DB) spillOK() bool { return db.g != nil && db.g.spill.enabled() }

// errMemBudget is the typed over-grant failure of an operator that had
// no spill directory to degrade into.
func (db *DB) errMemBudget(op string, bytes int64) error {
	return fmt.Errorf("engine: %s needs ~%d tracked bytes (mem grant %d, no spill dir): %w",
		op, bytes, db.g.lim.MaxMemBytes, guard.ErrMemBudget)
}

// noteSpill records spill-file activity on the DB totals and the open
// EXPLAIN ANALYZE frame (spill annotations render only with timings, so
// the deterministic Format(false) output every bit-identity gate pins is
// untouched).
func (db *DB) noteSpill(partitions, bytes int64) {
	db.Spill.Partitions += partitions
	db.Spill.Bytes += bytes
	if g := db.g; g != nil && g.cur != nil {
		g.cur.SpillPartitions += partitions
		g.cur.SpillBytes += bytes
	}
}

// spillState is the per-evaluation spill-directory handle, shared by
// every worker clone (worker()). The directory is created lazily on the
// first spill and removed by the EvalCtx defer — success, error,
// cancellation and drain all unwind through it.
type spillState struct {
	base string // configured spill dir; "" = spilling disabled
	mu   sync.Mutex
	dir  string
	err  error
}

// enabled reports whether a spill directory is configured. Nil-safe.
func (s *spillState) enabled() bool { return s != nil && s.base != "" }

// tempFile creates a fresh spill file in the evaluation's directory.
func (s *spillState) tempFile() (*os.File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return nil, s.err
	}
	if s.dir == "" {
		dir, err := os.MkdirTemp(s.base, "lera-spill-*")
		if err != nil {
			s.err = fmt.Errorf("engine: creating spill dir: %w", err)
			return nil, s.err
		}
		s.dir = dir
	}
	f, err := os.CreateTemp(s.dir, "part-*")
	if err != nil {
		return nil, fmt.Errorf("engine: creating spill file: %w", err)
	}
	return f, nil
}

// cleanup removes the evaluation's spill directory and everything in it.
// Nil-safe and idempotent.
func (s *spillState) cleanup() {
	if s == nil {
		return
	}
	s.mu.Lock()
	dir := s.dir
	s.dir = ""
	s.mu.Unlock()
	if dir != "" {
		_ = os.RemoveAll(dir)
	}
}

// ---- Length-prefixed value encoding ----
//
// The spill record format must round-trip rows exactly under rowKeyEq:
// numeric kinds keep their float64 bit pattern (so -0.0 vs 0.0 and NaN
// payloads survive the disk trip), tuples keep their field names, and
// every kind keeps its Kind (ints do not collapse into reals on disk
// even though Key-equality treats them alike — rendering distinguishes
// them).

// appendValue appends the encoding of v to buf.
func appendValue(buf []byte, v value.Value) []byte {
	buf = append(buf, byte(v.K))
	switch v.K {
	case value.KNull:
	case value.KBool:
		if v.B {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case value.KInt:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.I))
	case value.KReal:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
	case value.KString:
		buf = binary.AppendUvarint(buf, uint64(len(v.S)))
		buf = append(buf, v.S...)
	case value.KOID:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.OID))
	case value.KTuple:
		buf = binary.AppendUvarint(buf, uint64(len(v.Elems)))
		for _, name := range v.Names {
			buf = binary.AppendUvarint(buf, uint64(len(name)))
			buf = append(buf, name...)
		}
		for _, e := range v.Elems {
			buf = appendValue(buf, e)
		}
	default: // collections
		buf = binary.AppendUvarint(buf, uint64(len(v.Elems)))
		for _, e := range v.Elems {
			buf = appendValue(buf, e)
		}
	}
	return buf
}

// appendRow appends the encoding of row to buf.
func appendRow(buf []byte, row []value.Value) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(row)))
	for _, v := range row {
		buf = appendValue(buf, v)
	}
	return buf
}

var errSpillCorrupt = fmt.Errorf("engine: corrupt spill record")

// decodeValue decodes one value at buf[pos:], returning the value and
// the position after it.
func decodeValue(buf []byte, pos int) (value.Value, int, error) {
	if pos >= len(buf) {
		return value.Value{}, pos, errSpillCorrupt
	}
	k := value.Kind(buf[pos])
	pos++
	v := value.Value{K: k}
	need := func(n int) bool { return pos+n <= len(buf) }
	switch k {
	case value.KNull:
	case value.KBool:
		if !need(1) {
			return v, pos, errSpillCorrupt
		}
		v.B = buf[pos] == 1
		pos++
	case value.KInt:
		if !need(8) {
			return v, pos, errSpillCorrupt
		}
		v.I = int64(binary.LittleEndian.Uint64(buf[pos:]))
		pos += 8
	case value.KReal:
		if !need(8) {
			return v, pos, errSpillCorrupt
		}
		v.F = math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:]))
		pos += 8
	case value.KString:
		n, w := binary.Uvarint(buf[pos:])
		if w <= 0 || !need(w+int(n)) {
			return v, pos, errSpillCorrupt
		}
		pos += w
		v.S = string(buf[pos : pos+int(n)])
		pos += int(n)
	case value.KOID:
		if !need(8) {
			return v, pos, errSpillCorrupt
		}
		v.OID = int64(binary.LittleEndian.Uint64(buf[pos:]))
		pos += 8
	case value.KTuple:
		n, w := binary.Uvarint(buf[pos:])
		if w <= 0 {
			return v, pos, errSpillCorrupt
		}
		pos += w
		v.Names = make([]string, n)
		for i := range v.Names {
			ln, lw := binary.Uvarint(buf[pos:])
			if lw <= 0 || !need(lw+int(ln)) {
				return v, pos, errSpillCorrupt
			}
			pos += lw
			v.Names[i] = string(buf[pos : pos+int(ln)])
			pos += int(ln)
		}
		v.Elems = make([]value.Value, n)
		for i := range v.Elems {
			var err error
			v.Elems[i], pos, err = decodeValue(buf, pos)
			if err != nil {
				return v, pos, err
			}
		}
	case value.KSet, value.KBag, value.KList, value.KArray:
		n, w := binary.Uvarint(buf[pos:])
		if w <= 0 {
			return v, pos, errSpillCorrupt
		}
		pos += w
		v.Elems = make([]value.Value, n)
		for i := range v.Elems {
			var err error
			v.Elems[i], pos, err = decodeValue(buf, pos)
			if err != nil {
				return v, pos, err
			}
		}
	default:
		return v, pos, errSpillCorrupt
	}
	return v, pos, nil
}

// decodeRow decodes one encoded row (the payload appendRow produced).
func decodeRow(buf []byte) ([]value.Value, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 {
		return nil, errSpillCorrupt
	}
	pos := w
	row := make([]value.Value, n)
	for i := range row {
		var err error
		row[i], pos, err = decodeValue(buf, pos)
		if err != nil {
			return nil, err
		}
	}
	if pos != len(buf) {
		return nil, errSpillCorrupt
	}
	return row, nil
}

// ---- Spill partition files ----
//
// Grace-hash record framing: [uvarint payload length] [payload], where
// the payload is [8-byte hash] [8-byte original row index] [encoded
// row]. The hash rides along so recursion re-partitions without
// re-hashing decoded rows; the index is what the index-ordered output
// merge keys on.

// spillPart is one buffered partition file being written.
type spillPart struct {
	f     *os.File
	buf   []byte
	bytes int64
	rows  int64
}

func (p *spillPart) add(h, idx uint64, row []value.Value) error {
	p.buf = p.buf[:0]
	p.buf = binary.LittleEndian.AppendUint64(p.buf, h)
	p.buf = binary.LittleEndian.AppendUint64(p.buf, idx)
	p.buf = appendRow(p.buf, row)
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(p.buf)))
	if _, err := p.f.Write(hdr[:n]); err != nil {
		return fmt.Errorf("engine: spill write: %w", err)
	}
	if _, err := p.f.Write(p.buf); err != nil {
		return fmt.Errorf("engine: spill write: %w", err)
	}
	p.bytes += int64(n + len(p.buf))
	p.rows++
	return nil
}

// close removes the partition file (partitions are single-pass scratch).
func (p *spillPart) close() {
	if p.f != nil {
		name := p.f.Name()
		_ = p.f.Close()
		_ = os.Remove(name)
		p.f = nil
	}
}

// spillRecord is one decoded partition record.
type spillRecord struct {
	hash uint64
	idx  uint64
	row  []value.Value
}

// readSpillPart reads every record of a partition file in write order,
// invoking fn for each. Reads are accounted on db.Spill.
func (db *DB) readSpillPart(p *spillPart, fn func(rec spillRecord) error) error {
	if _, err := p.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("engine: spill read: %w", err)
	}
	data, err := io.ReadAll(p.f)
	if err != nil {
		return fmt.Errorf("engine: spill read: %w", err)
	}
	pos := 0
	for pos < len(data) {
		n, w := binary.Uvarint(data[pos:])
		if w <= 0 || pos+w+int(n) > len(data) || n < 16 {
			return errSpillCorrupt
		}
		pos += w
		payload := data[pos : pos+int(n)]
		pos += int(n)
		row, err := decodeRow(payload[16:])
		if err != nil {
			return err
		}
		db.Spill.Reads++
		if err := fn(spillRecord{
			hash: binary.LittleEndian.Uint64(payload),
			idx:  binary.LittleEndian.Uint64(payload[8:]),
			row:  row,
		}); err != nil {
			return err
		}
	}
	return nil
}

// spillPartition routes rows into spillFanout partition files by the
// hash nibble at depth. hashes[i] must be the governing hash of rows[i];
// idx[i] is the original row index carried through for the ordered
// merge (nil = identity).
func (db *DB) spillPartition(rows [][]value.Value, hashes []uint64, idxs []uint64, depth int) ([]*spillPart, error) {
	parts := make([]*spillPart, spillFanout)
	cleanup := func() {
		for _, p := range parts {
			if p != nil {
				p.close()
			}
		}
	}
	for i, row := range rows {
		if err := db.tickRow(); err != nil {
			cleanup()
			return nil, err
		}
		h := hashes[i]
		pi := spillNibble(h, depth)
		p := parts[pi]
		if p == nil {
			f, err := db.g.spill.tempFile()
			if err != nil {
				cleanup()
				return nil, err
			}
			p = &spillPart{f: f}
			parts[pi] = p
		}
		idx := uint64(i)
		if idxs != nil {
			idx = idxs[i]
		}
		if err := p.add(h, idx, row); err != nil {
			cleanup()
			return nil, err
		}
	}
	for _, p := range parts {
		if p != nil {
			db.noteSpill(1, p.bytes)
		}
	}
	return parts, nil
}

// respillPart re-partitions one over-grant partition at the next hash
// nibble (the skew recursion), consuming and removing the parent file.
func (db *DB) respillPart(p *spillPart, depth int) ([]*spillPart, error) {
	parts := make([]*spillPart, spillFanout)
	cleanup := func() {
		for _, np := range parts {
			if np != nil {
				np.close()
			}
		}
	}
	err := db.readSpillPart(p, func(rec spillRecord) error {
		if err := db.tickRow(); err != nil {
			return err
		}
		pi := spillNibble(rec.hash, depth)
		np := parts[pi]
		if np == nil {
			f, err := db.g.spill.tempFile()
			if err != nil {
				return err
			}
			np = &spillPart{f: f}
			parts[pi] = np
		}
		return np.add(rec.hash, rec.idx, rec.row)
	})
	p.close()
	if err != nil {
		cleanup()
		return nil, err
	}
	for _, np := range parts {
		if np != nil {
			db.noteSpill(1, np.bytes)
		}
	}
	return parts, nil
}

// splittable reports whether a partition's rows can still be separated
// by deeper hash nibbles: once every record shares one hash (forced
// collisions, pathological data) recursion cannot help and the
// partition is processed in memory regardless of size.
func partSplittable(rows []spillRecord) bool {
	for i := 1; i < len(rows); i++ {
		if rows[i].hash != rows[0].hash {
			return true
		}
	}
	return false
}

// ---- Grace dedup ----

// dedupRows is the governed duplicate-elimination entry of the batched
// engine: the plain in-place pass (package dedupRows) while the
// deterministic input estimate is under the grant, graceDedup beyond it.
// The caller must own rows, like package dedupRows.
func (db *DB) dedupRows(rows [][]value.Value) ([][]value.Value, error) {
	grant := db.memGrant()
	if grant <= 0 {
		return dedupRows(rows), nil
	}
	total := rowsMemBytes(rows)
	if total > grant {
		if !db.spillOK() {
			return nil, db.errMemBudget("dedup set", total)
		}
		return db.graceDedup(rows)
	}
	db.chargeMem(total)
	out := dedupRows(rows)
	db.releaseMem(total)
	return out, nil
}

// graceDedup is the out-of-core dedupRows: rows are partitioned to disk
// by rowHash, each partition deduplicates independently (recursing on
// skew), and survivors merge by original row index — which reconstructs
// the exact first-occurrence order of the in-memory pass, over the very
// same row slices (the decoded disk copies are only used for the
// membership checks). The caller must own rows, like dedupRows.
func (db *DB) graceDedup(rows [][]value.Value) ([][]value.Value, error) {
	keep := make([]bool, len(rows))
	hashes := make([]uint64, len(rows))
	for i, row := range rows {
		if err := db.tickRow(); err != nil {
			return nil, err
		}
		hashes[i] = hashRowFn(row)
	}
	parts, err := db.spillPartition(rows, hashes, nil, 0)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, p := range parts {
			if p != nil {
				p.close()
			}
		}
	}()
	for _, p := range parts {
		if p == nil {
			continue
		}
		if err := db.dedupPart(p, keep, 0); err != nil {
			return nil, err
		}
	}
	out := rows[:0]
	for i, row := range rows {
		if keep[i] {
			out = append(out, row)
		}
	}
	return out, nil
}

// dedupPart deduplicates one partition: load its records, recurse when
// still over the grant and splittable, otherwise mark first occurrences
// in the shared keep bitmap through a collision-checked bucket scan.
func (db *DB) dedupPart(p *spillPart, keep []bool, depth int) error {
	grant := db.memGrant()
	if p.bytes > grant && depth+1 < maxSpillDepth {
		var recs []spillRecord
		// Peek only far enough to know whether deeper nibbles separate the
		// rows; an unsplittable partition (all one hash) is processed
		// directly however large.
		split := false
		var firstHash uint64
		first := true
		err := db.readSpillPart(p, func(rec spillRecord) error {
			if first {
				firstHash = rec.hash
				first = false
			} else if rec.hash != firstHash {
				split = true
			}
			recs = append(recs, rec)
			return nil
		})
		if err != nil {
			return err
		}
		if split {
			subs, err := db.respillPart(p, depth+1)
			if err != nil {
				return err
			}
			defer func() {
				for _, sp := range subs {
					if sp != nil {
						sp.close()
					}
				}
			}()
			for _, sp := range subs {
				if sp == nil {
					continue
				}
				if err := db.dedupPart(sp, keep, depth+1); err != nil {
					return err
				}
			}
			return nil
		}
		return db.dedupRecords(recs, keep)
	}
	var recs []spillRecord
	if err := db.readSpillPart(p, func(rec spillRecord) error {
		recs = append(recs, rec)
		return nil
	}); err != nil {
		return err
	}
	return db.dedupRecords(recs, keep)
}

// dedupRecords marks the first occurrence of each distinct row of one
// (sub)partition in the keep bitmap. Records arrive in original row
// order (partitioning preserves relative order at every depth), so the
// first bucket miss is the globally first occurrence within this
// partition — and distinct rows never span partitions.
func (db *DB) dedupRecords(recs []spillRecord, keep []bool) error {
	charged := int64(0)
	buckets := map[uint64][][]value.Value{}
	for _, rec := range recs {
		if err := db.tickRow(); err != nil {
			db.releaseMem(charged)
			return err
		}
		dup := false
		for _, seen := range buckets[rec.hash] {
			if rowKeyEq(seen, rec.row) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		buckets[rec.hash] = append(buckets[rec.hash], rec.row)
		n := rowMemBytes(rec.row) + setEntryBytes
		charged += n
		db.chargeMem(n)
		keep[rec.idx] = true
	}
	db.releaseMem(charged)
	return nil
}

// ---- Grace hash join ----

// graceJoin is the out-of-core SEARCH equi-join: build rows spill to
// hash partitions, probe rows stay in memory routed by the same key
// hash, and each partition builds its (bounded) joinIndex and probes its
// probe rows in original order. Per-probe match lists collect into an
// array indexed by probe position, so the final flatten reproduces the
// in-memory probe-order output exactly; JoinPairs and ticks account per
// probe row exactly as the in-memory loop does.
func (db *DB) graceJoin(probe, build [][]value.Value, leftKeys, rightKeys []int) ([][]value.Value, error) {
	probeHash := make([]uint64, len(probe))
	for i, prow := range probe {
		if err := db.tickRow(); err != nil {
			return nil, err
		}
		probeHash[i] = hashKeyFn(prow, leftKeys)
	}
	buildHash := make([]uint64, len(build))
	for i, brow := range build {
		if err := db.tickRow(); err != nil {
			return nil, err
		}
		buildHash[i] = hashKeyFn(brow, rightKeys)
	}
	parts, err := db.spillPartition(build, buildHash, nil, 0)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, p := range parts {
			if p != nil {
				p.close()
			}
		}
	}()
	probeIdxs := make([][]int, spillFanout)
	for i, h := range probeHash {
		pi := spillNibble(h, 0)
		probeIdxs[pi] = append(probeIdxs[pi], i)
	}
	out := make([][][]value.Value, len(probe))
	ar := &rowArena{db: db}
	for pi, p := range parts {
		if p == nil || len(probeIdxs[pi]) == 0 {
			if p != nil {
				// A partition no probe row hashes into cannot produce
				// matches; skip its scan entirely.
				continue
			}
			continue
		}
		if err := db.joinPart(p, probe, probeHash, probeIdxs[pi], leftKeys, rightKeys, 0, ar, out); err != nil {
			return nil, err
		}
	}
	joined := make([][]value.Value, 0, len(probe))
	for _, matches := range out {
		joined = append(joined, matches...)
	}
	return joined, nil
}

// joinPart joins one build partition against its probe rows, recursing
// with the next hash nibble when the partition exceeds the grant and is
// still splittable.
func (db *DB) joinPart(p *spillPart, probe [][]value.Value, probeHash []uint64, idxs []int, leftKeys, rightKeys []int, depth int, ar *rowArena, out [][][]value.Value) error {
	var recs []spillRecord
	if err := db.readSpillPart(p, func(rec spillRecord) error {
		recs = append(recs, rec)
		return nil
	}); err != nil {
		return err
	}
	if p.bytes > db.memGrant() && depth+1 < maxSpillDepth && partSplittable(recs) {
		subs, err := db.respillPart(p, depth+1)
		if err != nil {
			return err
		}
		defer func() {
			for _, sp := range subs {
				if sp != nil {
					sp.close()
				}
			}
		}()
		subIdxs := make([][]int, spillFanout)
		for _, i := range idxs {
			ni := spillNibble(probeHash[i], depth+1)
			subIdxs[ni] = append(subIdxs[ni], i)
		}
		for ni, sp := range subs {
			if sp == nil || len(subIdxs[ni]) == 0 {
				continue
			}
			if err := db.joinPart(sp, probe, probeHash, subIdxs[ni], leftKeys, rightKeys, depth+1, ar, out); err != nil {
				return err
			}
		}
		return nil
	}
	rows := make([][]value.Value, len(recs))
	charged := int64(0)
	for i, rec := range recs {
		rows[i] = rec.row
		charged += rowMemBytes(rec.row) + setEntryBytes
	}
	db.chargeMem(charged)
	defer db.releaseMem(charged)
	ix := buildJoinIndex(rows, rightKeys)
	for _, i := range idxs {
		matches := ix.probe(probe[i], leftKeys)
		if len(matches) == 0 {
			continue
		}
		if err := db.tickRows(len(matches)); err != nil {
			return err
		}
		db.Count.JoinPairs += len(matches)
		for _, rrow := range matches {
			out[i] = append(out[i], ar.join(probe[i], rrow))
		}
	}
	return nil
}

// ---- Spilled membership sets ----

// spillSet is the out-of-core online membership set: row payloads live
// in an append-only spill file, memory holds only hash→(offset,length)
// buckets, and the collision-checked equality fallback re-reads
// candidate rows from disk. Membership semantics are exactly rowSet's,
// so first-seen behavior — and with it every downstream row — is
// untouched by the migration.
type spillSet struct {
	db      *DB
	f       *os.File
	off     int64
	buckets map[uint64][]spillRef
	mem     int64 // charged bookkeeping bytes
	scratch []byte
}

type spillRef struct {
	off int64
	n   int32
}

func (db *DB) newSpillSet() (*spillSet, error) {
	f, err := db.g.spill.tempFile()
	if err != nil {
		return nil, err
	}
	db.noteSpill(1, 0)
	return &spillSet{db: db, f: f, buckets: map[uint64][]spillRef{}}, nil
}

// matchAt reports whether the stored row at ref equals row.
func (s *spillSet) matchAt(ref spillRef, row []value.Value) (bool, error) {
	if cap(s.scratch) < int(ref.n) {
		s.scratch = make([]byte, ref.n)
	}
	buf := s.scratch[:ref.n]
	if _, err := s.f.ReadAt(buf, ref.off); err != nil {
		return false, fmt.Errorf("engine: spill read: %w", err)
	}
	s.db.Spill.Reads++
	stored, err := decodeRow(buf)
	if err != nil {
		return false, err
	}
	return rowKeyEq(stored, row), nil
}

// insert appends row under hash h without a membership check.
func (s *spillSet) insert(h uint64, row []value.Value) error {
	payload := appendRow(s.scratch[:0], row)
	s.scratch = payload[:0]
	if _, err := s.f.WriteAt(payload, s.off); err != nil {
		return fmt.Errorf("engine: spill write: %w", err)
	}
	ref := spillRef{off: s.off, n: int32(len(payload))}
	s.off += int64(len(payload))
	s.buckets[h] = append(s.buckets[h], ref)
	s.db.noteSpill(0, int64(len(payload)))
	s.db.chargeMem(setEntryBytes)
	s.mem += setEntryBytes
	return nil
}

// add inserts row and reports whether it was newly added.
func (s *spillSet) add(row []value.Value) (bool, error) {
	h := hashRowFn(row)
	for _, ref := range s.buckets[h] {
		ok, err := s.matchAt(ref, row)
		if err != nil {
			return false, err
		}
		if ok {
			return false, nil
		}
	}
	if err := s.insert(h, row); err != nil {
		return false, err
	}
	return true, nil
}

// has reports membership without inserting.
func (s *spillSet) has(row []value.Value) (bool, error) {
	for _, ref := range s.buckets[hashRowFn(row)] {
		ok, err := s.matchAt(ref, row)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// close releases the set's file and charged bookkeeping.
func (s *spillSet) close() {
	if s.f != nil {
		name := s.f.Name()
		_ = s.f.Close()
		_ = os.Remove(name)
		s.f = nil
	}
	s.db.releaseMem(s.mem)
	s.mem = 0
}

// memSet is the budgeted online membership set of the batched engine:
// an ordinary hashed rowSet while under the grant, migrating its row
// storage to a spillSet the moment the tracked estimate crosses it.
// Used for fixpoint seen-sets and INTERN/DIFF membership — the sites
// where membership answers are consumed mid-stream and a partition pass
// is impossible.
type memSet struct {
	db    *DB
	label string
	grant int64
	set   *rowSet
	bytes int64
	sp    *spillSet
}

func (db *DB) newMemSet(label string) *memSet {
	return &memSet{db: db, label: label, grant: db.memGrant(), set: newRowSet()}
}

// add inserts row and reports whether it was newly added, migrating to
// disk when the insertion crosses the grant.
func (m *memSet) add(row []value.Value) (bool, error) {
	if m.sp != nil {
		return m.sp.add(row)
	}
	added := m.set.add(row)
	if added && m.grant > 0 {
		n := rowMemBytes(row) + setEntryBytes
		m.bytes += n
		m.db.chargeMem(n)
		if m.bytes > m.grant {
			if err := m.migrate(); err != nil {
				return false, err
			}
		}
	}
	return added, nil
}

// has reports membership without inserting.
func (m *memSet) has(row []value.Value) (bool, error) {
	if m.sp != nil {
		return m.sp.has(row)
	}
	return m.set.has(row), nil
}

// migrate moves the set's row storage to a spillSet, bucket by bucket
// (bucket order is irrelevant: only per-bucket candidate order matters,
// and membership answers are order-independent booleans either way).
func (m *memSet) migrate() error {
	if !m.db.spillOK() {
		return m.db.errMemBudget(m.label, m.bytes)
	}
	sp, err := m.db.newSpillSet()
	if err != nil {
		return err
	}
	for h, bucket := range m.set.m {
		for _, row := range bucket {
			if err := m.db.tickRow(); err != nil {
				sp.close()
				return err
			}
			if err := sp.insert(h, row); err != nil {
				sp.close()
				return err
			}
		}
	}
	m.db.releaseMem(m.bytes)
	m.bytes = 0
	m.set = nil
	m.sp = sp
	return nil
}

// close releases the set's memory charge and any spill file.
func (m *memSet) close() {
	if m.sp != nil {
		m.sp.close()
		m.sp = nil
	}
	m.db.releaseMem(m.bytes)
	m.bytes = 0
}
