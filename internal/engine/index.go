package engine

// Persistent per-relation hash indexes. The batched SEARCH builds its
// join build sides as joinIndex structures (hash.go); when the build side
// is a stored relation — a REL term resolving to db.rels, not shadowed by
// a LET/FIX binding and not a view — the index is kept in a set shared by
// every fork of the database, so repeated evaluations (plan-cache hits,
// fixpoint rounds joining against a stored relation, a server fork pool
// running the same shapes) stop rebuilding the hash table per query.
//
// Lifecycle (docs/PERF.md "Batched execution & relation indexes"):
//   - built lazily on first keyed access to a (relation, key columns)
//     pair;
//   - validated on every acquire against the catalog's data version
//     (bumped by Load/Insert on declared relations) plus the stored row
//     count, and dropped explicitly by Load/Insert on the loaded name —
//     the belt-and-braces path that also covers relations the catalog
//     does not declare;
//   - shared across Fork() under an RWMutex: concurrent read-only forks
//     (the server pool) probe warm indexes without rebuilding, and a
//     racing first access builds twice with the last store winning.
//
// Counters are unaffected by index reuse: REL evaluation still accounts
// Scanned for every stored access, so a warm index changes wall-clock and
// allocations, never the oracle-identical work model.

import (
	"strconv"
	"strings"
	"sync"

	"lera/internal/value"
)

// storedIndex is one cached index with its validity stamp.
type storedIndex struct {
	version uint64 // catalog data version at build time
	nrows   int    // stored row count at build time
	idx     *joinIndex
}

// indexSet is the shared, concurrency-safe index collection.
type indexSet struct {
	mu sync.RWMutex
	m  map[string]*storedIndex
}

func newIndexSet() *indexSet { return &indexSet{m: map[string]*storedIndex{}} }

// indexSetKey names one (relation, key columns) index. The NUL separator
// cannot occur in a relation name, so names never alias.
func indexSetKey(name string, keyIdx []int) string {
	var sb strings.Builder
	sb.Grow(len(name) + 4*len(keyIdx))
	sb.WriteString(name)
	for _, k := range keyIdx {
		sb.WriteByte(0)
		sb.WriteString(strconv.Itoa(k))
	}
	return sb.String()
}

// acquire returns a warm index for (name, keyIdx) when one is cached and
// still valid, building and caching a fresh one otherwise.
func (s *indexSet) acquire(version uint64, name string, rows [][]value.Value, keyIdx []int) *joinIndex {
	k := indexSetKey(name, keyIdx)
	s.mu.RLock()
	e := s.m[k]
	s.mu.RUnlock()
	if e != nil && e.version == version && e.nrows == len(rows) {
		return e.idx
	}
	ix := buildJoinIndex(rows, keyIdx)
	s.mu.Lock()
	s.m[k] = &storedIndex{version: version, nrows: len(rows), idx: ix}
	s.mu.Unlock()
	return ix
}

// invalidate drops every cached index of the named relation (the name is
// already uppercased by Load/Insert).
func (s *indexSet) invalidate(name string) {
	s.mu.Lock()
	for k := range s.m {
		if k == name || strings.HasPrefix(k, name+"\x00") {
			delete(s.m, k)
		}
	}
	s.mu.Unlock()
}

// lookup returns the cached entry for (name, keyIdx) without validation —
// a white-box hook for the invalidation tests.
func (s *indexSet) lookup(name string, keyIdx []int) *storedIndex {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[indexSetKey(name, keyIdx)]
}

// size returns the number of cached indexes.
func (s *indexSet) size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}
