package engine

import (
	"sort"
	"testing"

	"lera/internal/lera"
	"lera/internal/term"
	"lera/internal/testdb"
	"lera/internal/value"
)

// loadedDB builds the Figure 2 database with its sample instance.
func loadedDB(t *testing.T) *DB {
	t.Helper()
	cat, err := testdb.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := testdb.Data()
	if err != nil {
		t.Fatal(err)
	}
	db := New(cat)
	for name, rows := range inst.Rows {
		if err := db.Load(name, rows); err != nil {
			t.Fatal(err)
		}
	}
	for oid, obj := range inst.Objects {
		db.SetObject(oid, obj)
	}
	return db
}

func evalOK(t *testing.T, db *DB, q *term.Term) *Relation {
	t.Helper()
	r, err := db.Eval(q)
	if err != nil {
		t.Fatalf("eval %s: %v", lera.Format(q), err)
	}
	return r
}

func col(r *Relation, j int) []string {
	var out []string
	for _, row := range r.Rows {
		out = append(out, row[j-1].String())
	}
	sort.Strings(out)
	return out
}

func TestEvalRelAndLoad(t *testing.T) {
	db := loadedDB(t)
	r := evalOK(t, db, lera.Rel("FILM"))
	if len(r.Rows) != 4 {
		t.Errorf("FILM rows = %d", len(r.Rows))
	}
	if _, err := db.Eval(lera.Rel("NOSUCH")); err == nil {
		t.Error("unknown relation must error")
	}
	// Arity validation on load.
	if err := db.Load("FILM", [][]value.Value{{value.Int(1)}}); err == nil {
		t.Error("bad arity must fail")
	}
	if err := db.Insert("FILM", []value.Value{value.Int(9)}); err == nil {
		t.Error("bad insert arity must fail")
	}
	if err := db.Insert("SCRATCH", []value.Value{value.Int(9)}); err != nil {
		t.Errorf("undeclared relation insert: %v", err)
	}
	if db.Stored("SCRATCH") == nil {
		t.Error("Stored must see inserted relation")
	}
}

// TestFigure3Query executes the paper's §3.1 search:
//
//	search((APPEARS_IN, FILM),
//	       [1.1=2.1 ∧ name(1.2)='Quinn' ∧ member('Adventure', 2.3)],
//	       (2.2, 2.3, salary(1.2)))
func TestFigure3Query(t *testing.T) {
	db := loadedDB(t)
	q := lera.Search(
		[]*term.Term{lera.Rel("APPEARS_IN"), lera.Rel("FILM")},
		lera.Ands(
			lera.Cmp("=", lera.Attr(1, 1), lera.Attr(2, 1)),
			lera.Cmp("=", lera.Call("Name", lera.Attr(1, 2)), term.Str("Quinn")),
			lera.Call("Member", term.Str("Adventure"), lera.Attr(2, 3)),
		),
		[]*term.Term{lera.Attr(2, 2), lera.Attr(2, 3), lera.Call("Salary", lera.Attr(1, 2))},
	)
	r := evalOK(t, db, q)
	// Quinn appears in films 1 (Adventure) and 3 (Western): only film 1
	// qualifies.
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	row := r.Rows[0]
	if row[0].S != "Lawrence of Arabia" {
		t.Errorf("title = %v", row[0])
	}
	if row[2].I != 12000 {
		t.Errorf("salary = %v", row[2])
	}
}

// The same query in typed-checked form (§3.3): salary(1.2) rewritten to
// PROJECT(VALUE(1.2), Salary) must give identical results.
func TestFigure3QueryTypeChecked(t *testing.T) {
	db := loadedDB(t)
	q := lera.Search(
		[]*term.Term{lera.Rel("APPEARS_IN"), lera.Rel("FILM")},
		lera.Ands(
			lera.Cmp("=", lera.Attr(1, 1), lera.Attr(2, 1)),
			lera.Cmp("=", lera.Project(lera.Value(lera.Attr(1, 2)), "Name"), term.Str("Quinn")),
			term.F("MEMBER", term.Str("Adventure"), lera.Attr(2, 3)),
		),
		[]*term.Term{lera.Attr(2, 2), lera.Attr(2, 3), lera.Project(lera.Value(lera.Attr(1, 2)), "Salary")},
	)
	r := evalOK(t, db, q)
	if len(r.Rows) != 1 || r.Rows[0][2].I != 12000 {
		t.Errorf("typed query result: %v", r.Rows)
	}
}

// TestFigure4Query: nested view semantics — nest actors per film, then
// apply the ALL quantifier over the projected salaries.
func TestFigure4Query(t *testing.T) {
	db := loadedDB(t)
	// FilmActors ≈ nest(search((FILM, APPEARS_IN), [1.1=2.1], (1.2, 1.3, 2.2)), (3), Actors)
	fa := lera.Nest(
		lera.Search(
			[]*term.Term{lera.Rel("FILM"), lera.Rel("APPEARS_IN")},
			lera.Ands(lera.Cmp("=", lera.Attr(1, 1), lera.Attr(2, 1))),
			[]*term.Term{lera.Attr(1, 2), lera.Attr(1, 3), lera.Attr(2, 2)},
		),
		[]int{3}, "Actors",
	)
	// SELECT Title WHERE MEMBER('Adventure', Categories) AND ALL(Salary(Actors) > 10000)
	q := lera.Search(
		[]*term.Term{fa},
		lera.Ands(
			term.F("MEMBER", term.Str("Adventure"), lera.Attr(1, 2)),
			term.F("ALL", lera.Cmp(">", lera.Call("Salary", lera.Attr(1, 3)), term.Num(10000))),
		),
		[]*term.Term{lera.Attr(1, 1)},
	)
	r := evalOK(t, db, q)
	// Film 1: Quinn 12000, Brando 18000, Bogart 15000 — all > 10000. ✓
	// Film 2: Bogart 15000, Hepburn 11000 — all > 10000. ✓ (Adventure+Comedy)
	got := col(r, 1)
	want := []string{"'Casablanca'", "'Lawrence of Arabia'"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("titles = %v, want %v", got, want)
	}
}

// TestFixpointFigure5 computes the §3.2 fixpoint of BETTER_THAN and the
// Figure 5 query "who dominates Quinn".
func fig5Fix() *term.Term {
	seed := lera.Search(
		[]*term.Term{lera.Rel("DOMINATE")},
		lera.TrueQual(),
		[]*term.Term{lera.Attr(1, 2), lera.Attr(1, 3)},
	)
	rec := lera.Search(
		[]*term.Term{lera.Rel("BETTER_THAN"), lera.Rel("BETTER_THAN")},
		lera.Ands(lera.Cmp("=", lera.Attr(1, 2), lera.Attr(2, 1))),
		[]*term.Term{lera.Attr(1, 1), lera.Attr(2, 2)},
	)
	return lera.Fix("BETTER_THAN", lera.Union(seed, rec), []string{"Refactor1", "Refactor2"})
}

func TestFixpointFigure5(t *testing.T) {
	for _, mode := range []FixMode{SemiNaive, Naive} {
		db := loadedDB(t)
		db.Mode = mode
		q := lera.Search(
			[]*term.Term{fig5Fix()},
			lera.Ands(lera.Cmp("=", lera.Call("Name", lera.Attr(1, 2)), term.Str("Quinn"))),
			[]*term.Term{lera.Call("Name", lera.Attr(1, 1))},
		)
		r := evalOK(t, db, q)
		got := col(r, 1)
		var want []string
		for _, n := range testdb.DominatorsOfQuinn() {
			want = append(want, "'"+n+"'")
		}
		if len(got) != len(want) {
			t.Fatalf("mode %v: dominators = %v, want %v", mode, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("mode %v: dominators[%d] = %s, want %s", mode, i, got[i], want[i])
			}
		}
	}
}

// Semi-naive and naive fixpoints agree on random graphs, and semi-naive
// does no more join work.
func TestFixpointModesAgree(t *testing.T) {
	cat, _ := testdb.Catalog()
	for seed := int64(1); seed <= 5; seed++ {
		rows := randomGraph(40, 80, seed)
		run := func(mode FixMode) (*Relation, Counters) {
			db := New(cat)
			db.Mode = mode
			if err := db.Load("DOMINATE", rows); err != nil {
				t.Fatal(err)
			}
			r, err := db.Eval(fig5Fix())
			if err != nil {
				t.Fatal(err)
			}
			return r.Dedup(), db.Count
		}
		sn, cSN := run(SemiNaive)
		nv, cNV := run(Naive)
		if len(sn.Rows) != len(nv.Rows) {
			t.Fatalf("seed %d: semi-naive %d rows, naive %d rows", seed, len(sn.Rows), len(nv.Rows))
		}
		snKeys := map[string]bool{}
		for _, row := range sn.Rows {
			snKeys[rowKey(row)] = true
		}
		for _, row := range nv.Rows {
			if !snKeys[rowKey(row)] {
				t.Fatalf("seed %d: naive row missing from semi-naive: %v", seed, row)
			}
		}
		if cSN.JoinPairs > cNV.JoinPairs {
			t.Errorf("seed %d: semi-naive did more join work (%d > %d)", seed, cSN.JoinPairs, cNV.JoinPairs)
		}
	}
}

func randomGraph(n, edges int, seed int64) [][]value.Value {
	// Deterministic LCG to avoid pulling math/rand into the hot path.
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func(mod int) int {
		state = state*2862933555777941757 + 3037000493
		return int(state>>33) % mod
	}
	score := value.NewList()
	var rows [][]value.Value
	for i := 0; i < edges; i++ {
		a, b := next(n)+1, next(n)+1
		rows = append(rows, []value.Value{value.Int(1), value.OID(int64(a)), value.OID(int64(b)), score})
	}
	return rows
}

func TestUnionInterDiff(t *testing.T) {
	db := loadedDB(t)
	filmIDs := func(rel string) *term.Term {
		return lera.Search([]*term.Term{lera.Rel(rel)}, lera.TrueQual(), []*term.Term{lera.Attr(1, 1)})
	}
	u := evalOK(t, db, lera.Union(filmIDs("FILM"), filmIDs("APPEARS_IN")))
	// FILM ids 1-4; APPEARS_IN ids 1-4 as well: union dedupes to 4.
	if len(u.Rows) != 4 {
		t.Errorf("union rows = %d", len(u.Rows))
	}
	i := evalOK(t, db, lera.Inter(filmIDs("FILM"), filmIDs("DOMINATE")))
	// DOMINATE has film ids 1,2,3,4.
	if len(i.Rows) != 4 {
		t.Errorf("inter rows = %d", len(i.Rows))
	}
	d := evalOK(t, db, lera.Diff(filmIDs("FILM"), filmIDs("DOMINATE")))
	if len(d.Rows) != 0 {
		t.Errorf("diff rows = %d", len(d.Rows))
	}
	if _, err := db.Eval(term.F(lera.OpInter, term.Set())); err == nil {
		t.Error("empty intersection must error")
	}
}

func TestFilterAndJoinOps(t *testing.T) {
	db := loadedDB(t)
	f := evalOK(t, db, lera.Filter(lera.Rel("FILM"),
		lera.Ands(term.F("MEMBER", term.Str("Western"), lera.Attr(1, 3)))))
	if len(f.Rows) != 1 || f.Rows[0][1].S != "High Noon" {
		t.Errorf("filter rows = %v", f.Rows)
	}
	j := evalOK(t, db, lera.Join(lera.Rel("FILM"), lera.Rel("APPEARS_IN"),
		lera.Ands(lera.Cmp("=", lera.Attr(1, 1), lera.Attr(2, 1)))))
	if len(j.Rows) != 8 {
		t.Errorf("join rows = %d", len(j.Rows))
	}
	if j.Arity() != 5 {
		t.Errorf("join arity = %d", j.Arity())
	}
}

func TestNestUnnestRoundTrip(t *testing.T) {
	db := loadedDB(t)
	n := lera.Nest(lera.Rel("APPEARS_IN"), []int{2}, "Actors")
	nested := evalOK(t, db, n)
	if len(nested.Rows) != 4 { // four films
		t.Fatalf("nest rows = %d", len(nested.Rows))
	}
	for _, row := range nested.Rows {
		if row[1].K != value.KSet {
			t.Errorf("nested col kind = %v", row[1].K)
		}
	}
	un := evalOK(t, db, lera.Unnest(n, 2))
	if len(un.Rows) != 8 {
		t.Errorf("unnest rows = %d", len(un.Rows))
	}
	// Multi-column nest produces tuples.
	n2 := evalOK(t, db, lera.Nest(lera.Rel("DOMINATE"), []int{2, 3}, "Pairs"))
	for _, row := range n2.Rows {
		if row[len(row)-1].K != value.KSet || row[len(row)-1].Elems[0].K != value.KTuple {
			t.Errorf("multi-nest elem = %v", row[len(row)-1])
		}
	}
	// Unnest of a non-collection column fails.
	if _, err := db.Eval(lera.Unnest(lera.Rel("FILM"), 1)); err == nil {
		t.Error("unnest scalar must fail")
	}
}

func TestLet(t *testing.T) {
	db := loadedDB(t)
	q := lera.Let("M",
		lera.Search([]*term.Term{lera.Rel("FILM")}, lera.TrueQual(), []*term.Term{lera.Attr(1, 1)}),
		lera.Search([]*term.Term{lera.Rel("M"), lera.Rel("M")},
			lera.Ands(lera.Cmp("=", lera.Attr(1, 1), lera.Attr(2, 1))),
			[]*term.Term{lera.Attr(1, 1)}),
	)
	r := evalOK(t, db, q)
	if len(r.Rows) != 4 {
		t.Errorf("let rows = %d", len(r.Rows))
	}
}

func TestCounters(t *testing.T) {
	db := loadedDB(t)
	db.ResetCounters()
	q := lera.Search(
		[]*term.Term{lera.Rel("FILM"), lera.Rel("APPEARS_IN")},
		lera.Ands(lera.Cmp("=", lera.Attr(1, 1), lera.Attr(2, 1))),
		[]*term.Term{lera.Attr(1, 2)},
	)
	evalOK(t, db, q)
	if db.Count.Scanned != 12 { // 4 FILM + 8 APPEARS_IN
		t.Errorf("scanned = %d", db.Count.Scanned)
	}
	// Hash join: join pairs equal matching pairs (8), not 32.
	if db.Count.JoinPairs != 8 {
		t.Errorf("join pairs = %d", db.Count.JoinPairs)
	}
	// Set semantics: the 8 join results project to 4 distinct titles.
	if db.Count.Emitted != 4 {
		t.Errorf("emitted = %d", db.Count.Emitted)
	}
	var c2 Counters
	c2.Add(db.Count)
	if c2.Scanned != db.Count.Scanned {
		t.Error("Counters.Add")
	}
}

func TestEvalErrors(t *testing.T) {
	db := loadedDB(t)
	bad := []*term.Term{
		term.Num(1),
		term.F(lera.OpSearch, term.List(), lera.TrueQual(), term.List()),
		lera.Search([]*term.Term{lera.Rel("FILM")}, lera.Ands(lera.Cmp("=", lera.Attr(9, 1), term.Num(1))), []*term.Term{lera.Attr(1, 1)}),
		lera.Search([]*term.Term{lera.Rel("FILM")}, lera.Ands(lera.Attr(1, 1)), []*term.Term{lera.Attr(1, 1)}), // non-boolean qual
		lera.Search([]*term.Term{lera.Rel("FILM")}, lera.TrueQual(), []*term.Term{term.V("x")}),
		term.F("FROBNICATE", lera.Rel("FILM")),
	}
	for _, q := range bad {
		if _, err := db.Eval(q); err == nil {
			t.Errorf("Eval(%s) should fail", q)
		}
	}
	// Dangling OID.
	db2 := loadedDB(t)
	delete(db2.Objects, 1)
	q := lera.Search(
		[]*term.Term{lera.Rel("APPEARS_IN")},
		lera.Ands(lera.Cmp("=", lera.Call("Name", lera.Attr(1, 2)), term.Str("Quinn"))),
		[]*term.Term{lera.Attr(1, 1)},
	)
	if _, err := db2.Eval(q); err == nil {
		t.Error("dangling OID must error")
	}
}

func TestObjectSemantics(t *testing.T) {
	db := loadedDB(t)
	// VALUE on a non-OID is the identity.
	q := lera.Search(
		[]*term.Term{lera.Rel("FILM")},
		lera.TrueQual(),
		[]*term.Term{lera.Value(lera.Attr(1, 1))},
	)
	r := evalOK(t, db, q)
	if r.Rows[0][0].K != value.KInt {
		t.Errorf("VALUE(int) = %v", r.Rows[0][0])
	}
	// PROJECT broadcast over a set of OIDs (set of actors -> set of names).
	fa := lera.Nest(lera.Rel("APPEARS_IN"), []int{2}, "Actors")
	q2 := lera.Search(
		[]*term.Term{fa},
		lera.TrueQual(),
		[]*term.Term{lera.Project(lera.Attr(1, 2), "Name")},
	)
	r2 := evalOK(t, db, q2)
	for _, row := range r2.Rows {
		if row[0].K != value.KSet {
			t.Fatalf("broadcast project = %v", row[0])
		}
		for _, el := range row[0].Elems {
			if el.K != value.KString {
				t.Errorf("projected element = %v", el)
			}
		}
	}
}

func TestDedupAndArity(t *testing.T) {
	r := &Relation{Rows: [][]value.Value{
		{value.Int(1)}, {value.Int(1)}, {value.Int(2)},
	}}
	d := r.Dedup()
	if len(d.Rows) != 2 {
		t.Errorf("dedup rows = %d", len(d.Rows))
	}
	if (&Relation{}).Arity() != 0 {
		t.Error("empty relation arity")
	}
	if r.Arity() != 1 {
		t.Error("arity")
	}
}

func TestFixNonUnionBodyFallsBackToNaive(t *testing.T) {
	db := loadedDB(t)
	// fix(R, search((DOMINATE), true, (1.2, 1.3))) — no recursion at all;
	// the body is not a union, so semi-naive falls back to naive and
	// converges in two rounds.
	q := lera.Fix("R",
		lera.Search([]*term.Term{lera.Rel("DOMINATE")}, lera.TrueQual(),
			[]*term.Term{lera.Attr(1, 2), lera.Attr(1, 3)}),
		[]string{"a", "b"})
	r := evalOK(t, db, q)
	if len(r.Rows) != 5 {
		t.Errorf("rows = %d", len(r.Rows))
	}
	if db.Count.FixIterations != 2 {
		t.Errorf("iterations = %d", db.Count.FixIterations)
	}
}
