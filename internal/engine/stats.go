package engine

// Per-operator execution statistics — the engine's first in-band account
// of where execution work goes, operator by operator, rather than the
// single flat Counters total. Collection is opt-in (DB.CollectStats); the
// disabled path is one nil check per operator evaluation and allocates
// nothing, so production queries that don't ask for EXPLAIN ANALYZE pay
// nothing.

import (
	"fmt"
	"strings"
	"time"
)

// MaxOpChildren bounds the fanout of one OpStats node: a fixpoint body
// re-evaluated for hundreds of rounds must not grow the stats tree
// without bound. Dropped children still contribute to the parent's
// inclusive counters; Truncated counts them.
const MaxOpChildren = 64

// FixRound records one fixpoint iteration: how many new rows the round
// contributed and the accumulated total afterwards.
type FixRound struct {
	Round int `json:"round"`
	Delta int `json:"delta"`
	Total int `json:"total"`
}

// OpStats is one node of the per-operator execution statistics tree.
// Counter fields (Scanned, JoinPairs, Emitted, PredEvals, FixIterations
// via Incl) are inclusive of the subtree; Self* accessors subtract the
// retained children.
type OpStats struct {
	Op     string `json:"op"`               // operator functor: SEARCH, JOIN, FIX, REL, ...
	Detail string `json:"detail,omitempty"` // relation name, fixpoint name and mode, ...
	Rows   int    `json:"rows"`             // rows produced by this operator
	Width  int    `json:"width,omitempty"`  // arity of the output relation (declared even when empty)
	// Incl aggregates the work counters over this operator's subtree.
	Incl Counters `json:"counters"`
	// Rounds holds per-iteration deltas for FIX nodes (both naive and
	// semi-naive evaluation record them).
	Rounds []FixRound `json:"rounds,omitempty"`
	// SpillPartitions/SpillBytes record out-of-core activity of this
	// operator (spill.go). Like Duration they are rendered only with
	// timings — the deterministic Format(false) output must stay
	// bit-identical between spilled and in-memory runs.
	SpillPartitions int64         `json:"spillPartitions,omitempty"`
	SpillBytes      int64         `json:"spillBytes,omitempty"`
	Duration        time.Duration `json:"durationNs"`
	Children        []*OpStats    `json:"children,omitempty"`
	Truncated       int           `json:"truncatedChildren,omitempty"`
}

// Self returns the node's own work: the inclusive counters minus the
// retained children's inclusive counters. When children were truncated
// their work stays attributed here — the totals remain exact, only the
// attribution coarsens.
func (o *OpStats) Self() Counters {
	c := o.Incl
	for _, ch := range o.Children {
		c.Scanned -= ch.Incl.Scanned
		c.JoinPairs -= ch.Incl.JoinPairs
		c.Emitted -= ch.Incl.Emitted
		c.PredEvals -= ch.Incl.PredEvals
		c.FixIterations -= ch.Incl.FixIterations
	}
	return c
}

// Format renders the stats tree as an indented outline. With withTimings
// false the output is deterministic for a fixed database and plan, which
// is what the trace-determinism regression pins.
func (o *OpStats) Format(withTimings bool) string {
	var sb strings.Builder
	o.format(&sb, 0, withTimings)
	return sb.String()
}

func (o *OpStats) format(sb *strings.Builder, depth int, withTimings bool) {
	indent := strings.Repeat("  ", depth)
	sb.WriteString(indent)
	sb.WriteString(o.Op)
	if o.Detail != "" {
		sb.WriteByte(' ')
		sb.WriteString(o.Detail)
	}
	self := o.Self()
	fmt.Fprintf(sb, " rows=%d", o.Rows)
	// Width is printed only for empty outputs: with rows present the arity
	// is evident, and this keeps previously pinned renderings unchanged
	// while surfacing the formerly under-reported empty-result arity.
	if o.Rows == 0 && o.Width > 0 {
		fmt.Fprintf(sb, " width=%d", o.Width)
	}
	if self.Scanned > 0 {
		fmt.Fprintf(sb, " scanned=%d", self.Scanned)
	}
	if self.JoinPairs > 0 {
		fmt.Fprintf(sb, " pairs=%d", self.JoinPairs)
	}
	if self.PredEvals > 0 {
		fmt.Fprintf(sb, " evals=%d", self.PredEvals)
	}
	if len(o.Rounds) > 0 {
		fmt.Fprintf(sb, " rounds=%d", len(o.Rounds))
	}
	if withTimings {
		if o.SpillPartitions > 0 || o.SpillBytes > 0 {
			fmt.Fprintf(sb, " spill=%dp/%dB", o.SpillPartitions, o.SpillBytes)
		}
		fmt.Fprintf(sb, " (%s)", o.Duration.Round(time.Microsecond))
	}
	sb.WriteByte('\n')
	for _, r := range o.Rounds {
		fmt.Fprintf(sb, "%s  · round %d: +%d rows (total %d)\n", indent, r.Round, r.Delta, r.Total)
	}
	for _, c := range o.Children {
		c.format(sb, depth+1, withTimings)
	}
	if o.Truncated > 0 {
		fmt.Fprintf(sb, "%s  (%d more operator evaluations truncated)\n", indent, o.Truncated)
	}
}

// LastExecStats returns the per-operator statistics tree of the most
// recent EvalCtx run with CollectStats enabled (nil otherwise). The root
// is a synthetic "eval" node whose single child is the query's top
// operator.
func (db *DB) LastExecStats() *OpStats { return db.lastStats }

// statsEnter opens a stats node for the operator t and returns the
// parent frame to restore. Called only when collection is on.
func (db *DB) statsEnter(op string) (node, parent *OpStats) {
	g := db.g
	parent = g.cur
	node = &OpStats{Op: op, Incl: db.Count}
	if len(parent.Children) >= MaxOpChildren {
		parent.Truncated++
		node.Children = nil
		// The node is still tracked (so counters and rounds attribute
		// correctly) but not retained in the tree.
	} else {
		parent.Children = append(parent.Children, node)
	}
	g.cur = node
	return node, parent
}

// statsExit closes a stats node: converts the entry counter snapshot into
// an inclusive delta, records output size and duration, and restores the
// parent frame.
func (db *DB) statsExit(node, parent *OpStats, start time.Time, out *Relation) {
	snap := node.Incl
	node.Incl = db.Count
	node.Incl.Scanned -= snap.Scanned
	node.Incl.JoinPairs -= snap.JoinPairs
	node.Incl.Emitted -= snap.Emitted
	node.Incl.PredEvals -= snap.PredEvals
	node.Incl.FixIterations -= snap.FixIterations
	if out != nil {
		node.Rows = len(out.Rows)
		node.Width = out.Arity()
	}
	node.Duration = time.Since(start)
	db.g.cur = parent
}

// recordFixRound appends one fixpoint-iteration record to the current
// stats node (a no-op unless collection is on and a FIX node is open).
func (db *DB) recordFixRound(round, delta, total int) {
	g := db.g
	if g == nil || g.cur == nil || g.cur.Op != "FIX" {
		return
	}
	g.cur.Rounds = append(g.cur.Rounds, FixRound{Round: round, Delta: delta, Total: total})
}

// setStatsDetail annotates the current stats node (no-op when collection
// is off).
func (db *DB) setStatsDetail(detail string) {
	g := db.g
	if g == nil || g.cur == nil {
		return
	}
	g.cur.Detail = detail
}
