package engine

// The batched execution engine — the default since the PR that added it.
// Operators produce and consume row batches (DefaultBatchSize rows at a
// time) so the hot loops run tight over slices with one amortized guard
// tick, one counter update and one stats touch per batch instead of
// per-row function dispatch. Row identity uses 64-bit hashed keys with
// collision-checked buckets (hash.go) in place of the oracle's rowKey
// strings, and SEARCH join build sides over stored relations come from
// the persistent index set (index.go, batchsearch.go).
//
// The contract with the retained tuple-at-a-time oracle (DB.RowEngine,
// engine.go) is bit-identity: rows in the same order, every Counters
// field, and the EXPLAIN ANALYZE OpStats tree must be indistinguishable
// at every BatchSize and Parallelism setting, under guard budgets and
// fault injection alike. Counters therefore keep the oracle's *logical*
// work model — e.g. REL accounts Scanned on every stored access even
// when a warm index means no physical rescan happens.

import (
	"fmt"

	"lera/internal/guard"
	"lera/internal/term"
	"lera/internal/value"
)

// DefaultBatchSize is the row-batch granularity of the batched engine
// when DB.BatchSize is zero.
const DefaultBatchSize = 1024

// batchSize returns the effective batch granularity.
func (db *DB) batchSize() int {
	if db.BatchSize > 0 {
		return db.BatchSize
	}
	return DefaultBatchSize
}

// tickRows is the batched form of tickRow: it advances the amortized
// cancellation tick by n rows at once and consults the context only when
// a guardTickInterval boundary is crossed — the same tick total as n
// tickRow calls, one branch per batch.
func (db *DB) tickRows(n int) error {
	g := db.g
	if g == nil || n <= 0 {
		return nil
	}
	before := g.tick
	g.tick += n
	if before/guardTickInterval == g.tick/guardTickInterval {
		return nil
	}
	return guard.CheckCtx(g.ctx)
}

// rowArena amortizes output-row allocation: rows are carved out of shared
// blocks with full-capacity slicing, so an append on a returned row can
// never alias the next one. Blocks grow geometrically from a small first
// block to arenaMaxBlockValues, so the thousands of tiny evaluations a
// fixpoint performs don't each zero a full-size block while large scans
// still amortize to one allocation per ~8k values. One arena per worker
// chunk — never shared across goroutines. When db is set, block
// allocations are charged to the evaluation's tracked-memory account
// (arena rows live on as operator output, so the charge is never
// released within the evaluation — a safe overestimate for the peak
// gauge, and never part of any spill/fail decision).
type rowArena struct {
	buf []value.Value
	blk int
	db  *DB
}

// Arena block growth bounds, in values (not rows).
const (
	arenaMinBlockValues = 64
	arenaMaxBlockValues = 8192
)

// alloc returns a zeroed row of n values from the arena.
func (a *rowArena) alloc(n int) []value.Value {
	if n == 0 {
		return nil
	}
	if len(a.buf)+n > cap(a.buf) {
		blk := a.blk * 2
		if blk < arenaMinBlockValues {
			blk = arenaMinBlockValues
		}
		if blk > arenaMaxBlockValues {
			blk = arenaMaxBlockValues
		}
		if blk < n {
			blk = n
		}
		a.blk = blk
		a.buf = make([]value.Value, 0, blk)
		if a.db != nil {
			a.db.chargeMem(int64(blk) * valueSelfBytes)
		}
	}
	s := len(a.buf)
	a.buf = a.buf[:s+n]
	return a.buf[s : s+n : s+n]
}

// join returns the concatenation l ++ r as a fresh arena row.
func (a *rowArena) join(l, r []value.Value) []value.Value {
	row := a.alloc(len(l) + len(r))
	copy(row, l)
	copy(row[len(l):], r)
	return row
}

// evalOpBatch dispatches the data-moving operators to their batched
// implementations.
func (db *DB) evalOpBatch(t *term.Term, e env) (*Relation, error) {
	switch t.Functor {
	case "SEARCH":
		return db.evalSearchBatch(t, e)
	case "FILTER":
		return db.evalFilterBatch(t, e)
	case "JOIN":
		return db.evalJoinBatch(t, e)
	case "UNIONN":
		return db.evalUnionBatch(t, e)
	case "INTERN":
		return db.evalInterBatch(t, e)
	case "DIFF":
		return db.evalDiffBatch(t, e)
	case "NEST":
		return db.evalNestBatch(t, e)
	case "UNNEST":
		return db.evalUnnestBatch(t, e)
	}
	return nil, fmt.Errorf("engine: unknown operator %s", t.Functor)
}

func (db *DB) evalFilterBatch(t *term.Term, e env) (*Relation, error) {
	in, err := db.eval(t.Args[0], e)
	if err != nil {
		return nil, err
	}
	kept, err := db.mapRowChunks(in.Rows, func(w *DB, chunk [][]value.Value) ([][]value.Value, error) {
		var out [][]value.Value
		bs := w.batchSize()
		ctxRows := make([][]value.Value, 1) // reused single-relation row context
		for len(chunk) > 0 {
			batch := chunk
			if len(batch) > bs {
				batch = batch[:bs]
			}
			chunk = chunk[len(batch):]
			if err := w.tickRows(len(batch)); err != nil {
				return nil, err
			}
			for _, row := range batch {
				ctxRows[0] = row
				ok, err := w.evalBool(t.Args[1], ctxRows)
				if err != nil {
					return nil, err
				}
				if ok {
					out = append(out, row)
				}
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	deduped, err := db.dedupRows(kept)
	if err != nil {
		return nil, err
	}
	out := &Relation{Rows: deduped, Width: in.Arity()}
	db.Count.Emitted += len(out.Rows)
	if err := db.chargeRows(len(out.Rows)); err != nil {
		return nil, err
	}
	return out, nil
}

func (db *DB) evalJoinBatch(t *term.Term, e env) (*Relation, error) {
	left, err := db.eval(t.Args[0], e)
	if err != nil {
		return nil, err
	}
	right, err := db.eval(t.Args[1], e)
	if err != nil {
		return nil, err
	}
	// The raw JOIN operator stays a nested loop in both engines: every
	// pair is accounted in JoinPairs, so converting it to a hash join
	// would change the work model (SEARCH is where join planning lives).
	out := &Relation{Width: left.Arity() + right.Arity()}
	ar := &rowArena{db: db}
	ctxRows := make([][]value.Value, 2)
	bs := db.batchSize()
	for _, l := range left.Rows {
		ctxRows[0] = l
		for ri := 0; ri < len(right.Rows); {
			n := len(right.Rows) - ri
			if n > bs {
				n = bs
			}
			if err := db.tickRows(n); err != nil {
				return nil, err
			}
			for _, r := range right.Rows[ri : ri+n] {
				// JoinPairs stays per-pair (not per-batch) so the counter
				// state is oracle-identical when a qualification faults
				// mid-batch.
				db.Count.JoinPairs++
				ctxRows[1] = r
				ok, err := db.evalBool(t.Args[2], ctxRows)
				if err != nil {
					return nil, err
				}
				if ok {
					out.Rows = append(out.Rows, ar.join(l, r))
				}
			}
			ri += n
		}
	}
	out.Rows, err = db.dedupRows(out.Rows)
	if err != nil {
		return nil, err
	}
	db.Count.Emitted += len(out.Rows)
	if err := db.chargeRows(len(out.Rows)); err != nil {
		return nil, err
	}
	return out, nil
}

func (db *DB) evalUnionBatch(t *term.Term, e env) (*Relation, error) {
	rels, err := db.evalMembers(t.Args[0].Args, e)
	if err != nil {
		return nil, err
	}
	out := &Relation{}
	total := 0
	for _, r := range rels {
		total += len(r.Rows)
	}
	rows := make([][]value.Value, 0, total)
	for _, r := range rels {
		if out.Width == 0 {
			out.Width = r.Arity()
		}
		rows = append(rows, r.Rows...)
	}
	out.Rows, err = db.dedupRows(rows)
	if err != nil {
		return nil, err
	}
	db.Count.Emitted += len(out.Rows)
	if err := db.chargeRows(len(out.Rows)); err != nil {
		return nil, err
	}
	return out, nil
}

func (db *DB) evalInterBatch(t *term.Term, e env) (*Relation, error) {
	members := t.Args[0].Args
	if len(members) == 0 {
		return nil, fmt.Errorf("engine: empty intersection")
	}
	acc, err := db.eval(members[0], e)
	if err != nil {
		return nil, err
	}
	keys := db.newMemSet("intersection key-set")
	defer func() { keys.close() }()
	for _, row := range acc.Rows {
		if _, err := keys.add(row); err != nil {
			return nil, err
		}
	}
	for _, m := range members[1:] {
		r, err := db.eval(m, e)
		if err != nil {
			return nil, err
		}
		next := db.newMemSet("intersection key-set")
		for _, row := range r.Rows {
			ok, err := keys.has(row)
			if err != nil {
				next.close()
				return nil, err
			}
			if !ok {
				continue
			}
			if _, err := next.add(row); err != nil {
				next.close()
				return nil, err
			}
		}
		keys.close()
		keys = next
	}
	out := &Relation{Width: acc.Arity()}
	seen := db.newMemSet("intersection seen-set")
	defer seen.close()
	for _, row := range acc.Rows {
		ok, err := keys.has(row)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		added, err := seen.add(row)
		if err != nil {
			return nil, err
		}
		if added {
			out.Rows = append(out.Rows, row)
		}
	}
	db.Count.Emitted += len(out.Rows)
	if err := db.chargeRows(len(out.Rows)); err != nil {
		return nil, err
	}
	return out, nil
}

func (db *DB) evalDiffBatch(t *term.Term, e env) (*Relation, error) {
	left, err := db.eval(t.Args[0], e)
	if err != nil {
		return nil, err
	}
	right, err := db.eval(t.Args[1], e)
	if err != nil {
		return nil, err
	}
	drop := db.newMemSet("difference drop-set")
	defer drop.close()
	for _, row := range right.Rows {
		if _, err := drop.add(row); err != nil {
			return nil, err
		}
	}
	out := &Relation{Width: left.Arity()}
	seen := db.newMemSet("difference seen-set")
	defer seen.close()
	for _, row := range left.Rows {
		dropped, err := drop.has(row)
		if err != nil {
			return nil, err
		}
		if dropped {
			continue
		}
		added, err := seen.add(row)
		if err != nil {
			return nil, err
		}
		if added {
			out.Rows = append(out.Rows, row)
		}
	}
	db.Count.Emitted += len(out.Rows)
	if err := db.chargeRows(len(out.Rows)); err != nil {
		return nil, err
	}
	return out, nil
}

func (db *DB) evalNestBatch(t *term.Term, e env) (*Relation, error) {
	in, err := db.eval(t.Args[0], e)
	if err != nil {
		return nil, err
	}
	nested := map[int]bool{}
	var nestedIdx []int
	for _, ix := range t.Args[1].Args {
		j := int(ix.Val.I)
		nested[j] = true
		nestedIdx = append(nestedIdx, j)
	}
	type nestGroup struct {
		key   []value.Value
		elems []value.Value
	}
	var order []*nestGroup
	buckets := map[uint64][]*nestGroup{}
	var keyScratch []value.Value
	for _, row := range in.Rows {
		if len(nestedIdx) > 0 && nestedIdx[len(nestedIdx)-1] > len(row) {
			return nil, fmt.Errorf("engine: NEST index out of range for row of width %d", len(row))
		}
		keyScratch = keyScratch[:0]
		for j := 1; j <= len(row); j++ {
			if !nested[j] {
				keyScratch = append(keyScratch, row[j-1])
			}
		}
		var elem value.Value
		if len(nestedIdx) == 1 {
			elem = row[nestedIdx[0]-1]
		} else {
			names := make([]string, len(nestedIdx))
			vals := make([]value.Value, len(nestedIdx))
			for i, j := range nestedIdx {
				names[i] = fmt.Sprintf("a%d", j)
				vals[i] = row[j-1]
			}
			elem = value.NewTuple(names, vals)
		}
		h := hashRowFn(keyScratch)
		var g *nestGroup
		for _, cand := range buckets[h] {
			if rowKeyEq(cand.key, keyScratch) {
				g = cand
				break
			}
		}
		if g == nil {
			g = &nestGroup{key: append([]value.Value(nil), keyScratch...)}
			buckets[h] = append(buckets[h], g)
			order = append(order, g)
		}
		g.elems = append(g.elems, elem)
	}
	out := &Relation{}
	if w := in.Arity(); w > 0 {
		out.Width = w - len(nestedIdx) + 1
	}
	for _, g := range order {
		out.Rows = append(out.Rows, append(append([]value.Value(nil), g.key...), value.NewSet(g.elems...)))
	}
	db.Count.Emitted += len(out.Rows)
	if err := db.chargeRows(len(out.Rows)); err != nil {
		return nil, err
	}
	return out, nil
}

func (db *DB) evalUnnestBatch(t *term.Term, e env) (*Relation, error) {
	in, err := db.eval(t.Args[0], e)
	if err != nil {
		return nil, err
	}
	j := int(t.Args[1].Val.I)
	out := &Relation{Width: in.Arity()}
	bs := db.batchSize()
	rows := in.Rows
	for len(rows) > 0 {
		batch := rows
		if len(batch) > bs {
			batch = batch[:bs]
		}
		rows = rows[len(batch):]
		if err := db.tickRows(len(batch)); err != nil {
			return nil, err
		}
		for _, row := range batch {
			if j < 1 || j > len(row) {
				return nil, fmt.Errorf("engine: UNNEST index %d out of range", j)
			}
			coll := row[j-1]
			if !coll.K.IsCollection() {
				return nil, fmt.Errorf("engine: UNNEST column %d is %s, not a collection", j, coll.K)
			}
			for _, el := range coll.Elems {
				nrow := append([]value.Value(nil), row...)
				nrow[j-1] = el
				out.Rows = append(out.Rows, nrow)
			}
		}
	}
	out.Rows, err = db.dedupRows(out.Rows)
	if err != nil {
		return nil, err
	}
	db.Count.Emitted += len(out.Rows)
	if err := db.chargeRows(len(out.Rows)); err != nil {
		return nil, err
	}
	return out, nil
}
