package engine

// Algebraic-law property tests: the identities the syntactic rewrite
// rules rely on must hold in the engine under set semantics, on random
// relations. Each law is checked by evaluating both sides and comparing
// canonical row sets.

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"lera/internal/catalog"
	"lera/internal/lera"
	"lera/internal/term"
	"lera/internal/value"
)

func lawDB(t *testing.T, r *rand.Rand) *DB {
	t.Helper()
	cat := catalog.New()
	cols := []catalog.Column{
		{Name: "A", Type: cat.Types.Int},
		{Name: "B", Type: cat.Types.Int},
	}
	for _, n := range []string{"R", "S", "T"} {
		if _, err := cat.DeclareRelation(n, cols); err != nil {
			t.Fatal(err)
		}
	}
	db := New(cat)
	for _, n := range []string{"R", "S", "T"} {
		rows := make([][]value.Value, r.Intn(12)+1)
		for i := range rows {
			rows[i] = []value.Value{value.Int(int64(r.Intn(6))), value.Int(int64(r.Intn(6)))}
		}
		if err := db.Load(n, rows); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func canonRel(t *testing.T, db *DB, q *term.Term) string {
	t.Helper()
	rel, err := db.Eval(q)
	if err != nil {
		t.Fatalf("eval %s: %v", lera.Format(q), err)
	}
	var keys []string
	for _, row := range rel.Rows {
		var parts []string
		for _, v := range row {
			parts = append(parts, v.Key())
		}
		keys = append(keys, strings.Join(parts, ","))
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

func sigma(rel *term.Term, q *term.Term, arity int) *term.Term {
	projs := make([]*term.Term, arity)
	for j := range projs {
		projs[j] = lera.Attr(1, j+1)
	}
	return lera.Search([]*term.Term{rel}, lera.Ands(q), projs)
}

func pi(rel *term.Term, cols ...int) *term.Term {
	projs := make([]*term.Term, len(cols))
	for i, c := range cols {
		projs[i] = lera.Attr(1, c)
	}
	return lera.Search([]*term.Term{rel}, lera.TrueQual(), projs)
}

func TestLawSelectDistributesOverUnion(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		db := lawDB(t, r)
		q := lera.Cmp(">", lera.Attr(1, 1), term.Num(int64(r.Intn(5))))
		lhs := sigma(lera.Union(lera.Rel("R"), lera.Rel("S")), q, 2)
		rhs := lera.Union(sigma(lera.Rel("R"), q, 2), sigma(lera.Rel("S"), q, 2))
		if canonRel(t, db, lhs) != canonRel(t, db, rhs) {
			t.Fatalf("trial %d: σ(R∪S) ≠ σR ∪ σS", trial)
		}
	}
}

func TestLawProjectDistributesOverUnion(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 25; trial++ {
		db := lawDB(t, r)
		lhs := pi(lera.Union(lera.Rel("R"), lera.Rel("S")), 2)
		rhs := lera.Union(pi(lera.Rel("R"), 2), pi(lera.Rel("S"), 2))
		if canonRel(t, db, lhs) != canonRel(t, db, rhs) {
			t.Fatalf("trial %d: π(R∪S) ≠ πR ∪ πS (set semantics)", trial)
		}
	}
}

func TestLawSelectCommutesWithDiffLeft(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		db := lawDB(t, r)
		q := lera.Cmp("<", lera.Attr(1, 2), term.Num(int64(r.Intn(5))))
		lhs := sigma(lera.Diff(lera.Rel("R"), lera.Rel("S")), q, 2)
		rhs := lera.Diff(sigma(lera.Rel("R"), q, 2), lera.Rel("S"))
		if canonRel(t, db, lhs) != canonRel(t, db, rhs) {
			t.Fatalf("trial %d: σ(R−S) ≠ σ(R)−S", trial)
		}
	}
}

func TestLawSelectCommutesWithInter(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		db := lawDB(t, r)
		q := lera.Cmp("=", lera.Attr(1, 1), term.Num(int64(r.Intn(5))))
		lhs := sigma(lera.Inter(lera.Rel("R"), lera.Rel("S")), q, 2)
		// σ pushed into one operand, as the push_inter rule does.
		rhs := lera.Inter(sigma(lera.Rel("R"), q, 2), lera.Rel("S"))
		if canonRel(t, db, lhs) != canonRel(t, db, rhs) {
			t.Fatalf("trial %d: σ(R∩S) ≠ σ(R)∩S", trial)
		}
	}
}

func TestLawUnionAlgebra(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		db := lawDB(t, r)
		// Commutative + associative + idempotent by SET construction.
		a := lera.Union(lera.Rel("R"), lera.Rel("S"), lera.Rel("T"))
		b := lera.Union(lera.Rel("T"), lera.Union(lera.Rel("S"), lera.Rel("R")))
		// b contains a nested union; flatten by evaluation semantics.
		if canonRel(t, db, a) != canonRel(t, db, b) {
			t.Fatalf("trial %d: union algebra violated", trial)
		}
		// A ∪ A = A.
		if canonRel(t, db, lera.Union(lera.Rel("R"), lera.Rel("R"))) != canonRel(t, db, sigma(lera.Rel("R"), term.TrueT(), 2)) {
			t.Fatalf("trial %d: union idempotence violated", trial)
		}
	}
}

func TestLawNestUnnestInverse(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 25; trial++ {
		db := lawDB(t, r)
		// unnest(nest(R, (2), s), 2) = R, under set semantics.
		n := lera.Nest(lera.Rel("R"), []int{2}, "s")
		un := lera.Unnest(n, 2)
		if canonRel(t, db, un) != canonRel(t, db, sigma(lera.Rel("R"), term.TrueT(), 2)) {
			t.Fatalf("trial %d: unnest∘nest ≠ id", trial)
		}
	}
}
