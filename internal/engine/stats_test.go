package engine

import (
	"strings"
	"testing"

	"lera/internal/lera"
	"lera/internal/term"
)

// statsFor evaluates q with per-operator collection on and returns the
// stats tree.
func statsFor(t *testing.T, db *DB, q *term.Term) *OpStats {
	t.Helper()
	db.CollectStats = true
	defer func() { db.CollectStats = false }()
	if _, err := db.Eval(q); err != nil {
		t.Fatalf("eval %s: %v", lera.Format(q), err)
	}
	root := db.LastExecStats()
	if root == nil {
		t.Fatal("LastExecStats = nil after a CollectStats run")
	}
	return root
}

func TestExecStatsTreeShape(t *testing.T) {
	db := loadedDB(t)
	q := lera.Search(
		[]*term.Term{lera.Rel("FILM")},
		lera.Ands(lera.Cmp("=", lera.Attr(1, 1), term.Num(3))),
		[]*term.Term{lera.Attr(1, 2)})
	root := statsFor(t, db, q)

	if root.Op != "eval" || len(root.Children) != 1 {
		t.Fatalf("root = %s with %d children, want eval/1", root.Op, len(root.Children))
	}
	search := root.Children[0]
	if search.Op != lera.OpSearch {
		t.Fatalf("top operator = %s, want %s", search.Op, lera.OpSearch)
	}
	if search.Rows != 1 {
		t.Fatalf("SEARCH rows = %d, want 1", search.Rows)
	}
	if len(search.Children) != 1 || search.Children[0].Op != lera.OpRel {
		t.Fatalf("SEARCH children = %+v, want one REL", search.Children)
	}
	rel := search.Children[0]
	if rel.Detail != "FILM" || rel.Rows != 4 {
		t.Fatalf("REL = %s rows=%d, want FILM rows=4", rel.Detail, rel.Rows)
	}
	// Inclusive counters: the REL scan is attributed to the subtree.
	if search.Incl.Scanned != 4 || rel.Incl.Scanned != 4 {
		t.Fatalf("scanned incl: search=%d rel=%d, want 4/4", search.Incl.Scanned, rel.Incl.Scanned)
	}
	// Self: the parent's own work excludes the child's.
	if self := search.Self(); self.Scanned != 0 {
		t.Fatalf("SEARCH self scanned = %d, want 0", self.Scanned)
	}
}

func findOp(root *OpStats, op string) *OpStats {
	if root.Op == op {
		return root
	}
	for _, c := range root.Children {
		if found := findOp(c, op); found != nil {
			return found
		}
	}
	return nil
}

func TestExecStatsFixRounds(t *testing.T) {
	for _, mode := range []FixMode{SemiNaive, Naive} {
		db := chainDB(t, 4) // 5 nodes, 10 transitive-closure pairs
		q := tcFix("TC")
		db.Mode = mode
		root := statsFor(t, db, q)
		fix := findOp(root, lera.OpFix)
		if fix == nil {
			t.Fatalf("mode %v: no FIX node in stats tree", mode)
		}
		wantDetail := "TC [semi-naive]"
		if mode == Naive {
			wantDetail = "TC [naive]"
		}
		if fix.Detail != wantDetail {
			t.Errorf("mode %v: FIX detail = %q, want %q", mode, fix.Detail, wantDetail)
		}
		if fix.Rows != 10 { // chain of 5: C(5,2) = 10 pairs
			t.Errorf("mode %v: FIX rows = %d, want 10", mode, fix.Rows)
		}
		if len(fix.Rounds) < 2 {
			t.Fatalf("mode %v: rounds = %v, want per-round deltas", mode, fix.Rounds)
		}
		// Deltas must sum to the total, totals must be monotone, and the
		// last round is the empty one that stopped the iteration.
		sum, prevTotal := 0, 0
		for _, r := range fix.Rounds {
			sum += r.Delta
			if r.Total < prevTotal {
				t.Errorf("mode %v: total shrank: %v", mode, fix.Rounds)
			}
			prevTotal = r.Total
		}
		if sum != 10 || prevTotal != 10 {
			t.Errorf("mode %v: deltas sum=%d final total=%d, want 10/10", mode, sum, prevTotal)
		}
		if last := fix.Rounds[len(fix.Rounds)-1]; last.Delta != 0 {
			t.Errorf("mode %v: last round delta = %d, want 0", mode, last.Delta)
		}
		out := fix.Format(false)
		if !strings.Contains(out, wantDetail) || !strings.Contains(out, "· round 1:") {
			t.Errorf("mode %v: Format missing detail/rounds:\n%s", mode, out)
		}
	}
}

func TestExecStatsChildTruncation(t *testing.T) {
	db := chainDB(t, 4)
	// Drive more children than the cap under one parent via a long UNIONN
	// of EDGE searches.
	var members []*term.Term
	for i := 0; i < MaxOpChildren+8; i++ {
		// Distinct qualifications keep the UNIONN set from deduplicating
		// the members.
		members = append(members, lera.Search([]*term.Term{lera.Rel("EDGE")},
			lera.Ands(lera.Cmp(">", lera.Attr(1, 1), term.Num(int64(-1-i)))),
			[]*term.Term{lera.Attr(1, 1)}))
	}
	root := statsFor(t, db, lera.Union(members...))
	un := root.Children[0]
	if un.Op != lera.OpUnion {
		t.Fatalf("top op = %s", un.Op)
	}
	if len(un.Children) != MaxOpChildren {
		t.Fatalf("children = %d, want capped at %d", len(un.Children), MaxOpChildren)
	}
	if un.Truncated != 8 {
		t.Fatalf("Truncated = %d, want 8", un.Truncated)
	}
	// Counters stay exact: all members' scans are in the parent's Incl.
	if want := (MaxOpChildren + 8) * 4; un.Incl.Scanned != want {
		t.Fatalf("Incl.Scanned = %d, want %d (truncation must not lose work)", un.Incl.Scanned, want)
	}
	if !strings.Contains(un.Format(false), "(8 more operator evaluations truncated)") {
		t.Fatal("Format missing truncation note")
	}
}

// TestExecStatsDisabledNoCollection pins the contract that a run without
// CollectStats leaves no tree behind (and clears nothing it shouldn't).
func TestExecStatsDisabledCheap(t *testing.T) {
	db := loadedDB(t)
	q := lera.Search([]*term.Term{lera.Rel("FILM")}, lera.TrueQual(),
		[]*term.Term{lera.Attr(1, 2)})
	if _, err := db.Eval(q); err != nil {
		t.Fatal(err)
	}
	if db.LastExecStats() != nil {
		t.Fatal("stats tree present after a CollectStats=false run")
	}
}
