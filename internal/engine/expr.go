package engine

// Expression evaluation for qualifications and projections: attribute
// references, object dereference (VALUE), tuple projection with the §2.2
// collection broadcast ("the application of the projection function to a
// set of tuples gives the set of projected tuples"), attribute-as-function
// calls, comparison broadcast for the Figure 4 quantifiers, and ADT
// function calls through the catalog's registry.

import (
	"context"
	"fmt"
	"strings"

	"lera/internal/guard"
	"lera/internal/lera"
	"lera/internal/term"
	"lera/internal/value"
)

// evalExpr evaluates an expression against a row context: one row slice
// per relation of the enclosing operator.
func (db *DB) evalExpr(e *term.Term, rows [][]value.Value) (value.Value, error) {
	switch e.Kind {
	case term.Const:
		return e.Val, nil
	case term.Var, term.SeqVar:
		return value.Null, fmt.Errorf("engine: unbound variable %s in expression", e)
	}
	switch e.Functor {
	case lera.EAttr:
		i, j, _ := lera.AttrIdx(e)
		if i < 1 || i > len(rows) {
			return value.Null, fmt.Errorf("engine: attribute %d.%d: relation index out of range", i, j)
		}
		if j < 1 || j > len(rows[i-1]) {
			return value.Null, fmt.Errorf("engine: attribute %d.%d: column index out of range", i, j)
		}
		return rows[i-1][j-1], nil

	case lera.EValue:
		v, err := db.evalExpr(e.Args[0], rows)
		if err != nil {
			return value.Null, err
		}
		return db.deref(v)

	case lera.EProject:
		v, err := db.evalExpr(e.Args[0], rows)
		if err != nil {
			return value.Null, err
		}
		return db.projectField(v, e.Args[1].Val.S)

	case lera.ECall:
		name, _ := lera.CallName(e)
		args := make([]value.Value, len(e.Args)-1)
		for i, a := range e.Args[1:] {
			v, err := db.evalExpr(a, rows)
			if err != nil {
				return value.Null, err
			}
			args[i] = v
		}
		return db.call(name, args)

	case lera.EAnds, lera.EOrs:
		all := e.Functor == lera.EAnds
		for _, c := range e.Args[0].Args {
			b, err := db.evalBool(c, rows)
			if err != nil {
				return value.Null, err
			}
			if all && !b {
				return value.False, nil
			}
			if !all && b {
				return value.True, nil
			}
		}
		return value.Bool(all), nil

	case lera.ENot:
		b, err := db.evalBool(e.Args[0], rows)
		if err != nil {
			return value.Null, err
		}
		return value.Bool(!b), nil

	case "=", "<>", "<", ">", "<=", ">=":
		a, err := db.evalExpr(e.Args[0], rows)
		if err != nil {
			return value.Null, err
		}
		b, err := db.evalExpr(e.Args[1], rows)
		if err != nil {
			return value.Null, err
		}
		// Comparison broadcast (Figure 4): a collection compared with a
		// scalar yields the collection of element-wise comparisons, which
		// the ALL/EXIST quantifiers then fold.
		if a.K.IsCollection() && !b.K.IsCollection() {
			return db.broadcastCmp(e.Functor, a, b, false)
		}
		if b.K.IsCollection() && !a.K.IsCollection() {
			return db.broadcastCmp(e.Functor, b, a, true)
		}
		return db.adtCall(e.Functor, []value.Value{a, b})

	case term.FSet, term.FBag, term.FList, term.FArray:
		elems := make([]value.Value, len(e.Args))
		for i, a := range e.Args {
			v, err := db.evalExpr(a, rows)
			if err != nil {
				return value.Null, err
			}
			elems[i] = v
		}
		switch e.Functor {
		case term.FSet:
			return value.NewSet(elems...), nil
		case term.FBag:
			return value.NewBag(elems...), nil
		case term.FList:
			return value.NewList(elems...), nil
		default:
			return value.NewArray(elems...), nil
		}
	}

	// Generic ADT function application (MEMBER, ISEMPTY, UNION, ALL, ...).
	args := make([]value.Value, len(e.Args))
	for i, a := range e.Args {
		v, err := db.evalExpr(a, rows)
		if err != nil {
			return value.Null, err
		}
		args[i] = v
	}
	return db.call(e.Functor, args)
}

func (db *DB) broadcastCmp(op string, coll, scalar value.Value, scalarLeft bool) (value.Value, error) {
	elems := make([]value.Value, 0, coll.Len())
	for _, el := range coll.Elems {
		a, b := el, scalar
		if scalarLeft {
			a, b = scalar, el
		}
		r, err := db.adtCall(op, []value.Value{a, b})
		if err != nil {
			return value.Null, err
		}
		elems = append(elems, r)
	}
	switch coll.K {
	case value.KSet:
		return value.NewSet(elems...), nil
	case value.KBag:
		return value.NewBag(elems...), nil
	case value.KList:
		return value.NewList(elems...), nil
	default:
		return value.NewArray(elems...), nil
	}
}

// deref resolves an OID through the object store; non-OIDs pass through
// (VALUE on a value is the identity, §3.3).
func (db *DB) deref(v value.Value) (value.Value, error) {
	if v.K != value.KOID {
		return v, nil
	}
	obj, ok := db.Objects[v.OID]
	if !ok {
		return value.Null, fmt.Errorf("engine: dangling object identifier @%d", v.OID)
	}
	return obj, nil
}

// projectField extracts a named tuple field, dereferencing OIDs and
// broadcasting over collections.
func (db *DB) projectField(v value.Value, field string) (value.Value, error) {
	if v.K == value.KOID {
		d, err := db.deref(v)
		if err != nil {
			return value.Null, err
		}
		v = d
	}
	if v.K == value.KTuple {
		f, ok := v.Field(field)
		if !ok {
			return value.Null, fmt.Errorf("engine: tuple has no field %q", field)
		}
		return f, nil
	}
	if v.K.IsCollection() {
		elems := make([]value.Value, 0, v.Len())
		for _, el := range v.Elems {
			f, err := db.projectField(el, field)
			if err != nil {
				return value.Null, err
			}
			elems = append(elems, f)
		}
		switch v.K {
		case value.KSet:
			return value.NewSet(elems...), nil
		case value.KBag:
			return value.NewBag(elems...), nil
		case value.KList:
			return value.NewList(elems...), nil
		default:
			return value.NewArray(elems...), nil
		}
	}
	return value.Null, fmt.Errorf("engine: cannot project field %q from %s", field, v.K)
}

// call resolves a function name: attribute-as-function on tuples/objects
// first (NAME(actor)), with collection broadcast, then the ADT registry.
func (db *DB) call(name string, args []value.Value) (value.Value, error) {
	if len(args) == 1 {
		return db.callField(name, args[0])
	}
	return db.adtCall(name, args)
}

// callField is the single-argument case of call — the shape the compiled
// search predicates (batchsearch.go) invoke directly.
func (db *DB) callField(name string, a value.Value) (value.Value, error) {
	if a.K == value.KOID || a.K == value.KTuple {
		if v, err := db.projectField(a, name); err == nil {
			return v, nil
		}
	}
	if a.K.IsCollection() && a.Len() > 0 && (a.Elems[0].K == value.KTuple || a.Elems[0].K == value.KOID) {
		if v, err := db.projectField(a, name); err == nil {
			return v, nil
		}
	}
	return db.adtCall(name, []value.Value{a})
}

// adtCall invokes an ADT function through the catalog registry with panic
// isolation: implementor-registered functions run arbitrary code, and a
// panic must surface as a typed ExternalError instead of unwinding the
// evaluator.
func (db *DB) adtCall(name string, args []value.Value) (v value.Value, err error) {
	defer func() {
		if p := recover(); p != nil {
			v = value.Null
			err = guard.NewExternalPanic(guard.ExtADT, "", name, "", p)
		}
	}()
	if db.Injector != nil {
		var ctx context.Context
		if db.g != nil {
			ctx = db.g.ctx
		}
		if ierr := db.Injector.Hit(ctx, strings.ToUpper(name)); ierr != nil {
			return value.Null, &guard.ExternalError{Kind: guard.ExtADT, External: name, Err: ierr}
		}
	}
	return db.Cat.ADTs.Call(name, args)
}

// evalBool evaluates a qualification expression to a boolean.
func (db *DB) evalBool(e *term.Term, rows [][]value.Value) (bool, error) {
	db.Count.PredEvals++
	v, err := db.evalExpr(e, rows)
	if err != nil {
		return false, err
	}
	if v.K != value.KBool {
		return false, fmt.Errorf("engine: qualification %s evaluated to %s, not boolean", lera.Format(e), v.K)
	}
	return v.B, nil
}
