package engine

// The fixpoint operator of §3.2: fix(R, E(R)) computes the saturation
// R = E(R). Two strategies are provided: naive iteration (re-evaluate the
// whole body against the accumulated relation each round) and semi-naive
// iteration (evaluate each recursive union member once per occurrence of
// R, with that occurrence bound to the previous round's delta — the
// standard treatment, correct for linear and bilinear recursions such as
// the Figure 5 BETTER_THAN view).

import (
	"fmt"
	"strings"

	"lera/internal/lera"
	"lera/internal/term"
	"lera/internal/value"
)

// deltaName is the reserved environment name for the per-occurrence delta
// substitution of semi-naive evaluation.
const deltaName = "\x00DELTA"

func (db *DB) evalFix(t *term.Term, e env) (*Relation, error) {
	name := strings.ToUpper(t.Args[0].Val.S)
	body := t.Args[1]
	if db.Mode == Naive {
		return db.fixNaive(name, body, e)
	}
	return db.fixSemiNaive(name, body, e)
}

// fixIterCap returns the per-instance iteration cap: every FIX subterm
// gets its own budget (the shared Counters.FixIterations is kept for
// stats only, so several fixpoints in one query cannot trip each other's
// cap). Configured through DB.Limits; guards against non-monotone bodies.
func (db *DB) fixIterCap() int { return db.Limits.FixIterations() }

func (db *DB) fixNaive(name string, body *term.Term, e env) (*Relation, error) {
	db.setStatsDetail(name + " [naive]")
	total := &Relation{}
	seen := db.newSeenSet()
	defer seen.close()
	cap := db.fixIterCap()
	for iters := 1; ; iters++ {
		db.Count.FixIterations++
		if err := db.checkCtx(); err != nil {
			return nil, err
		}
		inner := e.clone()
		inner[name] = total
		r, err := db.eval(body, inner)
		if err != nil {
			return nil, err
		}
		added := 0
		next := &Relation{Rows: append([][]value.Value(nil), total.Rows...), Width: total.Width}
		if next.Width == 0 {
			next.Width = r.Arity()
		}
		for _, row := range r.Rows {
			fresh, err := seen.add(row)
			if err != nil {
				return nil, err
			}
			if fresh {
				next.Rows = append(next.Rows, row)
				added++
			}
		}
		total = next
		db.recordFixRound(iters, added, len(total.Rows))
		if added == 0 {
			return total, nil
		}
		// Cap semantics (shared with semi-naive): the cap is the maximum
		// number of *productive* rounds. Round `cap` may still add rows;
		// only a fixpoint productive beyond that errs.
		if iters > cap {
			return nil, fmt.Errorf("engine: naive fixpoint %s still growing after %d iterations (cap %d)", name, iters, cap)
		}
	}
}

func (db *DB) fixSemiNaive(name string, body *term.Term, e env) (*Relation, error) {
	// Split the body into base members (no reference to name) and
	// recursive members. A body that is not a UNIONN falls back to naive
	// evaluation.
	refs := func(m *term.Term) bool {
		return term.Contains(m, func(s *term.Term) bool {
			n, ok := lera.RelName(s)
			return ok && strings.EqualFold(n, name)
		})
	}
	if !lera.IsOp(body, lera.OpUnion) {
		return db.fixNaive(name, body, e)
	}
	db.setStatsDetail(name + " [semi-naive]")
	var base, rec []*term.Term
	for _, m := range body.Args[0].Args {
		if refs(m) {
			rec = append(rec, m)
		} else {
			base = append(base, m)
		}
	}

	total := &Relation{}
	seen := db.newSeenSet()
	defer seen.close()
	add := func(rows [][]value.Value) (*Relation, error) {
		delta := &Relation{Width: total.Width}
		for _, row := range rows {
			fresh, err := seen.add(row)
			if err != nil {
				return nil, err
			}
			if fresh {
				total.Rows = append(total.Rows, row)
				delta.Rows = append(delta.Rows, row)
			}
		}
		return delta, nil
	}

	// The per-round body of each recursive member is loop-invariant: one
	// variant per occurrence of the fixpoint name, with that occurrence
	// rebound to the delta. Hoist the substitution out of the round loop.
	var variants []*term.Term
	for _, m := range rec {
		occ := countOccurrences(m, name)
		for k := 0; k < occ; k++ {
			variants = append(variants, substituteOccurrence(m, name, k))
		}
	}

	// Round 0: base members. Checked for cancellation first — a huge base
	// member must not stall the query past its deadline unobserved.
	db.Count.FixIterations++
	if err := db.checkCtx(); err != nil {
		return nil, err
	}
	baseRels, err := db.evalMembers(base, e)
	if err != nil {
		return nil, err
	}
	var firstRows [][]value.Value
	for _, r := range baseRels {
		if total.Width == 0 {
			total.Width = r.Arity()
		}
		firstRows = append(firstRows, r.Rows...)
	}
	delta, err := add(firstRows)
	if err != nil {
		return nil, err
	}
	db.recordFixRound(1, len(delta.Rows), len(total.Rows))

	cap := db.fixIterCap()
	for iters := 1; len(delta.Rows) > 0; iters++ {
		db.Count.FixIterations++
		if err := db.checkCtx(); err != nil {
			return nil, err
		}
		// Same cap semantics as naive: cap bounds productive rounds (the
		// base round counts as productive round 1).
		if iters > cap {
			return nil, fmt.Errorf("engine: semi-naive fixpoint %s still growing after %d iterations (cap %d)", name, iters, cap)
		}
		inner := e.clone()
		inner[name] = total
		inner[deltaName] = delta
		recRels, err := db.evalMembers(variants, inner)
		if err != nil {
			return nil, err
		}
		var newRows [][]value.Value
		for _, r := range recRels {
			newRows = append(newRows, r.Rows...)
		}
		delta, err = add(newRows)
		if err != nil {
			return nil, err
		}
		db.recordFixRound(iters+1, len(delta.Rows), len(total.Rows))
	}
	return total, nil
}

func countOccurrences(m *term.Term, name string) int {
	return term.Count(m, func(s *term.Term) bool {
		n, ok := lera.RelName(s)
		return ok && strings.EqualFold(n, name)
	})
}

// substituteOccurrence replaces the k-th (preorder) occurrence of
// REL(name) in m with REL(deltaName).
func substituteOccurrence(m *term.Term, name string, k int) *term.Term {
	idx := -1
	found := false
	var target term.Path
	term.Walk(m, func(s *term.Term, p term.Path) bool {
		if n, ok := lera.RelName(s); ok && strings.EqualFold(n, name) {
			idx++
			if idx == k {
				target = p.Clone()
				found = true
				return false
			}
		}
		return true
	})
	if !found {
		return m
	}
	return term.ReplaceAt(m, target, lera.Rel(deltaName))
}
