package engine

// Evaluation of the compound SEARCH operator (§3.1): the relation list is
// joined left-to-right, using a hash join whenever the qualification
// supplies an equi-join conjunct connecting the accumulated prefix to the
// next relation, and a nested-loop (cartesian) step otherwise. Conjuncts
// are applied as early as their attribute references allow; the projection
// is computed last.

import (
	"fmt"

	"lera/internal/lera"
	"lera/internal/term"
	"lera/internal/value"
)

type searchPlan struct {
	rels  []*Relation
	conjs []conjunct
	projs []*term.Term
}

type conjunct struct {
	expr   *term.Term
	maxRel int // highest relation index referenced (0 = none)
	used   bool
}

func maxRelIndex(e *term.Term) int {
	max := 0
	term.Walk(e, func(s *term.Term, _ term.Path) bool {
		if i, _, ok := lera.AttrIdx(s); ok && i > max {
			max = i
		}
		return true
	})
	return max
}

func (db *DB) evalSearch(t *term.Term, e env) (*Relation, error) {
	relTerms := t.Args[0].Args
	if len(relTerms) == 0 {
		return nil, fmt.Errorf("engine: SEARCH with empty relation list")
	}
	// A statically false qualification short-circuits before any stored
	// relation is touched — the payoff of the semantic inconsistency
	// rules (§6.2): zero tuples scanned. The empty result still declares
	// the projection arity.
	for _, c := range lera.Conjuncts(t.Args[1]) {
		if c.Kind == term.Const && c.Val.K == value.KBool && !c.Val.B {
			return &Relation{Width: len(t.Args[2].Args)}, nil
		}
	}
	plan := &searchPlan{projs: t.Args[2].Args}
	for _, rt := range relTerms {
		r, err := db.eval(rt, e)
		if err != nil {
			return nil, err
		}
		plan.rels = append(plan.rels, r)
	}
	for _, c := range lera.Conjuncts(t.Args[1]) {
		plan.conjs = append(plan.conjs, conjunct{expr: c, maxRel: maxRelIndex(c)})
	}

	// Join left to right. rows holds flattened prefixes; widths[i] is the
	// arity of relation i (taken from its first row; empty relations
	// short-circuit to an empty result).
	widths := make([]int, len(plan.rels))
	for i, r := range plan.rels {
		if len(r.Rows) == 0 {
			return &Relation{Width: len(plan.projs)}, nil
		}
		widths[i] = len(r.Rows[0])
	}
	offset := make([]int, len(plan.rels)+1)
	for i, w := range widths {
		offset[i+1] = offset[i] + w
	}

	// attrSlot maps ATTR(i, j) to a flat column index.
	attrSlot := func(i, j int) int { return offset[i-1] + j - 1 }

	current, err := db.filterRows(plan.rels[0].Rows, plan, 1, widths[:1])
	if err != nil {
		return nil, err
	}

	for ri := 2; ri <= len(plan.rels); ri++ {
		next := plan.rels[ri-1].Rows
		// Find equi-join conjuncts ATTR(a,x) = ATTR(b,y) with one side in
		// the prefix (< ri) and the other in relation ri.
		var leftKeys, rightKeys []int
		for ci := range plan.conjs {
			c := &plan.conjs[ci]
			if c.used || c.expr.Kind != term.Fun || c.expr.Functor != "=" || len(c.expr.Args) != 2 {
				continue
			}
			ai, aj, okA := lera.AttrIdx(c.expr.Args[0])
			bi, bj, okB := lera.AttrIdx(c.expr.Args[1])
			if !okA || !okB {
				continue
			}
			switch {
			case ai < ri && bi == ri:
				leftKeys = append(leftKeys, attrSlot(ai, aj))
				rightKeys = append(rightKeys, bj-1)
				c.used = true
			case bi < ri && ai == ri:
				leftKeys = append(leftKeys, attrSlot(bi, bj))
				rightKeys = append(rightKeys, aj-1)
				c.used = true
			}
		}
		var joined [][]value.Value
		if len(leftKeys) > 0 {
			// Hash join: build on the new relation (partitioned by key
			// hash when the pool is on), probe with the prefix in row
			// chunks. Both paths emit matches in (probe row, build
			// insertion) order, so the output is identical.
			build, berr := db.buildHashTable(next, rightKeys)
			if berr != nil {
				return nil, berr
			}
			joined, err = db.mapRowChunks(current, func(w *DB, chunk [][]value.Value) ([][]value.Value, error) {
				var out [][]value.Value
				for _, prow := range chunk {
					var kb []value.Value
					for _, k := range leftKeys {
						kb = append(kb, prow[k])
					}
					for _, rrow := range build.lookup(rowKey(kb)) {
						if err := w.tickRow(); err != nil {
							return nil, err
						}
						w.Count.JoinPairs++
						out = append(out, append(append([]value.Value(nil), prow...), rrow...))
					}
				}
				return out, nil
			})
		} else {
			joined, err = db.mapRowChunks(current, func(w *DB, chunk [][]value.Value) ([][]value.Value, error) {
				var out [][]value.Value
				for _, prow := range chunk {
					for _, rrow := range next {
						if err := w.tickRow(); err != nil {
							return nil, err
						}
						w.Count.JoinPairs++
						out = append(out, append(append([]value.Value(nil), prow...), rrow...))
					}
				}
				return out, nil
			})
		}
		if err != nil {
			return nil, err
		}
		current, err = db.filterRows(joined, plan, ri, widths[:ri])
		if err != nil {
			return nil, err
		}
	}

	// Any conjuncts not yet applied (e.g. referencing no attributes).
	out := &Relation{Width: len(plan.projs)}
	projected, err := db.mapRowChunks(current, func(w *DB, chunk [][]value.Value) ([][]value.Value, error) {
		var kept [][]value.Value
		for _, row := range chunk {
			if err := w.tickRow(); err != nil {
				return nil, err
			}
			ok := true
			for ci := range plan.conjs {
				c := &plan.conjs[ci]
				if c.used {
					continue
				}
				rows := splitRow(row, widths)
				b, err := w.evalBool(c.expr, rows)
				if err != nil {
					return nil, err
				}
				if !b {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			rows := splitRow(row, widths)
			var prow []value.Value
			for _, p := range plan.projs {
				v, err := w.evalExpr(p, rows)
				if err != nil {
					return nil, err
				}
				prow = append(prow, v)
			}
			kept = append(kept, prow)
		}
		return kept, nil
	})
	if err != nil {
		return nil, err
	}
	out.Rows = projected
	// LERA is an extension of Codd's algebra: relations are sets, so the
	// projection output deduplicates. This is what makes pushing a
	// search through a set union sound for non-injective projections.
	out = out.Dedup()
	db.Count.Emitted += len(out.Rows)
	if err := db.chargeRows(len(out.Rows)); err != nil {
		return nil, err
	}
	return out, nil
}

// filterRows applies every unused conjunct whose references are confined
// to the first upto relations.
func (db *DB) filterRows(rows [][]value.Value, plan *searchPlan, upto int, widths []int) ([][]value.Value, error) {
	var active []*conjunct
	for ci := range plan.conjs {
		c := &plan.conjs[ci]
		if !c.used && c.maxRel >= 1 && c.maxRel <= upto {
			active = append(active, c)
			c.used = true
		}
	}
	if len(active) == 0 {
		return rows, nil
	}
	return db.mapRowChunks(rows, func(w *DB, chunk [][]value.Value) ([][]value.Value, error) {
		var out [][]value.Value
		for _, row := range chunk {
			if err := w.tickRow(); err != nil {
				return nil, err
			}
			split := splitRow(row, widths)
			keep := true
			for _, c := range active {
				b, err := w.evalBool(c.expr, split)
				if err != nil {
					return nil, err
				}
				if !b {
					keep = false
					break
				}
			}
			if keep {
				out = append(out, row)
			}
		}
		return out, nil
	})
}

func splitRow(row []value.Value, widths []int) [][]value.Value {
	out := make([][]value.Value, len(widths))
	pos := 0
	for i, w := range widths {
		out[i] = row[pos : pos+w]
		pos += w
	}
	return out
}
