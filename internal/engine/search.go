package engine

// Evaluation of the compound SEARCH operator (§3.1): the relation list is
// joined left-to-right, using a hash join whenever the qualification
// supplies an equi-join conjunct connecting the accumulated prefix to the
// next relation, and a nested-loop (cartesian) step otherwise. Conjuncts
// are applied as early as their attribute references allow; the projection
// is computed last.

import (
	"lera/internal/lera"
	"lera/internal/term"
	"lera/internal/value"
)

type searchPlan struct {
	rels  []*Relation
	conjs []conjunct
	projs []*term.Term
}

type conjunct struct {
	expr   *term.Term
	maxRel int // highest relation index referenced (0 = none)
	used   bool
}

func maxRelIndex(e *term.Term) int {
	max := 0
	term.Walk(e, func(s *term.Term, _ term.Path) bool {
		if i, _, ok := lera.AttrIdx(s); ok && i > max {
			max = i
		}
		return true
	})
	return max
}

func (db *DB) evalSearch(t *term.Term, e env) (*Relation, error) {
	// Planning — short-circuits, relation evaluation, conjunct
	// classification, widths — is shared with the batched engine
	// (batchsearch.go) so both make identical decisions.
	prep, short, err := db.prepareSearch(t, e)
	if err != nil {
		return nil, err
	}
	if short != nil {
		return short, nil
	}
	plan, widths := prep.plan, prep.widths

	current, err := db.filterRows(plan.rels[0].Rows, plan, 1, widths[:1])
	if err != nil {
		return nil, err
	}

	// Join left to right; rows holds flattened prefixes.
	for ri := 2; ri <= len(plan.rels); ri++ {
		next := plan.rels[ri-1].Rows
		// Equi-join conjuncts ATTR(a,x) = ATTR(b,y) with one side in the
		// prefix (< ri) and the other in relation ri select a hash join.
		leftKeys, rightKeys := equiJoinKeys(plan, ri, prep.offset)
		var joined [][]value.Value
		if len(leftKeys) > 0 {
			// Hash join: build on the new relation (partitioned by key
			// hash when the pool is on), probe with the prefix in row
			// chunks. Both paths emit matches in (probe row, build
			// insertion) order, so the output is identical.
			build, berr := db.buildHashTable(next, rightKeys)
			if berr != nil {
				return nil, berr
			}
			joined, err = db.mapRowChunks(current, func(w *DB, chunk [][]value.Value) ([][]value.Value, error) {
				var out [][]value.Value
				for _, prow := range chunk {
					var kb []value.Value
					for _, k := range leftKeys {
						kb = append(kb, prow[k])
					}
					for _, rrow := range build.lookup(rowKey(kb)) {
						if err := w.tickRow(); err != nil {
							return nil, err
						}
						w.Count.JoinPairs++
						out = append(out, append(append([]value.Value(nil), prow...), rrow...))
					}
				}
				return out, nil
			})
		} else {
			joined, err = db.mapRowChunks(current, func(w *DB, chunk [][]value.Value) ([][]value.Value, error) {
				var out [][]value.Value
				for _, prow := range chunk {
					for _, rrow := range next {
						if err := w.tickRow(); err != nil {
							return nil, err
						}
						w.Count.JoinPairs++
						out = append(out, append(append([]value.Value(nil), prow...), rrow...))
					}
				}
				return out, nil
			})
		}
		if err != nil {
			return nil, err
		}
		current, err = db.filterRows(joined, plan, ri, widths[:ri])
		if err != nil {
			return nil, err
		}
	}

	// Any conjuncts not yet applied (e.g. referencing no attributes).
	out := &Relation{Width: len(plan.projs)}
	projected, err := db.mapRowChunks(current, func(w *DB, chunk [][]value.Value) ([][]value.Value, error) {
		var kept [][]value.Value
		for _, row := range chunk {
			if err := w.tickRow(); err != nil {
				return nil, err
			}
			ok := true
			for ci := range plan.conjs {
				c := &plan.conjs[ci]
				if c.used {
					continue
				}
				rows := splitRow(row, widths)
				b, err := w.evalBool(c.expr, rows)
				if err != nil {
					return nil, err
				}
				if !b {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			rows := splitRow(row, widths)
			var prow []value.Value
			for _, p := range plan.projs {
				v, err := w.evalExpr(p, rows)
				if err != nil {
					return nil, err
				}
				prow = append(prow, v)
			}
			kept = append(kept, prow)
		}
		return kept, nil
	})
	if err != nil {
		return nil, err
	}
	out.Rows = projected
	// LERA is an extension of Codd's algebra: relations are sets, so the
	// projection output deduplicates. This is what makes pushing a
	// search through a set union sound for non-injective projections.
	out = out.Dedup()
	db.Count.Emitted += len(out.Rows)
	if err := db.chargeRows(len(out.Rows)); err != nil {
		return nil, err
	}
	return out, nil
}

// filterRows applies every unused conjunct whose references are confined
// to the first upto relations.
func (db *DB) filterRows(rows [][]value.Value, plan *searchPlan, upto int, widths []int) ([][]value.Value, error) {
	var active []*conjunct
	for ci := range plan.conjs {
		c := &plan.conjs[ci]
		if !c.used && c.maxRel >= 1 && c.maxRel <= upto {
			active = append(active, c)
			c.used = true
		}
	}
	if len(active) == 0 {
		return rows, nil
	}
	return db.mapRowChunks(rows, func(w *DB, chunk [][]value.Value) ([][]value.Value, error) {
		var out [][]value.Value
		for _, row := range chunk {
			if err := w.tickRow(); err != nil {
				return nil, err
			}
			split := splitRow(row, widths)
			keep := true
			for _, c := range active {
				b, err := w.evalBool(c.expr, split)
				if err != nil {
					return nil, err
				}
				if !b {
					keep = false
					break
				}
			}
			if keep {
				out = append(out, row)
			}
		}
		return out, nil
	})
}

func splitRow(row []value.Value, widths []int) [][]value.Value {
	out := make([][]value.Value, len(widths))
	pos := 0
	for i, w := range widths {
		out[i] = row[pos : pos+w]
		pos += w
	}
	return out
}
