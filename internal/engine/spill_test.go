package engine

// The memory governor and spill-to-disk contract (docs/PERF.md, "Memory
// governor & spill"): spill-forced runs are bit-identical to in-memory
// runs and to the row oracle — rows in order, every counter, the
// timing-free stats tree; spill temp files never outlive their query
// (success, error, cancel); an over-grant operator with no spill
// directory fails typed with MEM_BUDGET; and hash collisions — forced by
// swapping the package hashers for constant functions — are absorbed by
// bucket equality checks on the in-memory and spill paths alike.

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lera/internal/guard"
	"lera/internal/term"
	"lera/internal/value"
)

// runSpillEngine evaluates q on a fresh films database under the given
// memory grant and spill directory, returning the run outcome and the
// DB (for spill accounting).
func runSpillEngine(t *testing.T, q *term.Term, batch, par int, maxMem int64, spillDir string, mode FixMode) (engineRun, *DB) {
	t.Helper()
	db := loadedDB(t)
	db.BatchSize = batch
	db.Parallelism = par
	db.Limits = guard.Limits{MaxMemBytes: maxMem}
	db.SpillDir = spillDir
	db.Mode = mode
	db.CollectStats = true
	rel, err := db.EvalCtx(context.Background(), q)
	out := engineRun{count: db.Count, err: err}
	if st := db.LastExecStats(); st != nil {
		out.stats = st.Format(false)
	}
	if err == nil {
		out.width = rel.Arity()
		for _, r := range rel.Rows {
			out.rows = append(out.rows, rowKey(r))
		}
	}
	return out, db
}

// dirEmpty fails the test when dir contains anything.
func dirEmpty(t *testing.T, dir, when string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: reading spill dir: %v", when, err)
	}
	for _, e := range ents {
		t.Errorf("%s: spill dir retains %s", when, filepath.Join(dir, e.Name()))
	}
}

// TestSpillBitIdentity is the ISSUE 10 acceptance gate: for every corpus
// query and both fixpoint modes, spill-forced evaluation (grant so small
// every governed structure goes out of core) reproduces the serial row
// oracle bit-for-bit — rows in order, all counters, the whole stats tree
// — at batch sizes 1 and 1024 and pool sizes 1 and 4. A generous grant
// that never spills is covered too, and the tiny-grant runs must in fact
// have spilled.
func TestSpillBitIdentity(t *testing.T) {
	spilled := int64(0)
	for name, q := range diffCorpus() {
		for _, mode := range []FixMode{Naive, SemiNaive} {
			oracle := runEngine(t, q, true, 0, 1, guard.Limits{}, mode)
			for _, budget := range []int64{1, 1 << 30} {
				for _, batch := range []int{1, 1024} {
					for _, par := range []int{1, 4} {
						run, db := runSpillEngine(t, q, batch, par, budget, t.TempDir(), mode)
						if d := diffRuns(oracle, run); d != "" {
							t.Errorf("%s mode=%v budget=%d batch=%d par=%d: %s", name, mode, budget, batch, par, d)
						}
						if budget == 1 {
							spilled += db.Spill.Partitions + db.Spill.Bytes
						} else if db.Spill != (SpillStats{}) {
							t.Errorf("%s mode=%v batch=%d par=%d: generous grant spilled: %+v", name, mode, batch, par, db.Spill)
						}
					}
				}
			}
		}
	}
	if spilled == 0 {
		t.Error("tiny-grant runs never spilled — the gate is not exercising the out-of-core path")
	}
}

// TestSpillTempFilesCleanedOnSuccess: after every successful spill-forced
// query the spill directory is empty again.
func TestSpillTempFilesCleanedOnSuccess(t *testing.T) {
	dir := t.TempDir()
	for name, q := range diffCorpus() {
		run, _ := runSpillEngine(t, q, 1, 4, 1, dir, SemiNaive)
		if run.err != nil {
			t.Fatalf("%s: %v", name, run.err)
		}
		dirEmpty(t, dir, name)
	}
}

// TestSpillTempFilesCleanedOnError: a guard budget tripping mid-query
// (row budget, here, with spilling active) still removes every temp file.
func TestSpillTempFilesCleanedOnError(t *testing.T) {
	dir := t.TempDir()
	db := chainDB(t, 50)
	db.Limits = guard.Limits{MaxRows: 100, MaxMemBytes: 1}
	db.SpillDir = dir
	_, err := db.EvalCtx(context.Background(), tcFix("TC"))
	if !errors.Is(err, guard.ErrRowBudget) {
		t.Fatalf("got %v, want ErrRowBudget", err)
	}
	dirEmpty(t, dir, "after row-budget trip")
}

// TestSpillTempFilesCleanedOnCancel: a context deadline interrupting a
// spilling fixpoint removes every temp file on the way out.
func TestSpillTempFilesCleanedOnCancel(t *testing.T) {
	dir := t.TempDir()
	db := chainDB(t, 600)
	db.Limits = guard.Limits{MaxMemBytes: 1}
	db.SpillDir = dir
	db.Parallelism = 4
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := db.EvalCtx(ctx, tcFix("TC"))
	if !errors.Is(err, guard.ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
	dirEmpty(t, dir, "after cancellation")
}

// TestSpillFaultInjection: an injected ADT fault aborting evaluation while
// structures have spilled still cleans up and reports the injected error.
func TestSpillFaultInjection(t *testing.T) {
	dir := t.TempDir()
	db := loadedDB(t)
	db.Limits = guard.Limits{MaxMemBytes: 1}
	db.SpillDir = dir
	inj := guard.NewInjector()
	// MEMBER reaches the ADT registry (Name resolves as a field projection
	// and never hits the injector).
	inj.Set("MEMBER", guard.Fault{OnCall: 1, Mode: guard.FaultError})
	db.Injector = inj
	q := diffCorpus()["fig3-hash-join"]
	if _, err := db.EvalCtx(context.Background(), q); err == nil {
		t.Fatal("injected fault did not surface")
	}
	dirEmpty(t, dir, "after injected fault")
}

// TestMemBudgetWithoutSpillDir: an over-grant operator with no spill
// directory fails with the typed MEM_BUDGET error; the same query with a
// spill directory succeeds.
func TestMemBudgetWithoutSpillDir(t *testing.T) {
	q := diffCorpus()["fig3-hash-join"]
	db := loadedDB(t)
	db.Limits = guard.Limits{MaxMemBytes: 1}
	_, err := db.EvalCtx(context.Background(), q)
	if !errors.Is(err, guard.ErrMemBudget) {
		t.Fatalf("got %v, want ErrMemBudget", err)
	}
	if guard.CodeOf(err) != guard.CodeMemBudget {
		t.Fatalf("CodeOf = %s, want %s", guard.CodeOf(err), guard.CodeMemBudget)
	}

	run, _ := runSpillEngine(t, q, 0, 1, 1, t.TempDir(), SemiNaive)
	if run.err != nil {
		t.Fatalf("with spill dir: %v", run.err)
	}
}

// TestMemPeakReporting: governed queries report a tracked-memory peak;
// ungoverned queries report zero (their notice strings must not change).
func TestMemPeakReporting(t *testing.T) {
	q := diffCorpus()["fig3-hash-join"]
	db := loadedDB(t)
	if _, err := db.EvalCtx(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if p := db.LastMemPeak(); p != 0 {
		t.Errorf("ungoverned query reports MemPeak %d, want 0", p)
	}
	db2 := loadedDB(t)
	db2.Limits = guard.Limits{MaxMemBytes: 1 << 30}
	if _, err := db2.EvalCtx(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if p := db2.LastMemPeak(); p <= 0 {
		t.Errorf("governed query reports MemPeak %d, want > 0", p)
	}
}

// TestSpillCodecRoundTrip: every value kind survives the spill encoding,
// including negative zero, NaN, empty strings and nested collections;
// truncated payloads report corruption instead of bad rows.
func TestSpillCodecRoundTrip(t *testing.T) {
	row := []value.Value{
		{}, // NULL
		value.Bool(true),
		value.Bool(false),
		value.Int(-42),
		value.Int(math.MaxInt64),
		value.Real(math.Copysign(0, -1)),
		value.Real(math.NaN()),
		value.Real(3.5),
		value.String(""),
		value.String("Ω multi–byte \x00 bytes"),
		value.OID(7),
		{K: value.KTuple, Names: []string{"A", "B"}, Elems: []value.Value{value.Int(1), value.String("x")}},
		{K: value.KSet, Elems: []value.Value{value.Int(1), value.Int(2)}},
		{K: value.KBag, Elems: []value.Value{value.String("a"), value.String("a")}},
		{K: value.KList, Elems: []value.Value{value.Real(1.5)}},
		{K: value.KArray, Elems: []value.Value{{K: value.KSet, Elems: []value.Value{value.Int(9)}}}},
	}
	buf := appendRow(nil, row)
	got, err := decodeRow(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(row) {
		t.Fatalf("decoded %d values, want %d", len(got), len(row))
	}
	if rowKey(got) != rowKey(row) {
		t.Fatalf("round trip changed the row:\n%s\nvs\n%s", rowKey(got), rowKey(row))
	}
	// Bit-level real checks rowKey may not distinguish.
	if !math.Signbit(got[5].F) {
		t.Error("negative zero lost its sign")
	}
	if !math.IsNaN(got[6].F) {
		t.Error("NaN did not survive")
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, err := decodeRow(buf[:cut]); !errors.Is(err, errSpillCorrupt) {
			t.Fatalf("truncation at %d: got %v, want errSpillCorrupt", cut, err)
		}
	}
	if _, err := decodeRow(append(buf[:len(buf):len(buf)], 0)); !errors.Is(err, errSpillCorrupt) {
		t.Error("trailing garbage not reported as corruption")
	}
}

// TestHashCollisionAudit forces every hash to collide by swapping the
// package hashers for constant functions, then re-runs the corpus in
// memory and spill-forced: results must equal the proper-hash oracle
// computed beforehand, proving every hash structure — rowSet, join
// index, grace partitions, spill sets — falls back to bucket equality,
// and that an unsplittable all-one-hash partition terminates instead of
// recursing forever.
func TestHashCollisionAudit(t *testing.T) {
	type ref struct {
		q      *term.Term
		oracle engineRun
	}
	var refs []ref
	for _, q := range diffCorpus() {
		refs = append(refs, ref{q, runEngine(t, q, true, 0, 1, guard.Limits{}, SemiNaive)})
	}

	savedRow, savedKey := hashRowFn, hashKeyFn
	hashRowFn = func([]value.Value) uint64 { return 0xDEAD }
	hashKeyFn = func([]value.Value, []int) uint64 { return 0xDEAD }
	defer func() { hashRowFn, hashKeyFn = savedRow, savedKey }()

	spilledParts := int64(0)
	for i, r := range refs {
		inMem := runEngine(t, r.q, false, 0, 4, guard.Limits{}, SemiNaive)
		if d := diffRuns(r.oracle, inMem); d != "" {
			t.Errorf("corpus[%d] in-memory under constant hash: %s", i, d)
		}
		spillRun, db := runSpillEngine(t, r.q, 1, 4, 1, t.TempDir(), SemiNaive)
		if d := diffRuns(r.oracle, spillRun); d != "" {
			t.Errorf("corpus[%d] spill-forced under constant hash: %s", i, d)
		}
		spilledParts += db.Spill.Partitions
	}
	if spilledParts == 0 {
		t.Error("constant-hash spill runs never wrote a partition")
	}
}

// TestSpillStatsOnlyInTimedOutput: spill activity renders in the stats
// tree only with timings on — the timing-free tree (what bit-identity
// pins) stays byte-identical whether or not a query spilled.
func TestSpillStatsOnlyInTimedOutput(t *testing.T) {
	q := diffCorpus()["fig3-hash-join"]
	run, db := runSpillEngine(t, q, 0, 1, 1, t.TempDir(), SemiNaive)
	if run.err != nil {
		t.Fatal(run.err)
	}
	if db.Spill.Partitions == 0 {
		t.Fatal("query did not spill; test needs a spilling query")
	}
	st := db.LastExecStats()
	plain := st.Format(false)
	timed := st.Format(true)
	if strings.Contains(plain, "spill=") {
		t.Errorf("timing-free stats leak spill info:\n%s", plain)
	}
	if !strings.Contains(timed, "spill=") {
		t.Errorf("timed stats missing spill info:\n%s", timed)
	}
}
