// Package magic implements the fixpoint reduction of Section 5.3: the
// ADORNMENT and ALEXANDER methods invoked by the Figure 9 rule, which
// "pushes selection before recursion" by transforming a search over a
// fixpoint into a fixpoint focused on the relevant facts.
//
// Following the paper, the transformation is performed directly on the
// algebra ("this avoids unnecessary translation from algebra to logic, and
// from logic to algebra"). Two recursion shapes are supported:
//
//   - linear recursion (one occurrence of the recursive relation per
//     union member) in which the bound head column is copied verbatim
//     from the same column of the recursive occurrence — the binding is
//     invariant, so the selection moves onto every non-recursive seed;
//   - the bilinear transitive-closure shape of the paper's Figure 5
//     (BETTER_THAN), which is first linearised in the direction chosen by
//     the adornment (right-linear when the second column is bound,
//     left-linear when the first is) and then falls into the first case.
//
// Anything else vetoes the rule, leaving the query unchanged — the safe
// outcome the paper's rule-condition mechanism exists for.
package magic

import (
	"fmt"

	"lera/internal/lera"
	"lera/internal/rewrite"
	"lera/internal/term"
)

// FixpointRules is the Figure 9 rule in the rule language: when a search
// ranges over a fixpoint, compute the adornment from the qualification
// and invoke the Alexander method; the fixpoint operand is replaced by the
// focused program u.
const FixpointRules = `
rule alexander:
  SEARCH(LIST(x*, FIX(n, e, c), y*), q, a)
  / -->
  SEARCH(LIST(x*, u, y*), q, a)
  / ADORNMENT(q, x*, c, s), ALEXANDER(n, e, c, s, q, x*, u) ;

block(fixpoint, {alexander}, inf);
`

// RegisterExternals installs the ADORNMENT and ALEXANDER methods.
func RegisterExternals(ext *rewrite.Externals) {
	ext.RegisterMethod("ADORNMENT", adornment)
	ext.RegisterMethod("ALEXANDER", alexander)
}

// binding describes one bound column of the fixpoint output: the column
// index and the selecting conjunct (with the fix at list position p).
type binding struct {
	col  int
	pred *term.Term
}

// extractBindings finds conjuncts of q that bind a column of the relation
// at position p by comparison with a constant, possibly through a
// function call: =(ATTR(p,j), const), =(CALL(f, ATTR(p,j)), const), etc.
func extractBindings(q *term.Term, p int) []binding {
	var out []binding
	for _, c := range lera.Conjuncts(q) {
		if c.Kind != term.Fun || c.Functor != "=" || len(c.Args) != 2 {
			continue
		}
		attrs := collectAttrs(c)
		if len(attrs) != 1 || attrs[0][0] != p {
			continue
		}
		// One side must be ground (the constant); the other contains the
		// single attribute reference.
		l, r := c.Args[0], c.Args[1]
		if !l.IsGround() && !r.IsGround() {
			continue
		}
		out = append(out, binding{col: attrs[0][1], pred: c})
	}
	return out
}

func collectAttrs(e *term.Term) [][2]int {
	var out [][2]int
	term.Walk(e, func(s *term.Term, _ term.Path) bool {
		if i, j, ok := lera.AttrIdx(s); ok {
			out = append(out, [2]int{i, j})
		}
		return true
	})
	return out
}

// adornment implements ADORNMENT(q, x*, c, s): bind s to the LIST of
// bound column indices of the fixpoint at position len(x*)+1. Vetoes when
// nothing is bound (the recursion cannot be focused).
func adornment(ctx *rewrite.Ctx, args []*term.Term) (bool, error) {
	if len(args) != 4 {
		return false, fmt.Errorf("ADORNMENT takes (q, x*, c, s)")
	}
	xs := args[1]
	if xs.Kind != term.Fun || xs.Functor != term.FList {
		return false, fmt.Errorf("ADORNMENT: x* must be a list")
	}
	p := len(xs.Args) + 1
	bs := extractBindings(args[0], p)
	if len(bs) == 0 {
		return false, nil // free adornment: veto
	}
	cols := make([]*term.Term, len(bs))
	for i, b := range bs {
		cols[i] = term.Num(int64(b.col))
	}
	out := args[3]
	if out.Kind != term.Var {
		return false, fmt.Errorf("ADORNMENT: output must be an unbound variable")
	}
	ctx.Bind.BindVar(out.Name, term.List(cols...))
	return true, nil
}

// alexander implements ALEXANDER(n, e, c, s, q, x*, u): build the focused
// fixpoint program and bind it to u. Vetoes when the recursion shape is
// unsupported.
func alexander(ctx *rewrite.Ctx, args []*term.Term) (bool, error) {
	if len(args) != 7 {
		return false, fmt.Errorf("ALEXANDER takes (n, e, c, s, q, x*, u)")
	}
	name := args[0]
	body := args[1]
	cols := args[2]
	q := args[4]
	xs := args[5]
	out := args[6]
	if out.Kind != term.Var {
		return false, fmt.Errorf("ALEXANDER: output must be an unbound variable")
	}
	if xs.Kind != term.Fun || xs.Functor != term.FList {
		return false, fmt.Errorf("ALEXANDER: x* must be a list")
	}
	p := len(xs.Args) + 1
	bs := extractBindings(q, p)
	if len(bs) == 0 {
		return false, nil
	}
	focused, ok := Focus(name.Val.S, body, colNames(cols), bs)
	if !ok {
		return false, nil
	}
	ctx.Bind.BindVar(out.Name, focused)
	return true, nil
}

func colNames(cols *term.Term) []string {
	out := make([]string, len(cols.Args))
	for i, c := range cols.Args {
		out[i] = c.Val.S
	}
	return out
}

// Focus builds the focused fixpoint for fix(name, body, cols) under the
// given bound columns. Each binding is tried in turn and the first that
// yields a supported, binding-invariant program wins — the outer
// qualification still applies every predicate, so focusing by one binding
// is always sound. It returns ok=false when no binding can focus the
// recursion.
func Focus(name string, body *term.Term, cols []string, bs []binding) (*term.Term, bool) {
	if !lera.IsOp(body, lera.OpUnion) {
		return nil, false
	}
	var seeds, recs []*term.Term
	for _, m := range body.Args[0].Args {
		if refersTo(m, name) {
			recs = append(recs, m)
		} else {
			seeds = append(seeds, m)
		}
	}
	if len(seeds) == 0 || len(recs) == 0 {
		return nil, false
	}
	arity := len(cols)
	for _, b := range bs {
		if alreadyFiltered(seeds, b) {
			// The seeds already carry this binding predicate — the
			// program is focused; re-applying would wrap filter layers
			// forever (the paper applies Alexander "once only for every
			// recursive predicate").
			continue
		}
		var linearRecs []*term.Term
		ok := true
		for _, r := range recs {
			lr, lok := linearize(r, name, arity, b, seeds)
			if !lok || !bindingInvariant(lr, name, b.col) {
				ok = false
				break
			}
			linearRecs = append(linearRecs, lr)
		}
		if !ok {
			continue
		}
		var focusedSeeds []*term.Term
		for _, s := range seeds {
			focusedSeeds = append(focusedSeeds, filterSeed(s, arity, b))
		}
		members := append(focusedSeeds, linearRecs...)
		return lera.Fix(name, lera.Union(members...), cols), true
	}
	return nil, false
}

func refersTo(m *term.Term, name string) bool {
	return term.Contains(m, func(s *term.Term) bool {
		n, ok := lera.RelName(s)
		return ok && equalFold(n, name)
	})
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'a' <= ca && ca <= 'z' {
			ca -= 32
		}
		if 'a' <= cb && cb <= 'z' {
			cb -= 32
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// recOccurrences returns the list positions (1-based) of REL(name) in a
// SEARCH member's relation list; ok is false if the member is not a
// SEARCH or references name outside the relation list.
func recOccurrences(m *term.Term, name string) ([]int, bool) {
	if !lera.IsOp(m, lera.OpSearch) {
		return nil, false
	}
	var occ []int
	for i, r := range m.Args[0].Args {
		if n, ok := lera.RelName(r); ok && equalFold(n, name) {
			occ = append(occ, i+1)
		} else if refersTo(r, name) {
			return nil, false // nested reference: unsupported
		}
	}
	if refersTo(m.Args[1], name) || refersTo(m.Args[2], name) {
		return nil, false
	}
	return occ, true
}

// linearize returns a linear version of a recursive member. Already
// linear members pass through; the bilinear TC shape
//
//	search((R, R), [1.2=2.1], (1.1, 2.2))
//
// is rewritten right-linear (search((D', R), ...)) when the second column
// is bound, or left-linear (search((R, D'), ...)) when the first is,
// where D' is the union of the seed expressions — equivalent for
// transitive closure.
func linearize(m *term.Term, name string, arity int, b binding, seeds []*term.Term) (*term.Term, bool) {
	occ, ok := recOccurrences(m, name)
	if !ok {
		return nil, false
	}
	switch len(occ) {
	case 1:
		return m, true
	case 2:
		if !isBilinearTC(m, name, arity) {
			return nil, false
		}
		seed := seedUnion(seeds)
		rels := m.Args[0].Args
		// Direction: bound col 2 -> keep the second occurrence recursive
		// (right-linear); bound col 1 -> keep the first (left-linear).
		rightLinear := b.col == 2
		nrels := append([]*term.Term(nil), rels...)
		if rightLinear {
			nrels[0] = seed
		} else {
			nrels[1] = seed
		}
		return term.F(lera.OpSearch, term.List(nrels...), m.Args[1], m.Args[2]), true
	}
	return nil, false
}

// isBilinearTC recognises search((R, R), [1.2=2.1], (1.1, 2.2)) for
// binary R (the §3.2 BETTER_THAN recursion).
func isBilinearTC(m *term.Term, name string, arity int) bool {
	if arity != 2 {
		return false
	}
	rels := m.Args[0].Args
	if len(rels) != 2 {
		return false
	}
	for _, r := range rels {
		n, ok := lera.RelName(r)
		if !ok || !equalFold(n, name) {
			return false
		}
	}
	conjs := lera.Conjuncts(m.Args[1])
	if len(conjs) != 1 || !term.Equal(conjs[0], lera.Cmp("=", lera.Attr(1, 2), lera.Attr(2, 1))) {
		return false
	}
	projs := m.Args[2].Args
	return len(projs) == 2 &&
		term.Equal(projs[0], lera.Attr(1, 1)) &&
		term.Equal(projs[1], lera.Attr(2, 2))
}

func seedUnion(seeds []*term.Term) *term.Term {
	if len(seeds) == 1 {
		return seeds[0]
	}
	return lera.Union(seeds...)
}

// bindingInvariant reports whether the bound head column col is copied
// verbatim from column col of the (single) recursive occurrence — the
// condition under which the selection commutes with the fixpoint.
func bindingInvariant(m *term.Term, name string, col int) bool {
	occ, ok := recOccurrences(m, name)
	if !ok || len(occ) != 1 {
		return false
	}
	projs := m.Args[2].Args
	if col < 1 || col > len(projs) {
		return false
	}
	i, j, isAttr := lera.AttrIdx(projs[col-1])
	return isAttr && i == occ[0] && j == col
}

// remapBinding rewrites a binding predicate from the fixpoint's outer
// list position to position 1 (the seed's own coordinates).
func remapBinding(b binding) *term.Term {
	return lera.MapAttrs(b.pred, func(i, j int, at *term.Term) *term.Term {
		return lera.Attr(1, j)
	})
}

// alreadyFiltered reports whether every seed already carries the remapped
// binding predicate somewhere in its subtree (filter layers stack when a
// query binds the same column more than once, so a top-level check alone
// would re-focus forever).
func alreadyFiltered(seeds []*term.Term, b binding) bool {
	want := remapBinding(b)
	for _, s := range seeds {
		if !term.Contains(s, func(sub *term.Term) bool { return term.Equal(sub, want) }) {
			return false
		}
	}
	return true
}

// filterSeed wraps a seed expression in a search applying the binding
// predicates, remapped from the fixpoint's outer position to position 1.
func filterSeed(seed *term.Term, arity int, b binding) *term.Term {
	projs := make([]*term.Term, arity)
	for j := 1; j <= arity; j++ {
		projs[j-1] = lera.Attr(1, j)
	}
	return lera.Search([]*term.Term{seed}, lera.Ands(remapBinding(b)), projs)
}
