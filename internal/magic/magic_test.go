package magic

import (
	"strings"
	"testing"

	"lera/internal/engine"
	"lera/internal/lera"
	"lera/internal/rewrite"
	"lera/internal/rules"
	"lera/internal/term"
	"lera/internal/testdb"
	"lera/internal/value"
)

func fixEngine(t *testing.T) *rewrite.Engine {
	t.Helper()
	cat, err := testdb.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	ext := rewrite.NewExternals()
	RegisterExternals(ext)
	rs := rules.MustParse(FixpointRules)
	return rewrite.New(rs, ext, cat, rewrite.Options{CollectTrace: true})
}

func betterThanFix() *term.Term {
	seed := lera.Search(
		[]*term.Term{lera.Rel("DOMINATE")},
		lera.TrueQual(),
		[]*term.Term{lera.Attr(1, 2), lera.Attr(1, 3)},
	)
	rec := lera.Search(
		[]*term.Term{lera.Rel("BETTER_THAN"), lera.Rel("BETTER_THAN")},
		lera.Ands(lera.Cmp("=", lera.Attr(1, 2), lera.Attr(2, 1))),
		[]*term.Term{lera.Attr(1, 1), lera.Attr(2, 2)},
	)
	return lera.Fix("BETTER_THAN", lera.Union(seed, rec), []string{"Refactor1", "Refactor2"})
}

// quinnQuery is the Figure 5 query: who dominates Quinn (binds column 2).
func quinnQuery() *term.Term {
	return lera.Search(
		[]*term.Term{betterThanFix()},
		lera.Ands(lera.Cmp("=", lera.Call("Name", lera.Attr(1, 2)), term.Str("Quinn"))),
		[]*term.Term{lera.Call("Name", lera.Attr(1, 1))},
	)
}

// TestFigure9RuleFires: the alexander rule rewrites the search-over-fix
// into a search over a focused fixpoint with filtered seeds.
func TestFigure9RuleFires(t *testing.T) {
	e := fixEngine(t)
	out, st, err := e.Run(quinnQuery())
	if err != nil {
		t.Fatal(err)
	}
	if st.Applications != 1 {
		t.Fatalf("applications = %d", st.Applications)
	}
	got := lera.Format(out)
	// The focused program: seed filtered by name(1.2)='Quinn', recursion
	// right-linearised over the seed expression.
	for _, frag := range []string{
		"fix(BETTER_THAN",
		"[name(1.2)='Quinn']",       // filtered seed
		"search((search((DOMINATE)", // linearised first operand is the seed expression
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("focused program missing %q:\n%s", frag, got)
		}
	}
	// The rewritten query keeps its outer qualification and projection.
	if !strings.HasPrefix(got, "search(") || !strings.HasSuffix(got, "(name(1.1)))") {
		t.Errorf("outer query shape: %s", got)
	}
	// Idempotent: running again does not re-fire endlessly (the rewritten
	// fix has a filtered seed; adornment still finds the outer binding,
	// but the result converges because rewriting yields an equal term).
	out2, _, err := e.Run(out)
	if err != nil {
		t.Fatal(err)
	}
	if !term.Equal(out, out2) {
		t.Errorf("second run changed the program:\n%s\nvs\n%s", lera.Format(out), lera.Format(out2))
	}
}

// TestFocusedEqualsUnfocused: the focused program returns exactly the
// query's answers on random graphs, with (far) less work.
func TestFocusedEqualsUnfocused(t *testing.T) {
	cat, _ := testdb.Catalog()
	e := fixEngine(t)
	for seed := int64(1); seed <= 4; seed++ {
		rows, objs := chainWithNoise(60, seed)
		eval := func(q *term.Term) (*engine.Relation, engine.Counters) {
			db := engine.New(cat)
			if err := db.Load("DOMINATE", rows); err != nil {
				t.Fatal(err)
			}
			for oid, o := range objs {
				db.SetObject(oid, o)
			}
			r, err := db.Eval(q)
			if err != nil {
				t.Fatal(err)
			}
			return r.Dedup(), db.Count
		}
		orig := quinnQuery()
		focused, _, err := e.Run(orig)
		if err != nil {
			t.Fatal(err)
		}
		r1, c1 := eval(orig)
		r2, c2 := eval(focused)
		if len(r1.Rows) != len(r2.Rows) {
			t.Fatalf("seed %d: answers differ: %d vs %d", seed, len(r1.Rows), len(r2.Rows))
		}
		keys := map[string]bool{}
		for _, row := range r1.Rows {
			keys[row[0].Key()] = true
		}
		for _, row := range r2.Rows {
			if !keys[row[0].Key()] {
				t.Fatalf("seed %d: focused produced extra answer %v", seed, row)
			}
		}
		if c2.Emitted >= c1.Emitted {
			t.Errorf("seed %d: focused did not reduce work: emitted %d vs %d", seed, c2.Emitted, c1.Emitted)
		}
	}
}

// chainWithNoise builds a chain 1->2->...->n/2 ending at Quinn's OID plus
// noise edges in a disconnected component, so focusing pays off.
func chainWithNoise(n int, seed int64) ([][]value.Value, map[int64]value.Value) {
	objs := map[int64]value.Value{}
	for i := 1; i <= n; i++ {
		name := "Actor" + string(rune('A'+i%26)) + string(rune('0'+i%10))
		if i == n/2 {
			name = "Quinn"
		}
		objs[int64(i)] = value.NewTuple(
			[]string{"Name", "Salary"},
			[]value.Value{value.String(name), value.Int(int64(1000 * i))})
	}
	score := value.NewList()
	var rows [][]value.Value
	// Chain into Quinn.
	for i := 1; i < n/2; i++ {
		rows = append(rows, []value.Value{value.Int(1), value.OID(int64(i)), value.OID(int64(i + 1)), score})
	}
	// Disconnected noise component.
	for i := n/2 + 1; i < n; i++ {
		rows = append(rows, []value.Value{value.Int(1), value.OID(int64(i)), value.OID(int64(i + 1)), score})
	}
	_ = seed
	return rows, objs
}

// TestAdornmentVetoWhenFree: no binding on the fix output leaves the
// query untouched.
func TestAdornmentVetoWhenFree(t *testing.T) {
	e := fixEngine(t)
	q := lera.Search(
		[]*term.Term{betterThanFix()},
		lera.TrueQual(),
		[]*term.Term{lera.Attr(1, 1)},
	)
	out, st, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applications != 0 || !term.Equal(out, q) {
		t.Errorf("free adornment must veto: %s", lera.Format(out))
	}
}

// Binding through an inequality (not =) does not focus.
func TestNonEqualityBindingVetoes(t *testing.T) {
	e := fixEngine(t)
	q := lera.Search(
		[]*term.Term{betterThanFix()},
		lera.Ands(lera.Cmp(">", lera.Attr(1, 2), term.Num(0))),
		[]*term.Term{lera.Attr(1, 1)},
	)
	_, st, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applications != 0 {
		t.Error("inequality binding must veto")
	}
}

// Column-1 binding uses the left-linear direction.
func TestLeftLinearDirection(t *testing.T) {
	e := fixEngine(t)
	q := lera.Search(
		[]*term.Term{betterThanFix()},
		lera.Ands(lera.Cmp("=", lera.Call("Name", lera.Attr(1, 1)), term.Str("Quinn"))),
		[]*term.Term{lera.Attr(1, 2)},
	)
	out, st, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applications != 1 {
		t.Fatalf("applications = %d", st.Applications)
	}
	got := lera.Format(out)
	if !strings.Contains(got, "[name(1.1)='Quinn']") {
		t.Errorf("left-linear seed filter missing: %s", got)
	}
	// Correctness on the sample data: whom does Quinn (transitively)
	// dominate? Nobody (Quinn is a sink).
	cat, _ := testdb.Catalog()
	inst, _ := testdb.Data()
	db := engine.New(cat)
	for name, rows := range inst.Rows {
		if err := db.Load(name, rows); err != nil {
			t.Fatal(err)
		}
	}
	for oid, o := range inst.Objects {
		db.SetObject(oid, o)
	}
	r, err := db.Eval(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 0 {
		t.Errorf("Quinn dominates nobody, got %v", r.Rows)
	}
}

// Unsupported recursion shapes veto cleanly.
func TestUnsupportedShapesVeto(t *testing.T) {
	e := fixEngine(t)
	// Non-TC bilinear recursion (projection swapped).
	rec := lera.Search(
		[]*term.Term{lera.Rel("R"), lera.Rel("R")},
		lera.Ands(lera.Cmp("=", lera.Attr(1, 2), lera.Attr(2, 1))),
		[]*term.Term{lera.Attr(2, 2), lera.Attr(1, 1)}, // swapped
	)
	seed := lera.Search([]*term.Term{lera.Rel("DOMINATE")}, lera.TrueQual(),
		[]*term.Term{lera.Attr(1, 2), lera.Attr(1, 3)})
	fx := lera.Fix("R", lera.Union(seed, rec), []string{"a", "b"})
	q := lera.Search([]*term.Term{fx},
		lera.Ands(lera.Cmp("=", lera.Attr(1, 2), term.Num(1))),
		[]*term.Term{lera.Attr(1, 1)})
	_, st, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applications != 0 {
		t.Error("swapped-projection bilinear must veto")
	}
	// Fixpoint with no seed members.
	fx2 := lera.Fix("R", lera.Union(
		lera.Search([]*term.Term{lera.Rel("R")}, lera.TrueQual(), []*term.Term{lera.Attr(1, 1), lera.Attr(1, 2)})),
		[]string{"a", "b"})
	q2 := lera.Search([]*term.Term{fx2},
		lera.Ands(lera.Cmp("=", lera.Attr(1, 2), term.Num(1))),
		[]*term.Term{lera.Attr(1, 1)})
	_, st2, err := e.Run(q2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Applications != 0 {
		t.Error("seedless fixpoint must veto")
	}
	// Non-union body.
	fx3 := lera.Fix("R", seed, []string{"a", "b"})
	q3 := lera.Search([]*term.Term{fx3},
		lera.Ands(lera.Cmp("=", lera.Attr(1, 2), term.Num(1))),
		[]*term.Term{lera.Attr(1, 1)})
	_, st3, err := e.Run(q3)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Applications != 0 {
		t.Error("non-union body must veto")
	}
}

// A genuinely linear recursion with invariant binding focuses directly
// (no linearisation needed): right-linear reachability.
func TestLinearRecursionFocuses(t *testing.T) {
	e := fixEngine(t)
	seed := lera.Search([]*term.Term{lera.Rel("DOMINATE")}, lera.TrueQual(),
		[]*term.Term{lera.Attr(1, 2), lera.Attr(1, 3)})
	rec := lera.Search(
		[]*term.Term{lera.Rel("DOMINATE"), lera.Rel("REACH")},
		lera.Ands(lera.Cmp("=", lera.Attr(1, 3), lera.Attr(2, 1))),
		[]*term.Term{lera.Attr(1, 2), lera.Attr(2, 2)},
	)
	fx := lera.Fix("REACH", lera.Union(seed, rec), []string{"src", "dst"})
	q := lera.Search([]*term.Term{fx},
		lera.Ands(lera.Cmp("=", lera.Call("Name", lera.Attr(1, 2)), term.Str("Quinn"))),
		[]*term.Term{lera.Attr(1, 1)})
	out, st, err := e.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applications != 1 {
		t.Fatalf("applications = %d: %s", st.Applications, lera.Format(out))
	}
	// Execute both versions and compare answer sets.
	cat, _ := testdb.Catalog()
	inst, _ := testdb.Data()
	load := func() *engine.DB {
		db := engine.New(cat)
		for name, rows := range inst.Rows {
			if err := db.Load(name, rows); err != nil {
				t.Fatal(err)
			}
		}
		for oid, o := range inst.Objects {
			db.SetObject(oid, o)
		}
		return db
	}
	r1, err := load().Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := load().Eval(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Dedup().Rows) != len(r2.Dedup().Rows) {
		t.Errorf("focused linear differs: %d vs %d rows", len(r1.Dedup().Rows), len(r2.Dedup().Rows))
	}
}

// Cyclic graphs: the focused program must terminate and agree with the
// unfocused one when the recursion's data contains cycles (the seen-set
// in the engine's fixpoint guarantees termination; focusing must not
// change the answer set).
func TestFocusedOnCyclicGraphs(t *testing.T) {
	cat, _ := testdb.Catalog()
	e := fixEngine(t)
	focused, _, err := e.Run(quinnQuery())
	if err != nil {
		t.Fatal(err)
	}
	score := value.NewList()
	// A 6-cycle through Quinn (OID 1) plus a tail into the cycle.
	var rows [][]value.Value
	cyc := []int64{2, 3, 1, 4, 5, 2}
	for i := 0; i < len(cyc); i++ {
		rows = append(rows, []value.Value{value.Int(1), value.OID(cyc[i]), value.OID(cyc[(i+1)%len(cyc)]), score})
	}
	rows = append(rows, []value.Value{value.Int(1), value.OID(6), value.OID(2), score})
	objs := map[int64]value.Value{}
	for oid, name := range map[int64]string{1: "Quinn", 2: "B", 3: "C", 4: "D", 5: "E", 6: "F"} {
		objs[oid] = value.NewTuple([]string{"Name"}, []value.Value{value.String(name)})
	}
	eval := func(q *term.Term) map[string]bool {
		db := engine.New(cat)
		if err := db.Load("DOMINATE", rows); err != nil {
			t.Fatal(err)
		}
		for oid, o := range objs {
			db.SetObject(oid, o)
		}
		r, err := db.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]bool{}
		for _, row := range r.Rows {
			out[row[0].Key()] = true
		}
		return out
	}
	raw := eval(quinnQuery())
	foc := eval(focused)
	if len(raw) != len(foc) {
		t.Fatalf("cyclic answers differ: %d vs %d", len(raw), len(foc))
	}
	for k := range raw {
		if !foc[k] {
			t.Fatalf("focused missing answer %s", k)
		}
	}
	// Everyone on or feeding the cycle dominates Quinn — including Quinn
	// itself (a cycle through Quinn makes Quinn its own dominator).
	if len(raw) != 6 {
		t.Errorf("expected 6 dominators on the cycle, got %d", len(raw))
	}
}
