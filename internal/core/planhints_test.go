package core

import (
	"testing"

	"lera/internal/lera"
	"lera/internal/term"
	"lera/internal/value"
)

// planSession builds TINY (5 rows, one matching a selective filter) and
// BIG (1000 rows).
func planSession(t *testing.T, opts ...Option) *Session {
	t.Helper()
	s := NewSession(opts...)
	s.MustExec("TABLE BIG (Id : INT, V : INT); TABLE TINY (K : INT, W : INT);")
	big := make([][]value.Value, 1000)
	for i := range big {
		big[i] = []value.Value{value.Int(int64(i)), value.Int(int64(i % 7))}
	}
	if err := s.DB.Load("BIG", big); err != nil {
		t.Fatal(err)
	}
	tiny := make([][]value.Value, 5)
	for i := range tiny {
		tiny[i] = []value.Value{value.Int(int64(i)), value.Int(int64(i * 10))}
	}
	if err := s.DB.Load("TINY", tiny); err != nil {
		t.Fatal(err)
	}
	return s
}

// The §7 planning extension: with WithPlanning, the smaller relation
// moves first and the engine's pipeline filters early.
func TestPlanningReordersJoins(t *testing.T) {
	q := "SELECT BIG.Id FROM BIG, TINY WHERE TINY.K = 3 AND BIG.V < 2"

	base := planSession(t)
	base.DB.ResetCounters()
	r1, err := base.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	basePairs := base.DB.Count.JoinPairs

	planned := planSession(t, WithPlanning())
	planned.DB.ResetCounters()
	r2, err := planned.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	plannedPairs := planned.DB.Count.JoinPairs

	if len(r1.Rows) != len(r2.Rows) {
		t.Fatalf("results differ: %d vs %d", len(r1.Rows), len(r2.Rows))
	}
	// The planned order is (TINY, BIG): the TINY filter applies before
	// the cartesian step, so join pairs drop from 5*1000 to 1*1000.
	if plannedPairs >= basePairs {
		t.Errorf("planning did not reduce join pairs: %d vs %d", plannedPairs, basePairs)
	}
	// The rewritten term's relation list starts with TINY.
	rels := findSearchRels(r2.Rewritten)
	if rels == nil || relName(rels[0]) != "TINY" {
		t.Errorf("reordered relations = %v", lera.Format(r2.Rewritten))
	}
}

// Identity orders veto: a query already smallest-first is untouched.
func TestPlanningIdentityVetoes(t *testing.T) {
	s := planSession(t, WithPlanning(), WithTrace())
	res, err := s.Query("SELECT TINY.K FROM TINY, BIG WHERE TINY.K = 3")
	if err != nil {
		t.Fatal(err)
	}
	rels := findSearchRels(res.Rewritten)
	if relName(rels[0]) != "TINY" || relName(rels[1]) != "BIG" {
		t.Errorf("order changed: %s", lera.Format(res.Rewritten))
	}
}

// Views and non-REL operands veto the reordering (only base relations
// carry estimates).
func TestPlanningNonBaseVetoes(t *testing.T) {
	s := planSession(t, WithPlanning(), WithBlockLimit("merge", 0))
	s.MustExec("CREATE VIEW BV (Id, V) AS SELECT Id, V FROM BIG WHERE V = 1;")
	res, err := s.Query("SELECT BV.Id FROM BV, TINY WHERE TINY.K = 1")
	if err != nil {
		t.Fatal(err)
	}
	rels := findSearchRels(res.Rewritten)
	if len(rels) != 2 || !lera.IsOp(rels[0], lera.OpSearch) {
		t.Errorf("view operand moved: %s", lera.Format(res.Rewritten))
	}
}

func findSearchRels(t *term.Term) []*term.Term {
	var rels []*term.Term
	term.Walk(t, func(s *term.Term, _ term.Path) bool {
		if lera.IsOp(s, lera.OpSearch) && rels == nil {
			rels = s.Args[0].Args
			return false
		}
		return true
	})
	return rels
}

func relName(t *term.Term) string {
	n, _ := lera.RelName(t)
	return n
}
