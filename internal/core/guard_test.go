package core

// End-to-end guardrail tests: the session degrades gracefully when the
// rewriter panics or runs out of budget — the query is still answered,
// from the fallback plan, with the reason recorded in Result.Stats —
// while execution-side budget failures stay hard errors, typed and with
// the plan attached to the returned Result.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"lera/internal/guard"
	"lera/internal/rewrite"
	"lera/internal/term"
)

// spinOpts installs a divergent but semantics-preserving rule: every
// SEARCH wraps in an identity FILTER, forever. Each intermediate term is
// fully executable, so any fallback plan the guard picks returns the
// same rows as the untouched query.
func spinOpts() []Option {
	return []Option{
		WithRules(`
rule spin: SEARCH(rl, f, p) --> FILTER(SEARCH(rl, f, p), TRUE);
block(spinb, {spin}, inf);
`),
		WithSequence("seq({spinb}, 1);"),
	}
}

const guardQuery = "SELECT Title FROM FILM WHERE Numf > 0"

// baselineRows answers the query with rewriting off.
func baselineRows(t *testing.T) []string {
	t.Helper()
	s := filmsSession(t)
	s.Rewrite = false
	res, err := s.Query(guardQuery)
	if err != nil {
		t.Fatal(err)
	}
	return sortedCol(res.Rows, 1)
}

// TestDegradeOnRewriteBudgets drives each rewrite-side budget error
// through the full session and checks the degradation contract: no
// error, correct rows, reason visible in Result.Stats.
func TestDegradeOnRewriteBudgets(t *testing.T) {
	want := baselineRows(t)
	cases := []struct {
		name       string
		limits     guard.Limits
		sentinel   error
		wantReason string
	}{
		{"deadline", guard.Limits{Timeout: 40 * time.Millisecond}, guard.ErrDeadline, "deadline"},
		{"step budget", guard.Limits{MaxSteps: 3}, guard.ErrStepBudget, "step budget"},
		{"term size", guard.Limits{MaxTermSize: 60}, guard.ErrTermSize, "term size"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := filmsSession(t, spinOpts()...)
			s.Limits = tc.limits
			res, err := s.Query(guardQuery)
			if err != nil {
				t.Fatalf("degradation must not surface the rewrite error: %v", err)
			}
			if res.Stats == nil || !res.Stats.Degraded {
				t.Fatalf("stats must record degradation: %+v", res.Stats)
			}
			if !strings.Contains(res.Stats.DegradationReason, tc.wantReason) {
				t.Errorf("reason = %q, want mention of %q", res.Stats.DegradationReason, tc.wantReason)
			}
			if got := sortedCol(res.Rows, 1); len(got) != len(want) {
				t.Fatalf("fallback rows = %v, want %v", got, want)
			} else {
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("fallback rows = %v, want %v", got, want)
						break
					}
				}
			}
		})
	}
}

// TestDegradeOnConstraintPanic: a panicking implementor constraint must
// not take the query down — the fault-injection harness arms the panic
// on the first call.
func TestDegradeOnConstraintPanic(t *testing.T) {
	want := baselineRows(t)
	s := filmsSession(t,
		WithRules(`
rule boomr: SEARCH(rl, f, p) / BOOMC(f) --> UNIONN(SET(SEARCH(rl, f, p)));
block(boomb, {boomr}, 1);
`),
		WithSequence("seq({boomb}, 1);"))
	rw, err := s.Rewriter()
	if err != nil {
		t.Fatal(err)
	}
	inj := guard.NewInjector()
	inj.Set("BOOMC", guard.Fault{OnCall: 1, Mode: guard.FaultPanic, PanicValue: "implementor bug"})
	rw.Ext.RegisterConstraint("BOOMC", func(ctx *rewrite.Ctx, args []*term.Term) (bool, error) {
		if err := inj.Hit(ctx.Context(), "BOOMC"); err != nil {
			return false, err
		}
		return true, nil
	})
	res, err := s.Query(guardQuery)
	if err != nil {
		t.Fatalf("panicking constraint must degrade, not fail: %v", err)
	}
	if res.Stats == nil || !res.Stats.Degraded {
		t.Fatalf("stats must record degradation: %+v", res.Stats)
	}
	reason := res.Stats.DegradationReason
	if !strings.Contains(reason, "BOOMC") || !strings.Contains(reason, "boomr") {
		t.Errorf("reason must name the external and the rule: %q", reason)
	}
	if got := sortedCol(res.Rows, 1); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("fallback rows = %v, want %v", got, want)
	}
	if inj.Calls("BOOMC") != 1 {
		t.Errorf("constraint called %d times, want 1", inj.Calls("BOOMC"))
	}
}

// TestExecutionRowBudgetIsHardError: execution-side budget exhaustion is
// not maskable — it fails, typed, with the plan attached.
func TestExecutionRowBudgetIsHardError(t *testing.T) {
	s := filmsSession(t)
	s.Limits = guard.Limits{MaxRows: 2}
	res, err := s.Query(guardQuery)
	if !errors.Is(err, guard.ErrRowBudget) {
		t.Fatalf("got %v, want ErrRowBudget", err)
	}
	if res == nil || res.Rewritten == nil {
		t.Fatal("the failing Result must carry the plan that was running")
	}
}

// TestQueryCtxCancellation: a caller-cancelled context stops the pipeline.
func TestQueryCtxCancellation(t *testing.T) {
	s := filmsSession(t, spinOpts()...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := s.QueryCtx(ctx, guardQuery)
	// The rewrite phase degrades on the cancelled context; execution then
	// either fails on the same dead context or finishes trivially before
	// the first amortized check. Either way the cancellation must be
	// visible: as a typed error or as a degradation record.
	if err != nil {
		if !errors.Is(err, context.Canceled) && !errors.Is(err, guard.ErrDeadline) {
			t.Fatalf("got %v, want context.Canceled or ErrDeadline", err)
		}
		return
	}
	if res.Stats == nil || !res.Stats.Degraded {
		t.Fatalf("cancelled ctx left no trace: %+v", res.Stats)
	}
}

// TestLimitsZeroValueIsUnlimited: the ctx-less API with zero Limits must
// behave exactly as before the guard layer existed.
func TestLimitsZeroValueIsUnlimited(t *testing.T) {
	s := filmsSession(t)
	res, err := s.Query(guardQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != nil && res.Stats.Degraded {
		t.Fatalf("unexpected degradation: %q", res.Stats.DegradationReason)
	}
	if got := sortedCol(res.Rows, 1); len(got) == 0 {
		t.Fatal("no rows")
	}
}
