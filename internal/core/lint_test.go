package core

import (
	"strings"
	"testing"

	"lera/internal/catalog"
	"lera/internal/lera"
	"lera/internal/term"
)

// TestBuiltinRuleBaseLint checks the assembled default rule base for
// internal consistency: every block referenced by the sequence exists,
// every method call names a registered method, and every constraint is
// either a known special form (comparisons, connectives, ISA, ground
// evaluation of pure ADT functions) or a registered constraint function.
// This is the drift check between rule text and Go externals.
func TestBuiltinRuleBaseLint(t *testing.T) {
	rw, err := New(catalog.New(), WithPlanning())
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.RS.Validate(); err != nil {
		t.Fatal(err)
	}
	inBlocks := map[string]bool{}
	for _, b := range rw.RS.Blocks {
		for _, rn := range b.Rules {
			inBlocks[rn] = true
		}
	}
	knownConstraintForms := map[string]bool{
		"AND": true, "OR": true, "NOT": true, "ISA": true,
		"=": true, "<>": true, "<": true, ">": true, "<=": true, ">=": true,
		"MEMBER": true, // ground-evaluable through the ADT registry
	}
	for name, r := range rw.RS.Rules {
		if !inBlocks[name] {
			t.Errorf("rule %q is in no block (dead rule)", name)
		}
		for _, m := range r.Methods {
			if m.Kind != term.Fun || m.VarHead {
				t.Errorf("rule %q: method %s is not a fixed-head call", name, m)
				continue
			}
			if !rw.Ext.HasMethod(m.Functor) {
				t.Errorf("rule %q: method %q is not registered", name, m.Functor)
			}
		}
		for _, c := range r.Constraints {
			if c.Kind != term.Fun {
				continue
			}
			if c.VarHead || knownConstraintForms[strings.ToUpper(c.Functor)] {
				continue
			}
			if !rw.Ext.HasConstraint(c.Functor) {
				t.Errorf("rule %q: constraint %q is not registered", name, c.Functor)
			}
		}
		// Right-hand sides may only call builtins where a builtin is
		// clearly intended (upper bound check: any non-constructor,
		// non-LERA functor that IS registered as builtin is fine; we
		// just ensure the known builtins used in text exist).
		term.Walk(r.RHS, func(s *term.Term, _ term.Path) bool {
			if s.Kind == term.Fun && !s.VarHead {
				switch s.Functor {
				case "APPENDL", "ANDMERGE", "ORMERGE", "SET-UNION", "SETUNION", "MKCALL":
					if !rw.Ext.HasBuiltin(s.Functor) {
						t.Errorf("rule %q: builtin %q is not registered", name, s.Functor)
					}
				}
			}
			return true
		})
	}
	// The sequence must reference every phase block exactly as DESIGN.md
	// documents.
	want := []string{"typecheck", "normalize", "merge", "push", "fixpoint", "merge", "constraints", "semantic", "simplify", "merge", "planning"}
	if strings.Join(rw.RS.Sequence.Blocks, ",") != strings.Join(want, ",") {
		t.Errorf("sequence = %v, want %v", rw.RS.Sequence.Blocks, want)
	}
}

// TestDefaultRuleInventory pins the default rule census: adding or
// removing a built-in rule must be a conscious act.
func TestDefaultRuleInventory(t *testing.T) {
	rw, err := New(catalog.New())
	if err != nil {
		t.Fatal(err)
	}
	byBlock := map[string]int{}
	for _, b := range rw.RS.Blocks {
		byBlock[b.Name] = len(b.Rules)
	}
	want := map[string]int{
		"typecheck":   4,
		"normalize":   6,
		"merge":       4,
		"push":        4,
		"fixpoint":    1,
		"constraints": 0,
		"semantic":    3,
		"simplify":    14,
	}
	for block, n := range want {
		if byBlock[block] != n {
			t.Errorf("block %q has %d rules, want %d", block, byBlock[block], n)
		}
	}
	// Every default rule's LHS must be a well-formed pattern (parse
	// already guarantees functional LHS; re-assert as a guard).
	for name, r := range rw.RS.Rules {
		if r.LHS.Kind != term.Fun {
			t.Errorf("rule %q LHS not functional", name)
		}
		_ = lera.Format // anchor the lera import for future golden checks
	}
}

// The default rule base's saturating blocks contain only rules whose
// non-termination risk is covered by no-change detection; Lint reports
// them (and any dead rules) so implementors can audit extensions.
func TestRewriterLint(t *testing.T) {
	rw, err := New(catalog.New(), WithRules(`
rule grower: TINYF(x) --> BIGF(x, x);
block(growers, {grower}, inf);
rule orphan: ORPH(x) --> ORPH2(x);
`))
	if err != nil {
		t.Fatal(err)
	}
	warns := strings.Join(rw.Lint(), "\n")
	if !strings.Contains(warns, `"grower"`) {
		t.Errorf("grower should warn: %s", warns)
	}
	if !strings.Contains(warns, `"orphan"`) {
		t.Errorf("orphan should be reported dead: %s", warns)
	}
}
