package core

import (
	"strings"
	"testing"

	"lera/internal/engine"
	"lera/internal/esql"
)

// explainOf runs one EXPLAIN statement through the full Exec path (so the
// parser dispatch is covered too) and returns the single result.
func explainOf(t *testing.T, s *Session, stmt string) *Result {
	t.Helper()
	rs, err := s.Exec(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("got %d results, want 1", len(rs))
	}
	if rs[0].Kind != ResultExplain {
		t.Fatalf("kind = %v, want ResultExplain", rs[0].Kind)
	}
	return rs[0]
}

func TestExplainWithoutAnalyze(t *testing.T) {
	s := filmsSession(t)
	res := explainOf(t, s, "EXPLAIN "+strings.TrimSpace(strings.TrimRight(strings.TrimSpace(esql.Figure3Query), ";"))+";")
	msg := res.Message
	for _, want := range []string{
		"plan (translated):",
		"plan (rewritten):",
		"rewrite: applications=",
		"trace:",
		"rewrite.block block=merge",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("EXPLAIN output missing %q:\n%s", want, msg)
		}
	}
	// No execution happened: no exec section, no rows, no timings.
	if strings.Contains(msg, "execution:") || strings.Contains(msg, "timings:") {
		t.Errorf("plain EXPLAIN must not execute:\n%s", msg)
	}
	if res.Rows != nil {
		t.Error("plain EXPLAIN returned rows")
	}
	// Determinism: the untimed report is identical across fresh sessions.
	s2 := filmsSession(t)
	res2 := explainOf(t, s2, "EXPLAIN "+strings.TrimSpace(strings.TrimRight(strings.TrimSpace(esql.Figure3Query), ";"))+";")
	if res.Message != res2.Message {
		t.Errorf("EXPLAIN not deterministic:\n--- first\n%s\n--- second\n%s", res.Message, res2.Message)
	}
}

// TestExplainAnalyzeCorpus is the CI corpus gate: EXPLAIN ANALYZE over
// the Figure 3 join query and the Figure 5 recursive query must show
// per-block rewrite spans, per-operator row counts, and — for the
// recursive query — per-round fixpoint deltas under both evaluation
// modes, with a non-empty ExecStats tree.
func TestExplainAnalyzeCorpus(t *testing.T) {
	fig3 := "EXPLAIN ANALYZE " + strings.TrimSpace(strings.TrimRight(strings.TrimSpace(esql.Figure3Query), ";")) + ";"
	fig5 := "EXPLAIN ANALYZE " + strings.TrimSpace(strings.TrimRight(strings.TrimSpace(esql.Figure5Query), ";")) + ";"

	t.Run("figure3", func(t *testing.T) {
		s := filmsSession(t)
		res := explainOf(t, s, fig3)
		msg := res.Message
		for _, want := range []string{
			"execution:",
			"rewrite.block block=merge",
			"rule.apply",
			"op.SEARCH",
			"timings:",
			"result: 1 rows",
			"rows=",
		} {
			if !strings.Contains(msg, want) {
				t.Errorf("missing %q:\n%s", want, msg)
			}
		}
		if res.Report == nil || res.Report.Exec == nil || len(res.Report.Exec.Children) == 0 {
			t.Fatal("empty ExecStats on EXPLAIN ANALYZE")
		}
	})

	for _, mode := range []struct {
		name string
		m    engine.FixMode
		tag  string
	}{
		{"figure5-semi-naive", engine.SemiNaive, "[semi-naive]"},
		{"figure5-naive", engine.Naive, "[naive]"},
	} {
		t.Run(mode.name, func(t *testing.T) {
			s := filmsSession(t)
			s.DB.Mode = mode.m
			res := explainOf(t, s, fig5)
			msg := res.Message
			for _, want := range []string{
				"execution:",
				"FIX",
				mode.tag,
				"· round 1:",
				"fix.round",
				"rows (total",
			} {
				if !strings.Contains(msg, want) {
					t.Errorf("missing %q:\n%s", want, msg)
				}
			}
			fix := findStats(res.Report.Exec, "FIX")
			if fix == nil || len(fix.Rounds) == 0 {
				t.Fatal("FIX node missing per-round deltas")
			}
		})
	}
}

func TestExplainParseErrors(t *testing.T) {
	s := filmsSession(t)
	if _, err := s.Exec("EXPLAIN INSERT INTO FILM VALUES (9, 'x', SET('Western'));"); err == nil {
		t.Fatal("EXPLAIN of a non-SELECT must be a parse error")
	}
	if _, err := s.Exec("EXPLAIN ANALYZE SELECT NoSuchCol FROM FILM;"); err == nil {
		t.Fatal("EXPLAIN ANALYZE of an untranslatable query must fail")
	}
}
