package core

import (
	"testing"

	"lera/internal/esql"
	"lera/internal/lera"
	"lera/internal/testdb"
)

// goldenCases pins the exact LERA form a query translates to and the
// exact form the default rewriter produces, plus the answer cardinality
// on the Figure 2 sample instance. Any change to the default rule base
// that alters a plan shows up here as a reviewable diff.
var goldenCases = []struct {
	query  string
	before string
	after  string
	rows   int
}{
	{
		query:  "SELECT Title FROM FILM WHERE Numf = 1",
		before: "search((FILM), [1.1=1], (1.2))",
		after:  "search((FILM), [1.1=1], (1.2))",
		rows:   1,
	},
	{
		query:  "SELECT Title, Categories, Salary(Refactor) FROM APPEARS_IN, FILM WHERE FILM.Numf = APPEARS_IN.Numf AND Name(Refactor) = 'Quinn' AND MEMBER('Adventure', Categories)",
		before: "search((APPEARS_IN, FILM), [1.1=2.1 ∧ name(1.2)='Quinn' ∧ member('Adventure', 2.3)], (2.2, 2.3, salary(1.2)))",
		after:  "search((APPEARS_IN, FILM), [1.1=2.1 ∧ PROJECT(VALUE(1.2), Name)='Quinn' ∧ member('Adventure', 2.3)], (2.2, 2.3, PROJECT(VALUE(1.2), Salary)))",
		rows:   1,
	},
	{
		query:  "SELECT Title FROM FilmActors WHERE MEMBER('Adventure', Categories) AND ALL(Salary(Actors) > 10000)",
		before: "search((nest(search((FILM, APPEARS_IN), [1.1=2.1], (1.2, 1.3, 2.2)), (3), Actors)), [all(salary(1.3)>10000) ∧ member('Adventure', 1.2)], (1.1))",
		after:  "search((nest(search((FILM, APPEARS_IN), [1.1=2.1 ∧ member('Adventure', 1.3)], (1.2, 1.3, 2.2)), (3), Actors)), [all(PROJECT(1.3, Salary)>10000)], (1.1))",
		rows:   2,
	},
	{
		query:  "SELECT Name(Refactor1) FROM BETTER_THAN WHERE Name(Refactor2) = 'Quinn'",
		before: "search((fix(BETTER_THAN, union({search((DOMINATE), [true], (1.2, 1.3)), search((BETTER_THAN, BETTER_THAN), [1.2=2.1], (1.1, 2.2))}))), [name(1.2)='Quinn'], (name(1.1)))",
		after:  "search((fix(BETTER_THAN, union({search((DOMINATE), [PROJECT(VALUE(1.3), Name)='Quinn'], (1.2, 1.3)), search((BETTER_THAN, DOMINATE), [2.3=1.1], (2.2, 1.2))}))), [PROJECT(VALUE(1.2), Name)='Quinn'], (PROJECT(VALUE(1.1), Name)))",
		rows:   5,
	},
	{
		query:  "SELECT Numf FROM FILM WHERE Numf = 1 OR Numf = 2",
		before: "search((FILM), [1.1=1 ∨ 1.1=2], (1.1))",
		after:  "search((FILM), [1.1=1 ∨ 1.1=2], (1.1))",
		rows:   2,
	},
	{
		query:  "SELECT Title FROM FILM WHERE MEMBER('Cartoon', Categories)",
		before: "search((FILM), [member('Cartoon', 1.3)], (1.2))",
		after:  "search((FILM), [FALSE], (1.2))",
		rows:   0,
	},
	{
		query:  "SELECT Title FROM FILM WHERE 2 + 3 = 5 AND Numf = 1",
		before: "search((FILM), [(2 + 3)=5 ∧ 1.1=1], (1.2))",
		after:  "search((FILM), [1.1=1], (1.2))",
		rows:   1,
	},
	{
		query:  "SELECT Title FROM FILM WHERE Numf > 2 AND Numf <= 2",
		before: "search((FILM), [1.1<=2 ∧ 1.1>2], (1.2))",
		after:  "search((FILM), [FALSE], (1.2))",
		rows:   0,
	},
	{
		query:  "SELECT Title FROM AdvFilms WHERE Numf = 1",
		before: "search((search((FILM), [member('Adventure', 1.3)], (1.1, 1.2))), [1.1=1], (1.2))",
		after:  "search((FILM), [1.1=1 ∧ member('Adventure', 1.3)], (1.2))",
		rows:   1,
	},
	{
		query:  "SELECT D1.Numf FROM DOMINATE D1, DOMINATE D2 WHERE D1.Refactor2 = D2.Refactor1",
		before: "search((DOMINATE, DOMINATE), [1.3=2.2], (1.1))",
		after:  "search((DOMINATE, DOMINATE), [1.3=2.2], (1.1))",
		rows:   3,
	},
	{
		query:  "SELECT Numf FROM EITHERF WHERE Numf < 2",
		before: "search((union({search((APPEARS_IN), [true], (1.1)), search((FILM), [true], (1.1))})), [1.1<2], (1.1))",
		after:  "union({search((APPEARS_IN), [1.1<2], (1.1)), search((FILM), [1.1<2], (1.1))})",
		rows:   1,
	},
	{
		query:  "SELECT Title FROM FILM WHERE NOT ISEMPTY(Categories) AND Numf = 3",
		before: "search((FILM), [1.1=3 ∧ ¬(isempty(1.3))], (1.2))",
		after:  "search((FILM), [1.1=3 ∧ ¬(isempty(1.3))], (1.2))",
		rows:   1,
	},
	{
		query:  "SELECT Refactor2 FROM BETTER_THAN WHERE Name(Refactor1) = 'Quinn'",
		before: "search((fix(BETTER_THAN, union({search((DOMINATE), [true], (1.2, 1.3)), search((BETTER_THAN, BETTER_THAN), [1.2=2.1], (1.1, 2.2))}))), [name(1.1)='Quinn'], (1.2))",
		after:  "search((fix(BETTER_THAN, union({search((DOMINATE), [PROJECT(VALUE(1.2), Name)='Quinn'], (1.2, 1.3)), search((BETTER_THAN, DOMINATE), [1.2=2.2], (1.1, 2.3))}))), [PROJECT(VALUE(1.1), Name)='Quinn'], (1.2))",
		rows:   0,
	},
	{
		query:  "SELECT Title FROM DEEP2 WHERE Numf = 1",
		before: "search((search((search((search((FILM), [member('Adventure', 1.3)], (1.1, 1.2))), [1.1>0], (1.1, 1.2))), [1.1<100], (1.1, 1.2))), [1.1=1], (1.2))",
		after:  "search((FILM), [1.1<100 ∧ 1.1=1 ∧ 1.1>0 ∧ member('Adventure', 1.3)], (1.2))",
		rows:   1,
	},
}

func goldenSession(t *testing.T, opts ...Option) *Session {
	t.Helper()
	s := NewSession(opts...)
	s.MustExec(esql.Figure2DDL)
	s.MustExec(esql.Figure4View)
	s.MustExec(esql.Figure5View)
	s.MustExec("CREATE VIEW AdvFilms (Numf, Title) AS SELECT Numf, Title FROM FILM WHERE MEMBER('Adventure', Categories);")
	s.MustExec("CREATE VIEW EITHERF (Numf) AS SELECT Numf FROM FILM UNION SELECT Numf FROM APPEARS_IN;")
	s.MustExec("CREATE VIEW DEEP1 (Numf, Title) AS SELECT Numf, Title FROM AdvFilms WHERE Numf > 0;")
	s.MustExec("CREATE VIEW DEEP2 (Numf, Title) AS SELECT Numf, Title FROM DEEP1 WHERE Numf < 100;")
	inst, err := testdb.Data()
	if err != nil {
		t.Fatal(err)
	}
	for name, rows := range inst.Rows {
		if err := s.DB.Load(name, rows); err != nil {
			t.Fatal(err)
		}
	}
	for oid, obj := range inst.Objects {
		s.SetObject(oid, obj)
	}
	return s
}

func TestGoldenPlans(t *testing.T) {
	s := goldenSession(t)
	for _, c := range goldenCases {
		res, err := s.Query(c.query)
		if err != nil {
			t.Errorf("%s: %v", c.query, err)
			continue
		}
		if got := lera.Format(res.Initial); got != c.before {
			t.Errorf("%s\n  before = %s\n  want     %s", c.query, got, c.before)
		}
		if got := lera.Format(res.Rewritten); got != c.after {
			t.Errorf("%s\n  after = %s\n  want    %s", c.query, got, c.after)
		}
		if len(res.Rows) != c.rows {
			t.Errorf("%s: rows = %d, want %d", c.query, len(res.Rows), c.rows)
		}
	}
}
