package core

// Session plan cache (docs/PLANCACHE.md): the layer between translate
// and rewrite that makes repeated query shapes nearly free. The flow
// for one SELECT, when WithPlanCache is armed:
//
//  1. Templatize the translated term (internal/plancache): lift value
//     constants into a binding vector, leaving a structural template.
//  2. Look the template up under the session's cache environment — the
//     rule-base fingerprint, the rewrite-relevant knobs, the guard
//     budget shape and the catalog schema version. A hit substitutes
//     the bindings into the cached plan and skips the rewriter
//     entirely; an entry whose environment changed is dropped and
//     counted as an invalidation.
//  3. On a miss the concrete term is rewritten exactly as an uncached
//     session would (so this query's result, stats and trace are
//     untouched by caching), then the template itself is rewritten once
//     — outside the query's observability scope — and the candidate is
//     accepted only if substituting the bindings into the template's
//     plan reproduces the concrete plan bit-for-bit. Shapes that fail
//     (a rewrite rule consumed a lifted constant: constant folding,
//     range contradictions, constraint-driven member() elimination)
//     are remembered and fall back to exact-term caching.
//
// Degraded rewrites are never cached. Cached plans are immutable terms
// shared read-only across a fork pool; constants never live in a
// template, so a shared cache cannot leak data between sessions.

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"lera/internal/obs"
	"lera/internal/plancache"
	"lera/internal/rewrite"
	"lera/internal/term"
)

// WithPlanCache arms a plan cache of n entries on the session. Forks
// share the parent's cache (see Session.Fork); rule-base or catalog
// differences between sharers are kept apart by the cache environment
// key, never by luck.
func WithPlanCache(n int) Option { return func(c *config) { c.planCache = n } }

// WithPlanCacheValidation re-validates every n'th hit of each cached
// template against a cold rewrite of the concrete query: if a
// value-dependent rule would have produced a different plan for this
// binding, the entry is invalidated, the cold plan is used, and the
// disagreement is counted (lera_plancache_* / \cache). n = 1 validates
// every hit — full determinism insurance at full rewrite cost; 0 (the
// default) trusts the store-time round-trip check.
func WithPlanCacheValidation(n int) Option { return func(c *config) { c.planCacheVal = n } }

// planCacheOf builds the cache described by an option list (nil when
// the option is absent) plus the validation cadence.
func planCacheOf(opts []Option) (*plancache.Cache, int) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.planCache <= 0 {
		return nil, 0
	}
	return plancache.New(cfg.planCache), cfg.planCacheVal
}

// Fingerprint returns the rule-base fingerprint (rules.RuleSet
// Fingerprint), memoized per rewriter build — any rule change rebuilds
// the rewriter and therefore re-derives it.
func (r *Rewriter) Fingerprint() string {
	if r.fingerprint == "" {
		r.fingerprint = r.RS.Fingerprint()
	}
	return r.fingerprint
}

// knobs returns the signature of every construction-time option that
// can change rewrite output without changing the rule-base fingerprint:
// block budgets and disabled blocks, the master sequence, the dynamic
// limit policy and the check budget. (WithFullScan and WithRowEngine are
// excluded on purpose — the indexed and full-scan rewriters produce
// identical rewrites, and the execution-engine choice never affects the
// rewrite output at all, which is exactly what docs/PERF.md pins.)
func (r *Rewriter) knobs() string {
	if r.knobSig != "" {
		return r.knobSig
	}
	parts := []string{fmt.Sprintf("conslim=%d", r.cfg.constraintLim)}
	if r.cfg.dynamicLimits {
		parts = append(parts, "dyn")
	}
	if r.cfg.maxChecks != 0 {
		parts = append(parts, fmt.Sprintf("checks=%d", r.cfg.maxChecks))
	}
	if r.cfg.sequence != "" {
		parts = append(parts, "seq="+r.cfg.sequence)
	}
	var keys []string
	for k := range r.cfg.blockLimits {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("bl:%s=%d", k, r.cfg.blockLimits[k]))
	}
	keys = keys[:0]
	for k := range r.cfg.disableBlocks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts = append(parts, "off:"+k)
	}
	r.knobSig = strings.Join(parts, "|")
	return r.knobSig
}

// usesPlanning reports whether the rule base carries the §7 planning
// block, whose JOINORDER external reads estimated cardinalities — the
// one case where rewrite output depends on stored data, so the cache
// environment must also key on the catalog data version.
func (r *Rewriter) usesPlanning() bool {
	_, ok := r.RS.Blocks["planning"]
	return ok
}

// cacheEnv is the environment string guarding every cache entry: if any
// input the rewriter consults changes, the string changes and stale
// entries die on their next lookup (observable as invalidations).
func (s *Session) cacheEnv(rw *Rewriter) string {
	var sb strings.Builder
	sb.WriteString(rw.Fingerprint())
	sb.WriteByte('|')
	sb.WriteString(rw.knobs())
	fmt.Fprintf(&sb, "|steps=%d|size=%d|schema=%d", s.Limits.MaxSteps, s.Limits.MaxTermSize, s.Cat.SchemaVersion())
	if rw.usesPlanning() {
		fmt.Fprintf(&sb, "|data=%d", s.Cat.DataVersion())
	}
	return sb.String()
}

// rewritePlan is the rewrite phase of execSelect: rewriteGuarded when
// no cache is armed, else the cache-aware path described at the top of
// this file. The returned Outcome is nil exactly when the cache did not
// participate (no cache, or no usable rewriter).
func (s *Session) rewritePlan(ctx context.Context, q *term.Term) (*term.Term, *rewrite.Stats, *plancache.Outcome) {
	if s.Plans == nil {
		plan, st := s.rewriteGuarded(ctx, q)
		return plan, st, nil
	}
	rw, err := s.Rewriter()
	if err != nil {
		// rewriteGuarded reports the broken rule base as a degradation.
		plan, st := s.rewriteGuarded(ctx, q)
		return plan, st, nil
	}
	env := s.cacheEnv(rw)
	tmpl, params := plancache.Templatize(q)

	// Shapes whose template failed validation use exact-term entries:
	// the key becomes the concrete term and substitution is a no-op.
	key := tmpl
	rejected := false
	if len(params) > 0 && s.Plans.Rejected(tmpl.Hash()) {
		key, rejected = q, true
	}
	out := &plancache.Outcome{TemplateHash: key.Hash(), NParams: len(params), Rejected: rejected}

	plan, nparams, ordinal, status := s.Plans.Lookup(key, env)
	switch status {
	case plancache.Hit:
		bound, serr := plancache.Substitute(plan, params)
		if serr == nil {
			if s.validateEvery > 0 && nparams > 0 && ordinal%uint64(s.validateEvery) == 0 {
				return s.validateHit(ctx, q, key, bound, out)
			}
			out.Hit = true
			return bound, &rewrite.Stats{CacheHit: true}, out
		}
		// A plan referencing bindings we do not have is a corrupt entry;
		// drop it and treat the query as a miss.
		s.Plans.FailValidation(key)
		out.Invalidated = true
	case plancache.Stale:
		out.Invalidated = true
	}

	// Miss: the concrete term takes today's exact rewrite path, so this
	// query's plan, stats and spans are identical to an uncached run.
	plan, stats := s.rewriteGuarded(ctx, q)
	if stats.Degraded {
		return plan, stats, out // degraded plans are never cached
	}
	if len(params) == 0 || rejected {
		out.Stored = true
		out.Evicted = s.Plans.Store(key, plan, 0, env)
		return plan, stats, out
	}

	// First sighting of a parameterized shape: rewrite the template once
	// (outside the query's observability scope) and accept it only if
	// substituting this query's bindings reproduces the concrete plan.
	if tplan, ok := s.rewriteTemplate(ctx, rw, tmpl); ok {
		if check, serr := plancache.Substitute(tplan, params); serr == nil && term.Equal(check, plan) {
			out.Stored = true
			out.Evicted = s.Plans.Store(tmpl, tplan, len(params), env)
			return plan, stats, out
		}
	}
	s.Plans.Reject(tmpl.Hash())
	out.Rejected = true
	out.Stored = true
	out.Evicted += s.Plans.Store(q, plan, 0, env)
	return plan, stats, out
}

// validateHit re-derives the plan for a sampled cache hit and compares
// it with the substituted cached plan. Agreement serves the hit (with
// the honest cost of the check in the stats); disagreement invalidates
// the entry and serves the cold plan, so a WithPlanCacheValidation(1)
// session is bit-identical to an uncached one on every query.
func (s *Session) validateHit(ctx context.Context, q, key, bound *term.Term, out *plancache.Outcome) (*term.Term, *rewrite.Stats, *plancache.Outcome) {
	cold, coldStats := s.rewriteGuarded(obs.NewContext(ctx, nil), q)
	out.Validated = true
	if coldStats.Degraded || !term.Equal(cold, bound) {
		s.Plans.FailValidation(key)
		out.ValidationFailed = true
		out.Invalidated = true
		return cold, coldStats, out
	}
	coldStats.CacheHit = true
	out.Hit = true
	return bound, coldStats, out
}

// rewriteTemplate rewrites a templatized term under the session limits
// but outside the query's observability scope: no spans, no trace, no
// metric attribution — the template derivation is cache bookkeeping,
// not query work. Failure (error or degradation) just means the shape
// is not template-cacheable right now.
func (s *Session) rewriteTemplate(ctx context.Context, rw *Rewriter, tmpl *term.Term) (*term.Term, bool) {
	rwCtx := obs.NewContext(ctx, nil)
	cancel := func() {}
	if s.Limits.Timeout > 0 {
		rwCtx, cancel = context.WithTimeout(rwCtx, s.Limits.Timeout)
	}
	defer cancel()
	tplan, st, err := rw.RewriteCtx(rwCtx, tmpl, s.Limits)
	if err != nil || st == nil || st.Degraded {
		return nil, false
	}
	return tplan, true
}

// peekPlanCache is the read-only probe used by plain EXPLAIN: report
// whether the query would hit, and the plan it would get, without
// touching hit/miss counters, LRU order or stored entries.
func (s *Session) peekPlanCache(q *term.Term) (*term.Term, *plancache.Outcome) {
	if s.Plans == nil {
		return nil, nil
	}
	rw, err := s.Rewriter()
	if err != nil {
		return nil, nil
	}
	env := s.cacheEnv(rw)
	tmpl, params := plancache.Templatize(q)
	key := tmpl
	rejected := false
	if len(params) > 0 && s.Plans.Rejected(tmpl.Hash()) {
		key, rejected = q, true
	}
	out := &plancache.Outcome{TemplateHash: key.Hash(), NParams: len(params), Rejected: rejected}
	plan, _, ok := s.Plans.Peek(key, env)
	if !ok {
		return nil, out
	}
	bound, serr := plancache.Substitute(plan, params)
	if serr != nil {
		return nil, out
	}
	out.Hit = true
	return bound, out
}
