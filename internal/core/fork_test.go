package core

// Session forking (the session-pool snapshot) and first-class fault
// injection (WithInjector): forks share catalog + data immutably with
// private execution state, and one injector instance reaches both the
// rewrite-side externals and the execution-side ADT calls without any
// test-only wiring.

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"lera/internal/guard"
	"lera/internal/rewrite"
	"lera/internal/term"
)

// TestForkBitIdenticalAndIsolated: a forked session answers exactly as
// its parent — same rows, same rewrite — while work counters accumulate
// privately per fork.
func TestForkBitIdenticalAndIsolated(t *testing.T) {
	parent := filmsSession(t)
	want, err := parent.Query(guardQuery)
	if err != nil {
		t.Fatal(err)
	}
	parentCount := parent.DB.Count

	fork, err := parent.Fork()
	if err != nil {
		t.Fatal(err)
	}
	got, err := fork.Query(guardQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("fork rows = %d, want %d", len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		for j := range got.Rows[i] {
			if got.Rows[i][j].String() != want.Rows[i][j].String() {
				t.Fatalf("row %d differs: %v vs %v", i, got.Rows[i], want.Rows[i])
			}
		}
	}
	if fork.DB.Count != parentCount {
		t.Errorf("fork counters %+v differ from the parent's for the same query %+v", fork.DB.Count, parentCount)
	}
	if parent.DB.Count != parentCount {
		t.Errorf("running the fork mutated the parent's counters: %+v", parent.DB.Count)
	}
}

// TestForkConcurrent runs many forks in parallel over the shared
// snapshot; with -race this is the session-pool safety proof.
func TestForkConcurrent(t *testing.T) {
	parent := filmsSession(t)
	want, err := parent.Query(guardQuery)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		fork, err := parent.Fork()
		if err != nil {
			t.Fatal(err)
		}
		fork.Parallelism = 2
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				res, err := fork.Query(guardQuery)
				if err != nil {
					t.Errorf("fork query: %v", err)
					return
				}
				if len(res.Rows) != len(want.Rows) {
					t.Errorf("fork rows = %d, want %d", len(res.Rows), len(want.Rows))
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestWithInjectorReachesRewriteExternals: an injected constraint error
// degrades the rewrite with the INJECTED protocol code — no manual
// injector wrapping inside the constraint, the pipeline hits it.
func TestWithInjectorReachesRewriteExternals(t *testing.T) {
	inj := guard.NewInjector()
	s := filmsSession(t,
		WithRules(`
rule boomr: SEARCH(rl, f, p) / BOOMC(f) --> UNIONN(SET(SEARCH(rl, f, p)));
block(boomb, {boomr}, 1);
`),
		WithSequence("seq({boomb}, 1);"),
		WithInjector(inj))
	rw, err := s.Rewriter()
	if err != nil {
		t.Fatal(err)
	}
	rw.Ext.RegisterConstraint("BOOMC", func(_ *rewrite.Ctx, _ []*term.Term) (bool, error) { return true, nil })
	inj.Set("BOOMC", guard.Fault{OnCall: 1, Mode: guard.FaultError})

	res, err := s.Query(guardQuery)
	if err != nil {
		t.Fatalf("injected rewrite fault must degrade, not fail: %v", err)
	}
	st := res.RewriteStats()
	if !st.Degraded {
		t.Fatalf("expected degradation, got %+v", st)
	}
	if st.DegradationCode != string(guard.CodeInjected) {
		t.Errorf("DegradationCode = %q, want INJECTED (reason %q)", st.DegradationCode, st.DegradationReason)
	}
	if !strings.Contains(st.DegradationReason, "BOOMC") {
		t.Errorf("reason must name the external: %q", st.DegradationReason)
	}
}

// TestWithInjectorReachesADTCalls: a fault armed on the MEMBER ADT
// function fires during execution and surfaces as a typed, INJECTED-coded
// error with the external named. (MEMBER over a non-ground column is only
// evaluable at execution time, so the fault cannot be absorbed by the
// rewrite phase's degradation.)
func TestWithInjectorReachesADTCalls(t *testing.T) {
	inj := guard.NewInjector()
	s := filmsSession(t, WithInjector(inj))
	s.Rewrite = false // pin the fault to the execution path
	inj.Set("MEMBER", guard.Fault{Mode: guard.FaultError})

	_, err := s.Query("SELECT Title FROM FILM WHERE MEMBER('Cartoon', Categories)")
	if err == nil {
		t.Fatal("injected ADT fault must surface as an execution error")
	}
	if !errors.Is(err, guard.ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if guard.CodeOf(err) != guard.CodeInjected {
		t.Fatalf("CodeOf = %s, want INJECTED", guard.CodeOf(err))
	}
	var ext *guard.ExternalError
	if !errors.As(err, &ext) || !strings.EqualFold(ext.External, "member") {
		t.Fatalf("error must name the external: %v", err)
	}
	if inj.Calls("MEMBER") == 0 {
		t.Fatal("injector never hit")
	}

	// A fork shares the parent's injector through DB.Fork.
	inj.Reset()
	fork, err := s.Fork()
	if err != nil {
		t.Fatal(err)
	}
	fork.Rewrite = false
	if _, err := fork.Query("SELECT Title FROM FILM WHERE MEMBER('Cartoon', Categories)"); !errors.Is(err, guard.ErrInjected) {
		t.Fatalf("fork: got %v, want ErrInjected", err)
	}
}

// TestWithInjectorPanicDegrades: an injected panic in a rewrite-side
// constraint is isolated and coded EXTERNAL_PANIC, proving the chaos
// path and the unit-test path share the panic-isolation machinery.
func TestWithInjectorPanicDegrades(t *testing.T) {
	inj := guard.NewInjector()
	s := filmsSession(t,
		WithRules(`
rule boomr: SEARCH(rl, f, p) / BOOMC(f) --> UNIONN(SET(SEARCH(rl, f, p)));
block(boomb, {boomr}, 1);
`),
		WithSequence("seq({boomb}, 1);"),
		WithInjector(inj))
	rw, err := s.Rewriter()
	if err != nil {
		t.Fatal(err)
	}
	// The constraint itself is healthy; the injector fires the panic.
	rw.Ext.RegisterConstraint("BOOMC", func(_ *rewrite.Ctx, _ []*term.Term) (bool, error) { return true, nil })
	inj.Set("BOOMC", guard.Fault{OnCall: 1, Mode: guard.FaultPanic, PanicValue: "chaos"})

	res, err := s.Query(guardQuery)
	if err != nil {
		t.Fatalf("injected panic must degrade, not fail: %v", err)
	}
	st := res.RewriteStats()
	if !st.Degraded {
		t.Fatalf("expected degradation, got %+v", st)
	}
	if st.DegradationCode != string(guard.CodeExternalPanic) {
		t.Errorf("DegradationCode = %q, want EXTERNAL_PANIC (reason %q)", st.DegradationCode, st.DegradationReason)
	}
	if !strings.Contains(st.DegradationReason, "BOOMC") {
		t.Errorf("reason must name the external: %q", st.DegradationReason)
	}
}
