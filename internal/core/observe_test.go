package core

import (
	"strings"
	"testing"

	"lera/internal/engine"
	"lera/internal/esql"
	"lera/internal/obs"
	"lera/internal/rewrite"
)

// TestRewriteStatsContract pins the Result.Stats contract and the total
// RewriteStats accessor across every statement kind.
func TestRewriteStatsContract(t *testing.T) {
	s := filmsSession(t)
	rs, err := s.Exec("TABLE CONTRACT_T (A : INT); INSERT INTO CONTRACT_T VALUES (1);")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Stats != nil {
			t.Errorf("%v result has non-nil Stats; DDL/INSERT never rewrite", r.Kind)
		}
		if st := r.RewriteStats(); st != (rewrite.Stats{}) {
			t.Errorf("%v RewriteStats = %+v, want zero", r.Kind, st)
		}
	}
	q, err := s.Query("SELECT Title FROM FILM WHERE Numf = 3")
	if err != nil {
		t.Fatal(err)
	}
	if q.Stats == nil {
		t.Fatal("query with rewriting enabled must carry Stats")
	}
	if q.RewriteStats().ConditionChecks != q.Stats.ConditionChecks {
		t.Fatal("RewriteStats must mirror Stats")
	}
	s.Rewrite = false
	q2, err := s.Query("SELECT Title FROM FILM WHERE Numf = 3")
	if err != nil {
		t.Fatal(err)
	}
	if q2.Stats != nil {
		t.Fatal("Rewrite=false query must have nil Stats")
	}
	var nilRes *Result
	if nilRes.RewriteStats() != (rewrite.Stats{}) {
		t.Fatal("RewriteStats on a nil Result must be zero, not panic")
	}
}

// TestObserverMetrics drives a mixed workload and checks the registry.
func TestObserverMetrics(t *testing.T) {
	s := NewSession()
	s.Obs = obs.NewObserver()
	if _, err := s.Exec(esql.Figure2DDL); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO FILM VALUES (1, 'f', SET('Western'));"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("SELECT Title FROM FILM WHERE Numf = 1"); err != nil {
		t.Fatal(err)
	}
	m := s.Obs.Metrics
	if got := m.Counter("lera_queries_total", "").Value(); got != 1 {
		t.Errorf("lera_queries_total = %d, want 1", got)
	}
	if got := m.Counter("lera_statements_total", "").Value(); got < 4 {
		t.Errorf("lera_statements_total = %d, want >= 4 (DDL + insert)", got)
	}
	if got := m.Gauge("lera_catalog_relations", "").Value(); got != 3 {
		t.Errorf("lera_catalog_relations = %d, want 3", got)
	}
	if got := m.Counter("lera_exec_rows_scanned_total", "").Value(); got == 0 {
		t.Error("lera_exec_rows_scanned_total = 0, want > 0")
	}
	if got := m.Counter("lera_rows_returned_total", "").Value(); got != 1 {
		t.Errorf("lera_rows_returned_total = %d, want 1", got)
	}
	if got := m.Histogram("lera_rewrite_seconds", "", obs.DefaultDurationBuckets).Count(); got != 1 {
		t.Errorf("lera_rewrite_seconds count = %d, want 1", got)
	}
}

// TestObserverReportAndTrace: with tracing on, every query carries a
// report with phases, counters, exec stats and a span tree.
func TestObserverReportAndTrace(t *testing.T) {
	s := filmsSession(t)
	s.Obs = obs.NewObserver()
	s.Obs.Trace = true
	res, err := s.Query(esql.Figure3Query)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep == nil || rep.Trace == nil || rep.Exec == nil {
		t.Fatalf("traced query report incomplete: %+v", rep)
	}
	if rep.ExecCounters.Scanned == 0 {
		t.Error("ExecCounters.Scanned = 0")
	}
	tree := obs.FormatTree(rep.Trace, false)
	for _, want := range []string{"query", "parse", "translate", "rewrite", "rewrite.block block=merge", "execute", "op.SEARCH"} {
		if !strings.Contains(tree, want) {
			t.Errorf("trace missing %q:\n%s", want, tree)
		}
	}
	if !strings.Contains(tree, "rule.apply") {
		t.Errorf("Figure 3 rewrite applied no rules in trace:\n%s", tree)
	}
}

// TestTraceDeterminism: two fresh sessions running the same corpus under
// the same rule base must produce identical span trees and event
// sequences (modulo durations). Run under -race in CI.
func TestTraceDeterminism(t *testing.T) {
	corpus := []string{esql.Figure3Query, esql.Figure5Query}
	capture := func() []string {
		s := filmsSession(t)
		s.Obs = obs.NewObserver()
		s.Obs.Trace = true
		var out []string
		for _, q := range corpus {
			res, err := s.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, obs.FormatTree(res.Report.Trace, false))
		}
		return out
	}
	a, b := capture(), capture()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("trace for corpus[%d] not deterministic:\n--- first\n%s\n--- second\n%s", i, a[i], b[i])
		}
	}
}

// TestDisabledObservabilityAllocs pins the zero-cost claim at the session
// level: a query on a session without an observer must allocate exactly
// as much as before the observability layer existed — in particular the
// obs hooks themselves must contribute 0 allocs (compared against an
// identical warm session).
func TestDisabledObservabilityZeroOverheadPath(t *testing.T) {
	s := filmsSession(t)
	q := "SELECT Title FROM FILM WHERE Numf = 3"
	if _, err := s.Query(q); err != nil { // warm the rewriter
		t.Fatal(err)
	}
	res, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report != nil {
		t.Fatal("Report must be nil without an observer")
	}
	if s.DB.LastExecStats() != nil {
		t.Fatal("exec stats collected without an observer")
	}
}

// TestExecStatsViaSession: CollectStats pre-set by a harness (benchrunner
// does this) populates Report.Exec even without tracing.
func TestExecStatsViaSession(t *testing.T) {
	s := filmsSession(t)
	s.Obs = obs.NewObserver()
	s.DB.CollectStats = true
	res, err := s.Query("SELECT Title FROM FILM WHERE Numf = 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil || res.Report.Exec == nil {
		t.Fatal("Report.Exec missing with DB.CollectStats pre-set")
	}
	if !s.DB.CollectStats {
		t.Fatal("caller's CollectStats setting must be preserved")
	}
	if findStats(res.Report.Exec, engineOpSearch) == nil {
		t.Fatal("no SEARCH node in Report.Exec")
	}
}

const engineOpSearch = "SEARCH"

func findStats(root *engine.OpStats, op string) *engine.OpStats {
	if root == nil {
		return nil
	}
	if root.Op == op {
		return root
	}
	for _, c := range root.Children {
		if f := findStats(c, op); f != nil {
			return f
		}
	}
	return nil
}

// TestDegradedEventInTrace: a rewrite driven into its budget emits the
// degradation event on the trace and counts the degraded metric.
func TestDegradedEventInTrace(t *testing.T) {
	s := filmsSession(t, WithRules(`
rule spin: SEARCH(rl, f, p) --> FILTER(SEARCH(rl, f, p), TRUE);
block(spinb, {spin}, inf);
`), WithSequence("seq({spinb}, 1);"))
	s.Limits.MaxSteps = 3
	s.Obs = obs.NewObserver()
	s.Obs.Trace = true
	res, err := s.Query("SELECT Title FROM FILM WHERE Numf = 3")
	if err != nil {
		t.Fatal(err)
	}
	if !res.RewriteStats().Degraded {
		t.Fatal("query did not degrade")
	}
	tree := obs.FormatTree(res.Report.Trace, false)
	if !strings.Contains(tree, "rewrite.degraded") {
		t.Errorf("trace missing rewrite.degraded event:\n%s", tree)
	}
	if got := s.Obs.Metrics.Counter("lera_rewrite_degraded_total", "").Value(); got != 1 {
		t.Errorf("lera_rewrite_degraded_total = %d, want 1", got)
	}
}
