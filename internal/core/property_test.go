package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"lera/internal/engine"
	"lera/internal/value"
)

// TestPropRewriteSoundness generates random ESQL queries over a synthetic
// schema (with a view stack, a union view, a nested view and a recursive
// view available as FROM targets) and checks that the rewritten program
// returns exactly the rows of the unrewritten one. This is the global
// soundness property: every rule in the default base preserves query
// semantics.
func TestPropRewriteSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(20260706))
	const queriesPerSchema = 40

	build := func(opts ...Option) *Session {
		s := NewSession(opts...)
		s.MustExec(`
TYPE Colour ENUMERATION OF ('red', 'green', 'blue');
TYPE SetColour SET OF Colour;
TABLE ITEMS (Id : INT, Grp : INT, Price : NUMERIC, Tags : SetColour);
TABLE LINKS (Src : INT, Dst : INT);
CREATE VIEW CHEAP (Id, Grp, Price, Tags) AS SELECT Id, Grp, Price, Tags FROM ITEMS WHERE Price < 70;
CREATE VIEW CHEAP2 (Id, Grp) AS SELECT Id, Grp FROM CHEAP WHERE Id > 2;
CREATE VIEW EITHER (Id, Grp) AS SELECT Id, Grp FROM ITEMS UNION SELECT Dst, Src FROM LINKS;
CREATE VIEW GROUPED (Grp, Ids) AS SELECT Grp, MakeSet(Id) FROM ITEMS GROUP BY Grp;
CREATE VIEW REACH (Src, Dst) AS (
  SELECT Src, Dst FROM LINKS
  UNION
  SELECT R1.Src, R2.Dst FROM REACH R1, REACH R2 WHERE R1.Dst = R2.Src );
`)
		colours := []string{"red", "green", "blue"}
		var items [][]value.Value
		for i := 1; i <= 40; i++ {
			items = append(items, []value.Value{
				value.Int(int64(i)),
				value.Int(int64(i % 5)),
				value.Int(int64((i * 13) % 100)),
				value.NewSet(value.String(colours[i%3]), value.String(colours[(i+1)%3])),
			})
		}
		if err := s.DB.Load("ITEMS", items); err != nil {
			t.Fatal(err)
		}
		var links [][]value.Value
		for i := 0; i < 50; i++ {
			links = append(links, []value.Value{
				value.Int(int64(r.Intn(20) + 1)),
				value.Int(int64(r.Intn(20) + 1)),
			})
		}
		if err := s.DB.Load("LINKS", links); err != nil {
			t.Fatal(err)
		}
		return s
	}

	on := build()
	off := build()
	// The second build consumes different random links; reuse on's data.
	off.DB = on.DB
	off.Rewrite = false

	randQuery := func() string {
		type target struct {
			name string
			cols []string
		}
		targets := []target{
			{"ITEMS", []string{"Id", "Grp", "Price"}},
			{"CHEAP", []string{"Id", "Grp", "Price"}},
			{"CHEAP2", []string{"Id", "Grp"}},
			{"EITHER", []string{"Id", "Grp"}},
			{"REACH", []string{"Src", "Dst"}},
		}
		tg := targets[r.Intn(len(targets))]
		col := func() string { return tg.cols[r.Intn(len(tg.cols))] }
		var preds []string
		for i := 0; i <= r.Intn(3); i++ {
			switch r.Intn(6) {
			case 0:
				preds = append(preds, fmt.Sprintf("%s = %d", col(), r.Intn(40)+1))
			case 1:
				preds = append(preds, fmt.Sprintf("%s < %d", col(), r.Intn(80)))
			case 2:
				preds = append(preds, fmt.Sprintf("%s > %d", col(), r.Intn(40)))
			case 3:
				preds = append(preds, fmt.Sprintf("%d + %d > %d", r.Intn(5), r.Intn(5), r.Intn(12)))
			case 4:
				if tg.name == "ITEMS" || tg.name == "CHEAP" {
					preds = append(preds, fmt.Sprintf("MEMBER('%s', Tags)", []string{"red", "green", "blue", "mauve"}[r.Intn(4)]))
				} else {
					preds = append(preds, fmt.Sprintf("%s <> %d", col(), r.Intn(40)))
				}
			default:
				preds = append(preds, fmt.Sprintf("%s <= %s", col(), col()))
			}
		}
		proj := col()
		return fmt.Sprintf("SELECT %s FROM %s WHERE %s", proj, tg.name, strings.Join(preds, " AND "))
	}

	for i := 0; i < queriesPerSchema; i++ {
		q := randQuery()
		if testing.Verbose() {
			t.Logf("q%d: %s", i, q)
		}
		r1, err := on.Query(q)
		if err != nil {
			t.Fatalf("rewritten %q: %v", q, err)
		}
		r2, err := off.Query(q)
		if err != nil {
			t.Fatalf("raw %q: %v", q, err)
		}
		if got, want := canon(r1.Rows), canon(r2.Rows); got != want {
			t.Fatalf("soundness violated for %q:\nrewritten %s\nraw       %s\nprogram: %s",
				q, got, want, r1.Rewritten)
		}
	}
}

// TestPropFixModesAgreeViaESQL: naive and semi-naive fixpoint evaluation
// agree on the recursive view for random graphs, with and without the
// rewriter.
func TestPropFixModesAgreeViaESQL(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		var links [][]value.Value
		n := 12 + r.Intn(10)
		for i := 0; i < 2*n; i++ {
			links = append(links, []value.Value{
				value.Int(int64(r.Intn(n) + 1)),
				value.Int(int64(r.Intn(n) + 1)),
			})
		}
		q := fmt.Sprintf("SELECT Src FROM REACH WHERE Dst = %d", r.Intn(n)+1)
		var results []string
		for _, mode := range []engine.FixMode{engine.SemiNaive, engine.Naive} {
			for _, rewriteOn := range []bool{true, false} {
				s := NewSession()
				s.MustExec(`
TABLE LINKS (Src : INT, Dst : INT);
CREATE VIEW REACH (Src, Dst) AS (
  SELECT Src, Dst FROM LINKS
  UNION
  SELECT R1.Src, R2.Dst FROM REACH R1, REACH R2 WHERE R1.Dst = R2.Src );
`)
				if err := s.DB.Load("LINKS", links); err != nil {
					t.Fatal(err)
				}
				s.DB.Mode = mode
				s.Rewrite = rewriteOn
				res, err := s.Query(q)
				if err != nil {
					t.Fatal(err)
				}
				results = append(results, canon(dedup(res.Rows)))
			}
		}
		for i := 1; i < len(results); i++ {
			if results[i] != results[0] {
				t.Fatalf("trial %d: configuration %d disagrees:\n%s\nvs\n%s", trial, i, results[i], results[0])
			}
		}
	}
}

func canon(rows [][]value.Value) string {
	var keys []string
	for _, row := range rows {
		var parts []string
		for _, v := range row {
			parts = append(parts, v.Key())
		}
		keys = append(keys, strings.Join(parts, ","))
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

func dedup(rows [][]value.Value) [][]value.Value {
	seen := map[string]bool{}
	var out [][]value.Value
	for _, row := range rows {
		k := canon([][]value.Value{row})
		if !seen[k] {
			seen[k] = true
			out = append(out, row)
		}
	}
	return out
}
