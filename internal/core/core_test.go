package core

import (
	"sort"
	"strings"
	"testing"

	"lera/internal/engine"
	"lera/internal/esql"
	"lera/internal/lera"
	"lera/internal/term"
	"lera/internal/testdb"
	"lera/internal/value"
)

// filmsSession builds a session with the Figure 2 schema (via DDL), the
// Figure 4/5 views, and the sample instance loaded.
func filmsSession(t *testing.T, opts ...Option) *Session {
	t.Helper()
	s := NewSession(opts...)
	if _, err := s.Exec(esql.Figure2DDL); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(esql.Figure4View); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(esql.Figure5View); err != nil {
		t.Fatal(err)
	}
	inst, err := testdb.Data()
	if err != nil {
		t.Fatal(err)
	}
	for name, rows := range inst.Rows {
		if err := s.DB.Load(name, rows); err != nil {
			t.Fatal(err)
		}
	}
	for oid, obj := range inst.Objects {
		s.SetObject(oid, obj)
	}
	return s
}

func sortedCol(rows [][]value.Value, j int) []string {
	var out []string
	for _, r := range rows {
		out = append(out, r[j-1].String())
	}
	sort.Strings(out)
	return out
}

// TestTypecheckRules: the §3.3 conversion — Salary(Refactor) becomes
// PROJECT(VALUE(Refactor), Salary) — runs as a rule block.
func TestTypecheckRules(t *testing.T) {
	s := filmsSession(t)
	rw, err := s.Rewriter()
	if err != nil {
		t.Fatal(err)
	}
	q := lera.Search(
		[]*term.Term{lera.Rel("APPEARS_IN")},
		lera.Ands(lera.Cmp(">", lera.Call("Salary", lera.Attr(1, 2)), term.Num(1000))),
		[]*term.Term{lera.Attr(1, 1)},
	)
	out, _, err := rw.RewriteBlock(q, "typecheck")
	if err != nil {
		t.Fatal(err)
	}
	got := lera.Format(out)
	if !strings.Contains(got, "PROJECT(VALUE(1.2), Salary)>1000") {
		t.Errorf("typecheck = %s", got)
	}
	// MEMBER becomes a direct ADT application.
	q2 := lera.Search(
		[]*term.Term{lera.Rel("FILM")},
		lera.Ands(lera.Call("Member", term.Str("Adventure"), lera.Attr(1, 3))),
		[]*term.Term{lera.Attr(1, 1)},
	)
	out2, _, err := rw.RewriteBlock(q2, "typecheck")
	if err != nil {
		t.Fatal(err)
	}
	if term.Contains(out2, func(s *term.Term) bool { return lera.IsOp(s, lera.ECall) }) {
		t.Errorf("CALL survived typecheck: %s", lera.Format(out2))
	}
}

// TestFigure7 runs the merge block through the full rewriter on a view
// expansion: the nested searches of TestViewExpansion collapse.
func TestFigure7(t *testing.T) {
	s := filmsSession(t)
	s.MustExec("CREATE VIEW AdvFilms (Numf, Title) AS SELECT Numf, Title FROM FILM WHERE MEMBER('Adventure', Categories);")
	res, err := s.Query("SELECT Title FROM AdvFilms WHERE Numf = 1")
	if err != nil {
		t.Fatal(err)
	}
	if lera.SearchCount(res.Initial) != 2 {
		t.Fatalf("expected nested searches before rewrite: %s", lera.Format(res.Initial))
	}
	if lera.SearchCount(res.Rewritten) != 1 {
		t.Errorf("merge failed: %s", lera.Format(res.Rewritten))
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Lawrence of Arabia" {
		t.Errorf("rows = %v", res.Rows)
	}
}

// TestFigure8 exercises push-through-nest inside the full pipeline via
// the Figure 4 query.
func TestFigure8(t *testing.T) {
	s := filmsSession(t)
	res, err := s.Query(strings.TrimSuffix(strings.TrimSpace(esql.Figure4Query), ";"))
	if err != nil {
		t.Fatal(err)
	}
	got := sortedCol(res.Rows, 1)
	if len(got) != 2 || got[0] != "'Casablanca'" || got[1] != "'Lawrence of Arabia'" {
		t.Fatalf("Figure 4 answers = %v", got)
	}
	// The member predicate was pushed inside the nest (it references
	// only non-nested attributes), the ALL predicate stayed outside.
	f := lera.Format(res.Rewritten)
	nestIdx := strings.Index(f, "nest(")
	memberIdx := strings.Index(f, "member(")
	if nestIdx < 0 || memberIdx < 0 || memberIdx < nestIdx {
		t.Errorf("member predicate not pushed inside nest:\n%s", f)
	}
	if !strings.Contains(f, "all(") {
		t.Errorf("ALL predicate missing: %s", f)
	}
}

// TestFigure9 runs the Figure 5 query end to end: the Alexander rule
// fires inside the full sequence and answers stay correct.
func TestFigure9EndToEnd(t *testing.T) {
	s := filmsSession(t)
	res, err := s.Query(strings.TrimSuffix(strings.TrimSpace(esql.Figure5Query), ";"))
	if err != nil {
		t.Fatal(err)
	}
	got := sortedCol(res.Rows, 1)
	var want []string
	for _, n := range testdb.DominatorsOfQuinn() {
		want = append(want, "'"+n+"'")
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("dominators = %v, want %v", got, want)
	}
	// The focused program contains a filtered seed.
	f := lera.Format(res.Rewritten)
	if !strings.Contains(f, "fix(") {
		t.Fatalf("fix missing: %s", f)
	}
	if !strings.Contains(f, "'Quinn']") || strings.Count(f, "'Quinn'") < 2 {
		t.Errorf("seed filter missing (Alexander did not fire):\n%s", f)
	}
}

// TestRewritePreservesResults: on every example query, rewritten and
// unrewritten programs produce the same rows (the soundness property).
func TestRewritePreservesResults(t *testing.T) {
	queries := []string{
		"SELECT Title FROM FILM WHERE Numf = 1",
		"SELECT Title, Categories, Salary(Refactor) FROM FILM, APPEARS_IN WHERE FILM.Numf = APPEARS_IN.Numf AND Name(Refactor) = 'Quinn' AND MEMBER('Adventure', Categories)",
		"SELECT Title FROM FilmActors WHERE MEMBER('Adventure', Categories) AND ALL(Salary(Actors) > 10000)",
		"SELECT Name(Refactor1) FROM BETTER_THAN WHERE Name(Refactor2) = 'Quinn'",
		"SELECT Numf FROM FILM WHERE Numf = 1 OR Numf = 2",
		"SELECT D1.Numf FROM DOMINATE D1, DOMINATE D2 WHERE D1.Refactor2 = D2.Refactor1",
		"SELECT Title FROM FILM WHERE MEMBER('Western', Categories) AND Numf > 0",
	}
	on := filmsSession(t)
	off := filmsSession(t)
	off.Rewrite = false
	for _, q := range queries {
		r1, err := on.Query(q)
		if err != nil {
			t.Fatalf("%s (rewritten): %v", q, err)
		}
		r2, err := off.Query(q)
		if err != nil {
			t.Fatalf("%s (raw): %v", q, err)
		}
		k1 := rowKeys(r1.Rows)
		k2 := rowKeys(r2.Rows)
		if strings.Join(k1, ";") != strings.Join(k2, ";") {
			t.Errorf("%s: results differ\nrewritten: %v\nraw: %v", q, k1, k2)
		}
	}
}

func rowKeys(rows [][]value.Value) []string {
	var out []string
	for _, r := range rows {
		var parts []string
		for _, v := range r {
			parts = append(parts, v.Key())
		}
		out = append(out, strings.Join(parts, ","))
	}
	sort.Strings(out)
	return out
}

// TestInconsistencyShortCircuit: the Section 6.1 example — a query for
// 'Cartoon' films touches zero tuples after rewriting (E5).
func TestInconsistencyShortCircuit(t *testing.T) {
	s := filmsSession(t)
	s.DB.ResetCounters()
	res, err := s.Query("SELECT Title FROM FILM WHERE MEMBER('Cartoon', Categories)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if !term.Equal(res.Rewritten.Args[1], term.FalseT()) {
		t.Errorf("qualification not simplified to FALSE: %s", lera.Format(res.Rewritten))
	}
	if s.DB.Count.Scanned != 0 {
		t.Errorf("scanned %d tuples, want 0", s.DB.Count.Scanned)
	}
	// Without rewriting, the same query scans the table.
	off := filmsSession(t)
	off.Rewrite = false
	off.DB.ResetCounters()
	if _, err := off.Query("SELECT Title FROM FILM WHERE MEMBER('Cartoon', Categories)"); err != nil {
		t.Fatal(err)
	}
	if off.DB.Count.Scanned == 0 {
		t.Error("raw query should scan the table")
	}
}

// TestDynamicLimits (§7): a key-lookup query is left untouched when
// dynamic limits are enabled; a complex query still gets rewritten.
func TestDynamicLimits(t *testing.T) {
	s := filmsSession(t, WithDynamicLimits())
	res, err := s.Query("SELECT Title FROM FILM WHERE Numf = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Applications != 0 {
		t.Errorf("simple query rewritten %d times under dynamic limits", res.Stats.Applications)
	}
	if len(res.Rows) != 1 {
		t.Errorf("rows = %v", res.Rows)
	}
	// The recursive query is complex and still gets the full treatment.
	res2, err := s.Query("SELECT Name(Refactor1) FROM BETTER_THAN WHERE Name(Refactor2) = 'Quinn'")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Applications == 0 {
		t.Error("complex query should be rewritten")
	}
	if len(res2.Rows) != len(testdb.DominatorsOfQuinn()) {
		t.Errorf("rows = %v", res2.Rows)
	}
}

// TestWithoutBlockAndBlockLimit: §7 knobs.
func TestWithoutBlockAndBlockLimit(t *testing.T) {
	s := filmsSession(t, WithoutBlock("fixpoint"))
	res, err := s.Query("SELECT Name(Refactor1) FROM BETTER_THAN WHERE Name(Refactor2) = 'Quinn'")
	if err != nil {
		t.Fatal(err)
	}
	f := lera.Format(res.Rewritten)
	if strings.Count(f, "'Quinn'") != 1 {
		t.Errorf("fixpoint block disabled but seed filtered:\n%s", f)
	}
	if len(res.Rows) != len(testdb.DominatorsOfQuinn()) {
		t.Errorf("rows = %d", len(res.Rows))
	}
	// Zeroing the merge block leaves view-expansion searches nested.
	s2 := filmsSession(t, WithBlockLimit("merge", 0))
	s2.MustExec("CREATE VIEW AdvFilms (Numf, Title) AS SELECT Numf, Title FROM FILM WHERE MEMBER('Adventure', Categories);")
	res2, err := s2.Query("SELECT Title FROM AdvFilms WHERE Numf = 1")
	if err != nil {
		t.Fatal(err)
	}
	if lera.SearchCount(res2.Rewritten) != 2 {
		t.Errorf("merge disabled but searches merged: %s", lera.Format(res2.Rewritten))
	}
	if len(res2.Rows) != 1 {
		t.Errorf("rows = %v", res2.Rows)
	}
}

// TestExtensibility (E9): a database implementor registers a new ADT
// (Interval) with an OVERLAPS method and a rewrite rule that exploits its
// symmetry — no engine changes.
func TestExtensibility(t *testing.T) {
	s := NewSession(WithRules(`
rule overlaps_symmetry:
  ANDS(SET(w*, OVERLAPS(x, y), OVERLAPS(y, x)))
  / DISTINCT(x, y)
  --> ANDS(SET(w*, OVERLAPS(x, y))) / ;
block(extension, {overlaps_symmetry}, inf);
seq({typecheck, normalize, merge, push, fixpoint, merge, constraints, semantic, extension, simplify, merge}, 2);
`))
	// Register the Interval ADT method.
	s.Cat.ADTs.Register("OVERLAPS", 2, true, func(args []value.Value) (value.Value, error) {
		lo1, _ := args[0].Field("lo")
		hi1, _ := args[0].Field("hi")
		lo2, _ := args[1].Field("lo")
		hi2, _ := args[1].Field("hi")
		return value.Bool(value.Compare(lo1, hi2) <= 0 && value.Compare(lo2, hi1) <= 0), nil
	})
	s.MustExec(`
TYPE Interval TUPLE (lo : INT, hi : INT);
TABLE MEETINGS (Id : INT, Slot : Interval);
INSERT INTO MEETINGS VALUES (1, TUPLE(lo: 1, hi: 5)), (2, TUPLE(lo: 4, hi: 9)), (3, TUPLE(lo: 10, hi: 12));
`)
	res, err := s.Query("SELECT M1.Id, M2.Id FROM MEETINGS M1, MEETINGS M2 WHERE OVERLAPS(M1.Slot, M2.Slot) AND OVERLAPS(M2.Slot, M1.Slot) AND M1.Id < M2.Id")
	if err != nil {
		t.Fatal(err)
	}
	// The symmetric duplicate is eliminated by the extension rule.
	n := term.Count(res.Rewritten, func(s *term.Term) bool {
		return s.Kind == term.Fun && s.Functor == "OVERLAPS"
	})
	if n != 1 {
		t.Errorf("extension rule did not deduplicate OVERLAPS: %s", lera.Format(res.Rewritten))
	}
	if len(res.Rows) != 1 { // meetings 1 and 2 overlap
		t.Errorf("rows = %v", res.Rows)
	}
}

// TestConstraintsViaOption: Figure 10 constraints through WithConstraints.
func TestConstraintsViaOption(t *testing.T) {
	s := filmsSession(t, WithConstraints(
		"rule ic_cat: F(x) / ISA(x, SetCategory) --> F(x) AND INCLUDE(x, SET('Comedy', 'Adventure', 'Science Fiction', 'Western')) / ;"))
	res, err := s.Query("SELECT Title FROM FILM WHERE MEMBER('Cartoon', Categories)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 || !term.Equal(res.Rewritten.Args[1], term.FalseT()) {
		t.Errorf("constraint-driven inconsistency failed: %s", lera.Format(res.Rewritten))
	}
}

// TestExplain produces a readable trace.
func TestExplain(t *testing.T) {
	s := filmsSession(t, WithTrace())
	rw, err := s.Rewriter()
	if err != nil {
		t.Fatal(err)
	}
	q := lera.Search(
		[]*term.Term{lera.Rel("FILM")},
		lera.Ands(lera.Call("Member", term.Str("Cartoon"), lera.Attr(1, 3))),
		[]*term.Term{lera.Attr(1, 2)},
	)
	out, err := rw.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"before:", "after:", "stats:", "member_enum_incons"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

// TestSessionErrorsAndDDL.
func TestSessionErrorsAndDDL(t *testing.T) {
	s := NewSession()
	if _, err := s.Exec("SELECT x FROM nope"); err == nil {
		t.Error("unknown relation must error")
	}
	if _, err := s.Exec("garbage"); err == nil {
		t.Error("parse error expected")
	}
	rs := s.MustExec("TABLE T (a : INT); INSERT INTO T VALUES (1), (2);")
	if rs[0].Kind != ResultDDL || rs[1].Kind != ResultInsert {
		t.Errorf("results = %+v", rs)
	}
	res, err := s.Query("SELECT a FROM T WHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("rows = %v", res.Rows)
	}
	if got := FormatResult(res); !strings.Contains(got, "1 rows") || !strings.Contains(got, "a") {
		t.Errorf("FormatResult = %q", got)
	}
	if got := FormatResult(rs[0]); !strings.Contains(got, "declared") {
		t.Errorf("FormatResult DDL = %q", got)
	}
	// Bad option sources fail at construction.
	if _, err := New(s.Cat, WithRules("garbage")); err == nil {
		t.Error("bad rules must error")
	}
	if _, err := New(s.Cat, WithConstraints("garbage")); err == nil {
		t.Error("bad constraints must error")
	}
	if _, err := New(s.Cat, WithSequence("block(x, {y}, 1);")); err == nil {
		t.Error("bad sequence must error")
	}
	if _, err := New(s.Cat, WithSequence("seq({nosuchblock}, 1);")); err == nil {
		t.Error("sequence referencing unknown block must error")
	}
}

// TestMustExecPanics.
func TestMustExecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustExec must panic on error")
		}
	}()
	NewSession().MustExec("garbage")
}

// The raw (unrewritten) engine agrees with the rewriter across the films
// workload even when fixpoint evaluation modes differ.
func TestRewriteAgreesAcrossFixModes(t *testing.T) {
	s := filmsSession(t)
	s.DB.Mode = engine.Naive
	res, err := s.Query("SELECT Name(Refactor1) FROM BETTER_THAN WHERE Name(Refactor2) = 'Quinn'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(testdb.DominatorsOfQuinn()) {
		t.Errorf("naive rows = %d", len(res.Rows))
	}
}
