package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"lera/internal/catalog"
	"lera/internal/engine"
	"lera/internal/esql"
	"lera/internal/guard"
	"lera/internal/lera"
	"lera/internal/obs"
	"lera/internal/plancache"
	"lera/internal/rewrite"
	"lera/internal/rulecheck"
	"lera/internal/term"
	"lera/internal/translate"
	"lera/internal/value"
)

// Session ties the whole pipeline together: ESQL text -> catalog
// declarations / stored data / translated, rewritten and executed
// queries. It is what cmd/edsql and the examples drive.
type Session struct {
	Cat *catalog.Catalog
	DB  *engine.DB

	opts    []Option
	rw      *Rewriter
	stale   bool
	Rewrite bool // rewriting enabled (true by default)

	// Limits is the per-query guard budget (see internal/guard and
	// docs/GUARDRAILS.md). The zero value means no limits. The Timeout is
	// applied to the rewrite and execute phases separately, so a rewrite
	// that burns its whole budget still leaves the fallback plan time to
	// run.
	Limits guard.Limits

	// Parallelism sizes the engine's intra-query worker pool: 0 means
	// runtime.GOMAXPROCS(0), 1 the serial path, n > 1 a pool of n workers.
	// Results are bit-identical at every setting (docs/PERF.md, "Parallel
	// execution").
	Parallelism int

	// BatchSize is the batched engine's row-batch granularity: 0 means
	// engine.DefaultBatchSize. Results never depend on it (docs/PERF.md,
	// "Batched execution & relation indexes").
	BatchSize int

	// SpillDir is the directory the engine's memory governor spills
	// over-grant operator state into (docs/PERF.md, "Memory governor &
	// spill"). Empty disables spilling: a query whose operators exceed
	// Limits.MaxMemBytes then fails with guard.ErrMemBudget (protocol
	// code MEM_BUDGET). Results never depend on whether a query spilled.
	SpillDir string

	// Obs is the session's observability sink (see internal/obs and
	// docs/OBSERVABILITY.md): nil disables the layer entirely; with an
	// observer, pipeline metrics accumulate in Obs.Metrics and — when
	// Obs.Trace is on — every query carries a span/event trace and
	// per-operator execution statistics on Result.Report.
	Obs *obs.Observer

	// Plans is the session's plan cache (nil unless WithPlanCache was
	// given; see internal/plancache and docs/PLANCACHE.md). Forks share
	// the parent's cache pointer — entries are keyed by template hash
	// AND cache environment (rule-base fingerprint, knobs, schema
	// version), so sessions with different rule bases can share one
	// cache without ever serving each other's plans.
	Plans *plancache.Cache

	// validateEvery is the sampled hit-validation cadence
	// (WithPlanCacheValidation); 0 disables re-validation.
	validateEvery int

	// prepared is the PREPARE/EXECUTE registry: statement ASTs with
	// their validated parameter counts, keyed by uppercased name. Fork
	// copies the map (a snapshot: later PREPAREs on either side are
	// private), which is what a session pool wants.
	prepared map[string]*preparedStmt
}

// preparedStmt is one PREPARE'd SELECT: the parsed body with its $n
// placeholders intact, plus the validated parameter count.
type preparedStmt struct {
	sel     *esql.Select
	nparams int
}

// NewSession creates a session with an empty catalog and database.
func NewSession(opts ...Option) *Session {
	cat := catalog.New()
	s := &Session{
		Cat:     cat,
		DB:      engine.New(cat),
		opts:    opts,
		stale:   true,
		Rewrite: true,
	}
	// A WithInjector option arms the executor too: the rewriter reads it
	// from its config, the engine from DB.Injector, so one injector
	// covers constraints, methods, builtins and ADT calls alike.
	s.DB.Injector = injectorOf(opts)
	// WithRowEngine routes execution through the tuple-at-a-time oracle;
	// like fullScan on the rewrite side it changes no observable output,
	// so it is deliberately NOT part of the plan-cache knob environment.
	s.DB.RowEngine = rowEngineOf(opts)
	s.Plans, s.validateEvery = planCacheOf(opts)
	return s
}

// rowEngineOf extracts the WithRowEngine flag from an option list.
func rowEngineOf(opts []Option) bool {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	return cfg.rowEngine
}

// injectorOf extracts the WithInjector value from an option list (nil
// when absent).
func injectorOf(opts []Option) *guard.Injector {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	return cfg.injector
}

// Fork returns a session sharing this one's catalog, rule base options
// and stored data as an immutable snapshot, with private execution state
// — the session-pool primitive. The fork owns its engine DB fork (shared
// relations/objects, private counters, guard state and stats), its own
// rewriter (built eagerly here, so a broken rule base fails at fork time
// rather than on the first query) and copies of Limits, Parallelism,
// Rewrite and Obs. Forks are safe to use concurrently with each other
// and with the parent PROVIDED the shared state stays immutable: no
// DDL, INSERT or SetObject on any of them after forking. leraserver
// enforces this by admitting only SELECT statements.
//
// Plan-cache semantics (docs/PLANCACHE.md): the fork shares the
// parent's Plans pointer, so it sees — and contributes to — the same
// cache, including entries stored before the fork. This is safe because
// every entry is guarded by its cache environment: the rule-base
// fingerprint, rewrite knobs and catalog schema version are part of the
// key, so a fork whose effective rule base differs (e.g. a DDL-induced
// rebuild) can never be served a plan derived under the parent's rules
// — it observes an invalidation and re-derives. Cached templates and
// plans are immutable structural terms holding no row data or bindings.
// The prepared-statement registry, by contrast, is copied: a snapshot
// at fork time, with later PREPAREs private to each side.
func (s *Session) Fork() (*Session, error) {
	ns := &Session{
		Cat:           s.Cat,
		DB:            s.DB.Fork(),
		opts:          s.opts,
		stale:         true,
		Rewrite:       s.Rewrite,
		Limits:        s.Limits,
		Parallelism:   s.Parallelism,
		BatchSize:     s.BatchSize,
		SpillDir:      s.SpillDir,
		Obs:           s.Obs,
		Plans:         s.Plans,
		validateEvery: s.validateEvery,
	}
	if len(s.prepared) > 0 {
		ns.prepared = make(map[string]*preparedStmt, len(s.prepared))
		for k, v := range s.prepared {
			ns.prepared[k] = v
		}
	}
	if _, err := ns.Rewriter(); err != nil {
		return nil, err
	}
	return ns, nil
}

// Rewriter returns the session's rewriter, rebuilding it after catalog
// changes (new constraints become rules).
func (s *Session) Rewriter() (*Rewriter, error) {
	if s.rw == nil || s.stale {
		rw, err := New(s.Cat, s.opts...)
		if err != nil {
			return nil, err
		}
		s.rw = rw
		s.stale = false
	}
	return s.rw, nil
}

// ResultKind discriminates Exec results.
type ResultKind int

// Result kinds.
const (
	ResultDDL ResultKind = iota
	ResultInsert
	ResultRows
	// ResultExplain is the outcome of EXPLAIN [ANALYZE]: Message holds
	// the rendered plan/report, Report the structured form.
	ResultExplain
)

// Result is the outcome of executing one statement.
type Result struct {
	Kind    ResultKind
	Message string

	// For queries:
	Columns   []string
	Rows      [][]value.Value
	Initial   *term.Term // translated LERA before rewriting
	Rewritten *term.Term

	// Stats carries the rewrite statistics of a query. The contract:
	// Stats is non-nil only for ResultRows/ResultExplain results of a
	// session with rewriting enabled — DDL and INSERT statements never
	// rewrite, and a query run with Session.Rewrite=false has nothing to
	// report. Callers should not nil-check ad hoc; use RewriteStats,
	// which is total.
	Stats *rewrite.Stats

	// Report is the per-query observability record (phase timings, span
	// trace, per-operator execution statistics). Non-nil whenever the
	// session has an observer, and always for EXPLAIN ANALYZE.
	Report *QueryReport

	// Cache records what the plan cache did for this query — hit, miss,
	// store, invalidation, eviction count, template hash. Nil when the
	// session has no plan cache (or the statement was not a SELECT).
	Cache *plancache.Outcome

	// Budget is the guard-budget consumption of this query: rows
	// materialized and rewrite steps applied against their caps.
	// Populated for every executed SELECT (it is a value snapshot of
	// counters the engine keeps anyway, so the disabled-observability
	// path pays nothing for it).
	Budget guard.Consumption
}

// RewriteStats returns the rewrite statistics by value, with the zero
// Stats standing in for "no rewrite ran" (DDL, INSERT, rewriting
// disabled, nil result). This is the accessor shells and harnesses use
// instead of nil-checking Result.Stats.
func (r *Result) RewriteStats() rewrite.Stats {
	if r == nil || r.Stats == nil {
		return rewrite.Stats{}
	}
	return *r.Stats
}

// Exec parses and executes a sequence of ESQL statements with no
// cancellation (see ExecCtx).
func (s *Session) Exec(src string) ([]*Result, error) {
	return s.ExecCtx(context.Background(), src)
}

// ExecCtx parses and executes a sequence of ESQL statements under a
// cancellation context.
func (s *Session) ExecCtx(ctx context.Context, src string) ([]*Result, error) {
	t0 := time.Now()
	stmts, err := esql.Parse(src)
	s.obsParse(time.Since(t0), err)
	if err != nil {
		return nil, err
	}
	var out []*Result
	for _, st := range stmts {
		r, err := s.ExecStmtCtx(ctx, st)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// MustExec executes or panics; for examples and benchmarks.
func (s *Session) MustExec(src string) []*Result {
	rs, err := s.Exec(src)
	if err != nil {
		panic(err)
	}
	return rs
}

// Query executes a single SELECT and returns its result.
func (s *Session) Query(src string) (*Result, error) {
	return s.QueryCtx(context.Background(), src)
}

// QueryCtx executes a single SELECT under a cancellation context. When
// the session traces, the recorder is opened here so the span tree also
// covers the parse phase.
func (s *Session) QueryCtx(ctx context.Context, src string) (*Result, error) {
	rec := s.Obs.Recorder("query")
	ctx = obs.NewContext(ctx, rec)
	pSpan := rec.Begin("parse")
	t0 := time.Now()
	q, err := esql.ParseQuery(src)
	parseDur := time.Since(t0)
	rec.End(pSpan)
	s.obsParse(parseDur, err)
	if err != nil {
		return nil, err
	}
	res, err := s.ExecSelectCtx(ctx, q)
	if res != nil && res.Report != nil {
		res.Report.Phases.Parse = parseDur
	}
	return res, err
}

// ExecStmt executes one parsed statement with no cancellation.
func (s *Session) ExecStmt(st esql.Stmt) (*Result, error) {
	return s.ExecStmtCtx(context.Background(), st)
}

// ExecStmtCtx executes one parsed statement under a cancellation context.
func (s *Session) ExecStmtCtx(ctx context.Context, st esql.Stmt) (*Result, error) {
	s.obsStatement()
	switch d := st.(type) {
	case *esql.TypeDecl:
		if err := translate.DeclareType(s.Cat, d); err != nil {
			return nil, err
		}
		s.stale = true
		s.obsCatalog()
		return &Result{Kind: ResultDDL, Message: fmt.Sprintf("type %s declared", d.Name)}, nil
	case *esql.TableDecl:
		if err := translate.DeclareTable(s.Cat, d); err != nil {
			return nil, err
		}
		s.stale = true
		s.obsCatalog()
		return &Result{Kind: ResultDDL, Message: fmt.Sprintf("table %s declared", d.Name)}, nil
	case *esql.ViewDecl:
		v, err := translate.DeclareView(s.Cat, d)
		if err != nil {
			return nil, err
		}
		s.stale = true
		s.obsCatalog()
		kind := "view"
		if v.Recursive {
			kind = "recursive view"
		}
		return &Result{Kind: ResultDDL, Message: fmt.Sprintf("%s %s declared", kind, v.Name)}, nil
	case *esql.InsertStmt:
		name, rows, err := translate.Insert(s.Cat, d)
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			if err := s.DB.Insert(name, row); err != nil {
				return nil, err
			}
		}
		return &Result{Kind: ResultInsert, Message: fmt.Sprintf("%d rows inserted into %s", len(rows), name)}, nil
	case *esql.Select:
		return s.ExecSelectCtx(ctx, d)
	case *esql.Explain:
		return s.ExplainCtx(ctx, d)
	case *esql.PrepareStmt:
		return s.execPrepare(d)
	case *esql.ExecuteStmt:
		return s.execExecute(ctx, d)
	}
	return nil, fmt.Errorf("core: unsupported statement %T", st)
}

// execPrepare registers a PREPARE'd statement: the body's $n
// placeholders are validated (contiguous $1..$n) here; translation and
// type checking happen at EXECUTE time, once literals are bound.
func (s *Session) execPrepare(d *esql.PrepareStmt) (*Result, error) {
	n, err := esql.CountParams(d.Sel)
	if err != nil {
		return nil, err
	}
	key := strings.ToUpper(d.Name)
	if _, dup := s.prepared[key]; dup {
		return nil, fmt.Errorf("core: prepared statement %q already exists", d.Name)
	}
	if s.prepared == nil {
		s.prepared = map[string]*preparedStmt{}
	}
	s.prepared[key] = &preparedStmt{sel: d.Sel, nparams: n}
	noun := "parameters"
	if n == 1 {
		noun = "parameter"
	}
	return &Result{Kind: ResultDDL, Message: fmt.Sprintf("prepared %s (%d %s)", d.Name, n, noun)}, nil
}

// execExecute binds EXECUTE arguments (evaluated as constant
// expressions) into a deep copy of the prepared body and runs it down
// the ordinary SELECT path — so plan caching, metrics, EXPLAIN and
// bit-identity guarantees all come from the one shared mechanism.
func (s *Session) execExecute(ctx context.Context, d *esql.ExecuteStmt) (*Result, error) {
	p := s.prepared[strings.ToUpper(d.Name)]
	if p == nil {
		return nil, fmt.Errorf("core: no prepared statement %q (PREPARE it first)", d.Name)
	}
	if len(d.Args) != p.nparams {
		return nil, fmt.Errorf("core: %s expects %d argument(s), got %d", d.Name, p.nparams, len(d.Args))
	}
	args := make([]esql.Expr, len(d.Args))
	for i, a := range d.Args {
		v, err := translate.Literal(s.Cat, a)
		if err != nil {
			return nil, fmt.Errorf("core: EXECUTE %s argument %d: %w", d.Name, i+1, err)
		}
		args[i] = &esql.Lit{Val: v}
	}
	bound, err := esql.BindParams(p.sel, args)
	if err != nil {
		return nil, err
	}
	return s.ExecSelectCtx(ctx, bound)
}

// Prepared reports the registered prepared-statement names with their
// parameter counts (for shells).
func (s *Session) Prepared() map[string]int {
	out := make(map[string]int, len(s.prepared))
	for k, v := range s.prepared {
		out[k] = v.nparams
	}
	return out
}

// ExecSelect translates, rewrites and executes one SELECT with no
// cancellation (see ExecSelectCtx).
func (s *Session) ExecSelect(sel *esql.Select) (*Result, error) {
	return s.ExecSelectCtx(context.Background(), sel)
}

// ExecSelectCtx translates, rewrites and executes one SELECT under a
// cancellation context and the session's guard Limits.
//
// Rewriting degrades gracefully: if the optimizer fails — an external
// panicked, the budget ran out, the deadline fired — the query is NOT
// lost. The session falls back to the last fully-validated intermediate
// term (or the initial translated term when no rule committed) and
// executes that instead; Result.Stats records Degraded and the reason.
// Execution errors, by contrast, are real failures and are returned,
// but the Result is returned alongside them so callers can see which
// plan was running.
func (s *Session) ExecSelectCtx(ctx context.Context, sel *esql.Select) (*Result, error) {
	return s.execSelect(ctx, sel, false)
}

// execSelect is the shared SELECT path behind ExecSelectCtx and EXPLAIN
// ANALYZE. With analyze set, tracing and per-operator statistics
// collection are forced on for this one query even if the session
// observer has them off (or the session has no observer at all).
func (s *Session) execSelect(ctx context.Context, sel *esql.Select, analyze bool) (*Result, error) {
	rec := obs.FromContext(ctx)
	if rec == nil && (analyze || (s.Obs != nil && s.Obs.Trace)) {
		rec = obs.NewRecorder("query")
		ctx = obs.NewContext(ctx, rec)
	}
	var rep *QueryReport
	if s.Obs != nil || analyze {
		rep = &QueryReport{}
	}

	tSpan := rec.Begin("translate")
	t0 := time.Now()
	q, err := translate.Select(s.Cat, sel)
	rec.End(tSpan)
	if rep != nil {
		rep.Phases.Translate = time.Since(t0)
	}
	if err != nil {
		s.obsQueryDone(nil, err)
		return nil, err
	}
	res := &Result{Kind: ResultRows, Initial: q, Rewritten: q, Report: rep}
	if s.Rewrite {
		rSpan := rec.Begin("rewrite")
		t0 = time.Now()
		res.Rewritten, res.Stats, res.Cache = s.rewritePlan(ctx, q)
		rec.End(rSpan)
		if rep != nil {
			rep.Phases.Rewrite = time.Since(t0)
		}
		if rec.Enabled() {
			st := res.RewriteStats()
			rSpan.SetAttrs(
				obs.Int("checks", st.ConditionChecks),
				obs.Int("applications", st.Applications),
				obs.Int("rounds", st.Rounds))
			if oc := res.Cache; oc != nil && oc.Hit {
				rSpan.SetAttrs(obs.Str("plan", "cached"))
			}
		}
	}
	schema, err := lera.Infer(res.Rewritten, s.Cat, nil)
	if err == nil {
		for _, c := range schema.Cols {
			res.Columns = append(res.Columns, c.Name)
		}
	}
	execCtx := ctx
	cancel := func() {}
	if s.Limits.Timeout > 0 {
		execCtx, cancel = context.WithTimeout(ctx, s.Limits.Timeout)
	}
	defer cancel()
	s.DB.Limits = s.Limits
	s.DB.Parallelism = s.Parallelism
	s.DB.BatchSize = s.BatchSize
	s.DB.SpillDir = s.SpillDir

	collect := analyze || rec.Enabled() || s.DB.CollectStats
	savedCollect := s.DB.CollectStats
	if collect {
		s.DB.CollectStats = true
	}
	before := s.DB.Count
	spillBefore := s.DB.Spill
	eSpan := rec.Begin("execute")
	t0 = time.Now()
	rel, evalErr := s.DB.EvalCtx(execCtx, res.Rewritten)
	rec.End(eSpan)
	s.DB.CollectStats = savedCollect
	rst := res.RewriteStats()
	res.Budget = guard.Consumption{
		RowsUsed:     s.DB.LastRowsCharged(),
		RowsLimit:    int64(s.Limits.MaxRows),
		StepsUsed:    int64(rst.Applications),
		StepsLimit:   int64(rst.StepsLimit),
		MemPeakBytes: s.DB.LastMemPeak(),
		MemLimit:     s.Limits.MaxMemBytes,
	}
	if rep != nil {
		rep.Budget = res.Budget
		rep.Phases.Execute = time.Since(t0)
		rep.ExecCounters = counterDelta(before, s.DB.Count)
		rep.Spill = spillDelta(spillBefore, s.DB.Spill)
		if collect {
			rep.Exec = s.DB.LastExecStats()
			attachExecSpans(eSpan, rep.Exec)
		}
	}
	if evalErr != nil {
		if rep != nil {
			rep.Trace = rec.Finish()
		}
		s.obsQueryDone(res, evalErr)
		return res, evalErr
	}
	res.Rows = rel.Rows
	res.Message = fmt.Sprintf("%d rows", len(rel.Rows))
	if rec.Enabled() {
		eSpan.SetAttrs(obs.Int("rows", len(rel.Rows)))
	}
	if rep != nil {
		rep.Trace = rec.Finish()
	}
	s.obsQueryDone(res, nil)
	return res, nil
}

// rewriteGuarded runs the optimizer under the session Limits and never
// fails: on any rewrite error it returns a safe fallback term (the last
// committed intermediate, else the untouched input) with the degradation
// recorded in the returned Stats.
func (s *Session) rewriteGuarded(ctx context.Context, q *term.Term) (*term.Term, *rewrite.Stats) {
	rw, err := s.Rewriter()
	if err != nil {
		return q, &rewrite.Stats{
			Degraded:          true,
			DegradationReason: "rewriter unavailable: " + err.Error(),
			DegradationCode:   string(guard.CodeOf(err)),
		}
	}
	rwCtx := ctx
	cancel := func() {}
	if s.Limits.Timeout > 0 {
		rwCtx, cancel = context.WithTimeout(ctx, s.Limits.Timeout)
	}
	defer cancel()
	rq, st, err := rw.RewriteCtx(rwCtx, q, s.Limits)
	if err == nil {
		return rq, st
	}
	if st == nil {
		st = &rewrite.Stats{}
	}
	st.Degraded = true
	st.DegradationReason = err.Error()
	st.DegradationCode = string(guard.CodeOf(err))
	if rec := obs.FromContext(ctx); rec != nil {
		rec.Event("rewrite.degraded", obs.Str("reason", st.DegradationReason))
	}
	if lg := rw.LastGood(); lg != nil {
		return lg, st
	}
	return q, st
}

// SetObject registers an object in the session's object store (the ESQL
// subset has no object-creation statement; examples and tools load
// objects through this call).
func (s *Session) SetObject(oid int64, v value.Value) { s.DB.SetObject(oid, v) }

// CheckRules verifies the session's assembled rule base — static lint
// plus differential semantic testing — under the session's guard Limits,
// so a `--timeout` given to the shell bounds the verifier the same way it
// bounds queries. The returned diagnostics are ordered deterministically;
// the error return is reserved for a broken rewriter or cancellation.
func (s *Session) CheckRules(ctx context.Context) ([]rulecheck.Diagnostic, error) {
	rw, err := s.Rewriter()
	if err != nil {
		return nil, err
	}
	return rw.CheckRules(ctx, s.Limits)
}

// FormatResult renders a query result as an aligned text table.
func FormatResult(r *Result) string {
	if r.Kind != ResultRows {
		return r.Message
	}
	var sb strings.Builder
	if len(r.Columns) > 0 {
		sb.WriteString(strings.Join(r.Columns, " | "))
		sb.WriteString("\n")
		sb.WriteString(strings.Repeat("-", len(strings.Join(r.Columns, " | "))))
		sb.WriteString("\n")
	}
	for _, row := range r.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		sb.WriteString(strings.Join(parts, " | "))
		sb.WriteString("\n")
	}
	sb.WriteString(r.Message)
	return sb.String()
}
