// Package core assembles the complete rule-based query rewriter of the
// paper: the type-checking rules (§3.3/§5), the syntactic merging and
// permutation rules (Figures 7-8), the Alexander fixpoint reduction
// (Figure 9), the compiled integrity constraints (Figure 10) and the
// semantic/simplification rules (Figures 11-12), driven by the
// block/sequence meta-rules of §4.2.
//
// The rewriter is extensible exactly as the paper describes: database
// implementors add rules (WithRules), integrity constraints
// (WithConstraints / catalog.AddConstraint) and ADT functions
// (catalog ADT registry) without touching the engine.
package core

import (
	"context"
	"fmt"
	"strings"

	"lera/internal/catalog"
	"lera/internal/guard"
	"lera/internal/lera"
	"lera/internal/lopt"
	"lera/internal/magic"
	"lera/internal/rewrite"
	"lera/internal/rulecheck"
	"lera/internal/rules"
	"lera/internal/semantic"
	"lera/internal/term"
)

// DefaultSequence is the master optimizer sequence (DESIGN.md §5): type
// checking, normalisation, merging, pushing, fixpoint reduction, merging
// again (the paper notes search merging "takes advantage of being applied
// more than once ... before and after pushing selections through
// fixpoints"), constraint addition, semantic augmentation, simplification
// and a final merge, the whole list applied up to twice.
const DefaultSequence = `
seq({typecheck, normalize, merge, push, fixpoint, merge, constraints, semantic, simplify, merge}, 2);
`

// Option configures a Rewriter.
type Option func(*config)

type config struct {
	trace         bool
	dynamicLimits bool
	maxChecks     int
	extraRules    []string
	constraintSrc []string
	constraintLim int
	sequence      string
	disableBlocks map[string]bool
	blockLimits   map[string]int
	ruleCheck     bool
	fullScan      bool
	rowEngine     bool
	injector      *guard.Injector
	planCache     int
	planCacheVal  int
}

// WithTrace records a rule-application trace for Explain.
func WithTrace() Option { return func(c *config) { c.trace = true } }

// WithDynamicLimits enables the §7 extension: block limits are scaled by
// query complexity, with 0 for key-lookup-simple queries.
func WithDynamicLimits() Option { return func(c *config) { c.dynamicLimits = true } }

// WithMaxChecks caps total condition checks (guard against runaway rule
// sets).
func WithMaxChecks(n int) Option { return func(c *config) { c.maxChecks = n } }

// WithRules adds implementor-written rules (and blocks/sequence) in the
// rule language; same-named rules override built-ins.
func WithRules(src string) Option {
	return func(c *config) { c.extraRules = append(c.extraRules, src) }
}

// WithConstraints adds Figure 10-style integrity constraints.
func WithConstraints(src string) Option {
	return func(c *config) { c.constraintSrc = append(c.constraintSrc, src) }
}

// WithConstraintLimit sets the constraints block budget (default 100).
func WithConstraintLimit(n int) Option { return func(c *config) { c.constraintLim = n } }

// WithSequence replaces the master sequence (rule-language "seq" syntax).
func WithSequence(src string) Option { return func(c *config) { c.sequence = src } }

// WithoutBlock gives the named block a zero budget — the §7 knob.
func WithoutBlock(name string) Option {
	return func(c *config) {
		if c.disableBlocks == nil {
			c.disableBlocks = map[string]bool{}
		}
		c.disableBlocks[name] = true
	}
}

// WithBlockLimit overrides a single block's budget.
func WithBlockLimit(name string, limit int) Option {
	return func(c *config) {
		if c.blockLimits == nil {
			c.blockLimits = map[string]int{}
		}
		c.blockLimits[name] = limit
	}
}

// WithFullScan disables the head-discrimination rule index and restores
// the naive walk-per-rule match loop. The two paths produce identical
// rewrites (docs/PERF.md); this exists as the differential-testing oracle
// and as an escape hatch while diagnosing index-related surprises.
func WithFullScan() Option { return func(c *config) { c.fullScan = true } }

// WithRowEngine selects the retained tuple-at-a-time execution engine
// instead of the default batched one — the execution-side counterpart of
// WithFullScan. Rows, work counters and EXPLAIN ANALYZE statistics are
// bit-identical between the two engines (docs/PERF.md, "Batched
// execution & relation indexes"); this exists as the differential-testing
// oracle and as an escape hatch while diagnosing batch-engine surprises.
func WithRowEngine() Option { return func(c *config) { c.rowEngine = true } }

// WithInjector arms a deterministic fault injector across the whole
// pipeline: every rewrite-side external (constraint, method, builtin) and
// every execution-side ADT function hits the injector by uppercase name
// before it runs, so armed faults — panics, errors, stalls — fire inside
// live queries exactly as they do in unit tests (the determinism contract
// is documented in internal/guard/faultinject.go). This is the one path
// leraserver's chaos mode and the guard test suite share. A nil injector
// is ignored.
func WithInjector(inj *guard.Injector) Option {
	return func(c *config) { c.injector = inj }
}

// WithRuleCheck runs the static rule-base verifier (internal/rulecheck)
// over the assembled rule set at construction time: error-level findings
// refuse the rule base, warnings are retained and available through
// CheckDiagnostics. The paper's implementor adds rules without
// recompiling the engine; this is the safety net that keeps a buggy rule
// from silently corrupting every query it matches.
func WithRuleCheck() Option { return func(c *config) { c.ruleCheck = true } }

// Rewriter is the assembled query rewriter.
type Rewriter struct {
	Cat    *catalog.Catalog
	RS     *rules.RuleSet
	Ext    *rewrite.Externals
	cfg    config
	engine *rewrite.Engine

	// checkDiags are the non-fatal findings of the WithRuleCheck lint.
	checkDiags []rulecheck.Diagnostic

	// fingerprint / knobSig memoize the plan-cache environment pieces
	// derived from the (immutable after construction) rule set and
	// config; see cacheEnv in plancache.go.
	fingerprint string
	knobSig     string
}

// New builds a rewriter over a catalog.
func New(cat *catalog.Catalog, opts ...Option) (*Rewriter, error) {
	cfg := config{constraintLim: 100}
	for _, o := range opts {
		o(&cfg)
	}

	ext := lopt.Externals()
	magic.RegisterExternals(ext)
	semantic.RegisterExternals(ext)
	registerTypecheckExternals(ext)
	registerPlanningExternals(ext)

	rs := rules.NewRuleSet()
	rs.Merge(rules.MustParse(TypecheckRules))
	rs.Merge(lopt.RuleSet())
	rs.Merge(rules.MustParse(magic.FixpointRules))
	rs.Merge(semantic.RuleSet())

	// Integrity constraints: from options and from the catalog.
	var constraintRules []string
	constraintRules = append(constraintRules, cfg.constraintSrc...)
	consRS := rules.NewRuleSet()
	var consNames []string
	for _, src := range constraintRules {
		parsed, err := semantic.ParseConstraints(src, cfg.constraintLim)
		if err != nil {
			return nil, err
		}
		for _, n := range parsed.RuleOrder {
			consRS.Rules[n] = parsed.Rules[n]
			consRS.RuleOrder = append(consRS.RuleOrder, n)
			consNames = append(consNames, n)
		}
	}
	for _, r := range cat.Constraints() {
		compiled, err := semantic.CompileConstraint(r)
		if err != nil {
			return nil, err
		}
		consRS.Rules[compiled.Name] = compiled
		consRS.RuleOrder = append(consRS.RuleOrder, compiled.Name)
		consNames = append(consNames, compiled.Name)
	}
	consRS.Blocks["constraints"] = &rules.Block{Name: "constraints", Rules: consNames, Limit: cfg.constraintLim}
	consRS.BlockOrder = []string{"constraints"}
	rs.Merge(consRS)

	seqSrc := DefaultSequence
	if cfg.sequence != "" {
		seqSrc = cfg.sequence
	}
	seq, err := rules.ParseSequence(seqSrc)
	if err != nil {
		return nil, err
	}
	rs.Sequence = seq

	for _, src := range cfg.extraRules {
		extra, err := rules.Parse(src)
		if err != nil {
			return nil, err
		}
		rs.Merge(extra)
	}
	if err := rs.Validate(); err != nil {
		return nil, err
	}

	rw := &Rewriter{Cat: cat, RS: rs, Ext: ext, cfg: cfg}
	if cfg.ruleCheck {
		diags := rulecheck.Lint(rs, ext, cat)
		var errs []string
		for _, d := range diags {
			if d.Severity == rulecheck.SevError {
				errs = append(errs, d.String())
			} else {
				rw.checkDiags = append(rw.checkDiags, d)
			}
		}
		if len(errs) > 0 {
			return nil, fmt.Errorf("core: rule base failed verification:\n  %s", strings.Join(errs, "\n  "))
		}
	}
	return rw, nil
}

// CheckDiagnostics returns the non-fatal findings recorded by the
// WithRuleCheck construction-time lint (nil unless the option was given).
func (r *Rewriter) CheckDiagnostics() []rulecheck.Diagnostic { return r.checkDiags }

// CheckRules verifies the assembled rule base: the full static lint plus
// differential semantic testing of every rule against a deterministic
// generated database, all bounded by lim (the wall-clock budget applies
// to each rewrite and each execution phase separately, exactly as a
// session query does).
func (r *Rewriter) CheckRules(ctx context.Context, lim guard.Limits) ([]rulecheck.Diagnostic, error) {
	ds := rulecheck.Lint(r.RS, r.Ext, r.Cat)
	diff, err := rulecheck.Diff(ctx, r.RS, r.Ext, r.Cat, rulecheck.DiffOptions{Limits: lim, EndToEnd: true})
	ds = append(ds, diff...)
	return ds, err
}

// complexity scores a query for the dynamic-limit policy (§7): operator
// count plus conjunct count, recursion weighted heavily.
func complexity(q *term.Term) int {
	score := lera.OperatorCount(q)
	term.Walk(q, func(s *term.Term, _ term.Path) bool {
		if lera.IsOp(s, lera.OpFix) {
			score += 10
		}
		if lera.IsOp(s, lera.EAnds) && len(s.Args) == 1 {
			score += len(s.Args[0].Args)
		}
		return true
	})
	return score
}

// simpleThreshold is the complexity at or below which a query is "a
// search on a key" and gets zero budgets (§7).
const simpleThreshold = 3

func (r *Rewriter) newEngine(q *term.Term, lim guard.Limits) *rewrite.Engine {
	opts := rewrite.Options{
		CollectTrace: r.cfg.trace,
		MaxChecks:    r.cfg.maxChecks,
		Limits:       lim,
		FullScan:     r.cfg.fullScan,
		Injector:     r.cfg.injector,
	}
	limits := map[string]int{}
	for k, v := range r.cfg.blockLimits {
		limits[k] = v
	}
	for k := range r.cfg.disableBlocks {
		limits[k] = 0
	}
	dynamicZero := r.cfg.dynamicLimits && complexity(q) <= simpleThreshold
	if len(limits) > 0 || dynamicZero {
		opts.BlockLimitOverride = func(block string, declared int) int {
			if v, ok := limits[block]; ok {
				return v
			}
			if dynamicZero {
				return 0
			}
			return declared
		}
	}
	return rewrite.New(r.RS, r.Ext, r.Cat, opts)
}

// Rewrite runs the full optimizer sequence on a LERA term with no
// cancellation and no budget (see RewriteCtx).
func (r *Rewriter) Rewrite(q *term.Term) (*term.Term, *rewrite.Stats, error) {
	return r.RewriteCtx(context.Background(), q, guard.Limits{})
}

// RewriteCtx runs the full optimizer sequence under a cancellation
// context and a guard budget. On error the returned Stats (if non-nil)
// reflect the work done before the failure, and LastGood holds the best
// safe intermediate term to fall back to.
func (r *Rewriter) RewriteCtx(ctx context.Context, q *term.Term, lim guard.Limits) (*term.Term, *rewrite.Stats, error) {
	e := r.newEngine(q, lim)
	out, st, err := e.RunCtx(ctx, q)
	r.engine = e
	return out, st, err
}

// LastGood returns the query term as of the last committed rule
// application of the most recent Rewrite — the fallback plan when the
// rewrite failed partway (nil before any run).
func (r *Rewriter) LastGood() *term.Term {
	if r.engine == nil {
		return nil
	}
	return r.engine.LastGood()
}

// RewriteBlock runs a single block (for tests and experiments).
func (r *Rewriter) RewriteBlock(q *term.Term, block string) (*term.Term, *rewrite.Stats, error) {
	e := r.newEngine(q, guard.Limits{})
	out, st, err := e.RunBlock(q, block)
	r.engine = e
	return out, st, err
}

// Trace returns the rule applications of the most recent Rewrite (empty
// unless WithTrace was given).
func (r *Rewriter) Trace() []rewrite.TraceEntry {
	if r.engine == nil {
		return nil
	}
	return r.engine.Trace
}

// Explain renders a human-readable account of a rewrite: the query before
// and after, every rule application, and the statistics.
func (r *Rewriter) Explain(q *term.Term) (string, error) {
	cfgTrace := r.cfg.trace
	r.cfg.trace = true
	out, st, err := r.Rewrite(q)
	r.cfg.trace = cfgTrace
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "before: %s\n", lera.Format(q))
	for i, tr := range r.Trace() {
		fmt.Fprintf(&sb, "%3d. [%s/%s] %s\n     ==> %s\n", i+1, tr.Block, tr.Rule, tr.Before, tr.After)
	}
	fmt.Fprintf(&sb, "after:  %s\n", lera.Format(out))
	fmt.Fprintf(&sb, "stats:  %d condition checks, %d applications, %d rounds\n",
		st.ConditionChecks, st.Applications, st.Rounds)
	return sb.String(), nil
}

// Lint returns advisory findings about the assembled rule base: the §4.2
// termination analysis (non-decreasing rules in saturating blocks) plus
// dead rules not referenced by any block.
func (r *Rewriter) Lint() []string {
	out := r.RS.TerminationWarnings()
	inBlocks := map[string]bool{}
	for _, b := range r.RS.Blocks {
		for _, rn := range b.Rules {
			inBlocks[rn] = true
		}
	}
	for _, rn := range r.RS.RuleOrder {
		if !inBlocks[rn] {
			out = append(out, fmt.Sprintf("rule %q is not referenced by any block", rn))
		}
	}
	return out
}
